package intrust

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as the examples and a
// downstream user would.

func TestFacadeEnclaveWorkflow(t *testing.T) {
	plat := NewServerPlatform()
	s, err := NewSGX(plat)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(".org 0\nmv a0, a1\nhlt")
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateEnclave(EnclaveConfig{Name: "facade", Program: prog, DataSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := e.Call(0, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 1234 {
		t.Fatalf("enclave echo = %d", ret[0])
	}
	v := NewVerifier()
	v.AllowMeasurement("facade", e.Measurement())
	nonce, _ := v.Challenge()
	r, err := e.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckReport(s.ReportKey(), r); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Seal([]byte("facade state"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Unseal(blob)
	if err != nil || string(out) != "facade state" {
		t.Fatalf("unseal: %q %v", out, err)
	}
}

func TestFacadeAllArchitecturesConstruct(t *testing.T) {
	if _, err := NewSGX(NewServerPlatform()); err != nil {
		t.Errorf("SGX: %v", err)
	}
	if _, err := NewSanctum(NewServerPlatform()); err != nil {
		t.Errorf("Sanctum: %v", err)
	}
	tz, err := NewTrustZone(NewMobilePlatform())
	if err != nil {
		t.Fatalf("TrustZone: %v", err)
	}
	if _, err := NewSanctuary(tz); err != nil {
		t.Errorf("Sanctuary: %v", err)
	}
	if _, err := NewSMART(NewEmbeddedPlatform()); err != nil {
		t.Errorf("SMART: %v", err)
	}
	if _, err := NewSancus(NewEmbeddedPlatform()); err != nil {
		t.Errorf("Sancus: %v", err)
	}
	if _, err := NewTrustLite(NewEmbeddedPlatform()); err != nil {
		t.Errorf("TrustLite: %v", err)
	}
	if _, err := NewTyTAN(NewEmbeddedPlatform()); err != nil {
		t.Errorf("TyTAN: %v", err)
	}
}

func TestFacadeSpectreQuick(t *testing.T) {
	secret := []byte("FACADE")
	res, err := SpectreV1(HighEndFeatures(), secret, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != len(secret) {
		t.Fatalf("spectre via facade: %d/%d", res.Correct, len(secret))
	}
}

func TestFacadeFigure1Renders(t *testing.T) {
	f, err := Figure1(true)
	if err != nil {
		t.Fatal(err)
	}
	out := f.Render()
	for _, want := range []string{"remote attacks", "microarchitectural", "energy budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 render missing %q", want)
		}
	}
}

func TestFacadeAttestLifecycle(t *testing.T) {
	svc := NewAttestService(AttestRootFromSeed(0))
	q, err := svc.Quote("sgx", "none", 1, []byte{0xaa}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAttestQuote(wire); err != nil {
		t.Fatalf("decode canonical quote: %v", err)
	}
	if vd := svc.Verify(wire, []byte{0xaa}); !vd.OK {
		t.Fatalf("clean verify: %+v", vd)
	}
	// A broken none-defense cell revokes the baseline TCB.
	svc.SetRevocations(AttestRevoke([]AttestCell{
		{Scenario: "flush+reload", Arch: "sgx", Defense: "none", Class: "broken"}}))
	if vd := svc.Verify(wire, []byte{0xaa}); vd.OK || vd.Code != "tcb-revoked" {
		t.Fatalf("post-revocation verify = %+v, want tcb-revoked", vd)
	}
}
