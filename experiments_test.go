package intrust

import (
	"os"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/scenario"
)

// TestExperimentsIndexInSync pins the generated EXPERIMENTS.md to the
// live scenario registry: the doc reference in intrust.go must never go
// stale again. Regenerate with `go generate ./...`.
func TestExperimentsIndexInSync(t *testing.T) {
	disk, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("EXPERIMENTS.md missing (run go generate ./...): %v", err)
	}
	want := scenario.CatalogMarkdown(scenario.Default)
	if string(disk) != want {
		t.Error("EXPERIMENTS.md is stale relative to the scenario registry: run `go generate ./...`")
	}
	// Sanity on content the catalog promises: every registered scenario
	// appears by name.
	for _, s := range AllScenarios() {
		if !strings.Contains(string(disk), "`"+s.Name()+"`") {
			t.Errorf("EXPERIMENTS.md does not mention scenario %q", s.Name())
		}
	}
}

// TestFacadeScenarioAPI exercises the redesigned surface exactly as a
// downstream scheduler would: enumerate the catalog, look a scenario up,
// build an environment, mount it.
func TestFacadeScenarioAPI(t *testing.T) {
	all := AllScenarios()
	if len(all) < 15 {
		t.Fatalf("catalog lists %d scenarios, want >= 15", len(all))
	}
	if got := len(ScenarioFamilies()); got != 3 {
		t.Errorf("scenario families = %d, want 3", got)
	}
	s, ok := LookupScenario("spectre-v1")
	if !ok {
		t.Fatal("spectre-v1 not registered")
	}
	if ok, reason := s.Applicable("sancus"); !ok || reason != "" {
		t.Errorf("spectre-v1 on sancus: applicable=%v reason=%q", ok, reason)
	}
	env, err := NewScenarioEnv("sancus", 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Mount(env)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != "blocked" {
		t.Errorf("spectre-v1 on the in-order embedded core = %q, want blocked", out.Verdict)
	}
	// A custom registry accepts downstream scenarios without touching the
	// default catalog.
	reg := NewScenarioRegistry()
	if err := reg.Register(&ScenarioSpec{
		ID: "rowhammer", In: "physical",
		Run: func(*ScenarioEnv) (ScenarioOutcome, error) { return ScenarioOutcome{Verdict: "n/a"}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := LookupScenario("rowhammer"); ok {
		t.Error("custom registration leaked into the default catalog")
	}
}

// TestFacadeSweepScale pins the acceptance floor of the redesign: the
// default sweep enumerates at least 100 (scenario, architecture) cells.
func TestFacadeSweepScale(t *testing.T) {
	exps, err := SweepExperiments(nil, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) < 100 {
		t.Errorf("default sweep enumerates %d cells, want >= 100", len(exps))
	}
}
