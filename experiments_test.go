package intrust

import (
	"os"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/scenario"
)

// TestExperimentsIndexInSync pins the generated EXPERIMENTS.md to the
// live scenario registry: the doc reference in intrust.go must never go
// stale again. Regenerate with `go generate ./...`.
func TestExperimentsIndexInSync(t *testing.T) {
	disk, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("EXPERIMENTS.md missing (run go generate ./...): %v", err)
	}
	want := scenario.CatalogMarkdown(scenario.Default)
	if string(disk) != want {
		t.Error("EXPERIMENTS.md is stale relative to the scenario registry: run `go generate ./...`")
	}
	// Sanity on content the catalog promises: every registered scenario
	// appears by name.
	for _, s := range AllScenarios() {
		if !strings.Contains(string(disk), "`"+s.Name()+"`") {
			t.Errorf("EXPERIMENTS.md does not mention scenario %q", s.Name())
		}
	}
}

// TestDefensesIndexInSync pins the generated docs/DEFENSES.md to the
// live defense registry — the defense handbook can never go stale.
// Regenerate with `go generate ./...`.
func TestDefensesIndexInSync(t *testing.T) {
	disk, err := os.ReadFile("docs/DEFENSES.md")
	if err != nil {
		t.Fatalf("docs/DEFENSES.md missing (run go generate ./...): %v", err)
	}
	want := defense.CatalogMarkdown(defense.Default)
	if string(disk) != want {
		t.Error("docs/DEFENSES.md is stale relative to the defense registry: run `go generate ./...`")
	}
	// Sanity on content the handbook promises: every registered defense
	// appears by name, and every blocked-scenario reference resolves in
	// the scenario registry (the cross-catalog consistency the paper's
	// defense matrix depends on).
	for _, d := range AllDefenses() {
		if !strings.Contains(string(disk), "`"+d.Name()+"`") {
			t.Errorf("docs/DEFENSES.md does not mention defense %q", d.Name())
		}
		for _, blocked := range defense.BlocksOf(d) {
			if _, ok := LookupScenario(blocked); !ok {
				t.Errorf("defense %q claims to block unknown scenario %q", d.Name(), blocked)
			}
		}
	}
}

// TestFacadeDefenseAPI exercises the defense surface exactly as a
// downstream scheduler would: enumerate the catalog, look a defense up,
// resolve an architecture's stock set, build a defended environment,
// mount a scenario through it.
func TestFacadeDefenseAPI(t *testing.T) {
	if got := len(AllDefenses()); got < 10 {
		t.Fatalf("catalog lists %d defenses, want >= 10", got)
	}
	d, ok := LookupDefense("Way-Partition")
	if !ok {
		t.Fatal("way-partition not registered (case-insensitive lookup)")
	}
	if stock := StockDefenses("sanctum"); len(stock) != 1 || stock[0].Name() != d.Name() {
		t.Errorf("StockDefenses(sanctum) = %v, want [way-partition]", stock)
	}
	s, ok := LookupScenario("flush+reload")
	if !ok {
		t.Fatal("flush+reload not registered")
	}
	env, err := NewScenarioEnvWithDefenses("sgx", 48, 1, nil, []Defense{d})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Mount(env)
	if err != nil {
		t.Fatal(err)
	}
	if got := ScenarioVerdictClass(out.Verdict); got != "mitigated" {
		t.Errorf("flush+reload on way-partitioned SGX = %q (class %q), want mitigated", out.Verdict, got)
	}
}

// TestFacadeScenarioAPI exercises the redesigned surface exactly as a
// downstream scheduler would: enumerate the catalog, look a scenario up,
// build an environment, mount it.
func TestFacadeScenarioAPI(t *testing.T) {
	all := AllScenarios()
	if len(all) < 15 {
		t.Fatalf("catalog lists %d scenarios, want >= 15", len(all))
	}
	if got := len(ScenarioFamilies()); got != 4 {
		t.Errorf("scenario families = %d, want 4 (cachesca, transient, physical, attestation)", got)
	}
	s, ok := LookupScenario("spectre-v1")
	if !ok {
		t.Fatal("spectre-v1 not registered")
	}
	if ok, reason := s.Applicable("sancus"); !ok || reason != "" {
		t.Errorf("spectre-v1 on sancus: applicable=%v reason=%q", ok, reason)
	}
	env, err := NewScenarioEnv("sancus", 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Mount(env)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != "blocked" {
		t.Errorf("spectre-v1 on the in-order embedded core = %q, want blocked", out.Verdict)
	}
	// A custom registry accepts downstream scenarios without touching the
	// default catalog.
	reg := NewScenarioRegistry()
	if err := reg.Register(&ScenarioSpec{
		ID: "rowhammer", In: "physical",
		Run: func(*ScenarioEnv) (ScenarioOutcome, error) { return ScenarioOutcome{Verdict: "n/a"}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := LookupScenario("rowhammer"); ok {
		t.Error("custom registration leaked into the default catalog")
	}
}

// TestFacadeSweepScale pins the acceptance floors of the sweep: the
// default sweep enumerates at least 100 (scenario, architecture) cells
// on the stock defense layer, and the full 3-D grid (none + stock +
// every cataloged defense) at least 1000.
func TestFacadeSweepScale(t *testing.T) {
	exps, err := SweepExperiments(nil, nil, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) < 100 {
		t.Errorf("default sweep enumerates %d cells, want >= 100", len(exps))
	}
	exps, err = SweepExperiments(nil, nil, []string{"none", "stock", "all"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) < 1000 {
		t.Errorf("full 3-D sweep enumerates %d cells, want >= 1000", len(exps))
	}
}
