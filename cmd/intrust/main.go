// Command intrust regenerates the paper's figure and comparison tables
// from live experiments on the simulator, and sweeps the registered
// attack scenarios against all architectures and mitigation
// configurations on the concurrent engine.
//
// Usage:
//
//	intrust [-quick] [fig1|arch|cachesca|transient|physical|all]
//	intrust sweep [-arch a,b|all] [-attack scenario|family,...|all] [-defense none|stock|name,...|all] [-samples N] [-confidence C] [-maxsamples N] [-parallel N] [-shard N] [-json] [-diff] [-resume dir] [-cache-secret s] [-cpuprofile f] [-memprofile f] [-mutexprofile f]
//	intrust serve [-addr :8089] [-cache N] [-cache-bytes N] [-cache-dir d] [-cache-secret s] [-warm] [-maxinflight N] [-queue N] [-seed N] [-drain 30s] [-deadline 0] [-fault plan] [-fault-seed N]
//	intrust attacks [-family f] [-markdown] [-o file]
//	intrust defenses [-family f] [-markdown] [-o file]
//	intrust bench [-o BENCH_sweep.json] [-baseline file] [-maxregress 0.25] [-parallel N] [-gomaxprocs N]
//	intrust attest <measure|quote|verify|tcb|policy> [-arch a] [-config none|stock] [-tcb N] [-nonce hex] [-quote b64url] [-seed N] [-revoke-arch a,b] [-revoke-attack x,y] [-revoke-samples N]
//
// The sweep's -attack flag accepts individual scenario names
// ("flush+reload", "clkscrew") as well as family names ("cachesca"),
// case-insensitively; `intrust attacks` lists the catalog. The -defense
// flag is the third grid axis: registered mitigation names
// ("way-partition"), "+"-combinations ("ct-aes+clock-jitter"), and the
// tokens none (strip even stock wiring), stock (the paper's §4.1 wiring,
// resolved from the defense registry) and all; `intrust defenses` lists
// that catalog, and -diff reports which cells each defense flips versus
// the undefended baseline.
//
// Sweeps run under the adaptive sequential-sampling verdict engine by
// default: every cell measures in cumulative checkpoint passes that stop
// as soon as its broken/mitigated verdict separates at the -confidence
// target, hard cells escalate up to the -maxsamples cap, and each row
// reports its realized sample cost and verdict confidence.
// -confidence 0 restores the fixed per-cell budget.
//
// The serve mode runs the sweep as a long-lived HTTP/JSON service
// (internal/serve): /cell and /sweep answer grid queries through a
// content-addressed result cache — the engine's deterministic per-job
// seeding makes a cached cell byte-identical to a fresh one, so
// repeated queries are O(1) — with bounded admission (429 + Retry-After
// under overload), NDJSON streaming for grid selections, Prometheus
// metrics at /metrics, and graceful drain on SIGINT/SIGTERM.
//
// The bench mode runs the canonical sweep configurations (the none+stock
// grid, fixed and adaptive) through internal/perf and folds the result
// into the multi-environment BENCH_sweep.json throughput artifact (one
// entry per Go release × core count × GOMAXPROCS × pool size); with
// -baseline it also fails when cells/sec regresses past -maxregress
// against the baseline entry matching this environment — the CI gate
// that tracks substrate performance across PRs. When the artifact holds
// a GOMAXPROCS=1/8 pair, bench also prints the derived scaling_x metric
// the checked-in-artifact test gates on.
//
// The attest mode drives the remote attestation lifecycle
// (internal/attestsvc) from the command line: measure prints canonical
// enclave measurements, quote mints signed quotes, verify checks them
// against the acceptance policy (exit 0 accepted, 1 rejected), and
// tcb/policy dump the revocation state — optionally derived live from a
// sweep slice via -revoke-arch/-revoke-attack, the same feedback loop
// the serve tier's /attest endpoints run. The sweep's
// -cpuprofile/-memprofile/-mutexprofile flags write pprof profiles for
// hunting the next hot spot (see docs/PERFORMANCE.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"runtime"
	"runtime/pprof"

	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/fault"
	"github.com/intrust-sim/intrust/internal/perf"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/serve"
	"github.com/intrust-sim/intrust/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sample sizes (faster, noisier)")
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	if what == "sweep" {
		os.Exit(runSweep(flag.Args()[1:]))
	}
	if what == "serve" {
		os.Exit(runServe(flag.Args()[1:]))
	}
	if what == "attacks" {
		os.Exit(runAttacks(flag.Args()[1:]))
	}
	if what == "defenses" {
		os.Exit(runDefenses(flag.Args()[1:]))
	}
	if what == "bench" {
		os.Exit(runBench(flag.Args()[1:]))
	}
	if what == "attest" {
		os.Exit(runAttest(flag.Args()[1:]))
	}
	samples := 400
	secretLen := 16
	if *quick {
		samples = 150
		secretLen = 6
	}
	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	selected := map[string]bool{what: true}
	if what == "all" {
		for _, k := range []string{"fig1", "arch", "cachesca", "transient", "physical"} {
			selected[k] = true
		}
	}
	any := false
	if selected["fig1"] {
		any = true
		run("FIG1", func() error {
			f, err := core.Figure1(*quick)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			return nil
		})
	}
	if selected["arch"] {
		any = true
		run("TAB2", func() error {
			t, err := core.Table2Architectures()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["cachesca"] {
		any = true
		run("TAB3", func() error {
			t, err := core.Table3CacheSCA(samples)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["transient"] {
		any = true
		run("TAB4", func() error {
			t, err := core.Table4Transient(secretLen)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["physical"] {
		any = true
		run("TAB5", func() error {
			t, err := core.Table5Physical(*quick)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want sweep|serve|attacks|defenses|bench|attest|fig1|arch|cachesca|transient|physical|all)\n", what)
		os.Exit(2)
	}
}

// runAttacks lists the attack-scenario catalog: name, family, paper
// section, and the applicable architectures, straight from the registry.
// -markdown emits the EXPERIMENTS.md index instead (the `go generate`
// target), and -o redirects either rendering to a file.
func runAttacks(args []string) int {
	fs := flag.NewFlagSet("attacks", flag.ExitOnError)
	family := fs.String("family", "", "restrict the listing to one family ("+strings.Join(core.AllAttackFamilies, "|")+")")
	markdown := fs.Bool("markdown", false, "emit the EXPERIMENTS.md catalog index instead of the table")
	outPath := fs.String("o", "", "write to this file instead of stdout")
	fs.Parse(args)

	var rendering string
	if *markdown {
		// The markdown rendering is the go:generate EXPERIMENTS.md
		// artifact and always describes the whole catalog; a partial
		// file carrying the generated-file header would lie.
		if *family != "" {
			fmt.Fprintln(os.Stderr, "attacks: -family cannot be combined with -markdown (the index always covers the full catalog)")
			return 2
		}
		rendering = scenario.CatalogMarkdown(scenario.Default)
	} else {
		scens := scenario.All()
		if *family != "" {
			if scens = scenario.ByFamily(*family); len(scens) == 0 {
				fmt.Fprintf(os.Stderr, "attacks: unknown family %q (want %s)\n", *family, strings.Join(scenario.Families(), "|"))
				return 2
			}
		}
		t := &core.Table{
			Title:   fmt.Sprintf("ATTACKS — %d registered scenarios (sweep selects them by name or family)", len(scens)),
			Columns: []string{"scenario", "family", "paper §", "applicable architectures"},
		}
		for _, s := range scens {
			section, summary := scenario.DescriptionOf(s)
			t.Rows = append(t.Rows, []string{s.Name(), s.Family(), section, scenario.ApplicableCell(s)})
			if summary != "" {
				t.Notes = append(t.Notes, s.Name()+": "+summary)
			}
		}
		rendering = t.String()
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(rendering), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "attacks: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Print(rendering)
	return 0
}

// runSweep fans the attack×architecture×defense cross-product out on the
// engine worker pool and renders the results as text or JSON.
func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	archFlag := fs.String("arch", "all", "comma-separated architectures ("+strings.Join(core.AllArchitectures, ",")+") or all")
	attackFlag := fs.String("attack", "all", "comma-separated scenario or family names (see `intrust attacks`) or all")
	defenseFlag := fs.String("defense", "stock", "comma-separated defense axis: none|stock|all, names from `intrust defenses`, or +combinations")
	samples := fs.Int("samples", 256, "sample budget per experiment (traces, probe rounds); the adaptive reference budget")
	confidence := fs.Float64("confidence", stats.DefaultConfidence,
		"adaptive sampling: per-cell verdict confidence target in [0.5,1); 0 disables adaptive sampling (fixed budgets)")
	maxSamples := fs.Int("maxsamples", 0,
		"adaptive sampling: per-cell sample cap for hard cells (0 = 4x the reference budget)")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	shard := fs.Int("shard", 0, "jobs per work-stealing shard (0 = auto); results are identical at every value")
	jsonOut := fs.Bool("json", false, "emit the machine-readable engine report instead of the text table")
	diff := fs.Bool("diff", false, "also report which cells each defense flips versus the none baseline (adds none to the axis)")
	resumeDir := fs.String("resume", "", "incremental sweep: persist cell results under this directory and recompute only changed cells on re-runs")
	resumeSecret := fs.String("cache-secret", "", "secret keying the -resume directory's authenticated envelopes")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the sweep) to this file")
	mutexProfile := fs.String("mutexprofile", "", "write a pprof mutex-contention profile of the sweep to this file")
	fs.Parse(args)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			}
		}()
	}
	if *mutexProfile != "" {
		// Rate 1 records every contended lock; the sweep is short enough
		// that full sampling stays cheap and the profile stays complete.
		runtime.SetMutexProfileFraction(1)
		defer runtime.SetMutexProfileFraction(0)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			}
		}()
	}

	defenses := splitList(*defenseFlag)
	if *diff && *jsonOut {
		// The diff is an ASCII table; appending it to the JSON report
		// would corrupt the machine-readable stream.
		fmt.Fprintln(os.Stderr, "sweep: -diff cannot be combined with -json (the diff is a text rendering)")
		return 2
	}
	if *diff {
		// The diff view needs the undefended baseline in the grid.
		hasNone := false
		for _, d := range defenses {
			if strings.EqualFold(strings.TrimSpace(d), "none") {
				hasNone = true
			}
		}
		if !hasNone {
			defenses = append([]string{"none"}, defenses...)
		}
	}
	if *confidence != 0 && (*confidence < 0.5 || *confidence >= 1) {
		// Below even odds the sequential test is meaningless; reject
		// explicitly rather than silently clamping to 0.5.
		fmt.Fprintln(os.Stderr, "sweep: -confidence must be in [0.5,1), or 0 to disable adaptive sampling")
		return 2
	}
	eng := engine.New(*parallel)
	eng.ShardSize = *shard
	var results []engine.Result
	var runErr error
	start := time.Now()
	if *resumeDir != "" {
		// Incremental path: the grid enumerates through the same
		// canonical cell keys, reuses every authenticated on-disk
		// result, and computes only the cells whose inputs changed.
		store, err := diskcache.Open(*resumeDir, *resumeSecret)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		copt := core.CellOptions{Samples: *samples, Confidence: *confidence, MaxSamples: *maxSamples}
		var sum core.ResumeSummary
		results, sum, runErr = core.SweepResume(context.Background(), store, eng, splitList(*archFlag), splitList(*attackFlag), defenses, copt)
		if results == nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", runErr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "[resume %s: %d cells — %d reused, %d computed (%d new, %d changed, %d invalid)]\n",
			*resumeDir, sum.Cells, sum.Reused, sum.Computed, sum.New, sum.Changed, sum.Invalid)
	} else {
		opt := core.SweepOptions{Samples: *samples}
		if *confidence > 0 {
			opt.Adaptive = &stats.Policy{Confidence: *confidence, MaxSamples: *maxSamples}
		}
		exps, err := core.SweepExperimentsWith(splitList(*archFlag), splitList(*attackFlag), defenses, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 2
		}
		results, runErr = eng.Run(context.Background(), exps)
	}
	wall := time.Since(start)
	if *jsonOut {
		rep := engine.NewReport("intrust sweep", eng.Parallel, results, wall)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
	} else {
		fmt.Print(core.SweepTable(results).String())
		s := engine.Summarize(results, wall)
		// The adaptive saving itself is already a note under the table
		// (SweepTable's samplingNote); don't render the numbers twice.
		fmt.Printf("[%d experiments on %d workers in %v (serial cost %v); %s]\n",
			s.Experiments, eng.Parallel, wall.Round(time.Millisecond),
			time.Duration(s.TotalNS).Round(time.Millisecond),
			strings.Join(s.VerdictList(), " "))
	}
	if *diff {
		dt, err := core.SweepDiff(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 2
		}
		fmt.Println()
		fmt.Print(dt.String())
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", runErr)
		return 1
	}
	return 0
}

// runServe runs the sweep-as-a-service HTTP API until SIGINT/SIGTERM,
// then drains gracefully: in-flight cells complete, late requests get
// 503 while the listener winds down.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8089", "listen address")
	cacheN := fs.Int("cache", 4096, "content-addressed result cache bound (entries, LRU)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache byte bound alongside the entry bound (0 = 256 MiB)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (tamper-evident, survives restarts); empty disables the disk tier")
	cacheSecret := fs.String("cache-secret", "", "secret keying the disk tier's authenticated envelopes (share it across processes sharing -cache-dir)")
	warm := fs.Bool("warm", false, "precompute the canonical none+stock grid into the cache tiers at boot (in the background)")
	maxInFlight := fs.Int("maxinflight", 0, "concurrently computing requests (0 = GOMAXPROCS); cache hits are not limited")
	queue := fs.Int("queue", 64, "admission queue depth before requests are answered 429")
	seed := fs.Int64("seed", 0, "base engine seed cells compute under")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown bound for in-flight cells")
	deadline := fs.Duration("deadline", 0, "per-request compute deadline (0 disables); past it requests answer 503")
	faultPlan := fs.String("fault", "", "chaos fault plan, e.g. 'disk.write:p=1;engine.stall:p=0.1,delay=50ms' (see docs/RESILIENCE.md); empty disables injection")
	faultSeed := fs.Int64("fault-seed", 1, "seed of the deterministic fault schedule (same plan+seed replays identically)")
	fs.Parse(args)

	var plane *fault.Plane
	if *faultPlan != "" {
		var perr error
		if plane, perr = fault.Parse(*faultSeed, *faultPlan); perr != nil {
			fmt.Fprintf(os.Stderr, "serve: -fault: %v\n", perr)
			return 2
		}
		fmt.Printf("[fault plane armed: %v (seed %d)]\n", plane.Names(), *faultSeed)
	}
	s, err := serve.New(serve.Options{
		CacheEntries:    *cacheN,
		CacheBytes:      *cacheBytes,
		CacheDir:        *cacheDir,
		CacheSecret:     *cacheSecret,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queue,
		Seed:            *seed,
		Faults:          plane,
		ComputeDeadline: *deadline,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	slots := *maxInFlight
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	disk := "no disk tier"
	if *cacheDir != "" {
		disk = "disk tier " + *cacheDir
	}
	fmt.Printf("[intrust serve listening on %s (cache %d entries, %s, %d compute slots, queue %d)]\n",
		*addr, *cacheN, disk, slots, *queue)
	if *warm {
		// Warm-up rides the same flights and caches as live traffic, so
		// it can run behind the listener instead of delaying readiness.
		go func() {
			start := time.Now()
			loaded, computed, werr := s.WarmUp(ctx)
			if werr != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "serve: warm-up: %v\n", werr)
				return
			}
			fmt.Printf("[warm-up: none+stock grid ready in %v (%d loaded from disk, %d computed)]\n",
				time.Since(start).Round(time.Millisecond), loaded, computed)
		}()
	}
	if err := s.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	fmt.Println("[intrust serve drained cleanly]")
	return 0
}

// runDefenses lists the mitigation catalog: name, countered family, paper
// section, designed coverage, stock architectures and the applicable
// architectures, straight from the defense registry. -markdown emits the
// docs/DEFENSES.md handbook instead (the `go generate` target), and -o
// redirects either rendering to a file.
func runDefenses(args []string) int {
	fs := flag.NewFlagSet("defenses", flag.ExitOnError)
	family := fs.String("family", "", "restrict the listing to one countered family ("+strings.Join(defense.FamilyOrder, "|")+")")
	markdown := fs.Bool("markdown", false, "emit the docs/DEFENSES.md handbook instead of the table")
	outPath := fs.String("o", "", "write to this file instead of stdout")
	fs.Parse(args)

	var rendering string
	if *markdown {
		// The markdown rendering is the go:generate docs/DEFENSES.md
		// artifact and always describes the whole catalog; a partial
		// file carrying the generated-file header would lie.
		if *family != "" {
			fmt.Fprintln(os.Stderr, "defenses: -family cannot be combined with -markdown (the handbook always covers the full catalog)")
			return 2
		}
		rendering = defense.CatalogMarkdown(defense.Default)
	} else {
		defs := defense.All()
		if *family != "" {
			if defs = defense.ByFamily(*family); len(defs) == 0 {
				fmt.Fprintf(os.Stderr, "defenses: unknown family %q (want %s)\n", *family, strings.Join(defense.Families(), "|"))
				return 2
			}
		}
		t := &core.Table{
			Title:   fmt.Sprintf("DEFENSES — %d registered mitigations (sweep selects them via -defense)", len(defs)),
			Columns: []string{"defense", "vs family", "paper §", "blocks", "stock on", "applicable architectures"},
		}
		for _, d := range defs {
			section, summary := defense.DescriptionOf(d)
			stock := strings.Join(defense.StockOnOf(d), ",")
			if stock == "" {
				stock = "-"
			}
			t.Rows = append(t.Rows, []string{d.Name(), d.Family(), section,
				strings.Join(defense.BlocksOf(d), ","), stock, defense.ApplicableCell(d)})
			if summary != "" {
				t.Notes = append(t.Notes, d.Name()+": "+summary)
			}
		}
		rendering = t.String()
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(rendering), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "defenses: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Print(rendering)
	return 0
}

// runBench measures the canonical sweep configurations through
// internal/perf, folds the report into the multi-environment
// BENCH_sweep.json artifact, and (with -baseline) gates cells/sec
// against the baseline entry matching this environment — the CI bench
// job's substance.
func runBench(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	outPath := fs.String("o", "BENCH_sweep.json", "fold the throughput report into this file (other environments' entries are kept)")
	baseline := fs.String("baseline", "", "compare cells/sec against this environment's entry in the checked-in report and fail on regression")
	maxRegress := fs.Float64("maxregress", 0.25, "maximum tolerated cells/sec regression vs the baseline (fraction)")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	maxProcs := fs.Int("gomaxprocs", 0, "set GOMAXPROCS before measuring (0 = leave as-is); selects which baseline environment the run records and gates against")
	fs.Parse(args)

	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}
	rep, err := perf.Run(*parallel, perf.CanonicalConfigs())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	for i := range rep.Configs {
		fmt.Println(rep.Configs[i].String())
	}
	fmt.Printf("allocs/access: %g (%s)\n", rep.AllocsPerAccess, rep.EnvironmentString())

	// Fold this environment's numbers into the artifact without
	// disturbing entries measured elsewhere.
	art := &perf.File{}
	if prior, err := perf.ReadBaseline(*outPath); err == nil {
		art = prior
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	art.Upsert(rep)
	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := art.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("[throughput report written to %s (%d environments)]\n", *outPath, len(art.Environments))
	// When the artifact now holds a GOMAXPROCS=1/8 pair, surface the
	// derived multi-core scaling so a refresher sees the number the
	// checked-in-artifact gate (internal/perf TestCheckedInScalingGate)
	// will hold it to. Informational here: the artifact test is the gate.
	if scal, err := art.ScalingX(); err == nil {
		for _, s := range scal {
			for _, name := range s.Names() {
				fmt.Printf("scaling_x %-20s %.3f (numcpu=%d, floor %.2f)\n", name, s.X[name], s.NumCPU, s.Floor())
			}
			if err := s.Check(); err != nil {
				fmt.Printf("[warning: %v — rerun bench for this environment before committing %s]\n", err, *outPath)
			}
		}
	}
	if *baseline != "" {
		baseFile, err := perf.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		base := baseFile.Match(rep)
		if base == nil {
			// Cells/sec is hardware-relative: a baseline from a different
			// environment can neither prove nor disprove a regression, so
			// the gate degrades to a notice and the fresh report (kept as
			// a build artifact) carries the trajectory instead.
			fmt.Printf("[baseline %s has no entry for this environment (%s); cells/sec gate skipped — run bench from this environment with -o %s to record one]\n",
				*baseline, rep.EnvironmentString(), *baseline)
			return 0
		}
		if err := perf.Compare(base, rep, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		fmt.Printf("[no regression past %.0f%% vs %s (%s)]\n", *maxRegress*100, *baseline, rep.EnvironmentString())
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
