// Command intrust regenerates the paper's figure and comparison tables
// from live experiments on the simulator.
//
// Usage:
//
//	intrust [-quick] [fig1|arch|cachesca|transient|physical|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/intrust-sim/intrust/internal/core"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sample sizes (faster, noisier)")
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	samples := 400
	secretLen := 16
	if *quick {
		samples = 150
		secretLen = 6
	}
	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	selected := map[string]bool{what: true}
	if what == "all" {
		for _, k := range []string{"fig1", "arch", "cachesca", "transient", "physical"} {
			selected[k] = true
		}
	}
	any := false
	if selected["fig1"] {
		any = true
		run("FIG1", func() error {
			f, err := core.Figure1(*quick)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			return nil
		})
	}
	if selected["arch"] {
		any = true
		run("TAB2", func() error {
			t, err := core.Table2Architectures()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["cachesca"] {
		any = true
		run("TAB3", func() error {
			t, err := core.Table3CacheSCA(samples)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["transient"] {
		any = true
		run("TAB4", func() error {
			t, err := core.Table4Transient(secretLen)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["physical"] {
		any = true
		run("TAB5", func() error {
			t, err := core.Table5Physical(*quick)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig1|arch|cachesca|transient|physical|all)\n", what)
		os.Exit(2)
	}
}
