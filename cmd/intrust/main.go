// Command intrust regenerates the paper's figure and comparison tables
// from live experiments on the simulator, and sweeps the full
// attack×architecture cross-product on the concurrent engine.
//
// Usage:
//
//	intrust [-quick] [fig1|arch|cachesca|transient|physical|all]
//	intrust sweep [-arch a,b|all] [-attack a,b|all] [-samples N] [-parallel N] [-json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/engine"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sample sizes (faster, noisier)")
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	if what == "sweep" {
		os.Exit(runSweep(flag.Args()[1:]))
	}
	samples := 400
	secretLen := 16
	if *quick {
		samples = 150
		secretLen = 6
	}
	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	selected := map[string]bool{what: true}
	if what == "all" {
		for _, k := range []string{"fig1", "arch", "cachesca", "transient", "physical"} {
			selected[k] = true
		}
	}
	any := false
	if selected["fig1"] {
		any = true
		run("FIG1", func() error {
			f, err := core.Figure1(*quick)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			return nil
		})
	}
	if selected["arch"] {
		any = true
		run("TAB2", func() error {
			t, err := core.Table2Architectures()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["cachesca"] {
		any = true
		run("TAB3", func() error {
			t, err := core.Table3CacheSCA(samples)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["transient"] {
		any = true
		run("TAB4", func() error {
			t, err := core.Table4Transient(secretLen)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if selected["physical"] {
		any = true
		run("TAB5", func() error {
			t, err := core.Table5Physical(*quick)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want sweep|fig1|arch|cachesca|transient|physical|all)\n", what)
		os.Exit(2)
	}
}

// runSweep fans the attack×architecture cross-product out on the engine
// worker pool and renders the results as text or JSON.
func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	archFlag := fs.String("arch", "all", "comma-separated architectures ("+strings.Join(core.AllArchitectures, ",")+") or all")
	attackFlag := fs.String("attack", "all", "comma-separated attack families ("+strings.Join(core.AllAttackFamilies, ",")+") or all")
	samples := fs.Int("samples", 256, "sample budget per experiment (traces, probe rounds)")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable engine report instead of the text table")
	fs.Parse(args)

	exps, err := core.SweepExperiments(splitList(*archFlag), splitList(*attackFlag), *samples)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 2
	}
	eng := engine.New(*parallel)
	start := time.Now()
	results, runErr := eng.Run(context.Background(), exps)
	wall := time.Since(start)
	if *jsonOut {
		rep := engine.NewReport("intrust sweep", eng.Parallel, results, wall)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
	} else {
		fmt.Print(core.SweepTable(results).String())
		s := engine.Summarize(results, wall)
		fmt.Printf("[%d experiments on %d workers in %v (serial cost %v); %s]\n",
			s.Experiments, eng.Parallel, wall.Round(time.Millisecond),
			time.Duration(s.TotalNS).Round(time.Millisecond),
			strings.Join(s.VerdictList(), " "))
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", runErr)
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
