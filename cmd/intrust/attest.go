package main

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/intrust-sim/intrust/internal/attestsvc"
	"github.com/intrust-sim/intrust/internal/core"
)

// quoteWire is the text encoding quotes travel in on the command line
// and over HTTP: unpadded base64url, the same alphabet the serve tier's
// /attest endpoints use, so quotes copy-paste between the two.
var quoteWire = base64.RawURLEncoding

const attestUsage = `usage: intrust attest <measure|quote|verify|tcb|policy> [flags]

  measure  print the canonical enclave measurement for (arch, config, tcb)
  quote    mint the signed attestation quote for (arch, config, tcb)
  verify   verify a wire quote (or a freshly minted one) against the policy;
           exits 0 when accepted, 1 when rejected
  tcb      print the per-architecture TCB revocation state
  policy   dump the verifier's acceptance policy (allow-list + minimum TCB)

The -revoke-arch/-revoke-attack flags feed the policy from the sweep: the
selected none-defense grid slice is computed on the engine, and any
architecture with a broken cell has its baseline TCB revoked. Run
` + "`intrust attest <sub> -h`" + ` for per-subcommand flags.`

// runAttest is the attestation lifecycle CLI: the same measure → quote →
// verify → revoke pipeline internal/attestsvc gives the scenarios and
// the serve tier, driven from the command line. A -seed here and a
// -seed on `intrust serve` select the same authority, so quotes minted
// by one verify on the other.
func runAttest(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, attestUsage)
		return 2
	}
	sub := args[0]
	fs := flag.NewFlagSet("attest "+sub, flag.ExitOnError)
	arch := fs.String("arch", "", "architecture ("+strings.Join(core.AllArchitectures, ",")+")")
	config := fs.String("config", attestsvc.ConfigStock, "enclave defense configuration (none|stock)")
	tcb := fs.Uint("tcb", 0, "claimed TCB version (0 = the config's canonical version)")
	nonceHex := fs.String("nonce", "", "challenger nonce (hex); bound into the quote and checked on verify")
	dataHex := fs.String("data", "", "report data bound into the quote (hex)")
	quoteB64 := fs.String("quote", "", "wire quote to verify (base64url, as printed by `attest quote`)")
	seed := fs.Int64("seed", 0, "authority root seed (match `intrust serve -seed` to share an authority)")
	revokeArch := fs.String("revoke-arch", "", "comma-separated architectures of the sweep-driven revocation grid (empty = all when -revoke-attack is set)")
	revokeAttack := fs.String("revoke-attack", "", "comma-separated scenario or family names of the revocation grid (empty = all when -revoke-arch is set)")
	revokeSamples := fs.Int("revoke-samples", 64, "fixed per-cell sample budget of the revocation grid")
	parallel := fs.Int("parallel", 0, "worker-pool size for the revocation grid (0 = GOMAXPROCS)")
	fs.Parse(args[1:])

	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "attest %s: %v\n", sub, err)
		return 1
	}
	usage := func(msg string) int {
		fmt.Fprintf(os.Stderr, "attest %s: %s\n", sub, msg)
		return 2
	}

	nonce, err := hex.DecodeString(*nonceHex)
	if err != nil {
		return usage("-nonce: not valid hex")
	}
	data, err := hex.DecodeString(*dataHex)
	if err != nil {
		return usage("-data: not valid hex")
	}
	tcbVersion := attestsvc.TCBForConfig(*config)
	if *tcb > 0 {
		tcbVersion = uint32(*tcb)
	}

	svc := attestsvc.NewService(attestsvc.RootFromSeed(*seed))
	if *revokeArch != "" || *revokeAttack != "" {
		archs, attacks := splitList(*revokeArch), splitList(*revokeAttack)
		if len(archs) == 0 {
			archs = []string{"all"}
		}
		if len(attacks) == 0 {
			attacks = []string{"all"}
		}
		rev, err := core.ComputeRevocations(context.Background(), archs, attacks,
			core.CellOptions{Samples: *revokeSamples, Seed: *seed}, *parallel)
		if err != nil {
			return fail(err)
		}
		svc.SetRevocations(rev)
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")

	switch sub {
	case "measure":
		if *arch == "" {
			return usage("-arch is required")
		}
		m, err := svc.Measure(*arch, *config, tcbVersion)
		if err != nil {
			return fail(err)
		}
		out.Encode(map[string]any{
			"arch": *arch, "config": *config, "tcb_version": tcbVersion,
			"measurement": m.Hex(),
		})
		return 0

	case "quote":
		if *arch == "" {
			return usage("-arch is required")
		}
		q, err := svc.Quote(*arch, *config, tcbVersion, nonce, data)
		if err != nil {
			return fail(err)
		}
		wire, err := q.Encode()
		if err != nil {
			return fail(err)
		}
		out.Encode(map[string]any{
			"arch": *arch, "config": *config, "tcb_version": tcbVersion,
			"measurement": q.Measurement.Hex(),
			"nonce":       hex.EncodeToString(nonce),
			"quote":       quoteWire.EncodeToString(wire),
		})
		return 0

	case "verify":
		var wire []byte
		switch {
		case *quoteB64 != "":
			if wire, err = quoteWire.DecodeString(*quoteB64); err != nil {
				return usage("-quote: not valid base64url")
			}
		case *arch != "":
			// Self-minted round trip: quote the canonical image and verify
			// it in one step — the clean-path smoke the CI job runs.
			q, err := svc.Quote(*arch, *config, tcbVersion, nonce, data)
			if err != nil {
				return fail(err)
			}
			if wire, err = q.Encode(); err != nil {
				return fail(err)
			}
		default:
			return usage("one of -quote or -arch is required")
		}
		var challenge []byte
		if *nonceHex != "" {
			challenge = nonce
		}
		vd := svc.Verify(wire, challenge)
		out.Encode(struct {
			attestsvc.Verdict
			RevocationFP string `json:"revocation_fp"`
		}{vd, svc.Revocations().Fingerprint()})
		if !vd.OK {
			return 1
		}
		return 0

	case "tcb":
		rev := svc.Revocations()
		out.Encode(map[string]any{
			"revocation_fp": rev.Fingerprint(),
			"statuses":      rev.Statuses(),
		})
		return 0

	case "policy":
		p := svc.Policy()
		out.Encode(map[string]any{
			"enforce_tcb": p.EnforceTCB,
			"freshness":   p.Freshness,
			"min_tcb":     p.MinTCB,
			"accepted":    p.AcceptedList(),
		})
		return 0

	default:
		fmt.Fprintln(os.Stderr, attestUsage)
		return 2
	}
}
