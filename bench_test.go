package intrust

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/softcrypto"
	"github.com/intrust-sim/intrust/internal/stats"
)

// ---------------------------------------------------------------------
// Engine benchmarks: the same experiment cross-product at different
// worker-pool sizes. ns/op at parallel-1 over ns/op at parallel-8 is the
// realized wall-clock speedup — >= 2x expected on a multi-core machine,
// since the sweep jobs are independent and CPU-bound. The serial/wall
// metric (summed per-job durations over end-to-end wall clock) reports
// the same ratio per run; note that on a single-core machine ns/op stays
// flat and serial/wall only measures scheduling overlap, not speedup.
// ---------------------------------------------------------------------

// reportSweepMetrics attaches the cross-PR tracking metrics to a sweep
// benchmark: throughput in grid cells per second and the mean realized
// sample cost per cell (adaptive SamplesUsed where cells carry a
// sampling decision, the nominal budget otherwise; n/a and one-shot
// cells have no sample dimension and count zero samples but do count as
// cells).
func reportSweepMetrics(b *testing.B, results []engine.Result) {
	b.Helper()
	cells := len(results)
	b.ReportMetric(float64(cells), "grid-cells")
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
	s := engine.Summarize(results, 0)
	b.ReportMetric(float64(s.TotalSamples)/float64(cells), "samples/cell")
}

// BenchmarkSweep runs the full scenario-registry × architecture grid
// (every registered scenario against all eight architectures) on the
// default pool under the default adaptive sampling policy — the CI smoke
// for the sweep, and the headline cells/sec + samples/cell metrics.
func BenchmarkSweep(b *testing.B) {
	exps, err := core.SweepExperimentsWith(nil, nil, nil, core.SweepOptions{Samples: 64, Adaptive: &stats.Policy{}})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(0)
	var results []engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err = eng.Run(context.Background(), exps)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) < 100 {
			b.Fatalf("sweep covered %d cells, want >= 100", len(results))
		}
	}
	reportSweepMetrics(b, results)
}

// BenchmarkSweepDefenseAxis runs the full grid with the defense axis
// engaged (undefended baseline + the paper's stock wiring) in both
// sampling modes — the CI smoke for the 3-D sweep, and the benchmark
// that tracks the adaptive engine's sample saving: at the default
// confidence the adaptive run must burn at most half the fixed-budget
// samples on the same cells while reproducing every verdict.
func BenchmarkSweepDefenseAxis(b *testing.B) {
	for _, mode := range []struct {
		name string
		opt  core.SweepOptions
	}{
		{"fixed", core.SweepOptions{Samples: 64}},
		{"adaptive", core.SweepOptions{Samples: 64, Adaptive: &stats.Policy{}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			exps, err := core.SweepExperimentsWith(nil, nil, []string{"none", "stock"}, mode.opt)
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.New(0)
			var results []engine.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err = eng.Run(context.Background(), exps)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(exps) {
					b.Fatalf("sweep covered %d cells, want %d", len(results), len(exps))
				}
			}
			reportSweepMetrics(b, results)
			if mode.opt.Adaptive != nil {
				// The acceptance bar: >= 2x fewer samples than the same
				// cells cost under fixed budgets (one-shot cells, which
				// have no sample dimension, are excluded on both sides).
				s := engine.Summarize(results, 0)
				if s.TotalSamples == 0 || s.FixedSamples == 0 {
					b.Fatal("adaptive run carries no sampling decisions")
				}
				saving := float64(s.FixedSamples) / float64(s.TotalSamples)
				b.ReportMetric(saving, "sample-saving-x")
				if saving < 2 {
					b.Fatalf("adaptive sampling saved only %.2fx samples (%d vs %d fixed), want >= 2x",
						saving, s.TotalSamples, s.FixedSamples)
				}
			}
		})
	}
}

// BenchmarkEngineSweep runs the full attack×architecture cross-product
// through the engine at fixed pool sizes.
func BenchmarkEngineSweep(b *testing.B) {
	for _, par := range []int{1, 2, 8} {
		b.Run("parallel-"+itoa(par), func(b *testing.B) {
			exps, err := core.SweepExperiments(nil, nil, nil, 96)
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.New(par)
			var serial, wall int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				results, err := eng.Run(context.Background(), exps)
				wall += time.Since(start).Nanoseconds()
				if err != nil {
					b.Fatal(err)
				}
				for j := range results {
					serial += results[j].DurationNS
				}
			}
			if wall > 0 {
				b.ReportMetric(float64(serial)/float64(wall), "serial/wall-speedup")
			}
		})
	}
}

// BenchmarkEngineCacheSCASweep fans the sweep's cachesca column (one
// Prime+Probe experiment per architecture) out at pool sizes 1 and 8 —
// a homogeneous-workload speedup comparison to complement the mixed
// full-sweep benchmark above.
func BenchmarkEngineCacheSCASweep(b *testing.B) {
	for _, par := range []int{1, 8} {
		b.Run("parallel-"+itoa(par), func(b *testing.B) {
			exps, err := core.SweepExperiments(nil, []string{"cachesca"}, nil, 200)
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.New(par)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), exps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// One benchmark per paper artifact: each regenerates the figure/table and
// reports the headline shape metrics alongside wall-clock cost.
// ---------------------------------------------------------------------

// BenchmarkFig1AdversaryMatrix regenerates Figure 1.
func BenchmarkFig1AdversaryMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.Figure1(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.PerfMIPS[0]/f.PerfMIPS[2], "server/embedded-perf-ratio")
		b.ReportMetric(f.BudgetW[0]/f.BudgetW[2], "server/embedded-budget-ratio")
	}
}

// BenchmarkTab2ArchitectureMatrix probes all eight architectures.
func BenchmarkTab2ArchitectureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := core.Table2Architectures()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "architectures")
	}
}

// BenchmarkTab3CacheSCA regenerates the cache side-channel matrix.
func BenchmarkTab3CacheSCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := core.Table3CacheSCA(200)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "attack-defense-pairs")
	}
}

// BenchmarkTab4Transient regenerates the transient-execution matrix.
func BenchmarkTab4Transient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := core.Table4Transient(6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "attack-config-pairs")
	}
}

// BenchmarkTab5Physical regenerates the physical-attack matrix.
func BenchmarkTab5Physical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := core.Table5Physical(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "attack-countermeasure-pairs")
	}
}

// ---------------------------------------------------------------------
// Ablation benches for the design choices called out in DESIGN.md §5.
// ---------------------------------------------------------------------

// BenchmarkAblationSpecWindow sweeps the transient window size and reports
// Spectre v1 extraction success — the speculation-depth/vulnerability
// trade-off.
func BenchmarkAblationSpecWindow(b *testing.B) {
	secret := []byte("WINDOWED")
	for _, w := range []int{0, 4, 16, 64} {
		b.Run(map[bool]string{true: "w", false: "w"}[true]+itoa(w), func(b *testing.B) {
			feat := cpu.HighEndFeatures()
			feat.SpecWindow = w
			if w == 0 {
				feat.Speculation = false
			}
			extracted := 0
			for i := 0; i < b.N; i++ {
				res, err := transient.SpectreV1(feat, secret, false)
				if err != nil {
					b.Fatal(err)
				}
				extracted = res.Correct
			}
			b.ReportMetric(float64(extracted), "bytes-extracted")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationLLCDefense compares the three LLC defenses under the
// same Prime+Probe workload.
func BenchmarkAblationLLCDefense(b *testing.B) {
	key := []byte("ablation aes key")
	for _, cfg := range []struct {
		name  string
		setup func(p *platform.Platform)
	}{
		{"none", func(p *platform.Platform) {}},
		{"partition", func(p *platform.Platform) {
			p.LLC.SetPartition(5, 0x00ff)
			p.LLC.SetPartition(9, 0xff00)
		}},
		{"randomized", func(p *platform.Platform) { p.LLC.SetRandomizedIndex(5, 0xdecafbad) }},
		{"exclusion", func(p *platform.Platform) {
			p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
				if addr >= 0x40000 && addr < 0x42000 {
					return cache.LevelL1
				}
				return cache.LevelAll
			}
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			nibbles := 0
			for i := 0; i < b.N; i++ {
				p := platform.NewServer()
				cfg.setup(p)
				v, err := cachesca.NewVictim(p.Core(0).Hier, key, 5, 0x40000)
				if err != nil {
					b.Fatal(err)
				}
				res := cachesca.PrimeProbe(v, p.LLC, 200, 9, rand.New(rand.NewSource(1)))
				nibbles = res.NibblesCorrect
			}
			b.ReportMetric(float64(nibbles), "key-nibbles-leaked")
		})
	}
}

// BenchmarkAblationMaskingNoise sweeps the noise floor and reports CPA
// key bytes for unmasked vs masked AES at a fixed trace budget.
func BenchmarkAblationMaskingNoise(b *testing.B) {
	key := []byte("masking noise ky")
	for _, sigma := range []float64{0.4, 0.8, 1.6} {
		for _, masked := range []bool{false, true} {
			name := "plain"
			if masked {
				name = "masked"
			}
			b.Run(name+"-sigma"+ftoa(sigma), func(b *testing.B) {
				bytesGot := 0
				for i := 0; i < b.N; i++ {
					var v physical.AESVictim
					var err error
					if masked {
						v, err = physical.NewMaskedAESVictim(key, 9)
					} else {
						v, err = physical.NewUnprotectedAES(key)
					}
					if err != nil {
						b.Fatal(err)
					}
					ts := physical.CollectTraces(v, power.PowerProbe(sigma, 5), 256, rand.New(rand.NewSource(2)))
					bytesGot = physical.CorrectBytes(physical.CPAKey(ts), key)
				}
				b.ReportMetric(float64(bytesGot), "key-bytes-recovered")
			})
		}
	}
}

func ftoa(f float64) string {
	return itoa(int(f)) + "p" + itoa(int(f*10)%10)
}

// BenchmarkAblationFlushCost measures the context-switch cost of the
// flush-on-switch policy (Sanctum/Sanctuary) vs leaving caches warm
// (TrustZone): the defense's performance price.
func BenchmarkAblationFlushCost(b *testing.B) {
	for _, flush := range []bool{false, true} {
		name := "no-flush"
		if flush {
			name = "flush-on-switch"
		}
		b.Run(name, func(b *testing.B) {
			p := platform.NewServer()
			h := p.Core(0).Hier
			// Working set of 64 lines re-touched after each "switch".
			var total uint64
			for i := 0; i < b.N; i++ {
				if flush {
					h.FlushL1()
				}
				for a := uint32(0); a < 64*64; a += 64 {
					r := h.Data(0x50000+a, false, 1)
					total += uint64(r.Latency)
				}
			}
			b.ReportMetric(float64(total)/float64(b.N), "cycles-per-switch")
		})
	}
}

// BenchmarkAblationMEECost measures the memory-latency price of SGX's
// memory encryption vs Sanctum's plaintext DRAM.
func BenchmarkAblationMEECost(b *testing.B) {
	build := func(withMEE bool) *platform.Platform {
		p := platform.NewServer()
		if withMEE {
			// Attach an MEE over the measured range.
			if _, err := NewSGX(p); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	for _, mee := range []bool{false, true} {
		name := "plain-dram"
		addr := uint32(0x40000)
		if mee {
			name = "mee-protected"
			addr = 0x1000000 + 0x40000 // inside the EPC
		}
		b.Run(name, func(b *testing.B) {
			p := build(mee)
			h := p.Core(0).Hier
			var total uint64
			for i := 0; i < b.N; i++ {
				h.FlushAddr(addr)
				r := h.Data(addr, false, 1)
				total += uint64(r.Latency)
			}
			b.ReportMetric(float64(total)/float64(b.N), "cycles-per-cold-access")
		})
	}
}

// BenchmarkSpectreLeakRate reports the covert-channel bandwidth of the
// full in-ISA Spectre v1 pipeline (train, mistrain, transient leak, timed
// probe) in secret bytes per wall-clock second of simulation.
func BenchmarkSpectreLeakRate(b *testing.B) {
	secret := []byte("0123456789ABCDEF")
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.SpectreV1(cpu.HighEndFeatures(), secret, false)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Correct
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "secret-bytes/s")
}

// BenchmarkForeshadowExtraction measures the per-byte cost of the SGX
// attestation-key extraction (EWB/ELD preload + terminal fault + probe).
func BenchmarkForeshadowExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewSGX(platform.NewServer())
		if err != nil {
			b.Fatal(err)
		}
		res, err := transient.ForeshadowSGX(s, 8, false)
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct != 8 {
			b.Fatalf("extraction degraded: %d/8", res.Correct)
		}
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks of the substrates.
// ---------------------------------------------------------------------

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "bench", Sets: 512, Ways: 8, LineSize: 64, HitLatency: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*64), false, 0)
	}
}

func BenchmarkCPUSimulation(b *testing.B) {
	p := platform.NewServer()
	prog := MustAssemble(`
        li   t0, 0
        li   t1, 1000
loop:   addi t0, t0, 1
        bne  t0, t1, loop
        hlt
`)
	if err := p.Mem.LoadProgram(prog); err != nil {
		b.Fatal(err)
	}
	c := p.Core(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset(prog.Entry)
		if _, err := c.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Instret)/float64(b.N), "instructions-per-run")
}

func BenchmarkAESVariants(b *testing.B) {
	key := []byte("benchmark aes ky")
	pt := make([]byte, 16)
	rk := softcrypto.MustExpandKey(key)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			softcrypto.Encrypt(&rk, pt, nil)
		}
	})
	b.Run("ttable", func(b *testing.B) {
		ta, _ := softcrypto.NewTableAES(key)
		for i := 0; i < b.N; i++ {
			ta.Encrypt(pt)
		}
	})
	b.Run("masked", func(b *testing.B) {
		ma, _ := softcrypto.NewMaskedAES(key, 1)
		for i := 0; i < b.N; i++ {
			ma.Encrypt(pt)
		}
	})
	b.Run("constant-time", func(b *testing.B) {
		ct, _ := softcrypto.NewCTAES(key)
		for i := 0; i < b.N; i++ {
			ct.Encrypt(pt)
		}
	})
}

func BenchmarkCPACorrelation(b *testing.B) {
	key := []byte("correlation key!")
	v, _ := physical.NewUnprotectedAES(key)
	ts := physical.CollectTraces(v, power.PowerProbe(0.8, 1), 128, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		physical.CPAByte(ts, 0)
	}
}

func BenchmarkAttestationReport(b *testing.B) {
	keyBytes := []byte("attestation key material 32B....")
	m := attest.Measure([]byte("code"))
	b.Run("hmac-report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := attest.NewReport(keyBytes, m, []byte("nonce"), nil)
			if !attest.VerifyReport(keyBytes, r) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("ecdsa-quote", func(b *testing.B) {
		qk, err := attest.NewQuotingKey()
		if err != nil {
			b.Fatal(err)
		}
		r := attest.NewReport(keyBytes, m, []byte("nonce"), nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, err := qk.Sign(r)
			if err != nil {
				b.Fatal(err)
			}
			if !attest.VerifyQuote(qk.Public(), q) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkEnclaveCall(b *testing.B) {
	p := platform.NewServer()
	s, err := NewSGX(p)
	if err != nil {
		b.Fatal(err)
	}
	e, err := s.CreateEnclave(EnclaveConfig{
		Name: "bench", Program: MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Call(); err != nil {
			b.Fatal(err)
		}
	}
}
