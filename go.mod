module github.com/intrust-sim/intrust

go 1.21
