// Quickstart: create an SGX-style enclave on the server platform, run
// code inside it, attest it to a remote verifier, and persist sealed
// state — the canonical TEE workflow of Section 3.1.
package main

import (
	"fmt"
	"log"

	"github.com/intrust-sim/intrust"
)

func main() {
	// 1. A server-class platform with SGX.
	plat := intrust.NewServerPlatform()
	sgx, err := intrust.NewSGX(plat)
	if err != nil {
		log.Fatal(err)
	}

	// 2. An enclave holding a monotonic counter. The program reads the
	// counter from its (encrypted) data page, increments and stores it.
	prog := intrust.MustAssemble(`
        .org 0
entry:  lw   t0, 0(a0)     ; a0 = enclave data base
        addi t0, t0, 1
        sw   t0, 0(a0)
        mv   a0, t0         ; return the new value
        hlt
`)
	e, err := sgx.CreateEnclave(intrust.EnclaveConfig{
		Name: "counter", Program: prog, DataSize: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := e.(interface {
		Call(args ...uint32) ([2]uint32, error)
		DataBase() uint32
	})
	for i := 0; i < 3; i++ {
		ret, err := enc.Call(enc.DataBase())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("enclave counter -> %d\n", ret[0])
	}

	// 3. Remote attestation: the verifier challenges with a nonce and
	// checks the ECDSA quote against the platform's public key.
	verifier := intrust.NewVerifier()
	verifier.AllowMeasurement("counter", e.Measurement())
	nonce, err := verifier.Challenge()
	if err != nil {
		log.Fatal(err)
	}
	quoter := e.(interface {
		Quote(nonce []byte) (*intrust.Quote, error)
	})
	quote, err := quoter.Quote(nonce)
	if err != nil {
		log.Fatal(err)
	}
	if err := verifier.CheckQuote(sgx.QuotingPublic().Public(), quote); err != nil {
		log.Fatalf("attestation failed: %v", err)
	}
	fmt.Printf("remote attestation OK (measurement %s)\n", e.Measurement())

	// 4. Sealed storage: enclave state survives outside the TEE but is
	// bound to the enclave identity.
	blob, err := e.Seal([]byte("counter=3"))
	if err != nil {
		log.Fatal(err)
	}
	back, err := e.Unseal(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed %d bytes, unsealed %q\n", len(blob), back)

	// 5. The hardware guarantees: the OS, DMA devices and physical bus
	// probes all fail to read the enclave's plaintext.
	dataOff := enc.DataBase() - e.Base()
	fmt.Printf("OS access probe:   %v\n", intrust.ProbeOSAccess(sgx, e, dataOff, 3).Detail)
	fmt.Printf("DMA attack probe:  %v\n", intrust.ProbeDMA(sgx, e, dataOff, 3).Detail)
	fmt.Printf("bus snoop probe:   %v\n", intrust.ProbeBusSnoop(sgx, e, dataOff, 3).Detail)
}
