// Power-analysis walkthrough (Section 5): CPA recovers an AES key from a
// few hundred simulated power traces; first-order masking breaks the
// attack, hiding multiplies the trace budget, and an EM probe works like
// a noisier power probe.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/intrust-sim/intrust"
	"github.com/intrust-sim/intrust/internal/attack/physical"
)

func main() {
	key := []byte("power analysis k")
	rng := rand.New(rand.NewSource(7))

	// Unprotected AES: count the traces CPA needs.
	victim, err := physical.NewUnprotectedAES(key)
	if err != nil {
		log.Fatal(err)
	}
	n, ok := intrust.TracesToDisclosure(victim, intrust.PowerProbe(0.8, 1), key, 4096, rng)
	fmt.Printf("unprotected AES : CPA recovers the key after %d traces (success=%v)\n", n, ok)

	// Difference-of-means DPA on the same victim.
	ts := intrust.CollectTraces(victim, intrust.PowerProbe(0.5, 2), 1500, rng)
	dpaKey := intrust.DPAKey(ts)
	fmt.Printf("classic DPA     : %d/16 key bytes from 1500 traces\n",
		physical.CorrectBytes(dpaKey, key))

	// First-order masking: the countermeasure that breaks the link
	// between data and leakage.
	masked, err := physical.NewMaskedAESVictim(key, 99)
	if err != nil {
		log.Fatal(err)
	}
	nM, okM := intrust.TracesToDisclosure(masked, intrust.PowerProbe(0.8, 3), key, 4096, rng)
	fmt.Printf("1st-order masked: CPA fails within %d traces (success=%v)\n", nM, okM)

	// Hiding (random delays): raises the budget without removing leakage.
	hidden := intrust.PowerProbe(0.8, 4)
	hidden.JitterMax = 6
	nH, okH := intrust.TracesToDisclosure(victim, hidden, key, 4096, rng)
	fmt.Printf("hiding (jitter) : CPA needs %d traces (success=%v)\n", nH, okH)

	// EM emanations: same attack, weaker coupling.
	tsEM := intrust.CollectTraces(victim, intrust.EMProbe(0.8, 5), 1024, rng)
	fmt.Printf("EM probe        : %d/16 key bytes from 1024 traces\n",
		physical.CorrectBytes(intrust.CPAKey(tsEM), key))
}
