// Transient-execution walkthrough (Section 4.2): Spectre, Meltdown and
// Foreshadow run as real programs on the simulated CPU, with mitigations
// toggled. The finale reproduces the paper's "trust shattered" example:
// Foreshadow extracts SGX's attestation key through the L1 terminal
// fault, using the page-swap preload.
package main

import (
	"fmt"
	"log"

	"github.com/intrust-sim/intrust"
)

func main() {
	secret := []byte("HW-TRUST-SECRET!")

	fmt.Println("== Spectre v1 (bounds-check bypass) ==")
	res, err := intrust.SpectreV1(intrust.HighEndFeatures(), secret, false)
	must(err)
	fmt.Printf("speculative core : %s -> %q\n", res, printable(res.Recovered))
	res, err = intrust.SpectreV1(intrust.HighEndFeatures(), secret, true)
	must(err)
	fmt.Printf("with fence       : %s\n", res)
	res, err = intrust.SpectreV1(intrust.EmbeddedFeatures(), secret, false)
	must(err)
	fmt.Printf("in-order core    : %s (IoT devices lack speculation)\n", res)

	fmt.Println("\n== Spectre v2 (BTB injection) and ret2spec (RSB) ==")
	res, err = intrust.SpectreBTB(intrust.HighEndFeatures(), secret, false)
	must(err)
	fmt.Printf("shared BTB       : %s\n", res)
	res, err = intrust.SpectreBTB(intrust.HighEndFeatures(), secret, true)
	must(err)
	fmt.Printf("predictor flush  : %s\n", res)
	res, err = intrust.Ret2spec(intrust.HighEndFeatures(), secret)
	must(err)
	fmt.Printf("poisoned RSB     : %s\n", res)

	fmt.Println("\n== Meltdown (kernel memory from user space) ==")
	res, err = intrust.Meltdown(intrust.HighEndFeatures(), secret)
	must(err)
	fmt.Printf("vulnerable core  : %s -> %q\n", res, printable(res.Recovered))
	fixed := intrust.HighEndFeatures()
	fixed.FaultForwarding = false
	res, err = intrust.Meltdown(fixed, secret)
	must(err)
	fmt.Printf("fixed silicon    : %s\n", res)

	fmt.Println("\n== Foreshadow (L1TF vs SGX) ==")
	plat := intrust.NewServerPlatform()
	sgx, err := intrust.NewSGX(plat)
	must(err)
	res, err = intrust.ForeshadowSGX(sgx, 16, false)
	must(err)
	fmt.Printf("quoting enclave  : %s (attestation key bytes!)\n", res)

	plat2 := intrust.NewServerPlatform()
	sgx2, err := intrust.NewSGX(plat2)
	must(err)
	sgx2.MitigateL1TF = true
	res, err = intrust.ForeshadowSGX(sgx2, 16, true)
	must(err)
	fmt.Printf("with L1 flush    : %s\n", res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
