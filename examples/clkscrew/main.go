// CLKSCREW walkthrough (Section 5, [37]): the normal-world kernel abuses
// the software-exposed DVFS regulator to glitch the TrustZone secure
// world and steals its AES key with differential fault analysis — no
// access-control violation anywhere.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/intrust-sim/intrust"
	"github.com/intrust-sim/intrust/internal/attack/physical"
)

func main() {
	// Phase 0: a glitch-parameter campaign, as every fault attack starts.
	rng := rand.New(rand.NewSource(3))
	fmt.Println("glitch campaigns (fault sweet spots per mechanism):")
	for _, kind := range []physical.GlitchKind{
		physical.GlitchClock, physical.GlitchVoltage, physical.GlitchEM, physical.GlitchOptical,
	} {
		pts := intrust.GlitchCampaign(kind, 21, 200, rng)
		s, faults := physical.BestGlitchStrength(pts)
		fmt.Printf("  %-8v sweet spot at strength %.2f (%d/200 exploitable faults)\n", kind, s, faults)
	}

	// Phase 1-3: the full CLKSCREW chain against TrustZone.
	fmt.Println("\nCLKSCREW against the TrustZone secure world:")
	res, err := intrust.CLKSCREW(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  overclocked to %d MHz (per-instruction fault prob %.3f)\n",
		res.OverclockMHz, res.FaultProb)
	fmt.Printf("  %d secure-world invocations, %d usable faulty ciphertexts\n",
		res.Invocations, res.UsableFaults)
	fmt.Printf("  faults at nominal frequency: %d (regulator is the only lever)\n",
		res.NominalFaults)
	if res.Success {
		fmt.Printf("  SECURE-WORLD KEY RECOVERED: %x\n", res.RecoveredKey)
	} else {
		fmt.Println("  attack failed")
	}
}
