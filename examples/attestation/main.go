// Embedded remote attestation walkthrough (Section 3.3): SMART's ROM-based
// dynamic root of trust detects firmware tampering on an IoT device, shows
// its real-time cost (interrupts held off), and TyTAN's chunked
// attestation bounds the latency.
package main

import (
	"fmt"
	"log"

	"github.com/intrust-sim/intrust"
	"github.com/intrust-sim/intrust/internal/tee"
)

func main() {
	// A SMART-enabled microcontroller.
	dev := intrust.NewEmbeddedPlatform()
	sm, err := intrust.NewSMART(dev)
	if err != nil {
		log.Fatal(err)
	}
	// Application firmware at 0x8000; it re-enables interrupts and halts.
	fw := intrust.MustAssemble(`
        .org 0x8000
app:    li   t0, 1
        csrw status, t0
        hlt
`)
	if err := dev.Mem.LoadProgram(fw); err != nil {
		log.Fatal(err)
	}
	const fwBase, fwLen = 0x8000, 16

	// The verifier (cloud backend) challenges the device. A sensor
	// interrupt arrives right before attestation: SMART holds it off for
	// the whole run (its real-time cost).
	verifier := intrust.NewVerifier()
	nonce, _ := verifier.Challenge()
	dev.Core(0).SetCSR(0x011 /* tvec */, 0x9000)
	if err := dev.Mem.LoadProgram(intrust.MustAssemble(".org 0x9000\nhlt")); err != nil {
		log.Fatal(err)
	}
	dev.Core(0).RaiseIRQ()
	res, err := sm.Attest(fwBase, fwLen, nonce, fwBase)
	if err != nil {
		log.Fatal(err)
	}
	verifier.AllowMeasurement("firmware-v1", res.Report.Measurement)
	if err := verifier.CheckReport(sm.Key(), res.Report); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean firmware attested (measurement %s)\n", res.Report.Measurement)
	fmt.Printf("  interrupts held pending for %d instructions (SMART's RT cost)\n",
		res.InstructionsWithIRQPending)

	// Malware patches the firmware; the next attestation exposes it.
	if err := dev.Mem.WriteRaw(fwBase+4, []byte{0x90}); err != nil {
		log.Fatal(err)
	}
	nonce2, _ := verifier.Challenge()
	res2, err := sm.Attest(fwBase, fwLen, nonce2, fwBase)
	if err != nil {
		log.Fatal(err)
	}
	if err := verifier.CheckReport(sm.Key(), res2.Report); err != nil {
		fmt.Printf("tampered firmware rejected: %v\n", err)
	} else {
		log.Fatal("tampered firmware slipped through!")
	}

	// TyTAN on a fresh device: same attestation, bounded latency.
	ty, err := intrust.NewTyTAN(intrust.NewEmbeddedPlatform())
	if err != nil {
		log.Fatal(err)
	}
	prog := intrust.MustAssemble(".org 0\nhlt")
	sig, err := ty.SignImage(prog.Segments[0].Data)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := ty.LoadSignedTrustlet(tee.EnclaveConfig{Name: "rt-app", Program: prog, DataSize: 64}, sig)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := ty.AttestRT(tr, tr.CodeBase(), 2048, nonce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TyTAN real-time attestation: %d chunks, worst-case uninterruptible span %d bytes\n",
		rt.Chunks, rt.WorstCaseLatencyBytes)
}
