// Cache side-channel walkthrough (Section 4.1): recover AES key material
// with Prime+Probe and Flush+Reload on an undefended platform, then watch
// Sanctum-style LLC partitioning and Sanctuary-style cache exclusion kill
// the same attacks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/intrust-sim/intrust"
	"github.com/intrust-sim/intrust/internal/cache"
)

const (
	victimDomain   = 5
	attackerDomain = 9
	tableBase      = 0x40000
	samples        = 300
)

func main() {
	key := []byte("victim aes key!!")
	rng := rand.New(rand.NewSource(1))

	// Scenario 1: undefended shared cache (SGX / TrustZone situation).
	plat := intrust.NewServerPlatform()
	victim, err := intrust.NewCacheVictim(plat.Core(0).Hier, key, victimDomain, tableBase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== undefended platform (SGX / TrustZone have no cache defense) ==")
	fmt.Println(intrust.FlushReload(victim, samples, attackerDomain, rng))
	fmt.Println(intrust.PrimeProbe(victim, plat.LLC, samples, attackerDomain, rng))
	fmt.Println(intrust.EvictTime(victim, samples*8, rng))

	// Scenario 2: Sanctum — LLC partitioning between domains.
	plat2 := intrust.NewServerPlatform()
	victim2, err := intrust.NewCacheVictim(plat2.Core(0).Hier, key, victimDomain, tableBase)
	if err != nil {
		log.Fatal(err)
	}
	plat2.LLC.SetPartition(victimDomain, 0x00ff)
	plat2.LLC.SetPartition(attackerDomain, 0xff00)
	fmt.Println("\n== Sanctum-style LLC partition ==")
	fmt.Println(intrust.PrimeProbe(victim2, plat2.LLC, samples, attackerDomain, rng))

	// Scenario 3: Sanctuary — enclave memory excluded from shared caches.
	plat3 := intrust.NewServerPlatform()
	victim3, err := intrust.NewCacheVictim(plat3.Core(0).Hier, key, victimDomain, tableBase)
	if err != nil {
		log.Fatal(err)
	}
	plat3.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
		if addr >= tableBase && addr < tableBase+5*0x400 {
			return cache.LevelL1
		}
		return cache.LevelAll
	}
	fmt.Println("\n== Sanctuary-style cache exclusion ==")
	fmt.Println(intrust.PrimeProbe(victim3, plat3.LLC, samples, attackerDomain, rng))

	// Bonus: the TLB and BTB channels the paper cites ([15], [28]).
	tlb := cache.NewTLB(32, 4)
	secret := []byte{0xA5, 0x3C}
	_, bits := intrust.TLBAttack(tlb, secret, 1, 2)
	fmt.Printf("\nTLB prime+probe: %d/%d secret bits through the shared TLB\n", bits, len(secret)*8)
}
