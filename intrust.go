// Package intrust is the public facade of the intrust simulator: a full
// reproduction of "In Hardware We Trust: Gains and Pains of
// Hardware-assisted Security" (Batina, Jauernig, Mentens, Sadeghi, Stapf —
// DAC 2019) as an executable system.
//
// The library spans the paper's whole spectrum:
//
//   - three platform classes (server/desktop, mobile, embedded) built on
//     a simulated 32-bit CPU with caches, MMU/MPU, TrustZone-style worlds,
//     branch prediction and transient execution;
//   - the eight surveyed security architectures: Intel SGX, Sanctum, ARM
//     TrustZone, Sanctuary, SMART, Sancus, TrustLite and TyTAN;
//   - the attack families of Sections 4 and 5: cache side channels
//     (Evict+Time, Prime+Probe, Flush+Reload, TLB, BTB), transient
//     execution (Spectre, Meltdown, Foreshadow) and classical physical
//     attacks (timing, DPA/CPA, EM, DFA, RSA-CRT faults, CLKSCREW);
//   - the evaluation engine regenerating the paper's Figure 1 and its
//     implicit comparison tables from measurement.
//
// Every attack variant is also a registered Scenario in the
// internal/scenario catalog (re-exported below), mountable against any
// architecture from one typed environment; see EXPERIMENTS.md for the
// generated index.
//
// See examples/ for runnable walkthroughs and cmd/intrust for the
// experiment CLI.
package intrust

//go:generate go run ./cmd/intrust attacks -markdown -o EXPERIMENTS.md

import (
	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/sanctuary"
	"github.com/intrust-sim/intrust/internal/tee/sanctum"
	"github.com/intrust-sim/intrust/internal/tee/sancus"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
	"github.com/intrust-sim/intrust/internal/tee/smart"
	"github.com/intrust-sim/intrust/internal/tee/trustlite"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
	"github.com/intrust-sim/intrust/internal/tee/tytan"
)

// Platform and hardware types.
type (
	// Platform is one assembled machine (cores, caches, memory, DMA).
	Platform = platform.Platform
	// Features selects a core's microarchitectural behaviour.
	Features = cpu.Features
	// Program is an assembled HS-32 program.
	Program = isa.Program
)

// Platform constructors for the three classes of Figure 1.
var (
	NewServerPlatform   = platform.NewServer
	NewMobilePlatform   = platform.NewMobile
	NewEmbeddedPlatform = platform.NewEmbedded
)

// Core feature presets.
var (
	HighEndFeatures  = cpu.HighEndFeatures
	MobileFeatures   = cpu.MobileFeatures
	EmbeddedFeatures = cpu.EmbeddedFeatures
)

// Assemble translates HS-32 assembly into a loadable program.
var Assemble = isa.Assemble

// MustAssemble is Assemble panicking on error (for fixed programs).
var MustAssemble = isa.MustAssemble

// TEE architecture layer.
type (
	// Architecture is a hardware-assisted security architecture instance.
	Architecture = tee.Architecture
	// Enclave is a unit of isolated execution.
	Enclave = tee.Enclave
	// EnclaveConfig describes an enclave to create.
	EnclaveConfig = tee.EnclaveConfig
	// Capabilities describes an architecture's mechanism set.
	Capabilities = tee.Capabilities
)

// Architecture constructors (Section 3).
var (
	NewSGX       = sgx.New
	NewSanctum   = sanctum.New
	NewTrustZone = trustzone.New
	NewSanctuary = sanctuary.New
	NewSMART     = smart.New
	NewSancus    = sancus.New
	NewTrustLite = trustlite.New
	NewTyTAN     = tytan.New
)

// Architecture probes backing the TAB2 matrix.
var (
	ProbeDMA      = tee.ProbeDMA
	ProbeBusSnoop = tee.ProbeBusSnoop
	ProbeOSAccess = tee.ProbeOSAccess
)

// Attestation and sealing.
type (
	// Measurement identifies code (SHA-256).
	Measurement = attest.Measurement
	// Report is a MAC-based local attestation report.
	Report = attest.Report
	// Quote is an ECDSA-signed remote attestation report.
	Quote = attest.Quote
	// Verifier checks reports and quotes with nonce freshness.
	Verifier = attest.Verifier
)

// Attestation helpers.
var (
	Measure      = attest.Measure
	NewVerifier  = attest.NewVerifier
	VerifyReport = attest.VerifyReport
	VerifyQuote  = attest.VerifyQuote
	Seal         = attest.Seal
	Unseal       = attest.Unseal
)

// Cache side-channel attacks (Section 4.1).
type (
	// CacheVictim is the T-table AES service under cache observation.
	CacheVictim = cachesca.Victim
	// CacheAttackResult reports recovered key material.
	CacheAttackResult = cachesca.Result
)

// Cache attack entry points.
var (
	NewCacheVictim = cachesca.NewVictim
	FlushReload    = cachesca.FlushReload
	PrimeProbe     = cachesca.PrimeProbe
	EvictTime      = cachesca.EvictTime
	TLBAttack      = cachesca.TLBAttack
	BranchShadow   = cachesca.BranchShadow
)

// Transient-execution attacks (Section 4.2).
type (
	// TransientResult reports extracted bytes.
	TransientResult = transient.Result
)

// Transient attack entry points.
var (
	SpectreV1     = transient.SpectreV1
	SpectreBTB    = transient.SpectreBTB
	Ret2spec      = transient.Ret2spec
	Meltdown      = transient.Meltdown
	ForeshadowSGX = transient.ForeshadowSGX
)

// Classical physical attacks (Section 5).
var (
	CollectTimingSamples = physical.CollectTimingSamples
	KocherTiming         = physical.KocherTiming
	CollectTraces        = physical.CollectTraces
	CPAKey               = physical.CPAKey
	DPAKey               = physical.DPAKey
	TracesToDisclosure   = physical.TracesToDisclosure
	PiretQuisquater      = physical.PiretQuisquater
	NewFaultOracle       = physical.NewFaultOracle
	Bellcore             = physical.Bellcore
	GlitchCampaign       = physical.GlitchCampaign
	CLKSCREW             = physical.CLKSCREW
)

// Power probes for side-channel collection.
var (
	PowerProbe = power.PowerProbe
	EMProbe    = power.EMProbe
)

// Evaluation engine: the paper's figure and tables, from measurement.
type (
	// EvalTable is a rendered comparison matrix.
	EvalTable = core.Table
	// Fig1Result is the regenerated Figure 1.
	Fig1Result = core.Fig1Result
)

// Experiment entry points (see the generated EXPERIMENTS.md for the
// full index of artifacts and scenarios).
var (
	Figure1             = core.Figure1
	Table2Architectures = core.Table2Architectures
	Table3CacheSCA      = core.Table3CacheSCA
	Table4Transient     = core.Table4Transient
	Table5Physical      = core.Table5Physical
)

// Unified attack-scenario API: every attack variant is a self-registered
// Scenario in a process-wide catalog, mountable against any architecture
// from one typed environment. The bespoke per-attack functions above
// (FlushReload, SpectreV1, CPAKey, ...) remain supported; the scenario
// layer is how the sweep, the CLI catalog and downstream schedulers
// enumerate them uniformly.
type (
	// Scenario is one attack variant as an enumerable, schedulable unit.
	Scenario = scenario.Scenario
	// ScenarioSpec is the declarative Scenario implementation used by
	// the built-in catalog (and available for custom registrations).
	ScenarioSpec = scenario.Spec
	// ScenarioEnv is the typed environment a scenario mounts from.
	ScenarioEnv = scenario.Env
	// ScenarioOutcome is what a mounted scenario measured.
	ScenarioOutcome = scenario.Outcome
	// ScenarioRegistry is a concurrency-safe scenario catalog.
	ScenarioRegistry = scenario.Registry
)

// Scenario registry entry points (the default process-wide catalog).
var (
	RegisterScenario        = scenario.Register
	LookupScenario          = scenario.Lookup
	AllScenarios            = scenario.All
	ScenariosByFamily       = scenario.ByFamily
	ScenarioFamilies        = scenario.Families
	NewScenarioEnv          = scenario.NewEnv
	NewScenarioRegistry     = scenario.NewRegistry
	ScenarioCatalogMarkdown = scenario.CatalogMarkdown
)

// Concurrent experiment engine: composable experiments on a worker pool
// with deterministic per-job seeding and JSON reporting.
type (
	// Experiment is one schedulable measurement unit.
	Experiment = engine.Experiment
	// ExperimentCtx is the per-job context (RNG, samples, seed).
	ExperimentCtx = engine.Ctx
	// ExperimentOutcome is what an experiment measured.
	ExperimentOutcome = engine.Outcome
	// ExperimentResult pairs an experiment with outcome, timing, error.
	ExperimentResult = engine.Result
	// Engine executes experiments on a bounded worker pool.
	Engine = engine.Engine
	// EngineReport is the machine-readable artifact of a run.
	EngineReport = engine.Report
)

// Engine entry points.
var (
	NewEngine       = engine.New
	NewEngineReport = engine.NewReport
	ReadReport      = engine.ReadReport
	Summarize       = engine.Summarize
)

// Sweep: the attack×architecture cross-product as engine experiments
// (the `intrust sweep` CLI mode).
var (
	SweepExperiments  = core.SweepExperiments
	SweepTable        = core.SweepTable
	AllArchitectures  = core.AllArchitectures
	AllAttackFamilies = core.AllAttackFamilies
)
