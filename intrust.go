// Package intrust is the public facade of the intrust simulator: a full
// reproduction of "In Hardware We Trust: Gains and Pains of
// Hardware-assisted Security" (Batina, Jauernig, Mentens, Sadeghi, Stapf —
// DAC 2019) as an executable system.
//
// The library spans the paper's whole spectrum:
//
//   - three platform classes (server/desktop, mobile, embedded) built on
//     a simulated 32-bit CPU with caches, MMU/MPU, TrustZone-style worlds,
//     branch prediction and transient execution;
//   - the eight surveyed security architectures: Intel SGX, Sanctum, ARM
//     TrustZone, Sanctuary, SMART, Sancus, TrustLite and TyTAN;
//   - the attack families of Sections 4 and 5: cache side channels
//     (Evict+Time, Prime+Probe, Flush+Reload, TLB, BTB), transient
//     execution (Spectre, Meltdown, Foreshadow) and classical physical
//     attacks (timing, DPA/CPA, EM, DFA, RSA-CRT faults, CLKSCREW);
//   - the evaluation engine regenerating the paper's Figure 1 and its
//     implicit comparison tables from measurement.
//
// Every attack variant is also a registered Scenario in the
// internal/scenario catalog (re-exported below), mountable against any
// architecture from one typed environment; see EXPERIMENTS.md for the
// generated index. Symmetrically, every mitigation the paper surveys is
// a registered Defense in the internal/defense catalog — the third axis
// of the sweep's scenario × architecture × defense efficacy grid; see
// the generated docs/DEFENSES.md handbook.
//
// See examples/ for runnable walkthroughs and cmd/intrust for the
// experiment CLI.
package intrust

//go:generate go run ./cmd/intrust attacks -markdown -o EXPERIMENTS.md
//go:generate go run ./cmd/intrust defenses -markdown -o docs/DEFENSES.md

import (
	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/attestsvc"
	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/fault"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/perf"
	"github.com/intrust-sim/intrust/internal/serve"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/stats"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/sanctuary"
	"github.com/intrust-sim/intrust/internal/tee/sanctum"
	"github.com/intrust-sim/intrust/internal/tee/sancus"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
	"github.com/intrust-sim/intrust/internal/tee/smart"
	"github.com/intrust-sim/intrust/internal/tee/trustlite"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
	"github.com/intrust-sim/intrust/internal/tee/tytan"
)

// Platform and hardware types.
type (
	// Platform is one assembled machine (cores, caches, memory, DMA).
	Platform = platform.Platform
	// Features selects a core's microarchitectural behaviour.
	Features = cpu.Features
	// Program is an assembled HS-32 program.
	Program = isa.Program
)

// Platform constructors for the three classes of Figure 1.
var (
	// NewServerPlatform assembles the stationary high-performance
	// platform: speculative cores, deep cache hierarchy, shared LLC (§2).
	NewServerPlatform = platform.NewServer
	// NewMobilePlatform assembles the mobile platform: TrustZone-style
	// worlds and a software-reachable DVFS regulator (§2, §5 CLKSCREW).
	NewMobilePlatform = platform.NewMobile
	// NewEmbeddedPlatform assembles the embedded/IoT platform: one
	// in-order cacheless core with an MPU (§2).
	NewEmbeddedPlatform = platform.NewEmbedded
)

// Core feature presets.
var (
	// HighEndFeatures enables speculation, fault forwarding and the deep
	// predictor structures of the server-class core (§4.2 surface).
	HighEndFeatures = cpu.HighEndFeatures
	// MobileFeatures is the mobile core's reduced speculative profile.
	MobileFeatures = cpu.MobileFeatures
	// EmbeddedFeatures is the in-order embedded core: no speculation
	// window at all (§4.2: simple cores block Spectre by construction).
	EmbeddedFeatures = cpu.EmbeddedFeatures
)

// Assemble translates HS-32 assembly into a loadable program.
var Assemble = isa.Assemble

// MustAssemble is Assemble panicking on error (for fixed programs).
var MustAssemble = isa.MustAssemble

// TEE architecture layer.
type (
	// Architecture is a hardware-assisted security architecture instance.
	Architecture = tee.Architecture
	// Enclave is a unit of isolated execution.
	Enclave = tee.Enclave
	// EnclaveConfig describes an enclave to create.
	EnclaveConfig = tee.EnclaveConfig
	// Capabilities describes an architecture's mechanism set.
	Capabilities = tee.Capabilities
)

// Architecture constructors (Section 3).
var (
	// NewSGX builds Intel SGX: EPC, MEE, local/remote attestation (§3.1).
	NewSGX = sgx.New
	// NewSanctum builds Sanctum: enclaves with LLC partitioning (§3.1).
	NewSanctum = sanctum.New
	// NewTrustZone builds ARM TrustZone: two worlds, one secure OS (§3.2).
	NewTrustZone = trustzone.New
	// NewSanctuary builds Sanctuary: TrustZone-based user-space enclaves
	// with cache exclusion (§3.2).
	NewSanctuary = sanctuary.New
	// NewSMART builds SMART: a ROM-rooted attestation primitive (§3.3).
	NewSMART = smart.New
	// NewSancus builds Sancus: zero-software-TCB protected modules (§3.3).
	NewSancus = sancus.New
	// NewTrustLite builds TrustLite: EA-MPU-isolated trustlets (§3.3).
	NewTrustLite = trustlite.New
	// NewTyTAN builds TyTAN: TrustLite plus dynamic loading and secure
	// IPC with real-time guarantees (§3.3).
	NewTyTAN = tytan.New
)

// Architecture probes backing the TAB2 matrix.
var (
	// ProbeDMA attacks an enclave's memory through a DMA engine (§3).
	ProbeDMA = tee.ProbeDMA
	// ProbeBusSnoop reads enclave memory straight off the bus — blocked
	// only by memory encryption (§3.1 MEE).
	ProbeBusSnoop = tee.ProbeBusSnoop
	// ProbeOSAccess attacks enclave memory from the compromised OS (§2).
	ProbeOSAccess = tee.ProbeOSAccess
)

// Attestation and sealing.
type (
	// Measurement identifies code (SHA-256).
	Measurement = attest.Measurement
	// Report is a MAC-based local attestation report.
	Report = attest.Report
	// Quote is an ECDSA-signed remote attestation report.
	Quote = attest.Quote
	// Verifier checks reports and quotes with nonce freshness.
	Verifier = attest.Verifier
)

// Attestation helpers.
var (
	// Measure hashes code into an identity (SHA-256 measurement).
	Measure = attest.Measure
	// NewVerifier builds a verifier with nonce-freshness tracking.
	NewVerifier = attest.NewVerifier
	// VerifyReport checks a MAC-based local attestation report.
	VerifyReport = attest.VerifyReport
	// VerifyQuote checks an ECDSA-signed remote attestation quote.
	VerifyQuote = attest.VerifyQuote
	// Seal encrypts data to a measurement-derived key.
	Seal = attest.Seal
	// Unseal reverses Seal under the same identity.
	Unseal = attest.Unseal
)

// Cache side-channel attacks (Section 4.1).
type (
	// CacheVictim is the T-table AES service under cache observation.
	CacheVictim = cachesca.Victim
	// CacheAttackResult reports recovered key material.
	CacheAttackResult = cachesca.Result
)

// Cache attack entry points.
var (
	// NewCacheVictim places the T-table AES victim in the simulated
	// address space (§4.1).
	NewCacheVictim = cachesca.NewVictim
	// NewCTCacheVictim places the constant-time AES victim — the §4.1
	// software countermeasure the ct-aes defense mounts.
	NewCTCacheVictim = cachesca.NewCTVictim
	// FlushReload mounts Flush+Reload (Yarom–Falkner) key recovery.
	FlushReload = cachesca.FlushReload
	// PrimeProbe mounts Prime+Probe (Osvik–Shamir–Tromer) via the LLC.
	PrimeProbe = cachesca.PrimeProbe
	// EvictTime mounts the whole-encryption Evict+Time timing attack.
	EvictTime = cachesca.EvictTime
	// TLBAttack mounts the TLBleed-style TLB prime+probe channel.
	TLBAttack = cachesca.TLBAttack
	// BranchShadow mounts BTB/PHT branch shadowing (Lee et al.).
	BranchShadow = cachesca.BranchShadow
)

// Transient-execution attacks (Section 4.2).
type (
	// TransientResult reports extracted bytes.
	TransientResult = transient.Result
)

// Transient attack entry points.
var (
	// SpectreV1 mounts the bounds-check-bypass attack (§4.2), optionally
	// under the spec-barrier (lfence) mitigation.
	SpectreV1 = transient.SpectreV1
	// SpectreBTB cross-trains an indirect branch to a disclosure gadget,
	// optionally under the btb-flush (IBPB) mitigation.
	SpectreBTB = transient.SpectreBTB
	// Ret2spec poisons the return stack buffer (§4.2).
	Ret2spec = transient.Ret2spec
	// Meltdown exploits fault-deferred forwarding (§4.2).
	Meltdown = transient.Meltdown
	// ForeshadowSGX extracts the quoting enclave's attestation key via
	// an L1 terminal fault (§4.2).
	ForeshadowSGX = transient.ForeshadowSGX
)

// Classical physical attacks (Section 5).
var (
	// CollectTimingSamples times square-and-multiply RSA exponentiations.
	CollectTimingSamples = physical.CollectTimingSamples
	// KocherTiming votes exponent bits from timing samples (§5).
	KocherTiming = physical.KocherTiming
	// CollectTraces records power/EM traces of AES encryptions.
	CollectTraces = physical.CollectTraces
	// CPAKey recovers the key by Pearson correlation (§5 CPA).
	CPAKey = physical.CPAKey
	// DPAKey recovers the key by difference of means (§5 DPA).
	DPAKey = physical.DPAKey
	// TracesToDisclosure counts traces until full key disclosure.
	TracesToDisclosure = physical.TracesToDisclosure
	// PiretQuisquater runs the differential fault attack on AES (§5).
	PiretQuisquater = physical.PiretQuisquater
	// NewFaultOracle builds a faultable AES encryption oracle.
	NewFaultOracle = physical.NewFaultOracle
	// Bellcore factors the RSA modulus from one faulty CRT signature
	// (§5), unless the crt-check countermeasure suppresses it.
	Bellcore = physical.Bellcore
	// GlitchCampaign sweeps glitch parameters for the fault sweet spot.
	GlitchCampaign = physical.GlitchCampaign
	// CLKSCREW mounts the DVFS overclocking fault attack on the
	// TrustZone secure world (§5).
	CLKSCREW = physical.CLKSCREW
	// CLKSCREWDefended is CLKSCREW against an optionally clock-jittered
	// secure world (§5 fault countermeasure).
	CLKSCREWDefended = physical.CLKSCREWDefended
)

// Power probes for side-channel collection.
var (
	// PowerProbe models a shunt-resistor power measurement (§5).
	PowerProbe = power.PowerProbe
	// EMProbe models a near-field electromagnetic probe (§5).
	EMProbe = power.EMProbe
)

// Evaluation engine: the paper's figure and tables, from measurement.
type (
	// EvalTable is a rendered comparison matrix.
	EvalTable = core.Table
	// Fig1Result is the regenerated Figure 1.
	Fig1Result = core.Fig1Result
)

// Experiment entry points (see the generated EXPERIMENTS.md for the
// full index of artifacts and scenarios).
var (
	// Figure1 regenerates the §2 adversary/requirement heatmap.
	Figure1 = core.Figure1
	// Table2Architectures regenerates the §3 feature matrix by probe.
	Table2Architectures = core.Table2Architectures
	// Table3CacheSCA regenerates the §4.1 attack×defense matrix.
	Table3CacheSCA = core.Table3CacheSCA
	// Table4Transient regenerates the §4.2 attack×configuration matrix.
	Table4Transient = core.Table4Transient
	// Table5Physical regenerates the §5 attack×countermeasure matrix.
	Table5Physical = core.Table5Physical
)

// Unified attack-scenario API: every attack variant is a self-registered
// Scenario in a process-wide catalog, mountable against any architecture
// from one typed environment. The bespoke per-attack functions above
// (FlushReload, SpectreV1, CPAKey, ...) remain supported; the scenario
// layer is how the sweep, the CLI catalog and downstream schedulers
// enumerate them uniformly.
type (
	// Scenario is one attack variant as an enumerable, schedulable unit.
	Scenario = scenario.Scenario
	// ScenarioSpec is the declarative Scenario implementation used by
	// the built-in catalog (and available for custom registrations).
	ScenarioSpec = scenario.Spec
	// ScenarioEnv is the typed environment a scenario mounts from.
	ScenarioEnv = scenario.Env
	// ScenarioOutcome is what a mounted scenario measured.
	ScenarioOutcome = scenario.Outcome
	// ScenarioRegistry is a concurrency-safe scenario catalog.
	ScenarioRegistry = scenario.Registry
)

// Scenario registry entry points (the default process-wide catalog).
var (
	// RegisterScenario adds a scenario to the default catalog.
	RegisterScenario = scenario.Register
	// LookupScenario finds a scenario by name, case-insensitively.
	LookupScenario = scenario.Lookup
	// AllScenarios enumerates the catalog in deterministic order.
	AllScenarios = scenario.All
	// ScenariosByFamily enumerates one attack family of the catalog.
	ScenariosByFamily = scenario.ByFamily
	// ScenarioFamilies lists the catalog's populated families.
	ScenarioFamilies = scenario.Families
	// NewScenarioEnv builds a mount environment with the architecture's
	// stock defenses (the paper's §4.1 wiring).
	NewScenarioEnv = scenario.NewEnv
	// NewScenarioEnvWithDefenses builds a mount environment under an
	// explicit mitigation set — the sweep's defense axis.
	NewScenarioEnvWithDefenses = scenario.NewEnvWithDefenses
	// NewScenarioRegistry returns an empty scenario registry.
	NewScenarioRegistry = scenario.NewRegistry
	// ScenarioCatalogMarkdown renders the registry as EXPERIMENTS.md.
	ScenarioCatalogMarkdown = scenario.CatalogMarkdown
	// ScenarioVerdictClass normalizes a cell verdict to the sweep's
	// broken/mitigated/n-a grading.
	ScenarioVerdictClass = scenario.VerdictClass
)

// Defense axis: every mitigation the paper surveys — the §4.1 cache
// isolation mechanisms, the §4.2 speculation controls and the §5
// side-channel/fault countermeasures — is a self-registered Defense in a
// process-wide catalog mirroring the scenario registry. A Defense is a
// pure configuration transform applied at platform/victim construction;
// the sweep toggles them per cell to measure the paper's defense-efficacy
// matrix (which attacks each mitigation blocks, and which it leaves
// open).
type (
	// Defense is one mitigation as an enumerable, toggleable unit.
	Defense = defense.Defense
	// DefenseSpec is the declarative Defense implementation used by the
	// built-in catalog (and available for custom registrations).
	DefenseSpec = defense.Spec
	// DefenseConfig is the wiring a Defense transforms: platform hooks
	// plus victim-construction knobs.
	DefenseConfig = defense.Config
	// DefenseRegistry is a concurrency-safe defense catalog.
	DefenseRegistry = defense.Registry
)

// Defense registry entry points (the default process-wide catalog).
var (
	// RegisterDefense adds a defense to the default catalog.
	RegisterDefense = defense.Register
	// LookupDefense finds a defense by name, case-insensitively.
	LookupDefense = defense.Lookup
	// AllDefenses enumerates the catalog in deterministic order.
	AllDefenses = defense.All
	// DefensesByFamily enumerates the defenses countering one family.
	DefensesByFamily = defense.ByFamily
	// DefenseFamilies lists the catalog's populated countered families.
	DefenseFamilies = defense.Families
	// StockDefenses lists an architecture's paper-stock defenses,
	// resolved from registry metadata (never hard-coded).
	StockDefenses = defense.StockFor
	// NewDefenseRegistry returns an empty defense registry.
	NewDefenseRegistry = defense.NewRegistry
	// DefenseCatalogMarkdown renders the registry as docs/DEFENSES.md.
	DefenseCatalogMarkdown = defense.CatalogMarkdown
)

// Concurrent experiment engine: composable experiments on a sharded
// work-stealing worker pool with deterministic per-job seeding and JSON
// reporting — results are byte-identical at every pool and shard size.
type (
	// Experiment is one schedulable measurement unit.
	Experiment = engine.Experiment
	// ExperimentCtx is the per-job context (RNG, samples, seed, scratch).
	ExperimentCtx = engine.Ctx
	// ExperimentOutcome is what an experiment measured.
	ExperimentOutcome = engine.Outcome
	// ExperimentResult pairs an experiment with outcome, timing, error.
	ExperimentResult = engine.Result
	// ExperimentScratch is the per-worker reuse store jobs see on their
	// Ctx: reusable substrate banked across the jobs one worker runs.
	ExperimentScratch = engine.Scratch
	// Engine executes experiments on a bounded work-stealing pool
	// (ShardSize sets the steal granularity; results never depend on it).
	Engine = engine.Engine
	// EngineReport is the machine-readable artifact of a run.
	EngineReport = engine.Report
)

// Engine entry points.
var (
	// NewEngine builds a worker-pool engine (0 = GOMAXPROCS workers).
	NewEngine = engine.New
	// NewEngineReport assembles the machine-readable run artifact.
	NewEngineReport = engine.NewReport
	// ReadReport parses a JSON engine report back.
	ReadReport = engine.ReadReport
	// Summarize aggregates results into verdict counts and timings.
	Summarize = engine.Summarize
)

// Adaptive sequential-sampling verdict engine: grid cells measure in
// cumulative checkpoint passes that stop as soon as their
// broken/mitigated verdict separates to a confidence target, instead of
// burning one fixed sample budget; hard cells escalate up to a cap.
// Every adaptive cell's outcome carries a SamplingDecision (class,
// confidence, realized sample cost).
type (
	// SamplingPolicy configures the sequential test (confidence target,
	// error model, checkpoint floor, per-cell sample cap); the zero
	// value selects the defaults.
	SamplingPolicy = stats.Policy
	// SamplingDecision is a cell's settled verdict with its confidence
	// and cost.
	SamplingDecision = stats.Decision
	// SamplingPlan is the checkpoint ladder one cumulative measurement
	// pass grades against (the scenario-side sequential-sampling hook).
	SamplingPlan = stats.Plan
	// SamplingTest folds pass observations into the sequential
	// probability ratio test.
	SamplingTest = stats.Test
	// SweepOptions configures SweepExperimentsWith (sample budget plus
	// the optional adaptive policy).
	SweepOptions = core.SweepOptions
)

// Sampling entry points.
var (
	// NewSamplingPlan builds the checkpoint ladder for one pass.
	NewSamplingPlan = stats.NewPlan
	// NewSamplingTest builds the per-cell sequential test.
	NewSamplingTest = stats.NewTest
)

// Sweep: the scenario × architecture × defense cross-product as engine
// experiments (the `intrust sweep` CLI mode).
var (
	// SweepExperiments enumerates the 3-D grid as engine jobs; the
	// defense axis accepts registered names, "+"-combinations, and the
	// tokens none, stock and all (empty defaults to stock).
	SweepExperiments = core.SweepExperiments
	// SweepExperimentsWith is SweepExperiments with explicit options —
	// the adaptive sequential-sampling engine lives behind
	// SweepOptions.Adaptive.
	SweepExperimentsWith = core.SweepExperimentsWith
	// SweepTable renders sweep results with per-cell defense labels and
	// broken/mitigated/n-a classes.
	SweepTable = core.SweepTable
	// SweepDiff tabulates the cells each defense flips versus the
	// undefended ("none") baseline.
	SweepDiff = core.SweepDiff
	// AllArchitectures lists the sweepable architecture keys (§3 order).
	AllArchitectures = core.AllArchitectures
	// AllAttackFamilies lists the sweepable attack families (§4.1, §4.2,
	// §5).
	AllAttackFamilies = core.AllAttackFamilies
	// AllDefenseNames lists the registered mitigation names on the
	// -defense axis.
	AllDefenseNames = core.AllDefenseNames
)

// Performance tracking: the canonical sweep configurations measured end
// to end into the BENCH_sweep.json artifact (the `intrust bench` CLI
// mode), with a regression gate against a checked-in baseline. See
// docs/PERFORMANCE.md.
type (
	// PerfConfig names one benched sweep configuration (axis selection,
	// sample budget, sampling mode).
	PerfConfig = perf.Config
	// PerfResult is one configuration's measured throughput and sample
	// cost.
	PerfResult = perf.Result
	// PerfReport is one environment's throughput report: environment,
	// allocations per cache access, and one PerfResult per
	// configuration.
	PerfReport = perf.Report
	// PerfFile is the BENCH_sweep.json artifact: one PerfReport per
	// measured environment, matched per-environment by the bench gate.
	PerfFile = perf.File
)

// Performance-tracking entry points.
var (
	// PerfCanonicalConfigs returns the tracked configurations (the
	// none+stock grid, fixed and adaptive).
	PerfCanonicalConfigs = perf.CanonicalConfigs
	// PerfRun measures configurations on the engine worker pool.
	PerfRun = perf.Run
	// PerfCompare gates a fresh report against a baseline's cells/sec.
	PerfCompare = perf.Compare
	// PerfReadFile loads a single-environment report.
	PerfReadFile = perf.ReadFile
	// PerfReadBaseline loads a BENCH_sweep.json baseline in either
	// layout (multi-environment container or legacy single report).
	PerfReadBaseline = perf.ReadBaseline
	// AllocsPerAccess measures heap allocations per cache-hierarchy
	// access (tracked at zero for the flattened substrate).
	AllocsPerAccess = perf.AllocsPerAccess
)

// Sweep-as-a-service: the long-running HTTP/JSON API over the grid
// (the `intrust serve` CLI mode). Cells are addressed by their
// canonical CellKey; the engine's deterministic seeding makes the
// service's content-addressed result cache exact, so repeated queries
// are O(1). See internal/serve for the endpoint catalog.
type (
	// Service is the sweep-as-a-service HTTP handler (cache, admission
	// queue, metrics included); it implements http.Handler.
	Service = serve.Server
	// ServiceOptions configures a Service (cache bound, compute slots,
	// queue depth, base seed).
	ServiceOptions = serve.Options
	// ServiceCell is the JSON wire shape of one served grid cell.
	ServiceCell = serve.Cell
	// ServiceSweepSummary is the trailing summary line of a /sweep
	// NDJSON stream.
	ServiceSweepSummary = serve.SweepSummary
	// CellKey is the canonical content address of one grid cell — the
	// tuple that fully determines its measurement.
	CellKey = core.CellKey
	// CellOptions carries the per-cell measurement knobs ResolveCell
	// canonicalizes into a key.
	CellOptions = core.CellOptions
	// DiskStore is the crash-safe persistent result tier: addressed
	// bodies in tamper-evident authenticated envelopes, written
	// atomically (temp + fsync + rename); any entry failing
	// authentication reads as a miss and is quarantined. It backs the
	// service's -cache-dir tier and the sweep's -resume directory.
	DiskStore = diskcache.Store
	// DiskCounters is a DiskStore's hit/miss/reject/write accounting.
	DiskCounters = diskcache.Counters
	// ResumeSummary accounts one incremental sweep: cells reused from
	// disk versus computed, and why (new, changed inputs, invalid
	// entry).
	ResumeSummary = core.ResumeSummary
	// FaultPlane is the deterministic fault-injection plane the chaos
	// suite and the serve CLI's -fault flag arm: named failure points
	// (disk.read, disk.write, disk.corrupt, engine.stall, engine.panic,
	// listener.drop) firing on a seeded, bit-replayable schedule. A nil
	// plane is inert, so production paths pay one nil check.
	FaultPlane = fault.Plane
	// FaultSpec configures one armed fault point (probability, skip
	// count, fire limit, injected latency, error text).
	FaultSpec = fault.Spec
)

// Service and cell-level entry points.
var (
	// NewService builds the sweep-as-a-service HTTP server.
	NewService = serve.New
	// NewFaultPlane builds a disarmed fault plane over a deterministic
	// schedule seed; Arm points on it and pass it via
	// ServiceOptions.Faults.
	NewFaultPlane = fault.New
	// ParseFaultPlan builds an armed fault plane from the -fault CLI
	// plan syntax ("disk.write:p=1;engine.stall:delay=50ms").
	ParseFaultPlan = fault.Parse
	// ResolveCell canonicalizes one (scenario, arch, defense) request
	// into its CellKey through the sweep's own axis parsers.
	ResolveCell = core.ResolveCell
	// DecodeCellKey parses a key string produced by CellKey.Encode.
	DecodeCellKey = core.DecodeCellKey
	// EnumerateCells resolves an axis selection into canonical keys in
	// sweep enumeration order.
	EnumerateCells = core.EnumerateCells
	// RunCell computes the one grid cell a canonical key addresses,
	// bit-identical to the matching cell of a full sweep.
	RunCell = core.RunCell
	// RunExperiment executes a single engine experiment outside any
	// worker pool (same seeding and panic confinement as a pooled run).
	RunExperiment = engine.RunOne
	// OpenDiskStore opens (or creates) a persistent result tier under a
	// directory, keyed by a shared secret.
	OpenDiskStore = diskcache.Open
	// SweepResume runs a grid selection incrementally against a
	// DiskStore: authenticated on-disk cells are reused bit-identically,
	// only changed/new/invalid cells compute (the `intrust sweep
	// -resume` CLI path).
	SweepResume = core.SweepResume
	// CellResultAddr is the DiskStore address of one cell's persisted
	// sweep result (namespaced apart from the serve tier's bodies).
	CellResultAddr = core.ResultAddr
)

// Remote attestation lifecycle: deterministic enclave measurement,
// per-architecture signed quotes, policy-driven verification, and
// TCB revocation fed by the sweep grid (the `intrust attest` CLI mode
// and the serve tier's /attest endpoints). See internal/attestsvc and
// the lifecycle section of docs/ARCHITECTURE.md.
type (
	// AttestService bundles a quoting authority with a sweep-revocable
	// verification policy.
	AttestService = attestsvc.Service
	// AttestQuote is one signed attestation quote (the "IAQ1" wire
	// format round-trips through Encode/DecodeQuote).
	AttestQuote = attestsvc.Quote
	// AttestVerdict is a verification outcome: accepted or a typed
	// rejection code with the policy context that produced it.
	AttestVerdict = attestsvc.Verdict
	// AttestPolicy is a verifier's explicit acceptance policy
	// (measurement allow-list, per-arch minimum TCB, freshness).
	AttestPolicy = attestsvc.Policy
	// AttestRevocations is the sweep-derived TCB state: per-arch
	// minimum TCB versions with the broken cells as evidence.
	AttestRevocations = attestsvc.Revocations
	// AttestCell is the grid-cell evidence Revoke consumes.
	AttestCell = attestsvc.Cell
)

// Attestation lifecycle entry points.
var (
	// NewAttestService builds a Service from an authority root secret
	// (AttestRootFromSeed derives one shared with `intrust serve`).
	NewAttestService = attestsvc.NewService
	// AttestRootFromSeed derives the authority root from an engine
	// seed, so CLI and server agree on quoting keys.
	AttestRootFromSeed = attestsvc.RootFromSeed
	// DecodeAttestQuote strictly parses the quote wire format
	// (malformed input errors; it never panics — fuzz-pinned).
	DecodeAttestQuote = attestsvc.DecodeQuote
	// AttestRevoke folds broken none-defense grid cells into
	// per-architecture TCB revocations.
	AttestRevoke = attestsvc.Revoke
	// ComputeRevocations runs a none-defense grid slice on the engine
	// and derives the revocation state from its verdicts.
	ComputeRevocations = core.ComputeRevocations
)
