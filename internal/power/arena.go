package power

import "math"

// The batched analysis kernels. A trace matrix spends its life being
// re-walked: DPA runs 256 key guesses per byte, CPA another 256, the
// adaptive engine regrades after every checkpoint extension. The arena
// keeps every sample of a cell's traces int16-quantized in ONE contiguous
// backing array and the distinguishers walk contiguous blocks of exact
// integer sums, so a full 256-guess analysis touches a fraction of the
// memory the float64 trace matrix costs — and, because every sum is
// exact in int64, the results are bit-identical to the retained naive
// float64 reference (see the equivalence argument on Quantize).

// Scale is the quantization grid of the simulated acquisition ADC: one
// step per 1/256 of a leakage unit. It is a power of two, which is what
// makes the integer kernels bit-identical to the float64 reference:
// dequantization (q/256) only shifts the float64 exponent, so sums,
// means and Pearson terms computed from raw int16 steps equal the
// reference values scaled by an exact power of two.
const Scale = 256

// maxQ clamps quantized samples to the int16 range, like a saturating
// ADC. HW-model leakage (|signal| <= ~10 units) sits four orders of
// magnitude below the clamp; only idealized identity probes can reach it.
const maxQ = math.MaxInt16

// Quantize maps one leakage sample onto the acquisition grid: the
// nearest multiple of 1/Scale, saturating at the int16 rails.
//
// Exactness envelope: with |q| <= 2^13 (any HW/HD-model signal) and
// n <= 2^13 traces of <= 2^9 points, every sum the kernels form —
// Σq, Σq², Σhw·q and their n-scaled Pearson terms — stays below 2^53,
// so int64 accumulation is exact and float64 conversion is lossless.
// The naive float64 path sums the same values scaled by 2^-8 (per y
// factor) in a different association order; exact arithmetic makes
// reassociation harmless, which is the whole equivalence proof.
func Quantize(x float64) int16 {
	q := math.Round(x * Scale)
	if q > maxQ {
		return maxQ
	}
	if q < -maxQ {
		return -maxQ
	}
	return int16(q)
}

// Dequant maps a quantized sample back to leakage units, exactly.
func Dequant(q int16) float64 { return float64(q) / Scale }

// Arena is the int16-quantized trace matrix of one cell: every sample of
// every trace lives in one contiguous backing array, with the per-trace
// public inputs packed alongside. It is the batched counterpart of
// TraceSet and the unit of per-worker scratch reuse — Reset keeps the
// grown backing so the adaptive engine's Extend passes and the next cell
// on the same worker record without touching the heap.
type Arena struct {
	qs   []int16 // all samples, trace i at offs[i] : offs[i]+lens[i]
	offs []int32
	lens []int32

	inputs   []byte // all inputs, trace i at i*inputLen
	inputLen int

	rec    Recorder // reusable capture front-end for BeginTrace
	tstart int      // backing offset of the trace being recorded

	// pts caches Points(); -1 = dirty.
	pts int

	// Cached per-point Σq and Σq² over the common prefix (the
	// hypothesis-independent Pearson terms), valid at colN traces.
	colN    int
	sy, syy []int64

	// One cached class grouping (per-plaintext-byte-value sums): valid
	// for byte index clsIdx at clsN traces. The 256 class vectors live
	// back to back in clsSums (class v at v*pts); totSums is the
	// all-class per-point total the unselected partition derives from.
	clsIdx, clsN int
	clsCount     [256]int32
	clsSums      []int64
	totSums      []int64

	// sel and sxy are the reused per-guess accumulators of
	// DifferenceOfMeans and MaxAbsPearson, so a 256-guess loop never
	// touches the heap.
	sel, sxy []int64

	// stage is the StageInput scratch buffer.
	stage []byte
}

// NewArena returns an arena for traces tagged with inputLen-byte inputs.
func NewArena(inputLen int) *Arena {
	return &Arena{inputLen: inputLen, pts: -1, clsIdx: -1}
}

// Reset empties the arena, keeping every grown backing array for reuse.
func (a *Arena) Reset() {
	a.qs = a.qs[:0]
	a.offs = a.offs[:0]
	a.lens = a.lens[:0]
	a.inputs = a.inputs[:0]
	a.invalidate()
}

// Grow pre-reserves room for n more traces of about pts points each, so
// a subsequent Extend pass of that size stays allocation-free.
func (a *Arena) Grow(n, pts int) {
	need := len(a.qs) + n*pts
	if cap(a.qs) < need {
		qs := make([]int16, len(a.qs), need+need/4)
		copy(qs, a.qs)
		a.qs = qs
	}
	if cap(a.offs) < len(a.offs)+n {
		offs := make([]int32, len(a.offs), len(a.offs)+n)
		copy(offs, a.offs)
		a.offs = offs
		lens := make([]int32, len(a.lens), len(a.lens)+n)
		copy(lens, a.lens)
		a.lens = lens
	}
	if cap(a.inputs) < len(a.inputs)+n*a.inputLen {
		in := make([]byte, len(a.inputs), len(a.inputs)+n*a.inputLen)
		copy(in, a.inputs)
		a.inputs = in
	}
}

func (a *Arena) invalidate() {
	a.pts = -1
	a.colN = -1
	a.clsIdx = -1
}

// Len returns the number of recorded traces.
func (a *Arena) Len() int { return len(a.offs) }

// Input returns trace i's public input (aliasing the arena backing).
func (a *Arena) Input(i int) []byte {
	return a.inputs[i*a.inputLen : (i+1)*a.inputLen]
}

// Trace returns trace i's quantized samples (aliasing the arena backing).
func (a *Arena) Trace(i int) []int16 {
	return a.qs[a.offs[i] : a.offs[i]+int32(a.lens[i])]
}

// StageInput returns an arena-owned inputLen-byte scratch buffer for
// composing the next trace's input. Collection loops fill it (e.g. with
// random plaintexts) and pass it to EndTrace without any per-trace
// allocation — a local buffer would escape through the victim interface.
func (a *Arena) StageInput() []byte {
	if a.stage == nil {
		a.stage = make([]byte, a.inputLen)
	}
	return a.stage
}

// BeginTrace starts recording one trace through the given probe. The
// returned Recorder is the arena's own (reused across traces): Leak
// appends quantized samples to the contiguous backing, and EndTrace
// seals the trace. At most one trace may be recording at a time.
func (a *Arena) BeginTrace(p *Probe) *Recorder {
	if p.jrng == nil {
		// Same lazy jitter-RNG initialization as NewRecorder, so an
		// arena-recorded trace draws the identical jitter stream.
		p.jrng = newJitterRNG(p)
	}
	a.tstart = len(a.qs)
	a.rec = Recorder{Probe: p, arena: a}
	return &a.rec
}

// EndTrace seals the trace started by BeginTrace under the given input.
func (a *Arena) EndTrace(input []byte) {
	if len(input) != a.inputLen {
		panic("power: arena input length mismatch")
	}
	a.offs = append(a.offs, int32(a.tstart))
	a.lens = append(a.lens, int32(len(a.qs)-a.tstart))
	a.inputs = append(a.inputs, input...)
	a.invalidate()
}

// Points returns the number of usable sample points (minimum trace
// length), like TraceSet.Points.
func (a *Arena) Points() int {
	if a.pts >= 0 {
		return a.pts
	}
	if len(a.lens) == 0 {
		a.pts = 0
		return 0
	}
	min := int(a.lens[0])
	for _, l := range a.lens[1:] {
		if int(l) < min {
			min = int(l)
		}
	}
	a.pts = min
	return min
}

// colSums returns the cached per-point Σq and Σq² (int64, exact) over
// the common prefix, recomputing when the set has grown.
func (a *Arena) colSums() (sy, syy []int64) {
	pts := a.Points()
	if a.colN == a.Len() && len(a.sy) == pts {
		return a.sy, a.syy
	}
	if cap(a.sy) < pts {
		a.sy = make([]int64, pts)
		a.syy = make([]int64, pts)
	}
	a.sy = a.sy[:pts]
	a.syy = a.syy[:pts]
	clear(a.sy)
	clear(a.syy)
	for i := 0; i < a.Len(); i++ {
		tr := a.qs[a.offs[i]:][:pts]
		for j, q := range tr {
			y := int64(q)
			a.sy[j] += y
			a.syy[j] += y * y
		}
	}
	a.colN = a.Len()
	return a.sy, a.syy
}

// QClassSums groups the arena's traces by the value of input byte
// byteIdx: 256 per-class sum vectors (int64, exact) in one contiguous
// block, plus per-class trace counts and the all-class total per point.
// One grouping is cached; regrouping by another byte index or after an
// extension overwrites it in place.
type QClassSums struct {
	a   *Arena
	pts int
	n   int
}

// ClassSumsFor returns the (cached) class grouping for input byte
// byteIdx. The grouping pass costs one walk of the trace matrix and then
// serves all 256 key guesses of both DPA and CPA.
func (a *Arena) ClassSumsFor(byteIdx int) QClassSums {
	pts := a.Points()
	cs := QClassSums{a: a, pts: pts, n: a.Len()}
	if a.clsIdx == byteIdx && a.clsN == a.Len() && len(a.clsSums) == 256*pts {
		return cs
	}
	if cap(a.clsSums) < 256*pts {
		a.clsSums = make([]int64, 256*pts)
	}
	if cap(a.totSums) < pts {
		a.totSums = make([]int64, pts)
	}
	a.clsSums = a.clsSums[:256*pts]
	a.totSums = a.totSums[:pts]
	clear(a.clsSums)
	clear(a.totSums)
	for i := range a.clsCount {
		a.clsCount[i] = 0
	}
	for i := 0; i < a.Len(); i++ {
		v := a.inputs[i*a.inputLen+byteIdx]
		a.clsCount[v]++
		dst := a.clsSums[int(v)*pts:][:pts]
		tr := a.qs[a.offs[i]:][:pts]
		for j, q := range tr {
			dst[j] += int64(q)
			a.totSums[j] += int64(q)
		}
	}
	a.clsIdx = byteIdx
	a.clsN = a.Len()
	return cs
}

// DifferenceOfMeans returns the maximum absolute difference of mean
// traces between the selected classes and the rest — Kocher's DPA
// distinguisher in batched form. Because the class sums are exact
// integers, the unselected partition is the total minus the selected sum
// (no second accumulation pass), and the result still equals the naive
// two-partition float64 walk bit for bit.
func (cs QClassSums) DifferenceOfMeans(selected *[256]bool) float64 {
	a, pts := cs.a, cs.pts
	if pts == 0 {
		return 0
	}
	var n1 int64
	for v := 0; v < 256; v++ {
		if selected[v] {
			n1 += int64(a.clsCount[v])
		}
	}
	n0 := int64(cs.n) - n1
	if n0 == 0 || n1 == 0 {
		return 0
	}
	if cap(a.sel) < pts {
		a.sel = make([]int64, pts)
	}
	a.sel = a.sel[:pts]
	clear(a.sel)
	for v := 0; v < 256; v++ {
		if !selected[v] || a.clsCount[v] == 0 {
			continue
		}
		src := a.clsSums[v*pts:][:pts]
		for j, x := range src {
			a.sel[j] += x
		}
	}
	f1, f0 := float64(n1), float64(n0)
	best := 0.0
	for j := 0; j < pts; j++ {
		s1 := a.sel[j]
		d := math.Abs(float64(s1)/f1 - float64(a.totSums[j]-s1)/f0)
		if d > best {
			best = d
		}
	}
	return best / Scale
}

// MaxAbsPearson returns the largest |Pearson correlation| across all
// points for the per-class hypothesis hyp (one model value per possible
// input-byte value) — the CPA distinguisher in batched form. The
// hypothesis for trace i depends on i only through its class, so Σx,
// Σx² and Σxy all collapse onto the 256 class sums: one guess costs a
// 256×points walk of contiguous int64 blocks instead of an n×points walk
// of the trace matrix, and exact integer arithmetic keeps the statistic
// bit-identical to TraceSet.MaxAbsPearson on the dequantized traces.
func (cs QClassSums) MaxAbsPearson(hyp *[256]int64) float64 {
	a, pts := cs.a, cs.pts
	n := float64(cs.n)
	if cs.n < 2 || pts == 0 {
		return 0
	}
	var sx, sxx int64
	for v := 0; v < 256; v++ {
		c := int64(a.clsCount[v])
		if c == 0 {
			continue
		}
		sx += c * hyp[v]
		sxx += c * hyp[v] * hyp[v]
	}
	hden := math.Sqrt(n*float64(sxx) - float64(sx)*float64(sx))
	if cap(a.sxy) < pts {
		a.sxy = make([]int64, pts)
	}
	a.sxy = a.sxy[:pts]
	clear(a.sxy)
	for v := 0; v < 256; v++ {
		h := hyp[v]
		if h == 0 || a.clsCount[v] == 0 {
			continue
		}
		src := a.clsSums[v*pts:][:pts]
		for j, s := range src {
			a.sxy[j] += h * s
		}
	}
	sy, syy := a.colSums()
	fsx := float64(sx)
	best := 0.0
	for j := 0; j < pts; j++ {
		num := n*float64(a.sxy[j]) - fsx*float64(sy[j])
		den := hden * math.Sqrt(n*float64(syy[j])-float64(sy[j])*float64(sy[j]))
		if den == 0 {
			continue
		}
		if r := math.Abs(num / den); r > best {
			best = r
		}
	}
	return best
}
