// Package power models the side-channel measurement apparatus of Section 5:
// power and electromagnetic leakage of a device under test. It implements
// the standard leakage models of the SCA literature (Hamming weight,
// Hamming distance), a seeded Gaussian noise source in place of the
// oscilloscope's noise floor, and trace recording with optional temporal
// jitter (the effect hiding countermeasures introduce).
//
// The apparatus substitutes for the paper's physical lab setup: a victim
// implementation instrumented with a Recorder produces traces with exactly
// the statistical structure DPA/CPA consume, so countermeasure claims
// (masking kills first-order correlation, hiding scales the trace budget)
// can be reproduced quantitatively.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package power

import (
	"math"
	"math/rand"
)

// HW returns the Hamming weight of v — the canonical power model for CMOS
// bus transfers.
func HW(v uint32) float64 {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return float64(n)
}

// HD returns the Hamming distance between consecutive values — the model
// for register overwrites.
func HD(prev, next uint32) float64 { return HW(prev ^ next) }

// Noise is a seeded Gaussian noise source.
type Noise struct {
	Sigma float64
	rng   *rand.Rand
}

// NewNoise returns a Gaussian source with standard deviation sigma.
func NewNoise(sigma float64, seed int64) *Noise {
	return &Noise{Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws one noise sample.
func (n *Noise) Sample() float64 {
	if n == nil || n.Sigma == 0 {
		return 0
	}
	return n.rng.NormFloat64() * n.Sigma
}

// Model selects how recorded intermediate values map to leakage.
type Model uint8

const (
	// ModelHW leaks the Hamming weight of each value.
	ModelHW Model = iota
	// ModelHD leaks the Hamming distance to the previous value.
	ModelHD
	// ModelIdentity leaks the value directly (idealized probe).
	ModelIdentity
)

// Probe describes the physical measurement channel.
type Probe struct {
	Model Model
	// Gain scales the signal; EM probes typically capture less signal
	// than a shunt resistor in the power rail.
	Gain float64
	// Noise is the measurement noise floor.
	Noise *Noise
	// JitterMax, when non-zero, inserts up to JitterMax random dummy
	// samples before each real one — temporal misalignment as produced by
	// hiding countermeasures (random delays) or an unstable trigger.
	JitterMax int

	jrng *rand.Rand
}

// PowerProbe returns a shunt-resistor power probe at the given noise level.
func PowerProbe(sigma float64, seed int64) *Probe {
	return &Probe{Model: ModelHW, Gain: 1.0, Noise: NewNoise(sigma, seed)}
}

// EMProbe returns a near-field EM probe: weaker coupling, noisier.
func EMProbe(sigma float64, seed int64) *Probe {
	return &Probe{Model: ModelHW, Gain: 0.6, Noise: NewNoise(sigma*1.8, seed)}
}

// Recorder captures one trace: a sequence of leakage samples, quantized
// onto the acquisition ADC's grid (see Quantize). A Recorder either owns
// its Samples slice (NewRecorder — the naive float64 path) or streams
// int16 steps into an Arena's contiguous backing (Arena.BeginTrace);
// both record bit-identical values, which is what lets the batched
// integer kernels and the naive float64 reference agree exactly.
type Recorder struct {
	Probe   *Probe
	Samples []float64
	prev    uint32
	arena   *Arena
}

// newJitterRNG seeds the probe's hiding-jitter stream; NewRecorder and
// Arena.BeginTrace share it so both recording paths draw identical
// jitter.
func newJitterRNG(p *Probe) *rand.Rand {
	return rand.New(rand.NewSource(0x7ace + int64(p.JitterMax)))
}

// NewRecorder starts a trace on the given probe.
func NewRecorder(p *Probe) *Recorder {
	if p.jrng == nil {
		p.jrng = newJitterRNG(p)
	}
	return &Recorder{Probe: p}
}

// record appends one quantized sample to whichever backing the recorder
// targets.
func (r *Recorder) record(x float64) {
	q := Quantize(x)
	if r.arena != nil {
		r.arena.qs = append(r.arena.qs, q)
		return
	}
	r.Samples = append(r.Samples, Dequant(q))
}

// Leak records the leakage of one intermediate value.
func (r *Recorder) Leak(v uint32) {
	p := r.Probe
	if p.JitterMax > 0 {
		for i, n := 0, p.jrng.Intn(p.JitterMax+1); i < n; i++ {
			r.record(p.Noise.Sample())
		}
	}
	var sig float64
	switch p.Model {
	case ModelHD:
		sig = HD(r.prev, v)
	case ModelIdentity:
		sig = float64(v)
	default:
		sig = HW(v)
	}
	r.prev = v
	r.record(sig*p.Gain + p.Noise.Sample())
}

// Trace is one captured measurement.
type Trace []float64

// TraceSet is a matrix of traces (rows) by sample points (columns). Traces
// may have ragged lengths when jitter is on; statistics run over the
// common prefix.
type TraceSet struct {
	Traces []Trace
	// Inputs holds per-trace public data (e.g. plaintexts).
	Inputs [][]byte

	// cols caches the hypothesis-independent per-point sums the CPA
	// distinguisher reuses across all 256 key guesses; Add invalidates it.
	cols *colSums
}

// colSums are the per-point trace sums Σy and Σy² over the common prefix,
// plus the trace count they were computed at. They depend only on the
// trace matrix — never on a key hypothesis — so one computation serves
// every Pearson query until the set grows.
type colSums struct {
	n   int
	pts int
	sy  []float64
	syy []float64
}

// Add appends a trace with its associated public input.
func (ts *TraceSet) Add(tr Trace, input []byte) {
	ts.Traces = append(ts.Traces, tr)
	ts.Inputs = append(ts.Inputs, input)
	ts.cols = nil
}

// colSums returns the cached per-point sums, computing them on first use.
// Accumulation runs in trace order per point, exactly like the direct
// Pearson loop, so cached and uncached statistics are bit-identical.
func (ts *TraceSet) colSums() *colSums {
	if ts.cols != nil && ts.cols.n == len(ts.Traces) {
		return ts.cols
	}
	cs := &colSums{n: len(ts.Traces), pts: ts.Points()}
	cs.sy = make([]float64, cs.pts)
	cs.syy = make([]float64, cs.pts)
	for _, tr := range ts.Traces {
		for j := 0; j < cs.pts; j++ {
			y := tr[j]
			cs.sy[j] += y
			cs.syy[j] += y * y
		}
	}
	ts.cols = cs
	return cs
}

// Len returns the number of traces.
func (ts *TraceSet) Len() int { return len(ts.Traces) }

// Points returns the number of usable sample points (minimum length).
func (ts *TraceSet) Points() int {
	if len(ts.Traces) == 0 {
		return 0
	}
	min := len(ts.Traces[0])
	for _, tr := range ts.Traces[1:] {
		if len(tr) < min {
			min = len(tr)
		}
	}
	return min
}

// Pearson computes the correlation coefficient between the hypothesis
// vector h (one value per trace) and the samples at point j.
func (ts *TraceSet) Pearson(h []float64, j int) float64 {
	n := float64(len(ts.Traces))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i, tr := range ts.Traces {
		x := h[i]
		y := tr[j]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	num := n*sxy - sx*sy
	den := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	if den == 0 {
		return 0
	}
	return num / den
}

// MaxAbsPearson returns the largest |correlation| across all points for the
// hypothesis vector h — the CPA distinguisher statistic.
//
// It computes exactly what Pearson computes at every point, but factors
// the per-point pass down to the one term that depends on both the
// hypothesis and the point (Σxy): the hypothesis sums Σx/Σx² hoist out of
// the point loop and the trace sums Σy/Σy² come from the per-set cache,
// all accumulated in the same order as the direct loop — so the result is
// bit-identical at roughly a third of the arithmetic.
func (ts *TraceSet) MaxAbsPearson(h []float64) float64 {
	n := float64(len(ts.Traces))
	if n < 2 {
		return 0
	}
	cols := ts.colSums()
	var sx, sxx float64
	for _, x := range h {
		sx += x
		sxx += x * x
	}
	hden := math.Sqrt(n*sxx - sx*sx)
	best := 0.0
	for j := 0; j < cols.pts; j++ {
		var sxy float64
		for i, tr := range ts.Traces {
			sxy += h[i] * tr[j]
		}
		num := n*sxy - sx*cols.sy[j]
		den := hden * math.Sqrt(n*cols.syy[j]-cols.sy[j]*cols.sy[j])
		if den == 0 {
			continue
		}
		if r := math.Abs(num / den); r > best {
			best = r
		}
	}
	return best
}

// DifferenceOfMeans partitions traces by the selector and returns the
// maximum absolute difference of mean traces — Kocher's original DPA
// distinguisher.
func (ts *TraceSet) DifferenceOfMeans(selector func(i int) bool) float64 {
	pts := ts.Points()
	if pts == 0 {
		return 0
	}
	sum0 := make([]float64, pts)
	sum1 := make([]float64, pts)
	var n0, n1 float64
	for i, tr := range ts.Traces {
		if selector(i) {
			n1++
			for j := 0; j < pts; j++ {
				sum1[j] += tr[j]
			}
		} else {
			n0++
			for j := 0; j < pts; j++ {
				sum0[j] += tr[j]
			}
		}
	}
	if n0 == 0 || n1 == 0 {
		return 0
	}
	best := 0.0
	for j := 0; j < pts; j++ {
		d := math.Abs(sum1[j]/n1 - sum0[j]/n0)
		if d > best {
			best = d
		}
	}
	return best
}

// ClassSums are per-class pointwise trace sums: every trace is assigned
// one of 256 classes (for DPA, the value of one plaintext byte) and its
// samples accumulate into that class's sum vector. A difference-of-means
// query for a key guess then combines at most 256 presummed vectors
// instead of re-walking every trace — the guess loop of Kocher's DPA runs
// 256 guesses over the same trace matrix, so the grouping pass pays for
// itself hundreds of times over.
type ClassSums struct {
	pts   int
	n     int
	count [256]int
	sums  [256][]float64 // nil for classes with no traces

	// scratch0/scratch1 are the reused partition accumulators of
	// DifferenceOfMeans, so the 256-guess loop does not allocate.
	scratch0, scratch1 []float64
}

// ClassSums groups the set's traces by class(i) over the common prefix.
// Per class, samples accumulate in trace order — the same order the
// direct DifferenceOfMeans walks them.
func (ts *TraceSet) ClassSums(class func(i int) uint8) *ClassSums {
	cs := &ClassSums{pts: ts.Points(), n: ts.Len()}
	for i, tr := range ts.Traces {
		v := class(i)
		s := cs.sums[v]
		if s == nil {
			s = make([]float64, cs.pts)
			cs.sums[v] = s
		}
		cs.count[v]++
		for j := 0; j < cs.pts; j++ {
			s[j] += tr[j]
		}
	}
	return cs
}

// Points returns the number of usable sample points of the grouped set.
func (cs *ClassSums) Points() int { return cs.pts }

// DifferenceOfMeans partitions the classes with selected and returns the
// maximum absolute difference of mean traces between the two partitions —
// the grouped form of TraceSet.DifferenceOfMeans. Both partitions are
// summed from the class vectors (no total-minus-selected subtraction), in
// ascending class order.
func (cs *ClassSums) DifferenceOfMeans(selected func(v uint8) bool) float64 {
	if cs.pts == 0 {
		return 0
	}
	if cs.scratch0 == nil {
		cs.scratch0 = make([]float64, cs.pts)
		cs.scratch1 = make([]float64, cs.pts)
	}
	sum0, sum1 := cs.scratch0, cs.scratch1
	clear(sum0)
	clear(sum1)
	var n0, n1 float64
	for v := 0; v < 256; v++ {
		s := cs.sums[v]
		if s == nil {
			continue
		}
		if selected(uint8(v)) {
			n1 += float64(cs.count[v])
			for j, x := range s {
				sum1[j] += x
			}
		} else {
			n0 += float64(cs.count[v])
			for j, x := range s {
				sum0[j] += x
			}
		}
	}
	if n0 == 0 || n1 == 0 {
		return 0
	}
	best := 0.0
	for j := 0; j < cs.pts; j++ {
		d := math.Abs(sum1[j]/n1 - sum0[j]/n0)
		if d > best {
			best = d
		}
	}
	return best
}

// MeanTrace returns the pointwise mean across the set.
func (ts *TraceSet) MeanTrace() Trace {
	pts := ts.Points()
	out := make(Trace, pts)
	for _, tr := range ts.Traces {
		for j := 0; j < pts; j++ {
			out[j] += tr[j]
		}
	}
	for j := range out {
		out[j] /= float64(len(ts.Traces))
	}
	return out
}
