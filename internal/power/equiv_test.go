package power

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel-equivalence property layer: the batched int16-arena kernels
// must be BIT-identical to the retained naive float64 reference on
// randomized trace sets. Both recording paths quantize at capture (the
// ADC model), Scale is a power of two, and every arena sum is exact in
// int64 — so the equivalence is exact, not approximate, and these tests
// compare math.Float64bits, not a tolerance.

// recordPair records the same randomized traces through both paths:
// the naive TraceSet via NewRecorder and the Arena via BeginTrace.
// Separate probes with identical seeds keep the noise and jitter streams
// aligned.
func recordPair(seed int64, nTraces, leaksPer, jitterMax int, sigma float64) (*TraceSet, *Arena) {
	mk := func() *Probe {
		p := PowerProbe(sigma, seed)
		p.JitterMax = jitterMax
		return p
	}
	pNaive, pArena := mk(), mk()

	ts := &TraceSet{}
	a := NewArena(16)

	// One value stream drives both recordings.
	vrng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := 0; i < nTraces; i++ {
		input := make([]byte, 16)
		vrng.Read(input)
		vals := make([]uint32, leaksPer)
		for j := range vals {
			vals[j] = vrng.Uint32()
		}

		rec := NewRecorder(pNaive)
		for _, v := range vals {
			rec.Leak(v)
		}
		ts.Add(rec.Samples, input)

		arec := a.BeginTrace(pArena)
		for _, v := range vals {
			arec.Leak(v)
		}
		a.EndTrace(input)
	}
	return ts, a
}

// eqBits fails unless got and want are the same float64 bit pattern.
func eqBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: arena %v (%#x) != naive %v (%#x)",
			what, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestArenaRecordingMatchesNaive pins the capture front-ends: the
// dequantized arena samples equal the naive recorder's samples exactly,
// trace by trace, including ragged jitter lengths.
func TestArenaRecordingMatchesNaive(t *testing.T) {
	for _, jitter := range []int{0, 3} {
		ts, a := recordPair(41, 17, 25, jitter, 0.8)
		if a.Len() != ts.Len() {
			t.Fatalf("jitter=%d: arena %d traces, naive %d", jitter, a.Len(), ts.Len())
		}
		if a.Points() != ts.Points() {
			t.Fatalf("jitter=%d: arena %d points, naive %d", jitter, a.Points(), ts.Points())
		}
		for i := 0; i < a.Len(); i++ {
			qtr, ftr := a.Trace(i), ts.Traces[i]
			if len(qtr) != len(ftr) {
				t.Fatalf("jitter=%d trace %d: arena len %d, naive len %d", jitter, i, len(qtr), len(ftr))
			}
			for j, q := range qtr {
				if math.Float64bits(Dequant(q)) != math.Float64bits(ftr[j]) {
					t.Fatalf("jitter=%d trace %d sample %d: dequant %v != naive %v",
						jitter, i, j, Dequant(q), ftr[j])
				}
			}
			if string(a.Input(i)) != string(ts.Inputs[i]) {
				t.Fatalf("jitter=%d trace %d: inputs differ", jitter, i)
			}
		}
	}
}

// TestDifferenceOfMeansEquivalence is the DPA-kernel property test:
// randomized trace sets, randomized selected-class sets, both partition
// shapes and both jitter regimes — batched result bit-identical to the
// naive grouped float64 reference.
func TestDifferenceOfMeansEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seed    int64
		traces  int
		jitter  int
		sigma   float64
		byteIdx int
	}{
		{"small", 1, 8, 0, 0.5, 0},
		{"noisy", 2, 200, 0, 2.0, 3},
		{"jitter", 3, 120, 4, 1.0, 7},
		{"noiseless", 4, 64, 0, 0, 15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts, a := recordPair(tc.seed, tc.traces, 30, tc.jitter, tc.sigma)
			ncs := ts.ClassSums(func(i int) uint8 { return ts.Inputs[i][tc.byteIdx] })
			qcs := a.ClassSumsFor(tc.byteIdx)

			srng := rand.New(rand.NewSource(tc.seed * 7))
			var sel [256]bool
			for trial := 0; trial < 64; trial++ {
				for v := range sel {
					sel[v] = srng.Intn(2) == 1
				}
				got := qcs.DifferenceOfMeans(&sel)
				want := ncs.DifferenceOfMeans(func(v uint8) bool { return sel[v] })
				eqBits(t, "DifferenceOfMeans", got, want)
			}

			// Degenerate partitions: empty and full selections are 0 on
			// both paths.
			for v := range sel {
				sel[v] = false
			}
			eqBits(t, "empty selection", qcs.DifferenceOfMeans(&sel), 0)
			for v := range sel {
				sel[v] = true
			}
			eqBits(t, "full selection", qcs.DifferenceOfMeans(&sel), 0)
		})
	}
}

// TestMaxAbsPearsonEquivalence is the CPA-kernel property test:
// randomized trace sets and randomized per-class integer hypotheses —
// batched class-collapsed Pearson bit-identical to the naive per-trace
// float64 reference.
func TestMaxAbsPearsonEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   int64
		traces int
		jitter int
		sigma  float64
	}{
		{"small", 11, 8, 0, 0.5},
		{"noisy", 12, 200, 0, 2.0},
		{"jitter", 13, 120, 4, 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts, a := recordPair(tc.seed, tc.traces, 30, tc.jitter, tc.sigma)
			const byteIdx = 5
			qcs := a.ClassSumsFor(byteIdx)

			hrng := rand.New(rand.NewSource(tc.seed * 13))
			h := make([]float64, ts.Len())
			var hyp [256]int64
			for trial := 0; trial < 32; trial++ {
				for v := range hyp {
					hyp[v] = int64(hrng.Intn(9)) // HW-like range 0..8
				}
				for i := range h {
					h[i] = float64(hyp[ts.Inputs[i][byteIdx]])
				}
				got := qcs.MaxAbsPearson(&hyp)
				want := ts.MaxAbsPearson(h)
				eqBits(t, "MaxAbsPearson", got, want)
			}
		})
	}
}

// TestEquivalenceAcrossExtend pins the adaptive-escalation shape: record,
// analyse, extend the same sets, analyse again — the arena's invalidated
// caches must rebuild to bit-identical statistics at every checkpoint.
func TestEquivalenceAcrossExtend(t *testing.T) {
	mk := func() *Probe {
		p := PowerProbe(1.2, 99)
		p.JitterMax = 2
		return p
	}
	pNaive, pArena := mk(), mk()
	ts := &TraceSet{}
	a := NewArena(16)
	vrng := rand.New(rand.NewSource(991))

	var sel [256]bool
	var hyp [256]int64
	srng := rand.New(rand.NewSource(992))
	for v := 0; v < 256; v++ {
		sel[v] = srng.Intn(2) == 1
		hyp[v] = int64(srng.Intn(9))
	}
	h := make([]float64, 0, 120)

	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 40; i++ {
			input := make([]byte, 16)
			vrng.Read(input)
			vals := make([]uint32, 20)
			for j := range vals {
				vals[j] = vrng.Uint32()
			}
			rec := NewRecorder(pNaive)
			for _, v := range vals {
				rec.Leak(v)
			}
			ts.Add(rec.Samples, input)
			arec := a.BeginTrace(pArena)
			for _, v := range vals {
				arec.Leak(v)
			}
			a.EndTrace(input)
		}

		const byteIdx = 2
		ncs := ts.ClassSums(func(i int) uint8 { return ts.Inputs[i][byteIdx] })
		qcs := a.ClassSumsFor(byteIdx)
		eqBits(t, "DifferenceOfMeans after extend",
			qcs.DifferenceOfMeans(&sel), ncs.DifferenceOfMeans(func(v uint8) bool { return sel[v] }))

		h = h[:ts.Len()]
		for i := range h {
			h[i] = float64(hyp[ts.Inputs[i][byteIdx]])
		}
		eqBits(t, "MaxAbsPearson after extend",
			qcs.MaxAbsPearson(&hyp), ts.MaxAbsPearson(h))
	}
}

// TestTinySets pins the n<2 guards on both kernels.
func TestTinySets(t *testing.T) {
	a := NewArena(16)
	var hyp [256]int64
	hyp[0] = 1
	cs := a.ClassSumsFor(0)
	if got := cs.MaxAbsPearson(&hyp); got != 0 {
		t.Errorf("empty arena Pearson = %v, want 0", got)
	}
	var sel [256]bool
	sel[0] = true
	if got := cs.DifferenceOfMeans(&sel); got != 0 {
		t.Errorf("empty arena DoM = %v, want 0", got)
	}
}

// TestQuantizeGrid pins the ADC model: round-to-nearest on the 1/Scale
// grid, exact dequantization, saturating rails.
func TestQuantizeGrid(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want int16
	}{
		{0, 0},
		{1, Scale},
		{-1, -Scale},
		{1.0 / (2 * Scale), 1}, // half a step rounds away from zero
		{1e9, maxQ},
		{-1e9, -maxQ},
	} {
		if got := Quantize(tc.in); got != tc.want {
			t.Errorf("Quantize(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// Dequantization is exact: quantizing a dequantized value is identity.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		q := int16(rng.Intn(2*maxQ+1) - maxQ)
		if got := Quantize(Dequant(q)); got != q {
			t.Fatalf("Quantize(Dequant(%d)) = %d", q, got)
		}
	}
}
