package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHammingWeight(t *testing.T) {
	cases := map[uint32]float64{0: 0, 1: 1, 3: 2, 0xff: 8, 0xffffffff: 32, 0x80000001: 2}
	for v, want := range cases {
		if got := HW(v); got != want {
			t.Errorf("HW(%#x) = %v, want %v", v, got, want)
		}
	}
}

func TestHammingWeightQuick(t *testing.T) {
	// HW(a^b) == HD(a,b) and HW(a)+HW(b) >= HW(a|b).
	f := func(a, b uint32) bool {
		if HD(a, b) != HW(a^b) {
			return false
		}
		return HW(a)+HW(b) >= HW(a|b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseStatistics(t *testing.T) {
	n := NewNoise(2.0, 42)
	var sum, sumSq float64
	const N = 20000
	for i := 0; i < N; i++ {
		s := n.Sample()
		sum += s
		sumSq += s * s
	}
	mean := sum / N
	std := math.Sqrt(sumSq/N - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Errorf("noise mean = %v", mean)
	}
	if math.Abs(std-2.0) > 0.1 {
		t.Errorf("noise std = %v, want 2.0", std)
	}
	// Zero-sigma and nil noise are silent.
	if (&Noise{}).Sample() != 0 {
		t.Error("zero-sigma noise emitted")
	}
	var nilNoise *Noise
	if nilNoise.Sample() != 0 {
		t.Error("nil noise emitted")
	}
}

func TestRecorderModels(t *testing.T) {
	p := &Probe{Model: ModelHW, Gain: 1, Noise: NewNoise(0, 1)}
	r := NewRecorder(p)
	r.Leak(0xff)
	r.Leak(0x0f)
	if r.Samples[0] != 8 || r.Samples[1] != 4 {
		t.Errorf("HW samples = %v", r.Samples)
	}
	p2 := &Probe{Model: ModelHD, Gain: 1, Noise: NewNoise(0, 1)}
	r2 := NewRecorder(p2)
	r2.Leak(0xff) // HD(0, ff) = 8
	r2.Leak(0x0f) // HD(ff, 0f) = 4
	if r2.Samples[0] != 8 || r2.Samples[1] != 4 {
		t.Errorf("HD samples = %v", r2.Samples)
	}
	p3 := &Probe{Model: ModelIdentity, Gain: 2, Noise: NewNoise(0, 1)}
	r3 := NewRecorder(p3)
	r3.Leak(21)
	if r3.Samples[0] != 42 {
		t.Errorf("identity sample = %v", r3.Samples)
	}
}

func TestJitterMisalignsTraces(t *testing.T) {
	p := &Probe{Model: ModelHW, Gain: 1, Noise: NewNoise(0.1, 7), JitterMax: 3}
	lens := map[int]bool{}
	for i := 0; i < 20; i++ {
		r := NewRecorder(p)
		for k := 0; k < 10; k++ {
			r.Leak(uint32(k))
		}
		lens[len(r.Samples)] = true
	}
	if len(lens) < 2 {
		t.Error("jitter produced identical trace lengths")
	}
}

func TestEMProbeWeakerThanPower(t *testing.T) {
	pw := PowerProbe(0.5, 1)
	em := EMProbe(0.5, 1)
	if em.Gain >= pw.Gain {
		t.Error("EM gain not weaker")
	}
	if em.Noise.Sigma <= pw.Noise.Sigma {
		t.Error("EM noise not higher")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	ts := &TraceSet{}
	h := make([]float64, 50)
	for i := 0; i < 50; i++ {
		x := float64(i)
		h[i] = x
		// Point 0 perfectly correlated, point 1 anti-correlated, point 2
		// constant.
		ts.Add(Trace{2*x + 1, -x, 3}, nil)
	}
	if r := ts.Pearson(h, 0); math.Abs(r-1) > 1e-9 {
		t.Errorf("corr at 0 = %v", r)
	}
	if r := ts.Pearson(h, 1); math.Abs(r+1) > 1e-9 {
		t.Errorf("corr at 1 = %v", r)
	}
	if r := ts.Pearson(h, 2); r != 0 {
		t.Errorf("corr at constant point = %v", r)
	}
	if m := ts.MaxAbsPearson(h); math.Abs(m-1) > 1e-9 {
		t.Errorf("max |corr| = %v", m)
	}
}

func TestDifferenceOfMeans(t *testing.T) {
	ts := &TraceSet{}
	for i := 0; i < 100; i++ {
		base := 1.0
		if i%2 == 0 {
			base = 5.0 // group-dependent level at point 1
		}
		ts.Add(Trace{2.0, base}, nil)
	}
	d := ts.DifferenceOfMeans(func(i int) bool { return i%2 == 0 })
	if math.Abs(d-4.0) > 1e-9 {
		t.Errorf("DoM = %v, want 4", d)
	}
	// Degenerate partitions yield zero.
	if ts.DifferenceOfMeans(func(i int) bool { return true }) != 0 {
		t.Error("one-sided partition nonzero")
	}
}

func TestTraceSetPointsRagged(t *testing.T) {
	ts := &TraceSet{}
	ts.Add(Trace{1, 2, 3}, nil)
	ts.Add(Trace{4, 5}, nil)
	if ts.Points() != 2 {
		t.Errorf("points = %d", ts.Points())
	}
	mean := ts.MeanTrace()
	if len(mean) != 2 || mean[0] != 2.5 || mean[1] != 3.5 {
		t.Errorf("mean = %v", mean)
	}
}

func TestEmptyTraceSet(t *testing.T) {
	ts := &TraceSet{}
	if ts.Points() != 0 || ts.Len() != 0 {
		t.Error("empty set not empty")
	}
	if ts.DifferenceOfMeans(func(int) bool { return false }) != 0 {
		t.Error("empty DoM nonzero")
	}
}
