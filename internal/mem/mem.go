// Package mem models the physical memory system of the simulated platform:
// RAM/ROM/MMIO regions, the system bus with typed access attributes, a
// memory controller with pluggable protection filters (the hook used by the
// TEE architectures to enforce isolation), a DMA engine with device
// identity, and a memory encryption engine in the style of Intel SGX's MEE.
//
// Accesses carry the full set of attributes the surveyed architectures key
// on: initiator (CPU core, DMA device, debug probe), privilege level,
// TrustZone-style world, the issuing program counter (SMART and Sancus gate
// on it) and a CPU-assigned security domain (enclave identity).
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package mem

import (
	"fmt"
	"sync"

	"github.com/intrust-sim/intrust/internal/isa"
)

// World is the TrustZone-style security state of a bus access.
type World uint8

const (
	// WorldSecure marks accesses issued while the CPU is in the secure world.
	WorldSecure World = iota
	// WorldNormal marks normal-world (non-secure) accesses.
	WorldNormal
)

func (w World) String() string {
	if w == WorldSecure {
		return "secure"
	}
	return "normal"
}

// AccessKind distinguishes fetches, loads and stores.
type AccessKind uint8

const (
	KindFetch AccessKind = iota
	KindLoad
	KindStore
)

func (k AccessKind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	}
	return "access"
}

// InitiatorType identifies the class of bus master issuing an access.
type InitiatorType uint8

const (
	// InitCPU is a CPU core.
	InitCPU InitiatorType = iota
	// InitDMA is a peripheral DMA engine.
	InitDMA
	// InitDebug is an external debug/probe master (bus snooping).
	InitDebug
)

// Initiator identifies the bus master: its class and device/core number.
type Initiator struct {
	Type InitiatorType
	ID   int
}

// Access is one bus transaction with all security-relevant attributes.
type Access struct {
	Addr   uint32
	Size   int // 1, 2 or 4 bytes
	Kind   AccessKind
	Priv   isa.Priv
	World  World
	Init   Initiator
	PC     uint32 // program counter of the issuing instruction (0 for DMA)
	Domain int    // CPU-tracked security domain (0 = untrusted default)
	PTW    bool   // issued by the page-table walker (Sanctum filters on it)
}

// Action is a protection filter's verdict on an access.
type Action uint8

const (
	// ActionAllow lets the access proceed.
	ActionAllow Action = iota
	// ActionDeny raises a bus error (the initiator observes a fault).
	ActionDeny
	// ActionAbort silently squashes the access: reads return the abort
	// value, writes are dropped. This is Intel SGX's abort-page semantics
	// for non-enclave accesses to enclave memory — crucially it does NOT
	// raise an exception, which is why plain Meltdown fails against SGX.
	ActionAbort
)

func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionDeny:
		return "deny"
	case ActionAbort:
		return "abort"
	}
	return "action?"
}

// Filter inspects accesses before they reach memory. Architectures install
// filters to implement EPCM checks, TZASC windows, Sanctum region guards,
// EA-MPU rules and Sancus program-counter gates.
type Filter interface {
	// Name identifies the filter in diagnostics and statistics.
	Name() string
	// Check returns the verdict for the access.
	Check(a Access) Action
}

// FuncFilter adapts a function to the Filter interface.
type FuncFilter struct {
	FilterName string
	Fn         func(a Access) Action
}

// Name implements Filter.
func (f FuncFilter) Name() string { return f.FilterName }

// Check implements Filter.
func (f FuncFilter) Check(a Access) Action { return f.Fn(a) }

// RegionKind classifies a physical region.
type RegionKind uint8

const (
	// RegionRAM is ordinary read-write memory.
	RegionRAM RegionKind = iota
	// RegionROM is read-only memory; stores are bus errors.
	RegionROM
	// RegionMMIO forwards accesses to a Device.
	RegionMMIO
)

// Device is the interface implemented by MMIO peripherals.
type Device interface {
	// Read32 reads the 32-bit register at byte offset off.
	Read32(off uint32) uint32
	// Write32 writes the 32-bit register at byte offset off.
	Write32(off uint32, v uint32)
}

// Region describes one physical address range.
type Region struct {
	Name   string
	Base   uint32
	Size   uint32
	Kind   RegionKind
	Device Device // for RegionMMIO
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// End returns the first address after the region.
func (r Region) End() uint32 { return r.Base + r.Size }

type regionState struct {
	Region
	data []byte
}

// Memory is the physical memory map: an ordered set of non-overlapping
// regions. It performs no security checks; all policy lives in Controller.
type Memory struct {
	regions []*regionState
}

// NewMemory returns an empty physical memory map.
func NewMemory() *Memory { return &Memory{} }

// backingPools recycles region backings by size. Megabyte-scale RAM
// backings discarded after every attack run dominate the sweep's
// allocation volume and, through the heap goal, its GC assist time at
// high worker counts; recycling keeps that volume off the pacer.
// Reused backings are re-zeroed on the way out so a pooled region is
// indistinguishable from a make()-fresh one.
var backingPools sync.Map // uint32 (size) -> *sync.Pool

// poolMinBacking is the smallest backing worth pooling; below this the
// sync.Pool round-trip costs more than the allocation it saves.
const poolMinBacking = 1 << 16

func newBacking(size uint32) []byte {
	if size < poolMinBacking {
		return make([]byte, size)
	}
	v, _ := backingPools.LoadOrStore(size, &sync.Pool{})
	if b, ok := v.(*sync.Pool).Get().([]byte); ok {
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]byte, size)
}

// Release returns every region backing to the package pool and empties
// the map. It is an explicit end-of-lifetime declaration: the caller
// asserts nothing else still references this Memory. Accesses after
// Release fail as unmapped-address bus errors rather than aliasing a
// future Memory's contents.
func (m *Memory) Release() {
	for _, rs := range m.regions {
		if rs.data == nil || len(rs.data) < poolMinBacking {
			continue
		}
		v, _ := backingPools.LoadOrStore(uint32(len(rs.data)), &sync.Pool{})
		v.(*sync.Pool).Put(rs.data)
		rs.data = nil
	}
	m.regions = m.regions[:0]
}

// AddRegion adds a region to the map. Overlapping regions are rejected.
func (m *Memory) AddRegion(r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("mem: region %q has zero size", r.Name)
	}
	if r.Base+r.Size < r.Base {
		return fmt.Errorf("mem: region %q wraps the address space", r.Name)
	}
	for _, ex := range m.regions {
		if r.Base < ex.End() && ex.Base < r.End() {
			return fmt.Errorf("mem: region %q overlaps %q", r.Name, ex.Name)
		}
	}
	rs := &regionState{Region: r}
	if r.Kind != RegionMMIO {
		rs.data = newBacking(r.Size)
	}
	m.regions = append(m.regions, rs)
	return nil
}

// MustAddRegion adds a region and panics on error; for fixed platform maps.
func (m *Memory) MustAddRegion(r Region) {
	if err := m.AddRegion(r); err != nil {
		panic(err)
	}
}

// RegionAt returns the region containing addr.
func (m *Memory) RegionAt(addr uint32) (Region, bool) {
	if rs := m.find(addr); rs != nil {
		return rs.Region, true
	}
	return Region{}, false
}

// Regions returns a copy of the region list.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	for i, rs := range m.regions {
		out[i] = rs.Region
	}
	return out
}

func (m *Memory) find(addr uint32) *regionState {
	for _, rs := range m.regions {
		if rs.Contains(addr) {
			return rs
		}
	}
	return nil
}

// BusError reports a failed bus transaction.
type BusError struct {
	Access Access
	Reason string
}

func (e *BusError) Error() string {
	return fmt.Sprintf("bus error: %s of %d bytes at %#x (%s, priv %s, world %s): %s",
		e.Access.Kind, e.Access.Size, e.Access.Addr, initName(e.Access.Init),
		e.Access.Priv, e.Access.World, e.Reason)
}

func initName(i Initiator) string {
	switch i.Type {
	case InitCPU:
		return fmt.Sprintf("cpu%d", i.ID)
	case InitDMA:
		return fmt.Sprintf("dma%d", i.ID)
	case InitDebug:
		return fmt.Sprintf("probe%d", i.ID)
	}
	return "initiator?"
}

// readRaw reads without any checks; used by Controller after filtering and
// by ReadRaw for physical-attacker probes.
func (m *Memory) readRaw(addr uint32, size int) (uint32, error) {
	rs := m.find(addr)
	if rs == nil || !rs.Contains(addr+uint32(size)-1) {
		return 0, fmt.Errorf("unmapped address %#x", addr)
	}
	if rs.Kind == RegionMMIO {
		return rs.Device.Read32(addr - rs.Base), nil
	}
	off := addr - rs.Base
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(rs.data[off+uint32(i)]) << (8 * i)
	}
	return v, nil
}

func (m *Memory) writeRaw(addr uint32, size int, v uint32) error {
	rs := m.find(addr)
	if rs == nil || !rs.Contains(addr+uint32(size)-1) {
		return fmt.Errorf("unmapped address %#x", addr)
	}
	switch rs.Kind {
	case RegionROM:
		return fmt.Errorf("store to ROM region %q", rs.Name)
	case RegionMMIO:
		rs.Device.Write32(addr-rs.Base, v)
		return nil
	}
	off := addr - rs.Base
	for i := 0; i < size; i++ {
		rs.data[off+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}

// ReadRaw models a physical attacker (cold boot, bus interposer) reading
// memory contents directly, bypassing the controller and all filters. It
// returns exactly the bytes stored in the cells — ciphertext for regions
// behind a memory encryption engine.
func (m *Memory) ReadRaw(addr uint32, buf []byte) error {
	for i := range buf {
		v, err := m.readRaw(addr+uint32(i), 1)
		if err != nil {
			return err
		}
		buf[i] = byte(v)
	}
	return nil
}

// WriteRaw models physical tampering with memory cells (e.g. a malicious
// DIMM interposer), bypassing the controller. Writing to ROM still fails.
func (m *Memory) WriteRaw(addr uint32, buf []byte) error {
	for i := range buf {
		if err := m.writeRaw(addr+uint32(i), 1, uint32(buf[i])); err != nil {
			return err
		}
	}
	return nil
}

// LoadImage copies an assembled program image into memory, bypassing
// protection (it models the initial flash/provisioning step). ROM regions
// are writable through this path only.
func (m *Memory) LoadImage(base uint32, data []byte) error {
	for i, b := range data {
		addr := base + uint32(i)
		rs := m.find(addr)
		if rs == nil {
			return fmt.Errorf("mem: image byte at %#x unmapped", addr)
		}
		if rs.Kind == RegionMMIO {
			return fmt.Errorf("mem: image overlaps MMIO at %#x", addr)
		}
		rs.data[addr-rs.Base] = b
	}
	return nil
}

// LoadProgram loads every segment of an assembled program.
func (m *Memory) LoadProgram(p *isa.Program) error {
	for _, s := range p.Segments {
		if err := m.LoadImage(s.Base, s.Data); err != nil {
			return err
		}
	}
	return nil
}
