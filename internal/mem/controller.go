package mem

import "fmt"

// AbortValue is the value architecturally returned for reads squashed by
// ActionAbort (SGX reads of enclave memory from outside return all-ones).
const AbortValue uint32 = 0xffffffff

// FilterStats counts verdicts per filter, for the evaluation reports.
type FilterStats struct {
	Checked uint64
	Denied  uint64
	Aborted uint64
}

// Controller is the memory controller: it runs every access through the
// installed protection filters, routes protected ranges through their
// encryption engines, and finally accesses physical memory.
type Controller struct {
	Mem *Memory

	filters []Filter
	stats   map[string]*FilterStats
	mees    []*MEE

	// Denials counts total denied accesses (bus errors from filters).
	Denials uint64
	// Aborts counts total aborted accesses.
	Aborts uint64
}

// NewController wraps a physical memory map.
func NewController(m *Memory) *Controller {
	return &Controller{Mem: m, stats: map[string]*FilterStats{}}
}

// AddFilter installs a protection filter. Filters are consulted in
// installation order; the first non-allow verdict wins.
func (c *Controller) AddFilter(f Filter) {
	c.filters = append(c.filters, f)
	if _, ok := c.stats[f.Name()]; !ok {
		c.stats[f.Name()] = &FilterStats{}
	}
}

// RemoveFilter uninstalls the filter with the given name.
func (c *Controller) RemoveFilter(name string) {
	out := c.filters[:0]
	for _, f := range c.filters {
		if f.Name() != name {
			out = append(out, f)
		}
	}
	c.filters = out
}

// Stats returns the verdict counters for a filter name.
func (c *Controller) Stats(name string) FilterStats {
	if s, ok := c.stats[name]; ok {
		return *s
	}
	return FilterStats{}
}

// AttachMEE installs a memory encryption engine over a physical range.
func (c *Controller) AttachMEE(m *MEE) {
	c.mees = append(c.mees, m)
}

// check runs the filters and returns the collective verdict.
func (c *Controller) check(a Access) Action {
	for _, f := range c.filters {
		st := c.stats[f.Name()]
		st.Checked++
		switch v := f.Check(a); v {
		case ActionDeny:
			st.Denied++
			c.Denials++
			return ActionDeny
		case ActionAbort:
			st.Aborted++
			c.Aborts++
			return ActionAbort
		}
	}
	return ActionAllow
}

func (c *Controller) meeFor(addr uint32) *MEE {
	for _, m := range c.mees {
		if m.Covers(addr) {
			return m
		}
	}
	return nil
}

// Read performs a checked read. Aborted reads return AbortValue (masked to
// the access size) with no error, mirroring SGX abort-page semantics.
func (c *Controller) Read(a Access) (uint32, error) {
	if err := validateAccess(a); err != nil {
		return 0, err
	}
	switch c.check(a) {
	case ActionDeny:
		return 0, &BusError{Access: a, Reason: "denied by protection filter"}
	case ActionAbort:
		return AbortValue & sizeMask(a.Size), nil
	}
	if m := c.meeFor(a.Addr); m != nil && a.Init.Type == InitCPU {
		return m.Read(a.Addr, a.Size)
	}
	v, err := c.Mem.readRaw(a.Addr, a.Size)
	if err != nil {
		return 0, &BusError{Access: a, Reason: err.Error()}
	}
	return v, nil
}

// Write performs a checked write. Aborted writes are dropped silently.
func (c *Controller) Write(a Access, v uint32) error {
	if err := validateAccess(a); err != nil {
		return err
	}
	switch c.check(a) {
	case ActionDeny:
		return &BusError{Access: a, Reason: "denied by protection filter"}
	case ActionAbort:
		return nil
	}
	if m := c.meeFor(a.Addr); m != nil && a.Init.Type == InitCPU {
		return m.Write(a.Addr, a.Size, v)
	}
	if err := c.Mem.writeRaw(a.Addr, a.Size, v); err != nil {
		return &BusError{Access: a, Reason: err.Error()}
	}
	return nil
}

// ReadL1Content returns data as it would appear inside the L1 cache for
// addr — after MEE decryption, and without consulting any protection
// filter. It exists solely for the CPU's transient fault-forwarding path:
// Meltdown and L1TF forward stale L1 data to dependent instructions while
// the faulting load awaits retirement, bypassing every architectural
// check. No architectural read path uses this method.
func (c *Controller) ReadL1Content(addr uint32, size int) (uint32, error) {
	if m := c.meeFor(addr); m != nil {
		return m.Read(addr, size)
	}
	return c.Mem.readRaw(addr, size)
}

func validateAccess(a Access) error {
	switch a.Size {
	case 1, 2, 4:
	default:
		return fmt.Errorf("mem: unsupported access size %d", a.Size)
	}
	if a.Addr%uint32(a.Size) != 0 {
		return &BusError{Access: a, Reason: "misaligned access"}
	}
	return nil
}

func sizeMask(size int) uint32 {
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	}
	return 0xffffffff
}

// DMA is a peripheral DMA engine. Its transfers go through the controller
// with InitDMA identity, so protection filters (IOMMU/TZASC analogues) see
// and may block them — or fail to, which is the DMA attack from the paper.
type DMA struct {
	Ctrl     *Controller
	DeviceID int
	World    World // bus world the device claims (TZASC checks it)
}

// NewDMA returns a DMA engine with the given device identity.
func NewDMA(c *Controller, id int) *DMA {
	return &DMA{Ctrl: c, DeviceID: id, World: WorldNormal}
}

func (d *DMA) access(kind AccessKind, addr uint32) Access {
	return Access{
		Addr:  addr,
		Size:  1,
		Kind:  kind,
		Priv:  0,
		World: d.World,
		Init:  Initiator{Type: InitDMA, ID: d.DeviceID},
	}
}

// ReadInto copies n bytes starting at src into buf using DMA reads.
// It stops at the first denied access.
func (d *DMA) ReadInto(src uint32, buf []byte) error {
	for i := range buf {
		a := d.access(KindLoad, src+uint32(i))
		v, err := d.Ctrl.Read(a)
		if err != nil {
			return err
		}
		buf[i] = byte(v)
	}
	return nil
}

// WriteFrom copies buf into memory starting at dst using DMA writes.
func (d *DMA) WriteFrom(dst uint32, buf []byte) error {
	for i := range buf {
		a := d.access(KindStore, dst+uint32(i))
		if err := d.Ctrl.Write(a, uint32(buf[i])); err != nil {
			return err
		}
	}
	return nil
}

// Copy transfers n bytes from src to dst through the DMA engine.
func (d *DMA) Copy(dst, src uint32, n int) error {
	buf := make([]byte, n)
	if err := d.ReadInto(src, buf); err != nil {
		return err
	}
	return d.WriteFrom(dst, buf)
}
