package mem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
)

// meeBlock is the MEE protection granule in bytes (one AES block).
const meeBlock = 16

// MEE is a memory encryption engine in the style of Intel SGX's MEE: data
// inside the protected range is stored in physical memory only as
// ciphertext, with per-block version counters (anti-replay) and MACs
// (integrity). CPU-initiated accesses are transparently decrypted and
// re-encrypted at the controller; every other observer of the physical
// cells — DMA engines, bus probes, cold-boot reads — sees ciphertext.
//
// Sanctum deliberately omits this engine; the TAB2 "bus snoop" probe
// observes the difference.
type MEE struct {
	// Base and Size delimit the protected physical range.
	Base, Size uint32
	// Latency is the extra access latency in cycles the engine adds to a
	// memory transaction (used by the MEE-cost ablation).
	Latency int

	mem      *Memory
	enc      cipher.Block
	macKey   []byte
	versions []uint64
	macs     [][sha256.Size / 4]byte // truncated 8-byte MACs
	// IntegrityFailures counts MAC mismatches observed on reads.
	IntegrityFailures uint64

	// macHash is the keyed HMAC instance, built once and Reset per MAC:
	// Init alone MACs every block of the protected range, and a fresh
	// HMAC (two digest states plus key pads) per block made the engine
	// the sweep's dominant small-object allocator. The engine is
	// single-threaded like the platform it serves, so one instance and
	// one Sum buffer suffice.
	macHash hash.Hash
	macSum  []byte
	// Per-access scratch blocks. pad and mac feed these through
	// interface calls (cipher.Block.Encrypt, hash.Write), so
	// stack-local arrays escape and the engine heap-allocates on every
	// protected access; fields reachable from the receiver do not.
	padIn, padOut [meeBlock]byte
	macHdr        [12]byte
	blkCT         [meeBlock]byte
}

// NewMEE creates an engine over [base, base+size) keyed with key (16 bytes).
// The range must be block-aligned.
func NewMEE(m *Memory, base, size uint32, key []byte) (*MEE, error) {
	if base%meeBlock != 0 || size%meeBlock != 0 {
		return nil, fmt.Errorf("mem: MEE range %#x+%#x not %d-byte aligned", base, size, meeBlock)
	}
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("mem: MEE key: %w", err)
	}
	mk := sha256.Sum256(append(append([]byte{}, key...), []byte("intrust-mee-mac")...))
	e := &MEE{
		Base: base, Size: size, Latency: 12,
		mem:      m,
		enc:      blk,
		macKey:   mk[:],
		versions: make([]uint64, size/meeBlock),
		macs:     make([][8]byte, size/meeBlock),
	}
	e.macHash = hmac.New(sha256.New, e.macKey)
	e.macSum = make([]byte, 0, sha256.Size)
	return e, nil
}

// Covers reports whether addr lies inside the protected range.
func (e *MEE) Covers(addr uint32) bool {
	return addr >= e.Base && addr-e.Base < e.Size
}

// Init encrypts the current contents of the protected range in place.
// Call it after loading initial images and before first use.
func (e *MEE) Init() error {
	for b := uint32(0); b < e.Size/meeBlock; b++ {
		var pt [meeBlock]byte
		if err := e.mem.ReadRaw(e.Base+b*meeBlock, pt[:]); err != nil {
			return err
		}
		if err := e.storeBlock(b, pt[:]); err != nil {
			return err
		}
	}
	return nil
}

func (e *MEE) pad(block uint32, version uint64) [meeBlock]byte {
	binary.LittleEndian.PutUint32(e.padIn[0:], block)
	binary.LittleEndian.PutUint32(e.padIn[4:], 0)
	binary.LittleEndian.PutUint64(e.padIn[8:], version)
	e.enc.Encrypt(e.padOut[:], e.padIn[:])
	return e.padOut
}

func (e *MEE) mac(block uint32, version uint64, ct []byte) [8]byte {
	e.macHash.Reset()
	binary.LittleEndian.PutUint32(e.macHdr[0:], block)
	binary.LittleEndian.PutUint64(e.macHdr[4:], version)
	e.macHash.Write(e.macHdr[:])
	e.macHash.Write(ct)
	e.macSum = e.macHash.Sum(e.macSum[:0])
	var out [8]byte
	copy(out[:], e.macSum)
	return out
}

// loadBlock fetches and authenticates block b, returning its plaintext.
func (e *MEE) loadBlock(b uint32) ([meeBlock]byte, error) {
	var pt [meeBlock]byte
	if err := e.mem.ReadRaw(e.Base+b*meeBlock, e.blkCT[:]); err != nil {
		return pt, err
	}
	want := e.mac(b, e.versions[b], e.blkCT[:])
	if e.macs[b] != want {
		e.IntegrityFailures++
		return pt, fmt.Errorf("mem: MEE integrity failure at block %#x (tampering or replay detected)", e.Base+b*meeBlock)
	}
	pad := e.pad(b, e.versions[b])
	for i := range pt {
		pt[i] = e.blkCT[i] ^ pad[i]
	}
	return pt, nil
}

// storeBlock encrypts pt into block b with a fresh version.
func (e *MEE) storeBlock(b uint32, pt []byte) error {
	e.versions[b]++
	pad := e.pad(b, e.versions[b])
	for i := range e.blkCT {
		e.blkCT[i] = pt[i] ^ pad[i]
	}
	e.macs[b] = e.mac(b, e.versions[b], e.blkCT[:])
	return e.mem.WriteRaw(e.Base+b*meeBlock, e.blkCT[:])
}

// Read decrypts and returns size bytes at addr.
func (e *MEE) Read(addr uint32, size int) (uint32, error) {
	b := (addr - e.Base) / meeBlock
	pt, err := e.loadBlock(b)
	if err != nil {
		return 0, err
	}
	off := (addr - e.Base) % meeBlock
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(pt[off+uint32(i)]) << (8 * i)
	}
	return v, nil
}

// Write read-modify-writes size bytes at addr through the engine.
func (e *MEE) Write(addr uint32, size int, v uint32) error {
	b := (addr - e.Base) / meeBlock
	pt, err := e.loadBlock(b)
	if err != nil {
		return err
	}
	off := (addr - e.Base) % meeBlock
	for i := 0; i < size; i++ {
		pt[off+uint32(i)] = byte(v >> (8 * i))
	}
	return e.storeBlock(b, pt[:])
}

// ReadPlain decrypts n bytes starting at addr into buf; it is the
// privileged path used by the enclave paging engine (EWB/ELD).
func (e *MEE) ReadPlain(addr uint32, buf []byte) error {
	for i := range buf {
		v, err := e.Read(addr+uint32(i), 1)
		if err != nil {
			return err
		}
		buf[i] = byte(v)
	}
	return nil
}

// WritePlain encrypts buf into the protected range starting at addr.
func (e *MEE) WritePlain(addr uint32, buf []byte) error {
	for i := range buf {
		if err := e.Write(addr+uint32(i), 1, uint32(buf[i])); err != nil {
			return err
		}
	}
	return nil
}

// AccessLatency returns the extra cycles the controller charges for a
// memory transaction at addr (MEE crypto pipeline cost, 0 elsewhere).
func (c *Controller) AccessLatency(addr uint32) int {
	if m := c.meeFor(addr); m != nil {
		return m.Latency
	}
	return 0
}
