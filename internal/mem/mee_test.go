package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func meeSetup(t *testing.T) (*Memory, *Controller, *MEE) {
	t.Helper()
	m := NewMemory()
	m.MustAddRegion(Region{Name: "ram", Base: 0x1000, Size: 0x2000, Kind: RegionRAM})
	c := NewController(m)
	key := bytes.Repeat([]byte{0x42}, 16)
	mee, err := NewMEE(m, 0x1800, 0x800, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := mee.Init(); err != nil {
		t.Fatal(err)
	}
	c.AttachMEE(mee)
	return m, c, mee
}

func TestMEETransparentForCPU(t *testing.T) {
	_, c, _ := meeSetup(t)
	if err := c.Write(cpuAccess(0x1800, 4, KindStore), 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(cpuAccess(0x1800, 4, KindLoad))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xcafebabe {
		t.Fatalf("CPU read through MEE = %#x", v)
	}
}

func TestMEEStoresCiphertext(t *testing.T) {
	m, c, _ := meeSetup(t)
	secret := []byte("enclave secret!!") // 16 bytes, one block
	for i, b := range secret {
		if err := c.Write(cpuAccess(0x1800+uint32(i), 1, KindStore), uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	// A physical probe sees ciphertext, not the secret.
	raw := make([]byte, len(secret))
	if err := m.ReadRaw(0x1800, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, secret) {
		t.Fatal("plaintext visible to physical probe in MEE region")
	}
	if bytes.Contains(raw, []byte("secret")) {
		t.Fatal("secret substring visible in ciphertext")
	}
	// The unprotected part of RAM stays plaintext.
	if err := c.Write(cpuAccess(0x1000, 4, KindStore), 0x41414141); err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, 4)
	if err := m.ReadRaw(0x1000, plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, []byte("AAAA")) {
		t.Fatalf("unprotected RAM = %x", plain)
	}
}

func TestMEERoundTripQuick(t *testing.T) {
	_, c, _ := meeSetup(t)
	rng := rand.New(rand.NewSource(3))
	f := func(val uint32) bool {
		addr := 0x1800 + uint32(rng.Intn(0x200))*4
		if err := c.Write(cpuAccess(addr, 4, KindStore), val); err != nil {
			return false
		}
		got, err := c.Read(cpuAccess(addr, 4, KindLoad))
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMEEDetectsTampering(t *testing.T) {
	m, c, mee := meeSetup(t)
	if err := c.Write(cpuAccess(0x1800, 4, KindStore), 0x11223344); err != nil {
		t.Fatal(err)
	}
	// Physical attacker flips a ciphertext bit.
	raw := make([]byte, 1)
	if err := m.ReadRaw(0x1800, raw); err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x80
	if err := m.WriteRaw(0x1800, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(cpuAccess(0x1800, 4, KindLoad)); err == nil {
		t.Fatal("tampered MEE block read succeeded")
	}
	if mee.IntegrityFailures == 0 {
		t.Error("integrity failure not counted")
	}
}

func TestMEEDetectsReplay(t *testing.T) {
	m, c, _ := meeSetup(t)
	// Capture old ciphertext, let the CPU update the block, then replay.
	if err := c.Write(cpuAccess(0x1810, 4, KindStore), 1); err != nil {
		t.Fatal(err)
	}
	old := make([]byte, meeBlock)
	if err := m.ReadRaw(0x1810, old); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(cpuAccess(0x1810, 4, KindStore), 2); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRaw(0x1810, old); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(cpuAccess(0x1810, 4, KindLoad)); err == nil {
		t.Fatal("replayed MEE block accepted")
	}
}

func TestMEEPlainHelpers(t *testing.T) {
	_, _, mee := meeSetup(t)
	msg := []byte("page contents for EWB/ELD swap ")
	if err := mee.WritePlain(0x1900, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := mee.ReadPlain(0x1900, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("ReadPlain = %q", got)
	}
}

func TestMEEAlignmentAndKeyValidation(t *testing.T) {
	m := NewMemory()
	m.MustAddRegion(Region{Name: "ram", Base: 0, Size: 0x1000, Kind: RegionRAM})
	if _, err := NewMEE(m, 8, 64, bytes.Repeat([]byte{1}, 16)); err == nil {
		t.Error("misaligned MEE accepted")
	}
	if _, err := NewMEE(m, 0, 64, []byte("short")); err == nil {
		t.Error("bad key accepted")
	}
}

func TestMEEAccessLatency(t *testing.T) {
	_, c, mee := meeSetup(t)
	if got := c.AccessLatency(0x1800); got != mee.Latency {
		t.Errorf("latency in region = %d, want %d", got, mee.Latency)
	}
	if got := c.AccessLatency(0x1000); got != 0 {
		t.Errorf("latency outside region = %d", got)
	}
}

func TestDMAReadsCiphertextViaController(t *testing.T) {
	// Without an EPCM-style filter, DMA can read the MEE region through the
	// controller — but still only sees ciphertext because the MEE only
	// decrypts for CPU initiators. This is SGX's DMA-attack protection.
	_, c, _ := meeSetup(t)
	secret := uint32(0x5ec2e700)
	if err := c.Write(cpuAccess(0x1820, 4, KindStore), secret); err != nil {
		t.Fatal(err)
	}
	dma := NewDMA(c, 2)
	buf := make([]byte, 4)
	if err := dma.ReadInto(0x1820, buf); err != nil {
		t.Fatal(err)
	}
	got := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	if got == secret {
		t.Fatal("DMA observed plaintext in MEE region")
	}
}
