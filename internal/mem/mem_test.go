package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/intrust-sim/intrust/internal/isa"
)

func testMemory(t *testing.T) *Memory {
	t.Helper()
	m := NewMemory()
	m.MustAddRegion(Region{Name: "ram", Base: 0x1000, Size: 0x4000, Kind: RegionRAM})
	m.MustAddRegion(Region{Name: "rom", Base: 0x0, Size: 0x400, Kind: RegionROM})
	return m
}

func cpuAccess(addr uint32, size int, kind AccessKind) Access {
	return Access{Addr: addr, Size: size, Kind: kind, Priv: isa.PrivMachine,
		Init: Initiator{Type: InitCPU}}
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := testMemory(t)
	c := NewController(m)
	if err := c.Write(cpuAccess(0x1000, 4, KindStore), 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(cpuAccess(0x1000, 4, KindLoad))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("read = %#x", v)
	}
	// Byte granularity.
	v, err = c.Read(cpuAccess(0x1003, 1, KindLoad))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xde {
		t.Fatalf("byte read = %#x", v)
	}
}

func TestMemoryRoundTripQuick(t *testing.T) {
	m := testMemory(t)
	c := NewController(m)
	rng := rand.New(rand.NewSource(7))
	f := func(val uint32) bool {
		addr := 0x1000 + uint32(rng.Intn(0x1000))*4
		if err := c.Write(cpuAccess(addr, 4, KindStore), val); err != nil {
			return false
		}
		got, err := c.Read(cpuAccess(addr, 4, KindLoad))
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestROMRejectsStores(t *testing.T) {
	m := testMemory(t)
	c := NewController(m)
	if err := c.Write(cpuAccess(0x0, 4, KindStore), 1); err == nil {
		t.Fatal("store to ROM succeeded")
	}
	// But LoadImage (provisioning) can write ROM.
	if err := m.LoadImage(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(cpuAccess(0x0, 4, KindLoad))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x04030201 {
		t.Fatalf("ROM read = %#x", v)
	}
}

func TestUnmappedAndMisaligned(t *testing.T) {
	m := testMemory(t)
	c := NewController(m)
	if _, err := c.Read(cpuAccess(0x9000000, 4, KindLoad)); err == nil {
		t.Error("unmapped read succeeded")
	}
	if _, err := c.Read(cpuAccess(0x1002, 4, KindLoad)); err == nil {
		t.Error("misaligned read succeeded")
	}
	if _, err := c.Read(Access{Addr: 0x1000, Size: 3}); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	m := testMemory(t)
	if err := m.AddRegion(Region{Name: "clash", Base: 0x2000, Size: 16, Kind: RegionRAM}); err == nil {
		t.Error("overlapping region accepted")
	}
	if err := m.AddRegion(Region{Name: "empty", Base: 0x100000, Size: 0}); err == nil {
		t.Error("zero-size region accepted")
	}
	if err := m.AddRegion(Region{Name: "wrap", Base: 0xfffffff0, Size: 0x100}); err == nil {
		t.Error("wrapping region accepted")
	}
}

type testDevice struct {
	regs [4]uint32
}

func (d *testDevice) Read32(off uint32) uint32     { return d.regs[off/4] }
func (d *testDevice) Write32(off uint32, v uint32) { d.regs[off/4] = v }

func TestMMIODevice(t *testing.T) {
	m := NewMemory()
	dev := &testDevice{}
	m.MustAddRegion(Region{Name: "dev", Base: 0xf000, Size: 16, Kind: RegionMMIO, Device: dev})
	c := NewController(m)
	if err := c.Write(cpuAccess(0xf004, 4, KindStore), 0x55); err != nil {
		t.Fatal(err)
	}
	if dev.regs[1] != 0x55 {
		t.Fatalf("device reg = %#x", dev.regs[1])
	}
	v, err := c.Read(cpuAccess(0xf004, 4, KindLoad))
	if err != nil || v != 0x55 {
		t.Fatalf("mmio read = %#x, %v", v, err)
	}
}

func TestFilterDenyAndAbort(t *testing.T) {
	m := testMemory(t)
	c := NewController(m)
	// Protect [0x2000,0x3000): deny non-machine, abort DMA.
	c.AddFilter(FuncFilter{FilterName: "guard", Fn: func(a Access) Action {
		if a.Addr < 0x2000 || a.Addr >= 0x3000 {
			return ActionAllow
		}
		if a.Init.Type == InitDMA {
			return ActionAbort
		}
		if a.Priv < isa.PrivMachine {
			return ActionDeny
		}
		return ActionAllow
	}})

	if err := c.Write(cpuAccess(0x2000, 4, KindStore), 0x1234); err != nil {
		t.Fatal(err)
	}
	// User-privilege read is denied.
	ua := cpuAccess(0x2000, 4, KindLoad)
	ua.Priv = isa.PrivUser
	if _, err := c.Read(ua); err == nil {
		t.Error("user read of guarded region succeeded")
	}
	// DMA read aborts: returns AbortValue, no error.
	dma := NewDMA(c, 1)
	buf := make([]byte, 4)
	if err := dma.ReadInto(0x2000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0xff, 0xff, 0xff, 0xff}) {
		t.Errorf("DMA abort read = %x", buf)
	}
	// DMA write is dropped.
	if err := dma.WriteFrom(0x2000, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Read(cpuAccess(0x2000, 4, KindLoad))
	if v != 0x1234 {
		t.Errorf("aborted DMA write modified memory: %#x", v)
	}
	st := c.Stats("guard")
	if st.Denied == 0 || st.Aborted == 0 {
		t.Errorf("filter stats not recorded: %+v", st)
	}
	// Removing the filter restores access.
	c.RemoveFilter("guard")
	if _, err := c.Read(ua); err != nil {
		t.Errorf("read after filter removal: %v", err)
	}
}

func TestDMACopyUnprotected(t *testing.T) {
	m := testMemory(t)
	c := NewController(m)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.LoadImage(0x1100, want); err != nil {
		t.Fatal(err)
	}
	dma := NewDMA(c, 0)
	if err := dma.Copy(0x1200, 0x1100, len(want)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := m.ReadRaw(0x1200, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("DMA copy = %x, want %x", got, want)
	}
}

func TestLoadProgram(t *testing.T) {
	m := testMemory(t)
	p := isa.MustAssemble(".org 0x1000\nstart: addi a0, zero, 7\nhlt")
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c := NewController(m)
	w, err := c.Read(cpuAccess(0x1000, 4, KindFetch))
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Decode(w)
	if in.Op != isa.OpADDI || in.Rd != isa.RegA0 || in.Imm != 7 {
		t.Errorf("loaded instruction = %v", in)
	}
}
