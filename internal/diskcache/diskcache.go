// Package diskcache is the persistent second tier under the serve
// layer's in-memory result cache: a directory of tamper-evident,
// crash-safe files mapping a canonical content address (the cell-key
// encoding from internal/core) to the rendered body computed for it.
//
// The engine's determinism guarantee is what makes a disk tier sound
// with zero invalidation logic — a cell body is a pure function of its
// canonical address, so an entry that authenticates is exactly what a
// fresh computation would produce, no matter how old it is or which
// process wrote it. The only failure modes left are therefore storage
// failures (torn writes, truncation, bit rot) and hostile modification
// (cache poisoning), and the format treats both identically: every
// entry is an authenticated envelope (HMAC-SHA256 over a versioned
// header, the address echo, and the body, keyed from the store secret),
// and any file that fails authentication — or decodes to a different
// address than the one requested — reads as a miss and is quarantined,
// never served and never an error. A poisoned cache can slow the
// service down; it cannot make it lie.
//
// Writes are crash-safe: the envelope lands in a private temp file,
// is fsynced, and is atomically renamed over the final path, so a
// reader (or a restart) sees either the complete old entry, the
// complete new entry, or nothing — never a torn write at the final
// path. Stale temp files from a crashed writer are swept on Open.
package diskcache

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/intrust-sim/intrust/internal/fault"
)

// Envelope layout (all integers big-endian):
//
//	offset 0: magic "IDC" + version byte ('1')
//	offset 4: addrLen uint32
//	offset 8: addr (the canonical content address, echoed verbatim)
//	        : bodyLen uint32
//	        : body
//	        : mac — HMAC-SHA256 over every preceding byte
//
// The version byte is authenticated (a downgraded header fails the
// MAC) and checked before anything else, so a format bump can never
// be misread as the old layout. The address echo makes cross-key
// aliasing detectable: copying a valid envelope onto another address's
// path authenticates but echoes the wrong address, and Get rejects it.
// Decode rejects trailing bytes, so exactly one wire string exists per
// (addr, body) pair and a decoded envelope re-encodes byte-identically.
const (
	envMagic   = "IDC"
	envVersion = '1'

	headerLen = 4 + 4 // magic+version, addrLen
	macLen    = sha256.Size

	// maxAddrLen / maxBodyLen bound the declared lengths before any
	// allocation, so a corrupt header cannot ask for gigabytes.
	maxAddrLen = 1 << 16
	maxBodyLen = 1 << 30
)

// Envelope decode failures. All of them read as a miss; they are
// distinguished so tests (and the quarantine log line, if one is ever
// added) can tell storage rot from format drift.
var (
	// ErrFormat covers structural failures: short files, bad magic,
	// out-of-bound lengths, truncation, trailing bytes.
	ErrFormat = errors.New("diskcache: malformed envelope")
	// ErrVersion is a well-formed envelope of a different format
	// version (stale cache from a future or past layout).
	ErrVersion = errors.New("diskcache: unsupported envelope version")
	// ErrAuth is a structurally valid envelope whose MAC does not
	// verify under this store's key: corruption or tampering.
	ErrAuth = errors.New("diskcache: envelope failed authentication")
	// ErrAddrMismatch is an authentic envelope echoing a different
	// address than the one it was read for (cross-key aliasing).
	ErrAddrMismatch = errors.New("diskcache: envelope address mismatch")
)

// deriveMACKey expands the operator-supplied secret into the HMAC key
// deterministically, so every process pointed at the same secret (and
// the same directory) reads the same store. The fixed label
// domain-separates this use from any other HMAC of the same secret.
func deriveMACKey(secret string) []byte {
	h := hmac.New(sha256.New, []byte("intrust-diskcache-mac-v1"))
	h.Write([]byte(secret))
	return h.Sum(nil)
}

// encode renders the authenticated envelope for (addr, body).
func encode(macKey []byte, addr string, body []byte) []byte {
	n := headerLen + len(addr) + 4 + len(body) + macLen
	env := make([]byte, 0, n)
	env = append(env, envMagic...)
	env = append(env, envVersion)
	env = binary.BigEndian.AppendUint32(env, uint32(len(addr)))
	env = append(env, addr...)
	env = binary.BigEndian.AppendUint32(env, uint32(len(body)))
	env = append(env, body...)
	mac := hmac.New(sha256.New, macKey)
	mac.Write(env)
	return mac.Sum(env)
}

// decode parses and authenticates an envelope, returning the echoed
// address and the body. It accepts exactly the strings encode produces:
// any accepted envelope re-encodes byte-identically (the fuzz-pinned
// canonical-form invariant).
func decode(macKey, env []byte) (addr string, body []byte, err error) {
	if len(env) < headerLen+4+macLen {
		return "", nil, fmt.Errorf("%w: %d bytes is shorter than an empty envelope", ErrFormat, len(env))
	}
	if string(env[:3]) != envMagic {
		return "", nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if env[3] != envVersion {
		return "", nil, fmt.Errorf("%w: version %q (want %q)", ErrVersion, env[3], envVersion)
	}
	addrLen := binary.BigEndian.Uint32(env[4:8])
	if addrLen > maxAddrLen || headerLen+int(addrLen)+4+macLen > len(env) {
		return "", nil, fmt.Errorf("%w: address length %d out of bounds", ErrFormat, addrLen)
	}
	bodyOff := headerLen + int(addrLen) + 4
	bodyLen := binary.BigEndian.Uint32(env[bodyOff-4 : bodyOff])
	if bodyLen > maxBodyLen || bodyOff+int(bodyLen)+macLen != len(env) {
		return "", nil, fmt.Errorf("%w: body length %d does not match envelope size %d", ErrFormat, bodyLen, len(env))
	}
	macOff := bodyOff + int(bodyLen)
	mac := hmac.New(sha256.New, macKey)
	mac.Write(env[:macOff])
	if !hmac.Equal(mac.Sum(nil), env[macOff:]) {
		return "", nil, ErrAuth
	}
	return string(env[headerLen : headerLen+int(addrLen)]), env[bodyOff:macOff], nil
}

// Counters is a snapshot of a store's traffic accounting.
type Counters struct {
	// Hits are reads that returned an authenticated body.
	Hits int64
	// Misses are reads of addresses with no file on disk.
	Misses int64
	// Rejects are reads that found a file but refused it — failed
	// authentication, truncation, torn or stale format, or a wrong
	// address echo. Every reject also quarantined the file.
	Rejects int64
	// Writes are entries durably persisted.
	Writes int64
	// IOErrors are reads or writes that failed at the storage layer
	// (real or injected) — the disk-health signal, distinct from
	// Rejects (bad bytes) and Misses (no entry).
	IOErrors int64
}

// Store is one on-disk cache directory under one secret. It is safe
// for concurrent use by any number of goroutines (and, thanks to the
// atomic-rename write protocol, by concurrent processes sharing the
// directory and secret).
type Store struct {
	dir    string
	macKey []byte

	// faults is the optional chaos seam (nil in production): injected
	// read/write IO errors and at-rest corruption, armed by the fault
	// plane's seeded schedules. Set it before the store sees traffic.
	faults *fault.Plane

	hits    atomic.Int64
	misses  atomic.Int64
	rejects atomic.Int64
	writes  atomic.Int64
	ioErrs  atomic.Int64
}

// Open creates (if needed) and opens the cache directory. Leftover
// temp files from a crashed writer are swept; committed entries are
// never touched here — they authenticate (or quarantine) lazily on
// first read.
func Open(dir, secret string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("diskcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "put-*.tmp")); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	return &Store{dir: dir, macKey: deriveMACKey(secret)}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Fault-point names this store probes (see internal/fault's catalog).
const (
	// FaultRead injects an IO error (and/or latency) on entry reads.
	FaultRead = "disk.read"
	// FaultWrite injects an IO error (and/or latency) on entry writes.
	FaultWrite = "disk.write"
	// FaultCorrupt flips a byte of a read envelope before decode —
	// at-rest corruption, exercising the authenticate-and-quarantine
	// path.
	FaultCorrupt = "disk.corrupt"
)

// SetFaults installs the chaos seam (nil disables it). Call it before
// the store sees traffic; the plane itself is concurrency-safe but the
// pointer swap is not synchronized against in-flight operations.
func (s *Store) SetFaults(p *fault.Plane) { s.faults = p }

// path maps an address to its file: a digest filename, so addresses of
// any length and alphabet are valid and no address bytes leak into
// directory listings.
func (s *Store) path(addr string) string {
	sum := sha256.Sum256([]byte(addr))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".cell")
}

// Get reads the body stored under addr. Every failure mode — no file,
// truncated or torn file, failed authentication, stale version, wrong
// address echo, an IO error — is a miss; files that were present but
// refused are additionally quarantined so the next read of the address
// is a clean miss rather than a repeated decode of known-bad bytes.
func (s *Store) Get(addr string) ([]byte, bool) {
	body, ok, _ := s.GetE(addr)
	return body, ok
}

// GetE is Get with the storage-health signal surfaced: ioErr is non-nil
// exactly when the read failed for a reason other than the entry not
// existing (a real or injected IO fault). The body contract is
// unchanged — an IO error still reads as a miss, never a served error —
// but callers running a circuit breaker over the disk tier (the serve
// layer) need to tell "nothing there" from "the disk is failing".
func (s *Store) GetE(addr string) (body []byte, ok bool, ioErr error) {
	path := s.path(addr)
	if err := s.faults.Fail(FaultRead); err != nil {
		s.ioErrs.Add(1)
		s.misses.Add(1)
		return nil, false, err
	}
	env, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		s.ioErrs.Add(1)
		return nil, false, err
	}
	if s.faults.Fire(FaultCorrupt) && len(env) > 0 {
		// At-rest rot: flip one byte of what the disk returned. The
		// envelope now genuinely fails authentication, so the normal
		// reject path quarantines the (actually intact) file and the
		// caller recomputes — never a served corrupt body.
		env[len(env)/2] ^= 0xFF
	}
	gotAddr, body, err := decode(s.macKey, env)
	if err == nil && gotAddr != addr {
		err = fmt.Errorf("%w: entry for %q read as %q", ErrAddrMismatch, gotAddr, addr)
	}
	if err != nil {
		s.quarantine(path)
		s.rejects.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	return body, true, nil
}

// Has reports whether a file exists for addr without reading or
// authenticating it — a cheap existence probe; only Get can promise
// the entry is servable.
func (s *Store) Has(addr string) bool {
	_, err := os.Stat(s.path(addr))
	return err == nil
}

// quarantine moves a refused file aside (same name, ".bad" suffix) so
// it stays available for inspection but is out of the read path. A
// second quarantine of the same address replaces the first.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+".bad"); err != nil {
		// Rename can only really fail here if the file vanished (a
		// concurrent quarantine) or the directory is read-only; either
		// way removing is the best remaining effort.
		os.Remove(path)
	}
}

// Put durably persists body under addr: envelope into a private temp
// file, fsync, atomic rename over the final path, directory fsync. A
// crash at any point leaves either the previous entry or the complete
// new one at the final path — never a torn write.
func (s *Store) Put(addr string, body []byte) error {
	if err := s.faults.Fail(FaultWrite); err != nil {
		s.ioErrs.Add(1)
		return fmt.Errorf("diskcache: %w", err)
	}
	env := encode(s.macKey, addr, body)
	f, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.ioErrs.Add(1)
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(env); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(addr))
	}
	if err != nil {
		os.Remove(tmp)
		s.ioErrs.Add(1)
		return fmt.Errorf("diskcache: %w", err)
	}
	s.syncDir()
	s.writes.Add(1)
	return nil
}

// syncDir fsyncs the cache directory so a committed rename survives
// power loss. Best-effort: some filesystems refuse directory fsync,
// and the rename itself already ordered correctly against the data
// sync on the ones that matter.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Counters returns a snapshot of the store's traffic accounting.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Rejects:  s.rejects.Load(),
		Writes:   s.writes.Load(),
		IOErrors: s.ioErrs.Load(),
	}
}
