package diskcache

import (
	"bytes"
	"testing"
)

// FuzzEnvelopeDecode pins the decoder's two safety invariants over
// arbitrary bytes:
//
//  1. decode never panics, whatever the input — a poisoned cache file
//     must read as a miss, not crash the service;
//  2. canonical form — any envelope decode accepts re-encodes
//     byte-identically, so exactly one wire string exists per
//     (addr, body) pair and a tampered-but-accepted variant cannot
//     exist.
func FuzzEnvelopeDecode(f *testing.F) {
	macKey := deriveMACKey("fuzz-secret")
	good := encode(macKey, "cell|v1|flush+reload|sgx|none|64|0|0|0", []byte(`{"verdict":"LEAKS"}`+"\n"))
	f.Add(good)
	f.Add(encode(macKey, "", nil))
	f.Add(good[:len(good)-1])            // truncated MAC
	f.Add(append(good[:len(good):len(good)], 0)) // trailing byte
	f.Add([]byte("IDC1"))
	f.Add([]byte{})
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, env []byte) {
		addr, body, err := decode(macKey, env)
		if err != nil {
			return
		}
		if re := encode(macKey, addr, body); !bytes.Equal(re, env) {
			t.Fatalf("accepted envelope is not canonical:\n in: %x\nout: %x", env, re)
		}
	})
}

// FuzzEnvelopeRoundTrip pins encode∘decode as the identity for
// arbitrary (addr, body) pairs under arbitrary secrets — and that a
// second secret never authenticates the first secret's envelope.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add("secret", "cell|v1|dpa|sgx|stock|1500|0.9|0|0", []byte("body\n"))
	f.Add("", "", []byte(nil))
	f.Add("s", "addr with | pipe % escape", []byte{0, 1, 2, 255})

	f.Fuzz(func(t *testing.T, secret, addr string, body []byte) {
		if len(addr) > maxAddrLen {
			return
		}
		key := deriveMACKey(secret)
		env := encode(key, addr, body)
		gotAddr, gotBody, err := decode(key, env)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if gotAddr != addr || !bytes.Equal(gotBody, body) {
			t.Fatalf("round trip mutated: addr %q->%q body %x->%x", addr, gotAddr, body, gotBody)
		}
		if _, _, err := decode(deriveMACKey(secret+"x"), env); err == nil {
			t.Fatal("envelope authenticated under a different secret")
		}
	})
}
