package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir, secret string) *Store {
	t.Helper()
	s, err := Open(dir, secret)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	addr := "cell|v1|flush+reload|sgx|none|64|0|0|0"
	body := []byte(`{"verdict":"LEAKS"}` + "\n")
	if _, ok := s.Get(addr); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(addr, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(addr)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want stored body", got, ok)
	}
	if c := s.Counters(); c.Hits != 1 || c.Misses != 1 || c.Rejects != 0 || c.Writes != 1 {
		t.Fatalf("counters = %+v; want 1 hit, 1 miss, 0 rejects, 1 write", c)
	}
	// Overwrite is allowed and keeps the entry servable.
	if err := s.Put(addr, body); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if _, ok := s.Get(addr); !ok {
		t.Fatal("entry lost after overwrite")
	}
}

func TestEmptyBodyAndOddAddresses(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "")
	for _, addr := range []string{"a", strings.Repeat("x", 4096), "sp ace|pipe%25", "\x00\xff"} {
		if err := s.Put(addr, nil); err != nil {
			t.Fatalf("Put(%q, nil): %v", addr, err)
		}
		got, ok := s.Get(addr)
		if !ok || len(got) != 0 {
			t.Fatalf("Get(%q) = %q, %v; want empty hit", addr, got, ok)
		}
	}
}

// entryPath finds the single .cell file a one-entry store holds.
func entryPath(t *testing.T, s *Store) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(s.Dir(), "*.cell"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one .cell file, got %v (err %v)", files, err)
	}
	return files[0]
}

// TestCorruptionMatrix is the on-disk format's central safety property:
// every way a file can go wrong — truncation anywhere, a flipped byte
// in the header, address echo, body or MAC, a stale version byte,
// trailing bytes, a torn write, a wrong secret — reads as a miss and
// quarantines the file. Never a panic, never a served body, and the
// address recovers (a fresh Put works) afterwards.
func TestCorruptionMatrix(t *testing.T) {
	const addr = "cell|v1|dpa|sgx|stock|1500|0.9|0|0"
	body := []byte(`{"verdict":"defended","metrics":{"traces":1500}}` + "\n")

	corruptions := []struct {
		name    string
		mutate  func(env []byte) []byte
		recount bool // false: the mutation is a different secret, not a file edit
	}{
		{"truncated-header", func(e []byte) []byte { return e[:3] }, true},
		{"truncated-mid-body", func(e []byte) []byte { return e[:len(e)/2] }, true},
		{"truncated-one-byte", func(e []byte) []byte { return e[:len(e)-1] }, true},
		{"empty-file", func(e []byte) []byte { return nil }, true},
		{"flipped-magic", flipAt(0), true},
		{"stale-version", func(e []byte) []byte { e[3] = '0'; return e }, true},
		{"flipped-addrlen", flipAt(5), true},
		{"flipped-addr", flipAt(headerLen + 2), true},
		{"flipped-bodylen", func(e []byte) []byte { e[headerLen+len(addr)+1] ^= 0xff; return e }, true},
		{"flipped-body", func(e []byte) []byte { e[headerLen+len(addr)+4+3] ^= 0x01; return e }, true},
		{"flipped-mac", func(e []byte) []byte { e[len(e)-1] ^= 0x80; return e }, true},
		{"trailing-byte", func(e []byte) []byte { return append(e, 0) }, true},
		{"trailing-envelope", func(e []byte) []byte { return append(e, e...) }, true},
		{"giant-addrlen", func(e []byte) []byte { e[4], e[5] = 0x7f, 0xff; return e }, true},
		{"torn-write", func(e []byte) []byte { return e[:headerLen+len(addr)+2] }, true},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), "secret")
			if err := s.Put(addr, body); err != nil {
				t.Fatalf("Put: %v", err)
			}
			path := entryPath(t, s)
			env, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read entry: %v", err)
			}
			if err := os.WriteFile(path, tc.mutate(env), 0o644); err != nil {
				t.Fatalf("corrupt entry: %v", err)
			}
			if got, ok := s.Get(addr); ok {
				t.Fatalf("corrupted entry served: %q", got)
			}
			if c := s.Counters(); c.Rejects != 1 {
				t.Fatalf("counters = %+v; want exactly one reject", c)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupted file still at %s (err %v); want quarantined", path, err)
			}
			if _, err := os.Stat(path + ".bad"); err != nil {
				t.Fatalf("no quarantine file at %s.bad: %v", path, err)
			}
			// The address must recover: a clean miss now, a fresh Put
			// and hit afterwards.
			if _, ok := s.Get(addr); ok {
				t.Fatal("quarantined address still hit")
			}
			if err := s.Put(addr, body); err != nil {
				t.Fatalf("re-Put after quarantine: %v", err)
			}
			if got, ok := s.Get(addr); !ok || !bytes.Equal(got, body) {
				t.Fatalf("address did not recover: %q, %v", got, ok)
			}
		})
	}
}

func flipAt(i int) func([]byte) []byte {
	return func(e []byte) []byte { e[i] ^= 0x40; return e }
}

// TestWrongSecret: an envelope written under one secret must not
// authenticate under another — a stolen or guessed directory cannot be
// replayed into a differently-keyed service.
func TestWrongSecret(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, "alpha")
	const addr = "cell|v1|spectre-v1|sgx|none|64|0|0|0"
	if err := a.Put(addr, []byte("body\n")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	b := mustOpen(t, dir, "beta")
	if got, ok := b.Get(addr); ok {
		t.Fatalf("cross-secret read served %q", got)
	}
	if c := b.Counters(); c.Rejects != 1 {
		t.Fatalf("counters = %+v; want one reject", c)
	}
}

// TestCrossKeyAliasing: copying a perfectly authentic envelope onto
// another address's path must be rejected via the address echo — an
// attacker who can rearrange files cannot remap results between cells.
func TestCrossKeyAliasing(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	const addrA = "cell|v1|flush+reload|sgx|none|64|0|0|0"
	const addrB = "cell|v1|flush+reload|sgx|stock|64|0|0|0"
	if err := s.Put(addrA, []byte("broken\n")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	env, err := os.ReadFile(s.path(addrA))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(s.path(addrB), env, 0o644); err != nil {
		t.Fatalf("alias: %v", err)
	}
	if got, ok := s.Get(addrB); ok {
		t.Fatalf("aliased entry served under %q: %q", addrB, got)
	}
	if c := s.Counters(); c.Rejects != 1 {
		t.Fatalf("counters = %+v; want one reject", c)
	}
	// The genuine address still serves.
	if got, ok := s.Get(addrA); !ok || string(got) != "broken\n" {
		t.Fatalf("genuine entry lost: %q, %v", got, ok)
	}
}

// TestOpenSweepsTempFiles: temp files from a crashed writer are swept
// on Open and never visible to Get.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-123.tmp")
	if err := os.WriteFile(stale, []byte("half an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir, "secret")
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open (err %v)", err)
	}
}

// TestPutLeavesNoTempFiles: the atomic-rename protocol must not leak
// temp files on the success path.
func TestPutLeavesNoTempFiles(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("addr-%d", i), []byte("body")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	tmps, _ := filepath.Glob(filepath.Join(s.Dir(), "put-*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

func TestHas(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	if s.Has("nope") {
		t.Fatal("Has on an empty store")
	}
	if err := s.Put("yes", []byte("body")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("yes") {
		t.Fatal("Has missed a stored entry")
	}
	// Has is a pure existence probe and must not move the counters.
	if c := s.Counters(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("Has moved the read counters: %+v", c)
	}
}

// TestConcurrentPutGet exercises the rename protocol under concurrent
// writers and readers of the same addresses (run with -race).
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	const addrs = 4
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				addr := fmt.Sprintf("addr-%d", i%addrs)
				body := []byte(fmt.Sprintf("body-%d", i%addrs))
				if i%2 == 0 {
					if err := s.Put(addr, body); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if got, ok := s.Get(addr); ok && !bytes.Equal(got, body) {
					t.Errorf("Get(%q) = %q; want %q or miss", addr, got, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c := s.Counters(); c.Rejects != 0 {
		t.Fatalf("concurrent put/get produced rejects: %+v", c)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("", "s"); err == nil {
		t.Fatal("Open(\"\") did not error")
	}
	// A path through a regular file cannot be a directory.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "sub"), "s"); err == nil {
		t.Fatal("Open through a file did not error")
	}
}
