package diskcache

import (
	"bytes"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/fault"
)

// TestFaultReadInjection pins the read fault point: an injected IO
// error reads as a miss with the error surfaced only through GetE, and
// the IOErrors counter moves. The envelope on disk is untouched, so
// the entry serves normally once the fault budget is spent.
func TestFaultReadInjection(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	addr, body := "cell|v1|x", []byte("payload\n")
	if err := s.Put(addr, body); err != nil {
		t.Fatalf("Put: %v", err)
	}

	plane := fault.New(7)
	plane.Arm(FaultRead, fault.Spec{Prob: 1, Limit: 2})
	s.SetFaults(plane)

	got, ok, ioErr := s.GetE(addr)
	if ok || got != nil || ioErr == nil {
		t.Fatalf("faulted GetE = (%q, %v, %v), want miss with IO error", got, ok, ioErr)
	}
	if !strings.Contains(ioErr.Error(), "fault:") {
		t.Fatalf("injected error %q does not carry the fault marker", ioErr)
	}
	// The legacy two-value Get sees the same miss, no error channel.
	if _, ok := s.Get(addr); ok {
		t.Fatal("Get served through an injected read fault")
	}
	if c := s.Counters(); c.IOErrors != 2 {
		t.Fatalf("IOErrors = %d after two faulted reads, want 2", c.IOErrors)
	}

	// The two-fire budget is spent: the untouched envelope serves.
	got, ok, ioErr = s.GetE(addr)
	if !ok || ioErr != nil || !bytes.Equal(got, body) {
		t.Fatalf("post-budget GetE = (%q, %v, %v), want the stored body", got, ok, ioErr)
	}
}

// TestFaultWriteInjection pins the write fault point: Put fails with
// the injected error, nothing lands on disk, and IOErrors moves.
func TestFaultWriteInjection(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	plane := fault.New(7)
	plane.Arm(FaultWrite, fault.Spec{Prob: 1, Err: "disk full"})
	s.SetFaults(plane)

	err := s.Put("addr", []byte("body"))
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("faulted Put err = %v, want the injected message", err)
	}
	plane.Reset()
	if _, ok := s.Get("addr"); ok {
		t.Fatal("a faulted Put left a servable entry behind")
	}
	if c := s.Counters(); c.IOErrors != 1 || c.Writes != 0 {
		t.Fatalf("counters = %+v, want 1 IO error and 0 writes", c)
	}
}

// TestFaultCorruptInjection pins the corruption fault point: a flipped
// envelope byte must fail authentication — a quarantined miss, never a
// served body and never an IO error.
func TestFaultCorruptInjection(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "secret")
	addr, body := "cell|v1|y", []byte("payload\n")
	if err := s.Put(addr, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	plane := fault.New(7)
	plane.Arm(FaultCorrupt, fault.Spec{Prob: 1, Limit: 1})
	s.SetFaults(plane)

	got, ok, ioErr := s.GetE(addr)
	if ok || ioErr != nil {
		t.Fatalf("corrupted GetE = (%q, %v, %v), want a quiet quarantined miss", got, ok, ioErr)
	}
	if c := s.Counters(); c.Rejects != 1 || c.IOErrors != 0 {
		t.Fatalf("counters = %+v, want 1 reject and 0 IO errors (corruption is tamper, not IO)", c)
	}
	// The corrupted entry was quarantined; the address recovers by
	// being rewritten, exactly like any tampered file.
	if err := s.Put(addr, body); err != nil {
		t.Fatalf("re-Put after quarantine: %v", err)
	}
	if got, ok := s.Get(addr); !ok || !bytes.Equal(got, body) {
		t.Fatal("address did not recover after quarantine + rewrite")
	}
}
