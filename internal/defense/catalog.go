package defense

import (
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/platform"
)

// The shipped mitigation catalog: the §4.1 cache-isolation mechanisms,
// the §4.2 speculation controls, and the §5 side-channel and fault
// countermeasures. Each entry is a pure config transform; the stock
// wiring of the surveyed architectures (Sanctum's LLC partitioning,
// Sanctuary's cache exclusion/coloring) lives here as StockOn metadata
// instead of a hard-coded block in the scenario environment.

func init() {
	for _, d := range catalog() {
		MustRegister(d)
	}
}

// classOf returns an architecture's platform class (ClassEmbedded for
// unknown keys never arises: AppliesTo rejects unknown keys first).
func classOf(arch string) platform.Class {
	c, _ := platform.ArchClass(arch)
	return c
}

// needsSharedCache gates the cache-isolation defenses: the embedded
// platforms have no shared cache levels, so there is nothing to
// partition, color or flush (paper §4.1: "none [of the embedded
// architectures] even considers cache side channels").
func needsSharedCache(arch string) (bool, string) {
	if classOf(arch) == platform.ClassEmbedded {
		return false, "no shared cache levels on the embedded platform: nothing to partition or flush"
	}
	return true, ""
}

// needsTLB gates TLB partitioning: the MPU-based embedded cores have no
// MMU and therefore no TLB.
func needsTLB(arch string) (bool, string) {
	if classOf(arch) == platform.ClassEmbedded {
		return false, "no MMU and no TLB on the MPU-based embedded core: nothing to partition"
	}
	return true, ""
}

// needsPredictor gates predictor flushing: the in-order embedded cores
// have no branch-predictor state to flush.
func needsPredictor(arch string) (bool, string) {
	if classOf(arch) == platform.ClassEmbedded {
		return false, "no branch predictor on the in-order embedded core: nothing to flush"
	}
	return true, ""
}

func catalog() []Defense {
	return []Defense{
		// --- §4.1 cache side-channel defenses -------------------------
		&Spec{
			ID: "way-partition", In: FamilyCacheSCA, Section: "4.1",
			Summary: "DAWG-style way partitioning of every shared cache level between victim and attacker domains " +
				"(models Sanctum's cache-isolation goal)",
			BlocksList: []string{"flush+reload", "prime+probe"},
			Stock:      []string{"sanctum"},
			Applies:    needsSharedCache,
			Apply: func(c *Config) {
				vd, ad := c.VictimDomain, c.AttackerDomain
				c.PlatformHooks = append(c.PlatformHooks, func(p *platform.Platform) {
					partitionCache(p.LLC, vd, ad)
					for _, core := range p.Cores {
						partitionCache(core.Hier.L1D, vd, ad)
						partitionCache(core.Hier.L2, vd, ad)
					}
				})
			},
		},
		&Spec{
			ID: "cache-coloring", In: FamilyCacheSCA, Section: "4.1",
			Summary: "page-coloring exclusion: the victim's table pages are confined to the private L1, " +
				"never reaching the shared levels (models Sanctuary's cache exclusion)",
			BlocksList: []string{"prime+probe"},
			Stock:      []string{"sanctuary"},
			Applies:    needsSharedCache,
			Apply: func(c *Config) {
				base, size := c.VictimTableBase, c.VictimTableSize
				c.PlatformHooks = append(c.PlatformHooks, func(p *platform.Platform) {
					p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
						if addr >= base && addr < base+size {
							return cache.LevelL1
						}
						return cache.LevelAll
					}
				})
			},
		},
		&Spec{
			ID: "flush-on-switch", In: FamilyCacheSCA, Section: "4.1",
			Summary: "random-fill/flush-on-switch family: the core's whole cache hierarchy is invalidated " +
				"on every enclave exit, denying the attacker any residual victim state",
			BlocksList: []string{"flush+reload", "prime+probe"},
			Applies:    needsSharedCache,
			Apply:      func(c *Config) { c.FlushOnSwitch = true },
		},
		&Spec{
			ID: "tlb-partition", In: FamilyCacheSCA, Section: "4.1",
			Summary: "TLB way partitioning between address spaces, the TLBleed countermeasure: " +
				"the victim's translations can no longer evict the attacker's entries",
			BlocksList: []string{"tlb-channel"},
			Applies:    needsTLB,
			Apply: func(c *Config) {
				va, aa := c.VictimASID, c.AttackerASID
				c.PlatformHooks = append(c.PlatformHooks, func(p *platform.Platform) {
					for _, core := range p.Cores {
						if core.TLB == nil {
							continue
						}
						v, a := halfWayMasks(core.TLB.Ways())
						core.TLB.SetPartition(va, v)
						core.TLB.SetPartition(aa, a)
					}
				})
			},
		},
		&Spec{
			ID: "ct-aes", In: FamilyCacheSCA, Section: "4.1",
			Summary: "constant-time AES: the S-box is computed instead of looked up, so no secret-dependent " +
				"memory access reaches the cache hierarchy",
			BlocksList: []string{"flush+reload", "prime+probe", "evict+time"},
			Apply:      func(c *Config) { c.ConstantTimeAES = true },
		},
		// --- §4.2 transient-execution defenses ------------------------
		&Spec{
			ID: "spec-barrier", In: FamilyTransient, Section: "4.2",
			Summary: "lfence-style speculation barrier after bounds checks: the bounds-check-bypass window " +
				"closes before the secret-dependent load can execute transiently",
			BlocksList: []string{"spectre-v1"},
			Apply:      func(c *Config) { c.SpecBarrier = true },
		},
		&Spec{
			ID: "btb-flush", In: FamilyTransient, Section: "4.2",
			Summary: "IBPB-style predictor flush on context switch: BTB/PHT state trained by one domain " +
				"is invalidated before another runs",
			BlocksList: []string{"spectre-btb", "branch-shadow"},
			Applies:    needsPredictor,
			Apply:      func(c *Config) { c.PredictorFlush = true },
		},
		// --- §5 physical-attack defenses ------------------------------
		&Spec{
			ID: "masked-aes", In: FamilyPhysical, Section: "5",
			Summary: "first-order boolean masking: every intermediate is carried under a fresh random mask, " +
				"decorrelating power traces from the processed secrets",
			BlocksList: []string{"dpa", "cpa"},
			Apply:      func(c *Config) { c.MaskedAES = true },
		},
		&Spec{
			ID: "crt-check", In: FamilyPhysical, Section: "5",
			Summary: "RSA-CRT fault check (Shamir/infective family): signatures are verified before release, " +
				"so a faulty half-exponentiation is never observable",
			BlocksList: []string{"bellcore"},
			Apply:      func(c *Config) { c.CRTCheck = true },
		},
		&Spec{
			ID: "clock-jitter", In: FamilyPhysical, Section: "5",
			Summary: "randomized clock (hiding): random delays misalign power traces and displace injected " +
				"faults away from the targeted round",
			BlocksList: []string{"dpa", "cpa", "clkscrew"},
			Apply: func(c *Config) {
				c.TraceJitter = 6
				c.ClockJitter = true
			},
		},
		// --- §3 attestation-lifecycle defenses ------------------------
		// These are verifier/protocol-side policies rather than
		// microarchitectural knobs, so they apply to every surveyed
		// architecture (all eight implement remote attestation) and none
		// ships them stock: the baseline protocol flow is the victim.
		&Spec{
			ID: "quote-freshness", In: FamilyAttestation, Section: "3",
			Summary: "single-use challenge nonces: the verifier records every accepted nonce and rejects " +
				"re-presentation, so a captured quote cannot be replayed into a later session",
			BlocksList: []string{"quote-replay"},
			Apply:      func(c *Config) { c.QuoteFreshness = true },
		},
		&Spec{
			ID: "measurement-lock", In: FamilyAttestation, Section: "3",
			Summary: "measure-at-quote: the quoting path re-measures the live enclave image instead of " +
				"signing the load-time ledger entry, closing the measure→use TOCTOU window",
			BlocksList: []string{"measure-toctou"},
			Apply:      func(c *Config) { c.MeasurementLock = true },
		},
		&Spec{
			ID: "tcb-refresh", In: FamilyAttestation, Section: "3",
			Summary: "verifiers pull the sweep-driven revocation state before accepting: a broken undefended " +
				"cell raises the arch's minimum TCB, so stale-TCB quotes are rejected until quotes claim the stock defense",
			BlocksList: []string{"stale-tcb"},
			Apply:      func(c *Config) { c.TCBRefresh = true },
		},
	}
}
