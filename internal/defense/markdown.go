package defense

import (
	"fmt"
	"strings"

	"github.com/intrust-sim/intrust/internal/platform"
)

// familyHeading maps a countered-family key to its handbook heading.
func familyHeading(family string) string {
	switch family {
	case FamilyCacheSCA:
		return "Against cache side channels (paper §4.1)"
	case FamilyTransient:
		return "Against transient execution (paper §4.2)"
	case FamilyPhysical:
		return "Against classical physical attacks (paper §5)"
	case FamilyAttestation:
		return "Against attestation-lifecycle attacks (paper §3)"
	}
	return "Against family `" + family + "`"
}

// ApplicableArchitectures splits the architecture axis for one defense:
// the architectures it can be configured on, and the not-applicable ones
// with their reasons.
func ApplicableArchitectures(d Defense) (applicable []string, na map[string]string) {
	na = map[string]string{}
	for _, arch := range platform.Architectures {
		if ok, reason := d.AppliesTo(arch); ok {
			applicable = append(applicable, arch)
		} else {
			na[arch] = reason
		}
	}
	return applicable, na
}

// ApplicableCell renders a defense's architecture axis as one catalog
// cell — "all N" or the comma-separated applicable list. The CLI table
// and docs/DEFENSES.md share this so their renderings cannot diverge.
func ApplicableCell(d Defense) string {
	applicable, na := ApplicableArchitectures(d)
	if len(na) == 0 {
		return fmt.Sprintf("all %d", len(platform.Architectures))
	}
	return strings.Join(applicable, ", ")
}

// joinOrDash renders a string list for a table cell, with "—" for empty.
func joinOrDash(vs []string) string {
	if len(vs) == 0 {
		return "—"
	}
	return strings.Join(vs, ", ")
}

// CatalogMarkdown renders the registry as the docs/DEFENSES.md handbook:
// one table per countered family with name, paper section, summary, the
// attack scenarios the defense blocks, the architectures that ship it
// stock, and the architectures it can be configured on. Regenerate with
// `go generate ./...`.
func CatalogMarkdown(r *Registry) string {
	var b strings.Builder
	b.WriteString(`# DEFENSES — the mitigation catalog, as a handbook

<!-- Generated from the defense registry by 'go generate ./...'
     (cmd/intrust defenses -markdown -o docs/DEFENSES.md). Do not edit by hand. -->

Every mitigation the paper surveys is a registered ` + "`Defense`" + ` in
` + "`internal/defense`" + ` — a pure configuration transform the sweep can
toggle per cell. The ` + "`-defense`" + ` axis of ` + "`intrust sweep`" + ` accepts
these names (case-insensitively), plus three axis tokens:

- ` + "`none`" + ` — strip all defenses, including an architecture's stock wiring;
- ` + "`stock`" + ` — each architecture's paper wiring, resolved from the
  registry's stock-on metadata (never hard-coded);
- ` + "`all`" + ` — every cataloged defense, one grid layer each.

Names can be combined with ` + "`+`" + ` (e.g. ` + "`ct-aes+clock-jitter`" + `) to
measure layered mitigations as one grid cell.

`)
	fmt.Fprintf(&b, "%d defenses over %d architectures; `Blocks` below is the designed coverage, verified cell by cell by the sweep's broken/mitigated verdicts.\n",
		r.Len(), len(platform.Architectures))
	for _, family := range r.Families() {
		b.WriteString("\n## " + familyHeading(family) + "\n\n")
		b.WriteString("| Defense | Paper § | What it configures | Blocks | Stock on | Applicable architectures |\n")
		b.WriteString("|---|---|---|---|---|---|\n")
		var notes []string
		for _, d := range r.ByFamily(family) {
			section, summary := DescriptionOf(d)
			if section == "" {
				section = "—"
			}
			// One representative n/a reason per defense keeps the table
			// readable; the sweep reports the reason per cell.
			if _, na := ApplicableArchitectures(d); len(na) > 0 {
				for _, arch := range platform.Architectures {
					if reason, ok := na[arch]; ok {
						notes = append(notes, fmt.Sprintf("`%s` n/a elsewhere: %s", d.Name(), reason))
						break
					}
				}
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s |\n",
				d.Name(), section, summary, joinOrDash(BlocksOf(d)), joinOrDash(StockOnOf(d)), ApplicableCell(d))
		}
		for _, n := range notes {
			b.WriteString("\n> " + n + "\n")
		}
	}
	b.WriteString(`
## Reading the efficacy grid

` + "```console" + `
$ go run ./cmd/intrust defenses                     # this handbook, as a table
$ go run ./cmd/intrust sweep -defense none,stock    # undefended baseline vs paper wiring
$ go run ./cmd/intrust sweep -attack flush+reload -arch sgx -defense none,way-partition
$ go run ./cmd/intrust sweep -defense all -diff     # which cells each defense flips vs none
` + "```" + `

Each sweep cell is graded broken (the attack still recovers the secret),
mitigated (it no longer does) or n/a with the paper's reason (the attack
or the defense has no substrate on that architecture). ` + "`-diff`" + ` compares
every defended cell against the ` + "`none`" + ` baseline and reports the flips —
the measured version of the paper's gains-and-pains argument: every
mitigation buys some cells and leaves others broken.
`)
	return b.String()
}
