package defense

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func testSpec(name, family string) *Spec {
	return &Spec{ID: name, In: family, Section: "4.1", Summary: "test"}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil defense accepted")
	}
	if err := r.Register(testSpec("", FamilyCacheSCA)); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(testSpec("x", "")); err == nil {
		t.Error("empty family accepted")
	}
	for _, reserved := range []string{"none", "stock", "all", "None", "ALL"} {
		if err := r.Register(testSpec(reserved, FamilyCacheSCA)); err == nil {
			t.Errorf("reserved axis token %q accepted as a defense name", reserved)
		}
	}
	// Axis separators make a name unselectable ('+' splits combinations,
	// ',' splits the flag list) or corrupt experiment-name parsing ('/').
	for _, sep := range []string{"ct+mask", "a,b", "a/b"} {
		if err := r.Register(testSpec(sep, FamilyCacheSCA)); err == nil {
			t.Errorf("name %q containing an axis separator accepted", sep)
		}
	}
	if err := r.Register(testSpec("dup", FamilyCacheSCA)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testSpec("dup", FamilyCacheSCA)); err == nil {
		t.Error("duplicate name accepted")
	}
	// Case-insensitive uniqueness: the CLI resolves the axis
	// case-insensitively, so "DUP" would be ambiguous.
	if err := r.Register(testSpec("DUP", FamilyCacheSCA)); err == nil {
		t.Error("case-variant duplicate accepted")
	}
}

func TestRegistryLookupCaseInsensitive(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testSpec("Way-Partition", FamilyCacheSCA))
	for _, q := range []string{"way-partition", "WAY-PARTITION", "Way-Partition"} {
		if _, ok := r.Lookup(q); !ok {
			t.Errorf("Lookup(%q) missed", q)
		}
	}
}

// TestRegistryDeterministicOrder pins the enumeration contract: family in
// FamilyOrder ranking, then name — independent of registration order.
func TestRegistryDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register in scrambled order.
	for _, d := range []*Spec{
		testSpec("z-phys", FamilyPhysical),
		testSpec("b-cache", FamilyCacheSCA),
		testSpec("a-trans", FamilyTransient),
		testSpec("a-cache", FamilyCacheSCA),
		testSpec("a-phys", FamilyPhysical),
	} {
		r.MustRegister(d)
	}
	want := []string{"a-cache", "b-cache", "a-trans", "a-phys", "z-phys"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	if got := r.Families(); !reflect.DeepEqual(got, []string{FamilyCacheSCA, FamilyTransient, FamilyPhysical}) {
		t.Errorf("Families() = %v", got)
	}
	if got := len(r.ByFamily("cachesca")); got != 2 {
		t.Errorf("ByFamily(cachesca) = %d entries, want 2", got)
	}
}

// TestRegistryConcurrentAccess exercises the registry under the race
// detector: concurrent registrations and reads must be safe (sweep jobs
// resolve defenses while downstream users may still be registering).
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.MustRegister(testSpec(fmt.Sprintf("d%02d", i), FamilyOrder[i%3]))
			r.Lookup("d00")
			r.All()
			r.StockFor("sanctum")
			r.Len()
		}(i)
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Errorf("registry holds %d defenses, want 16", r.Len())
	}
	names := r.Names()
	if !sort.StringsAreSorted(namesWithinFamily(r)) {
		t.Errorf("enumeration not deterministic: %v", names)
	}
}

func namesWithinFamily(r *Registry) []string {
	var out []string
	for _, d := range r.ByFamily(FamilyCacheSCA) {
		out = append(out, d.Name())
	}
	return out
}

func TestStockForDerivesFromMetadata(t *testing.T) {
	r := NewRegistry()
	wp := testSpec("wp", FamilyCacheSCA)
	wp.Stock = []string{"sanctum"}
	cc := testSpec("cc", FamilyCacheSCA)
	cc.Stock = []string{"sanctuary"}
	r.MustRegister(wp)
	r.MustRegister(cc)
	r.MustRegister(testSpec("free", FamilyPhysical))
	if got := r.StockFor("sanctum"); len(got) != 1 || got[0].Name() != "wp" {
		t.Errorf("StockFor(sanctum) = %v", got)
	}
	if got := r.StockFor("sgx"); len(got) != 0 {
		t.Errorf("StockFor(sgx) = %v, want none", got)
	}
}
