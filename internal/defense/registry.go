package defense

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a concurrency-safe catalog of defenses keyed by name,
// mirroring the scenario registry: lookups are case-insensitive and
// enumeration order is deterministic (family in FamilyOrder ranking,
// then name) regardless of registration order, so registry-driven sweeps
// keep the engine's reproducibility guarantees.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Defense // key: lower-cased name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Defense{}}
}

// Register adds a defense. Names must be non-empty and unique (including
// case-insensitively — the CLI resolves the -defense axis
// case-insensitively, so two names differing only in case would be
// ambiguous), and the family must be non-empty. The reserved axis tokens
// "none", "stock" and "all" are rejected as names.
func (r *Registry) Register(d Defense) error {
	if d == nil {
		return fmt.Errorf("defense: register nil defense")
	}
	name := d.Name()
	if name == "" {
		return fmt.Errorf("defense: register with empty name")
	}
	switch strings.ToLower(name) {
	case "none", "stock", "all":
		return fmt.Errorf("defense: name %q is a reserved axis token", name)
	}
	// The sweep's -defense axis splits selections on ',' and combinations
	// on '+', and the defense label becomes a '/'-separated experiment
	// name segment — a name containing any of those would be unselectable
	// or would corrupt cell-name parsing, so reject it at registration.
	if strings.ContainsAny(name, "+,/") {
		return fmt.Errorf("defense: name %q contains an axis separator (one of \"+,/\")", name)
	}
	if d.Family() == "" {
		return fmt.Errorf("defense: register %q with empty family", name)
	}
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, dup := r.byName[key]; dup {
		return fmt.Errorf("defense: name %q already registered (as %q)", name, prev.Name())
	}
	r.byName[key] = d
	return nil
}

// MustRegister is Register panicking on error — for init-time catalog
// registration, where a duplicate is a programming error.
func (r *Registry) MustRegister(d Defense) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup finds a defense by name, case-insensitively.
func (r *Registry) Lookup(name string) (Defense, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[strings.ToLower(name)]
	return d, ok
}

// All returns every registered defense in deterministic order: families
// in FamilyOrder ranking (unknown families after, alphabetically), names
// alphabetically within a family.
func (r *Registry) All() []Defense {
	r.mu.RLock()
	out := make([]Defense, 0, len(r.byName))
	for _, d := range r.byName {
		out = append(out, d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Family(), out[j].Family()
		if fi != fj {
			ri, rj := familyRank(fi), familyRank(fj)
			if ri != rj {
				return ri < rj
			}
			return fi < fj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// ByFamily returns the registered defenses countering one family
// (matched case-insensitively), in All's deterministic order.
func (r *Registry) ByFamily(family string) []Defense {
	var out []Defense
	for _, d := range r.All() {
		if strings.EqualFold(d.Family(), family) {
			out = append(out, d)
		}
	}
	return out
}

// Families returns the distinct countered families with at least one
// registered defense, in FamilyOrder ranking.
func (r *Registry) Families() []string {
	var out []string
	seen := map[string]bool{}
	for _, d := range r.All() {
		if !seen[d.Family()] {
			seen[d.Family()] = true
			out = append(out, d.Family())
		}
	}
	return out
}

// Names returns every registered defense name in All's order.
func (r *Registry) Names() []string {
	all := r.All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name()
	}
	return out
}

// Len reports the number of registered defenses.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// StockFor returns the defenses that ship by default on the given
// architecture — the paper's §4.1 wiring, derived from the catalog's
// StockOn metadata so labels can never drift from the actual
// configuration — in All's deterministic order.
func (r *Registry) StockFor(arch string) []Defense {
	var out []Defense
	for _, d := range r.All() {
		for _, a := range StockOnOf(d) {
			if strings.EqualFold(a, arch) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func familyRank(f string) int {
	for i, known := range FamilyOrder {
		if known == f {
			return i
		}
	}
	return len(FamilyOrder)
}

// Default is the process-wide registry the catalog self-registers into
// and the sweep's -defense axis resolves against.
var Default = NewRegistry()

// Register adds a defense to the default registry.
func Register(d Defense) error { return Default.Register(d) }

// MustRegister adds a defense to the default registry, panicking on
// error.
func MustRegister(d Defense) { Default.MustRegister(d) }

// Lookup finds a defense in the default registry, case-insensitively.
func Lookup(name string) (Defense, bool) { return Default.Lookup(name) }

// All enumerates the default registry in deterministic order.
func All() []Defense { return Default.All() }

// ByFamily enumerates the default registry's defenses for one countered
// family.
func ByFamily(family string) []Defense { return Default.ByFamily(family) }

// Families lists the default registry's populated countered families.
func Families() []string { return Default.Families() }

// StockFor lists the default registry's stock defenses for an
// architecture.
func StockFor(arch string) []Defense { return Default.StockFor(arch) }

// StockNames returns the stock defense names for an architecture, or
// ["none"]-equivalent empty slice when it ships none — the label source
// for sweep cells and detail lines.
func StockNames(arch string) []string {
	ds := StockFor(arch)
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name()
	}
	return out
}
