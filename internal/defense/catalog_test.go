package defense

import (
	"reflect"
	"testing"

	"github.com/intrust-sim/intrust/internal/platform"
)

// catalogNames is the contract of the shipped mitigation catalog: these
// names are stable public API (CLI -defense selectors, sweep cell labels,
// docs/DEFENSES.md anchors) — renaming one is a breaking change and
// re-rolls its cells' RNG seeds.
var catalogNames = []string{
	// against cachesca (§4.1)
	"cache-coloring", "ct-aes", "flush-on-switch", "tlb-partition", "way-partition",
	// against transient (§4.2)
	"btb-flush", "spec-barrier",
	// against physical (§5)
	"clock-jitter", "crt-check", "masked-aes",
	// against attestation (§3)
	"measurement-lock", "quote-freshness", "tcb-refresh",
}

func TestCatalogNamesStable(t *testing.T) {
	if got := Default.Names(); !reflect.DeepEqual(got, catalogNames) {
		t.Errorf("catalog names = %v, want %v", got, catalogNames)
	}
}

func TestCatalogMetadataComplete(t *testing.T) {
	for _, d := range All() {
		section, summary := DescriptionOf(d)
		if section == "" || summary == "" {
			t.Errorf("%s: missing catalog metadata (section=%q summary=%q)", d.Name(), section, summary)
		}
		if len(BlocksOf(d)) == 0 {
			t.Errorf("%s: declares no blocked scenarios — a defense that stops nothing is not a defense", d.Name())
		}
		if rank := familyRank(d.Family()); rank >= len(FamilyOrder) {
			t.Errorf("%s: unknown family %q", d.Name(), d.Family())
		}
		for _, arch := range StockOnOf(d) {
			if _, ok := platform.ArchClass(arch); !ok {
				t.Errorf("%s: stock-on unknown architecture %q", d.Name(), arch)
			}
		}
	}
}

// TestApplicabilityMatchesPaper pins each defense's architecture axis to
// the paper's platform taxonomy: the cache/TLB/predictor mechanisms need
// shared microarchitectural state (absent on the embedded platforms),
// while the software countermeasures (constant-time, masking, CRT checks,
// clock jitter) and the trivially-satisfiable speculation barrier apply
// everywhere.
func TestApplicabilityMatchesPaper(t *testing.T) {
	embedded := []string{"smart", "sancus", "trustlite", "tytan"}
	highEnd := []string{"sgx", "sanctum", "trustzone", "sanctuary"}
	applicableSet := func(name string) map[string]bool {
		t.Helper()
		d, ok := Lookup(name)
		if !ok {
			t.Fatalf("defense %s not registered", name)
		}
		out := map[string]bool{}
		for _, arch := range platform.Architectures {
			ok, reason := d.AppliesTo(arch)
			if !ok && reason == "" {
				t.Errorf("%s/%s: not applicable but no reason given", name, arch)
			}
			out[arch] = ok
		}
		return out
	}
	for _, name := range []string{"way-partition", "cache-coloring", "flush-on-switch", "tlb-partition", "btb-flush"} {
		set := applicableSet(name)
		for _, arch := range highEnd {
			if !set[arch] {
				t.Errorf("%s not applicable on %s", name, arch)
			}
		}
		for _, arch := range embedded {
			if set[arch] {
				t.Errorf("%s applicable on embedded %s (no substrate)", name, arch)
			}
		}
	}
	for _, name := range []string{"ct-aes", "masked-aes", "spec-barrier", "crt-check", "clock-jitter"} {
		for arch, ok := range applicableSet(name) {
			if !ok {
				t.Errorf("%s not applicable on %s", name, arch)
			}
		}
	}
	// Unknown architectures are never applicable.
	for _, d := range All() {
		if ok, _ := d.AppliesTo("enigma"); ok {
			t.Errorf("%s applicable on unknown architecture", d.Name())
		}
	}
}

// TestStockWiringMatchesPaper pins the §4.1 stock matrix: Sanctum ships
// LLC way-partitioning, Sanctuary ships cache exclusion/coloring, and no
// other surveyed architecture ships a cataloged cache defense.
func TestStockWiringMatchesPaper(t *testing.T) {
	want := map[string][]string{
		"sanctum": {"way-partition"}, "sanctuary": {"cache-coloring"},
		"sgx": nil, "trustzone": nil, "smart": nil, "sancus": nil, "trustlite": nil, "tytan": nil,
	}
	for arch, names := range want {
		got := StockNames(arch)
		if len(got) == 0 && len(names) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, names) {
			t.Errorf("StockNames(%s) = %v, want %v", arch, got, names)
		}
	}
}

// TestConfigureIsPureConfigTransform checks a Configure call edits only
// the Config handed to it: two configs configured independently end up
// equivalent, and the zero config stays undefended.
func TestConfigureIsPureConfigTransform(t *testing.T) {
	d, _ := Lookup("ct-aes")
	c1, err := NewConfig("sgx", 5, 9, 1, 2, 0x40000, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := NewConfig("sgx", 5, 9, 1, 2, 0x40000, 0x2000)
	d.Configure(c1)
	if !c1.ConstantTimeAES {
		t.Errorf("ct-aes did not set the constant-time knob: %+v", c1)
	}
	// The two AES knobs are independent: layering masked-aes on top must
	// not revert the cache victim to the leaky T-table implementation.
	if m, ok := Lookup("masked-aes"); ok {
		m.Configure(c1)
	} else {
		t.Fatal("masked-aes not registered")
	}
	if !c1.ConstantTimeAES || !c1.MaskedAES {
		t.Errorf("ct-aes+masked-aes did not compose: %+v", c1)
	}
	if c2.ConstantTimeAES || c2.MaskedAES || c2.FlushOnSwitch || c2.SpecBarrier || c2.CRTCheck {
		t.Errorf("untouched config mutated: %+v", c2)
	}
	if _, err := NewConfig("enigma", 5, 9, 1, 2, 0, 0); err == nil {
		t.Error("unknown architecture accepted by NewConfig")
	}
}
