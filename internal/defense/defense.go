// Package defense is the mitigation axis of the simulator: every
// hardware or software countermeasure the paper surveys — the cache
// isolation mechanisms of Section 4.1, the speculation controls of
// Section 4.2 and the side-channel/fault countermeasures of Section 5 —
// is a first-class, enumerable Defense registered in a process-wide
// catalog, exactly mirroring the attack-scenario registry in
// internal/scenario.
//
// A Defense is a pure configuration transform: Configure edits a Config —
// platform assembly hooks plus victim-construction knobs — and the
// scenario environment (scenario.Env) applies the resulting Config when
// it builds platforms and victims. Nothing about an architecture's
// defense wiring is hard-coded anymore: the per-architecture stock
// defenses of Env.NewPlatform became catalog entries with StockOn
// metadata, so the sweep can run any architecture with its stock
// defenses, with none, or with any mitigation the paper discusses —
// the scenario × architecture × defense efficacy grid.
//
// The package sits below internal/scenario (which consumes it) and above
// internal/platform / internal/cache (whose knobs it turns); it never
// imports the scenario or engine layers.
package defense

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/platform"
)

// Family names a defense counters, in the paper's section order. They
// deliberately equal the scenario family keys so the efficacy grid pairs
// each mitigation with the attack family it targets.
const (
	// FamilyCacheSCA marks defenses against the §4.1 cache side channels.
	FamilyCacheSCA = "cachesca"
	// FamilyTransient marks defenses against the §4.2 transient-execution
	// attacks.
	FamilyTransient = "transient"
	// FamilyPhysical marks defenses against the §5 classical physical
	// attacks.
	FamilyPhysical = "physical"
	// FamilyAttestation marks defenses against attacks on the §3 remote
	// attestation protocol flow (quote replay, measure/use TOCTOU,
	// stale-TCB acceptance).
	FamilyAttestation = "attestation"
)

// FamilyOrder ranks the countered families in the paper's section order
// (§4.1, §4.2, §5, then the §3 attestation lifecycle, which the survey
// introduces first but this codebase grew last). The deterministic
// ordering used by Registry.All.
var FamilyOrder = []string{FamilyCacheSCA, FamilyTransient, FamilyPhysical, FamilyAttestation}

// Config is the wiring a Defense transforms: everything the scenario
// environment consults when it assembles a platform and constructs
// victims. The geometry fields are inputs filled by the environment
// before any Configure call; the knob fields start at their undefended
// zero values and are turned on by defenses.
type Config struct {
	// Arch is the target architecture key (input).
	Arch string
	// Class is the architecture's platform class (input).
	Class platform.Class

	// VictimDomain and AttackerDomain are the cache security domains of
	// the shared victim geometry (input).
	VictimDomain, AttackerDomain int
	// VictimASID and AttackerASID are the TLB address-space IDs of the
	// TLB-channel geometry (input).
	VictimASID, AttackerASID int
	// VictimTableBase/VictimTableSize bound the victim's T-table range
	// (input).
	VictimTableBase, VictimTableSize uint32

	// PlatformHooks run, in order, on every freshly assembled platform —
	// the seam the cache-isolation defenses (§4.1) configure through.
	PlatformHooks []func(p *platform.Platform)

	// ConstantTimeAES builds cache-observed AES victims from the
	// constant-time implementation (§4.1): no secret-indexed table
	// lookups reach the hierarchy.
	ConstantTimeAES bool
	// MaskedAES builds power-traced AES victims from the first-order
	// masked implementation (§5). Independent of ConstantTimeAES — the
	// two knobs protect different observation channels and a layered
	// implementation can be both.
	MaskedAES bool
	// FlushOnSwitch flushes the core's cache hierarchy on every enclave
	// exit (§4.1 random-fill/flush-on-switch family).
	FlushOnSwitch bool
	// SpecBarrier inserts an lfence-style barrier after bounds checks
	// (§4.2, the Spectre-PHT software mitigation).
	SpecBarrier bool
	// PredictorFlush flushes branch-predictor state (BTB/PHT/RSB) on
	// context switches (§4.2, IBPB-style).
	PredictorFlush bool
	// CRTCheck verifies RSA-CRT signatures before release (§5, the
	// Shamir/infective fault-check family).
	CRTCheck bool
	// TraceJitter inserts up to this many random dummy operations per
	// leaked value in power traces (§5 hiding).
	TraceJitter int
	// ClockJitter randomizes the secure world's clock so injected faults
	// miss the targeted round (§5 fault countermeasure; also raises DPA
	// alignment cost).
	ClockJitter bool
	// QuoteFreshness makes attestation verifiers track challenge nonces
	// and accept each exactly once (§3 protocol hygiene): a captured
	// quote replayed into a later session no longer verifies.
	QuoteFreshness bool
	// MeasurementLock makes the quoting path re-measure the live enclave
	// image instead of signing the ledger entry recorded at load time,
	// closing the measure→quote TOCTOU window.
	MeasurementLock bool
	// TCBRefresh makes verifiers pull the sweep-driven revocation state
	// and enforce the per-architecture minimum TCB version, rejecting
	// stale-TCB quotes.
	TCBRefresh bool
}

// NewConfig returns the undefended wiring for one architecture with the
// given victim geometry. It errors on unknown architectures.
func NewConfig(arch string, victimDomain, attackerDomain int, victimASID, attackerASID int, tableBase, tableSize uint32) (*Config, error) {
	class, ok := platform.ArchClass(arch)
	if !ok {
		return nil, fmt.Errorf("defense: unknown architecture %q", arch)
	}
	return &Config{
		Arch: arch, Class: class,
		VictimDomain: victimDomain, AttackerDomain: attackerDomain,
		VictimASID: victimASID, AttackerASID: attackerASID,
		VictimTableBase: tableBase, VictimTableSize: tableSize,
	}, nil
}

// Apply runs every registered platform hook on a freshly assembled
// platform, in Configure order.
func (c *Config) Apply(p *platform.Platform) {
	for _, h := range c.PlatformHooks {
		h(p)
	}
}

// Defense is one mitigation as an enumerable unit. Implementations must
// be pure config transforms: Configure edits the Config and touches no
// other state, so the same Defense value is safe to use from concurrent
// sweep jobs.
type Defense interface {
	// Name uniquely identifies the defense in the registry
	// (e.g. "way-partition", "ct-aes").
	Name() string
	// Family is the attack family the defense primarily counters (one of
	// FamilyCacheSCA, FamilyTransient, FamilyPhysical).
	Family() string
	// AppliesTo reports whether the defense is meaningful on the given
	// architecture; when it is not, reason states why in the paper's
	// terms (e.g. "no shared LLC to partition on the embedded platform").
	AppliesTo(arch string) (ok bool, reason string)
	// Configure applies the defense to the wiring.
	Configure(c *Config)
}

// Describer is an optional Defense extension providing catalog metadata
// for `intrust defenses` and the generated docs/DEFENSES.md.
type Describer interface {
	// Describe returns the paper section the defense comes from
	// (e.g. "4.1") and a one-line summary of what it configures.
	Describe() (section, summary string)
}

// Blocker is an optional Defense extension declaring which attack
// scenarios the mitigation is designed to stop — the paper's
// defense-efficacy matrix, pinned by tests against measured sweep cells.
type Blocker interface {
	// Blocks returns the scenario names the defense stops.
	Blocks() []string
}

// Stocker is an optional Defense extension declaring the architectures
// that ship the mitigation by default (the paper's §4.1 wiring: LLC
// partitioning on Sanctum, cache exclusion/coloring on Sanctuary).
type Stocker interface {
	// StockOn returns the architecture keys with the defense stock-on.
	StockOn() []string
}

// Spec is the standard Defense implementation: a declarative record
// wrapping a config transform. All catalog defenses are Specs, and
// downstream users can register their own.
type Spec struct {
	// ID is the unique defense name.
	ID string
	// In is the attack family the defense primarily counters.
	In string
	// Section is the paper section the defense comes from (e.g. "4.1").
	Section string
	// Summary is a one-line description for the catalog listing.
	Summary string
	// BlocksList names the scenarios the defense is designed to stop.
	BlocksList []string
	// Stock lists the architectures that ship the defense by default.
	Stock []string
	// Applies decides per-architecture applicability; nil means the
	// defense applies to every known architecture.
	Applies func(arch string) (bool, string)
	// Apply performs the config transform.
	Apply func(c *Config)
}

// Name implements Defense.
func (s *Spec) Name() string { return s.ID }

// Family implements Defense.
func (s *Spec) Family() string { return s.In }

// AppliesTo implements Defense. Unknown architectures are never
// applicable.
func (s *Spec) AppliesTo(arch string) (bool, string) {
	if _, ok := platform.ArchClass(arch); !ok {
		return false, fmt.Sprintf("unknown architecture %q", arch)
	}
	if s.Applies == nil {
		return true, ""
	}
	return s.Applies(arch)
}

// Configure implements Defense.
func (s *Spec) Configure(c *Config) {
	if s.Apply != nil {
		s.Apply(c)
	}
}

// Describe implements Describer.
func (s *Spec) Describe() (string, string) { return s.Section, s.Summary }

// Blocks implements Blocker.
func (s *Spec) Blocks() []string { return s.BlocksList }

// StockOn implements Stocker.
func (s *Spec) StockOn() []string { return s.Stock }

// DescriptionOf returns a defense's paper section and summary, or empty
// strings when it provides none.
func DescriptionOf(d Defense) (section, summary string) {
	if dd, ok := d.(Describer); ok {
		return dd.Describe()
	}
	return "", ""
}

// BlocksOf returns the scenario names a defense declares it stops, or
// nil when it declares none.
func BlocksOf(d Defense) []string {
	if b, ok := d.(Blocker); ok {
		return b.Blocks()
	}
	return nil
}

// StockOnOf returns the architectures a defense declares itself stock-on,
// or nil when it declares none.
func StockOnOf(d Defense) []string {
	if s, ok := d.(Stocker); ok {
		return s.StockOn()
	}
	return nil
}

// halfWayMasks splits a cache's ways between the victim (lower half) and
// the attacker (upper half) — the DAWG-style protection-domain split the
// way-partitioning defenses install. A direct-mapped structure cannot be
// way-partitioned: with ways < 2 the victim mask would be 0, which the
// SetPartition APIs interpret as "clear the partition", silently leaving
// the channel open — so that is a configuration bug worth a panic, not a
// no-op.
func halfWayMasks(ways int) (victim, attacker uint64) {
	if ways < 2 {
		panic(fmt.Sprintf("defense: cannot way-partition a %d-way (direct-mapped) structure", ways))
	}
	victim = (uint64(1) << uint(ways/2)) - 1
	attacker = ((uint64(1) << uint(ways)) - 1) &^ victim
	return victim, attacker
}

// partitionCache installs the victim/attacker way split on one cache
// level (nil-safe for platforms without that level).
func partitionCache(c *cache.Cache, victimDomain, attackerDomain int) {
	if c == nil {
		return
	}
	v, a := halfWayMasks(c.Config().Ways)
	c.SetPartition(victimDomain, v)
	c.SetPartition(attackerDomain, a)
}
