// Package trustlite implements TrustLite (Koeberl et al., EuroSys'14) from
// Section 3.3: a fully-fledged TEE for tiny embedded devices built on an
// execution-aware MPU. The boot sequence reproduced here follows the
// paper: first the Secure Loader (from ROM) loads the Trustlets into
// memory and configures the EA-MPU so each Trustlet's data is accessible
// only from its own code; second, the EA-MPU configuration is locked —
// protection regions are static from then on, removing SMART's need for
// cleanup; finally the untrusted OS starts.
//
// Side channels and DMA remain outside the attacker model, as published.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package trustlite

import (
	"crypto/rand"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

// TrustLite is one TrustLite-enabled device.
type TrustLite struct {
	plat *platform.Platform
	mpu  *cpu.MPU

	platformKey []byte

	trustlets map[int]*Trustlet
	nextID    int

	arenaNext uint32
	arenaEnd  uint32

	booted bool
}

// Trustlet is one isolated applet.
type Trustlet struct {
	tl   *TrustLite
	id   int
	name string
	meas attest.Measurement

	codeBase, codeSize uint32
	dataBase, dataSize uint32
	entry              uint32
}

// New prepares the Secure Loader state on an embedded platform.
func New(p *platform.Platform) (*TrustLite, error) {
	if p.Core(0).MPU == nil {
		return nil, fmt.Errorf("trustlite: platform core has no MPU")
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return &TrustLite{
		plat: p, mpu: p.Core(0).MPU,
		platformKey: key,
		trustlets:   map[int]*Trustlet{},
		nextID:      1,
		arenaNext:   0x10000,
		arenaEnd:    0x40000,
	}, nil
}

// Name implements tee.Architecture.
func (t *TrustLite) Name() string { return "TrustLite (model)" }

// Class implements tee.Architecture.
func (t *TrustLite) Class() platform.Class { return platform.ClassEmbedded }

// Platform implements tee.Architecture.
func (t *TrustLite) Platform() *platform.Platform { return t.plat }

// Capabilities implements tee.Architecture.
func (t *TrustLite) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  true,
		MemoryEncryption:  false,
		DMAProtection:     false, // "side-channel and DMA attacks are not part of the attacker model"
		CacheDefense:      tee.DefenseNotApplicable,
		RemoteAttestation: true,
		SealedStorage:     false, // TyTAN adds secure storage
		RealTime:          false, // TyTAN adds the real-time guarantees
		SecurePeripherals: false,
		CodeIsolation:     true,
	}
}

// CreateEnclave implements tee.Architecture: loading a trustlet. It fails
// after Boot() locked the MPU — TrustLite protection is static.
func (t *TrustLite) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	return t.LoadTrustlet(cfg)
}

// LoadTrustlet is the Secure Loader step for one trustlet: copy the image,
// measure it, and add the execution-aware MPU regions.
func (t *TrustLite) LoadTrustlet(cfg tee.EnclaveConfig) (*Trustlet, error) {
	if t.booted {
		return nil, fmt.Errorf("trustlite: EA-MPU locked after boot; trustlets are static")
	}
	if cfg.Program == nil || len(cfg.Program.Segments) != 1 {
		return nil, fmt.Errorf("trustlite: trustlet needs a single-segment program")
	}
	img := cfg.Program.Segments[0].Data
	codeSize := (uint32(len(img)) + 63) &^ 63
	dataSize := cfg.DataSize
	if dataSize == 0 {
		dataSize = 256
	}
	if t.arenaNext+codeSize+dataSize > t.arenaEnd {
		return nil, fmt.Errorf("trustlite: arena exhausted")
	}
	id := t.nextID
	t.nextID++
	tr := &Trustlet{
		tl: t, id: id, name: cfg.Name,
		meas:     attest.Measure(img).Extend([]byte(cfg.Name)),
		codeBase: t.arenaNext, codeSize: codeSize,
		dataBase: t.arenaNext + codeSize, dataSize: dataSize,
		entry: t.arenaNext + (cfg.Program.Entry - cfg.Program.Segments[0].Base),
	}
	t.arenaNext += codeSize + dataSize
	if err := t.plat.Mem.WriteRaw(tr.codeBase, img); err != nil {
		return nil, err
	}
	// EA-MPU entries: code is executable and readable by all (public);
	// data is bound to the code region.
	if err := t.mpu.AddRegion(cpu.MPURegion{
		Name: cfg.Name + "-code", Base: tr.codeBase, Size: tr.codeSize, R: true, X: true,
	}); err != nil {
		return nil, err
	}
	if err := t.mpu.AddRegion(cpu.MPURegion{
		Name: cfg.Name + "-data", Base: tr.dataBase, Size: tr.dataSize, R: true, W: true,
		CodeBase: tr.codeBase, CodeSize: tr.codeSize,
	}); err != nil {
		return nil, err
	}
	t.trustlets[id] = tr
	return tr, nil
}

// Boot locks the EA-MPU and hands control to the (untrusted) OS — the
// final Secure Loader step. After Boot, protection is immutable.
func (t *TrustLite) Boot() {
	t.mpu.Lock()
	t.booted = true
}

// Booted reports whether the loader sealed the configuration.
func (t *TrustLite) Booted() bool { return t.booted }

// PlatformKey exposes the attestation key for local verifiers.
func (t *TrustLite) PlatformKey() []byte { return t.platformKey }

// ID implements tee.Enclave.
func (tr *Trustlet) ID() int { return tr.id }

// Name implements tee.Enclave.
func (tr *Trustlet) Name() string { return tr.name }

// Measurement implements tee.Enclave.
func (tr *Trustlet) Measurement() attest.Measurement { return tr.meas }

// Base implements tee.Enclave.
func (tr *Trustlet) Base() uint32 { return tr.dataBase }

// Size implements tee.Enclave.
func (tr *Trustlet) Size() uint32 { return tr.dataSize }

// CodeBase returns the trustlet code region.
func (tr *Trustlet) CodeBase() uint32 { return tr.codeBase }

// DataBase returns the trustlet data region.
func (tr *Trustlet) DataBase() uint32 { return tr.dataBase }

// Call invokes the trustlet entry point at supervisor privilege (the MPU
// governs everything below machine mode).
func (tr *Trustlet) Call(args ...uint32) ([2]uint32, error) {
	c := tr.tl.plat.Core(0)
	saved := *c
	c.Reset(tr.entry)
	c.Priv = isa.PrivSuper
	for i, a := range args {
		if i >= 4 {
			break
		}
		c.Regs[isa.RegA0+uint8(i)] = a
	}
	res, err := c.Run(1_000_000)
	ret := [2]uint32{c.Regs[isa.RegA0], c.Regs[isa.RegA1]}
	cycles, instret := c.Cycles, c.Instret
	*c = saved
	c.Cycles, c.Instret = cycles, instret
	if err != nil {
		return ret, fmt.Errorf("trustlite: trustlet %d faulted: %w", tr.id, err)
	}
	if res.Reason != cpu.StopHalt {
		return ret, fmt.Errorf("trustlite: trustlet %d did not halt: %v", tr.id, res.Reason)
	}
	return ret, nil
}

// WriteData provisions trustlet data (loader path, pre-boot).
func (tr *Trustlet) WriteData(off uint32, buf []byte) error {
	return tr.tl.plat.Mem.WriteRaw(tr.dataBase+off, buf)
}

// Attest produces a loader-keyed report over the trustlet measurement.
func (tr *Trustlet) Attest(nonce []byte) (*attest.Report, error) {
	return attest.NewReport(tr.tl.platformKey, tr.meas, nonce, nil), nil
}

// Seal implements tee.Enclave: plain TrustLite has no secure storage.
func (tr *Trustlet) Seal(data []byte) ([]byte, error) {
	return nil, tee.ErrUnsupported
}

// Unseal implements tee.Enclave.
func (tr *Trustlet) Unseal(blob []byte) ([]byte, error) {
	return nil, tee.ErrUnsupported
}

// Destroy implements tee.Enclave: static regions cannot be unloaded after
// boot (and unloading before boot is not part of the model).
func (tr *Trustlet) Destroy() error { return tee.ErrUnsupported }
