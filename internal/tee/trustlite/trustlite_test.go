package trustlite

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newTrustLite(t *testing.T) (*TrustLite, *platform.Platform) {
	t.Helper()
	p := platform.NewEmbedded()
	tl, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return tl, p
}

const trustletProg = `
        .org 0
entry:  lw   t0, 0(a0)
        addi t0, t0, 3
        sw   t0, 0(a0)
        mv   a0, t0
        hlt
`

func TestLoaderBootFlow(t *testing.T) {
	tl, _ := newTrustLite(t)
	tr1, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "keystore", Program: isa.MustAssemble(trustletProg), DataSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "logger", Program: isa.MustAssemble(trustletProg), DataSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl.Boot()
	if !tl.Booted() {
		t.Fatal("boot flag unset")
	}
	// Static protection: no late loading.
	if _, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "late", Program: isa.MustAssemble(trustletProg)}); err == nil {
		t.Fatal("trustlet loaded after MPU lock")
	}
	// Both trustlets run.
	for _, tr := range []*Trustlet{tr1, tr2} {
		ret, err := tr.Call(tr.DataBase())
		if err != nil {
			t.Fatal(err)
		}
		if ret[0] != 3 {
			t.Fatalf("ret = %d", ret[0])
		}
	}
}

func TestEAMPUIsolatesTrustletData(t *testing.T) {
	tl, p := newTrustLite(t)
	tr, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "secret-holder", Program: isa.MustAssemble(trustletProg), DataSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteData(0, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	tl.Boot()
	// The OS (outside the trustlet code region) reads trustlet data: the
	// EA-MPU faults the access.
	osProg := isa.MustAssemble(`
        .org 0x8000
        li   t1, 0x9100
        csrw tvec, t1
        lbu  a0, 0(a1)
        hlt
        .org 0x9100
trap:   li   a0, 0
        hlt
`)
	if err := p.Mem.LoadProgram(osProg); err != nil {
		t.Fatal(err)
	}
	c := p.Core(0)
	c.Reset(0x8000)
	c.Priv = isa.PrivSuper
	c.Regs[isa.RegA1] = tr.DataBase()
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] == 0x42 {
		t.Fatal("OS read trustlet data through the EA-MPU")
	}
	// The trustlet itself reads its data fine.
	ret, err := tr.Call(tr.DataBase())
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 0x42+3 {
		t.Fatalf("owner read = %d", ret[0])
	}
}

func TestCrossTrustletIsolation(t *testing.T) {
	tl, _ := newTrustLite(t)
	a, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "a", Program: isa.MustAssemble(trustletProg), DataSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Trustlet B's code tries to read A's data region. The EA-MPU faults
	// the access; with no trap vector installed the fault surfaces as a
	// run error from Call.
	b, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "b", Program: isa.MustAssemble(".org 0\nlbu a0, 0(a0)\nhlt"), DataSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	a.WriteData(0, []byte{0x55})
	tl.Boot()
	ret, err := b.Call(a.DataBase())
	if err == nil && ret[0] == 0x55 {
		t.Fatal("trustlet B read trustlet A's data")
	}
	if err == nil {
		t.Fatal("cross-trustlet read did not fault")
	}
}

func TestAttestation(t *testing.T) {
	tl, _ := newTrustLite(t)
	tr, err := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "attested", Program: isa.MustAssemble(trustletProg)})
	if err != nil {
		t.Fatal(err)
	}
	tl.Boot()
	v := attest.NewVerifier()
	v.AllowMeasurement("attested", tr.Measurement())
	nonce, _ := v.Challenge()
	r, err := tr.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckReport(tl.PlatformKey(), r); err != nil {
		t.Fatal(err)
	}
}

func TestNoSealedStorageInPlainTrustLite(t *testing.T) {
	tl, _ := newTrustLite(t)
	tr, _ := tl.LoadTrustlet(tee.EnclaveConfig{
		Name: "x", Program: isa.MustAssemble(trustletProg)})
	if _, err := tr.Seal([]byte("data")); err == nil {
		t.Fatal("plain TrustLite sealed data (that is TyTAN's feature)")
	}
	if err := tr.Destroy(); err == nil {
		t.Fatal("static trustlet destroyed")
	}
}

func TestRequiresMPU(t *testing.T) {
	p := platform.NewServer() // no MPU
	if _, err := New(p); err == nil {
		t.Fatal("TrustLite accepted MPU-less platform")
	}
}
