// Package trustzone implements the ARM TrustZone model from Section 3.2:
// the system is split into a normal and a secure world, separated by
// hardware world tags on every bus access. The secure world is the
// system's single enclave; a monitor performs world switches (SMC) and
// verifies all secure-world code at boot using digital signatures. A
// TZASC-style address space controller provides DMA access control and
// secure peripheral assignment. There is no cache partitioning and no
// flush-on-switch — cache side channels into the secure world remain open
// (TruSpy), as the paper notes.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package trustzone

import (
	"crypto/rand"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

// SecureDomain is the cache/bus domain tag of secure-world execution.
const SecureDomain = 1

// Service is a secure-world service invocable through the monitor.
// It receives the calling core and the SMC argument registers a1..a3 and
// returns up to two result words.
type Service func(c *cpu.CPU, args [3]uint32) [2]uint32

// TrustZone is one TrustZone-enabled SoC.
type TrustZone struct {
	plat *platform.Platform

	secBase, secSize uint32
	secureMMIO       []mem.Region

	vendorKey *attest.QuotingKey // vendor image-signing key (public part used at boot)
	deviceKey []byte             // device-unique attestation secret

	services map[int]Service
	// MonitorCalls counts world switches.
	MonitorCalls uint64

	enclave    *Enclave // the single enclave (the secure world)
	secureMeas attest.Measurement
	booted     bool
}

// Enclave is TrustZone's single enclave: code living in the secure world.
type Enclave struct {
	tz    *TrustZone
	meas  attest.Measurement
	entry uint32
	data  uint32
}

// New installs TrustZone on a (mobile) platform: secure memory window and
// the TZASC filter, plus the monitor on every core.
func New(p *platform.Platform) (*TrustZone, error) {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, err
	}
	vk, err := attest.NewQuotingKey()
	if err != nil {
		return nil, err
	}
	tz := &TrustZone{
		plat:      p,
		secBase:   24 << 20, // top 8 MiB of DRAM is secure-world memory
		secSize:   8 << 20,
		vendorKey: vk,
		deviceKey: secret,
		services:  map[int]Service{},
	}
	p.Ctrl.AddFilter(mem.FuncFilter{FilterName: "tzasc", Fn: tz.tzascCheck})
	for _, c := range p.Cores {
		c.SMCHandler = tz.monitor
		c.World = mem.WorldNormal // boot hand-off leaves cores in normal world
	}
	return tz, nil
}

// tzascCheck enforces world separation: secure memory and secure
// peripherals respond only to secure-world masters. Violations are bus
// errors (TrustZone raises external aborts).
func (tz *TrustZone) tzascCheck(a mem.Access) mem.Action {
	inSecure := a.Addr >= tz.secBase && a.Addr-tz.secBase < tz.secSize
	if !inSecure {
		for _, r := range tz.secureMMIO {
			if r.Contains(a.Addr) {
				inSecure = true
				break
			}
		}
	}
	if !inSecure {
		return mem.ActionAllow
	}
	if a.World == mem.WorldSecure {
		return mem.ActionAllow
	}
	return mem.ActionDeny
}

// monitor is the SMC handler: it switches worlds, dispatches secure
// services, and returns to the caller's world.
func (tz *TrustZone) monitor(c *cpu.CPU, code int32) bool {
	tz.MonitorCalls++
	svc, ok := tz.services[int(code)]
	if !ok {
		c.Regs[isa.RegA0] = 0xffffffff // unknown service
		return true
	}
	prevWorld, prevDomain := c.World, c.Domain
	c.World = mem.WorldSecure
	c.Domain = SecureDomain
	args := [3]uint32{c.Regs[isa.RegA1], c.Regs[isa.RegA2], c.Regs[isa.RegA3]}
	ret := svc(c, args)
	c.Regs[isa.RegA0] = ret[0]
	c.Regs[isa.RegA1] = ret[1]
	// Return to the normal world. Note: no cache flush on the way out —
	// the secure world's cache footprint stays observable.
	c.World = prevWorld
	c.Domain = prevDomain
	return true
}

// RegisterService installs a secure-world service under an SMC code.
func (tz *TrustZone) RegisterService(code int, s Service) { tz.services[code] = s }

// VendorPublic returns the vendor's image verification key.
func (tz *TrustZone) VendorPublic() *attest.QuotingKey { return tz.vendorKey }

// SignImage signs a secure-world image (vendor provisioning step).
func (tz *TrustZone) SignImage(img []byte) ([]byte, error) {
	r := attest.NewReport(nil, attest.Measure(img), []byte("boot"), nil)
	q, err := tz.vendorKey.Sign(r)
	if err != nil {
		return nil, err
	}
	return q.Signature, nil
}

// SecureBoot verifies the image signature and, only on success, installs
// the image into secure memory — "the monitor code ... verifies all
// secure world code during boot using digital signatures".
func (tz *TrustZone) SecureBoot(img, sig []byte) error {
	r := attest.NewReport(nil, attest.Measure(img), []byte("boot"), nil)
	q := &attest.Quote{Report: *r, Signature: sig}
	if !attest.VerifyQuote(tz.vendorKey.Public(), q) {
		return fmt.Errorf("trustzone: secure boot: signature verification failed")
	}
	if uint32(len(img)) > tz.secSize {
		return fmt.Errorf("trustzone: image larger than secure memory")
	}
	if err := tz.plat.Mem.WriteRaw(tz.secBase, img); err != nil {
		return err
	}
	tz.secureMeas = attest.Measure(img)
	tz.booted = true
	return nil
}

// AssignSecurePeripheral marks an MMIO region secure-world-only (TZASC
// peripheral assignment), establishing a secure channel to the device.
func (tz *TrustZone) AssignSecurePeripheral(r mem.Region) {
	tz.secureMMIO = append(tz.secureMMIO, r)
}

// Name implements tee.Architecture.
func (tz *TrustZone) Name() string { return "ARM TrustZone (model)" }

// Class implements tee.Architecture.
func (tz *TrustZone) Class() platform.Class { return platform.ClassMobile }

// Platform implements tee.Architecture.
func (tz *TrustZone) Platform() *platform.Platform { return tz.plat }

// Capabilities implements tee.Architecture.
func (tz *TrustZone) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  false, // the defining limitation Sanctuary fixes
		MemoryEncryption:  false,
		DMAProtection:     true, // TZASC
		CacheDefense:      tee.DefenseNone,
		FlushOnSwitch:     false,
		RemoteAttestation: true, // vendor-specific device-key attestation
		SealedStorage:     true,
		RealTime:          false,
		SecurePeripherals: true, // the capability SGX and Sanctum lack
		CodeIsolation:     true,
	}
}

// SecureBase returns the secure-world memory base.
func (tz *TrustZone) SecureBase() uint32 { return tz.secBase }

// DeviceKey exposes the attestation secret to local verifiers.
func (tz *TrustZone) DeviceKey() []byte { return tz.deviceKey }

// CreateEnclave provides the single enclave: the secure world itself.
// A second call fails — the device vendor must be convinced to admit each
// app into the secure world, the trust-relationship cost the paper
// describes.
func (tz *TrustZone) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	if tz.enclave != nil {
		return nil, fmt.Errorf("trustzone: secure world already occupied (single enclave): %w", tee.ErrUnsupported)
	}
	if cfg.Program == nil || len(cfg.Program.Segments) != 1 {
		return nil, fmt.Errorf("trustzone: enclave needs a single-segment program")
	}
	img := cfg.Program.Segments[0].Data
	sig, err := tz.SignImage(img) // vendor signs admitted apps
	if err != nil {
		return nil, err
	}
	if err := tz.SecureBoot(img, sig); err != nil {
		return nil, err
	}
	e := &Enclave{
		tz:    tz,
		meas:  attest.Measure(img).Extend([]byte(cfg.Name)),
		entry: tz.secBase + (cfg.Program.Entry - cfg.Program.Segments[0].Base),
		data:  tz.secBase + 4096*((uint32(len(img))+4095)/4096),
	}
	tz.enclave = e
	return e, nil
}

// ID implements tee.Enclave.
func (e *Enclave) ID() int { return SecureDomain }

// Name implements tee.Enclave.
func (e *Enclave) Name() string { return "secure-world" }

// Measurement implements tee.Enclave.
func (e *Enclave) Measurement() attest.Measurement { return e.meas }

// Base implements tee.Enclave.
func (e *Enclave) Base() uint32 { return e.tz.secBase }

// Size implements tee.Enclave.
func (e *Enclave) Size() uint32 { return e.tz.secSize }

// DataBase returns the secure-world data area.
func (e *Enclave) DataBase() uint32 { return e.data }

// Call enters the secure world on core 0 and runs the enclave program.
func (e *Enclave) Call(args ...uint32) ([2]uint32, error) {
	c := e.tz.plat.Core(0)
	saved := *c
	c.Reset(e.entry)
	c.World = mem.WorldSecure
	c.Domain = SecureDomain
	c.Priv = isa.PrivSuper // secure-world OS privilege
	for i, a := range args {
		if i >= 4 {
			break
		}
		c.Regs[isa.RegA0+uint8(i)] = a
	}
	e.tz.MonitorCalls++
	res, err := c.Run(2_000_000)
	ret := [2]uint32{c.Regs[isa.RegA0], c.Regs[isa.RegA1]}
	cycles, instret := c.Cycles, c.Instret
	*c = saved
	c.Cycles, c.Instret = cycles, instret
	// No cache hygiene on world switch — deliberately.
	if err != nil {
		return ret, fmt.Errorf("trustzone: secure world faulted: %w", err)
	}
	if res.Reason != cpu.StopHalt {
		return ret, fmt.Errorf("trustzone: secure world did not exit cleanly: %v", res.Reason)
	}
	return ret, nil
}

// WriteData provisions secure-world data (monitor path).
func (e *Enclave) WriteData(off uint32, buf []byte) error {
	return e.tz.plat.Mem.WriteRaw(e.data+off, buf)
}

// Attest implements tee.Enclave with the device key.
func (e *Enclave) Attest(nonce []byte) (*attest.Report, error) {
	return attest.NewReport(e.tz.deviceKey, e.meas, nonce, nil), nil
}

// Seal implements tee.Enclave.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	return attest.Seal(e.tz.deviceKey, e.meas, data)
}

// Unseal implements tee.Enclave.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	return attest.Unseal(e.tz.deviceKey, e.meas, blob)
}

// Destroy tears down the secure world content.
func (e *Enclave) Destroy() error {
	zero := make([]byte, 4096)
	if err := e.tz.plat.Mem.WriteRaw(e.tz.secBase, zero); err != nil {
		return err
	}
	e.tz.enclave = nil
	e.tz.booted = false
	return nil
}
