package trustzone

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newTZ(t *testing.T) (*TrustZone, *platform.Platform) {
	t.Helper()
	p := platform.NewMobile()
	tz, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return tz, p
}

func TestSecureBootVerifiesSignatures(t *testing.T) {
	tz, _ := newTZ(t)
	img := []byte("secure world image v1")
	sig, err := tz.SignImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := tz.SecureBoot(img, sig); err != nil {
		t.Fatalf("genuine image rejected: %v", err)
	}
	// Tampered image: rejected.
	bad := append([]byte{}, img...)
	bad[0] ^= 1
	if err := tz.SecureBoot(bad, sig); err == nil {
		t.Fatal("tampered image booted")
	}
	// Wrong-key signature rejected.
	other, _ := attest.NewQuotingKey()
	r := attest.NewReport(nil, attest.Measure(img), []byte("boot"), nil)
	q, _ := other.Sign(r)
	if err := tz.SecureBoot(img, q.Signature); err == nil {
		t.Fatal("foreign signature booted")
	}
}

func TestWorldSeparationOnBus(t *testing.T) {
	tz, p := newTZ(t)
	secret := []byte{0xC4, 0xFE}
	if err := p.Mem.WriteRaw(tz.SecureBase(), secret); err != nil {
		t.Fatal(err)
	}
	normalRead := mem.Access{
		Addr: tz.SecureBase(), Size: 1, Kind: mem.KindLoad,
		Priv: isa.PrivSuper, World: mem.WorldNormal,
		Init: mem.Initiator{Type: mem.InitCPU, ID: 0},
	}
	if _, err := p.Ctrl.Read(normalRead); err == nil {
		t.Fatal("normal world read secure memory")
	}
	secureRead := normalRead
	secureRead.World = mem.WorldSecure
	if v, err := p.Ctrl.Read(secureRead); err != nil || byte(v) != 0xC4 {
		t.Fatalf("secure world read failed: %#x, %v", v, err)
	}
	// Normal-world DMA blocked (the TZASC DMA access control).
	buf := make([]byte, 2)
	if err := p.DMA.ReadInto(tz.SecureBase(), buf); err == nil {
		t.Fatal("normal-world DMA read secure memory")
	}
}

func TestMonitorDispatchAndWorldRestore(t *testing.T) {
	tz, p := newTZ(t)
	tz.RegisterService(7, func(c *cpu.CPU, args [3]uint32) [2]uint32 {
		if c.World != mem.WorldSecure {
			t.Error("service not running in secure world")
		}
		return [2]uint32{args[0] + args[1], 0}
	})
	// Normal-world program invokes the service via SMC.
	prog := isa.MustAssemble(`
        li  a1, 30
        li  a2, 12
        smc 7
        hlt
`)
	if err := p.Mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := p.Core(0)
	c.Reset(prog.Entry)
	c.SMCHandler = tz.monitor
	c.World = mem.WorldNormal
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 42 {
		t.Fatalf("service result = %d", c.Regs[isa.RegA0])
	}
	if c.World != mem.WorldNormal {
		t.Fatal("world not restored after SMC")
	}
	if tz.MonitorCalls == 0 {
		t.Fatal("monitor call not counted")
	}
	// Unknown service returns the error marker.
	prog2 := isa.MustAssemble("smc 99\nhlt")
	if err := p.Mem.LoadProgram(prog2); err != nil {
		t.Fatal(err)
	}
	c.Reset(prog2.Entry)
	c.SMCHandler = tz.monitor
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 0xffffffff {
		t.Fatalf("unknown service a0 = %#x", c.Regs[isa.RegA0])
	}
}

func TestSingleEnclaveLimit(t *testing.T) {
	tz, _ := newTZ(t)
	prog := isa.MustAssemble(".org 0\nmv a0, a1\nhlt")
	e, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "ta1", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "ta2", Program: prog}); err == nil {
		t.Fatal("TrustZone admitted a second enclave")
	}
	// After destroying, the slot frees up.
	if err := e.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "ta3", Program: prog}); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
}

func TestEnclaveRunsInSecureWorld(t *testing.T) {
	tz, _ := newTZ(t)
	// The enclave reads its own secure memory — allowed because it runs
	// with the secure world attribute.
	prog := isa.MustAssemble(".org 0\nlbu a0, 0(a1)\nhlt")
	e, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "reader", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	if err := enc.WriteData(0, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	ret, err := enc.Call(0, enc.DataBase())
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 0x77 {
		t.Fatalf("secure read = %#x", ret[0])
	}
}

func TestSecurePeripheralChannel(t *testing.T) {
	tz, p := newTZ(t)
	dev := &fakeDevice{}
	region := mem.Region{Name: "fingerprint", Base: 0x1F000000, Size: 16, Kind: mem.RegionMMIO, Device: dev}
	p.Mem.MustAddRegion(region)
	tz.AssignSecurePeripheral(region)
	normal := mem.Access{Addr: 0x1F000000, Size: 4, Kind: mem.KindLoad,
		Priv: isa.PrivSuper, World: mem.WorldNormal, Init: mem.Initiator{Type: mem.InitCPU}}
	if _, err := p.Ctrl.Read(normal); err == nil {
		t.Fatal("normal world reached secure peripheral")
	}
	secure := normal
	secure.World = mem.WorldSecure
	if _, err := p.Ctrl.Read(secure); err != nil {
		t.Fatalf("secure world denied its peripheral: %v", err)
	}
}

type fakeDevice struct{ regs [4]uint32 }

func (d *fakeDevice) Read32(off uint32) uint32     { return d.regs[off/4] }
func (d *fakeDevice) Write32(off uint32, v uint32) { d.regs[off/4] = v }

func TestAttestSealWithDeviceKey(t *testing.T) {
	tz, _ := newTZ(t)
	prog := isa.MustAssemble(".org 0\nhlt")
	e, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "ta", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	v := attest.NewVerifier()
	v.AllowMeasurement("ta", e.Measurement())
	nonce, _ := v.Challenge()
	r, _ := e.Attest(nonce)
	if err := v.CheckReport(tz.DeviceKey(), r); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Seal([]byte("tz state"))
	if err != nil {
		t.Fatal(err)
	}
	if out, err := e.Unseal(blob); err != nil || string(out) != "tz state" {
		t.Fatalf("unseal: %q %v", out, err)
	}
}

func TestNoCacheHygieneOnWorldSwitch(t *testing.T) {
	// TrustZone does NOT flush caches on world switches — the TruSpy-style
	// observation channel stays open. Verify the deliberate insecurity.
	tz, p := newTZ(t)
	prog := isa.MustAssemble(".org 0\nlw t0, 0(a1)\nhlt")
	e, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "leaky", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	if _, err := enc.Call(0, enc.DataBase()); err != nil {
		t.Fatal(err)
	}
	if !p.Core(0).Hier.InL1(enc.DataBase(), SecureDomain) {
		t.Fatal("secure-world cache footprint was flushed — model diverges from TrustZone")
	}
}
