package trustzone

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
)

func TestTZASCAllowsSecureDMA(t *testing.T) {
	// A DMA engine assigned to the secure world (e.g. the crypto
	// accelerator's own DMA) must reach secure memory — TZASC filters by
	// world, not by master class.
	p := platform.NewMobile()
	tz, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.WriteRaw(tz.SecureBase(), []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	secDMA := mem.NewDMA(p.Ctrl, 7)
	secDMA.World = mem.WorldSecure
	buf := make([]byte, 1)
	if err := secDMA.ReadInto(tz.SecureBase(), buf); err != nil {
		t.Fatalf("secure-world DMA denied: %v", err)
	}
	if buf[0] != 0xAB {
		t.Fatalf("secure DMA read %#x", buf[0])
	}
	// The same engine reclassified to the normal world is denied.
	secDMA.World = mem.WorldNormal
	if err := secDMA.ReadInto(tz.SecureBase(), buf); err == nil {
		t.Fatal("normal-world DMA reached secure memory")
	}
}

func TestMonitorCallCounting(t *testing.T) {
	p := platform.NewMobile()
	tz, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	before := tz.MonitorCalls
	tz.monitor(p.Core(0), 999) // unknown service still counts a switch
	if tz.MonitorCalls != before+1 {
		t.Fatal("monitor call not counted")
	}
}

func TestSecureBootRequiredBeforeEnclave(t *testing.T) {
	p := platform.NewMobile()
	tz, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if tz.booted {
		t.Fatal("booted before any image verified")
	}
	// Oversized image rejected even with a valid signature.
	big := make([]byte, int(tz.secSize)+1)
	sig, err := tz.SignImage(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := tz.SecureBoot(big, sig); err == nil {
		t.Fatal("oversized image booted")
	}
}
