package smart

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newSMART(t *testing.T) (*SMART, *platform.Platform) {
	t.Helper()
	p := platform.NewEmbedded()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// installTarget loads attested application code at 0x8000: it re-enables
// interrupts and halts — the post-attestation destination.
func installTarget(t *testing.T, p *platform.Platform) (base, size uint32) {
	t.Helper()
	prog := isa.MustAssemble(`
        .org 0x8000
target: li   t0, 1
        csrw status, t0     ; re-enable interrupts, as SMART prescribes
        hlt
`)
	if err := p.Mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	return 0x8000, uint32(prog.Size())
}

func nonce16(b byte) []byte {
	n := make([]byte, 16)
	for i := range n {
		n[i] = b
	}
	return n
}

func TestAttestationEndToEnd(t *testing.T) {
	s, p := newSMART(t)
	base, size := installTarget(t, p)
	res, err := s.Attest(base, size, nonce16(1), base)
	if err != nil {
		t.Fatal(err)
	}
	// The report verifies against the device key.
	if !attest.VerifyReport(s.Key(), res.Report) {
		t.Fatal("attestation report MAC invalid")
	}
	// And through a full verifier with nonce freshness.
	v := attest.NewVerifier()
	v.AllowMeasurement("target", res.Report.Measurement)
	if err := v.CheckReport(s.Key(), res.Report); err != nil {
		t.Fatal(err)
	}
	// The flow ended in the attested destination (which halted).
	if !p.Core(0).Halted {
		t.Fatal("control did not reach the destination")
	}
}

func TestModifiedCodeChangesMeasurement(t *testing.T) {
	s, p := newSMART(t)
	base, size := installTarget(t, p)
	res1, err := s.Attest(base, size, nonce16(2), base)
	if err != nil {
		t.Fatal(err)
	}
	// Malware patches one byte of the attested region.
	if err := p.Mem.WriteRaw(base+8, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	res2, err := s.Attest(base, size, nonce16(3), base)
	if err == nil {
		if res1.Report.Measurement == res2.Report.Measurement {
			t.Fatal("tampered region produced identical measurement")
		}
	}
	// A verifier expecting the clean measurement rejects the new report.
	v := attest.NewVerifier()
	v.AllowMeasurement("clean", res1.Report.Measurement)
	if res2 != nil {
		if err := v.CheckReport(s.Key(), res2.Report); err == nil {
			t.Fatal("verifier accepted tampered code")
		}
	}
}

func TestKeyGateBlocksNonROMCallers(t *testing.T) {
	s, p := newSMART(t)
	// Malicious code outside ROM programs the engine directly and fires
	// it: the PC gate must refuse.
	prog := isa.MustAssemble(`
        .org 0x8000
        li   t0, 0x50000
        li   a0, 0x8000
        sw   a0, 0(t0)
        li   a1, 64
        sw   a1, 4(t0)
        li   t1, 1
        sw   t1, 16(t0)     ; GO from outside ROM
        lw   a0, 20(t0)     ; read status
        hlt
`)
	if err := p.Mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := p.Core(0)
	c.Reset(0x8000)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 2 {
		t.Fatalf("engine status = %d, want 2 (gate violation)", c.Regs[isa.RegA0])
	}
	if s.GateViolations() == 0 {
		t.Fatal("gate violation not counted")
	}
}

func TestInterruptsDelayedDuringAttestation(t *testing.T) {
	s, p := newSMART(t)
	base, size := installTarget(t, p)
	// Raise an interrupt before attestation: it must stay pending until
	// the attested destination re-enables interrupts.
	p.Core(0).RaiseIRQ()
	p.Core(0).SetCSR(isa.CSRTvec, 0x9000)
	isr := isa.MustAssemble(".org 0x9000\nhlt")
	if err := p.Mem.LoadProgram(isr); err != nil {
		t.Fatal(err)
	}
	res, err := s.Attest(base, size, nonce16(4), base)
	if err != nil {
		t.Fatal(err)
	}
	if res.InstructionsWithIRQPending == 0 {
		t.Fatal("IRQ was not delayed during attestation — SMART's RT cost missing")
	}
}

func TestNonceFreshnessBound(t *testing.T) {
	s, p := newSMART(t)
	base, size := installTarget(t, p)
	r1, err := s.Attest(base, size, nonce16(7), base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Attest(base, size, nonce16(8), base)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Report.MAC) == string(r2.Report.MAC) {
		t.Fatal("different nonces produced identical MACs")
	}
}

func TestNoEnclavesAndCapabilities(t *testing.T) {
	s, _ := newSMART(t)
	if _, err := s.CreateEnclave(tee.EnclaveConfig{}); err == nil {
		t.Fatal("SMART created an enclave")
	}
	caps := s.Capabilities()
	if caps.CodeIsolation || caps.DMAProtection || caps.RealTime || !caps.RemoteAttestation {
		t.Fatalf("capabilities wrong: %+v", caps)
	}
}

func TestBadNonceLength(t *testing.T) {
	s, p := newSMART(t)
	base, size := installTarget(t, p)
	if _, err := s.Attest(base, size, []byte("short"), base); err == nil {
		t.Fatal("short nonce accepted")
	}
}
