// Package smart implements SMART (Eldefrawy–Tsudik–Francillon–Perito,
// NDSS'12) from Section 3.3: a dynamic root of trust for low-end embedded
// devices built from exactly two hardware features — an immutable ROM
// attestation routine, and an attestation key that the hardware releases
// only while the program counter is inside that ROM routine.
//
// The flow reproduced here, faithful to the paper's sequence: untrusted
// code invokes the ROM routine with (region, nonce, destination); the
// routine 1) disables interrupts, 2) computes an HMAC over the region,
// the parameters and the nonce, 3) writes the report and cleans up its
// traces, 4) jumps to the attested destination. Because interrupts stay
// disabled throughout, SMART is unsuitable for real-time workloads; and
// neither side channels nor DMA are part of its threat model — all three
// properties are observable in the model and feed TAB2.
//
// Substitution note (DESIGN.md §2): the paper's MCU computes the HMAC in
// ROM software; computing SHA-256 in HS-32 assembly would add thousands of
// lines without changing any measured behaviour, so the MAC arithmetic
// runs in an MMIO crypto engine that enforces the same PC-gate in
// hardware. The control flow (interrupt disable, parameter marshalling,
// cleanup, jump-to-destination) remains real HS-32 code in ROM.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package smart

import (
	"crypto/rand"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

// Memory map constants for the SMART device.
const (
	romEntry   = 0x100   // ROM attestation routine entry
	engineBase = 0x50000 // MMIO crypto engine
	nonceAddr  = 0x42000 // RAM slot the challenger's nonce is written to
	reportAddr = 0x43000 // RAM slot the engine writes the 32-byte MAC to
)

// SMART is one SMART-enabled embedded device.
type SMART struct {
	plat *platform.Platform
	key  []byte
	eng  *engine

	// ROMBase/ROMEnd delimit the attestation routine: the PC gate.
	ROMBase, ROMEnd uint32
}

// engine is the MMIO crypto engine holding the attestation key. It
// releases MAC computations only while the core's PC is inside the ROM
// attestation routine.
type engine struct {
	s *SMART
	c *cpu.CPU

	regionBase, regionLen uint32
	dest                  uint32
	status                uint32 // 0 idle, 1 done, 2 gate violation
	// GateViolations counts attempts to fire the engine from outside ROM.
	GateViolations uint64
}

// romRoutine is the immutable attestation code. Untrusted callers enter at
// romEntry with a0=region base, a1=region length, a2=nonce address,
// a3=after-attestation destination.
const romRoutine = `
        .equ ENG, 0x50000
        .org 0x100
attest: csrw status, zero      ; step 1: disable interrupts
        li   t0, ENG
        sw   a0, 0(t0)         ; region base
        sw   a1, 4(t0)         ; region length
        sw   a2, 8(t0)         ; nonce address (read by engine)
        sw   a3, 12(t0)        ; destination (bound into the MAC)
        li   t1, 1
        sw   t1, 16(t0)        ; GO: engine checks the PC gate here
        li   t0, 0             ; step 3: clean attestation traces
        li   t1, 0
        jalr zero, a3, 0       ; step 4: jump to attested destination
`

// New provisions a SMART device on an embedded platform: burns the ROM
// routine, installs the crypto engine, and fuses a fresh key.
func New(p *platform.Platform) (*SMART, error) {
	if p.ROMSize == 0 {
		return nil, fmt.Errorf("smart: platform has no ROM")
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	s := &SMART{plat: p, key: key, ROMBase: romEntry, ROMEnd: romEntry + 0x100}
	prog := isa.MustAssemble(romRoutine)
	if err := p.Mem.LoadProgram(prog); err != nil {
		return nil, fmt.Errorf("smart: burn ROM: %w", err)
	}
	s.eng = &engine{s: s, c: p.Core(0)}
	p.Mem.MustAddRegion(mem.Region{
		Name: "smart-engine", Base: engineBase, Size: 32, Kind: mem.RegionMMIO, Device: s.eng,
	})
	return s, nil
}

// Read32 implements mem.Device.
func (e *engine) Read32(off uint32) uint32 {
	switch off {
	case 20:
		return e.status
	}
	return 0
}

// Write32 implements mem.Device.
func (e *engine) Write32(off uint32, v uint32) {
	switch off {
	case 0:
		e.regionBase = v
	case 4:
		e.regionLen = v
	case 8: // nonce address register (value read at GO time)
	case 12:
		e.dest = v
	case 16:
		e.fire()
	}
}

// fire performs the gated MAC computation.
func (e *engine) fire() {
	// THE hardware property: the key is usable only while the program
	// counter is inside the ROM attestation routine.
	if e.c.PC < e.s.ROMBase || e.c.PC >= e.s.ROMEnd {
		e.GateViolations++
		e.status = 2
		return
	}
	region := make([]byte, e.regionLen)
	if err := e.s.plat.Mem.ReadRaw(e.regionBase, region); err != nil {
		e.status = 2
		return
	}
	nonce := make([]byte, 16)
	if err := e.s.plat.Mem.ReadRaw(nonceAddr, nonce); err != nil {
		e.status = 2
		return
	}
	var destBytes [4]byte
	destBytes[0] = byte(e.dest)
	destBytes[1] = byte(e.dest >> 8)
	destBytes[2] = byte(e.dest >> 16)
	destBytes[3] = byte(e.dest >> 24)
	r := attest.NewReport(e.s.key, attest.Measure(region), nonce, destBytes[:])
	if err := e.s.plat.Mem.WriteRaw(reportAddr, r.MAC); err != nil {
		e.status = 2
		return
	}
	e.status = 1
}

// Name implements tee.Architecture.
func (s *SMART) Name() string { return "SMART (model)" }

// Class implements tee.Architecture.
func (s *SMART) Class() platform.Class { return platform.ClassEmbedded }

// Platform implements tee.Architecture.
func (s *SMART) Platform() *platform.Platform { return s.plat }

// Capabilities implements tee.Architecture: attestation only — no
// isolation, no DMA or side-channel defenses, no real-time suitability.
func (s *SMART) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  false,
		MemoryEncryption:  false,
		DMAProtection:     false,
		CacheDefense:      tee.DefenseNotApplicable,
		RemoteAttestation: true,
		SealedStorage:     false,
		RealTime:          false, // interrupts disabled during attestation
		SecurePeripherals: false,
		CodeIsolation:     false,
	}
}

// CreateEnclave implements tee.Architecture: SMART has no enclaves.
func (s *SMART) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	return nil, fmt.Errorf("smart: %w (attestation-only root of trust)", tee.ErrUnsupported)
}

// Key exposes the shared attestation key to the verifier side.
func (s *SMART) Key() []byte { return s.key }

// AttestResult carries the outcome of one in-ISA attestation run.
type AttestResult struct {
	Report *attest.Report
	// InstructionsWithIRQPending counts retired instructions during which
	// an interrupt was pending but masked — SMART's real-time cost.
	InstructionsWithIRQPending uint64
}

// Attest runs the full in-ISA attestation flow: it writes the nonce,
// points the core at the ROM routine and lets the ROM code drive the
// engine and jump to dest (which must contain runnable code ending in
// HLT). The returned report's MAC was produced by the gated engine.
func (s *SMART) Attest(regionBase, regionLen uint32, nonce []byte, dest uint32) (*AttestResult, error) {
	if len(nonce) != 16 {
		return nil, fmt.Errorf("smart: nonce must be 16 bytes")
	}
	if err := s.plat.Mem.WriteRaw(nonceAddr, nonce); err != nil {
		return nil, err
	}
	c := s.plat.Core(0)
	// SMART runs on a live device: do not reset CSRs or pending
	// interrupts, just redirect control to the ROM routine (whose first
	// instruction masks interrupts).
	c.Halted = false
	c.Waiting = false
	c.PC = romEntry
	c.Priv = isa.PrivMachine // embedded device: single trust domain
	c.Regs[isa.RegA0] = regionBase
	c.Regs[isa.RegA1] = regionLen
	c.Regs[isa.RegA2] = nonceAddr
	c.Regs[isa.RegA3] = dest

	pending := uint64(0)
	for i := 0; i < 1_000_000 && !c.Halted; i++ {
		if c.IRQ && !c.InterruptsEnabled() {
			pending++
		}
		if err := c.Step(); err != nil {
			return nil, fmt.Errorf("smart: attestation flow faulted: %w", err)
		}
	}
	if !c.Halted {
		return nil, fmt.Errorf("smart: attestation flow did not terminate")
	}
	if st := s.eng.status; st != 1 {
		return nil, fmt.Errorf("smart: engine status %d (gate violation or bad region)", st)
	}
	mac := make([]byte, 32)
	if err := s.plat.Mem.ReadRaw(reportAddr, mac); err != nil {
		return nil, err
	}
	region := make([]byte, regionLen)
	if err := s.plat.Mem.ReadRaw(regionBase, region); err != nil {
		return nil, err
	}
	var destBytes [4]byte
	destBytes[0] = byte(dest)
	destBytes[1] = byte(dest >> 8)
	destBytes[2] = byte(dest >> 16)
	destBytes[3] = byte(dest >> 24)
	return &AttestResult{
		Report: &attest.Report{
			Measurement: attest.Measure(region),
			Nonce:       nonce,
			AppData:     destBytes[:],
			MAC:         mac,
		},
		InstructionsWithIRQPending: pending,
	}, nil
}

// GateViolations reports how many times software outside ROM tried to use
// the key.
func (s *SMART) GateViolations() uint64 { return s.eng.GateViolations }
