package tytan

import (
	"bytes"
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newTyTAN(t *testing.T) *TyTAN {
	t.Helper()
	ty, err := New(platform.NewEmbedded())
	if err != nil {
		t.Fatal(err)
	}
	return ty
}

const appProg = ".org 0\nmv a0, a1\nhlt"

func signedLoad(t *testing.T, ty *TyTAN, name string) *Trustlet {
	t.Helper()
	prog := isa.MustAssemble(appProg)
	sig, err := ty.SignImage(prog.Segments[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ty.LoadSignedTrustlet(tee.EnclaveConfig{Name: name, Program: prog, DataSize: 256}, sig)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSecureBootAcceptsSignedRejectsUnsigned(t *testing.T) {
	ty := newTyTAN(t)
	tr := signedLoad(t, ty, "signed")
	if tr == nil {
		t.Fatal("signed trustlet rejected")
	}
	// Unsigned / tampered images refused.
	prog := isa.MustAssemble(appProg)
	if _, err := ty.LoadSignedTrustlet(tee.EnclaveConfig{Name: "bad", Program: prog}, []byte("junk")); err == nil {
		t.Fatal("junk signature accepted")
	}
	if _, err := ty.CreateEnclave(tee.EnclaveConfig{Name: "nosig", Program: prog}); err == nil {
		t.Fatal("unsigned load path accepted")
	}
	// Signature for different code refused.
	other := isa.MustAssemble(".org 0\nnop\nhlt")
	sig, _ := ty.SignImage(prog.Segments[0].Data)
	if _, err := ty.LoadSignedTrustlet(tee.EnclaveConfig{Name: "swap", Program: other}, sig); err == nil {
		t.Fatal("signature/image mismatch accepted")
	}
}

func TestSecureStorage(t *testing.T) {
	ty := newTyTAN(t)
	a := signedLoad(t, ty, "storer")
	b := signedLoad(t, ty, "other")
	blob, err := a.Seal([]byte("calibration data"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Unseal(blob)
	if err != nil || !bytes.Equal(out, []byte("calibration data")) {
		t.Fatalf("unseal: %q %v", out, err)
	}
	if _, err := b.Unseal(blob); err == nil {
		t.Fatal("foreign trustlet unsealed")
	}
}

func TestAuthenticatedIPC(t *testing.T) {
	ty := newTyTAN(t)
	a := signedLoad(t, ty, "producer")
	b := signedLoad(t, ty, "consumer")
	msg := ty.SendIPC(a, b, []byte("reading=42"))
	if !ty.VerifyIPC(msg) {
		t.Fatal("genuine IPC rejected")
	}
	// Tampered payload detected.
	evil := *msg
	evil.Payload = []byte("reading=43")
	if ty.VerifyIPC(&evil) {
		t.Fatal("tampered IPC accepted")
	}
	// Spoofed sender detected.
	spoof := *msg
	spoof.From = 99
	if ty.VerifyIPC(&spoof) {
		t.Fatal("spoofed sender accepted")
	}
}

func TestRTAttestationBoundedLatency(t *testing.T) {
	ty := newTyTAN(t)
	tr := signedLoad(t, ty, "rt")
	ty.AttestChunk = 128
	res, err := ty.AttestRT(tr, tr.CodeBase(), 1024, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 8 {
		t.Fatalf("chunks = %d, want 8", res.Chunks)
	}
	if res.WorstCaseLatencyBytes != 128 {
		t.Fatalf("worst-case latency = %d bytes", res.WorstCaseLatencyBytes)
	}
	if !attest.VerifyReport(ty.TrustLite().PlatformKey(), res.Report) {
		t.Fatal("RT attestation report invalid")
	}
	// The uninterruptible span is a fraction of the region — unlike
	// SMART, which holds interrupts for the whole attestation.
	if res.WorstCaseLatencyBytes >= 1024 {
		t.Fatal("no latency improvement over SMART")
	}
}

func TestCapabilitiesExtendTrustLite(t *testing.T) {
	ty := newTyTAN(t)
	caps := ty.Capabilities()
	base := ty.TrustLite().Capabilities()
	if !caps.SealedStorage || !caps.RealTime {
		t.Fatalf("TyTAN capabilities missing extensions: %+v", caps)
	}
	if base.SealedStorage || base.RealTime {
		t.Fatalf("TrustLite base capabilities polluted: %+v", base)
	}
	if !caps.CodeIsolation || !caps.MultipleEnclaves {
		t.Fatalf("inherited capabilities lost: %+v", caps)
	}
}

func TestTrustletsStillIsolatedViaTrustLite(t *testing.T) {
	ty := newTyTAN(t)
	tr := signedLoad(t, ty, "iso")
	tr.WriteData(0, []byte{0x61})
	ty.TrustLite().Boot()
	ret, err := tr.Call(0, tr.DataBase())
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != tr.DataBase() {
		t.Fatalf("call result = %#x", ret[0])
	}
}
