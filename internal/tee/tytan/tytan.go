// Package tytan implements TyTAN (Brasser et al., DAC'15) from Section
// 3.3: TrustLite extended for real-time systems. On top of TrustLite's
// EA-MPU isolation it adds, per the paper, "secure boot and secure
// storage", plus authenticated IPC and latency-bounded (interruptible)
// attestation so hard deadlines survive security operations.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package tytan

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/trustlite"
)

// TyTAN wraps a TrustLite instance with the real-time extensions.
type TyTAN struct {
	tl *trustlite.TrustLite

	// vendor key verifies trustlet images at load (secure boot).
	vendorKey *attest.QuotingKey

	// ipcKeys holds pairwise MAC keys for authenticated IPC.
	ipcKeys map[[2]int][]byte

	// AttestChunk is the number of bytes MACed per scheduling slice; the
	// worst-case interrupt latency during attestation is the cost of one
	// chunk instead of the whole region (SMART's weakness fixed).
	AttestChunk int
}

// New builds TyTAN on a fresh TrustLite instance.
func New(p *platform.Platform) (*TyTAN, error) {
	tl, err := trustlite.New(p)
	if err != nil {
		return nil, err
	}
	vk, err := attest.NewQuotingKey()
	if err != nil {
		return nil, err
	}
	return &TyTAN{tl: tl, vendorKey: vk, ipcKeys: map[[2]int][]byte{}, AttestChunk: 256}, nil
}

// TrustLite exposes the underlying loader for trustlet management.
func (t *TyTAN) TrustLite() *trustlite.TrustLite { return t.tl }

// Name implements tee.Architecture.
func (t *TyTAN) Name() string { return "TyTAN (model)" }

// Class implements tee.Architecture.
func (t *TyTAN) Class() platform.Class { return platform.ClassEmbedded }

// Platform implements tee.Architecture.
func (t *TyTAN) Platform() *platform.Platform { return t.tl.Platform() }

// Capabilities implements tee.Architecture: TrustLite plus secure boot,
// secure storage and real-time guarantees.
func (t *TyTAN) Capabilities() tee.Capabilities {
	c := t.tl.Capabilities()
	c.SealedStorage = true
	c.RealTime = true
	return c
}

// SignImage is the vendor provisioning step for secure boot.
func (t *TyTAN) SignImage(img []byte) ([]byte, error) {
	r := attest.NewReport(nil, attest.Measure(img), []byte("tytan-boot"), nil)
	q, err := t.vendorKey.Sign(r)
	if err != nil {
		return nil, err
	}
	return q.Signature, nil
}

// CreateEnclave implements tee.Architecture. TyTAN requires signed images:
// use LoadSignedTrustlet; unsigned loading is refused.
func (t *TyTAN) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	return nil, fmt.Errorf("tytan: unsigned trustlet refused (secure boot): %w", tee.ErrUnsupported)
}

// LoadSignedTrustlet verifies the image signature (secure boot), then
// loads it through the TrustLite Secure Loader.
func (t *TyTAN) LoadSignedTrustlet(cfg tee.EnclaveConfig, sig []byte) (*Trustlet, error) {
	if cfg.Program == nil || len(cfg.Program.Segments) != 1 {
		return nil, fmt.Errorf("tytan: trustlet needs a single-segment program")
	}
	img := cfg.Program.Segments[0].Data
	r := attest.NewReport(nil, attest.Measure(img), []byte("tytan-boot"), nil)
	q := &attest.Quote{Report: *r, Signature: sig}
	if !attest.VerifyQuote(t.vendorKey.Public(), q) {
		return nil, fmt.Errorf("tytan: secure boot rejected trustlet %q (bad signature)", cfg.Name)
	}
	tr, err := t.tl.LoadTrustlet(cfg)
	if err != nil {
		return nil, err
	}
	return &Trustlet{Trustlet: tr, ty: t}, nil
}

// Trustlet decorates a TrustLite trustlet with TyTAN services.
type Trustlet struct {
	*trustlite.Trustlet
	ty *TyTAN
}

// Seal implements secure storage: data bound to the trustlet identity
// under the platform key.
func (tr *Trustlet) Seal(data []byte) ([]byte, error) {
	return attest.Seal(tr.ty.tl.PlatformKey(), tr.Measurement(), data)
}

// Unseal implements secure storage retrieval.
func (tr *Trustlet) Unseal(blob []byte) ([]byte, error) {
	return attest.Unseal(tr.ty.tl.PlatformKey(), tr.Measurement(), blob)
}

// IPCMessage is an authenticated inter-trustlet message.
type IPCMessage struct {
	From, To int
	Payload  []byte
	MAC      []byte
}

func (t *TyTAN) ipcKey(a, b int) []byte {
	if a > b {
		a, b = b, a
	}
	k, ok := t.ipcKeys[[2]int{a, b}]
	if !ok {
		h := hmac.New(sha256.New, t.tl.PlatformKey())
		h.Write([]byte{byte(a), byte(b), 'i', 'p', 'c'})
		k = h.Sum(nil)
		t.ipcKeys[[2]int{a, b}] = k
	}
	return k
}

// SendIPC produces an authenticated message from one trustlet to another.
func (t *TyTAN) SendIPC(from, to *Trustlet, payload []byte) *IPCMessage {
	mac := hmac.New(sha256.New, t.ipcKey(from.ID(), to.ID()))
	mac.Write([]byte{byte(from.ID()), byte(to.ID())})
	mac.Write(payload)
	return &IPCMessage{From: from.ID(), To: to.ID(), Payload: payload, MAC: mac.Sum(nil)}
}

// VerifyIPC checks message authenticity at the receiver.
func (t *TyTAN) VerifyIPC(msg *IPCMessage) bool {
	mac := hmac.New(sha256.New, t.ipcKey(msg.From, msg.To))
	mac.Write([]byte{byte(msg.From), byte(msg.To)})
	mac.Write(msg.Payload)
	return hmac.Equal(mac.Sum(nil), msg.MAC)
}

// RTAttestResult reports a latency-bounded attestation.
type RTAttestResult struct {
	Report *attest.Report
	// Chunks is how many preemption points the attestation offered.
	Chunks int
	// WorstCaseLatencyBytes is the longest uninterruptible span.
	WorstCaseLatencyBytes int
}

// AttestRT measures a memory region in chunks, yielding to interrupts
// between chunks: the worst-case interrupt latency is one chunk, not the
// whole region — the real-time property distinguishing TyTAN from SMART.
func (t *TyTAN) AttestRT(tr *Trustlet, regionBase, regionLen uint32, nonce []byte) (*RTAttestResult, error) {
	region := make([]byte, regionLen)
	if err := t.Platform().Mem.ReadRaw(regionBase, region); err != nil {
		return nil, err
	}
	chunks := 0
	// Incremental hash over chunks, a preemption point after each.
	h := sha256.New()
	for off := 0; off < len(region); off += t.AttestChunk {
		end := off + t.AttestChunk
		if end > len(region) {
			end = len(region)
		}
		h.Write(region[off:end])
		chunks++
		// Preemption point: pending interrupts would be serviced here.
	}
	var meas attest.Measurement
	copy(meas[:], h.Sum(nil))
	return &RTAttestResult{
		Report:                attest.NewReport(t.tl.PlatformKey(), meas, nonce, nil),
		Chunks:                chunks,
		WorstCaseLatencyBytes: t.AttestChunk,
	}, nil
}
