package sancus

import (
	"bytes"
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newSancus(t *testing.T) (*Sancus, *platform.Platform) {
	t.Helper()
	p := platform.NewEmbedded()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// moduleProg reads its own data section (a0 = data base).
const moduleProg = `
        .org 0
entry:  lw   t0, 0(a0)
        addi t0, t0, 1
        sw   t0, 0(a0)
        mv   a0, t0
        hlt
`

func TestModuleLifecycle(t *testing.T) {
	s, _ := newSancus(t)
	m, err := s.RegisterModule(tee.EnclaveConfig{
		Name: "sensor", Program: isa.MustAssemble(moduleProg), DataSize: 256,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.Call(m.Base())
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 1 {
		t.Fatalf("ret = %d", ret[0])
	}
}

func TestPCBasedAccessControl(t *testing.T) {
	s, p := newSancus(t)
	m, err := s.RegisterModule(tee.EnclaveConfig{
		Name: "holder", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 128,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load a secret into the module's data section (deployment).
	// Note: WriteRaw bypasses the arbiter, modelling provisioning.
	if err := p.Mem.WriteRaw(m.Base(), []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	// Foreign code at 0x8000 tries to read the module's data: denied by
	// the bus arbiter (PC outside module code).
	thief := isa.MustAssemble(`
        .org 0x8000
        li   t1, 0x9100
        csrw tvec, t1
        lbu  a0, 0(a1)
        hlt
        .org 0x9100
trap:   li   a0, 0xdead
        hlt
`)
	if err := p.Mem.LoadProgram(thief); err != nil {
		t.Fatal(err)
	}
	c := p.Core(0)
	c.Reset(0x8000)
	c.Regs[isa.RegA1] = m.Base()
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] == 0x99 {
		t.Fatal("foreign code read module data")
	}
	// Module's own code reads fine.
	if r := tee.ProbeOSAccess(s, m, 0, 0x99); !r.Secure {
		t.Fatalf("probe: %s", r.Detail)
	}
	// DMA is outside the threat model: the attack succeeds, as published.
	if r := tee.ProbeDMA(s, m, 0, 0x99); r.Secure {
		t.Fatalf("DMA should succeed on Sancus: %s", r.Detail)
	}
}

func TestCodeSectionImmutable(t *testing.T) {
	s, p := newSancus(t)
	m, err := s.RegisterModule(tee.EnclaveConfig{
		Name: "fixed", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 64,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	writer := isa.MustAssemble(`
        .org 0x8000
        li   t1, 0x9100
        csrw tvec, t1
        li   t0, 0x12345678
        sw   t0, 0(a1)       ; store into module code: denied
        li   a0, 1           ; (not reached)
        hlt
        .org 0x9100
trap:   li   a0, 2
        hlt
`)
	if err := p.Mem.LoadProgram(writer); err != nil {
		t.Fatal(err)
	}
	c := p.Core(0)
	c.Reset(0x8000)
	c.Regs[isa.RegA1] = m.CodeBase()
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 2 {
		t.Fatalf("store to module code did not trap: a0=%d", c.Regs[isa.RegA0])
	}
}

func TestKeyHierarchyAttestation(t *testing.T) {
	s, _ := newSancus(t)
	code := isa.MustAssemble(".org 0\nhlt").Segments[0].Data
	m, err := s.RegisterModule(tee.EnclaveConfig{
		Name: "attested", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 64,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	// A provider knowing the node-key derivation computes the same key.
	expected := s.ExpectedModuleKey(42, code)
	r, err := m.Attest([]byte("fresh-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if !attest.VerifyReport(expected, r) {
		t.Fatal("module key does not match provider derivation")
	}
	// Different vendor => different key.
	if attest.VerifyReport(s.ExpectedModuleKey(43, code), r) {
		t.Fatal("cross-vendor key verified")
	}
	// Different code => different key.
	otherCode := isa.MustAssemble(".org 0\nnop\nhlt").Segments[0].Data
	if attest.VerifyReport(s.ExpectedModuleKey(42, otherCode), r) {
		t.Fatal("tampered code key verified")
	}
}

func TestSealUnsealWithModuleKey(t *testing.T) {
	s, _ := newSancus(t)
	m, _ := s.RegisterModule(tee.EnclaveConfig{
		Name: "s1", Program: isa.MustAssemble(".org 0\nhlt")}, 1)
	m2, _ := s.RegisterModule(tee.EnclaveConfig{
		Name: "s2", Program: isa.MustAssemble(".org 0\nnop\nhlt")}, 1)
	blob, err := m.Seal([]byte("module state"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Unseal(blob)
	if err != nil || !bytes.Equal(out, []byte("module state")) {
		t.Fatalf("unseal: %q %v", out, err)
	}
	if _, err := m2.Unseal(blob); err == nil {
		t.Fatal("foreign module unsealed")
	}
}

func TestHardwareOnlyTCBCapability(t *testing.T) {
	s, _ := newSancus(t)
	caps := s.Capabilities()
	if !caps.HardwareOnlyTCB || !caps.MultipleEnclaves || caps.DMAProtection {
		t.Fatalf("capabilities wrong: %+v", caps)
	}
}

func TestDestroyScrubs(t *testing.T) {
	s, p := newSancus(t)
	m, _ := s.RegisterModule(tee.EnclaveConfig{
		Name: "gone", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 64}, 1)
	p.Mem.WriteRaw(m.Base(), []byte{1, 2, 3})
	base := m.Base()
	if err := m.Destroy(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	p.Mem.ReadRaw(base, buf)
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatal("module data not scrubbed")
	}
	if _, err := m.Call(); err == nil {
		t.Fatal("destroyed module callable")
	}
}
