// Package sancus implements Sancus (Noorman et al., USENIX Security'13)
// from Section 3.3: SMART's root of trust with the software TCB reduced to
// zero. Everything SMART did in ROM code is done by hardware here:
//
//   - a hardware key hierarchy: node key → software-provider key →
//     module key, where the module key is derived from the module's code,
//     so possession of the key attests the code;
//   - program-counter-based memory access control in the bus arbiter: a
//     module's data section is accessible only while the PC is inside the
//     module's code section (no MPU configuration, no software checks);
//   - an attestation "instruction" computing a MAC with the module key.
//
// As in the paper, DMA adversaries are outside the threat model: the bus
// arbiter checks apply to CPU masters only.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package sancus

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

// Sancus is one Sancus-enabled node.
type Sancus struct {
	plat    *platform.Platform
	nodeKey []byte

	modules map[int]*Module
	nextID  int

	arenaNext uint32
	arenaEnd  uint32
}

// Module is a protected software module: a code section and a data
// section bound together by the hardware access rules.
type Module struct {
	sc   *Sancus
	id   int
	name string
	meas attest.Measurement

	codeBase, codeSize uint32
	dataBase, dataSize uint32
	entry              uint32

	vendorID  uint32
	moduleKey []byte
	destroyed bool
}

// New initializes the node with a fresh node key and installs the
// bus-arbiter filter.
func New(p *platform.Platform) (*Sancus, error) {
	nk := make([]byte, 32)
	if _, err := rand.Read(nk); err != nil {
		return nil, err
	}
	s := &Sancus{
		plat: p, nodeKey: nk,
		modules:   map[int]*Module{},
		nextID:    1,
		arenaNext: 0x10000,
		arenaEnd:  0x40000,
	}
	p.Ctrl.AddFilter(mem.FuncFilter{FilterName: "sancus-arbiter", Fn: s.arbiterCheck})
	return s, nil
}

// arbiterCheck is the hardware access-control rule: data sections answer
// only to loads/stores issued from their module's code section. Non-CPU
// masters (DMA) are not checked — outside the threat model, as published.
func (s *Sancus) arbiterCheck(a mem.Access) mem.Action {
	if a.Init.Type != mem.InitCPU {
		return mem.ActionAllow
	}
	for _, m := range s.modules {
		if a.Addr >= m.dataBase && a.Addr-m.dataBase < m.dataSize {
			if a.PC >= m.codeBase && a.PC-m.codeBase < m.codeSize {
				return mem.ActionAllow
			}
			return mem.ActionDeny
		}
		// Code sections are readable/executable by all (code is public),
		// but writable by no one after registration.
		if a.Addr >= m.codeBase && a.Addr-m.codeBase < m.codeSize && a.Kind == mem.KindStore {
			return mem.ActionDeny
		}
	}
	return mem.ActionAllow
}

// deriveKey implements the hardware key hierarchy.
func deriveKey(parent []byte, label []byte) []byte {
	h := hmac.New(sha256.New, parent)
	h.Write(label)
	return h.Sum(nil)
}

// VendorKey derives a software-provider key from the node key.
func (s *Sancus) VendorKey(vendorID uint32) []byte {
	return deriveKey(s.nodeKey, []byte{byte(vendorID), byte(vendorID >> 8), byte(vendorID >> 16), byte(vendorID >> 24)})
}

// Name implements tee.Architecture.
func (s *Sancus) Name() string { return "Sancus (model)" }

// Class implements tee.Architecture.
func (s *Sancus) Class() platform.Class { return platform.ClassEmbedded }

// Platform implements tee.Architecture.
func (s *Sancus) Platform() *platform.Platform { return s.plat }

// Capabilities implements tee.Architecture.
func (s *Sancus) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  true,
		MemoryEncryption:  false,
		DMAProtection:     false, // DMA outside the threat model
		CacheDefense:      tee.DefenseNotApplicable,
		HardwareOnlyTCB:   true, // the distinguishing property
		RemoteAttestation: true,
		SealedStorage:     true, // module-key wrapping
		RealTime:          false,
		SecurePeripherals: false,
		CodeIsolation:     true,
	}
}

// CreateEnclave registers a protected module (vendor 1 by default).
func (s *Sancus) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	return s.RegisterModule(cfg, 1)
}

// RegisterModule loads a module's code, derives its key from the code
// contents (hardware attestation-by-key-derivation), and activates the
// access rules.
func (s *Sancus) RegisterModule(cfg tee.EnclaveConfig, vendorID uint32) (*Module, error) {
	if cfg.Program == nil || len(cfg.Program.Segments) != 1 {
		return nil, fmt.Errorf("sancus: module needs a single-segment program")
	}
	img := cfg.Program.Segments[0].Data
	codeSize := (uint32(len(img)) + 63) &^ 63
	dataSize := cfg.DataSize
	if dataSize == 0 {
		dataSize = 256
	}
	need := codeSize + dataSize
	if s.arenaNext+need > s.arenaEnd {
		return nil, fmt.Errorf("sancus: module arena exhausted")
	}
	id := s.nextID
	s.nextID++
	m := &Module{
		sc: s, id: id, name: cfg.Name,
		meas:     attest.Measure(img).Extend([]byte(cfg.Name)),
		codeBase: s.arenaNext, codeSize: codeSize,
		dataBase: s.arenaNext + codeSize, dataSize: dataSize,
		entry:    s.arenaNext + (cfg.Program.Entry - cfg.Program.Segments[0].Base),
		vendorID: vendorID,
	}
	s.arenaNext += need
	if err := s.plat.Mem.WriteRaw(m.codeBase, img); err != nil {
		return nil, err
	}
	// Hardware key derivation: K(node) -> K(vendor) -> K(module, code).
	codeNow := make([]byte, len(img))
	if err := s.plat.Mem.ReadRaw(m.codeBase, codeNow); err != nil {
		return nil, err
	}
	m.moduleKey = deriveKey(s.VendorKey(vendorID), codeNow)
	s.modules[id] = m
	return m, nil
}

// ExpectedModuleKey lets a software provider (who knows the node key
// derivation with the deployment authority) compute the key a genuine
// module would hold.
func (s *Sancus) ExpectedModuleKey(vendorID uint32, code []byte) []byte {
	return deriveKey(s.VendorKey(vendorID), code)
}

// ID implements tee.Enclave.
func (m *Module) ID() int { return m.id }

// Name implements tee.Enclave.
func (m *Module) Name() string { return m.name }

// Measurement implements tee.Enclave.
func (m *Module) Measurement() attest.Measurement { return m.meas }

// Base implements tee.Enclave.
func (m *Module) Base() uint32 { return m.dataBase }

// Size implements tee.Enclave.
func (m *Module) Size() uint32 { return m.dataSize }

// CodeBase returns the module's code section start.
func (m *Module) CodeBase() uint32 { return m.codeBase }

// Call runs the module's entry point.
func (m *Module) Call(args ...uint32) ([2]uint32, error) {
	if m.destroyed {
		return [2]uint32{}, fmt.Errorf("sancus: module %d unloaded", m.id)
	}
	c := m.sc.plat.Core(0)
	saved := *c
	c.Reset(m.entry)
	c.Priv = isa.PrivMachine
	for i, a := range args {
		if i >= 4 {
			break
		}
		c.Regs[isa.RegA0+uint8(i)] = a
	}
	res, err := c.Run(1_000_000)
	ret := [2]uint32{c.Regs[isa.RegA0], c.Regs[isa.RegA1]}
	cycles, instret := c.Cycles, c.Instret
	*c = saved
	c.Cycles, c.Instret = cycles, instret
	if err != nil {
		return ret, fmt.Errorf("sancus: module %d faulted: %w", m.id, err)
	}
	if res.Reason != cpu.StopHalt {
		return ret, fmt.Errorf("sancus: module %d did not halt: %v", m.id, res.Reason)
	}
	return ret, nil
}

// Attest is the hardware attestation instruction: MAC(moduleKey, nonce).
// A verifier holding the expected module key checks it; a module whose
// code was tampered with derives a different key and cannot produce it.
func (m *Module) Attest(nonce []byte) (*attest.Report, error) {
	return attest.NewReport(m.moduleKey, m.meas, nonce, nil), nil
}

// Seal wraps data with the module key.
func (m *Module) Seal(data []byte) ([]byte, error) {
	return attest.Seal(m.moduleKey, m.meas, data)
}

// Unseal unwraps module-key-sealed data.
func (m *Module) Unseal(blob []byte) ([]byte, error) {
	return attest.Unseal(m.moduleKey, m.meas, blob)
}

// Destroy unloads the module and scrubs its sections.
func (m *Module) Destroy() error {
	delete(m.sc.modules, m.id)
	zero := make([]byte, m.codeSize+m.dataSize)
	if err := m.sc.plat.Mem.WriteRaw(m.codeBase, zero); err != nil {
		return err
	}
	m.destroyed = true
	return nil
}
