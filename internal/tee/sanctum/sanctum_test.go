package sanctum

import (
	"bytes"
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newSanctum(t *testing.T) (*Sanctum, *platform.Platform) {
	t.Helper()
	p := platform.NewServer()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

const addEnclave = `
        .org 0
entry:  lw   t0, 0(a0)
        addi t0, t0, 5
        sw   t0, 0(a0)
        mv   a0, t0
        hlt
`

func TestEnclaveLifecycle(t *testing.T) {
	s, _ := newSanctum(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "adder", Program: isa.MustAssemble(addEnclave), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	ret, err := enc.Call(enc.DataPage())
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 5 {
		t.Fatalf("ret = %d", ret[0])
	}
	ret, _ = enc.Call(enc.DataPage())
	if ret[0] != 10 {
		t.Fatalf("second call ret = %d", ret[0])
	}
}

func TestIsolationProbes(t *testing.T) {
	s, _ := newSanctum(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "holder", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	secret := []byte{0xAB}
	if err := enc.WriteData(0, secret); err != nil {
		t.Fatal(err)
	}
	off := enc.DataPage() - enc.Base() // probe offsets are relative to Base
	// OS access: denied (bus error), unlike SGX's silent abort.
	if r := tee.ProbeOSAccess(s, e, off, 0xAB); !r.Secure {
		t.Fatalf("OS probe: %s", r.Detail)
	}
	// DMA: denied by the modified memory controller.
	if r := tee.ProbeDMA(s, e, off, 0xAB); !r.Secure {
		t.Fatalf("DMA probe: %s", r.Detail)
	}
	// Bus snoop: Sanctum has NO memory encryption — plaintext visible.
	r := tee.ProbeBusSnoop(s, e, off, 0xAB)
	if r.Secure {
		t.Fatalf("bus snoop should see plaintext on Sanctum: %s", r.Detail)
	}
}

func TestLLCPartitionDisjoint(t *testing.T) {
	s, _ := newSanctum(t)
	e1, err := s.CreateEnclave(tee.EnclaveConfig{Name: "p1", Program: isa.MustAssemble(".org 0\nhlt")})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.CreateEnclave(tee.EnclaveConfig{Name: "p2", Program: isa.MustAssemble(".org 0\nhlt")})
	if err != nil {
		t.Fatal(err)
	}
	sets1 := s.LLCSetsOf(e1.(*Enclave).Pages())
	sets2 := s.LLCSetsOf(e2.(*Enclave).Pages())
	// OS memory (color 0 region of the arena).
	osSets := s.LLCSetsOf([]uint32{s.arenaBase})
	for set := range sets1 {
		if sets2[set] {
			t.Fatalf("enclaves share LLC set %d — partition broken", set)
		}
		if osSets[set] {
			t.Fatalf("OS shares enclave LLC set %d", set)
		}
	}
	// Same-enclave pages share their color's sets (sanity).
	if e1.(*Enclave).Color() == e2.(*Enclave).Color() {
		t.Fatal("enclaves assigned the same color")
	}
}

func TestColorGeometry(t *testing.T) {
	s, p := newSanctum(t)
	cfg := p.LLC.Config()
	if s.NumColors() != cfg.Sets*cfg.LineSize/4096 {
		t.Fatalf("colors = %d", s.NumColors())
	}
	// Pages one stride apart share a color.
	if s.ColorOf(0x1000) != s.ColorOf(0x1000+s.colorStride) {
		t.Fatal("stride does not preserve color")
	}
	if s.ColorOf(0x1000) == s.ColorOf(0x2000) {
		t.Fatal("adjacent pages share a color")
	}
}

func TestFlushOnSwitch(t *testing.T) {
	s, p := newSanctum(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "toucher",
		// Touch own data page, leaving L1 lines behind.
		Program:  isa.MustAssemble(".org 0\nlw t0, 0(a0)\nhlt"),
		DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	if _, err := enc.Call(enc.DataPage()); err != nil {
		t.Fatal(err)
	}
	// After exit, no enclave state may remain in core-exclusive caches.
	if p.Core(0).Hier.InL1(enc.DataPage(), enc.ID()) {
		t.Fatal("enclave line survived context-switch flush in L1")
	}
	if p.Core(0).Hier.L2 != nil && p.Core(0).Hier.L2.Lookup(enc.DataPage(), enc.ID()) {
		t.Fatal("enclave line survived context-switch flush in L2")
	}
}

func TestAttestSealFlow(t *testing.T) {
	s, _ := newSanctum(t)
	e, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "att", Program: isa.MustAssemble(".org 0\nhlt")})
	v := attest.NewVerifier()
	v.AllowMeasurement("att", e.Measurement())
	nonce, _ := v.Challenge()
	r, err := e.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckReport(s.MonitorKey(), r); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Unseal(blob)
	if err != nil || !bytes.Equal(out, []byte("state")) {
		t.Fatalf("unseal: %q %v", out, err)
	}
}

func TestDestroyScrubsPages(t *testing.T) {
	s, _ := newSanctum(t)
	e, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "gone", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	enc := e.(*Enclave)
	enc.WriteData(0, []byte{1, 2, 3})
	page := enc.DataPage()
	if err := enc.Destroy(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := s.plat.Mem.ReadRaw(page, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatal("destroyed enclave page not scrubbed")
	}
	if _, err := enc.Call(); err == nil {
		t.Fatal("destroyed enclave callable")
	}
}

func TestRequiresSharedLLC(t *testing.T) {
	if _, err := New(platform.NewEmbedded()); err == nil {
		t.Fatal("Sanctum accepted a platform without LLC")
	}
}

func TestEnclaveImageValidation(t *testing.T) {
	s, _ := newSanctum(t)
	if _, err := s.CreateEnclave(tee.EnclaveConfig{Name: "nil"}); err == nil {
		t.Fatal("nil program accepted")
	}
	multi := isa.MustAssemble(".org 0\nhlt\n.org 0x10000\nhlt")
	if _, err := s.CreateEnclave(tee.EnclaveConfig{Name: "multi", Program: multi}); err == nil {
		t.Fatal("multi-segment image accepted")
	}
}
