// Package sanctum implements the Sanctum model from Section 3.1: enclaves
// on an open RISC-V-style platform, isolated by a machine-mode security
// monitor instead of microcode. Contrasts with SGX reproduced here:
//
//   - no memory encryption: a physical bus probe sees enclave plaintext,
//   - DMA attack protection by memory-controller modification: DMA into
//     enclave regions raises bus errors,
//   - page-table-walker checks: enclave page tables must live inside the
//     enclave's own region,
//   - LLC partitioning by page coloring: enclave pages are allocated from
//     cache colors no other domain uses, so cross-domain eviction sets
//     cannot reach enclave lines,
//   - core-exclusive caches are flushed on enclave context switches.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package sanctum

import (
	"crypto/rand"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

const pageSize = 4096

// Sanctum is one Sanctum-enabled platform with its security monitor state.
type Sanctum struct {
	plat *platform.Platform

	// Color geometry: the LLC set index covers addr[colorShift+colorBits-1
	// : 6]; page color = addr bits [colorShift : colorShift+colorBits).
	colorStride uint32 // distance between same-color pages
	numColors   int

	arenaBase, arenaSize uint32
	nextColor            int

	owner    map[uint32]int // page number -> enclave id
	enclaves map[int]*Enclave
	nextID   int

	monitorKey     []byte
	platformSecret []byte
}

// Enclave is one Sanctum enclave: a set of same-colored pages.
type Enclave struct {
	sn    *Sanctum
	id    int
	name  string
	meas  attest.Measurement
	color int

	pages    []uint32
	entry    uint32
	dataPage uint32

	destroyed bool
}

// New installs the Sanctum monitor on a platform with a shared LLC.
func New(p *platform.Platform) (*Sanctum, error) {
	if p.LLC == nil {
		return nil, fmt.Errorf("sanctum: platform has no shared LLC to partition")
	}
	cfg := p.LLC.Config()
	setsBytes := uint32(cfg.Sets * cfg.LineSize) // bytes covered by one pass over all sets
	numColors := int(setsBytes / pageSize)
	if numColors < 2 {
		return nil, fmt.Errorf("sanctum: LLC too small for page coloring")
	}
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, err
	}
	s := &Sanctum{
		plat:           p,
		colorStride:    setsBytes,
		numColors:      numColors,
		arenaBase:      8 << 20,
		arenaSize:      16 << 20,
		owner:          map[uint32]int{},
		enclaves:       map[int]*Enclave{},
		nextID:         1,
		monitorKey:     secret[16:],
		platformSecret: secret,
	}
	p.Ctrl.AddFilter(mem.FuncFilter{FilterName: "sanctum-region", Fn: s.regionCheck})
	return s, nil
}

// regionCheck is the modified memory controller: enclave pages are
// reachable only by their owner's CPU accesses. DMA is denied outright
// (bus error), unlike SGX's silent abort.
func (s *Sanctum) regionCheck(a mem.Access) mem.Action {
	owner, protected := s.owner[a.Addr/pageSize]
	if !protected {
		return mem.ActionAllow
	}
	if a.Init.Type != mem.InitCPU {
		return mem.ActionDeny
	}
	if a.Domain == owner {
		return mem.ActionAllow
	}
	return mem.ActionDeny
}

// Name implements tee.Architecture.
func (s *Sanctum) Name() string { return "Sanctum (model)" }

// Class implements tee.Architecture.
func (s *Sanctum) Class() platform.Class { return platform.ClassServer }

// Platform implements tee.Architecture.
func (s *Sanctum) Platform() *platform.Platform { return s.plat }

// Capabilities implements tee.Architecture.
func (s *Sanctum) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  true,
		MemoryEncryption:  false, // plaintext DRAM, by design
		DMAProtection:     true,
		CacheDefense:      tee.DefenseLLCPartition,
		FlushOnSwitch:     true,
		RemoteAttestation: true,
		SealedStorage:     true,
		RealTime:          false,
		SecurePeripherals: false,
		CodeIsolation:     true,
	}
}

// ColorOf returns the page color of a physical address.
func (s *Sanctum) ColorOf(addr uint32) int {
	return int(addr % s.colorStride / pageSize)
}

// NumColors returns the number of page colors the LLC geometry yields.
func (s *Sanctum) NumColors() int { return s.numColors }

// allocColorPages hands out n pages of one exclusive color from the arena.
func (s *Sanctum) allocColorPages(n, id int) (int, []uint32, error) {
	if s.nextColor >= s.numColors-1 {
		return 0, nil, fmt.Errorf("sanctum: out of cache colors")
	}
	// Color 0 stays with the OS; enclaves take colors from the top.
	color := s.numColors - 1 - s.nextColor
	s.nextColor++
	var pages []uint32
	for k := uint32(0); len(pages) < n; k++ {
		pa := s.arenaBase + k*s.colorStride + uint32(color)*pageSize
		if pa+pageSize > s.arenaBase+s.arenaSize {
			return 0, nil, fmt.Errorf("sanctum: arena exhausted for color %d", color)
		}
		pages = append(pages, pa)
		s.owner[pa/pageSize] = id
	}
	return color, pages, nil
}

// CreateEnclave allocates exclusively colored pages, copies and measures
// the enclave image.
func (s *Sanctum) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	if cfg.Program == nil || len(cfg.Program.Segments) == 0 {
		return nil, fmt.Errorf("sanctum: enclave %q has no program", cfg.Name)
	}
	img := cfg.Program.Segments[0].Data
	if len(cfg.Program.Segments) != 1 || len(img) > pageSize {
		return nil, fmt.Errorf("sanctum: enclave image must be a single segment of at most one page")
	}
	id := s.nextID
	s.nextID++
	pages := 1 + int((cfg.DataSize+pageSize-1)/pageSize)
	if cfg.DataSize == 0 {
		pages = 2 // always give an enclave a data page
	}
	color, pp, err := s.allocColorPages(pages, id)
	if err != nil {
		return nil, err
	}
	// The monitor copies the image with monitor privileges (raw write).
	if err := s.plat.Mem.WriteRaw(pp[0], img); err != nil {
		return nil, err
	}
	entryOff := cfg.Program.Entry - cfg.Program.Segments[0].Base
	e := &Enclave{
		sn: s, id: id, name: cfg.Name,
		meas:  attest.Measure(img).Extend([]byte(cfg.Name)),
		color: color,
		pages: pp, entry: pp[0] + entryOff, dataPage: pp[1],
	}
	s.enclaves[id] = e
	return e, nil
}

// ID implements tee.Enclave.
func (e *Enclave) ID() int { return e.id }

// Name implements tee.Enclave.
func (e *Enclave) Name() string { return e.name }

// Measurement implements tee.Enclave.
func (e *Enclave) Measurement() attest.Measurement { return e.meas }

// Base implements tee.Enclave (the code page).
func (e *Enclave) Base() uint32 { return e.pages[0] }

// Size implements tee.Enclave (span of the first page; Sanctum enclaves
// are page sets, not ranges).
func (e *Enclave) Size() uint32 { return uint32(len(e.pages)) * pageSize }

// DataPage returns the enclave's first data page.
func (e *Enclave) DataPage() uint32 { return e.dataPage }

// Color returns the enclave's exclusive LLC color.
func (e *Enclave) Color() int { return e.color }

// Call enters the enclave on core 0. On exit the monitor flushes the
// core-exclusive caches (L1 and L2) — Sanctum's context-switch hygiene.
func (e *Enclave) Call(args ...uint32) ([2]uint32, error) {
	if e.destroyed {
		return [2]uint32{}, fmt.Errorf("sanctum: enclave %d destroyed", e.id)
	}
	c := e.sn.plat.Core(0)
	saved := *c
	c.Reset(e.entry)
	c.Priv = isa.PrivUser
	c.Domain = e.id
	for i, a := range args {
		if i >= 4 {
			break
		}
		c.Regs[isa.RegA0+uint8(i)] = a
	}
	res, err := c.Run(2_000_000)
	ret := [2]uint32{c.Regs[isa.RegA0], c.Regs[isa.RegA1]}
	cycles, instret := c.Cycles, c.Instret
	*c = saved
	c.Cycles, c.Instret = cycles, instret
	// Flush core-exclusive caches on the way out.
	c.Hier.FlushL1()
	if c.Hier.L2 != nil {
		c.Hier.L2.FlushAll()
	}
	if err != nil {
		return ret, fmt.Errorf("sanctum: enclave %d faulted: %w", e.id, err)
	}
	if res.Reason != cpu.StopHalt {
		return ret, fmt.Errorf("sanctum: enclave %d did not exit cleanly: %v", e.id, res.Reason)
	}
	return ret, nil
}

// WriteData lets the monitor provision enclave data (raw monitor write).
func (e *Enclave) WriteData(off uint32, buf []byte) error {
	return e.sn.plat.Mem.WriteRaw(e.dataPage+off, buf)
}

// ReadData reads enclave data with monitor privileges.
func (e *Enclave) ReadData(off uint32, buf []byte) error {
	return e.sn.plat.Mem.ReadRaw(e.dataPage+off, buf)
}

// Attest implements tee.Enclave: monitor-keyed HMAC report.
func (e *Enclave) Attest(nonce []byte) (*attest.Report, error) {
	return attest.NewReport(e.sn.monitorKey, e.meas, nonce, nil), nil
}

// MonitorKey exposes the report verification key to local verifiers.
func (s *Sanctum) MonitorKey() []byte { return s.monitorKey }

// Seal implements tee.Enclave.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	return attest.Seal(e.sn.platformSecret, e.meas, data)
}

// Unseal implements tee.Enclave.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	return attest.Unseal(e.sn.platformSecret, e.meas, blob)
}

// Destroy releases the enclave's pages and scrubs them.
func (e *Enclave) Destroy() error {
	zero := make([]byte, pageSize)
	for _, pa := range e.pages {
		if err := e.sn.plat.Mem.WriteRaw(pa, zero); err != nil {
			return err
		}
		delete(e.sn.owner, pa/pageSize)
	}
	e.destroyed = true
	delete(e.sn.enclaves, e.id)
	return nil
}

// LLCSetsOf returns the set indices the enclave's pages occupy in the
// shared LLC — used to verify partition disjointness.
func (s *Sanctum) LLCSetsOf(pages []uint32) map[int]bool {
	out := map[int]bool{}
	cfg := s.plat.LLC.Config()
	for _, pa := range pages {
		for off := uint32(0); off < pageSize; off += uint32(cfg.LineSize) {
			out[s.plat.LLC.SetIndexOf(pa+off, 0)] = true
		}
	}
	return out
}

// Pages exposes the enclave's page list for partition verification.
func (e *Enclave) Pages() []uint32 { return e.pages }
