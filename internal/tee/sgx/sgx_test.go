package sgx

import (
	"bytes"
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

func newSGX(t *testing.T) (*SGX, *platform.Platform) {
	t.Helper()
	p := platform.NewServer()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// counterEnclave increments a counter in its data page and returns it.
// a0 = data base address.
const counterEnclave = `
        .org 0
entry:  lw   t0, 0(a0)
        addi t0, t0, 1
        sw   t0, 0(a0)
        mv   a0, t0
        hlt
`

func TestEnclaveLifecycleAndCall(t *testing.T) {
	s, _ := newSGX(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name:     "counter",
		Program:  isa.MustAssemble(counterEnclave),
		DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	for want := uint32(1); want <= 3; want++ {
		ret, err := enc.Call(enc.DataBase())
		if err != nil {
			t.Fatal(err)
		}
		if ret[0] != want {
			t.Fatalf("counter = %d, want %d", ret[0], want)
		}
	}
}

func TestEnclaveMemoryProtectedFromOS(t *testing.T) {
	s, p := newSGX(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "secret", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	secret := []byte("enclave secret!!")
	if err := enc.WriteData(0, secret); err != nil {
		t.Fatal(err)
	}
	// OS-privilege read: abort value, not the secret, and NO fault.
	r := tee.ProbeOSAccess(s, e, enc.DataBase()-enc.Base(), secret[0])
	if !r.Secure {
		t.Fatalf("OS access probe: %s", r.Detail)
	}
	// DMA attack: abort values.
	r = tee.ProbeDMA(s, e, enc.DataBase()-enc.Base(), secret[0])
	if !r.Secure {
		t.Fatalf("DMA probe: %s", r.Detail)
	}
	// Physical bus snoop: ciphertext only (the MEE at work).
	r = tee.ProbeBusSnoop(s, e, enc.DataBase()-enc.Base(), secret[0])
	if !r.Secure {
		t.Fatalf("bus snoop probe: %s", r.Detail)
	}
	// The enclave itself reads its plaintext fine.
	got := make([]byte, len(secret))
	if err := enc.ReadData(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("enclave read = %q", got)
	}
	_ = p
}

func TestCrossEnclaveIsolation(t *testing.T) {
	s, _ := newSGX(t)
	// Enclave A holds a secret; enclave B tries to read it.
	a, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "a", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	encA := a.(*Enclave)
	if err := encA.WriteData(0, []byte{0x5e, 0xc2}); err != nil {
		t.Fatal(err)
	}
	// B's program loads from an address passed in a0 (A's data page).
	b, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "b", Program: isa.MustAssemble(".org 0\nlbu a0, 0(a0)\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := b.(*Enclave).Call(encA.DataBase())
	if err != nil {
		t.Fatal(err)
	}
	if byte(ret[0]) == 0x5e {
		t.Fatal("enclave B read enclave A's plaintext")
	}
	if ret[0] != 0xff {
		t.Fatalf("cross-enclave read = %#x, want abort value 0xff", ret[0])
	}
}

func TestAttestAndQuote(t *testing.T) {
	s, _ := newSGX(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "attested", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := attest.NewVerifier()
	v.AllowMeasurement("attested", e.Measurement())
	nonce, _ := v.Challenge()
	// Local attestation.
	r, err := e.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckReport(s.ReportKey(), r); err != nil {
		t.Fatalf("local attestation failed: %v", err)
	}
	// Remote attestation via quote.
	nonce2, _ := v.Challenge()
	q, err := e.(*Enclave).Quote(nonce2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckQuote(s.QuotingPublic().Public(), q); err != nil {
		t.Fatalf("remote attestation failed: %v", err)
	}
}

func TestSealUnsealBoundToEnclave(t *testing.T) {
	s, _ := newSGX(t)
	e1, _ := s.CreateEnclave(tee.EnclaveConfig{
		Name: "e1", Program: isa.MustAssemble(".org 0\nhlt")})
	e2, _ := s.CreateEnclave(tee.EnclaveConfig{
		Name: "e2", Program: isa.MustAssemble(".org 0\nnop\nhlt")})
	blob, err := e1.Seal([]byte("persistent state"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e1.Unseal(blob)
	if err != nil || string(out) != "persistent state" {
		t.Fatalf("unseal: %q, %v", out, err)
	}
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("different enclave unsealed the blob")
	}
}

func TestPageSwapRoundTripAndReplay(t *testing.T) {
	s, _ := newSGX(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "swapped", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	if err := enc.WriteData(0, []byte("page payload")); err != nil {
		t.Fatal(err)
	}
	page := enc.DataBase()
	blob, err := s.EWB(enc, page)
	if err != nil {
		t.Fatal(err)
	}
	// Page content zeroed after eviction.
	raw := make([]byte, 12)
	if err := s.mee.ReadPlain(page, raw); err == nil && bytes.Equal(raw, []byte("page payload")) {
		t.Fatal("evicted page still holds plaintext")
	}
	// Blob is ciphertext.
	if bytes.Contains(blob.Payload, []byte("page payload")) {
		t.Fatal("swap blob holds plaintext")
	}
	if err := s.ELD(blob); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if err := enc.ReadData(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("page payload")) {
		t.Fatalf("after ELD: %q", got)
	}
	// ELD fills L1 with the page's plaintext lines (Foreshadow preload).
	if !s.plat.Core(0).Hier.InL1(page, enc.ID()) {
		t.Fatal("ELD did not preload L1")
	}
	// Tampered blob rejected.
	blob2, err := s.EWB(enc, page)
	if err != nil {
		t.Fatal(err)
	}
	blob2.Payload[len(blob2.Payload)-1] ^= 1
	if err := s.ELD(blob2); err == nil {
		t.Fatal("tampered swap blob accepted")
	}
}

func TestEWBRejectsForeignPage(t *testing.T) {
	s, _ := newSGX(t)
	e1, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "x", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	e2, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "y", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	if _, err := s.EWB(e1.(*Enclave), e2.(*Enclave).DataBase()); err == nil {
		t.Fatal("EWB of foreign page allowed")
	}
}

func TestDestroyFreesAndZeroes(t *testing.T) {
	s, _ := newSGX(t)
	e, _ := s.CreateEnclave(tee.EnclaveConfig{
		Name: "tmp", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	enc := e.(*Enclave)
	enc.WriteData(0, []byte("gone"))
	base, size := enc.Base(), enc.Size()
	if err := e.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Call(); err == nil {
		t.Fatal("destroyed enclave callable")
	}
	// Pages reusable by a new enclave.
	e2, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "reuse", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Base() > base+size {
		t.Log("allocator did not reuse freed pages (acceptable but unexpected)")
	}
}

func TestMeasurementDiffersByCodeAndName(t *testing.T) {
	s, _ := newSGX(t)
	a, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "m1", Program: isa.MustAssemble(".org 0\nhlt")})
	b, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "m2", Program: isa.MustAssemble(".org 0\nhlt")})
	c, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "m1", Program: isa.MustAssemble(".org 0\nnop\nhlt")})
	if a.Measurement() == b.Measurement() || a.Measurement() == c.Measurement() {
		t.Fatal("measurements collide")
	}
}

func TestCapabilitiesMatchProbes(t *testing.T) {
	s, _ := newSGX(t)
	caps := s.Capabilities()
	if !caps.MemoryEncryption || !caps.DMAProtection || caps.CacheDefense != tee.DefenseNone {
		t.Fatalf("unexpected capability claims: %+v", caps)
	}
	if !caps.MultipleEnclaves || !caps.RemoteAttestation || !caps.SealedStorage {
		t.Fatalf("unexpected capability claims: %+v", caps)
	}
}

func TestQuotingKeyInEPC(t *testing.T) {
	s, _ := newSGX(t)
	addr, n := s.QuotingKeyAddress()
	if addr < s.EPCBase() || n == 0 {
		t.Fatal("quoting key not inside EPC")
	}
	// The key bytes are readable through the MEE (as the quoting enclave
	// would) and match the signing key.
	buf := make([]byte, n)
	if err := s.mee.ReadPlain(addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.qk.PrivateBytes()) {
		t.Fatal("EPC quoting key mismatch")
	}
}
