// Package sgx implements the Intel SGX model from Section 3.1: user-space
// enclaves in a processor-reserved, MEE-encrypted page cache (EPC) with
// per-page ownership checks (EPCM), abort-page semantics for outside
// accesses, local reports and ECDSA quotes, sealed storage, and secure
// page swapping (EWB/ELD) — including ELD's property of decrypting enclave
// pages into the L1 cache, which Foreshadow abuses.
//
// The TCB is the CPU plus "microcode": enclave management runs as Go code
// below the architectural interface, matching SGX's microcode TCB.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package sgx

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
)

const pageSize = 4096

// SGX is one SGX-enabled platform instance.
type SGX struct {
	plat *platform.Platform
	mee  *mem.MEE

	epcBase, epcSize uint32
	epcm             map[uint32]int // page number -> owner enclave ID (0 free)
	enclaves         map[int]*Enclave
	nextID           int

	platformSecret []byte
	reportKey      []byte
	qk             *attest.QuotingKey

	// quotingEnclave holds the attestation key material inside EPC — the
	// asset Foreshadow extracts.
	quotingEnclave *Enclave

	// MitigateL1TF enables the microcode fix: flush L1 on every enclave
	// exit so terminal faults find nothing to forward.
	MitigateL1TF bool

	swapKey []byte
	swapSeq uint64
}

// Enclave is one SGX enclave.
type Enclave struct {
	sgx  *SGX
	id   int
	name string
	meas attest.Measurement

	base, size uint32
	entry      uint32
	dataBase   uint32

	destroyed bool
}

// New reserves the EPC on the platform, keys the MEE over it, and installs
// the EPCM access filter.
func New(p *platform.Platform) (*SGX, error) {
	const epcBase, epcSize = 0x1000000, 0x200000 // 2 MiB EPC at 16 MiB
	meeKey := make([]byte, 16)
	if _, err := rand.Read(meeKey); err != nil {
		return nil, err
	}
	mee, err := mem.NewMEE(p.Mem, epcBase, epcSize, meeKey)
	if err != nil {
		return nil, fmt.Errorf("sgx: attach MEE: %w", err)
	}
	if err := mee.Init(); err != nil {
		return nil, err
	}
	p.Ctrl.AttachMEE(mee)

	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, err
	}
	qk, err := attest.NewQuotingKey()
	if err != nil {
		return nil, err
	}
	s := &SGX{
		plat: p, mee: mee,
		epcBase: epcBase, epcSize: epcSize,
		epcm:           map[uint32]int{},
		enclaves:       map[int]*Enclave{},
		nextID:         1,
		platformSecret: secret,
		reportKey:      attest.SealKey(secret, attest.Measure([]byte("sgx-report-key"))),
		swapKey:        secret[:16],
		qk:             qk,
	}
	p.Ctrl.AddFilter(mem.FuncFilter{FilterName: "sgx-epcm", Fn: s.epcmCheck})

	// The architectural quoting enclave: its data region holds the ECDSA
	// attestation scalar, in EPC, like the real quoting enclave's sealed
	// key material.
	qe, err := s.CreateEnclave(tee.EnclaveConfig{
		Name:     "quoting-enclave",
		Program:  isa.MustAssemble(".org 0\nhlt"),
		DataSize: pageSize,
	})
	if err != nil {
		return nil, fmt.Errorf("sgx: quoting enclave: %w", err)
	}
	s.quotingEnclave = qe.(*Enclave)
	kb := qk.PrivateBytes()
	if err := s.mee.WritePlain(s.quotingEnclave.dataBase, kb); err != nil {
		return nil, err
	}
	return s, nil
}

// epcmCheck is the hardware page-ownership check. Crucially, outside
// accesses get ActionAbort (reads return all-ones, no exception): the
// abort-page semantics that make SGX immune to plain Meltdown.
func (s *SGX) epcmCheck(a mem.Access) mem.Action {
	if a.Addr < s.epcBase || a.Addr-s.epcBase >= s.epcSize {
		return mem.ActionAllow
	}
	if a.Init.Type != mem.InitCPU {
		return mem.ActionAbort // DMA sees abort values
	}
	owner := s.epcm[a.Addr/pageSize]
	if owner != 0 && a.Domain == owner {
		return mem.ActionAllow
	}
	return mem.ActionAbort
}

// Name implements tee.Architecture.
func (s *SGX) Name() string { return "Intel SGX (model)" }

// Class implements tee.Architecture.
func (s *SGX) Class() platform.Class { return platform.ClassServer }

// Platform implements tee.Architecture.
func (s *SGX) Platform() *platform.Platform { return s.plat }

// Capabilities implements tee.Architecture.
func (s *SGX) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  true,
		MemoryEncryption:  true,
		DMAProtection:     true,
		CacheDefense:      tee.DefenseNone, // "SGX ... does not provide cache side-channel protection"
		FlushOnSwitch:     false,
		RemoteAttestation: true,
		SealedStorage:     true,
		RealTime:          false,
		SecurePeripherals: false, // no secure I/O paths, unlike TrustZone
		CodeIsolation:     true,
	}
}

// EPCBase returns the EPC range start (for attack harnesses).
func (s *SGX) EPCBase() uint32 { return s.epcBase }

// QuotingKeyAddress returns the physical address of the attestation key
// inside the quoting enclave — the Foreshadow target.
func (s *SGX) QuotingKeyAddress() (uint32, int) {
	return s.quotingEnclave.dataBase, len(s.qk.PrivateBytes())
}

// QuotingPublic exposes the platform verification key.
func (s *SGX) QuotingPublic() *attest.QuotingKey { return s.qk }

// QuotingEnclaveHandle exposes the quoting enclave for paging operations
// (the OS legitimately manages EPC paging for every enclave — that is the
// design decision Foreshadow abuses).
func (s *SGX) QuotingEnclaveHandle() *Enclave { return s.quotingEnclave }

func (s *SGX) allocPages(n int, owner int) (uint32, error) {
	pages := s.epcSize / pageSize
	for run := uint32(0); run+uint32(n) <= pages; run++ {
		free := true
		for i := uint32(0); i < uint32(n); i++ {
			if s.epcm[(s.epcBase+(run+i)*pageSize)/pageSize] != 0 {
				free = false
				break
			}
		}
		if free {
			for i := uint32(0); i < uint32(n); i++ {
				s.epcm[(s.epcBase+(run+i)*pageSize)/pageSize] = owner
			}
			return s.epcBase + run*pageSize, nil
		}
	}
	return 0, fmt.Errorf("sgx: EPC exhausted (%d pages requested)", n)
}

// CreateEnclave implements ECREATE/EADD/EEXTEND/EINIT: pages are
// allocated, the image is copied into encrypted EPC and measured.
func (s *SGX) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	if cfg.Program == nil || len(cfg.Program.Segments) == 0 {
		return nil, fmt.Errorf("sgx: enclave %q has no program", cfg.Name)
	}
	id := s.nextID
	s.nextID++

	// Linearize the image from program segments (offsets are relative to
	// the first segment base).
	img, entryOff, err := linearize(cfg.Program)
	if err != nil {
		return nil, err
	}
	codePages := (uint32(len(img)) + pageSize - 1) / pageSize
	dataPages := (cfg.DataSize + pageSize - 1) / pageSize
	base, err := s.allocPages(int(codePages+dataPages), id)
	if err != nil {
		return nil, err
	}
	// EADD: copy through the MEE (plaintext never hits the bus).
	if err := s.mee.WritePlain(base, img); err != nil {
		return nil, err
	}
	meas := attest.Measure(img).Extend([]byte(cfg.Name))
	e := &Enclave{
		sgx: s, id: id, name: cfg.Name, meas: meas,
		base: base, size: (codePages + dataPages) * pageSize,
		entry:    base + entryOff,
		dataBase: base + codePages*pageSize,
	}
	s.enclaves[id] = e
	return e, nil
}

func linearize(p *isa.Program) ([]byte, uint32, error) {
	base := p.Segments[0].Base
	end := base
	for _, seg := range p.Segments {
		if seg.Base < base {
			base = seg.Base
		}
		if seg.Base+uint32(len(seg.Data)) > end {
			end = seg.Base + uint32(len(seg.Data))
		}
	}
	if end-base > 1<<20 {
		return nil, 0, fmt.Errorf("sgx: image too large (%d bytes)", end-base)
	}
	img := make([]byte, end-base)
	for _, seg := range p.Segments {
		copy(img[seg.Base-base:], seg.Data)
	}
	return img, p.Entry - base, nil
}

// ID implements tee.Enclave.
func (e *Enclave) ID() int { return e.id }

// Name implements tee.Enclave.
func (e *Enclave) Name() string { return e.name }

// Measurement implements tee.Enclave (MRENCLAVE).
func (e *Enclave) Measurement() attest.Measurement { return e.meas }

// Base implements tee.Enclave.
func (e *Enclave) Base() uint32 { return e.base }

// Size implements tee.Enclave.
func (e *Enclave) Size() uint32 { return e.size }

// Call implements EENTER/EEXIT: the core switches into the enclave's
// security domain, runs the enclave code in user mode, and switches back.
// On exit the L1 is flushed only when the L1TF mitigation is enabled.
func (e *Enclave) Call(args ...uint32) ([2]uint32, error) {
	if e.destroyed {
		return [2]uint32{}, fmt.Errorf("sgx: enclave %d destroyed", e.id)
	}
	c := e.sgx.plat.Core(0)
	saved := *c
	c.Reset(e.entry)
	c.Priv = isa.PrivUser
	c.Domain = e.id
	for i, a := range args {
		if i >= 4 {
			break
		}
		c.Regs[isa.RegA0+uint8(i)] = a
	}
	res, err := c.Run(2_000_000)
	ret := [2]uint32{c.Regs[isa.RegA0], c.Regs[isa.RegA1]}
	// AEX/EEXIT: restore the host context; domain drops to untrusted.
	cycles, instret := c.Cycles, c.Instret
	*c = saved
	c.Cycles, c.Instret = cycles, instret
	if e.sgx.MitigateL1TF {
		c.Hier.FlushL1()
	}
	if err != nil {
		return ret, fmt.Errorf("sgx: enclave %d faulted: %w", e.id, err)
	}
	if res.Reason != cpu.StopHalt {
		return ret, fmt.Errorf("sgx: enclave %d did not exit cleanly: %v", e.id, res.Reason)
	}
	return ret, nil
}

// ReadData / WriteData move plaintext between the host harness and the
// enclave's data region through the MEE (modeling in-enclave accesses by
// trusted code paths).
func (e *Enclave) ReadData(off uint32, buf []byte) error {
	return e.sgx.mee.ReadPlain(e.dataBase+off, buf)
}

// WriteData writes into the enclave data region.
func (e *Enclave) WriteData(off uint32, buf []byte) error {
	return e.sgx.mee.WritePlain(e.dataBase+off, buf)
}

// DataBase returns the physical base of the data region.
func (e *Enclave) DataBase() uint32 { return e.dataBase }

// Attest implements EREPORT: a local report MACed with the platform
// report key.
func (e *Enclave) Attest(nonce []byte) (*attest.Report, error) {
	return attest.NewReport(e.sgx.reportKey, e.meas, nonce, nil), nil
}

// Quote upgrades a local report to a remotely verifiable ECDSA quote via
// the quoting enclave.
func (e *Enclave) Quote(nonce []byte) (*attest.Quote, error) {
	r, _ := e.Attest(nonce)
	if !attest.VerifyReport(e.sgx.reportKey, r) {
		return nil, fmt.Errorf("sgx: local report verification failed")
	}
	return e.sgx.qk.Sign(r)
}

// ReportKey exposes the local-attestation key to verifiers on the same
// platform (local attestation's shared secret).
func (s *SGX) ReportKey() []byte { return s.reportKey }

// Seal implements tee.Enclave: AES-GCM under a key derived from the
// platform secret and MRENCLAVE.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	return attest.Seal(e.sgx.platformSecret, e.meas, data)
}

// Unseal implements tee.Enclave.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	return attest.Unseal(e.sgx.platformSecret, e.meas, blob)
}

// Destroy implements EREMOVE for all the enclave's pages.
func (e *Enclave) Destroy() error {
	for p := e.base / pageSize; p < (e.base+e.size)/pageSize; p++ {
		delete(e.sgx.epcm, p)
	}
	zero := make([]byte, e.size)
	if err := e.sgx.mee.WritePlain(e.base, zero); err != nil {
		return err
	}
	e.destroyed = true
	delete(e.sgx.enclaves, e.id)
	return nil
}

// SwapBlob is an encrypted, versioned evicted page.
type SwapBlob struct {
	Page    uint32
	Owner   int
	Seq     uint64
	Payload []byte // sealed page contents
}

// EWB evicts an enclave page to untrusted storage: the page is decrypted
// from the EPC, re-encrypted under the swapping key with a version number
// (anti-replay), and the EPC slot is freed.
func (s *SGX) EWB(e *Enclave, pageAddr uint32) (*SwapBlob, error) {
	if pageAddr%pageSize != 0 || s.epcm[pageAddr/pageSize] != e.id {
		return nil, fmt.Errorf("sgx: EWB of page %#x not owned by enclave %d", pageAddr, e.id)
	}
	pt := make([]byte, pageSize)
	if err := s.mee.ReadPlain(pageAddr, pt); err != nil {
		return nil, err
	}
	s.swapSeq++
	var aad [12]byte
	binary.LittleEndian.PutUint32(aad[0:], pageAddr)
	binary.LittleEndian.PutUint64(aad[4:], s.swapSeq)
	sealed, err := attest.Seal(s.swapKey, attest.Measure(aad[:]), pt)
	if err != nil {
		return nil, err
	}
	zero := make([]byte, pageSize)
	if err := s.mee.WritePlain(pageAddr, zero); err != nil {
		return nil, err
	}
	delete(s.epcm, pageAddr/pageSize)
	return &SwapBlob{Page: pageAddr, Owner: e.id, Seq: s.swapSeq, Payload: sealed}, nil
}

// ELD loads an evicted page back into the EPC. Faithfully to the hardware,
// the decrypted contents pass through the L1 data cache — the behaviour
// Foreshadow exploits to preload arbitrary enclave pages into L1
// ("arbitrary encrypted enclave pages can be externally forced to be
// decrypted to the L1 cache using SGX's secure page swapping").
func (s *SGX) ELD(blob *SwapBlob) error {
	if s.epcm[blob.Page/pageSize] != 0 {
		return fmt.Errorf("sgx: ELD target page %#x in use", blob.Page)
	}
	var aad [12]byte
	binary.LittleEndian.PutUint32(aad[0:], blob.Page)
	binary.LittleEndian.PutUint64(aad[4:], blob.Seq)
	pt, err := attest.Unseal(s.swapKey, attest.Measure(aad[:]), blob.Payload)
	if err != nil {
		return fmt.Errorf("sgx: ELD integrity/replay check failed: %w", err)
	}
	if err := s.mee.WritePlain(blob.Page, pt); err != nil {
		return err
	}
	s.epcm[blob.Page/pageSize] = blob.Owner
	// The decrypt path fills L1 lines with the page's plaintext, tagged
	// with the owner's domain.
	h := s.plat.Core(0).Hier
	for off := uint32(0); off < pageSize; off += 64 {
		h.Data(blob.Page+off, false, blob.Owner)
	}
	return nil
}
