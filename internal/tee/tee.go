// Package tee defines the common contract for the eight hardware-assisted
// security architectures surveyed in Section 3, plus the capability probes
// that regenerate the architecture-comparison matrix (TAB2) from measured
// behaviour instead of from claims.
package tee

import (
	"bytes"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
)

// CacheDefense names the cache side-channel defense an architecture
// provides for its enclaves (Section 4.1's comparison).
type CacheDefense string

const (
	// DefenseNone: no architectural defense (SGX, TrustZone, embedded).
	DefenseNone CacheDefense = "none"
	// DefenseLLCPartition: shared-LLC partitioning by page coloring
	// (Sanctum).
	DefenseLLCPartition CacheDefense = "llc-partition"
	// DefenseCacheExclusion: enclave memory excluded from shared caches
	// (Sanctuary).
	DefenseCacheExclusion CacheDefense = "cache-exclusion"
	// DefenseNotApplicable: the platform has no shared caches to attack.
	DefenseNotApplicable CacheDefense = "n/a (no shared cache)"
)

// Capabilities describes an architecture's mechanism set. TAB2 cross-
// checks every claim against a probe.
type Capabilities struct {
	MultipleEnclaves  bool
	MemoryEncryption  bool
	DMAProtection     bool
	CacheDefense      CacheDefense
	FlushOnSwitch     bool // flush core-exclusive caches at enclave switches
	HardwareOnlyTCB   bool
	RemoteAttestation bool
	SealedStorage     bool
	RealTime          bool
	SecurePeripherals bool
	CodeIsolation     bool // does the TEE isolate code at all (SMART: no)
}

// EnclaveConfig describes an enclave to create.
type EnclaveConfig struct {
	Name string
	// Program is the enclave's code; its entry point receives arguments
	// in a0..a3 and returns in a0/a1, ending with HLT (architectures
	// translate HLT into enclave exit).
	Program *isa.Program
	// DataSize reserves writable enclave memory beyond the image.
	DataSize uint32
}

// Enclave is a unit of isolated execution. Architectures without true
// enclaves (SMART, Sancus) implement the subset they support and return
// ErrUnsupported for the rest.
type Enclave interface {
	ID() int
	Name() string
	Measurement() attest.Measurement
	// Call runs the enclave's entry point with up to four arguments,
	// returning a0 and a1.
	Call(args ...uint32) ([2]uint32, error)
	// Attest produces a report bound to the challenger's nonce.
	Attest(nonce []byte) (*attest.Report, error)
	// Seal / Unseal bind data to the enclave identity.
	Seal(data []byte) ([]byte, error)
	Unseal(blob []byte) ([]byte, error)
	// Base and Size locate the enclave's physical memory, used by the
	// attack probes.
	Base() uint32
	Size() uint32
	Destroy() error
}

// Architecture is one hardware-assisted security architecture instance.
type Architecture interface {
	Name() string
	Class() platform.Class
	Platform() *platform.Platform
	Capabilities() Capabilities
	CreateEnclave(cfg EnclaveConfig) (Enclave, error)
}

// ErrUnsupported marks operations an architecture does not provide.
var ErrUnsupported = fmt.Errorf("tee: operation not supported by this architecture")

// ProbeResult is a measured verdict for one capability probe.
type ProbeResult struct {
	Name   string
	Secure bool
	Detail string
}

// ProbeDMA attempts a DMA read of the enclave's memory and reports whether
// the secret leaked. secretOff/secret locate a known plaintext byte the
// enclave wrote.
func ProbeDMA(a Architecture, e Enclave, secretOff uint32, secret byte) ProbeResult {
	buf := make([]byte, 1)
	err := a.Platform().DMA.ReadInto(e.Base()+secretOff, buf)
	switch {
	case err != nil:
		return ProbeResult{Name: "dma-attack", Secure: true,
			Detail: "DMA access denied by controller"}
	case buf[0] == secret:
		return ProbeResult{Name: "dma-attack", Secure: false,
			Detail: "DMA read returned enclave plaintext"}
	default:
		return ProbeResult{Name: "dma-attack", Secure: true,
			Detail: fmt.Sprintf("DMA read returned %#x (not the secret)", buf[0])}
	}
}

// ProbeBusSnoop models a physical bus/cold-boot probe reading raw memory
// cells: only memory encryption defeats it.
func ProbeBusSnoop(a Architecture, e Enclave, secretOff uint32, secret byte) ProbeResult {
	buf := make([]byte, 1)
	if err := a.Platform().Mem.ReadRaw(e.Base()+secretOff, buf); err != nil {
		return ProbeResult{Name: "bus-snoop", Secure: true, Detail: "region unreadable"}
	}
	if buf[0] == secret {
		return ProbeResult{Name: "bus-snoop", Secure: false,
			Detail: "raw memory holds enclave plaintext (no memory encryption)"}
	}
	return ProbeResult{Name: "bus-snoop", Secure: true,
		Detail: "raw memory holds ciphertext"}
}

// ProbeAttestation exercises the enclave's attestation path under a
// challenger nonce: the report must carry the enclave's measurement and
// echo the challenge, and re-attesting under a different nonce must
// change the authenticator — the freshness binding the attestation
// lifecycle (internal/attestsvc) builds its replay defense on. The probe
// checks binding structurally, without the report key: a verifier-side
// MAC check is the challenger's job, but an attestation routine that
// ignores its nonce is broken regardless of who holds the key.
func ProbeAttestation(a Architecture, e Enclave, nonce []byte) ProbeResult {
	r, err := e.Attest(nonce)
	if err != nil {
		return ProbeResult{Name: "attest-freshness", Secure: false,
			Detail: "attestation unavailable: " + err.Error()}
	}
	if r.Measurement != e.Measurement() {
		return ProbeResult{Name: "attest-freshness", Secure: false,
			Detail: "report measurement does not match the enclave identity"}
	}
	if !bytes.Equal(r.Nonce, nonce) {
		return ProbeResult{Name: "attest-freshness", Secure: false,
			Detail: "report does not echo the challenger's nonce"}
	}
	// A second challenge must yield a different authenticator, or a
	// recorded report replays against every future challenge.
	other := make([]byte, len(nonce)+1)
	copy(other, nonce)
	other[len(nonce)] ^= 0xa5
	r2, err := e.Attest(other)
	if err != nil {
		return ProbeResult{Name: "attest-freshness", Secure: false,
			Detail: "re-attestation failed: " + err.Error()}
	}
	if bytes.Equal(r.MAC, r2.MAC) {
		return ProbeResult{Name: "attest-freshness", Secure: false,
			Detail: "authenticator did not change across challenges (replayable)"}
	}
	return ProbeResult{Name: "attest-freshness", Secure: true,
		Detail: "report binds measurement and challenge; authenticator is challenge-fresh"}
}

// ProbeOSAccess attempts a privileged CPU read of enclave memory from the
// untrusted-software domain (the malicious-OS adversary). The probe runs
// as an actual supervisor program on core 0, so CPU-side protection units
// (TrustLite's EA-MPU) are exercised alongside bus-side filters.
func ProbeOSAccess(a Architecture, e Enclave, secretOff uint32, secret byte) ProbeResult {
	p := a.Platform()
	c := p.Core(0)
	prog := isa.MustAssemble(fmt.Sprintf(".org %#x\nlbu a0, 0(a1)\nhlt", p.ScratchBase))
	if err := p.Mem.LoadProgram(prog); err != nil {
		return ProbeResult{Name: "os-access", Secure: false, Detail: "probe setup failed: " + err.Error()}
	}
	saved := *c
	defer func() { *c = saved }()
	c.Reset(p.ScratchBase)
	c.Priv = isa.PrivSuper
	c.World = mem.WorldNormal // the OS runs in the normal world
	c.Domain = 0
	c.Regs[isa.RegA1] = e.Base() + secretOff
	_, err := c.Run(100)
	switch {
	case err != nil:
		return ProbeResult{Name: "os-access", Secure: true,
			Detail: "privileged read faulted: " + err.Error()}
	case byte(c.Regs[isa.RegA0]) == secret:
		return ProbeResult{Name: "os-access", Secure: false,
			Detail: "privileged software read enclave plaintext"}
	default:
		return ProbeResult{Name: "os-access", Secure: true,
			Detail: fmt.Sprintf("privileged read returned %#x (abort value or ciphertext)", byte(c.Regs[isa.RegA0]))}
	}
}
