package sanctuary

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
)

func newSanctuary(t *testing.T) (*Sanctuary, *platform.Platform) {
	t.Helper()
	p := platform.NewMobile()
	tz, err := trustzone.New(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tz)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

const echoEnclave = `
        .org 0
entry:  lw   t0, 0(a0)
        addi t0, t0, 7
        sw   t0, 0(a0)
        mv   a0, t0
        hlt
`

func TestMultipleEnclaves(t *testing.T) {
	s, _ := newSanctuary(t)
	// The whole point: unlike TrustZone, N enclaves are fine.
	var encs []*Enclave
	for i := 0; i < 4; i++ {
		e, err := s.CreateEnclave(tee.EnclaveConfig{
			Name: "app" + string(rune('A'+i)), Program: isa.MustAssemble(echoEnclave), DataSize: 4096,
		})
		if err != nil {
			t.Fatalf("enclave %d: %v", i, err)
		}
		encs = append(encs, e.(*Enclave))
	}
	for _, e := range encs {
		ret, err := e.Call(e.DataBase())
		if err != nil {
			t.Fatal(err)
		}
		if ret[0] != 7 {
			t.Fatalf("ret = %d", ret[0])
		}
	}
}

func TestEnclavesRunInNormalWorldOnReservedCore(t *testing.T) {
	s, _ := newSanctuary(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "nw", Program: isa.MustAssemble(".org 0\ncsrr a0, world\nhlt"), DataSize: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := e.(*Enclave).Call()
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != uint32(mem.WorldNormal) {
		t.Fatalf("enclave world = %d, want normal", ret[0])
	}
}

func TestIsolationFromOSAndOtherCore(t *testing.T) {
	s, p := newSanctuary(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "iso", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	if err := enc.WriteData(0, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	off := enc.DataBase() - enc.Base()
	// OS on core 0: denied (identity check fails on core ID).
	if r := tee.ProbeOSAccess(s, e, off, 0xEE); !r.Secure {
		t.Fatalf("OS probe: %s", r.Detail)
	}
	// DMA: denied.
	if r := tee.ProbeDMA(s, e, off, 0xEE); !r.Secure {
		t.Fatalf("DMA probe: %s", r.Detail)
	}
	// No memory encryption: physical snoop sees plaintext (inherent to
	// TrustZone-based designs).
	if r := tee.ProbeBusSnoop(s, e, off, 0xEE); r.Secure {
		t.Fatalf("bus snoop should see plaintext: %s", r.Detail)
	}
	_ = p
}

func TestSharedCacheExclusion(t *testing.T) {
	s, p := newSanctuary(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "excl", Program: isa.MustAssemble(".org 0\nlw t0, 0(a0)\nhlt"), DataSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*Enclave)
	if _, err := enc.Call(enc.DataBase()); err != nil {
		t.Fatal(err)
	}
	// Enclave memory must never appear in the shared LLC.
	if p.LLC.Lookup(enc.DataBase(), enc.ID()) {
		t.Fatal("enclave line reached the shared LLC despite exclusion")
	}
	// And the L1 was flushed on exit.
	if p.Core(reservedCore).Hier.InL1(enc.DataBase(), enc.ID()) {
		t.Fatal("enclave line survived the exit flush")
	}
	// Ordinary memory still uses the LLC.
	p.Core(0).Hier.Data(0x4000, false, 0)
	if !p.LLC.Lookup(0x4000, 0) {
		t.Fatal("normal memory stopped using the LLC")
	}
}

func TestAttestAndSealViaSecureWorld(t *testing.T) {
	s, _ := newSanctuary(t)
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "sec", Program: isa.MustAssemble(".org 0\nhlt")})
	if err != nil {
		t.Fatal(err)
	}
	v := attest.NewVerifier()
	v.AllowMeasurement("sec", e.Measurement())
	nonce, _ := v.Challenge()
	r, _ := e.Attest(nonce)
	if err := v.CheckReport(s.tz.DeviceKey(), r); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Seal([]byte("sanctuary data"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Unseal(blob)
	if err != nil || string(out) != "sanctuary data" {
		t.Fatalf("unseal: %q %v", out, err)
	}
	// A different enclave cannot unseal.
	e2, _ := s.CreateEnclave(tee.EnclaveConfig{Name: "other", Program: isa.MustAssemble(".org 0\nnop\nhlt")})
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("foreign enclave unsealed")
	}
}

func TestDestroyReleasesIsolation(t *testing.T) {
	s, p := newSanctuary(t)
	e, _ := s.CreateEnclave(tee.EnclaveConfig{
		Name: "tmp", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	enc := e.(*Enclave)
	enc.WriteData(0, []byte{9})
	base := enc.DataBase()
	if err := enc.Destroy(); err != nil {
		t.Fatal(err)
	}
	// After destroy, the OS can use the memory again — and it is scrubbed.
	acc := mem.Access{Addr: base, Size: 1, Kind: mem.KindLoad,
		Priv: isa.PrivSuper, World: mem.WorldNormal, Init: mem.Initiator{Type: mem.InitCPU}}
	v, err := p.Ctrl.Read(acc)
	if err != nil {
		t.Fatalf("freed memory unreadable: %v", err)
	}
	if v != 0 {
		t.Fatal("destroyed enclave memory not scrubbed")
	}
}

func TestNeedsSpareCore(t *testing.T) {
	p := platform.NewEmbedded() // single core
	tz, err := trustzone.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tz); err == nil {
		t.Fatal("Sanctuary accepted single-core platform")
	}
}
