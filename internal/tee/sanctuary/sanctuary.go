// Package sanctuary implements the Sanctuary model from Section 3.2:
// an arbitrary number of user-space enclaves on TrustZone hardware,
// without new hardware components. Sanctuary enclaves live in the NORMAL
// world, temporarily isolated on a reserved physical core; the isolation
// is enforced by the TZASC-style address space controller's identity
// checks (which bus master may access the region). The secure world only
// hosts the device vendor's security primitives (attestation, sealing),
// so no trust relationship between vendor and app developers is needed.
//
// Cache side channels are closed differently than Sanctum: Sanctuary
// cannot partition TrustZone's shared LLC, so enclave memory is excluded
// from the shared caches entirely, and core-exclusive caches are flushed
// on context switches.
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package sanctuary

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
)

const pageSize = 4096

// reservedCore is the physical core temporarily dedicated to enclaves.
const reservedCore = 1

// SMC service codes for the secure-world security primitives.
const (
	svcAttest  = 0x53A0
	svcSealGet = 0x53A1
)

// Sanctuary runs on top of an existing TrustZone instance.
type Sanctuary struct {
	tz   *trustzone.TrustZone
	plat *platform.Platform

	arenaBase uint32
	arenaNext uint32
	arenaEnd  uint32

	enclaves map[int]*Enclave
	nextID   int
	// active is the enclave currently bound to the reserved core.
	active int
}

// Enclave is a Sanctuary user-space enclave in normal-world memory.
type Enclave struct {
	sy   *Sanctuary
	id   int
	name string
	meas attest.Measurement

	base, size uint32
	entry      uint32
	dataBase   uint32
	destroyed  bool
}

// New builds Sanctuary over TrustZone. It reserves a normal-world arena
// for enclave memory, installs the identity-based TZASC filter, and
// excludes the arena from the shared caches on every core.
func New(tz *trustzone.TrustZone) (*Sanctuary, error) {
	p := tz.Platform()
	if len(p.Cores) < 2 {
		return nil, fmt.Errorf("sanctuary: needs a core to reserve")
	}
	s := &Sanctuary{
		tz: tz, plat: p,
		arenaBase: 16 << 20,
		arenaNext: 16 << 20,
		arenaEnd:  20 << 20,
		enclaves:  map[int]*Enclave{},
		nextID:    2, // domain 1 is the secure world
	}
	p.Ctrl.AddFilter(mem.FuncFilter{FilterName: "sanctuary-tzasc-id", Fn: s.identityCheck})
	// Exclude the enclave arena from the shared cache levels (L2 + LLC):
	// enclave data may live only in core-exclusive L1.
	for _, c := range p.Cores {
		c.Hier.Cacheability = s.cacheability
	}
	// Secure-world security primitives, provided by the device vendor.
	tz.RegisterService(svcAttest, func(c *cpu.CPU, args [3]uint32) [2]uint32 {
		return [2]uint32{0x0a77e57, 0} // liveness marker; real flow uses Attest()
	})
	return s, nil
}

func (s *Sanctuary) cacheability(addr uint32) cache.Level {
	if addr >= s.arenaBase && addr < s.arenaEnd {
		return cache.LevelL1
	}
	return cache.LevelAll
}

// identityCheck is the TZASC identity-based isolation: while an enclave is
// active, its memory answers only to the reserved core running in that
// enclave's domain. DMA is blocked outright.
func (s *Sanctuary) identityCheck(a mem.Access) mem.Action {
	if a.Addr < s.arenaBase || a.Addr >= s.arenaEnd {
		return mem.ActionAllow
	}
	owner := 0
	for id, e := range s.enclaves {
		if a.Addr >= e.base && a.Addr < e.base+e.size {
			owner = id
			break
		}
	}
	if owner == 0 {
		return mem.ActionAllow // unassigned arena
	}
	if a.Init.Type != mem.InitCPU {
		return mem.ActionDeny
	}
	if a.Init.ID == reservedCore && a.Domain == owner {
		return mem.ActionAllow
	}
	return mem.ActionDeny
}

// Name implements tee.Architecture.
func (s *Sanctuary) Name() string { return "Sanctuary (model)" }

// Class implements tee.Architecture.
func (s *Sanctuary) Class() platform.Class { return platform.ClassMobile }

// Platform implements tee.Architecture.
func (s *Sanctuary) Platform() *platform.Platform { return s.plat }

// Capabilities implements tee.Architecture.
func (s *Sanctuary) Capabilities() tee.Capabilities {
	return tee.Capabilities{
		MultipleEnclaves:  true, // the TrustZone limitation lifted
		MemoryEncryption:  false,
		DMAProtection:     true,
		CacheDefense:      tee.DefenseCacheExclusion,
		FlushOnSwitch:     true,
		RemoteAttestation: true,
		SealedStorage:     true,
		RealTime:          false,
		SecurePeripherals: true, // inherited through secure-world services
		CodeIsolation:     true,
	}
}

// CreateEnclave allocates arena pages and installs the enclave image.
func (s *Sanctuary) CreateEnclave(cfg tee.EnclaveConfig) (tee.Enclave, error) {
	if cfg.Program == nil || len(cfg.Program.Segments) != 1 {
		return nil, fmt.Errorf("sanctuary: enclave needs a single-segment program")
	}
	img := cfg.Program.Segments[0].Data
	codePages := (uint32(len(img)) + pageSize - 1) / pageSize
	dataPages := (cfg.DataSize + pageSize - 1) / pageSize
	if dataPages == 0 {
		dataPages = 1
	}
	size := (codePages + dataPages) * pageSize
	if s.arenaNext+size > s.arenaEnd {
		return nil, fmt.Errorf("sanctuary: enclave arena exhausted")
	}
	id := s.nextID
	s.nextID++
	base := s.arenaNext
	s.arenaNext += size
	e := &Enclave{
		sy: s, id: id, name: cfg.Name,
		meas: attest.Measure(img).Extend([]byte(cfg.Name)),
		base: base, size: size,
		entry:    base + (cfg.Program.Entry - cfg.Program.Segments[0].Base),
		dataBase: base + codePages*pageSize,
	}
	s.enclaves[id] = e
	if err := s.plat.Mem.WriteRaw(base, img); err != nil {
		delete(s.enclaves, id)
		return nil, err
	}
	return e, nil
}

// ID implements tee.Enclave.
func (e *Enclave) ID() int { return e.id }

// Name implements tee.Enclave.
func (e *Enclave) Name() string { return e.name }

// Measurement implements tee.Enclave.
func (e *Enclave) Measurement() attest.Measurement { return e.meas }

// Base implements tee.Enclave.
func (e *Enclave) Base() uint32 { return e.base }

// Size implements tee.Enclave.
func (e *Enclave) Size() uint32 { return e.size }

// DataBase returns the enclave's writable region.
func (e *Enclave) DataBase() uint32 { return e.dataBase }

// Call binds the reserved core to the enclave, runs it, and flushes the
// core-exclusive caches on exit.
func (e *Enclave) Call(args ...uint32) ([2]uint32, error) {
	if e.destroyed {
		return [2]uint32{}, fmt.Errorf("sanctuary: enclave %d destroyed", e.id)
	}
	c := e.sy.plat.Core(reservedCore)
	saved := *c
	e.sy.active = e.id
	c.Reset(e.entry)
	c.World = mem.WorldNormal // Sanctuary enclaves are normal-world!
	c.Priv = isa.PrivUser
	c.Domain = e.id
	for i, a := range args {
		if i >= 4 {
			break
		}
		c.Regs[isa.RegA0+uint8(i)] = a
	}
	res, err := c.Run(2_000_000)
	ret := [2]uint32{c.Regs[isa.RegA0], c.Regs[isa.RegA1]}
	cycles, instret := c.Cycles, c.Instret
	*c = saved
	c.Cycles, c.Instret = cycles, instret
	e.sy.active = 0
	// Flush core-exclusive caches on the context switch.
	c.Hier.FlushL1()
	if err != nil {
		return ret, fmt.Errorf("sanctuary: enclave %d faulted: %w", e.id, err)
	}
	if res.Reason != cpu.StopHalt {
		return ret, fmt.Errorf("sanctuary: enclave %d did not exit cleanly: %v", e.id, res.Reason)
	}
	return ret, nil
}

// WriteData provisions enclave data (trusted setup path).
func (e *Enclave) WriteData(off uint32, buf []byte) error {
	return e.sy.plat.Mem.WriteRaw(e.dataBase+off, buf)
}

// Attest obtains a report from the secure-world security primitives.
func (e *Enclave) Attest(nonce []byte) (*attest.Report, error) {
	return attest.NewReport(e.sy.tz.DeviceKey(), e.meas, nonce, nil), nil
}

// Seal implements tee.Enclave via the secure-world sealing primitive.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	return attest.Seal(e.sy.tz.DeviceKey(), e.meas, data)
}

// Unseal implements tee.Enclave.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	return attest.Unseal(e.sy.tz.DeviceKey(), e.meas, blob)
}

// Destroy scrubs and releases the enclave memory.
func (e *Enclave) Destroy() error {
	delete(e.sy.enclaves, e.id) // unprotect first, then scrub
	zero := make([]byte, e.size)
	if err := e.sy.plat.Mem.WriteRaw(e.base, zero); err != nil {
		return err
	}
	e.destroyed = true
	return nil
}
