package tee_test

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/sanctum"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
)

// The probes are the measurement instruments behind TAB2; these tests pin
// their verdict semantics on two architectures with opposite properties.

func TestProbeContrastSGXvsSanctum(t *testing.T) {
	// SGX: encrypted EPC — bus snoop blocked.
	s, err := sgx.New(platform.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "c", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	enc := e.(*sgx.Enclave)
	if err := enc.WriteData(0, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	off := enc.DataBase() - enc.Base()
	if r := tee.ProbeBusSnoop(s, e, off, 0x77); !r.Secure {
		t.Errorf("SGX snoop: %s", r.Detail)
	}

	// Sanctum: plaintext DRAM — bus snoop leaks; but OS and DMA blocked.
	sn, err := sanctum.New(platform.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sn.CreateEnclave(tee.EnclaveConfig{
		Name: "c", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	enc2 := e2.(*sanctum.Enclave)
	if err := enc2.WriteData(0, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	off2 := enc2.DataPage() - enc2.Base()
	if r := tee.ProbeBusSnoop(sn, e2, off2, 0x77); r.Secure {
		t.Errorf("Sanctum snoop should leak: %s", r.Detail)
	}
	if r := tee.ProbeOSAccess(sn, e2, off2, 0x77); !r.Secure {
		t.Errorf("Sanctum OS probe: %s", r.Detail)
	}
	if r := tee.ProbeDMA(sn, e2, off2, 0x77); !r.Secure {
		t.Errorf("Sanctum DMA probe: %s", r.Detail)
	}
}

func TestProbeDetectsUnprotectedMemory(t *testing.T) {
	// Negative control: a fake "enclave" in ordinary RAM leaks to every
	// probe — the instruments do flag insecurity.
	s, err := sgx.New(platform.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	plain := &fakeEnclave{base: 0x300000}
	if err := s.Platform().Mem.WriteRaw(plain.base, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	if r := tee.ProbeOSAccess(s, plain, 0, 0x42); r.Secure {
		t.Errorf("OS probe missed plaintext: %s", r.Detail)
	}
	if r := tee.ProbeDMA(s, plain, 0, 0x42); r.Secure {
		t.Errorf("DMA probe missed plaintext: %s", r.Detail)
	}
	if r := tee.ProbeBusSnoop(s, plain, 0, 0x42); r.Secure {
		t.Errorf("snoop probe missed plaintext: %s", r.Detail)
	}
}

// fakeEnclave satisfies tee.Enclave over unprotected memory.
type fakeEnclave struct{ base uint32 }

func (f *fakeEnclave) ID() int                         { return 99 }
func (f *fakeEnclave) Name() string                    { return "fake" }
func (f *fakeEnclave) Measurement() attest.Measurement { return attest.Measure([]byte("fake")) }
func (f *fakeEnclave) Base() uint32                    { return f.base }
func (f *fakeEnclave) Size() uint32                    { return 4096 }
func (f *fakeEnclave) Destroy() error                  { return nil }
func (f *fakeEnclave) Call(...uint32) ([2]uint32, error) {
	return [2]uint32{}, tee.ErrUnsupported
}
func (f *fakeEnclave) Attest([]byte) (*attest.Report, error) { return nil, tee.ErrUnsupported }
func (f *fakeEnclave) Seal([]byte) ([]byte, error)           { return nil, tee.ErrUnsupported }
func (f *fakeEnclave) Unseal([]byte) ([]byte, error)         { return nil, tee.ErrUnsupported }

func TestProbeAttestation(t *testing.T) {
	// SGX's attestation path binds measurement and challenge.
	s, err := sgx.New(platform.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateEnclave(tee.EnclaveConfig{
		Name: "c", Program: isa.MustAssemble(".org 0\nhlt"), DataSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if r := tee.ProbeAttestation(s, e, []byte("challenge-1")); !r.Secure {
		t.Errorf("SGX attestation probe: %s", r.Detail)
	}

	// Negative control: the fake enclave has no attestation path at all.
	if r := tee.ProbeAttestation(s, &fakeEnclave{base: 0x300000}, []byte("n")); r.Secure {
		t.Errorf("fake enclave passed the attestation probe: %s", r.Detail)
	}

	// Negative control: a replayable report (constant authenticator) is
	// flagged even though it echoes the nonce and measurement.
	if r := tee.ProbeAttestation(s, &replayEnclave{fakeEnclave{base: 0x300000}}, []byte("n")); r.Secure {
		t.Errorf("replayable attestation passed the probe: %s", r.Detail)
	}
}

// replayEnclave attests with a constant authenticator: nonce and
// measurement are echoed honestly, but the MAC never changes.
type replayEnclave struct{ fakeEnclave }

func (r *replayEnclave) Attest(nonce []byte) (*attest.Report, error) {
	return &attest.Report{Measurement: r.Measurement(), Nonce: nonce, MAC: []byte{1, 2, 3}}, nil
}
