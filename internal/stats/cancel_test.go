package stats

import (
	"context"
	"testing"
)

// TestPlanBindCancellation pins the checkpoint cancellation seam: a
// plan bound to a context stops issuing checkpoints the moment the
// context ends — the sweep's "a disconnected client stops compute
// within one checkpoint" guarantee lives on this behavior.
func TestPlanBindCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	plan := NewPlan(Policy{}, 2048).Bind(ctx)

	n, ok := plan.Next()
	if !ok || n != 256 {
		t.Fatalf("first checkpoint = (%d, %v), want (256, true)", n, ok)
	}
	plan.Grade(false)
	cancel()
	if _, ok := plan.Next(); ok {
		t.Fatal("Next issued a checkpoint after the bound context was cancelled")
	}
	if !plan.Cancelled() {
		t.Fatal("Cancelled() = false after a cancelled Next")
	}
	if plan.Used() != 256 {
		t.Fatalf("Used() = %d after cancellation, want the 256 already spent", plan.Used())
	}
}

// TestPlanUnboundUnaffected pins that plans without Bind keep the old
// behavior exactly: the ladder runs to the reference and Cancelled
// stays false.
func TestPlanUnboundUnaffected(t *testing.T) {
	plan := NewPlan(Policy{}, 64)
	for {
		if _, ok := plan.Next(); !ok {
			break
		}
		plan.Grade(false)
	}
	if plan.Used() != 64 || plan.Cancelled() {
		t.Fatalf("unbound plan used %d, cancelled %v; want 64, false", plan.Used(), plan.Cancelled())
	}
}
