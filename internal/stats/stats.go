// Package stats is the adaptive sequential-sampling verdict engine: it
// decides whether a sweep cell is broken or mitigated from sequential
// measurements instead of one fixed sample budget, and it states how much
// the decision cost and how confident it is.
//
// Two cooperating pieces:
//
//   - Plan schedules ONE cumulative measurement pass: a geometric ladder
//     of checkpoint budgets (reference/8, reference/4, ... reference) at
//     which the scenario regrades its cumulative statistic, stopping the
//     moment a checkpoint shows a full recovery. Because the pass extends
//     one sample set, no samples are wasted re-establishing a statistic a
//     smaller batch already built.
//
//   - Test folds pass outcomes into an asymmetric SPRT (Wald's sequential
//     probability ratio test) and decides when the cell may settle. The
//     asymmetry mirrors the measurement physics of the attack
//     simulations: a "broken" observation means the attack actually
//     recovered the secret — faking a 14/16-nibble key recovery from
//     noise is cryptographically negligible — so a single success at any
//     budget carries near-decisive evidence. A "mitigated" observation
//     is weaker: below the reference budget the attack may simply be
//     sample-starved (Evict+Time needs ~2048 timings before a genuinely
//     broken cell stops looking mitigated), so failures are discounted in
//     proportion to their budget and a cell is only called mitigated once
//     failure evidence includes the full reference budget.
//
// Hard cells — those the first pass cannot settle to the requested
// confidence — escalate: the Test demands further independent full-budget
// passes (each under a fresh derived seed) until the likelihood ratio
// separates or the per-cell sample cap is reached. Everything is
// deterministic: schedules and stopping points are functions of the
// policy, the reference budget and the per-job seed alone, never of
// engine parallelism.
package stats

import (
	"context"
	"fmt"
	"math"
)

// Verdict classes, shared by convention with internal/scenario's
// broken/mitigated grading (stats stays dependency-free, so the strings
// are declared here rather than imported).
const (
	// ClassBroken marks cells where the attack recovers the secret.
	ClassBroken = "broken"
	// ClassMitigated marks cells where the configuration stops it.
	ClassMitigated = "mitigated"
)

// Defaults for the zero-value Policy fields.
const (
	// DefaultConfidence is the target probability that a decided cell's
	// class is correct under the test's error model.
	DefaultConfidence = 0.9
	// DefaultFalsePositive is the modeled per-pass probability that a
	// genuinely mitigated cell fakes a full secret recovery — set well
	// above the cryptographic reality so reported confidences stay
	// conservative.
	DefaultFalsePositive = 1e-3
	// DefaultFalseNegative is the modeled probability that a genuinely
	// broken cell fails a pass at the full reference budget (noise
	// starving the statistic despite enough samples).
	DefaultFalseNegative = 0.1
	// DefaultMinBatch is the smallest checkpoint budget a schedule
	// issues; below it the graded statistics (bit channels, key-nibble
	// votes) are too short to mean anything.
	DefaultMinBatch = 32
	// DefaultEscalation bounds a hard cell's cost: the per-cell sample
	// cap defaults to DefaultEscalation × the reference budget.
	DefaultEscalation = 4
)

// Policy configures the sequential test. The zero value selects the
// defaults above.
type Policy struct {
	// Confidence is the target P(decided class is correct), e.g. 0.9.
	// Higher confidence demands more corroborating passes before a cell
	// settles. Values outside (0,1) select DefaultConfidence.
	Confidence float64
	// FalsePositive is the per-pass probability of a spurious full
	// recovery on a mitigated cell (0 selects DefaultFalsePositive).
	FalsePositive float64
	// FalseNegative is the per-pass probability of a failure on a
	// broken cell at the full reference budget (0 selects
	// DefaultFalseNegative). Sub-reference checkpoints interpolate
	// toward certainty-of-failure, which is what discounts their
	// evidence.
	FalseNegative float64
	// MinBatch is the smallest checkpoint budget a schedule issues
	// (0 selects DefaultMinBatch).
	MinBatch int
	// MaxSamples caps the total samples one cell may burn before the
	// test settles on the best available answer. 0 selects
	// DefaultEscalation × the cell's reference budget; values below the
	// reference budget are raised to it, so every cell can always
	// afford at least one full-budget pass.
	MaxSamples int
}

// Norm returns the policy with zero fields replaced by the defaults and
// out-of-range fields clamped; all decision math runs on the normalized
// form.
func (p Policy) Norm() Policy {
	if p.Confidence <= 0 || p.Confidence >= 1 {
		p.Confidence = DefaultConfidence
	}
	if p.Confidence < 0.5 {
		p.Confidence = 0.5
	}
	if p.FalsePositive <= 0 || p.FalsePositive >= 1 {
		p.FalsePositive = DefaultFalsePositive
	}
	if p.FalseNegative <= 0 || p.FalseNegative >= 1 {
		p.FalseNegative = DefaultFalseNegative
	}
	if p.MinBatch <= 0 {
		p.MinBatch = DefaultMinBatch
	}
	return p
}

// threshold is the symmetric SPRT boundary ln(c/(1-c)): with equal
// priors, crossing it means the posterior probability of the leading
// hypothesis is at least c.
func (p Policy) threshold() float64 {
	return math.Log(p.Confidence / (1 - p.Confidence))
}

// Decision is the settled verdict of one cell's sequential test — the
// per-cell fields the sweep surfaces in tables, diffs and JSON reports.
type Decision struct {
	// Class is ClassBroken or ClassMitigated.
	Class string `json:"class"`
	// Confidence is the posterior probability of Class under the test's
	// error model and equal priors, in [0.5, 1).
	Confidence float64 `json:"confidence"`
	// SamplesUsed is the total sample budget the cell actually burned
	// across all passes (0 for one-shot cells, whose measurement has no
	// sample dimension).
	SamplesUsed int `json:"samples_used"`
	// Reference is what the cell costs under the fixed-budget engine —
	// the requested samples raised to the scenario's floor (0 for
	// one-shot cells). SamplesUsed versus Reference is the adaptive
	// engine's realized saving on this cell.
	Reference int `json:"reference,omitempty"`
	// Passes is the number of measurement passes mounted (one-shot
	// cells always report 1).
	Passes int `json:"passes"`
	// StoppedEarly reports that the cell settled for less than the
	// fixed-budget reference cost.
	StoppedEarly bool `json:"stopped_early,omitempty"`
	// Escalated reports that pass disagreement pushed the cell past the
	// reference cost (a hard cell).
	Escalated bool `json:"escalated,omitempty"`
	// Decided reports whether the likelihood ratio actually crossed the
	// confidence threshold; false means the cell hit MaxSamples and
	// Class is the best available answer (the last full-budget pass).
	Decided bool `json:"decided"`
}

// String renders the decision compactly for notes and logs, e.g.
// "broken p>=0.995 (512/2048 samples, 1 pass, early)".
func (d Decision) String() string {
	s := fmt.Sprintf("%s p>=%.3f (%d/%d samples, %d pass", d.Class, d.Confidence, d.SamplesUsed, d.Reference, d.Passes)
	if d.Passes != 1 {
		s += "es"
	}
	switch {
	case d.StoppedEarly:
		s += ", early"
	case d.Escalated:
		s += ", escalated"
	}
	return s + ")"
}

// Plan schedules one cumulative measurement pass: a ladder of checkpoint
// budgets ending exactly at the reference budget. The measuring scenario
// drives it:
//
//	for {
//		n, ok := plan.Next()
//		if !ok {
//			break
//		}
//		// extend the cumulative sample set to n samples
//		plan.Grade(fullRecovery)
//	}
//
// Grade(true) stops the pass — the attack has its secret; more samples
// cannot un-recover it. Sub-reference checkpoints must grade
// conservatively (only a full recovery counts), because a weak partial
// signal at a starved budget is expected even on cells a defense holds.
type Plan struct {
	targets   []int
	i         int
	used      int
	graded    int
	broken    bool
	stopped   bool
	ctx       context.Context
	cancelled bool
}

// NewPlan builds the checkpoint ladder for one pass: geometric doubling
// from max(MinBatch, reference/8) to exactly reference.
func NewPlan(p Policy, reference int) *Plan {
	if reference < 1 {
		reference = 1
	}
	p = p.Norm()
	var targets []int
	for b := reference / 8; b < reference; b *= 2 {
		if b < p.MinBatch {
			b = p.MinBatch
		}
		// Stop the ramp once a rung lands within 7/8 of the reference:
		// regrading a near-full sample set and then the full one would
		// run the expensive analysis twice for a few extra samples.
		if 8*b >= 7*reference {
			break
		}
		if len(targets) > 0 && b <= targets[len(targets)-1] {
			continue
		}
		targets = append(targets, b)
	}
	return &Plan{targets: append(targets, reference)}
}

// Bind attaches a cancellation signal to the plan: once ctx is done,
// Next refuses to issue further checkpoints and the plan reports
// Cancelled. This is the SPRT ladder's cooperative-cancellation seam —
// a scenario driving a bound plan stops extending its sample set
// within one checkpoint of the context dying (a disconnected HTTP
// client, a compute deadline), without the scenario knowing anything
// about contexts. Bind returns the plan for call chaining; a nil ctx
// leaves the plan unbound.
func (pl *Plan) Bind(ctx context.Context) *Plan {
	pl.ctx = ctx
	return pl
}

// Cancelled reports whether the bound context died before the pass
// finished — the caller must discard the pass's outcome (it measured a
// truncated sample set) and surface the context's error instead.
func (pl *Plan) Cancelled() bool { return pl.cancelled }

// Next returns the next cumulative sample count to grade at, or false
// when the pass is over (stopped on a recovery, the ladder is done, or
// the bound context was cancelled).
func (pl *Plan) Next() (int, bool) {
	if pl.ctx != nil && pl.ctx.Err() != nil {
		pl.cancelled = true
		return 0, false
	}
	if pl.stopped || pl.i >= len(pl.targets) {
		return 0, false
	}
	return pl.targets[pl.i], true
}

// Grade records the verdict at the checkpoint Next last issued: broken
// means the cumulative statistic showed a full recovery, which stops the
// pass.
func (pl *Plan) Grade(broken bool) {
	if pl.stopped || pl.i >= len(pl.targets) {
		return
	}
	pl.used = pl.targets[pl.i]
	pl.i++
	pl.graded++
	if broken {
		pl.broken = true
		pl.stopped = true
	}
}

// Used returns the samples the pass consumed (the largest checkpoint
// graded so far).
func (pl *Plan) Used() int { return pl.used }

// Broken reports whether the pass stopped on a full recovery.
func (pl *Plan) Broken() bool { return pl.broken }

// Grades returns the number of checkpoints graded.
func (pl *Plan) Grades() int { return pl.graded }

// Reference returns the pass's full budget (the ladder's last rung).
func (pl *Plan) Reference() int { return pl.targets[len(pl.targets)-1] }

// Test folds pass observations into the sequential probability ratio and
// decides when a cell may settle. Drive it one pass at a time:
//
//	t := stats.NewTest(policy, reference)
//	for t.NeedMore() {
//		broken, used := mountPass(t.Passes()) // Plan-driven or re-mount
//		t.Observe(broken, used)
//	}
//	dec := t.Conclude()
//
// A Test is not safe for concurrent use; every cell owns its own.
type Test struct {
	policy   Policy
	ref      int
	llr      float64
	used     int
	passes   int
	lastFull string // class of the last pass graded at the full budget
	last     string
	decided  bool
	class    string
}

// NewTest builds the test for one cell. reference is the cell's
// fixed-budget cost (the requested samples raised to the scenario's
// floor) — the budget at which a single pass is fully informative.
func NewTest(p Policy, reference int) *Test {
	if reference < 1 {
		reference = 1
	}
	p = p.Norm()
	if p.MinBatch > reference {
		p.MinBatch = reference
	}
	if p.MaxSamples <= 0 {
		p.MaxSamples = DefaultEscalation * reference
	} else if p.MaxSamples < reference {
		// An explicit cap below the reference budget is raised to it —
		// never silently multiplied — so a verdict can still rest on one
		// full-budget pass.
		p.MaxSamples = reference
	}
	return &Test{policy: p, ref: reference}
}

// Policy returns the normalized policy the test runs under.
func (t *Test) Policy() Policy { return t.policy }

// Reference returns the cell's fixed-budget reference cost.
func (t *Test) Reference() int { return t.ref }

// Passes returns how many passes have been observed (the next pass's
// batch index for seed derivation).
func (t *Test) Passes() int { return t.passes }

// SamplesUsed returns the total budget burned so far.
func (t *Test) SamplesUsed() int { return t.used }

// NeedMore reports whether the cell needs another measurement pass:
// true until the likelihood ratio crosses the confidence threshold or
// another full-budget pass would exceed the sample cap — the cap is a
// hard ceiling, so a pass that might not fit is never started.
func (t *Test) NeedMore() bool {
	return !t.decided && t.used+t.ref <= t.policy.MaxSamples
}

// Observe folds one pass into the likelihood ratio: broken reports the
// pass's graded class, used the samples it consumed (its stopping
// checkpoint; clamped to the reference budget).
func (t *Test) Observe(broken bool, used int) {
	if t.decided {
		return
	}
	if used < 1 {
		used = 1
	}
	if used > t.ref {
		used = t.ref
	}
	t.passes++
	t.used += used
	// A sub-reference pass fails on a broken cell far more often than a
	// full-budget one: interpolate the false-negative rate linearly in
	// the budget fraction, from near-certain failure at zero budget to
	// the policy's FalseNegative at the reference budget.
	frac := float64(used) / float64(t.ref)
	fn := 1 - (1-t.policy.FalseNegative)*frac
	fp := t.policy.FalsePositive
	if broken {
		t.last = ClassBroken
		t.llr += math.Log((1 - fn) / fp)
	} else {
		t.last = ClassMitigated
		t.llr += math.Log(fn / (1 - fp))
	}
	if used == t.ref {
		t.lastFull = t.last
	}
	thr := t.policy.threshold()
	switch {
	case t.llr >= thr:
		t.decided, t.class = true, ClassBroken
	case t.llr <= -thr && t.lastFull == ClassMitigated:
		// A mitigated verdict additionally requires full-budget
		// evidence: sub-reference failures alone may only mean sample
		// starvation, however many accumulate.
		t.decided, t.class = true, ClassMitigated
	}
}

// Conclude settles the test and returns the Decision. If the likelihood
// ratio never crossed the threshold before the sample cap, the class is
// the last full-budget pass's verdict (the same measurement the fixed
// engine would have trusted outright) with the sub-threshold confidence
// the evidence actually supports.
func (t *Test) Conclude() Decision {
	d := Decision{
		SamplesUsed: t.used,
		Reference:   t.ref,
		Passes:      t.passes,
		Decided:     t.decided,
	}
	switch {
	case t.decided:
		d.Class = t.class
	case t.lastFull != "":
		d.Class = t.lastFull
	default:
		d.Class = t.last
	}
	d.Confidence = llrConfidence(t.llr, d.Class)
	d.StoppedEarly = t.used < t.ref
	d.Escalated = t.used > t.ref
	return d
}

// OneShot builds the Decision for a cell whose scenario does not consume
// the sample budget at all (fault attacks, transient extraction): one
// mount settles it, with the confidence a single fully-informative pass
// supports under the policy's error model, and no sample cost on either
// side of the adaptive/fixed comparison.
func OneShot(p Policy, broken bool) Decision {
	p = p.Norm()
	llr := math.Log((1 - p.FalseNegative) / p.FalsePositive)
	class := ClassBroken
	if !broken {
		class = ClassMitigated
		llr = -math.Log((1 - p.FalsePositive) / p.FalseNegative)
	}
	return Decision{
		Class:      class,
		Confidence: llrConfidence(llr, class),
		Passes:     1,
		Decided:    true,
	}
}

// llrConfidence converts a signed log-likelihood ratio (positive favors
// broken) into the posterior probability of class under equal priors,
// floored at 0.5 — a class the evidence leans against is never reported
// with above-even confidence.
func llrConfidence(llr float64, class string) float64 {
	if class == ClassMitigated {
		llr = -llr
	}
	c := 1 / (1 + math.Exp(-llr))
	if c < 0.5 {
		c = 0.5
	}
	return c
}
