package stats

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// driveCell runs the Plan/Test loop against a synthetic cell whose
// per-checkpoint recovery behavior is given by recovered: a function
// from cumulative budget to whether the attack has its secret at that
// budget. It mirrors the sweep's adaptive driver, with the cell's
// "noise" drawn from rng so repeated passes can disagree.
func driveCell(p Policy, reference int, rng *rand.Rand, recovered func(budget int, rng *rand.Rand) bool) Decision {
	t := NewTest(p, reference)
	for t.NeedMore() {
		plan := NewPlan(t.Policy(), reference)
		broken := false
		for {
			n, ok := plan.Next()
			if !ok {
				break
			}
			broken = recovered(n, rng)
			plan.Grade(broken)
		}
		t.Observe(broken, plan.Used())
	}
	return t.Conclude()
}

func TestPlanLadder(t *testing.T) {
	for _, tc := range []struct {
		ref  int
		want []int
	}{
		{2048, []int{256, 512, 1024, 2048}},
		// 1496 would be the next doubling, but a rung within 7/8 of the
		// reference is skipped: regrading at 1496 and again at 1500
		// would run the analysis twice for four extra samples.
		{1500, []int{187, 374, 748, 1500}},
		{600, []int{75, 150, 300, 600}},
		{256, []int{32, 64, 128, 256}},
		{64, []int{32, 64}},
		{48, []int{32, 48}},
		{32, []int{32}},
		{8, []int{8}},
		{1, []int{1}},
	} {
		plan := NewPlan(Policy{}, tc.ref)
		var got []int
		for {
			n, ok := plan.Next()
			if !ok {
				break
			}
			got = append(got, n)
			plan.Grade(false)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ladder(%d) = %v, want %v", tc.ref, got, tc.want)
		}
		if plan.Used() != tc.ref {
			t.Errorf("ladder(%d): full pass used %d", tc.ref, plan.Used())
		}
		if plan.Broken() {
			t.Errorf("ladder(%d): all-failure pass reports broken", tc.ref)
		}
	}
}

func TestPlanStopsOnRecovery(t *testing.T) {
	plan := NewPlan(Policy{}, 2048)
	n, ok := plan.Next()
	if !ok || n != 256 {
		t.Fatalf("first checkpoint = %d, %v", n, ok)
	}
	plan.Grade(false)
	if n, _ = plan.Next(); n != 512 {
		t.Fatalf("second checkpoint = %d", n)
	}
	plan.Grade(true)
	if _, ok = plan.Next(); ok {
		t.Error("plan continued past a recovery")
	}
	if !plan.Broken() || plan.Used() != 512 || plan.Grades() != 2 {
		t.Errorf("stopped pass: broken=%v used=%d grades=%d", plan.Broken(), plan.Used(), plan.Grades())
	}
}

// TestClearCells pins the engine's bread-and-butter behavior: a cell
// that recovers at a quarter of the reference budget settles broken for
// a fraction of the fixed cost; a cell that never recovers settles
// mitigated at exactly the fixed cost (the full pass the fixed engine
// would have run) at the default confidence.
func TestClearCells(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := driveCell(Policy{}, 2048, rng, func(b int, _ *rand.Rand) bool { return b >= 512 })
	if d.Class != ClassBroken || !d.Decided || !d.StoppedEarly {
		t.Errorf("broken cell: %+v", d)
	}
	if d.SamplesUsed != 512 {
		t.Errorf("broken cell used %d samples, want 512", d.SamplesUsed)
	}
	if d.Confidence < 0.9 {
		t.Errorf("broken cell confidence %.3f < 0.9", d.Confidence)
	}

	d = driveCell(Policy{}, 2048, rng, func(int, *rand.Rand) bool { return false })
	if d.Class != ClassMitigated || !d.Decided || d.StoppedEarly || d.Escalated {
		t.Errorf("mitigated cell: %+v", d)
	}
	if d.SamplesUsed != 2048 {
		t.Errorf("mitigated cell used %d samples, want exactly the reference 2048", d.SamplesUsed)
	}
}

// TestHighConfidenceEscalates: at a 0.99 target a single full-budget
// failure is not enough evidence for mitigated — the test demands a
// second independent pass.
func TestHighConfidenceEscalates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := driveCell(Policy{Confidence: 0.99}, 600, rng, func(int, *rand.Rand) bool { return false })
	if d.Class != ClassMitigated || !d.Decided {
		t.Fatalf("mitigated cell at 0.99: %+v", d)
	}
	if d.Passes < 2 || !d.Escalated || d.SamplesUsed != 2*600 {
		t.Errorf("0.99 mitigated cell should need two full passes: %+v", d)
	}
	if d.Confidence < 0.99 {
		t.Errorf("decided at 0.99 but confidence %.4f", d.Confidence)
	}
}

// TestSampleCap: a cell whose passes keep disagreeing stops at the
// sample cap with Decided=false and the last full-budget class.
func TestSampleCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	flip := false
	d := driveCell(Policy{Confidence: 0.9999, FalsePositive: 0.3, FalseNegative: 0.3, MaxSamples: 4 * 64}, 64, rng,
		func(b int, _ *rand.Rand) bool {
			if b == 64 {
				flip = !flip
				return flip
			}
			return false
		})
	if d.Decided {
		t.Fatalf("oscillating cell decided: %+v", d)
	}
	if d.SamplesUsed < 4*64 || !d.Escalated {
		t.Errorf("oscillating cell should exhaust the cap: %+v", d)
	}
	if d.Class != ClassBroken && d.Class != ClassMitigated {
		t.Errorf("capped cell has no class: %+v", d)
	}
	if d.Confidence >= 0.9999 {
		t.Errorf("capped cell reports target confidence %.5f despite indecision", d.Confidence)
	}
}

// TestErrorBounds measures realized error rates on synthetic Bernoulli
// cells near the policy's own error model: broken cells that fail a
// full-budget pass with probability FalseNegative, mitigated cells that
// fake a recovery with probability FalsePositive. The realized
// wrong-verdict rate over many independent cells must stay within the
// 1-Confidence bound (with slack for simulation noise).
func TestErrorBounds(t *testing.T) {
	const cells = 2000
	pol := Policy{Confidence: 0.9}
	norm := pol.Norm()
	rng := rand.New(rand.NewSource(42))

	wrongBroken := 0
	for i := 0; i < cells; i++ {
		// A genuinely broken cell: recovery appears at half the
		// reference budget, except a FalseNegative fraction of passes
		// where noise starves the whole pass.
		starved := rng.Float64() < norm.FalseNegative
		d := driveCell(pol, 256, rng, func(b int, r *rand.Rand) bool {
			return b >= 128 && !starved
		})
		if d.Decided && d.Class != ClassBroken {
			wrongBroken++
		}
	}
	// Decided-wrong rate must respect the confidence bound.
	if limit := int(float64(cells) * (1 - norm.Confidence) * 1.5); wrongBroken > limit {
		t.Errorf("broken cells misclassified %d/%d times, want <= %d", wrongBroken, cells, limit)
	}

	wrongMitigated := 0
	for i := 0; i < cells; i++ {
		// A genuinely mitigated cell: each checkpoint has an (unrealistically
		// high, for stress) FalsePositive chance of faking a recovery.
		d := driveCell(pol, 256, rng, func(b int, r *rand.Rand) bool {
			return r.Float64() < norm.FalsePositive
		})
		if d.Decided && d.Class != ClassMitigated {
			wrongMitigated++
		}
	}
	if limit := int(float64(cells)*(1-norm.Confidence)*1.5) + 1; wrongMitigated > limit {
		t.Errorf("mitigated cells misclassified %d/%d times, want <= %d", wrongMitigated, cells, limit)
	}
}

// TestSeedStableStopping pins determinism: the same seed must produce
// the same stopping point and decision no matter how many times (or how
// concurrently) the cell is measured — the property that keeps sweep
// results independent of -parallel.
func TestSeedStableStopping(t *testing.T) {
	measure := func(seed int64) Decision {
		rng := rand.New(rand.NewSource(seed))
		return driveCell(Policy{}, 512, rng, func(b int, r *rand.Rand) bool {
			return r.Float64() < float64(b)/512*0.7
		})
	}
	for seed := int64(0); seed < 20; seed++ {
		want := measure(seed)
		for rep := 0; rep < 3; rep++ {
			if got := measure(seed); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: decision varies across reruns: %+v vs %+v", seed, got, want)
			}
		}
	}
}

// TestConcurrentCells runs many independent cells concurrently (the
// engine's worker-pool shape) and checks decisions match the serial
// outcome — combined with -race this is the data-race pass over the
// stats layer.
func TestConcurrentCells(t *testing.T) {
	const cells = 64
	serial := make([]Decision, cells)
	for i := range serial {
		serial[i] = cellDecision(int64(i))
	}
	conc := make([]Decision, cells)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i] = cellDecision(int64(i))
		}(i)
	}
	wg.Wait()
	for i := range serial {
		if !reflect.DeepEqual(serial[i], conc[i]) {
			t.Errorf("cell %d: concurrent decision %+v != serial %+v", i, conc[i], serial[i])
		}
	}
}

func cellDecision(seed int64) Decision {
	rng := rand.New(rand.NewSource(seed))
	return driveCell(Policy{Confidence: 0.95}, 256, rng, func(b int, r *rand.Rand) bool {
		return r.Float64() < float64(b)/256*float64(seed%3)/2
	})
}

func TestOneShot(t *testing.T) {
	d := OneShot(Policy{}, true)
	if d.Class != ClassBroken || !d.Decided || d.SamplesUsed != 0 || d.Reference != 0 || d.Passes != 1 {
		t.Errorf("one-shot broken: %+v", d)
	}
	if d.Confidence < 0.99 {
		t.Errorf("one-shot broken confidence %.3f: a full recovery is near-decisive", d.Confidence)
	}
	d = OneShot(Policy{}, false)
	if d.Class != ClassMitigated || d.Confidence < 0.9 {
		t.Errorf("one-shot mitigated: %+v", d)
	}
	if d.StoppedEarly || d.Escalated {
		t.Errorf("one-shot cells have no sample dimension to stop early or escalate on: %+v", d)
	}
}

func TestPolicyNorm(t *testing.T) {
	p := Policy{}.Norm()
	if p.Confidence != DefaultConfidence || p.MinBatch != DefaultMinBatch ||
		p.FalsePositive != DefaultFalsePositive || p.FalseNegative != DefaultFalseNegative {
		t.Errorf("zero policy normalized to %+v", p)
	}
	if p := (Policy{Confidence: 1.2}).Norm(); p.Confidence != DefaultConfidence {
		t.Errorf("out-of-range confidence normalized to %v", p.Confidence)
	}
	if p := (Policy{Confidence: 0.2}).Norm(); p.Confidence != 0.5 {
		t.Errorf("sub-even confidence clamped to %v, want 0.5", p.Confidence)
	}
	// The cap can never forbid the one full-budget pass a verdict needs.
	tt := NewTest(Policy{MaxSamples: 10}, 600)
	if !tt.NeedMore() {
		t.Fatal("fresh test needs no pass")
	}
	tt.Observe(false, 600)
	if d := tt.Conclude(); d.Class != ClassMitigated {
		t.Errorf("tiny-cap cell: %+v", d)
	}
}

// TestExplicitCapSemantics pins the MaxSamples contract: an explicit
// sub-reference cap is raised to the reference (never multiplied into
// the 4x default), and the cap is a hard ceiling — a pass that might
// overshoot it is never started.
func TestExplicitCapSemantics(t *testing.T) {
	if got := NewTest(Policy{MaxSamples: 100}, 600).Policy().MaxSamples; got != 600 {
		t.Errorf("explicit 100-sample cap normalized to %d, want the 600 reference", got)
	}
	if got := NewTest(Policy{}, 600).Policy().MaxSamples; got != DefaultEscalation*600 {
		t.Errorf("unset cap normalized to %d, want %d", got, DefaultEscalation*600)
	}
	tt := NewTest(Policy{Confidence: 0.9999, MaxSamples: 650}, 600)
	tt.Observe(false, 600) // one full pass: far from the 0.9999 threshold
	if tt.NeedMore() {
		t.Error("a second 600-sample pass would bust the 650-sample cap")
	}
	if d := tt.Conclude(); d.SamplesUsed > 650 {
		t.Errorf("burned %d samples past the 650 cap", d.SamplesUsed)
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Class: ClassBroken, Confidence: 0.995, SamplesUsed: 512, Reference: 2048, Passes: 1, StoppedEarly: true, Decided: true}
	s := d.String()
	for _, want := range []string{"broken", "512/2048", "1 pass", "early"} {
		if !strings.Contains(s, want) {
			t.Errorf("Decision.String() = %q, missing %q", s, want)
		}
	}
}
