package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/fault"
)

func cleanExperiment(name string) Experiment {
	return Experiment{
		Name: name, Attack: "synthetic", Samples: 1, Seed: 7,
		Run: func(*Ctx) (Outcome, error) { return Outcome{Verdict: "fine"}, nil },
	}
}

// TestFaultPanicConfined pins the engine.panic fault point end to end:
// an injected panic inside a job converts to a failed Result — the
// same confinement real scenario panics get — and once the fault
// budget is spent the same experiment runs clean.
func TestFaultPanicConfined(t *testing.T) {
	plane := fault.New(1)
	plane.Arm(FaultPanic, fault.Spec{Prob: 1, Limit: 1})
	SetFaultPlane(plane)
	defer SetFaultPlane(nil)

	res := RunOne(context.Background(), cleanExperiment("chaos"))
	if !res.Failed() || !strings.Contains(res.Err, "injected engine panic") {
		t.Fatalf("faulted run: Failed=%v Err=%q, want a confined injected panic", res.Failed(), res.Err)
	}
	res = RunOne(context.Background(), cleanExperiment("chaos"))
	if res.Failed() {
		t.Fatalf("post-budget run failed: %s", res.Err)
	}
}

// TestFaultStallHonorsContext pins the engine.stall fault point: a
// stall far longer than the context's deadline ends at the deadline,
// not the stall — the seam the serve tier's compute deadline and
// client-disconnect guarantees stand on.
func TestFaultStallHonorsContext(t *testing.T) {
	plane := fault.New(1)
	plane.Arm(FaultStall, fault.Spec{Prob: 1, Delay: time.Minute})
	SetFaultPlane(plane)
	defer SetFaultPlane(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	RunOne(ctx, cleanExperiment("stalled"))
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stall ignored the context deadline (ran %v)", elapsed)
	}
}
