// Package engine is the concurrent experiment-orchestration subsystem:
// it turns the evaluation's monolithic figure/table generators into
// composable Experiment units executed by a worker pool.
//
// An Experiment names one measurement (platform class, architecture,
// attack family, sample count) and carries a Run closure. The Engine
// schedules a slice of experiments over GOMAXPROCS workers (or an
// explicit parallelism) with sharded work-stealing: jobs group into
// shards by cost estimate, each worker drains its own deque and steals
// from the most-loaded peer when it runs dry. Every job gets its own
// deterministically derived RNG and results commit in submission order —
// so a sweep produces byte-identical results at -parallel 1 and
// -parallel N, at any shard size — and outcomes render either through
// the existing text tables or as machine-readable JSON (see report.go).
//
// Every future scaling direction (sharding experiments across processes,
// batching trace collection, multi-backend execution) plugs into this
// seam: a scheduler that consumes []Experiment and produces []Result.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/intrust-sim/intrust/internal/fault"
	"github.com/intrust-sim/intrust/internal/stats"
)

// faultPlane is the optional chaos seam: compute stalls and injected
// panics, armed per-process (the serve layer wires it from its
// Options, the CLI from -fault). Panics injected here are confined by
// runOne's recover exactly like a misbehaving scenario's would be, so
// the chaos suite can prove panic confinement end to end.
var faultPlane atomic.Pointer[fault.Plane]

// Fault-point names the engine probes (see internal/fault's catalog).
const (
	// FaultStall injects a context-aware delay before a job runs.
	FaultStall = "engine.stall"
	// FaultPanic panics inside a job's compute (confined to a failed
	// Result by the per-job recover).
	FaultPanic = "engine.panic"
)

// SetFaultPlane installs (or, with nil, removes) the process-wide
// fault-injection plane the engine probes before every job.
func SetFaultPlane(p *fault.Plane) { faultPlane.Store(p) }

// gcTuneOnce applies the sweep's GC pacing once per process. The
// workload is churn-heavy with a small live set: platform-scale buffers
// are born and die inside one cell, so with the default GOGC=100 the
// heap goal sits barely above the live set and every worker spends
// measurable time in mark assists — at high worker counts the assists
// alone erased the scheduler's gains (GOMAXPROCS=8 ran slower than 1).
// Raising the target trades bounded peak RSS (hundreds of MB on the
// full grid) for assist-free throughput at every worker count; it is
// deliberately process-wide and never restored, because interleaving
// restores from concurrent Runs would leave the setting at whichever
// Run exited last.
var gcTuneOnce sync.Once

// sweepGCPercent is the pacing target the engine applies when the
// operator has not chosen one.
const sweepGCPercent = 300

func gcTune() {
	gcTuneOnce.Do(func() {
		if pct, ok := gcTuneTarget(os.Getenv("GOGC")); ok {
			debug.SetGCPercent(pct)
		}
	})
}

// gcTuneTarget decides whether the engine may retune the collector: an
// explicitly-set GOGC environment variable — any non-empty value,
// including "off" — is an operator decision the runtime already
// honored at startup, and the engine must not silently override it.
// Only when GOGC is unset does the engine apply its own pacing.
func gcTuneTarget(gogc string) (percent int, tune bool) {
	if strings.TrimSpace(gogc) != "" {
		return 0, false
	}
	return sweepGCPercent, true
}

// Experiment is one schedulable unit of measurement.
type Experiment struct {
	// Name uniquely identifies the experiment within a run; the per-job
	// RNG seed is derived from it, so renaming an experiment re-rolls
	// its noise while leaving every other job untouched.
	Name string `json:"name"`
	// Platform is the platform class under test (server, mobile,
	// embedded), when meaningful.
	Platform string `json:"platform,omitempty"`
	// Arch is the security architecture under test, when meaningful.
	Arch string `json:"arch,omitempty"`
	// Attack is the attack family exercised (cachesca, transient,
	// physical, probe), when meaningful.
	Attack string `json:"attack,omitempty"`
	// Defense labels the mitigation configuration the experiment runs
	// under ("none", "stock", a defense name, or a "+"-joined
	// combination), when meaningful — the third sweep axis.
	Defense string `json:"defense,omitempty"`
	// Samples is the sample budget (traces, timings, probe rounds)
	// handed to the Run closure via Ctx.
	Samples int `json:"samples,omitempty"`
	// Cost is the scheduler's relative cost estimate for this job (for
	// the sweep: the cell's sample floor weighted by architecture).
	// It only shapes shard packing and steal order — never results.
	// Zero means "unknown" and schedules as 1.
	Cost int `json:"cost,omitempty"`
	// Seed is the base RNG seed; the job seed is Seed XOR FNV(Name).
	Seed int64 `json:"seed,omitempty"`
	// Run performs the measurement. It must draw all randomness from
	// ctx.RNG (never the global source) so results are reproducible
	// under any parallelism.
	Run func(ctx *Ctx) (Outcome, error) `json:"-"`
}

// Ctx is the per-job execution context handed to an Experiment's Run.
type Ctx struct {
	// Context carries cancellation from Engine.Run.
	Context context.Context
	// RNG is the job-private deterministic random source.
	RNG *rand.Rand
	// Samples echoes Experiment.Samples.
	Samples int
	// Seed is the derived per-job seed (for APIs that take a seed
	// rather than a *rand.Rand, e.g. physical.CLKSCREW).
	Seed int64
	// Scratch is the worker-private reuse store: heavy state (platform
	// hierarchies, trace arenas) that survives from one job to the next
	// on the same worker. Reuse must be value-invisible — a job must
	// measure bit-identically with a fresh store — which the determinism
	// matrix test enforces by sweeping worker counts.
	Scratch *Scratch
}

// Scratch is a keyed store of worker-private reusable state. It is not
// safe for concurrent use; each worker owns exactly one.
type Scratch struct {
	vals map[string]any
}

// NewScratch returns an empty store.
func NewScratch() *Scratch { return &Scratch{vals: map[string]any{}} }

// Get returns the value stored under key, or nil.
func (s *Scratch) Get(key string) any {
	if s == nil {
		return nil
	}
	return s.vals[key]
}

// Put stores v under key.
func (s *Scratch) Put(key string, v any) {
	if s != nil {
		s.vals[key] = v
	}
}

// Outcome is what an Experiment measured.
type Outcome struct {
	// Rows are rendered table rows (zero or more) for the text
	// renderers.
	Rows [][]string `json:"rows,omitempty"`
	// Metrics are named scalar measurements (bytes extracted, traces
	// to disclosure, nibbles recovered, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Verdict is the experiment's one-word security conclusion
	// (e.g. "LEAKS", "blocked", "n/a").
	Verdict string `json:"verdict,omitempty"`
	// Detail is a free-form basis note explaining the verdict.
	Detail string `json:"detail,omitempty"`
	// Payload carries structured results for callers that assemble
	// richer artifacts (Figure 1 rows). It is JSON-encoded as-is.
	Payload any `json:"payload,omitempty"`
	// Sampling carries the adaptive sequential-sampling verdict for
	// experiments run under a stats.Policy: the decided class, its
	// confidence, and the sample cost actually paid. Nil for
	// fixed-budget experiments and n/a cells.
	Sampling *stats.Decision `json:"sampling,omitempty"`
}

// Result pairs an Experiment with its Outcome, timing, and error state.
type Result struct {
	Experiment
	Outcome
	// Err is the Run error, if any ("" on success).
	Err string `json:"error,omitempty"`
	// DurationNS is the wall-clock cost of this job in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// Failed reports whether the experiment errored.
func (r *Result) Failed() bool { return r.Err != "" }

// Duration is DurationNS as a time.Duration.
func (r *Result) Duration() time.Duration { return time.Duration(r.DurationNS) }

// Engine executes experiments on a bounded worker pool.
type Engine struct {
	// Parallel is the worker count. New clamps it to >= 1.
	Parallel int
	// ShardSize is the number of experiments per scheduling shard —
	// the unit of work-stealing granularity. Smaller shards steal at a
	// finer grain (better balance, more queue traffic); <= 0 picks a
	// size that gives each worker a handful of shards. Results are
	// byte-identical at any shard size.
	ShardSize int
}

// New returns an engine with the given parallelism; parallel <= 0 sizes
// the pool to GOMAXPROCS.
func New(parallel int) *Engine {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Engine{Parallel: parallel}
}

// DeriveSeed computes the per-job seed: the experiment's base seed mixed
// with an FNV-1a hash of its name. Depends only on (base, name), never on
// scheduling order — the determinism guarantee under any parallelism.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ int64(h.Sum64())
}

// jobCost is an experiment's scheduling weight (Cost, floored to 1).
func jobCost(exp *Experiment) int64 {
	if exp.Cost > 0 {
		return int64(exp.Cost)
	}
	return 1
}

// shardQueue is one worker's deque of shards (each shard a slice of job
// indices). The owner pops from the front — expensive shards first, and
// at one worker exactly submission order — while thieves pop from the
// back, so owner and thieves only collide on the last shard. The pad
// keeps neighboring queues of the scheduler's contiguous slice on
// separate cache lines: the remaining-cost counter is written under
// every pop and was a false-sharing hazard at high worker counts.
type shardQueue struct {
	mu     sync.Mutex
	shards [][]int
	cost   int64 // summed cost of the queued shards
	_      [64]byte
}

func (q *shardQueue) push(shard []int, cost int64) {
	q.shards = append(q.shards, shard)
	q.cost += cost
}

func (q *shardQueue) popFront(costs []int64) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.shards) == 0 {
		return nil
	}
	sh := q.shards[0]
	q.shards = q.shards[1:]
	q.take(sh, costs)
	return sh
}

func (q *shardQueue) popBack(costs []int64) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.shards) == 0 {
		return nil
	}
	sh := q.shards[len(q.shards)-1]
	q.shards = q.shards[:len(q.shards)-1]
	q.take(sh, costs)
	return sh
}

func (q *shardQueue) take(sh []int, costs []int64) {
	for _, i := range sh {
		q.cost -= costs[i]
	}
}

func (q *shardQueue) remaining() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cost
}

// scheduler is the sharded work-stealing run state: per-worker deques
// seeded by cost-balanced static assignment, rebalanced at runtime by
// stealing whole shards from the most-loaded victim.
type scheduler struct {
	queues []shardQueue
	costs  []int64
}

// newScheduler shards the jobs and assigns them to workers. Jobs sort by
// descending cost (stable, so equal costs keep submission order), chunk
// into shards of shardSize, and greedy-assign — most expensive shard
// first, always to the least-loaded worker (LPT). The assignment is a
// starting point, not a commitment: whatever it gets wrong, stealing
// repairs at runtime.
func newScheduler(exps []Experiment, workers, shardSize int) *scheduler {
	costs := make([]int64, len(exps))
	order := make([]int, len(exps))
	for i := range exps {
		costs[i] = jobCost(&exps[i])
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })

	if shardSize <= 0 {
		// A handful of shards per worker: enough steal granularity to
		// level a skewed tail without per-job queue traffic.
		shardSize = len(exps) / (workers * 4)
		if shardSize < 1 {
			shardSize = 1
		}
	}

	s := &scheduler{queues: make([]shardQueue, workers), costs: costs}
	for at := 0; at < len(order); at += shardSize {
		end := at + shardSize
		if end > len(order) {
			end = len(order)
		}
		shard := order[at:end:end]
		var c int64
		for _, i := range shard {
			c += costs[i]
		}
		least := 0
		for w := 1; w < workers; w++ {
			if s.queues[w].cost < s.queues[least].cost {
				least = w
			}
		}
		s.queues[least].push(shard, c)
	}
	return s
}

// next returns worker self's next shard: its own front, else a shard
// stolen from the back of the most-loaded victim, else nil (run drained).
func (s *scheduler) next(self int) []int {
	if sh := s.queues[self].popFront(s.costs); sh != nil {
		return sh
	}
	for {
		victim, best := -1, int64(0)
		for w := range s.queues {
			if w == self {
				continue
			}
			if c := s.queues[w].remaining(); c > best {
				victim, best = w, c
			}
		}
		if victim < 0 {
			return nil
		}
		if sh := s.queues[victim].popBack(s.costs); sh != nil {
			return sh
		}
		// Lost the race to the victim's own drain; rescan. Remaining
		// cost only decreases, so this terminates.
	}
}

// Run executes all experiments and returns one Result per experiment, in
// submission order regardless of completion order. Scheduling is sharded
// work-stealing: jobs group into shards by cost estimate, each worker
// drains its own deque and steals from the most-loaded peer when empty.
// Each worker carries one Scratch store across all jobs it executes. A
// failing experiment does not abort the others; the aggregate error (nil
// if none failed) joins every failure in submission order. Context
// cancellation stops unstarted jobs, marking them with the context error.
func (e *Engine) Run(ctx context.Context, exps []Experiment) ([]Result, error) {
	gcTune()
	results := make([]Result, len(exps))
	workers := e.Parallel
	if workers < 1 {
		workers = 1
	}
	sched := newScheduler(exps, workers, e.ShardSize)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			scratch := NewScratch()
			for {
				shard := sched.next(self)
				if shard == nil {
					return
				}
				for _, i := range shard {
					if err := ctx.Err(); err != nil {
						results[i] = Result{Experiment: exps[i], Err: err.Error()}
						continue
					}
					results[i] = runOne(ctx, exps[i], scratch)
				}
			}
		}(w)
	}
	wg.Wait()

	var failures []string
	for i := range results {
		if results[i].Failed() {
			failures = append(failures, fmt.Sprintf("%s: %s", results[i].Name, results[i].Err))
		}
	}
	if len(failures) > 0 {
		return results, fmt.Errorf("%d/%d experiments failed: %s",
			len(failures), len(exps), strings.Join(failures, "; "))
	}
	return results, nil
}

// RunOne executes a single experiment synchronously, outside any worker
// pool, with the same per-job seed derivation and panic confinement as
// Run — the cell-level entry point the serve layer computes individual
// grid cells through. A RunOne result is bit-identical (modulo wall
// clock) to the same experiment's result inside a pooled Run.
func RunOne(ctx context.Context, exp Experiment) Result {
	return runOne(ctx, exp, NewScratch())
}

// runOne executes a single experiment with panic confinement, so one
// misbehaving job reports as a failed Result instead of killing the pool.
func runOne(ctx context.Context, exp Experiment, scratch *Scratch) (res Result) {
	res.Experiment = exp
	seed := DeriveSeed(exp.Seed, exp.Name)
	jctx := &Ctx{
		Context: ctx,
		RNG:     rand.New(rand.NewSource(seed)),
		Samples: exp.Samples,
		Seed:    seed,
		Scratch: scratch,
	}
	start := time.Now()
	defer func() {
		res.DurationNS = time.Since(start).Nanoseconds()
		if p := recover(); p != nil {
			res.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	if exp.Run == nil {
		res.Err = "experiment has no Run function"
		return res
	}
	if p := faultPlane.Load(); p != nil {
		p.Stall(ctx, FaultStall)
		if p.Fire(FaultPanic) {
			panic("fault: injected engine panic")
		}
	}
	out, err := exp.Run(jctx)
	res.Outcome = out
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// Summary aggregates a run's results.
type Summary struct {
	Experiments int            `json:"experiments"`
	Failed      int            `json:"failed"`
	Verdicts    map[string]int `json:"verdicts,omitempty"`
	// TotalNS is the summed per-job wall clock (the serial cost);
	// WallNS is the observed end-to-end wall clock. Their ratio is the
	// realized speedup.
	TotalNS int64 `json:"total_ns"`
	WallNS  int64 `json:"wall_ns,omitempty"`
	// TotalSamples is the summed sample cost of the run: the adaptive
	// SamplesUsed where a job carries a sampling decision, the nominal
	// budget otherwise (n/a and failed cells count zero). FixedSamples
	// is what the same cells cost under fixed budgets (the summed
	// per-cell Reference, or again the nominal budget for jobs without
	// a sampling decision) — the pair states the adaptive engine's
	// realized saving.
	TotalSamples int64 `json:"total_samples,omitempty"`
	FixedSamples int64 `json:"fixed_samples,omitempty"`
	// EarlyStopped and Escalated count the cells whose sequential test
	// settled under / pushed past the reference budget.
	EarlyStopped int `json:"early_stopped,omitempty"`
	Escalated    int `json:"escalated,omitempty"`
}

// Summarize aggregates results; wall is the observed end-to-end duration
// (pass 0 if unknown). It is a serial post-pass by design: the pool
// keeps no shared progress counters for it to read — workers write
// disjoint results[i] slots and every aggregate here is computed once
// after the pool drains, so a wide run spends no locks or cross-core
// cache-line traffic on bookkeeping (the padded shard deques are the
// dispatch path's only shared mutable state).
func Summarize(results []Result, wall time.Duration) Summary {
	s := Summary{Experiments: len(results), Verdicts: map[string]int{}, WallNS: wall.Nanoseconds()}
	for i := range results {
		s.TotalNS += results[i].DurationNS
		if results[i].Failed() {
			s.Failed++
			continue
		}
		if v := results[i].Verdict; v != "" {
			s.Verdicts[v]++
		}
		if d := results[i].Sampling; d != nil {
			s.TotalSamples += int64(d.SamplesUsed)
			s.FixedSamples += int64(d.Reference)
			if d.StoppedEarly {
				s.EarlyStopped++
			}
			if d.Escalated {
				s.Escalated++
			}
		} else if results[i].Verdict != "n/a" {
			n := int64(results[i].Experiment.Samples)
			s.TotalSamples += n
			s.FixedSamples += n
		}
	}
	if len(s.Verdicts) == 0 {
		s.Verdicts = nil
	}
	return s
}

// Verdicts returns the summary's verdict counts as sorted "verdict=N"
// strings (for stable logging).
func (s Summary) VerdictList() []string {
	out := make([]string, 0, len(s.Verdicts))
	for v, n := range s.Verdicts {
		out = append(out, fmt.Sprintf("%s=%d", v, n))
	}
	sort.Strings(out)
	return out
}
