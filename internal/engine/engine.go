// Package engine is the concurrent experiment-orchestration subsystem:
// it turns the evaluation's monolithic figure/table generators into
// composable Experiment units executed by a worker pool.
//
// An Experiment names one measurement (platform class, architecture,
// attack family, sample count) and carries a Run closure. The Engine
// fans a slice of experiments out over GOMAXPROCS workers (or an explicit
// parallelism), hands every job its own deterministically derived RNG —
// so a sweep produces byte-identical results at -parallel 1 and
// -parallel N — times each run, aggregates the outcomes in submission
// order, and renders them either through the existing text tables or as
// machine-readable JSON (see report.go).
//
// Every future scaling direction (sharding experiments across processes,
// batching trace collection, multi-backend execution) plugs into this
// seam: a scheduler that consumes []Experiment and produces []Result.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/intrust-sim/intrust/internal/stats"
)

// Experiment is one schedulable unit of measurement.
type Experiment struct {
	// Name uniquely identifies the experiment within a run; the per-job
	// RNG seed is derived from it, so renaming an experiment re-rolls
	// its noise while leaving every other job untouched.
	Name string `json:"name"`
	// Platform is the platform class under test (server, mobile,
	// embedded), when meaningful.
	Platform string `json:"platform,omitempty"`
	// Arch is the security architecture under test, when meaningful.
	Arch string `json:"arch,omitempty"`
	// Attack is the attack family exercised (cachesca, transient,
	// physical, probe), when meaningful.
	Attack string `json:"attack,omitempty"`
	// Defense labels the mitigation configuration the experiment runs
	// under ("none", "stock", a defense name, or a "+"-joined
	// combination), when meaningful — the third sweep axis.
	Defense string `json:"defense,omitempty"`
	// Samples is the sample budget (traces, timings, probe rounds)
	// handed to the Run closure via Ctx.
	Samples int `json:"samples,omitempty"`
	// Seed is the base RNG seed; the job seed is Seed XOR FNV(Name).
	Seed int64 `json:"seed,omitempty"`
	// Run performs the measurement. It must draw all randomness from
	// ctx.RNG (never the global source) so results are reproducible
	// under any parallelism.
	Run func(ctx *Ctx) (Outcome, error) `json:"-"`
}

// Ctx is the per-job execution context handed to an Experiment's Run.
type Ctx struct {
	// Context carries cancellation from Engine.Run.
	Context context.Context
	// RNG is the job-private deterministic random source.
	RNG *rand.Rand
	// Samples echoes Experiment.Samples.
	Samples int
	// Seed is the derived per-job seed (for APIs that take a seed
	// rather than a *rand.Rand, e.g. physical.CLKSCREW).
	Seed int64
}

// Outcome is what an Experiment measured.
type Outcome struct {
	// Rows are rendered table rows (zero or more) for the text
	// renderers.
	Rows [][]string `json:"rows,omitempty"`
	// Metrics are named scalar measurements (bytes extracted, traces
	// to disclosure, nibbles recovered, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Verdict is the experiment's one-word security conclusion
	// (e.g. "LEAKS", "blocked", "n/a").
	Verdict string `json:"verdict,omitempty"`
	// Detail is a free-form basis note explaining the verdict.
	Detail string `json:"detail,omitempty"`
	// Payload carries structured results for callers that assemble
	// richer artifacts (Figure 1 rows). It is JSON-encoded as-is.
	Payload any `json:"payload,omitempty"`
	// Sampling carries the adaptive sequential-sampling verdict for
	// experiments run under a stats.Policy: the decided class, its
	// confidence, and the sample cost actually paid. Nil for
	// fixed-budget experiments and n/a cells.
	Sampling *stats.Decision `json:"sampling,omitempty"`
}

// Result pairs an Experiment with its Outcome, timing, and error state.
type Result struct {
	Experiment
	Outcome
	// Err is the Run error, if any ("" on success).
	Err string `json:"error,omitempty"`
	// DurationNS is the wall-clock cost of this job in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// Failed reports whether the experiment errored.
func (r *Result) Failed() bool { return r.Err != "" }

// Duration is DurationNS as a time.Duration.
func (r *Result) Duration() time.Duration { return time.Duration(r.DurationNS) }

// Engine executes experiments on a bounded worker pool.
type Engine struct {
	// Parallel is the worker count. New clamps it to >= 1.
	Parallel int
}

// New returns an engine with the given parallelism; parallel <= 0 sizes
// the pool to GOMAXPROCS.
func New(parallel int) *Engine {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Engine{Parallel: parallel}
}

// DeriveSeed computes the per-job seed: the experiment's base seed mixed
// with an FNV-1a hash of its name. Depends only on (base, name), never on
// scheduling order — the determinism guarantee under any parallelism.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ int64(h.Sum64())
}

// Run executes all experiments and returns one Result per experiment, in
// submission order regardless of completion order. A failing experiment
// does not abort the others; the aggregate error (nil if none failed)
// joins every failure in submission order. Context cancellation stops
// unstarted jobs, marking them with the context error.
func (e *Engine) Run(ctx context.Context, exps []Experiment) ([]Result, error) {
	results := make([]Result, len(exps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.Parallel
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(ctx, exps[i])
			}
		}()
	}
feed:
	for i := range exps {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(exps); j++ {
				results[j] = Result{Experiment: exps[j], Err: ctx.Err().Error()}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var failures []string
	for i := range results {
		if results[i].Failed() {
			failures = append(failures, fmt.Sprintf("%s: %s", results[i].Name, results[i].Err))
		}
	}
	if len(failures) > 0 {
		return results, fmt.Errorf("%d/%d experiments failed: %s",
			len(failures), len(exps), strings.Join(failures, "; "))
	}
	return results, nil
}

// RunOne executes a single experiment synchronously, outside any worker
// pool, with the same per-job seed derivation and panic confinement as
// Run — the cell-level entry point the serve layer computes individual
// grid cells through. A RunOne result is bit-identical (modulo wall
// clock) to the same experiment's result inside a pooled Run.
func RunOne(ctx context.Context, exp Experiment) Result { return runOne(ctx, exp) }

// runOne executes a single experiment with panic confinement, so one
// misbehaving job reports as a failed Result instead of killing the pool.
func runOne(ctx context.Context, exp Experiment) (res Result) {
	res.Experiment = exp
	seed := DeriveSeed(exp.Seed, exp.Name)
	jctx := &Ctx{
		Context: ctx,
		RNG:     rand.New(rand.NewSource(seed)),
		Samples: exp.Samples,
		Seed:    seed,
	}
	start := time.Now()
	defer func() {
		res.DurationNS = time.Since(start).Nanoseconds()
		if p := recover(); p != nil {
			res.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	if exp.Run == nil {
		res.Err = "experiment has no Run function"
		return res
	}
	out, err := exp.Run(jctx)
	res.Outcome = out
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// Summary aggregates a run's results.
type Summary struct {
	Experiments int            `json:"experiments"`
	Failed      int            `json:"failed"`
	Verdicts    map[string]int `json:"verdicts,omitempty"`
	// TotalNS is the summed per-job wall clock (the serial cost);
	// WallNS is the observed end-to-end wall clock. Their ratio is the
	// realized speedup.
	TotalNS int64 `json:"total_ns"`
	WallNS  int64 `json:"wall_ns,omitempty"`
	// TotalSamples is the summed sample cost of the run: the adaptive
	// SamplesUsed where a job carries a sampling decision, the nominal
	// budget otherwise (n/a and failed cells count zero). FixedSamples
	// is what the same cells cost under fixed budgets (the summed
	// per-cell Reference, or again the nominal budget for jobs without
	// a sampling decision) — the pair states the adaptive engine's
	// realized saving.
	TotalSamples int64 `json:"total_samples,omitempty"`
	FixedSamples int64 `json:"fixed_samples,omitempty"`
	// EarlyStopped and Escalated count the cells whose sequential test
	// settled under / pushed past the reference budget.
	EarlyStopped int `json:"early_stopped,omitempty"`
	Escalated    int `json:"escalated,omitempty"`
}

// Summarize aggregates results; wall is the observed end-to-end duration
// (pass 0 if unknown).
func Summarize(results []Result, wall time.Duration) Summary {
	s := Summary{Experiments: len(results), Verdicts: map[string]int{}, WallNS: wall.Nanoseconds()}
	for i := range results {
		s.TotalNS += results[i].DurationNS
		if results[i].Failed() {
			s.Failed++
			continue
		}
		if v := results[i].Verdict; v != "" {
			s.Verdicts[v]++
		}
		if d := results[i].Sampling; d != nil {
			s.TotalSamples += int64(d.SamplesUsed)
			s.FixedSamples += int64(d.Reference)
			if d.StoppedEarly {
				s.EarlyStopped++
			}
			if d.Escalated {
				s.Escalated++
			}
		} else if results[i].Verdict != "n/a" {
			n := int64(results[i].Experiment.Samples)
			s.TotalSamples += n
			s.FixedSamples += n
		}
	}
	if len(s.Verdicts) == 0 {
		s.Verdicts = nil
	}
	return s
}

// Verdicts returns the summary's verdict counts as sorted "verdict=N"
// strings (for stable logging).
func (s Summary) VerdictList() []string {
	out := make([]string, 0, len(s.Verdicts))
	for v, n := range s.Verdicts {
		out = append(out, fmt.Sprintf("%s=%d", v, n))
	}
	sort.Strings(out)
	return out
}
