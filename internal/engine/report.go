package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report is the machine-readable artifact of an engine run: the summary
// plus every per-experiment result, in submission order.
type Report struct {
	// Tool identifies the generator ("intrust sweep", "intrust tab3", ...).
	Tool string `json:"tool"`
	// Parallel is the worker-pool size the run used.
	Parallel int      `json:"parallel"`
	Summary  Summary  `json:"summary"`
	Results  []Result `json:"results"`
}

// NewReport assembles a report from a finished run.
func NewReport(tool string, parallel int, results []Result, wall time.Duration) *Report {
	return &Report{
		Tool:     tool,
		Parallel: parallel,
		Summary:  Summarize(results, wall),
		Results:  results,
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report previously written with WriteJSON. Payload
// fields decode as generic JSON values (map/slice/float64/string).
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decode report: %w", err)
	}
	return &rep, nil
}
