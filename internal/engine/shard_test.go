package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// skewedExperiments is the steal-heavy fixture: a few giant jobs and a
// long tail of tiny ones, so the static LPT assignment front-loads the
// giants and the tail must rebalance by stealing.
func skewedExperiments(n int) []Experiment {
	exps := noisyExperiments(n)
	for i := range exps {
		switch {
		case i%17 == 0:
			exps[i].Cost = 1000
		case i%5 == 0:
			exps[i].Cost = 50
		default:
			exps[i].Cost = 1
		}
	}
	return exps
}

// TestDeterministicAcrossShardSizes is the engine half of the
// determinism matrix: one payload, every (parallel, shard) combination,
// byte-identical results.
func TestDeterministicAcrossShardSizes(t *testing.T) {
	exps := noisyExperiments(48)
	ref, err := New(1).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	want := stripTiming(ref)
	for _, par := range []int{1, 2, 8} {
		for _, shard := range []int{1, 4, 64} {
			e := New(par)
			e.ShardSize = shard
			got, err := e.Run(context.Background(), exps)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, stripTiming(got)) {
				t.Errorf("results differ at parallel=%d shard=%d", par, shard)
			}
		}
	}
}

// TestCostShapesOnlyScheduling pins that Cost is advisory: rewriting
// every cost estimate must not change a single result byte.
func TestCostShapesOnlyScheduling(t *testing.T) {
	flat := noisyExperiments(32)
	ref, err := New(4).Run(context.Background(), flat)
	if err != nil {
		t.Fatal(err)
	}
	skewed := skewedExperiments(32)
	got, err := New(4).Run(context.Background(), skewed)
	if err != nil {
		t.Fatal(err)
	}
	// Cost rides in the Experiment header, so strip it alongside timing.
	strip := func(rs []Result) []Result {
		out := stripTiming(rs)
		for i := range out {
			out[i].Cost = 0
		}
		return out
	}
	if !reflect.DeepEqual(strip(ref), strip(got)) {
		t.Error("cost estimates changed experiment results")
	}
}

// TestSkewedScheduleRunsEveryJobOnce drives the steal-heavy fixture
// through a wide pool and checks the scheduling invariant directly:
// every job executes exactly once, whatever got stolen from where.
func TestSkewedScheduleRunsEveryJobOnce(t *testing.T) {
	const n = 97
	var runs [n]int32
	exps := skewedExperiments(n)
	for i := range exps {
		i := i
		inner := exps[i].Run
		exps[i].Run = func(ctx *Ctx) (Outcome, error) {
			atomic.AddInt32(&runs[i], 1)
			return inner(ctx)
		}
	}
	for _, shard := range []int{1, 4, 64} {
		for i := range runs {
			atomic.StoreInt32(&runs[i], 0)
		}
		e := New(8)
		e.ShardSize = shard
		if _, err := e.Run(context.Background(), exps); err != nil {
			t.Fatal(err)
		}
		for i := range runs {
			if got := atomic.LoadInt32(&runs[i]); got != 1 {
				t.Fatalf("shard=%d: job %d ran %d times, want exactly once", shard, i, got)
			}
		}
	}
}

// TestSchedulerStealPathDoesNotAllocate is the alloc-regression pin for
// the scheduler itself: draining a steal-heavy schedule — pops, steals,
// victim scans — touches the heap zero times after newScheduler builds
// the deques. GC pressure from the dispatch path was part of the
// oversubscription regression this scheduler replaces.
func TestSchedulerStealPathDoesNotAllocate(t *testing.T) {
	exps := skewedExperiments(256)
	const runs = 10
	// Deque construction (sorting, slice growth) happens once per run
	// and may allocate; build the schedulers up front so the measured
	// closure is the dispatch hot path alone. AllocsPerRun invokes the
	// closure runs+1 times (one warm-up).
	scheds := make([]*scheduler, runs+1)
	for i := range scheds {
		scheds[i] = newScheduler(exps, 8, 4)
	}
	at := 0
	allocs := testing.AllocsPerRun(runs, func() {
		s := scheds[at]
		at++
		var drained int
		for {
			// Worker 7 owns the least and steals the most: exercise the
			// victim-scan loop on every shard.
			sh := s.next(7)
			if sh == nil {
				break
			}
			drained += len(sh)
		}
		if drained != len(exps) {
			t.Fatalf("drained %d jobs, want %d", drained, len(exps))
		}
	})
	if allocs != 0 {
		t.Fatalf("scheduler drain allocated %.1f objects/run, want 0", allocs)
	}
}

// TestScratchPersistsAcrossJobsOnAWorker pins the per-worker reuse seam:
// at parallel=1 every job of a run sees the same Scratch store.
func TestScratchPersistsAcrossJobsOnAWorker(t *testing.T) {
	const n = 12
	var mu sync.Mutex
	stores := map[*Scratch]int{}
	exps := make([]Experiment, n)
	for i := 0; i < n; i++ {
		exps[i] = Experiment{
			Name: fmt.Sprintf("scratch-%d", i),
			Run: func(ctx *Ctx) (Outcome, error) {
				if ctx.Scratch == nil {
					t.Error("job ran without a scratch store")
					return Outcome{}, nil
				}
				mu.Lock()
				stores[ctx.Scratch]++
				mu.Unlock()
				ctx.Scratch.Put("warm", true)
				return Outcome{Verdict: "ok"}, nil
			},
		}
	}
	if _, err := New(1).Run(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if len(stores) != 1 {
		t.Fatalf("parallel=1 used %d scratch stores, want 1", len(stores))
	}
	for s, jobs := range stores {
		if jobs != n {
			t.Fatalf("store served %d jobs, want %d", jobs, n)
		}
		if s.Get("warm") != true {
			t.Fatal("scratch lost its stored value")
		}
	}
}

// TestScratchIsWorkerPrivate pins the isolation side: a wide pool never
// shares one store between workers concurrently — every job observes a
// store, and distinct workers hold distinct stores (at most one per
// worker).
func TestScratchIsWorkerPrivate(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	stores := map[*Scratch]bool{}
	exps := make([]Experiment, n)
	for i := 0; i < n; i++ {
		exps[i] = Experiment{
			Name: fmt.Sprintf("private-%d", i),
			Run: func(ctx *Ctx) (Outcome, error) {
				mu.Lock()
				stores[ctx.Scratch] = true
				mu.Unlock()
				return Outcome{Verdict: "ok"}, nil
			},
		}
	}
	const workers = 8
	if _, err := New(workers).Run(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if len(stores) == 0 || len(stores) > workers {
		t.Fatalf("run used %d scratch stores, want 1..%d", len(stores), workers)
	}
}
