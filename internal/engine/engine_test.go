package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/stats"
)

// noisyExperiments builds experiments whose outcome depends only on the
// job-private RNG — the determinism contract under any parallelism.
func noisyExperiments(n int) []Experiment {
	exps := make([]Experiment, n)
	for i := 0; i < n; i++ {
		i := i
		exps[i] = Experiment{
			Name:    fmt.Sprintf("exp-%d", i),
			Attack:  "synthetic",
			Samples: 100,
			Seed:    7,
			Run: func(ctx *Ctx) (Outcome, error) {
				sum := 0
				for s := 0; s < ctx.Samples; s++ {
					sum += ctx.RNG.Intn(1000)
				}
				return Outcome{
					Rows:    [][]string{{fmt.Sprintf("exp-%d", i), fmt.Sprintf("%d", sum)}},
					Metrics: map[string]float64{"sum": float64(sum)},
					Verdict: map[bool]string{true: "even", false: "odd"}[sum%2 == 0],
				}, nil
			},
		}
	}
	return exps
}

// stripTiming zeroes the scheduling-dependent fields so runs compare
// equal on the deterministic payload.
func stripTiming(rs []Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		r.DurationNS = 0
		r.Run = nil
		out[i] = r
	}
	return out
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	exps := noisyExperiments(16)
	serial, err := New(1).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		parallel, err := New(par).Run(context.Background(), exps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
			t.Errorf("results differ between -parallel 1 and -parallel %d", par)
		}
	}
}

func TestResultsKeepSubmissionOrder(t *testing.T) {
	results, err := New(8).Run(context.Background(), noisyExperiments(32))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if want := fmt.Sprintf("exp-%d", i); r.Name != want {
			t.Fatalf("result %d is %s, want %s", i, r.Name, want)
		}
	}
}

func TestDeriveSeedIsOrderIndependent(t *testing.T) {
	a, b := DeriveSeed(7, "exp-a"), DeriveSeed(7, "exp-b")
	if a == b {
		t.Error("distinct names derived the same seed")
	}
	if a != DeriveSeed(7, "exp-a") {
		t.Error("seed derivation not stable")
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("trace collection failed")
	exps := []Experiment{
		{Name: "ok-1", Run: func(*Ctx) (Outcome, error) { return Outcome{Verdict: "fine"}, nil }},
		{Name: "bad", Run: func(*Ctx) (Outcome, error) { return Outcome{}, boom }},
		{Name: "ok-2", Run: func(*Ctx) (Outcome, error) { return Outcome{Verdict: "fine"}, nil }},
	}
	results, err := New(2).Run(context.Background(), exps)
	if err == nil {
		t.Fatal("Run should surface the experiment failure")
	}
	if !strings.Contains(err.Error(), "bad: trace collection failed") {
		t.Errorf("aggregate error missing failure detail: %v", err)
	}
	if !results[1].Failed() || results[1].Err != boom.Error() {
		t.Errorf("failed result not recorded: %+v", results[1])
	}
	// A failure must not take down the healthy experiments.
	for _, i := range []int{0, 2} {
		if results[i].Failed() || results[i].Verdict != "fine" {
			t.Errorf("healthy experiment %s affected by sibling failure: %+v", results[i].Name, results[i])
		}
	}
	s := Summarize(results, 0)
	if s.Failed != 1 || s.Experiments != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
}

func TestPanicConfinedToJob(t *testing.T) {
	exps := []Experiment{
		{Name: "panics", Run: func(*Ctx) (Outcome, error) { panic("boom") }},
		{Name: "survives", Run: func(*Ctx) (Outcome, error) { return Outcome{Verdict: "ok"}, nil }},
	}
	results, err := New(2).Run(context.Background(), exps)
	if err == nil || !strings.Contains(results[0].Err, "panic: boom") {
		t.Errorf("panic not converted to job failure: err=%v result=%+v", err, results[0])
	}
	if results[1].Failed() {
		t.Errorf("sibling of panicking job failed: %+v", results[1])
	}
}

func TestMissingRunFunc(t *testing.T) {
	results, err := New(1).Run(context.Background(), []Experiment{{Name: "empty"}})
	if err == nil || !results[0].Failed() {
		t.Error("nil Run should be a job failure, not a crash")
	}
}

func TestContextCancellationSkipsUnstarted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	exps := []Experiment{
		{Name: "first", Run: func(*Ctx) (Outcome, error) {
			close(started)
			<-ctx.Done()
			return Outcome{}, ctx.Err()
		}},
	}
	for i := 0; i < 8; i++ {
		exps = append(exps, Experiment{Name: fmt.Sprintf("later-%d", i),
			Run: func(*Ctx) (Outcome, error) { return Outcome{}, nil }})
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := New(1).Run(ctx, exps)
	if err == nil {
		t.Fatal("cancelled run should error")
	}
	last := results[len(results)-1]
	if !last.Failed() || !strings.Contains(last.Err, context.Canceled.Error()) {
		t.Errorf("unstarted job should carry the context error, got %+v", last)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	results, err := New(4).Run(context.Background(), noisyExperiments(5))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("engine-test", 4, results, 123*time.Millisecond)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ReadReport(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != rep.Tool || got.Parallel != rep.Parallel ||
		!reflect.DeepEqual(got.Summary, rep.Summary) || len(got.Results) != len(rep.Results) {
		t.Errorf("report header did not round-trip: %+v vs %+v", got, rep)
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i].Rows, rep.Results[i].Rows) ||
			!reflect.DeepEqual(got.Results[i].Metrics, rep.Results[i].Metrics) ||
			got.Results[i].Name != rep.Results[i].Name {
			t.Errorf("result %d did not round-trip", i)
		}
	}
	// A second encode of the decoded report must be byte-identical: the
	// JSON form is the stable machine interface.
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Error("re-encoded report differs from original encoding")
	}
}

func TestSummarizeVerdicts(t *testing.T) {
	results, err := New(2).Run(context.Background(), noisyExperiments(10))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results, 10*time.Millisecond)
	total := 0
	for _, n := range s.Verdicts {
		total += n
	}
	if total != 10 || s.Experiments != 10 || s.Failed != 0 {
		t.Errorf("summary wrong: %+v", s)
	}
	if len(s.VerdictList()) != len(s.Verdicts) {
		t.Errorf("verdict list wrong: %v", s.VerdictList())
	}
}

func TestDefaultParallelism(t *testing.T) {
	if e := New(0); e.Parallel < 1 {
		t.Errorf("New(0) parallelism = %d, want >= 1 (GOMAXPROCS)", e.Parallel)
	}
	if e := New(-3); e.Parallel < 1 {
		t.Errorf("New(-3) parallelism = %d, want >= 1", e.Parallel)
	}
}

// TestSummarizeSampling pins the adaptive-cost aggregation: results
// carrying a sampling decision contribute their realized and reference
// costs plus the early/escalated counters, plain results contribute the
// nominal budget on both sides, and n/a or failed results contribute
// nothing.
func TestSummarizeSampling(t *testing.T) {
	results := []Result{
		{Experiment: Experiment{Samples: 64},
			Outcome: Outcome{Verdict: "LEAKS",
				Sampling: &stats.Decision{Class: stats.ClassBroken, SamplesUsed: 32, Reference: 64, Passes: 1, StoppedEarly: true, Decided: true}}},
		{Experiment: Experiment{Samples: 600},
			Outcome: Outcome{Verdict: "blocked",
				Sampling: &stats.Decision{Class: stats.ClassMitigated, SamplesUsed: 1200, Reference: 600, Passes: 2, Escalated: true, Decided: true}}},
		{Experiment: Experiment{Samples: 50}, Outcome: Outcome{Verdict: "LEAKS"}},  // fixed-budget cell
		{Experiment: Experiment{Samples: 99}, Outcome: Outcome{Verdict: "n/a"}},   // no substrate: no cost
		{Experiment: Experiment{Samples: 77}, Err: "boom"},                        // failures carry no cost
	}
	s := Summarize(results, 0)
	if s.TotalSamples != 32+1200+50 {
		t.Errorf("TotalSamples = %d, want %d", s.TotalSamples, 32+1200+50)
	}
	if s.FixedSamples != 64+600+50 {
		t.Errorf("FixedSamples = %d, want %d", s.FixedSamples, 64+600+50)
	}
	if s.EarlyStopped != 1 || s.Escalated != 1 {
		t.Errorf("early/escalated = %d/%d, want 1/1", s.EarlyStopped, s.Escalated)
	}
}

// TestGCTuneRespectsGOGC pins the override rule: the engine retunes
// the collector only when the operator has not set GOGC — an explicit
// env var (any value, including "off") must be left in force.
func TestGCTuneRespectsGOGC(t *testing.T) {
	cases := []struct {
		gogc string
		tune bool
	}{
		{"", true},          // unset: the engine applies its pacing
		{"   ", true},       // whitespace is as good as unset
		{"100", false},      // operator pinned the default explicitly
		{"50", false},       // operator chose tighter pacing
		{"800", false},      // operator chose looser pacing
		{"off", false},      // operator disabled the collector target
		{"not-a-num", false}, // even junk is an explicit operator choice
	}
	for _, tc := range cases {
		pct, tune := gcTuneTarget(tc.gogc)
		if tune != tc.tune {
			t.Errorf("gcTuneTarget(%q) tune = %v, want %v", tc.gogc, tune, tc.tune)
		}
		if tune && pct != sweepGCPercent {
			t.Errorf("gcTuneTarget(%q) percent = %d, want %d", tc.gogc, pct, sweepGCPercent)
		}
	}
}
