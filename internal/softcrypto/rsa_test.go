package softcrypto

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModExpMatchesBigExp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		base := new(big.Int).Rand(rng, big.NewInt(1<<62))
		exp := new(big.Int).Rand(rng, big.NewInt(1<<62))
		mod := new(big.Int).Add(new(big.Int).Rand(rng, big.NewInt(1<<62)), big.NewInt(3))
		want := new(big.Int).Exp(base, exp, mod)
		sm, _ := ModExpSquareMultiply(base, exp, mod)
		ladder, _ := ModExpLadder(base, exp, mod)
		return sm.Cmp(want) == 0 && ladder.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareMultiplyTimingLeaksKeyBits(t *testing.T) {
	mod := big.NewInt(1)
	mod.Lsh(mod, 127)
	mod.Sub(mod, big.NewInt(1)) // Mersenne-ish odd modulus
	base := big.NewInt(0x1234567)
	heavy, _ := new(big.Int).SetString("ffffffffffffffff", 16) // all ones
	light := big.NewInt(0x8000000000000000 >> 1)               // single one... plus MSB
	light.SetBit(light, 63, 1)
	_, tHeavy := ModExpSquareMultiply(base, heavy, mod)
	_, tLight := ModExpSquareMultiply(base, light, mod)
	if tHeavy.Total <= tLight.Total {
		t.Fatalf("timing does not reflect key weight: heavy %d <= light %d",
			tHeavy.Total, tLight.Total)
	}
}

func TestLadderTimingConstantPerBit(t *testing.T) {
	mod := big.NewInt(1)
	mod.Lsh(mod, 127)
	mod.Sub(mod, big.NewInt(1))
	base := big.NewInt(99991)
	rng := rand.New(rand.NewSource(7))
	var total int
	for trial := 0; trial < 20; trial++ {
		exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
		exp.SetBit(exp, 63, 1) // fixed bit length
		_, tm := ModExpLadder(base, exp, mod)
		if trial == 0 {
			total = tm.Total
		} else if tm.Total != total {
			t.Fatalf("ladder timing varies: %d vs %d", tm.Total, total)
		}
		for _, c := range tm.PerBit {
			if c != tm.PerBit[0] {
				t.Fatal("ladder per-bit cost varies")
			}
		}
	}
}

func TestSquareMultiplyTimingVariesAcrossMessages(t *testing.T) {
	// The Kocher attack needs message-dependent timing for a FIXED key.
	mod := big.NewInt(1)
	mod.Lsh(mod, 127)
	mod.Sub(mod, big.NewInt(1))
	exp, _ := new(big.Int).SetString("deadbeefcafe1234", 16)
	rng := rand.New(rand.NewSource(8))
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		msg := new(big.Int).Rand(rng, mod)
		_, tm := ModExpSquareMultiply(msg, exp, mod)
		seen[tm.Total] = true
	}
	if len(seen) < 5 {
		t.Fatalf("timing nearly constant across messages: %d distinct values", len(seen))
	}
}

func TestRSACRTSignVerify(t *testing.T) {
	key, err := GenerateRSA(512)
	if err != nil {
		t.Fatal(err)
	}
	msg := big.NewInt(0x48656c6c6f) // "Hello"
	sig := key.SignCRT(msg, nil)
	if !key.Verify(msg, sig) {
		t.Fatal("valid CRT signature does not verify")
	}
	// CRT result matches direct exponentiation.
	direct := new(big.Int).Exp(msg, key.D, key.N)
	if sig.Cmp(direct) != 0 {
		t.Fatal("CRT signature differs from direct signature")
	}
}

func TestRSACRTFaultBreaksSignature(t *testing.T) {
	key, err := GenerateRSA(512)
	if err != nil {
		t.Fatal(err)
	}
	msg := big.NewInt(1234567891011)
	sig := key.SignCRT(msg, &CRTFault{Half: 0, XORMask: 0x4})
	if key.Verify(msg, sig) {
		t.Fatal("faulty signature verifies")
	}
	// But it is still correct modulo q — the Bellcore precondition.
	good := key.SignCRT(msg, nil)
	if new(big.Int).Mod(sig, key.Q).Cmp(new(big.Int).Mod(good, key.Q)) != 0 {
		t.Fatal("fault in p-half corrupted the q-half too")
	}
	if new(big.Int).Mod(sig, key.P).Cmp(new(big.Int).Mod(good, key.P)) == 0 {
		t.Fatal("fault in p-half did not change the p-half")
	}
}

// TestGenerateRSAFromDeterministic pins the reproducibility contract the
// experiment engine relies on: the same reader bytes yield the same key,
// and the key signs correctly via CRT.
func TestGenerateRSAFromDeterministic(t *testing.T) {
	k1, err := GenerateRSAFrom(rand.New(rand.NewSource(11)), 512)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateRSAFrom(rand.New(rand.NewSource(11)), 512)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 || k1.D.Cmp(k2.D) != 0 {
		t.Error("same seed produced different RSA keys")
	}
	k3, err := GenerateRSAFrom(rand.New(rand.NewSource(12)), 512)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k3.N) == 0 {
		t.Error("different seeds produced the same RSA key")
	}
	// The generated key is a working CRT signer: s^e mod n == msg.
	msg := big.NewInt(0xC0FFEE)
	sig := k1.SignCRT(msg, nil)
	if got := new(big.Int).Exp(sig, k1.E, k1.N); got.Cmp(msg) != 0 {
		t.Errorf("CRT signature does not verify: got %v", got)
	}
}
