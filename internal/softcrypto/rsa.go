package softcrypto

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
	"math/big"
)

// This file implements the RSA victims of Section 5: modular
// exponentiation with a data-dependent timing model (Kocher's timing
// attack, [23]), a Montgomery-ladder countermeasure with constant per-bit
// cost, and CRT signing with a fault hook (the Boneh–DeMillo–Lipton
// "Bellcore" attack, [5]).

// ExpTiming records the simulated execution time of a modular
// exponentiation. PerBit holds the cost of each key-bit iteration, MSB
// first; Total is their sum.
type ExpTiming struct {
	Total  int
	PerBit []int
}

// Cost model constants (cycles): a modular squaring, a modular multiply,
// and the data-dependent extra reduction that fires when an intermediate
// exceeds half the modulus (the Montgomery-reduction artifact Kocher's
// attack conditions on).
const (
	costSquare   = 10
	costMultiply = 10
	costExtraRed = 3
)

// extraReduction models the conditional final subtraction of a modular
// reduction: present when the pre-reduction value's low half exceeds the
// modulus half. The predicate must be computable by an attacker simulating
// the algorithm, which this one is.
func extraReduction(v, mod *big.Int) bool {
	half := new(big.Int).Rsh(mod, 1)
	return v.Cmp(half) > 0
}

// ModExpSquareMultiply computes base^exp mod m by left-to-right square-
// and-multiply, returning the data-dependent timing trace. The multiply is
// executed only for 1-bits — the timing channel.
func ModExpSquareMultiply(base, exp, m *big.Int) (*big.Int, ExpTiming) {
	result := big.NewInt(1)
	b := new(big.Int).Mod(base, m)
	bits := exp.BitLen()
	t := ExpTiming{PerBit: make([]int, 0, bits)}
	for i := bits - 1; i >= 0; i-- {
		cost := 0
		result.Mul(result, result)
		result.Mod(result, m)
		cost += costSquare
		if extraReduction(result, m) {
			cost += costExtraRed
		}
		if exp.Bit(i) == 1 {
			result.Mul(result, b)
			result.Mod(result, m)
			cost += costMultiply
			if extraReduction(result, m) {
				cost += costExtraRed
			}
		}
		t.PerBit = append(t.PerBit, cost)
		t.Total += cost
	}
	return result, t
}

// ModExpLadder computes base^exp mod m with the Montgomery ladder: every
// iteration performs exactly one square and one multiply regardless of the
// key bit, and the extra-reduction cost is charged unconditionally —
// constant-time per bit.
func ModExpLadder(base, exp, m *big.Int) (*big.Int, ExpTiming) {
	r0 := big.NewInt(1)
	r1 := new(big.Int).Mod(base, m)
	bits := exp.BitLen()
	t := ExpTiming{PerBit: make([]int, 0, bits)}
	for i := bits - 1; i >= 0; i-- {
		if exp.Bit(i) == 0 {
			r1.Mul(r1, r0)
			r1.Mod(r1, m)
			r0.Mul(r0, r0)
			r0.Mod(r0, m)
		} else {
			r0.Mul(r0, r1)
			r0.Mod(r0, m)
			r1.Mul(r1, r1)
			r1.Mod(r1, m)
		}
		// Constant cost: one multiply + one square + worst-case reduction.
		cost := costSquare + costMultiply + 2*costExtraRed
		t.PerBit = append(t.PerBit, cost)
		t.Total += cost
	}
	return r0, t
}

// RSAKey is an RSA private key with CRT parameters exposed for the fault
// experiments.
type RSAKey struct {
	N, E, D *big.Int
	P, Q    *big.Int
	DP, DQ  *big.Int // d mod p-1, d mod q-1
	QInv    *big.Int // q^-1 mod p
}

// GenerateRSA creates an RSA key of the given bit size.
func GenerateRSA(bits int) (*RSAKey, error) {
	k, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("softcrypto: rsa keygen: %w", err)
	}
	p, q := k.Primes[0], k.Primes[1]
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	return &RSAKey{
		N: k.N, E: big.NewInt(int64(k.E)), D: k.D,
		P: p, Q: q,
		DP:   new(big.Int).Mod(k.D, pm1),
		DQ:   new(big.Int).Mod(k.D, qm1),
		QInv: new(big.Int).ModInverse(q, p),
	}, nil
}

// primeFrom draws random odd candidates of exactly the given bit length
// from r until one passes ProbablyPrime. Unlike crypto/rand.Prime it
// consumes nothing but the reader's bytes (and ProbablyPrime is
// deterministic for a given input), so the result is reproducible for a
// deterministic reader.
func primeFrom(r io.Reader, bits int) (*big.Int, error) {
	buf := make([]byte, (bits+7)/8)
	p := new(big.Int)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("softcrypto: prime candidate: %w", err)
		}
		p.SetBytes(buf)
		// Trim to size, then force the top bit (full bit length) and the
		// low bit (odd).
		p.SetBit(p, bits, 0)
		for b := p.BitLen(); b > bits; b = p.BitLen() {
			p.SetBit(p, b-1, 0)
		}
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(32) {
			return new(big.Int).Set(p), nil
		}
	}
}

// GenerateRSAFrom creates an RSA key of the given bit size drawing all
// randomness from r, and is deterministic for a deterministic reader —
// unlike crypto/rsa.GenerateKey and crypto/rand.Prime, which both
// intentionally defeat deterministic use. Experiment victims use it with
// the engine's per-job RNG so results are reproducible under any
// parallelism.
func GenerateRSAFrom(r io.Reader, bits int) (*RSAKey, error) {
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := primeFrom(r, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := primeFrom(r, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // gcd(e, phi) != 1: re-draw the primes
		}
		return &RSAKey{
			N: new(big.Int).Mul(p, q), E: new(big.Int).Set(e), D: d,
			P: p, Q: q,
			DP:   new(big.Int).Mod(d, pm1),
			DQ:   new(big.Int).Mod(d, qm1),
			QInv: new(big.Int).ModInverse(q, p),
		}, nil
	}
}

// CRTFault lets a fault campaign corrupt one of the two half
// exponentiations of a CRT signature. Half is 0 for the mod-p part, 1 for
// mod-q; XORMask is applied to the half result.
type CRTFault struct {
	Half    int
	XORMask uint
}

// SignCRT computes m^d mod n via the Chinese Remainder Theorem — the
// standard 4x speedup — optionally injecting a computation fault. A single
// faulty half-exponentiation makes the signature correct modulo one prime
// and wrong modulo the other, which is everything the Bellcore attack
// needs.
func (k *RSAKey) SignCRT(msg *big.Int, fault *CRTFault) *big.Int {
	sp := new(big.Int).Exp(msg, k.DP, k.P)
	sq := new(big.Int).Exp(msg, k.DQ, k.Q)
	if fault != nil {
		if fault.Half == 0 {
			sp.Xor(sp, new(big.Int).SetUint64(uint64(fault.XORMask)))
			sp.Mod(sp, k.P)
		} else {
			sq.Xor(sq, new(big.Int).SetUint64(uint64(fault.XORMask)))
			sq.Mod(sq, k.Q)
		}
	}
	// s = sq + q * ((sp - sq) * qInv mod p)
	h := new(big.Int).Sub(sp, sq)
	h.Mul(h, k.QInv)
	h.Mod(h, k.P)
	s := new(big.Int).Mul(k.Q, h)
	s.Add(s, sq)
	return s
}

// SignCRTChecked is SignCRT with the verify-before-release fault check
// (Shamir's countermeasure family, paper §5): the signer re-verifies the
// CRT result against the public exponent and withholds it when the check
// trips. A Bellcore attacker therefore never observes the faulty
// signature it needs — ok reports whether a signature was released.
func (k *RSAKey) SignCRTChecked(msg *big.Int, fault *CRTFault) (*big.Int, bool) {
	s := k.SignCRT(msg, fault)
	if !k.Verify(msg, s) {
		return nil, false
	}
	return s, true
}

// Verify checks s^e == m mod n.
func (k *RSAKey) Verify(msg, sig *big.Int) bool {
	v := new(big.Int).Exp(sig, k.E, k.N)
	return v.Cmp(new(big.Int).Mod(msg, k.N)) == 0
}
