package softcrypto

// T-table AES: the classic high-performance software implementation whose
// key-dependent table lookups are the target of the Section 4.1 cache
// attacks (Osvik–Shamir–Tromer's Evict+Time and Prime+Probe, Yarom–
// Falkner's Flush+Reload all attack exactly this structure).

// tTables holds T0..T3 (rounds 1-9) built from the S-box at init.
var tTables [4][256]uint32

func init() {
	for x := 0; x < 256; x++ {
		s := sbox[x]
		s2 := xtime(s)
		s3 := s2 ^ s
		// T0 entry: (2s, s, s, 3s) packed little-endian by row.
		tTables[0][x] = uint32(s2) | uint32(s)<<8 | uint32(s)<<16 | uint32(s3)<<24
		tTables[1][x] = uint32(s3) | uint32(s2)<<8 | uint32(s)<<16 | uint32(s)<<24
		tTables[2][x] = uint32(s) | uint32(s3)<<8 | uint32(s2)<<16 | uint32(s)<<24
		tTables[3][x] = uint32(s) | uint32(s)<<8 | uint32(s3)<<16 | uint32(s2)<<24
	}
}

// MemHook observes each table lookup: which table (0-3 for T-tables, 4 for
// the final-round S-box) and which index. Cache-attack harnesses map
// (table, index) to a simulated cache access.
type MemHook func(table int, index byte)

// TableAES is an AES-128 encryptor using T-table lookups.
type TableAES struct {
	rk RoundKeys
	// Hook observes every table access (may be nil).
	Hook MemHook
}

// NewTableAES expands the key for table-based encryption.
func NewTableAES(key []byte) (*TableAES, error) {
	rk, err := ExpandKey(key)
	if err != nil {
		return nil, err
	}
	return &TableAES{rk: rk}, nil
}

func (t *TableAES) lookup(table int, idx byte) uint32 {
	if t.Hook != nil {
		t.Hook(table, idx)
	}
	return tTables[table][idx]
}

func (t *TableAES) sboxLookup(idx byte) byte {
	if t.Hook != nil {
		t.Hook(4, idx)
	}
	return sbox[idx]
}

// Encrypt performs one block encryption. The lookup pattern — four T-table
// accesses per column per round indexed by key-XOR-data bytes — is the
// side channel.
func (t *TableAES) Encrypt(pt []byte) [16]byte {
	var s [16]byte
	copy(s[:], pt)
	addRoundKey(&s, &t.rk[0])
	for round := 1; round <= 9; round++ {
		var out [16]byte
		for c := 0; c < 4; c++ {
			// Column c output combines T-lookups of the ShiftRows-selected
			// input bytes: row r comes from column (c+r)%4.
			v := t.lookup(0, s[4*c+0]) ^
				t.lookup(1, s[4*((c+1)%4)+1]) ^
				t.lookup(2, s[4*((c+2)%4)+2]) ^
				t.lookup(3, s[4*((c+3)%4)+3])
			out[4*c+0] = byte(v)
			out[4*c+1] = byte(v >> 8)
			out[4*c+2] = byte(v >> 16)
			out[4*c+3] = byte(v >> 24)
		}
		s = out
		addRoundKey(&s, &t.rk[round])
	}
	// Final round: S-box + ShiftRows + ARK (no MixColumns).
	var out [16]byte
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			out[4*c+r] = t.sboxLookup(s[4*((c+r)%4)+r])
		}
	}
	addRoundKey(&out, &t.rk[10])
	return out
}

// FirstRoundIndices returns the 16 T-table indices of round 1 for a given
// plaintext and key guess byte: index i uses table i%4 with index
// pt[i]^k[i]. Cache attacks predict these to test key-byte hypotheses.
func FirstRoundIndex(ptByte, keyByte byte) byte { return ptByte ^ keyByte }

// TableEntries is the number of entries per T-table (for attacker
// eviction-set geometry).
const TableEntries = 256

// TableEntryBytes is the size of one T-table entry in bytes.
const TableEntryBytes = 4
