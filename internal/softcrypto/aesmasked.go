package softcrypto

import "math/rand"

// MaskedAES is a first-order boolean-masked AES-128: every intermediate
// value carried through the computation is XORed with a fresh random mask,
// so the Hamming weight of any single observed value is statistically
// independent of the secret — the masking countermeasure of Section 5
// ("masking countermeasures break the link between the actual data and the
// processed data").
//
// Scheme (per block): draw input mask mIn and output mask mOut; build the
// masked S-box table SM[x] = S[x ^ mIn] ^ mOut once per block. Uniform
// per-byte masks commute with ShiftRows, and a column of identical masks
// is invariant under MixColumns (the row coefficients 2^3^1^1 sum to 1 in
// GF(2^8)), so one mask pair protects the whole round.
type MaskedAES struct {
	rk RoundKeys
	// Hooks sees the *masked* intermediates — that is the point.
	Hooks *Hooks
	rng   *rand.Rand
}

// NewMaskedAES builds a masked encryptor with a seeded mask generator
// (seeding keeps experiments reproducible; a deployment would use a TRNG).
func NewMaskedAES(key []byte, seed int64) (*MaskedAES, error) {
	rk, err := ExpandKey(key)
	if err != nil {
		return nil, err
	}
	return &MaskedAES{rk: rk, rng: rand.New(rand.NewSource(seed))}, nil
}

// Encrypt performs one masked block encryption. The returned ciphertext is
// identical to an unmasked AES-128 encryption of pt.
func (m *MaskedAES) Encrypt(pt []byte) [16]byte {
	mIn := byte(m.rng.Intn(256))
	mOut := byte(m.rng.Intn(256))
	// Build the per-block masked S-box. Every table entry leaks values
	// masked by mOut; the loop structure is key-independent.
	var sm [256]byte
	for x := 0; x < 256; x++ {
		sm[x] = sbox[byte(x)^mIn] ^ mOut
	}

	leak := func(round, i int, v byte) {
		if m.Hooks != nil && m.Hooks.SBoxOut != nil {
			m.Hooks.SBoxOut(round, i, v)
		}
	}

	var s [16]byte
	copy(s[:], pt)
	addRoundKey(&s, &m.rk[0])
	// Mask the state with mIn.
	for i := range s {
		s[i] ^= mIn
	}
	for round := 1; round <= 9; round++ {
		if m.Hooks != nil && m.Hooks.RoundIn != nil {
			m.Hooks.RoundIn(round, &s)
		}
		// Masked SubBytes: state goes from mask mIn to mask mOut.
		for i := range s {
			s[i] = sm[s[i]]
			leak(round, i, s[i]) // leaks S(x) ^ mOut
		}
		shiftRows(&s) // uniform mask commutes
		mixColumns(&s)
		// A uniform column mask is MC-invariant, so the state is still
		// masked by mOut everywhere.
		addRoundKey(&s, &m.rk[round])
		// Re-mask from mOut to mIn for the next round's SubBytes.
		d := mOut ^ mIn
		for i := range s {
			s[i] ^= d
		}
	}
	if m.Hooks != nil && m.Hooks.RoundIn != nil {
		m.Hooks.RoundIn(10, &s)
	}
	for i := range s {
		s[i] = sm[s[i]]
		leak(10, i, s[i])
	}
	shiftRows(&s)
	addRoundKey(&s, &m.rk[10])
	// Remove the final mask.
	for i := range s {
		s[i] ^= mOut
	}
	return s
}
