package softcrypto

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

// refEncrypt encrypts with the Go standard library as ground truth.
func refEncrypt(t *testing.T, key, pt []byte) []byte {
	t.Helper()
	blk, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	blk.Encrypt(out, pt)
	return out
}

func TestEncryptMatchesStdlibFIPSVector(t *testing.T) {
	// FIPS-197 Appendix B vector.
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := []byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	rk := MustExpandKey(key)
	got := Encrypt(&rk, pt, nil)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("FIPS vector: got %x want %x", got, want)
	}
}

func randBlock(rng *rand.Rand) []byte {
	b := make([]byte, 16)
	rng.Read(b)
	return b
}

func TestEncryptMatchesStdlibQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		key, pt := randBlock(rng), randBlock(rng)
		rk := MustExpandKey(key)
		got := Encrypt(&rk, pt, nil)
		return bytes.Equal(got[:], refEncrypt(t, key, pt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAESMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		key, pt := randBlock(rng), randBlock(rng)
		ta, err := NewTableAES(key)
		if err != nil {
			return false
		}
		got := ta.Encrypt(pt)
		return bytes.Equal(got[:], refEncrypt(t, key, pt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedAESMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ma, err := NewMaskedAES([]byte("0123456789abcdef"), 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		pt := randBlock(rng)
		got := ma.Encrypt(pt)
		want := refEncrypt(t, []byte("0123456789abcdef"), pt)
		if !bytes.Equal(got[:], want) {
			t.Fatalf("masked encrypt #%d: got %x want %x", i, got, want)
		}
	}
}

func TestCTAESMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		key, pt := randBlock(rng), randBlock(rng)
		ct, err := NewCTAES(key)
		if err != nil {
			return false
		}
		got := ct.Encrypt(pt)
		return bytes.Equal(got[:], refEncrypt(t, key, pt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCTSboxMatchesTable(t *testing.T) {
	for x := 0; x < 256; x++ {
		if got := ctSbox(byte(x)); got != sbox[x] {
			t.Fatalf("ctSbox(%#x) = %#x, want %#x", x, got, sbox[x])
		}
	}
}

func TestInvSboxRoundTrip(t *testing.T) {
	for x := 0; x < 256; x++ {
		if InvSBox(SBox(byte(x))) != byte(x) {
			t.Fatalf("inverse S-box broken at %#x", x)
		}
	}
}

func TestKeyScheduleInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		key := randBlock(rng)
		rk := MustExpandKey(key)
		back := InvertKeySchedule(rk[10])
		return bytes.Equal(back[:], key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandKeyValidatesLength(t *testing.T) {
	if _, err := ExpandKey([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExpandKey did not panic")
		}
	}()
	MustExpandKey(nil)
}

func TestHooksObserveAndTamper(t *testing.T) {
	key := []byte("yellow submarine")
	rk := MustExpandKey(key)
	var sboxCalls, roundCalls int
	h := &Hooks{
		SBoxOut: func(round, i int, v byte) { sboxCalls++ },
		RoundIn: func(round int, s *[16]byte) { roundCalls++ },
	}
	pt := make([]byte, 16)
	Encrypt(&rk, pt, h)
	if sboxCalls != 160 { // 10 rounds x 16 bytes
		t.Errorf("SBoxOut calls = %d", sboxCalls)
	}
	if roundCalls != 10 {
		t.Errorf("RoundIn calls = %d", roundCalls)
	}
	// Tampering at round 9 changes exactly 4 ciphertext bytes (one
	// MixColumns column) — the Piret–Quisquater fault propagation.
	clean := Encrypt(&rk, pt, nil)
	faulty := Encrypt(&rk, pt, &Hooks{RoundIn: func(round int, s *[16]byte) {
		if round == 9 {
			s[0] ^= 0x42
		}
	}})
	diff := 0
	for i := range clean {
		if clean[i] != faulty[i] {
			diff++
		}
	}
	if diff != 4 {
		t.Errorf("round-9 single-byte fault changed %d ciphertext bytes, want 4", diff)
	}
}

func TestShiftRowsIndexConsistency(t *testing.T) {
	// Faulting round-10-input byte (r, c) must change exactly the
	// ciphertext byte ShiftRowsIndex(r, c).
	key := []byte("0123456789abcdef")
	rk := MustExpandKey(key)
	pt := make([]byte, 16)
	clean := Encrypt(&rk, pt, nil)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pos := 4*c + r
			faulty := Encrypt(&rk, pt, &Hooks{RoundIn: func(round int, s *[16]byte) {
				if round == 10 {
					s[pos] ^= 0xff
				}
			}})
			changed := -1
			count := 0
			for i := range clean {
				if clean[i] != faulty[i] {
					changed = i
					count++
				}
			}
			if count != 1 || changed != ShiftRowsIndex(r, c) {
				t.Fatalf("fault at (%d,%d): changed byte %d (count %d), want %d",
					r, c, changed, count, ShiftRowsIndex(r, c))
			}
		}
	}
}

func TestTableHookSeesFirstRoundIndices(t *testing.T) {
	key := []byte("abcdefghijklmnop")
	ta, err := NewTableAES(key)
	if err != nil {
		t.Fatal(err)
	}
	var first16 []struct {
		table int
		idx   byte
	}
	ta.Hook = func(table int, idx byte) {
		if len(first16) < 16 {
			first16 = append(first16, struct {
				table int
				idx   byte
			}{table, idx})
		}
	}
	pt := []byte("PLAINTEXTBLOCK!!")
	ta.Encrypt(pt)
	if len(first16) != 16 {
		t.Fatalf("hook calls = %d", len(first16))
	}
	// Round 1 index for state byte i is pt[i]^key[i]; check the T0
	// accesses (state bytes 0, 4, 8, 12 in our lookup order).
	for n, stateIdx := range []int{0, 4 + 1, 8 + 2, 12 + 3} {
		_ = stateIdx
		if first16[n*4].table != 0 {
			t.Fatalf("lookup %d table = %d, want T0", n*4, first16[n*4].table)
		}
	}
	if first16[0].idx != pt[0]^key[0] {
		t.Errorf("first T0 index = %#x, want pt0^k0 = %#x", first16[0].idx, pt[0]^key[0])
	}
}

func TestGFMultiplication(t *testing.T) {
	if gmul(0x57, 0x83) != 0xc1 { // FIPS-197 example
		t.Errorf("gmul(0x57, 0x83) = %#x", gmul(0x57, 0x83))
	}
	if Mul2(0x80) != 0x1b || Mul3(0x80) != 0x9b {
		t.Errorf("Mul2/Mul3 at 0x80: %#x %#x", Mul2(0x80), Mul3(0x80))
	}
	// Distributivity: a*(b^c) == a*b ^ a*c.
	f := func(a, b, c byte) bool {
		return gmul(a, b^c) == gmul(a, b)^gmul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
