package softcrypto

// CTAES is a constant-time AES-128: the S-box is computed arithmetically
// (GF(2^8) inversion by a fixed square-and-multiply chain plus the affine
// transform) instead of by table lookup. With no key-dependent memory
// accesses there is nothing for Evict+Time / Prime+Probe / Flush+Reload to
// observe — the software countermeasure cited as [3] (Bernstein–Lange–
// Schwabe) in the paper.
type CTAES struct {
	rk RoundKeys
}

// NewCTAES expands the key for constant-time encryption.
func NewCTAES(key []byte) (*CTAES, error) {
	rk, err := ExpandKey(key)
	if err != nil {
		return nil, err
	}
	return &CTAES{rk: rk}, nil
}

// ctInverse computes x^254 = x^-1 in GF(2^8) with a fixed multiplication
// chain (no branches, no lookups).
func ctInverse(x byte) byte {
	// Addition chain for 254: x2=x^2, x4, x8, x16, x32, x64, x128;
	// x^254 = x128 * x64 * x32 * x16 * x8 * x4 * x2.
	x2 := gmul(x, x)
	x4 := gmul(x2, x2)
	x8 := gmul(x4, x4)
	x16 := gmul(x8, x8)
	x32 := gmul(x16, x16)
	x64 := gmul(x32, x32)
	x128 := gmul(x64, x64)
	r := gmul(x128, x64)
	r = gmul(r, x32)
	r = gmul(r, x16)
	r = gmul(r, x8)
	r = gmul(r, x4)
	r = gmul(r, x2)
	return r
}

// ctSbox computes the AES S-box arithmetically: affine(inverse(x)).
func ctSbox(x byte) byte {
	inv := ctInverse(x)
	// Affine transform: b ^ rot1(b) ^ rot2(b) ^ rot3(b) ^ rot4(b) ^ 0x63.
	b := inv
	r := b
	for i := 1; i <= 4; i++ {
		b = b<<1 | b>>7
		r ^= b
	}
	return r ^ 0x63
}

// Encrypt performs one constant-time block encryption.
func (c *CTAES) Encrypt(pt []byte) [16]byte {
	var s [16]byte
	copy(s[:], pt)
	addRoundKey(&s, &c.rk[0])
	for round := 1; round <= 9; round++ {
		for i := range s {
			s[i] = ctSbox(s[i])
		}
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, &c.rk[round])
	}
	for i := range s {
		s[i] = ctSbox(s[i])
	}
	shiftRows(&s)
	addRoundKey(&s, &c.rk[10])
	return s
}
