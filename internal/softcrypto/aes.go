package softcrypto

import "fmt"

// Hooks instruments an AES encryption for side-channel experiments.
type Hooks struct {
	// SBoxOut observes every S-box output: round (1-based), state byte
	// index, and the value. Power-analysis recorders attach here.
	SBoxOut func(round, index int, value byte)
	// RoundIn observes (and may tamper with) the state at the input of
	// each round, before SubBytes. Fault-injection campaigns attach here:
	// flipping a byte at the input of round 9 is the Piret–Quisquater
	// fault model.
	RoundIn func(round int, state *[16]byte)
}

// RoundKeys holds the expanded AES-128 key schedule: 11 round keys in the
// same column-major byte order as the state.
type RoundKeys [11][16]byte

// ExpandKey computes the AES-128 key schedule.
func ExpandKey(key []byte) (RoundKeys, error) {
	var rk RoundKeys
	if len(key) != 16 {
		return rk, fmt.Errorf("softcrypto: AES-128 key must be 16 bytes, got %d", len(key))
	}
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/4]
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	for r := 0; r < 11; r++ {
		for c := 0; c < 4; c++ {
			copy(rk[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return rk, nil
}

// MustExpandKey is ExpandKey for fixed test keys; it panics on bad input.
func MustExpandKey(key []byte) RoundKeys {
	rk, err := ExpandKey(key)
	if err != nil {
		panic(err)
	}
	return rk
}

// InvertKeySchedule recovers the original cipher key from the last round
// key — the final step of the DFA and of last-round-key CPA attacks.
func InvertKeySchedule(rk10 [16]byte) [16]byte {
	var w [44][4]byte
	for c := 0; c < 4; c++ {
		copy(w[40+c][:], rk10[4*c:4*c+4])
	}
	for i := 43; i >= 4; i-- {
		t := w[i-1]
		if i%4 == 0 {
			t = w[i-1]
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/4]
		}
		for j := 0; j < 4; j++ {
			w[i-4][j] = w[i][j] ^ t[j]
		}
	}
	var key [16]byte
	for c := 0; c < 4; c++ {
		copy(key[4*c:4*c+4], w[c][:])
	}
	return key
}

func addRoundKey(s *[16]byte, rk *[16]byte) {
	for i := range s {
		s[i] ^= rk[i]
	}
}

func subBytes(s *[16]byte, round int, h *Hooks) {
	for i := range s {
		s[i] = sbox[s[i]]
		if h != nil && h.SBoxOut != nil {
			h.SBoxOut(round, i, s[i])
		}
	}
}

// shiftRows rotates row r left by r (state is column-major: s[4c+r]).
func shiftRows(s *[16]byte) {
	var t [16]byte
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			t[4*c+r] = s[4*((c+r)%4)+r]
		}
	}
	*s = t
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

// Encrypt performs one AES-128 block encryption with instrumentation.
// pt and the returned ciphertext are 16 bytes.
func Encrypt(rk *RoundKeys, pt []byte, h *Hooks) [16]byte {
	var s [16]byte
	EncryptTo(&s, rk, pt, h)
	return s
}

// EncryptTo is Encrypt with a caller-supplied state buffer, which doubles
// as the ciphertext output. Because hooks see &s, a per-call state array
// always escapes to the heap; trace-capture loops that encrypt thousands
// of blocks reuse one buffer and stay allocation-free.
func EncryptTo(s *[16]byte, rk *RoundKeys, pt []byte, h *Hooks) {
	copy(s[:], pt)
	addRoundKey(s, &rk[0])
	for round := 1; round <= 9; round++ {
		if h != nil && h.RoundIn != nil {
			h.RoundIn(round, s)
		}
		subBytes(s, round, h)
		shiftRows(s)
		mixColumns(s)
		addRoundKey(s, &rk[round])
	}
	if h != nil && h.RoundIn != nil {
		h.RoundIn(10, s)
	}
	subBytes(s, 10, h)
	shiftRows(s)
	addRoundKey(s, &rk[10])
}

// ShiftRowsIndex returns the output byte position that round-10-input
// position (row, col) reaches after the final ShiftRows. The DFA uses it
// to locate the four faulted ciphertext bytes of a column.
func ShiftRowsIndex(row, col int) int {
	// shiftRows reads s[4*((c+r)%4)+r] into s'[4c+r]; so input (r, col)
	// appears at output column c where (c+r)%4 == col.
	c := (col - row + 4) % 4
	return 4*c + row
}
