// Package isa defines HS-32, the 32-bit RISC-like instruction set used by
// the intrust hardware simulator.
//
// HS-32 is deliberately small: 16 general-purpose registers, fixed 32-bit
// instruction words and a single addressing mode. It exists so that the
// security experiments in this repository (Spectre gadgets, Meltdown
// sequences, enclave entry code, attestation ROM routines) can run as real
// programs on a simulated CPU instead of being modelled by ad-hoc Go calls.
//
// Instruction word layout (bit 31 is the most significant bit):
//
//	[31:26] opcode
//	[25:22] rd
//	[21:18] rs1
//	[17:14] rs2
//	[13:0]  imm14 (two's complement where signed)
//
// The U/J-format instructions LUI and JAL use a 22-bit immediate instead:
//
//	[31:26] opcode
//	[25:22] rd
//	[21:0]  imm22 (two's complement for JAL; LUI shifts it left by 10)
package isa

import "fmt"

// Opcode identifies an HS-32 instruction.
type Opcode uint8

// Instruction opcodes. The numeric values are part of the binary encoding
// and must not be reordered.
const (
	OpInvalid Opcode = iota

	// ALU register-register.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU
	OpMUL

	// ALU register-immediate.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSLTI
	OpLUI

	// Loads and stores.
	OpLW
	OpLB
	OpLBU
	OpSW
	OpSB

	// Control flow.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpJAL
	OpJALR

	// System.
	OpCSRR
	OpCSRW
	OpECALL
	OpERET
	OpSMC
	OpFENCE   // speculation barrier: drains the transient window
	OpCLFLUSH // flush the cache line containing [rs1+imm]
	OpHLT
	OpWFI

	opCount // sentinel, not a real opcode
)

// NumOpcodes is the number of defined opcodes including OpInvalid.
const NumOpcodes = int(opCount)

// Register indices with conventional ABI roles. x0 is hardwired to zero.
const (
	RegZero = 0 // always reads as zero
	RegRA   = 1 // return address
	RegSP   = 2 // stack pointer
	RegGP   = 3 // global pointer
	RegT0   = 4 // temporaries t0-t4
	RegT1   = 5
	RegT2   = 6
	RegT3   = 7
	RegT4   = 8
	RegA0   = 9 // arguments / return values a0-a3
	RegA1   = 10
	RegA2   = 11
	RegA3   = 12
	RegS0   = 13 // callee-saved s0-s2
	RegS1   = 14
	RegS2   = 15
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// CSR numbers. CSRs are accessed with OpCSRR/OpCSRW and identified by the
// 14-bit immediate field.
const (
	CSRCycle   = 0x000 // cycle counter (read-only)
	CSRInstret = 0x001 // retired-instruction counter (read-only)
	CSRStatus  = 0x010 // interrupt-enable and previous-privilege state
	CSRTvec    = 0x011 // trap vector base address
	CSREpc     = 0x012 // exception program counter
	CSRCause   = 0x013 // trap cause
	CSRTval    = 0x014 // trap value (faulting address)
	CSRScratch = 0x015 // scratch register for trap handlers
	CSRSatp    = 0x020 // address translation: bit 31 enable, [19:0] root PPN
	CSRFreq    = 0x030 // DVFS: core frequency in MHz
	CSRVolt    = 0x031 // DVFS: core voltage in millivolts
	CSRKey0    = 0x040 // platform key word 0 (access may be PC-gated)
	CSRKey1    = 0x041
	CSRKey2    = 0x042
	CSRKey3    = 0x043
	CSRWorld   = 0x050 // TrustZone-style NS bit (0 = secure, 1 = normal)
)

// Status register bit assignments.
const (
	StatusIE   = 1 << 0 // interrupts enabled
	StatusPIE  = 1 << 1 // previous IE (saved on trap)
	StatusPPS  = 1 << 2 // previous privilege, low bit
	StatusPPM  = 1 << 3 // previous privilege, high bit
	StatusPPSh = 2      // shift of the previous-privilege field
)

// Priv is a CPU privilege level.
type Priv uint8

// Privilege levels, lowest to highest.
const (
	PrivUser    Priv = 0
	PrivSuper   Priv = 1
	PrivMachine Priv = 2
)

func (p Priv) String() string {
	switch p {
	case PrivUser:
		return "U"
	case PrivSuper:
		return "S"
	case PrivMachine:
		return "M"
	}
	return fmt.Sprintf("Priv(%d)", uint8(p))
}

// Cause codes reported in CSRCause when a trap is taken.
const (
	CauseNone       = 0
	CauseIllegal    = 1  // illegal or undecodable instruction
	CauseFetchFault = 2  // instruction access or page fault
	CauseLoadFault  = 3  // data load access or page fault
	CauseStoreFault = 4  // data store access or page fault
	CauseEcallU     = 5  // ECALL from user mode
	CauseEcallS     = 6  // ECALL from supervisor mode
	CauseMisaligned = 7  // misaligned access
	CauseBusError   = 8  // bus or protection error outside translation
	CauseSMC        = 9  // secure monitor call
	CauseInterrupt  = 16 // external/timer interrupt
	CauseGlitchTrap = 17 // integrity trap raised by fault-detection logic
)

// Instruction is a decoded HS-32 instruction.
type Instruction struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended 14-bit, or 22-bit for LUI/JAL
}

// longImm reports whether op uses the 22-bit immediate form.
func longImm(op Opcode) bool {
	return op == OpLUI || op == OpJAL
}

// immBitsFit reports whether v fits in a signed field of the given width.
func immBitsFit(v int32, bits uint) bool {
	min := int32(-1) << (bits - 1)
	max := int32(1)<<(bits-1) - 1
	return v >= min && v <= max
}

// Encode packs the instruction into a 32-bit word. It returns an error if a
// field is out of range so that the assembler can report bad immediates.
func (in Instruction) Encode() (uint32, error) {
	if in.Op == OpInvalid || int(in.Op) >= NumOpcodes {
		return 0, fmt.Errorf("isa: cannot encode opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", in)
	}
	w := uint32(in.Op) << 26
	w |= uint32(in.Rd) << 22
	if longImm(in.Op) {
		if !immBitsFit(in.Imm, 22) {
			return 0, fmt.Errorf("isa: immediate %d out of range for %s", in.Imm, in.Op)
		}
		w |= uint32(in.Imm) & 0x3fffff
		return w, nil
	}
	if !immBitsFit(in.Imm, 14) {
		return 0, fmt.Errorf("isa: immediate %d out of range for %s", in.Imm, in.Op)
	}
	w |= uint32(in.Rs1) << 18
	w |= uint32(in.Rs2) << 14
	w |= uint32(in.Imm) & 0x3fff
	return w, nil
}

// Decode unpacks a 32-bit instruction word. Undecodable words produce an
// Instruction with Op == OpInvalid; executing one raises an illegal
// instruction trap, mirroring real hardware.
func Decode(w uint32) Instruction {
	op := Opcode(w >> 26)
	if int(op) >= NumOpcodes {
		return Instruction{Op: OpInvalid}
	}
	in := Instruction{Op: op, Rd: uint8((w >> 22) & 0xf)}
	if longImm(op) {
		imm := int32(w & 0x3fffff)
		if imm&(1<<21) != 0 {
			imm |= ^int32(0x3fffff)
		}
		in.Imm = imm
		return in
	}
	in.Rs1 = uint8((w >> 18) & 0xf)
	in.Rs2 = uint8((w >> 14) & 0xf)
	imm := int32(w & 0x3fff)
	if imm&(1<<13) != 0 {
		imm |= ^int32(0x3fff)
	}
	in.Imm = imm
	return in
}

// opNames maps opcodes to their assembly mnemonics.
var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpMUL:  "mul",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSLTI: "slti", OpLUI: "lui",
	OpLW: "lw", OpLB: "lb", OpLBU: "lbu", OpSW: "sw", OpSB: "sb",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpCSRR: "csrr", OpCSRW: "csrw",
	OpECALL: "ecall", OpERET: "eret", OpSMC: "smc",
	OpFENCE: "fence", OpCLFLUSH: "clflush",
	OpHLT: "hlt", OpWFI: "wfi",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool {
	return op >= OpBEQ && op <= OpBGEU
}

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool {
	return op == OpLW || op == OpLB || op == OpLBU
}

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool {
	return op == OpSW || op == OpSB
}

// regNames holds the ABI names of the general-purpose registers.
var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "t0", "t1", "t2", "t3", "t4",
	"a0", "a1", "a2", "a3", "s0", "s1", "s2",
}

// RegName returns the ABI name of register r ("x7" style for out-of-range).
func RegName(r uint8) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// RegByName resolves an ABI name ("t0") or numeric name ("x4") to a
// register index.
func RegByName(name string) (uint8, bool) {
	for i, n := range regNames {
		if n == name {
			return uint8(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		var v int
		if _, err := fmt.Sscanf(name, "x%d", &v); err == nil && v >= 0 && v < NumRegs {
			return uint8(v), true
		}
	}
	return 0, false
}

func (in Instruction) String() string {
	switch {
	case in.Op == OpInvalid:
		return "invalid"
	case in.Op == OpLUI:
		return fmt.Sprintf("lui %s, %d", RegName(in.Rd), in.Imm)
	case in.Op == OpJAL:
		return fmt.Sprintf("jal %s, %d", RegName(in.Rd), in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case in.Op == OpCSRR:
		return fmt.Sprintf("csrr %s, %#x", RegName(in.Rd), in.Imm)
	case in.Op == OpCSRW:
		return fmt.Sprintf("csrw %#x, %s", in.Imm, RegName(in.Rs1))
	case in.Op == OpECALL:
		return fmt.Sprintf("ecall %d", in.Imm)
	case in.Op == OpERET || in.Op == OpHLT || in.Op == OpWFI || in.Op == OpFENCE || in.Op == OpSMC:
		return in.Op.String()
	case in.Op == OpCLFLUSH:
		return fmt.Sprintf("clflush %d(%s)", in.Imm, RegName(in.Rs1))
	case in.Op == OpJALR:
		return fmt.Sprintf("jalr %s, %s, %d", RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case in.Op >= OpADDI && in.Op <= OpSLTI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	}
}
