package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDisassembleFormat(t *testing.T) {
	in := Instruction{Op: OpADDI, Rd: RegA0, Rs1: RegT0, Imm: 42}
	w, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(0x1000, w)
	for _, want := range []string{"00001000", "addi a0, t0, 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly %q missing %q", out, want)
		}
	}
}

// Property: assembling the disassembler's mnemonic output of a random
// instruction yields the identical word (encode/format/parse fixpoint)
// for the register-register and register-immediate classes.
func TestAssembleDisassembleFixpoint(t *testing.T) {
	i := 0
	ops := []Opcode{OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
		OpSLT, OpSLTU, OpMUL, OpADDI, OpANDI, OpORI, OpXORI}
	f := func(rd, rs1, rs2 uint8, imm int16) bool {
		op := ops[i%len(ops)]
		i++
		in := Instruction{Op: op, Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs,
			Imm: int32(imm % 8000)}
		if op < OpADDI {
			in.Imm = 0
		} else {
			in.Rs2 = 0
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		// Reassemble the String() rendering.
		p, err := Assemble(Decode(w).String())
		if err != nil {
			return false
		}
		seg := p.Segments[0]
		got := uint32(seg.Data[0]) | uint32(seg.Data[1])<<8 |
			uint32(seg.Data[2])<<16 | uint32(seg.Data[3])<<24
		return got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleInvalidWord(t *testing.T) {
	out := Disassemble(0, 0xffffffff)
	if !strings.Contains(out, "invalid") {
		t.Errorf("invalid word disassembled as %q", out)
	}
}
