package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Program is the output of the assembler: one or more contiguous memory
// segments plus the resolved symbol table.
type Program struct {
	Entry    uint32            // address of the first instruction (or .org base)
	Segments []Segment         // sorted by base address
	Symbols  map[string]uint32 // label -> address
}

// Segment is a contiguous byte image placed at Base.
type Segment struct {
	Base uint32
	Data []byte
}

// Size returns the total number of bytes across all segments.
func (p *Program) Size() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Data)
	}
	return n
}

// Symbol returns the address of a label, or panics if it is undefined.
// It is intended for tests and example harnesses where a missing label is a
// programming error.
func (p *Program) Symbol(name string) uint32 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: undefined symbol %q", name))
	}
	return a
}

// csrNames maps symbolic CSR operand names to CSR numbers.
var csrNames = map[string]int32{
	"cycle": CSRCycle, "instret": CSRInstret, "status": CSRStatus,
	"tvec": CSRTvec, "epc": CSREpc, "cause": CSRCause, "tval": CSRTval,
	"scratch": CSRScratch, "satp": CSRSatp, "freq": CSRFreq, "volt": CSRVolt,
	"key0": CSRKey0, "key1": CSRKey1, "key2": CSRKey2, "key3": CSRKey3,
	"world": CSRWorld,
}

type asmError struct {
	line int
	msg  string
}

func (e asmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.line, e.msg) }

// fragment is an intermediate item produced during pass 1.
type fragment struct {
	line  int
	addr  uint32
	mnem  string   // instruction mnemonic, or "" for data
	args  []string // raw operand strings
	data  []byte   // literal data for directives
	words int      // size in bytes this fragment occupies
}

// Assemble translates HS-32 assembly source into a Program.
//
// Syntax summary:
//
//	label:  mnemonic op1, op2, ...   ; comment (also # and //)
//	        .org  0x1000             ; set current placement address
//	        .word 1, 2, sym          ; emit 32-bit little-endian words
//	        .byte 1, 2, 3            ; emit bytes
//	        .space 64                ; emit zero bytes
//	        .equ  name, expr         ; define a constant
//
// Pseudo-instructions: li, la, mv, nop, not, j, call, ret, rdcycle,
// bgt, ble, bgtu, bleu. li/la always occupy two instruction slots.
// Branch and jal targets may be labels or absolute expressions; the
// assembler converts them to word-relative offsets.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		symbols: map[string]uint32{},
		consts:  map[string]int32{},
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	return a.finish(), nil
}

// MustAssemble is Assemble that panics on error, for tests and fixed
// built-in programs (ROM routines, probe gadgets) whose sources are
// compile-time constants.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	frags   []fragment
	symbols map[string]uint32
	consts  map[string]int32
	segs    map[uint32][]byte // base -> bytes, built in pass 2
	order   []uint32
	entry   uint32
	haveOrg bool
}

func stripComment(line string) string {
	for _, sep := range []string{";", "#", "//"} {
		if i := strings.Index(line, sep); i >= 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// instrSlots returns how many 4-byte instruction slots a mnemonic occupies.
func instrSlots(mnem string) int {
	switch mnem {
	case "li", "la":
		return 2
	}
	return 1
}

func (a *assembler) pass1(src string) error {
	addr := uint32(0)
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		// Labels (possibly several on one line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				break // not a label, e.g. inside an operand
			}
			if _, dup := a.symbols[label]; dup {
				return asmError{ln + 1, fmt.Sprintf("duplicate label %q", label)}
			}
			a.symbols[label] = addr
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(strings.TrimSpace(fields[0]))
		rest := ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		args := splitArgs(rest)
		switch mnem {
		case ".org":
			if len(args) != 1 {
				return asmError{ln + 1, ".org needs one operand"}
			}
			v, err := a.evalConst(args[0], ln+1)
			if err != nil {
				return err
			}
			addr = uint32(v)
			if !a.haveOrg {
				a.entry = addr
				a.haveOrg = true
			}
		case ".equ":
			if len(args) != 2 {
				return asmError{ln + 1, ".equ needs name, value"}
			}
			v, err := a.evalConst(args[1], ln+1)
			if err != nil {
				return err
			}
			a.consts[args[0]] = v
		case ".word":
			a.frags = append(a.frags, fragment{line: ln + 1, addr: addr, mnem: ".word", args: args, words: 4 * len(args)})
			addr += uint32(4 * len(args))
		case ".byte":
			a.frags = append(a.frags, fragment{line: ln + 1, addr: addr, mnem: ".byte", args: args, words: len(args)})
			addr += uint32(len(args))
		case ".space":
			if len(args) != 1 {
				return asmError{ln + 1, ".space needs a size"}
			}
			v, err := a.evalConst(args[0], ln+1)
			if err != nil {
				return err
			}
			if v < 0 {
				return asmError{ln + 1, "negative .space"}
			}
			a.frags = append(a.frags, fragment{line: ln + 1, addr: addr, mnem: ".space", data: make([]byte, v), words: int(v)})
			addr += uint32(v)
		case ".align":
			if len(args) != 1 {
				return asmError{ln + 1, ".align needs an alignment"}
			}
			v, err := a.evalConst(args[0], ln+1)
			if err != nil {
				return err
			}
			if v <= 0 || v&(v-1) != 0 {
				return asmError{ln + 1, "alignment must be a power of two"}
			}
			pad := (uint32(v) - addr%uint32(v)) % uint32(v)
			if pad > 0 {
				a.frags = append(a.frags, fragment{line: ln + 1, addr: addr, mnem: ".space", data: make([]byte, pad), words: int(pad)})
				addr += pad
			}
		default:
			n := instrSlots(mnem)
			a.frags = append(a.frags, fragment{line: ln + 1, addr: addr, mnem: mnem, args: args, words: 4 * n})
			addr += uint32(4 * n)
		}
	}
	return nil
}

// evalConst evaluates an expression that may not reference labels
// (used by directives processed during pass 1).
func (a *assembler) evalConst(expr string, line int) (int32, error) {
	v, err := a.eval(expr, true)
	if err != nil {
		return 0, asmError{line, err.Error()}
	}
	return v, nil
}

// eval evaluates "term((+|-)term)*" where term is a decimal/hex number, a
// character literal, an .equ constant or (unless constOnly) a label.
func (a *assembler) eval(expr string, constOnly bool) (int32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, fmt.Errorf("empty expression")
	}
	total := int64(0)
	sign := int64(1)
	i := 0
	first := true
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == '+':
			sign = 1
			i++
			continue
		case c == '-':
			sign = -sign
			i++
			continue
		case c == ' ' || c == '\t':
			i++
			continue
		}
		j := i
		for j < len(expr) && expr[j] != '+' && expr[j] != '-' && expr[j] != ' ' {
			j++
		}
		tok := expr[i:j]
		v, err := a.term(tok, constOnly)
		if err != nil {
			return 0, err
		}
		total += sign * int64(v)
		sign = 1
		i = j
		first = false
	}
	if first {
		return 0, fmt.Errorf("malformed expression %q", expr)
	}
	return int32(total), nil
}

func (a *assembler) term(tok string, constOnly bool) (int32, error) {
	if v, ok := a.consts[tok]; ok {
		return v, nil
	}
	if len(tok) == 3 && tok[0] == '\'' && tok[2] == '\'' {
		return int32(tok[1]), nil
	}
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return int32(v), nil
	}
	// Allow full-range unsigned literals like 0xdeadbeef.
	if v, err := strconv.ParseUint(tok, 0, 32); err == nil {
		return int32(uint32(v)), nil
	}
	if !constOnly {
		if v, ok := a.symbols[tok]; ok {
			return int32(v), nil
		}
	}
	return 0, fmt.Errorf("undefined symbol %q", tok)
}

func (a *assembler) reg(tok string, line int) (uint8, error) {
	r, ok := RegByName(strings.TrimSpace(tok))
	if !ok {
		return 0, asmError{line, fmt.Sprintf("unknown register %q", tok)}
	}
	return r, nil
}

// memOperand parses "off(reg)" where off is an optional expression.
func (a *assembler) memOperand(tok string, line int) (int32, uint8, error) {
	open := strings.Index(tok, "(")
	close := strings.LastIndex(tok, ")")
	if open < 0 || close < open {
		return 0, 0, asmError{line, fmt.Sprintf("bad memory operand %q (want off(reg))", tok)}
	}
	offExpr := strings.TrimSpace(tok[:open])
	var off int32
	if offExpr != "" {
		v, err := a.eval(offExpr, false)
		if err != nil {
			return 0, 0, asmError{line, err.Error()}
		}
		off = v
	}
	r, err := a.reg(tok[open+1:close], line)
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}

func (a *assembler) csr(tok string, line int) (int32, error) {
	if v, ok := csrNames[strings.ToLower(strings.TrimSpace(tok))]; ok {
		return v, nil
	}
	v, err := a.eval(tok, false)
	if err != nil {
		return 0, asmError{line, fmt.Sprintf("unknown CSR %q", tok)}
	}
	return v, nil
}

func (a *assembler) emit(f fragment, in Instruction, slot int) error {
	w, err := in.Encode()
	if err != nil {
		return asmError{f.line, err.Error()}
	}
	a.put32(f.addr+uint32(4*slot), w)
	return nil
}

func (a *assembler) put32(addr uint32, w uint32) {
	base, buf := a.segFor(addr)
	off := addr - base
	buf[off] = byte(w)
	buf[off+1] = byte(w >> 8)
	buf[off+2] = byte(w >> 16)
	buf[off+3] = byte(w >> 24)
}

// segFor returns the segment containing addr. Segments are pre-allocated in
// pass2 setup from fragment extents.
func (a *assembler) segFor(addr uint32) (uint32, []byte) {
	for _, base := range a.order {
		buf := a.segs[base]
		if addr >= base && addr < base+uint32(len(buf)) {
			return base, buf
		}
	}
	panic(fmt.Sprintf("isa: address %#x outside any segment", addr))
}

func (a *assembler) pass2() error {
	// Build segment extents: merge fragments into contiguous runs.
	type run struct{ start, end uint32 }
	var runs []run
	sorted := make([]fragment, len(a.frags))
	copy(sorted, a.frags)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].addr < sorted[j].addr })
	for _, f := range sorted {
		if f.words == 0 {
			continue
		}
		end := f.addr + uint32(f.words)
		if len(runs) > 0 && f.addr <= runs[len(runs)-1].end {
			if end > runs[len(runs)-1].end {
				runs[len(runs)-1].end = end
			}
			continue
		}
		runs = append(runs, run{f.addr, end})
	}
	a.segs = map[uint32][]byte{}
	for _, r := range runs {
		a.segs[r.start] = make([]byte, r.end-r.start)
		a.order = append(a.order, r.start)
	}
	if !a.haveOrg && len(runs) > 0 {
		a.entry = runs[0].start
	}

	for _, f := range a.frags {
		if err := a.assembleFragment(f); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) assembleFragment(f fragment) error {
	switch f.mnem {
	case ".word":
		for i, arg := range f.args {
			v, err := a.eval(arg, false)
			if err != nil {
				return asmError{f.line, err.Error()}
			}
			a.put32(f.addr+uint32(4*i), uint32(v))
		}
		return nil
	case ".byte":
		base, buf := a.segFor(f.addr)
		for i, arg := range f.args {
			v, err := a.eval(arg, false)
			if err != nil {
				return asmError{f.line, err.Error()}
			}
			buf[f.addr-base+uint32(i)] = byte(v)
		}
		return nil
	case ".space":
		return nil // already zeroed
	}
	return a.assembleInstr(f)
}

// relTarget converts a branch/jump target expression into a word-relative
// offset from the instruction at addr.
func (a *assembler) relTarget(expr string, addr uint32, line int) (int32, error) {
	v, err := a.eval(expr, false)
	if err != nil {
		return 0, asmError{line, err.Error()}
	}
	diff := int64(int32(uint32(v))) - int64(int32(addr))
	if diff%4 != 0 {
		return 0, asmError{line, fmt.Sprintf("branch target %#x misaligned from %#x", uint32(v), addr)}
	}
	return int32(diff / 4), nil
}

func (a *assembler) assembleInstr(f fragment) error {
	need := func(n int) error {
		if len(f.args) != n {
			return asmError{f.line, fmt.Sprintf("%s needs %d operands, got %d", f.mnem, n, len(f.args))}
		}
		return nil
	}

	rrr := func(op Opcode) error {
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs1, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		rs2, err := a.reg(f.args[2], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, 0)
	}
	rri := func(op Opcode) error {
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs1, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		imm, err := a.eval(f.args[2], false)
		if err != nil {
			return asmError{f.line, err.Error()}
		}
		return a.emit(f, Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, 0)
	}
	load := func(op Opcode) error {
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		off, rs1, err := a.memOperand(f.args[1], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: off}, 0)
	}
	store := func(op Opcode) error {
		if err := need(2); err != nil {
			return err
		}
		rs2, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		off, rs1, err := a.memOperand(f.args[1], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, 0)
	}
	branch := func(op Opcode, swap bool) error {
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs2, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		if swap {
			rs1, rs2 = rs2, rs1
		}
		off, err := a.relTarget(f.args[2], f.addr, f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, 0)
	}
	loadImm := func(rd uint8, v int32) error {
		// Always two slots: lui+addi, so sizes from pass 1 hold.
		hi := (v + 512) >> 10
		lo := v - (hi << 10)
		if err := a.emit(f, Instruction{Op: OpLUI, Rd: rd, Imm: hi}, 0); err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpADDI, Rd: rd, Rs1: rd, Imm: lo}, 1)
	}

	switch f.mnem {
	case "add":
		return rrr(OpADD)
	case "sub":
		return rrr(OpSUB)
	case "and":
		return rrr(OpAND)
	case "or":
		return rrr(OpOR)
	case "xor":
		return rrr(OpXOR)
	case "sll":
		return rrr(OpSLL)
	case "srl":
		return rrr(OpSRL)
	case "sra":
		return rrr(OpSRA)
	case "slt":
		return rrr(OpSLT)
	case "sltu":
		return rrr(OpSLTU)
	case "mul":
		return rrr(OpMUL)
	case "addi":
		return rri(OpADDI)
	case "andi":
		return rri(OpANDI)
	case "ori":
		return rri(OpORI)
	case "xori":
		return rri(OpXORI)
	case "slli":
		return rri(OpSLLI)
	case "srli":
		return rri(OpSRLI)
	case "slti":
		return rri(OpSLTI)
	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		imm, err := a.eval(f.args[1], false)
		if err != nil {
			return asmError{f.line, err.Error()}
		}
		return a.emit(f, Instruction{Op: OpLUI, Rd: rd, Imm: imm}, 0)
	case "lw":
		return load(OpLW)
	case "lb":
		return load(OpLB)
	case "lbu":
		return load(OpLBU)
	case "sw":
		return store(OpSW)
	case "sb":
		return store(OpSB)
	case "beq":
		return branch(OpBEQ, false)
	case "bne":
		return branch(OpBNE, false)
	case "blt":
		return branch(OpBLT, false)
	case "bge":
		return branch(OpBGE, false)
	case "bltu":
		return branch(OpBLTU, false)
	case "bgeu":
		return branch(OpBGEU, false)
	case "bgt":
		return branch(OpBLT, true)
	case "ble":
		return branch(OpBGE, true)
	case "bgtu":
		return branch(OpBLTU, true)
	case "bleu":
		return branch(OpBGEU, true)
	case "jal":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		off, err := a.relTarget(f.args[1], f.addr, f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpJAL, Rd: rd, Imm: off}, 0)
	case "jalr":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs1, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		imm, err := a.eval(f.args[2], false)
		if err != nil {
			return asmError{f.line, err.Error()}
		}
		return a.emit(f, Instruction{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: imm}, 0)
	case "csrr":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		csr, err := a.csr(f.args[1], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpCSRR, Rd: rd, Imm: csr}, 0)
	case "csrw":
		if err := need(2); err != nil {
			return err
		}
		csr, err := a.csr(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs1, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpCSRW, Rs1: rs1, Imm: csr}, 0)
	case "ecall":
		var imm int32
		if len(f.args) == 1 {
			v, err := a.eval(f.args[0], false)
			if err != nil {
				return asmError{f.line, err.Error()}
			}
			imm = v
		} else if len(f.args) != 0 {
			return asmError{f.line, "ecall takes at most one operand"}
		}
		return a.emit(f, Instruction{Op: OpECALL, Imm: imm}, 0)
	case "eret":
		return a.emit(f, Instruction{Op: OpERET}, 0)
	case "smc":
		var imm int32
		if len(f.args) == 1 {
			v, err := a.eval(f.args[0], false)
			if err != nil {
				return asmError{f.line, err.Error()}
			}
			imm = v
		}
		return a.emit(f, Instruction{Op: OpSMC, Imm: imm}, 0)
	case "fence":
		return a.emit(f, Instruction{Op: OpFENCE}, 0)
	case "clflush":
		if err := need(1); err != nil {
			return err
		}
		off, rs1, err := a.memOperand(f.args[0], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpCLFLUSH, Rs1: rs1, Imm: off}, 0)
	case "hlt":
		return a.emit(f, Instruction{Op: OpHLT}, 0)
	case "wfi":
		return a.emit(f, Instruction{Op: OpWFI}, 0)

	// Pseudo-instructions.
	case "nop":
		return a.emit(f, Instruction{Op: OpADDI}, 0)
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs1, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpADDI, Rd: rd, Rs1: rs1}, 0)
	case "not":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		rs1, err := a.reg(f.args[1], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: -1}, 0)
	case "li", "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		v, err := a.eval(f.args[1], false)
		if err != nil {
			return asmError{f.line, err.Error()}
		}
		return loadImm(rd, v)
	case "j":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.relTarget(f.args[0], f.addr, f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpJAL, Rd: RegZero, Imm: off}, 0)
	case "call":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.relTarget(f.args[0], f.addr, f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpJAL, Rd: RegRA, Imm: off}, 0)
	case "ret":
		return a.emit(f, Instruction{Op: OpJALR, Rd: RegZero, Rs1: RegRA}, 0)
	case "rdcycle":
		if err := need(1); err != nil {
			return err
		}
		rd, err := a.reg(f.args[0], f.line)
		if err != nil {
			return err
		}
		return a.emit(f, Instruction{Op: OpCSRR, Rd: rd, Imm: CSRCycle}, 0)
	}
	return asmError{f.line, fmt.Sprintf("unknown mnemonic %q", f.mnem)}
}

func (a *assembler) finish() *Program {
	p := &Program{Entry: a.entry, Symbols: a.symbols}
	sort.Slice(a.order, func(i, j int) bool { return a.order[i] < a.order[j] })
	for _, base := range a.order {
		p.Segments = append(p.Segments, Segment{Base: base, Data: a.segs[base]})
	}
	return p
}

// Disassemble renders the instruction word at addr for debugging output.
func Disassemble(addr, word uint32) string {
	return fmt.Sprintf("%08x: %08x  %s", addr, word, Decode(word))
}
