package isa

import (
	"strings"
	"testing"
)

func word(t *testing.T, p *Program, addr uint32) uint32 {
	t.Helper()
	for _, s := range p.Segments {
		if addr >= s.Base && addr+4 <= s.Base+uint32(len(s.Data)) {
			off := addr - s.Base
			return uint32(s.Data[off]) | uint32(s.Data[off+1])<<8 |
				uint32(s.Data[off+2])<<16 | uint32(s.Data[off+3])<<24
		}
	}
	t.Fatalf("address %#x not in program", addr)
	return 0
}

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
        .org 0x1000
start:  addi t0, zero, 5     ; counter
loop:   addi t0, t0, -1
        bne  t0, zero, loop
        hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1000 {
		t.Fatalf("entry = %#x, want 0x1000", p.Entry)
	}
	if got := p.Symbol("start"); got != 0x1000 {
		t.Errorf("start = %#x", got)
	}
	if got := p.Symbol("loop"); got != 0x1004 {
		t.Errorf("loop = %#x", got)
	}
	in := Decode(word(t, p, 0x1008))
	if in.Op != OpBNE || in.Imm != -1 {
		t.Errorf("branch = %v, want bne with offset -1", in)
	}
	if Decode(word(t, p, 0x100c)).Op != OpHLT {
		t.Error("missing hlt")
	}
}

func TestAssembleLoadImmediate(t *testing.T) {
	// li must reproduce arbitrary 32-bit constants through lui+addi.
	values := []uint32{0, 1, 0xffffffff, 0x12345678, 0x80000000, 0x7fffffff,
		0xdeadbeef, 1 << 10, (1 << 10) - 1, 0xfffffc00}
	for _, v := range values {
		p, err := Assemble("li a0, " + itohex(v) + "\nhlt")
		if err != nil {
			t.Fatalf("li %#x: %v", v, err)
		}
		lui := Decode(word(t, p, 0))
		addi := Decode(word(t, p, 4))
		if lui.Op != OpLUI || addi.Op != OpADDI {
			t.Fatalf("li %#x expanded to %v; %v", v, lui, addi)
		}
		got := uint32(lui.Imm<<10) + uint32(addi.Imm)
		if got != v {
			t.Errorf("li %#x materializes %#x", v, got)
		}
	}
}

func itohex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = digits[v&0xf]
		v >>= 4
	}
	return "0x" + string(out)
}

func TestAssembleDataDirectives(t *testing.T) {
	p, err := Assemble(`
        .org 0x2000
        .equ magic, 0x1234
table:  .word 1, 2, magic, table
bytes:  .byte 0xaa, 'A', 7
        .space 5
after:  hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := word(t, p, 0x2008); got != 0x1234 {
		t.Errorf(".word magic = %#x", got)
	}
	if got := word(t, p, 0x200c); got != 0x2000 {
		t.Errorf(".word table = %#x", got)
	}
	seg := p.Segments[0]
	if seg.Data[0x2010-seg.Base] != 0xaa || seg.Data[0x2011-seg.Base] != 'A' || seg.Data[0x2012-seg.Base] != 7 {
		t.Error(".byte contents wrong")
	}
	if got := p.Symbol("after"); got != 0x2018 {
		t.Errorf("after = %#x, want 0x2018", got)
	}
}

func TestAssembleMultipleSegments(t *testing.T) {
	p, err := Assemble(`
        .org 0x1000
        hlt
        .org 0x8000
data:   .word 42
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(p.Segments))
	}
	if got := word(t, p, 0x8000); got != 42 {
		t.Errorf("data = %d", got)
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	p, err := Assemble(`
        nop
        mv   a0, a1
        not  a2, a3
        j    end
        call end
        rdcycle t0
end:    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if in := Decode(word(t, p, 0)); in.Op != OpADDI || in.Rd != RegZero {
		t.Errorf("nop = %v", in)
	}
	if in := Decode(word(t, p, 4)); in.Op != OpADDI || in.Rd != RegA0 || in.Rs1 != RegA1 {
		t.Errorf("mv = %v", in)
	}
	if in := Decode(word(t, p, 8)); in.Op != OpXORI || in.Imm != -1 {
		t.Errorf("not = %v", in)
	}
	if in := Decode(word(t, p, 12)); in.Op != OpJAL || in.Rd != RegZero || in.Imm != 3 {
		t.Errorf("j = %v", in)
	}
	if in := Decode(word(t, p, 16)); in.Op != OpJAL || in.Rd != RegRA || in.Imm != 2 {
		t.Errorf("call = %v", in)
	}
	if in := Decode(word(t, p, 20)); in.Op != OpCSRR || in.Imm != CSRCycle {
		t.Errorf("rdcycle = %v", in)
	}
	if in := Decode(word(t, p, 24)); in.Op != OpJALR || in.Rs1 != RegRA || in.Rd != RegZero {
		t.Errorf("ret = %v", in)
	}
}

func TestAssembleSwappedBranches(t *testing.T) {
	p, err := Assemble(`
t:      bgt a0, a1, t
        ble a0, a1, t
`)
	if err != nil {
		t.Fatal(err)
	}
	bgt := Decode(word(t, p, 0))
	if bgt.Op != OpBLT || bgt.Rs1 != RegA1 || bgt.Rs2 != RegA0 {
		t.Errorf("bgt = %v", bgt)
	}
	ble := Decode(word(t, p, 4))
	if ble.Op != OpBGE || ble.Rs1 != RegA1 || ble.Rs2 != RegA0 {
		t.Errorf("ble = %v", ble)
	}
}

func TestAssembleCSRNames(t *testing.T) {
	p, err := Assemble(`
        csrr t0, satp
        csrw tvec, t1
        csrr t2, 0x41
`)
	if err != nil {
		t.Fatal(err)
	}
	if in := Decode(word(t, p, 0)); in.Imm != CSRSatp {
		t.Errorf("csrr satp imm = %#x", in.Imm)
	}
	if in := Decode(word(t, p, 4)); in.Imm != CSRTvec || in.Rs1 != RegT1 {
		t.Errorf("csrw tvec = %v", in)
	}
	if in := Decode(word(t, p, 8)); in.Imm != CSRKey1 {
		t.Errorf("csr number imm = %#x", in.Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"undefined label":   "beq a0, a1, nowhere",
		"duplicate label":   "x: nop\nx: nop",
		"unknown mnemonic":  "frobnicate a0",
		"unknown register":  "addi q7, zero, 1",
		"operand count":     "add a0, a1",
		"imm out of range":  "addi a0, zero, 100000",
		"bad mem operand":   "lw a0, a1",
		"misaligned target": "b: nop\nbeq a0, a1, b+1",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error lacks line info: %v", name, err)
		}
	}
}

func TestAssembleAlign(t *testing.T) {
	p, err := Assemble(`
        .byte 1
        .align 64
here:   .word 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Symbol("here"); got != 64 {
		t.Errorf("aligned symbol = %d, want 64", got)
	}
}

func TestAssembleExpressionOperands(t *testing.T) {
	p, err := Assemble(`
        .equ base, 0x100
        addi a0, zero, base+8
        addi a1, zero, base-0x10
data:   .word data+4
`)
	if err != nil {
		t.Fatal(err)
	}
	if in := Decode(word(t, p, 0)); in.Imm != 0x108 {
		t.Errorf("base+8 = %#x", in.Imm)
	}
	if in := Decode(word(t, p, 4)); in.Imm != 0xf0 {
		t.Errorf("base-0x10 = %#x", in.Imm)
	}
	if got := word(t, p, 8); got != 12 {
		t.Errorf("data+4 = %d, want 12", got)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

func TestProgramSizeAndSymbolPanic(t *testing.T) {
	p := MustAssemble("nop\nnop")
	if p.Size() != 8 {
		t.Errorf("size = %d", p.Size())
	}
	defer func() {
		if recover() == nil {
			t.Error("Symbol should panic on missing name")
		}
	}()
	p.Symbol("missing")
}
