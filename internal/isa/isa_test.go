package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 4, Rs1: 5, Imm: -1},
		{Op: OpADDI, Rd: 4, Rs1: 5, Imm: 8191},
		{Op: OpADDI, Rd: 4, Rs1: 5, Imm: -8192},
		{Op: OpLUI, Rd: 7, Imm: 0x1fffff},
		{Op: OpLUI, Rd: 7, Imm: -0x200000},
		{Op: OpJAL, Rd: RegRA, Imm: -12345},
		{Op: OpLW, Rd: 3, Rs1: 9, Imm: 64},
		{Op: OpSW, Rs1: 9, Rs2: 3, Imm: -64},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -4},
		{Op: OpCSRR, Rd: 5, Imm: CSRSatp},
		{Op: OpHLT},
		{Op: OpFENCE},
		{Op: OpCLFLUSH, Rs1: 4, Imm: 128},
	}
	for _, in := range cases {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got := Decode(w)
		// Long-immediate forms do not carry rs1/rs2.
		want := in
		if longImm(in.Op) {
			want.Rs1, want.Rs2 = 0, 0
		}
		if got != want {
			t.Errorf("round trip %v: got %v", want, got)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		op := Opcode(1 + rng.Intn(NumOpcodes-1))
		in := Instruction{
			Op:  op,
			Rd:  uint8(rng.Intn(NumRegs)),
			Rs1: uint8(rng.Intn(NumRegs)),
			Rs2: uint8(rng.Intn(NumRegs)),
		}
		if longImm(op) {
			in.Rs1, in.Rs2 = 0, 0
			in.Imm = int32(rng.Intn(1<<22)) - (1 << 21)
		} else {
			in.Imm = int32(rng.Intn(1<<14)) - (1 << 13)
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instruction{
		{Op: OpADDI, Imm: 8192},
		{Op: OpADDI, Imm: -8193},
		{Op: OpLUI, Imm: 1 << 21},
		{Op: OpInvalid},
		{Op: OpADD, Rd: 16},
	}
	for _, in := range bad {
		if _, err := in.Encode(); err == nil {
			t.Errorf("expected error encoding %v", in)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	w := uint32(NumOpcodes) << 26
	if got := Decode(w); got.Op != OpInvalid {
		t.Errorf("decode of bad opcode = %v, want invalid", got)
	}
}

func TestRegNames(t *testing.T) {
	for i := uint8(0); i < NumRegs; i++ {
		name := RegName(i)
		r, ok := RegByName(name)
		if !ok || r != i {
			t.Errorf("RegByName(RegName(%d)) = %d, %v", i, r, ok)
		}
	}
	if r, ok := RegByName("x7"); !ok || r != 7 {
		t.Errorf("RegByName(x7) = %d, %v", r, ok)
	}
	if _, ok := RegByName("x16"); ok {
		t.Error("x16 should not resolve")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("bogus should not resolve")
	}
}

func TestOpcodeClasses(t *testing.T) {
	if !OpBEQ.IsBranch() || !OpBGEU.IsBranch() || OpJAL.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !OpLW.IsLoad() || !OpLBU.IsLoad() || OpSW.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpSW.IsStore() || !OpSB.IsStore() || OpLW.IsStore() {
		t.Error("IsStore misclassifies")
	}
}

func TestInstructionString(t *testing.T) {
	// Smoke-test the formatter on each class; exact text is part of the
	// disassembler contract used in debug logs.
	cases := map[string]Instruction{
		"add a0, t0, t1":   {Op: OpADD, Rd: RegA0, Rs1: RegT0, Rs2: RegT1},
		"addi a0, t0, 5":   {Op: OpADDI, Rd: RegA0, Rs1: RegT0, Imm: 5},
		"lw a0, 8(sp)":     {Op: OpLW, Rd: RegA0, Rs1: RegSP, Imm: 8},
		"sw a0, -4(sp)":    {Op: OpSW, Rs2: RegA0, Rs1: RegSP, Imm: -4},
		"beq t0, t1, -2":   {Op: OpBEQ, Rs1: RegT0, Rs2: RegT1, Imm: -2},
		"lui a0, 100":      {Op: OpLUI, Rd: RegA0, Imm: 100},
		"jal ra, 16":       {Op: OpJAL, Rd: RegRA, Imm: 16},
		"jalr zero, ra, 0": {Op: OpJALR, Rd: RegZero, Rs1: RegRA},
		"csrr t0, 0x20":    {Op: OpCSRR, Rd: RegT0, Imm: CSRSatp},
		"ecall 3":          {Op: OpECALL, Imm: 3},
		"hlt":              {Op: OpHLT},
		"clflush 64(t0)":   {Op: OpCLFLUSH, Rs1: RegT0, Imm: 64},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
