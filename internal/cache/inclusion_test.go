package cache

import "testing"

func TestOnEvictCallbackFires(t *testing.T) {
	c := New(Config{Name: "llc", Sets: 4, Ways: 2, LineSize: 64, HitLatency: 10})
	var evicted []uint32
	c.OnEvict = func(lineBase uint32) { evicted = append(evicted, lineBase) }
	stride := uint32(4 * 64)
	// Fill set 0 beyond capacity: the third line evicts the first.
	c.Access(0*stride, false, 0)
	c.Access(1*stride, false, 0)
	if len(evicted) != 0 {
		t.Fatalf("eviction callback fired before set full: %v", evicted)
	}
	c.Access(2*stride, false, 0)
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evictions = %#v, want [0x0]", evicted)
	}
}

func TestInclusiveLLCBackInvalidation(t *testing.T) {
	// The platform wiring: evicting an LLC line removes it from L1 too,
	// which is what lets a cross-core Prime+Probe displace victim lines.
	l1 := New(Config{Name: "l1", Sets: 16, Ways: 4, LineSize: 64, HitLatency: 2})
	llc := New(Config{Name: "llc", Sets: 16, Ways: 2, LineSize: 64, HitLatency: 20})
	llc.OnEvict = func(lineBase uint32) { l1.FlushLine(lineBase) }
	h := &Hierarchy{L1D: l1, LLC: llc, MemLatency: 100}

	h.Data(0x1000, false, 1) // victim line in L1 and LLC
	if !l1.Lookup(0x1000, 1) {
		t.Fatal("victim line not in L1")
	}
	// Attacker floods the LLC set of 0x1000 (16 sets * 64B = 1 KiB
	// stride) until the victim's line is evicted from the LLC.
	stride := uint32(16 * 64)
	for w := uint32(1); w <= 2; w++ {
		llc.Access(0x1000+w*stride, false, 2)
	}
	if llc.Lookup(0x1000, 1) {
		t.Fatal("victim line survived LLC flooding")
	}
	if l1.Lookup(0x1000, 1) {
		t.Fatal("inclusion violated: L1 kept a line the LLC evicted")
	}
}
