// Package cache models the CPU cache hierarchy of the simulated platforms:
// parameterized set-associative caches, a multi-level hierarchy with a
// shared last-level cache, and a TLB. It implements the defense mechanisms
// the surveyed architectures rely on — way partitioning (DAWG-style, used
// to model Sanctum's isolation goal), index randomization (RPcache/CEASER
// style), cacheability exclusion (Sanctuary) and flush-on-switch — so the
// cache side-channel experiments of Section 4.1 can measure each defense
// against the same attacks.
//
// The cache is the innermost state machine of every Section 4 experiment,
// so its layout is tuned like the flattened simulators the surveyed
// defenses were themselves evaluated on: one contiguous line array indexed
// by precomputed shift/mask geometry, per-set PLRU state in a bitmask, and
// dense per-domain partition/key tables — no maps, no per-access pointer
// chasing, no allocation anywhere on the access or flush paths (see
// docs/PERFORMANCE.md).
package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Policy selects the replacement policy of a cache.
type Policy uint8

const (
	// PolicyLRU evicts the least recently used way.
	PolicyLRU Policy = iota
	// PolicyRandom evicts a uniformly random way.
	PolicyRandom
	// PolicyTreePLRU approximates LRU with a binary decision tree.
	PolicyTreePLRU
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyRandom:
		return "random"
	case PolicyTreePLRU:
		return "tree-plru"
	}
	return "policy?"
}

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int // power of two
	Ways       int
	LineSize   int // bytes, power of two
	HitLatency int // cycles
	Policy     Policy
}

// SizeBytes returns the capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// MissRate returns misses / (hits+misses), or 0 with no accesses.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type line struct {
	valid   bool
	tag     uint32 // full line address (addr / LineSize)
	domain  int    // security domain that filled the line
	lastUse uint64
	dirty   bool
}

// Cache is one set-associative cache level.
//
// Lines are tagged with the full line address, so set-index geometry can be
// changed per domain (randomized mapping) without aliasing errors. Each
// line remembers the security domain that filled it; domain-selective
// flushes model enclave context-switch hygiene.
//
// All state lives in flat arrays: lines is one contiguous backing array
// (set i occupies lines[i*Ways : (i+1)*Ways]), PLRU state is one bit per
// way in a per-set word, and the per-domain way partitions and
// index-scrambling keys are dense slices indexed by domain. Set indexing
// is a shift and a mask — Sets and LineSize are validated powers of two.
type Cache struct {
	cfg Config

	ways      int
	lineShift uint   // log2(LineSize): addr >> lineShift is the line address
	setMask   uint32 // Sets-1: lineAddr & setMask is the identity set index

	lines []line   // Sets*Ways contiguous lines
	plru  []uint64 // tree-PLRU recently-used bit per way, one word per set

	tick    uint64
	rng     *rand.Rand
	rngSeed int64
	Stats   Stats

	// parts is the dense domain→way-mask table (DAWG-style way
	// partitioning: both lookups and fills are confined to the mask).
	// A zero entry means the domain is unpartitioned — SetPartition
	// defines mask 0 as "clear", so 0 is never a live partition.
	parts []uint64
	// randKeys is the dense domain→index-scrambling key table (randomized
	// address-to-set mapping; different domains get unrelated mappings).
	// A zero entry means the identity mapping — SetRandomizedIndex
	// defines key 0 as "clear".
	randKeys []uint32
	// randDomains lists the domains with a live scrambling key, so
	// FlushLine can enumerate candidate indices without walking the whole
	// dense table.
	randDomains []int

	// flushCand is FlushLine's reused candidate-index scratch: the line
	// can live under the identity index plus one index per randomized
	// mapping, so the buffer stays tiny and, once grown, the Flush+Reload
	// inner loop never allocates again.
	flushCand []int

	// OnEvict, when non-nil, observes every eviction of a valid line with
	// the line's base address. Platforms use it to implement an INCLUSIVE
	// shared LLC: evicting an LLC line back-invalidates the private
	// caches — the property that lets a cross-core Prime+Probe attacker
	// displace a victim's L1 lines.
	OnEvict func(lineBase uint32)
}

// New creates a cache. It panics on non-power-of-two geometry, which is a
// configuration bug.
func New(cfg Config) *Cache {
	for _, v := range []int{cfg.Sets, cfg.LineSize} {
		if v <= 0 || v&(v-1) != 0 {
			panic(fmt.Sprintf("cache %q: %d is not a power of two", cfg.Name, v))
		}
	}
	if cfg.Ways <= 0 || cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %q: bad way count %d", cfg.Name, cfg.Ways))
	}
	c := &Cache{
		cfg:       cfg,
		ways:      cfg.Ways,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:   uint32(cfg.Sets - 1),
		lines:     make([]line, cfg.Sets*cfg.Ways),
		plru:      make([]uint64, cfg.Sets),
		rngSeed:   int64(cfg.Sets)*31 + int64(cfg.Ways),
	}
	c.rng = rand.New(rand.NewSource(c.rngSeed))
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset returns the cache to its as-built state: all lines invalid, PLRU
// and statistics cleared, partitions and randomized mappings removed, and
// the replacement RNG re-seeded — so a reset cache replays exactly the
// same decision sequence as a freshly constructed one. The platform pool
// uses it to recycle hierarchies across measurement passes instead of
// re-allocating them (OnEvict wiring is preserved).
func (c *Cache) Reset() {
	clear(c.lines)
	clear(c.plru)
	c.tick = 0
	c.Stats = Stats{}
	c.rng = rand.New(rand.NewSource(c.rngSeed))
	clear(c.parts)
	clear(c.randKeys)
	c.randDomains = c.randDomains[:0]
}

// checkDomain rejects negative security domains, which the dense
// per-domain tables cannot represent (and which nothing in the simulator
// uses); like bad geometry, that is a configuration bug.
func (c *Cache) checkDomain(domain int) {
	if domain < 0 {
		panic(fmt.Sprintf("cache %q: negative security domain %d", c.cfg.Name, domain))
	}
}

// SetPartition restricts domain to the ways in mask (0 clears the
// partition). With a partition installed, the domain cannot hit on or
// evict lines outside its ways, and vice versa for other domains only if
// they are partitioned too.
func (c *Cache) SetPartition(domain int, mask uint64) {
	c.checkDomain(domain)
	if mask == 0 {
		if domain < len(c.parts) {
			c.parts[domain] = 0
		}
		return
	}
	for domain >= len(c.parts) {
		c.parts = append(c.parts, 0)
	}
	c.parts[domain] = mask
}

// SetRandomizedIndex gives domain a private scrambled address-to-set
// mapping derived from key (0 clears it).
func (c *Cache) SetRandomizedIndex(domain int, key uint32) {
	c.checkDomain(domain)
	if key == 0 {
		if domain < len(c.randKeys) && c.randKeys[domain] != 0 {
			c.randKeys[domain] = 0
			for i, d := range c.randDomains {
				if d == domain {
					c.randDomains = append(c.randDomains[:i], c.randDomains[i+1:]...)
					break
				}
			}
		}
		return
	}
	for domain >= len(c.randKeys) {
		c.randKeys = append(c.randKeys, 0)
	}
	if c.randKeys[domain] == 0 {
		c.randDomains = append(c.randDomains, domain)
	}
	c.randKeys[domain] = key
}

// lineAddr returns the line-granular address (the tag).
func (c *Cache) lineAddr(addr uint32) uint32 { return addr >> c.lineShift }

// randKey returns domain's scrambling key, or 0 for the identity mapping.
func (c *Cache) randKey(domain int) uint32 {
	if uint(domain) < uint(len(c.randKeys)) {
		return c.randKeys[domain]
	}
	return 0
}

// setIndex maps a line address to domain's set index.
func (c *Cache) setIndex(la uint32, domain int) int {
	if key := c.randKey(domain); key != 0 {
		return int(scramble(la, key) & c.setMask)
	}
	return int(la & c.setMask)
}

// SetIndexOf returns the set index addr maps to for the given domain.
// Attackers use this to build eviction sets; with randomized mapping the
// result differs per domain, which is exactly the defense.
func (c *Cache) SetIndexOf(addr uint32, domain int) int {
	return c.setIndex(c.lineAddr(addr), domain)
}

// scramble is a cheap invertible mixing function (xorshift-multiply).
func scramble(v, key uint32) uint32 {
	v ^= key
	v *= 0x9e3779b1
	v ^= v >> 16
	v *= 0x85ebca6b
	v ^= v >> 13
	return v
}

func (c *Cache) wayMask(domain int) uint64 {
	if uint(domain) < uint(len(c.parts)) {
		if m := c.parts[domain]; m != 0 {
			return m
		}
	}
	return ^uint64(0)
}

// set returns the contiguous line slice of set idx.
func (c *Cache) set(idx int) []line {
	base := idx * c.ways
	return c.lines[base : base+c.ways]
}

// Lookup reports whether addr is cached, from domain's view, without
// changing any state (no fill, no LRU update).
func (c *Cache) Lookup(addr uint32, domain int) bool {
	tag := c.lineAddr(addr)
	set := c.set(c.setIndex(tag, domain))
	mask := c.wayMask(domain)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if set[w].valid && set[w].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a load or store to addr on behalf of domain. It returns
// whether the access hit; on a miss the line is filled (evicting per
// policy within the domain's way mask).
func (c *Cache) Access(addr uint32, write bool, domain int) bool {
	c.tick++
	tag := c.lineAddr(addr)
	idx := c.setIndex(tag, domain)
	set := c.set(idx)
	mask := c.wayMask(domain)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if set[w].valid && set[w].tag == tag {
			set[w].lastUse = c.tick
			if write {
				set[w].dirty = true
			}
			c.touchPLRU(idx, w)
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	c.fill(idx, tag, write, domain, mask)
	return false
}

func (c *Cache) fill(idx int, tag uint32, write bool, domain int, mask uint64) {
	set := c.set(idx)
	victim := -1
	// Prefer an invalid way inside the mask.
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if !set[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.chooseVictim(idx, mask)
		c.Stats.Evictions++
		if c.OnEvict != nil && set[victim].valid {
			c.OnEvict(set[victim].tag << c.lineShift)
		}
	}
	set[victim] = line{valid: true, tag: tag, domain: domain, lastUse: c.tick, dirty: write}
	c.touchPLRU(idx, victim)
}

func (c *Cache) chooseVictim(idx int, mask uint64) int {
	set := c.set(idx)
	switch c.cfg.Policy {
	case PolicyRandom:
		for {
			w := c.rng.Intn(c.ways)
			if mask&(1<<uint(w)) != 0 {
				return w
			}
		}
	case PolicyTreePLRU:
		// Walk the not-recently-used bits; fall back to masked scan.
		used := c.plru[idx]
		for w := 0; w < c.ways; w++ {
			if mask&(1<<uint(w)) != 0 && used&(1<<uint(w)) == 0 {
				return w
			}
		}
		// All marked recently used: reset and take the first allowed way.
		c.plru[idx] = 0
		for w := 0; w < c.ways; w++ {
			if mask&(1<<uint(w)) != 0 {
				return w
			}
		}
	}
	// LRU (default).
	victim, oldest := -1, ^uint64(0)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if set[w].lastUse < oldest {
			oldest = set[w].lastUse
			victim = w
		}
	}
	if victim < 0 {
		panic(fmt.Sprintf("cache %q: empty way mask %#x", c.cfg.Name, mask))
	}
	return victim
}

// fullWays returns the bitmask with one bit per configured way.
func (c *Cache) fullWays() uint64 {
	if c.ways == 64 {
		return ^uint64(0)
	}
	return 1<<uint(c.ways) - 1
}

func (c *Cache) touchPLRU(idx, way int) {
	used := c.plru[idx] | 1<<uint(way)
	if used == c.fullWays() {
		used = 1 << uint(way)
	}
	c.plru[idx] = used
}

// FlushLine removes addr's line from every way of every possible index
// (covering all domain mappings). It returns whether a line was present —
// the signal Flush+Reload keys on.
func (c *Cache) FlushLine(addr uint32) bool {
	tag := c.lineAddr(addr)
	found := false
	// The line may live under the identity index or any randomized index;
	// scan candidate sets for correctness. Candidates dedupe through the
	// reused scratch buffer (order does not matter: clearing a set is
	// idempotent and sets do not interact).
	cand := append(c.flushCand[:0], int(tag&c.setMask))
	for _, d := range c.randDomains {
		idx := int(scramble(tag, c.randKeys[d]) & c.setMask)
		dup := false
		for _, s := range cand {
			if s == idx {
				dup = true
				break
			}
		}
		if !dup {
			cand = append(cand, idx)
		}
	}
	c.flushCand = cand
	for _, idx := range cand {
		set := c.set(idx)
		for w := range set {
			if set[w].valid && set[w].tag == tag {
				set[w] = line{}
				found = true
				c.Stats.Flushes++
			}
		}
	}
	return found
}

// FlushAll invalidates the entire cache.
func (c *Cache) FlushAll() {
	clear(c.lines)
	c.Stats.Flushes++
}

// FlushDomain invalidates every line filled by the given domain (enclave
// exit hygiene in Sanctum and Sanctuary).
func (c *Cache) FlushDomain(domain int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].domain == domain {
			c.lines[i] = line{}
		}
	}
	c.Stats.Flushes++
}

// OccupancyOf counts valid lines owned by domain, a probe used in tests
// and in the partition-isolation experiments.
func (c *Cache) OccupancyOf(domain int) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].domain == domain {
			n++
		}
	}
	return n
}

// WaysIn returns how many ways of set idx are currently valid — the
// Prime+Probe primitive for counting victim-induced evictions.
func (c *Cache) WaysIn(idx int) int {
	n := 0
	for _, l := range c.set(idx) {
		if l.valid {
			n++
		}
	}
	return n
}
