// Package cache models the CPU cache hierarchy of the simulated platforms:
// parameterized set-associative caches, a multi-level hierarchy with a
// shared last-level cache, and a TLB. It implements the defense mechanisms
// the surveyed architectures rely on — way partitioning (DAWG-style, used
// to model Sanctum's isolation goal), index randomization (RPcache/CEASER
// style), cacheability exclusion (Sanctuary) and flush-on-switch — so the
// cache side-channel experiments of Section 4.1 can measure each defense
// against the same attacks.
package cache

import (
	"fmt"
	"math/rand"
)

// Policy selects the replacement policy of a cache.
type Policy uint8

const (
	// PolicyLRU evicts the least recently used way.
	PolicyLRU Policy = iota
	// PolicyRandom evicts a uniformly random way.
	PolicyRandom
	// PolicyTreePLRU approximates LRU with a binary decision tree.
	PolicyTreePLRU
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyRandom:
		return "random"
	case PolicyTreePLRU:
		return "tree-plru"
	}
	return "policy?"
}

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int // power of two
	Ways       int
	LineSize   int // bytes, power of two
	HitLatency int // cycles
	Policy     Policy
}

// SizeBytes returns the capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// MissRate returns misses / (hits+misses), or 0 with no accesses.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type line struct {
	valid   bool
	tag     uint32 // full line address (addr / LineSize)
	domain  int    // security domain that filled the line
	lastUse uint64
	dirty   bool
}

// Cache is one set-associative cache level.
//
// Lines are tagged with the full line address, so set-index geometry can be
// changed per domain (randomized mapping) without aliasing errors. Each
// line remembers the security domain that filled it; domain-selective
// flushes model enclave context-switch hygiene.
type Cache struct {
	cfg   Config
	sets  [][]line
	plru  [][]bool // tree-PLRU state per set
	tick  uint64
	rng   *rand.Rand
	Stats Stats

	// partitions maps a domain to a bitmask of ways it may use (DAWG-style
	// way partitioning: both lookups and fills are confined to the mask).
	partitions map[int]uint64
	// randKeys maps a domain to an index-scrambling key (randomized
	// address-to-set mapping; different domains get unrelated mappings).
	randKeys map[int]uint32

	// flushCand is FlushLine's reused candidate-index scratch: the line
	// can live under the identity index plus one index per randomized
	// mapping, so the buffer stays tiny and, once grown, the Flush+Reload
	// inner loop never allocates again.
	flushCand []int

	// OnEvict, when non-nil, observes every eviction of a valid line with
	// the line's base address. Platforms use it to implement an INCLUSIVE
	// shared LLC: evicting an LLC line back-invalidates the private
	// caches — the property that lets a cross-core Prime+Probe attacker
	// displace a victim's L1 lines.
	OnEvict func(lineBase uint32)
}

// New creates a cache. It panics on non-power-of-two geometry, which is a
// configuration bug.
func New(cfg Config) *Cache {
	for _, v := range []int{cfg.Sets, cfg.LineSize} {
		if v <= 0 || v&(v-1) != 0 {
			panic(fmt.Sprintf("cache %q: %d is not a power of two", cfg.Name, v))
		}
	}
	if cfg.Ways <= 0 || cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %q: bad way count %d", cfg.Name, cfg.Ways))
	}
	c := &Cache{
		cfg:        cfg,
		sets:       make([][]line, cfg.Sets),
		plru:       make([][]bool, cfg.Sets),
		rng:        rand.New(rand.NewSource(int64(cfg.Sets)*31 + int64(cfg.Ways))),
		partitions: map[int]uint64{},
		randKeys:   map[int]uint32{},
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
		c.plru[i] = make([]bool, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SetPartition restricts domain to the ways in mask (0 clears the
// partition). With a partition installed, the domain cannot hit on or
// evict lines outside its ways, and vice versa for other domains only if
// they are partitioned too.
func (c *Cache) SetPartition(domain int, mask uint64) {
	if mask == 0 {
		delete(c.partitions, domain)
		return
	}
	c.partitions[domain] = mask
}

// SetRandomizedIndex gives domain a private scrambled address-to-set
// mapping derived from key (0 clears it).
func (c *Cache) SetRandomizedIndex(domain int, key uint32) {
	if key == 0 {
		delete(c.randKeys, domain)
		return
	}
	c.randKeys[domain] = key
}

// lineAddr returns the line-granular address (the tag).
func (c *Cache) lineAddr(addr uint32) uint32 { return addr / uint32(c.cfg.LineSize) }

// SetIndexOf returns the set index addr maps to for the given domain.
// Attackers use this to build eviction sets; with randomized mapping the
// result differs per domain, which is exactly the defense.
func (c *Cache) SetIndexOf(addr uint32, domain int) int {
	la := c.lineAddr(addr)
	if key, ok := c.randKeys[domain]; ok {
		return int(scramble(la, key) % uint32(c.cfg.Sets))
	}
	return int(la % uint32(c.cfg.Sets))
}

// scramble is a cheap invertible mixing function (xorshift-multiply).
func scramble(v, key uint32) uint32 {
	v ^= key
	v *= 0x9e3779b1
	v ^= v >> 16
	v *= 0x85ebca6b
	v ^= v >> 13
	return v
}

func (c *Cache) wayMask(domain int) uint64 {
	if m, ok := c.partitions[domain]; ok {
		return m
	}
	return ^uint64(0)
}

// Lookup reports whether addr is cached, from domain's view, without
// changing any state (no fill, no LRU update).
func (c *Cache) Lookup(addr uint32, domain int) bool {
	set := c.sets[c.SetIndexOf(addr, domain)]
	tag := c.lineAddr(addr)
	mask := c.wayMask(domain)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if set[w].valid && set[w].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a load or store to addr on behalf of domain. It returns
// whether the access hit; on a miss the line is filled (evicting per
// policy within the domain's way mask).
func (c *Cache) Access(addr uint32, write bool, domain int) bool {
	c.tick++
	idx := c.SetIndexOf(addr, domain)
	set := c.sets[idx]
	tag := c.lineAddr(addr)
	mask := c.wayMask(domain)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if set[w].valid && set[w].tag == tag {
			set[w].lastUse = c.tick
			if write {
				set[w].dirty = true
			}
			c.touchPLRU(idx, w)
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	c.fill(idx, tag, write, domain, mask)
	return false
}

func (c *Cache) fill(idx int, tag uint32, write bool, domain int, mask uint64) {
	set := c.sets[idx]
	victim := -1
	// Prefer an invalid way inside the mask.
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if !set[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.chooseVictim(idx, mask)
		c.Stats.Evictions++
		if c.OnEvict != nil && set[victim].valid {
			c.OnEvict(set[victim].tag * uint32(c.cfg.LineSize))
		}
	}
	set[victim] = line{valid: true, tag: tag, domain: domain, lastUse: c.tick, dirty: write}
	c.touchPLRU(idx, victim)
}

func (c *Cache) chooseVictim(idx int, mask uint64) int {
	set := c.sets[idx]
	switch c.cfg.Policy {
	case PolicyRandom:
		for {
			w := c.rng.Intn(c.cfg.Ways)
			if mask&(1<<uint(w)) != 0 {
				return w
			}
		}
	case PolicyTreePLRU:
		// Walk the not-recently-used bits; fall back to masked scan.
		for w := range set {
			if mask&(1<<uint(w)) != 0 && !c.plru[idx][w] {
				return w
			}
		}
		// All marked recently used: reset and take the first allowed way.
		for w := range c.plru[idx] {
			c.plru[idx][w] = false
		}
		for w := range set {
			if mask&(1<<uint(w)) != 0 {
				return w
			}
		}
	}
	// LRU (default).
	victim, oldest := -1, ^uint64(0)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if set[w].lastUse < oldest {
			oldest = set[w].lastUse
			victim = w
		}
	}
	if victim < 0 {
		panic(fmt.Sprintf("cache %q: empty way mask %#x", c.cfg.Name, mask))
	}
	return victim
}

func (c *Cache) touchPLRU(idx, way int) {
	c.plru[idx][way] = true
	all := true
	for _, b := range c.plru[idx] {
		if !b {
			all = false
			break
		}
	}
	if all {
		for w := range c.plru[idx] {
			c.plru[idx][w] = false
		}
		c.plru[idx][way] = true
	}
}

// FlushLine removes addr's line from every way of every possible index
// (covering all domain mappings). It returns whether a line was present —
// the signal Flush+Reload keys on.
func (c *Cache) FlushLine(addr uint32) bool {
	tag := c.lineAddr(addr)
	found := false
	// The line may live under the identity index or any randomized index;
	// scan candidate sets for correctness. Candidates dedupe through the
	// reused scratch buffer (order does not matter: clearing a set is
	// idempotent and sets do not interact).
	cand := append(c.flushCand[:0], int(tag%uint32(c.cfg.Sets)))
	for _, key := range c.randKeys {
		idx := int(scramble(tag, key) % uint32(c.cfg.Sets))
		dup := false
		for _, s := range cand {
			if s == idx {
				dup = true
				break
			}
		}
		if !dup {
			cand = append(cand, idx)
		}
	}
	c.flushCand = cand
	for _, idx := range cand {
		set := c.sets[idx]
		for w := range set {
			if set[w].valid && set[w].tag == tag {
				set[w] = line{}
				found = true
				c.Stats.Flushes++
			}
		}
	}
	return found
}

// FlushAll invalidates the entire cache.
func (c *Cache) FlushAll() {
	for i := range c.sets {
		for w := range c.sets[i] {
			c.sets[i][w] = line{}
		}
	}
	c.Stats.Flushes++
}

// FlushDomain invalidates every line filled by the given domain (enclave
// exit hygiene in Sanctum and Sanctuary).
func (c *Cache) FlushDomain(domain int) {
	for i := range c.sets {
		for w := range c.sets[i] {
			if c.sets[i][w].valid && c.sets[i][w].domain == domain {
				c.sets[i][w] = line{}
			}
		}
	}
	c.Stats.Flushes++
}

// OccupancyOf counts valid lines owned by domain, a probe used in tests
// and in the partition-isolation experiments.
func (c *Cache) OccupancyOf(domain int) int {
	n := 0
	for i := range c.sets {
		for w := range c.sets[i] {
			if c.sets[i][w].valid && c.sets[i][w].domain == domain {
				n++
			}
		}
	}
	return n
}

// WaysIn returns how many ways of set idx are currently valid — the
// Prime+Probe primitive for counting victim-induced evictions.
func (c *Cache) WaysIn(idx int) int {
	n := 0
	for _, l := range c.sets[idx] {
		if l.valid {
			n++
		}
	}
	return n
}
