package cache

import "testing"

// The flattened substrate's headline property: nothing on the access or
// flush paths allocates. These tests pin it with the allocation counter
// so a regression (a reintroduced map, a scratch slice that stopped being
// reused) fails loudly instead of silently taxing every experiment.

// allocHierarchy assembles a server-like private hierarchy over a shared
// LLC, the shape every cache scenario drives.
func allocHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I:        New(Config{Name: "l1i", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 2}),
		L1D:        New(Config{Name: "l1d", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 3}),
		L2:         New(Config{Name: "l2", Sets: 512, Ways: 8, LineSize: 64, HitLatency: 11}),
		LLC:        New(Config{Name: "llc", Sets: 1024, Ways: 16, LineSize: 64, HitLatency: 34}),
		MemLatency: 160,
	}
}

func TestHierarchyAccessHitAllocs(t *testing.T) {
	h := allocHierarchy()
	h.Data(0x4000, false, 1) // fill once; every measured access hits
	if avg := testing.AllocsPerRun(1000, func() {
		h.Data(0x4000, false, 1)
	}); avg != 0 {
		t.Errorf("hierarchy hit allocates %v objects per access, want 0", avg)
	}
}

func TestHierarchyAccessMissAllocs(t *testing.T) {
	h := allocHierarchy()
	addr := uint32(0)
	if avg := testing.AllocsPerRun(1000, func() {
		h.Data(addr, addr%512 == 0, 1)
		addr += 64 // a fresh line every run: misses, fills and evicts throughout
	}); avg != 0 {
		t.Errorf("hierarchy miss allocates %v objects per access, want 0", avg)
	}
}

func TestFlushLineAllocs(t *testing.T) {
	c := New(Config{Name: "flush", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 1})
	// Randomized mappings widen the candidate-set scan — the worst case
	// the Flush+Reload inner loop hits.
	c.SetRandomizedIndex(1, 0xdecafbad)
	c.SetRandomizedIndex(2, 0x5eed5eed)
	addr := uint32(0)
	if avg := testing.AllocsPerRun(1000, func() {
		c.Access(addr, false, 1)
		c.FlushLine(addr)
		addr += 64
	}); avg != 0 {
		t.Errorf("FlushLine allocates %v objects per call, want 0", avg)
	}
}

func TestTLBAllocs(t *testing.T) {
	tlb := NewTLB(64, 4)
	tlb.SetPartition(1, 0b0011)
	vpn := uint32(0)
	if avg := testing.AllocsPerRun(1000, func() {
		tlb.Insert(vpn, 1, vpn+1)
		tlb.Lookup(vpn, 1)
		vpn++
	}); avg != 0 {
		t.Errorf("TLB insert+lookup allocates %v objects, want 0", avg)
	}
}

// TestResetEquivalentToFresh drives an identical workload on a reset
// cache and a newly built one and requires identical observable behavior
// — the property the platform pool's bit-identical-replay contract rests
// on.
func TestResetEquivalentToFresh(t *testing.T) {
	cfg := Config{Name: "reset", Sets: 16, Ways: 4, LineSize: 32, HitLatency: 1, Policy: PolicyRandom}
	dirty := New(cfg)
	dirty.SetPartition(1, 0b0011)
	dirty.SetRandomizedIndex(2, 0xabad1dea)
	for a := uint32(0); a < 4096; a += 32 {
		dirty.Access(a, a%64 == 0, int(a/32)%3)
	}
	dirty.Reset()

	fresh := New(cfg)
	for a := uint32(0); a < 8192; a += 32 {
		d := int(a/32) % 3
		if got, want := dirty.Access(a, false, d), fresh.Access(a, false, d); got != want {
			t.Fatalf("access %#x domain %d: reset=%v fresh=%v", a, d, got, want)
		}
	}
	if dirty.Stats != fresh.Stats {
		t.Errorf("stats diverged after reset: %+v vs %+v", dirty.Stats, fresh.Stats)
	}
	for s := 0; s < cfg.Sets; s++ {
		if dirty.WaysIn(s) != fresh.WaysIn(s) {
			t.Errorf("set %d occupancy diverged: %d vs %d", s, dirty.WaysIn(s), fresh.WaysIn(s))
		}
	}
}
