package cache

import "fmt"

// TLBEntry caches one virtual-to-physical translation.
type TLBEntry struct {
	valid   bool
	vpn     uint32
	asid    int
	pte     uint32
	lastUse uint64
}

// TLB is a set-associative translation lookaside buffer. Entries are
// tagged with an address-space identifier; shared TLB sets between
// attacker and victim are the channel exploited by TLB side-channel
// attacks (Gras et al., USENIX Security'18), reproduced in
// internal/attack/cachesca.
//
// Like Cache, the TLB keeps its state flat: one contiguous entry array
// indexed by mask arithmetic and a dense per-ASID partition table, so a
// translation costs no map lookups and no pointer chasing.
type TLB struct {
	sets    int
	ways    int
	setMask uint32
	entries []TLBEntry // sets*ways contiguous entries
	tick    uint64
	Stats   Stats

	// parts is the dense ASID→way-mask table — TLB way partitioning, the
	// TLBleed countermeasure analogous to DAWG on the data caches (paper
	// §4.1): an address space confined to its own ways can neither evict
	// nor observe another space's translations. A zero entry means the
	// ASID is unpartitioned (SetPartition defines mask 0 as "clear").
	parts []uint64
}

// NewTLB creates a TLB with the given geometry (sets must be a power of
// two).
func NewTLB(sets, ways int) *TLB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("cache: bad TLB geometry")
	}
	return &TLB{sets: sets, ways: ways, setMask: uint32(sets - 1), entries: make([]TLBEntry, sets*ways)}
}

// Reset returns the TLB to its as-built state: all entries invalid,
// statistics cleared, partitions removed. The platform pool uses it to
// recycle cores across measurement passes.
func (t *TLB) Reset() {
	clear(t.entries)
	t.tick = 0
	t.Stats = Stats{}
	clear(t.parts)
}

// SetPartition restricts an ASID to the ways in mask (0 clears the
// partition) — TLB way partitioning (paper §4.1). Lookups and insertions
// of a partitioned ASID are confined to its ways, so a prime+probe
// attacker in another ASID never loses an entry to the victim.
func (t *TLB) SetPartition(asid int, mask uint64) {
	if asid < 0 {
		panic(fmt.Sprintf("cache: negative TLB ASID %d", asid))
	}
	if mask == 0 {
		if asid < len(t.parts) {
			t.parts[asid] = 0
		}
		return
	}
	for asid >= len(t.parts) {
		t.parts = append(t.parts, 0)
	}
	t.parts[asid] = mask
}

// wayMask returns the ways asid may use (all ways when unpartitioned).
func (t *TLB) wayMask(asid int) uint64 {
	if uint(asid) < uint(len(t.parts)) {
		if m := t.parts[asid]; m != 0 {
			return m
		}
	}
	return ^uint64(0)
}

// Sets returns the number of TLB sets.
func (t *TLB) Sets() int { return t.sets }

// Ways returns the TLB associativity.
func (t *TLB) Ways() int { return t.ways }

// SetIndexOf returns the set a virtual page number maps to.
func (t *TLB) SetIndexOf(vpn uint32) int { return int(vpn & t.setMask) }

// set returns the contiguous entry slice of set idx.
func (t *TLB) set(idx int) []TLBEntry {
	base := idx * t.ways
	return t.entries[base : base+t.ways]
}

// Lookup returns the cached PTE for (vpn, asid), if present.
func (t *TLB) Lookup(vpn uint32, asid int) (uint32, bool) {
	t.tick++
	set := t.set(t.SetIndexOf(vpn))
	mask := t.wayMask(asid)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			e.lastUse = t.tick
			t.Stats.Hits++
			return e.pte, true
		}
	}
	t.Stats.Misses++
	return 0, false
}

// Insert caches a translation, evicting LRU within the set.
func (t *TLB) Insert(vpn uint32, asid int, pte uint32) {
	t.tick++
	set := t.set(t.SetIndexOf(vpn))
	mask := t.wayMask(asid)
	victim, oldest := -1, ^uint64(0)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lastUse < oldest {
			oldest = set[w].lastUse
			victim = w
		}
	}
	if victim < 0 {
		panic("cache: empty TLB way mask")
	}
	if set[victim].valid {
		t.Stats.Evictions++
	}
	set[victim] = TLBEntry{valid: true, vpn: vpn, asid: asid, pte: pte, lastUse: t.tick}
}

// FlushAll empties the TLB (full context switch without ASIDs).
func (t *TLB) FlushAll() {
	clear(t.entries)
	t.Stats.Flushes++
}

// FlushASID removes entries belonging to one address space.
func (t *TLB) FlushASID(asid int) {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].asid == asid {
			t.entries[i] = TLBEntry{}
		}
	}
	t.Stats.Flushes++
}

// FlushPage removes one page's translation in one address space.
func (t *TLB) FlushPage(vpn uint32, asid int) {
	set := t.set(t.SetIndexOf(vpn))
	for w := range set {
		if set[w].valid && set[w].vpn == vpn && set[w].asid == asid {
			set[w] = TLBEntry{}
		}
	}
}

// ValidIn counts valid entries in set idx (the TLB Prime+Probe primitive).
func (t *TLB) ValidIn(idx int) int {
	n := 0
	for _, e := range t.set(idx) {
		if e.valid {
			n++
		}
	}
	return n
}
