package cache

// TLBEntry caches one virtual-to-physical translation.
type TLBEntry struct {
	valid   bool
	vpn     uint32
	asid    int
	pte     uint32
	lastUse uint64
}

// TLB is a set-associative translation lookaside buffer. Entries are
// tagged with an address-space identifier; shared TLB sets between
// attacker and victim are the channel exploited by TLB side-channel
// attacks (Gras et al., USENIX Security'18), reproduced in
// internal/attack/cachesca.
type TLB struct {
	sets  int
	ways  int
	data  [][]TLBEntry
	tick  uint64
	Stats Stats

	// partitions maps an ASID to a bitmask of ways it may use — TLB way
	// partitioning, the TLBleed countermeasure analogous to DAWG on the
	// data caches (paper §4.1): an address space confined to its own
	// ways can neither evict nor observe another space's translations.
	partitions map[int]uint64
}

// NewTLB creates a TLB with the given geometry (sets must be a power of
// two).
func NewTLB(sets, ways int) *TLB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("cache: bad TLB geometry")
	}
	t := &TLB{sets: sets, ways: ways, data: make([][]TLBEntry, sets)}
	for i := range t.data {
		t.data[i] = make([]TLBEntry, ways)
	}
	return t
}

// SetPartition restricts an ASID to the ways in mask (0 clears the
// partition) — TLB way partitioning (paper §4.1). Lookups and insertions
// of a partitioned ASID are confined to its ways, so a prime+probe
// attacker in another ASID never loses an entry to the victim.
func (t *TLB) SetPartition(asid int, mask uint64) {
	if t.partitions == nil {
		t.partitions = map[int]uint64{}
	}
	if mask == 0 {
		delete(t.partitions, asid)
		return
	}
	t.partitions[asid] = mask
}

// wayMask returns the ways asid may use (all ways when unpartitioned).
func (t *TLB) wayMask(asid int) uint64 {
	if m, ok := t.partitions[asid]; ok {
		return m
	}
	return ^uint64(0)
}

// Sets returns the number of TLB sets.
func (t *TLB) Sets() int { return t.sets }

// Ways returns the TLB associativity.
func (t *TLB) Ways() int { return t.ways }

// SetIndexOf returns the set a virtual page number maps to.
func (t *TLB) SetIndexOf(vpn uint32) int { return int(vpn % uint32(t.sets)) }

// Lookup returns the cached PTE for (vpn, asid), if present.
func (t *TLB) Lookup(vpn uint32, asid int) (uint32, bool) {
	t.tick++
	set := t.data[t.SetIndexOf(vpn)]
	mask := t.wayMask(asid)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			e.lastUse = t.tick
			t.Stats.Hits++
			return e.pte, true
		}
	}
	t.Stats.Misses++
	return 0, false
}

// Insert caches a translation, evicting LRU within the set.
func (t *TLB) Insert(vpn uint32, asid int, pte uint32) {
	t.tick++
	set := t.data[t.SetIndexOf(vpn)]
	mask := t.wayMask(asid)
	victim, oldest := -1, ^uint64(0)
	for w := range set {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lastUse < oldest {
			oldest = set[w].lastUse
			victim = w
		}
	}
	if victim < 0 {
		panic("cache: empty TLB way mask")
	}
	if set[victim].valid {
		t.Stats.Evictions++
	}
	set[victim] = TLBEntry{valid: true, vpn: vpn, asid: asid, pte: pte, lastUse: t.tick}
}

// FlushAll empties the TLB (full context switch without ASIDs).
func (t *TLB) FlushAll() {
	for i := range t.data {
		for w := range t.data[i] {
			t.data[i][w] = TLBEntry{}
		}
	}
	t.Stats.Flushes++
}

// FlushASID removes entries belonging to one address space.
func (t *TLB) FlushASID(asid int) {
	for i := range t.data {
		for w := range t.data[i] {
			if t.data[i][w].valid && t.data[i][w].asid == asid {
				t.data[i][w] = TLBEntry{}
			}
		}
	}
	t.Stats.Flushes++
}

// FlushPage removes one page's translation in one address space.
func (t *TLB) FlushPage(vpn uint32, asid int) {
	set := t.data[t.SetIndexOf(vpn)]
	for w := range set {
		if set[w].valid && set[w].vpn == vpn && set[w].asid == asid {
			set[w] = TLBEntry{}
		}
	}
}

// ValidIn counts valid entries in set idx (the TLB Prime+Probe primitive).
func (t *TLB) ValidIn(idx int) int {
	n := 0
	for _, e := range t.data[idx] {
		if e.valid {
			n++
		}
	}
	return n
}
