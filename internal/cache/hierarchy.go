package cache

// Level identifies cache levels in cacheability masks.
type Level uint8

const (
	// LevelL1 is the private first-level cache.
	LevelL1 Level = 1 << iota
	// LevelL2 is the private second-level cache.
	LevelL2
	// LevelLLC is the shared last-level cache.
	LevelLLC
	// LevelAll allows caching at every level.
	LevelAll = LevelL1 | LevelL2 | LevelLLC
	// LevelNone marks an address uncacheable (Sanctuary's exclusion of
	// enclave memory from the shared caches uses LevelL1 only).
	LevelNone Level = 0
)

// AccessResult describes where a hierarchy access was satisfied.
type AccessResult struct {
	Latency  int
	HitLevel Level // 0 means the access went to memory
}

// FromMemory reports whether the access missed every cache level.
func (r AccessResult) FromMemory() bool { return r.HitLevel == 0 }

// Hierarchy composes per-core L1 caches with optional L2 and a shared LLC.
// A single Hierarchy instance models one core's view; multiple cores share
// the same LLC pointer (and optionally L2).
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache // optional
	LLC *Cache // optional, shared
	// MemLatency is the DRAM access cost in cycles.
	MemLatency int
	// Cacheability returns the levels allowed to cache addr. Nil means
	// everything is cacheable everywhere.
	Cacheability func(addr uint32) Level
	// ExtraMemLatency adds per-address memory latency (the MEE hook).
	ExtraMemLatency func(addr uint32) int
}

func (h *Hierarchy) levelsFor(addr uint32) Level {
	if h.Cacheability == nil {
		return LevelAll
	}
	return h.Cacheability(addr)
}

// access walks the hierarchy starting from the given L1.
func (h *Hierarchy) access(l1 *Cache, addr uint32, write bool, domain int) AccessResult {
	allowed := h.levelsFor(addr)
	lat := 0
	if l1 != nil && allowed&LevelL1 != 0 {
		lat += l1.cfg.HitLatency
		if l1.Access(addr, write, domain) {
			return AccessResult{Latency: lat, HitLevel: LevelL1}
		}
	}
	if h.L2 != nil && allowed&LevelL2 != 0 {
		lat += h.L2.cfg.HitLatency
		if h.L2.Access(addr, write, domain) {
			return AccessResult{Latency: lat, HitLevel: LevelL2}
		}
	}
	if h.LLC != nil && allowed&LevelLLC != 0 {
		lat += h.LLC.cfg.HitLatency
		if h.LLC.Access(addr, write, domain) {
			return AccessResult{Latency: lat, HitLevel: LevelLLC}
		}
	}
	lat += h.MemLatency
	if h.ExtraMemLatency != nil {
		lat += h.ExtraMemLatency(addr)
	}
	return AccessResult{Latency: lat}
}

// Data performs a data load/store through L1D.
func (h *Hierarchy) Data(addr uint32, write bool, domain int) AccessResult {
	return h.access(h.L1D, addr, write, domain)
}

// Fetch performs an instruction fetch through L1I.
func (h *Hierarchy) Fetch(addr uint32, domain int) AccessResult {
	return h.access(h.L1I, addr, false, domain)
}

// Probe reports whether addr is present at any level for domain without
// disturbing state.
func (h *Hierarchy) Probe(addr uint32, domain int) Level {
	if h.L1D != nil && h.L1D.Lookup(addr, domain) {
		return LevelL1
	}
	if h.L2 != nil && h.L2.Lookup(addr, domain) {
		return LevelL2
	}
	if h.LLC != nil && h.LLC.Lookup(addr, domain) {
		return LevelLLC
	}
	return 0
}

// InL1 reports whether addr is in L1D for domain — the check Foreshadow's
// L1 terminal fault forwarding depends on.
func (h *Hierarchy) InL1(addr uint32, domain int) bool {
	return h.L1D != nil && h.L1D.Lookup(addr, domain)
}

// FlushAddr removes addr from every level (the CLFLUSH instruction).
// It returns whether any level held the line.
func (h *Hierarchy) FlushAddr(addr uint32) bool {
	found := false
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2, h.LLC} {
		if c != nil && c.FlushLine(addr) {
			found = true
		}
	}
	return found
}

// FlushL1 invalidates both L1 caches (the Foreshadow mitigation and the
// Sanctuary/Sanctum context-switch policy).
func (h *Hierarchy) FlushL1() {
	if h.L1I != nil {
		h.L1I.FlushAll()
	}
	if h.L1D != nil {
		h.L1D.FlushAll()
	}
}

// FlushAll invalidates every level.
func (h *Hierarchy) FlushAll() {
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2, h.LLC} {
		if c != nil {
			c.FlushAll()
		}
	}
}

// HitLatency returns the L1 hit cost, the unit attackers compare timings
// against.
func (h *Hierarchy) HitLatency() int {
	if h.L1D != nil {
		return h.L1D.cfg.HitLatency
	}
	return 0
}

// MissLatency returns the worst-case cost of a full miss.
func (h *Hierarchy) MissLatency() int {
	lat := h.MemLatency
	for _, c := range []*Cache{h.L1D, h.L2, h.LLC} {
		if c != nil {
			lat += c.cfg.HitLatency
		}
	}
	return lat
}
