package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{Name: "l1", Sets: 16, Ways: 4, LineSize: 64, HitLatency: 2, Policy: PolicyLRU})
}

func TestAccessHitAfterFill(t *testing.T) {
	c := smallCache()
	addr := uint32(0x1000)
	if c.Access(addr, false, 0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(addr, false, 0) {
		t.Fatal("second access missed")
	}
	// Same line, different offset: still a hit.
	if !c.Access(addr+63, false, 0) {
		t.Fatal("same-line access missed")
	}
	// Next line: miss.
	if c.Access(addr+64, false, 0) {
		t.Fatal("next-line access hit")
	}
}

func TestLookupDoesNotFill(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x40, 0) {
		t.Fatal("lookup hit on empty cache")
	}
	if c.Access(0x40, false, 0) {
		t.Fatal("fill reported hit")
	}
	if !c.Lookup(0x40, 0) {
		t.Fatal("lookup missed after fill")
	}
}

func TestHitAfterFillQuick(t *testing.T) {
	c := New(Config{Name: "q", Sets: 64, Ways: 8, LineSize: 32, HitLatency: 1})
	f := func(a uint32) bool {
		c.Access(a, false, 0)
		return c.Lookup(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := smallCache() // 16 sets, 4 ways, 64B lines
	// Fill set 0 with 4 lines; touching line0 makes line1 the LRU victim.
	stride := uint32(16 * 64)
	lines := []uint32{0, stride, 2 * stride, 3 * stride}
	for _, a := range lines {
		c.Access(a, false, 0)
	}
	c.Access(lines[0], false, 0) // refresh line0
	c.Access(4*stride, false, 0) // evict LRU = lines[1]
	if !c.Lookup(lines[0], 0) {
		t.Error("recently used line evicted")
	}
	if c.Lookup(lines[1], 0) {
		t.Error("LRU line survived eviction")
	}
	for _, a := range lines[2:] {
		if !c.Lookup(a, 0) {
			t.Errorf("line %#x evicted unexpectedly", a)
		}
	}
}

func TestEvictionNeedsWaysPlusOne(t *testing.T) {
	// Property: accessing exactly Ways distinct lines of one set evicts
	// nothing; the (Ways+1)-th evicts exactly one.
	c := New(Config{Name: "p", Sets: 8, Ways: 6, LineSize: 64, HitLatency: 1})
	stride := uint32(8 * 64)
	for i := 0; i < 6; i++ {
		c.Access(uint32(i)*stride, false, 0)
	}
	for i := 0; i < 6; i++ {
		if !c.Lookup(uint32(i)*stride, 0) {
			t.Fatalf("line %d evicted before set was full", i)
		}
	}
	if c.Stats.Evictions != 0 {
		t.Fatalf("evictions = %d before overflow", c.Stats.Evictions)
	}
	c.Access(6*stride, false, 0)
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d after overflow", c.Stats.Evictions)
	}
}

func TestWayPartitionIsolation(t *testing.T) {
	c := smallCache()
	c.SetPartition(1, 0b0011) // victim domain: ways 0-1
	c.SetPartition(2, 0b1100) // attacker domain: ways 2-3

	stride := uint32(16 * 64)
	// Victim fills its two ways of set 0.
	c.Access(0*stride, false, 1)
	c.Access(1*stride, false, 1)
	// Attacker hammers the same set far beyond capacity.
	for i := 2; i < 20; i++ {
		c.Access(uint32(i)*stride, false, 2)
	}
	// Victim's lines must survive: the attacker cannot evict across the
	// partition (this is the Sanctum/DAWG guarantee).
	if !c.Lookup(0, 1) || !c.Lookup(stride, 1) {
		t.Fatal("partitioned victim lines were evicted by attacker domain")
	}
	// And the attacker cannot observe hits on victim lines.
	if c.Lookup(0, 2) {
		t.Fatal("attacker observed victim line across partition")
	}
}

func TestRandomizedIndexDiffersPerDomain(t *testing.T) {
	c := New(Config{Name: "r", Sets: 256, Ways: 8, LineSize: 64, HitLatency: 1})
	c.SetRandomizedIndex(2, 0xdecafbad)
	differs := 0
	for i := 0; i < 64; i++ {
		addr := uint32(i) * 64 * 256
		if c.SetIndexOf(addr, 1) != c.SetIndexOf(addr, 2) {
			differs++
		}
	}
	if differs < 48 {
		t.Fatalf("randomized mapping too similar to identity: %d/64 differ", differs)
	}
	// Hits still work within the randomized domain.
	c.Access(0x12340, false, 2)
	if !c.Lookup(0x12340, 2) {
		t.Fatal("randomized domain cannot hit its own line")
	}
	// And FlushLine still finds lines under randomized mappings.
	if !c.FlushLine(0x12340) {
		t.Fatal("FlushLine missed randomized-index line")
	}
	if c.Lookup(0x12340, 2) {
		t.Fatal("line survived flush")
	}
}

func TestFlushSemantics(t *testing.T) {
	c := smallCache()
	c.Access(0x100, false, 0)
	if !c.FlushLine(0x100) {
		t.Error("flush of present line returned false")
	}
	if c.FlushLine(0x100) {
		t.Error("flush of absent line returned true")
	}
	c.Access(0x200, false, 3)
	c.Access(0x300, false, 4)
	c.FlushDomain(3)
	if c.Lookup(0x200, 3) {
		t.Error("domain flush left line")
	}
	if !c.Lookup(0x300, 4) {
		t.Error("domain flush removed other domain's line")
	}
	c.FlushAll()
	if c.Lookup(0x300, 4) {
		t.Error("FlushAll left line")
	}
}

func TestOccupancyAndWaysIn(t *testing.T) {
	c := smallCache()
	stride := uint32(16 * 64)
	c.Access(0, false, 7)
	c.Access(stride, false, 7)
	c.Access(2*stride, false, 8)
	if got := c.OccupancyOf(7); got != 2 {
		t.Errorf("occupancy(7) = %d", got)
	}
	if got := c.WaysIn(0); got != 3 {
		t.Errorf("WaysIn(0) = %d", got)
	}
}

func TestReplacementPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyRandom, PolicyTreePLRU} {
		c := New(Config{Name: pol.String(), Sets: 4, Ways: 2, LineSize: 64, HitLatency: 1, Policy: pol})
		stride := uint32(4 * 64)
		for i := 0; i < 10; i++ {
			c.Access(uint32(i)*stride, false, 0)
		}
		// The most recent line must be present under every policy.
		if !c.Lookup(9*stride, 0) {
			t.Errorf("policy %v: just-filled line missing", pol)
		}
		if c.Stats.Evictions == 0 {
			t.Errorf("policy %v: no evictions recorded", pol)
		}
	}
}

func TestStatsAndMissRate(t *testing.T) {
	c := smallCache()
	c.Access(0, false, 0)
	c.Access(0, false, 0)
	c.Access(0, false, 0)
	c.Access(64, false, 0)
	s := c.Stats
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate not 0")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: 3, Ways: 2, LineSize: 64},
		{Sets: 4, Ways: 0, LineSize: 64},
		{Sets: 4, Ways: 2, LineSize: 48},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDirtyWriteTracking(t *testing.T) {
	c := smallCache()
	c.Access(0x500, true, 0)
	if !c.Access(0x500, false, 0) {
		t.Fatal("write-filled line not hit by read")
	}
}

func newTestHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I:        New(Config{Name: "l1i", Sets: 32, Ways: 4, LineSize: 64, HitLatency: 1}),
		L1D:        New(Config{Name: "l1d", Sets: 32, Ways: 4, LineSize: 64, HitLatency: 2}),
		LLC:        New(Config{Name: "llc", Sets: 512, Ways: 8, LineSize: 64, HitLatency: 20}),
		MemLatency: 100,
	}
}

func TestHierarchyLatencyContrast(t *testing.T) {
	h := newTestHierarchy()
	miss := h.Data(0x4000, false, 0)
	if !miss.FromMemory() {
		t.Fatal("cold access did not reach memory")
	}
	hit := h.Data(0x4000, false, 0)
	if hit.HitLevel != LevelL1 {
		t.Fatalf("warm access hit level = %v", hit.HitLevel)
	}
	if hit.Latency >= miss.Latency {
		t.Fatalf("hit latency %d >= miss latency %d — no side channel possible",
			hit.Latency, miss.Latency)
	}
	if miss.Latency != 2+20+100 {
		t.Fatalf("miss latency = %d, want 122", miss.Latency)
	}
}

func TestHierarchyLLCHitAfterL1Evict(t *testing.T) {
	h := newTestHierarchy()
	h.Data(0x8000, false, 0)
	// Evict from tiny L1 by filling its set (32 sets * 64B = 2KB stride).
	for i := 1; i <= 4; i++ {
		h.L1D.Access(0x8000+uint32(i*32*64), false, 0)
	}
	r := h.Data(0x8000, false, 0)
	if r.HitLevel != LevelLLC {
		t.Fatalf("expected LLC hit, got %v (latency %d)", r.HitLevel, r.Latency)
	}
}

func TestHierarchyCacheabilityExclusion(t *testing.T) {
	h := newTestHierarchy()
	// Sanctuary-style: addresses in [0x10000,0x20000) may use only L1.
	h.Cacheability = func(addr uint32) Level {
		if addr >= 0x10000 && addr < 0x20000 {
			return LevelL1
		}
		return LevelAll
	}
	h.Data(0x10000, false, 1)
	if h.LLC.Lookup(0x10000, 1) {
		t.Fatal("excluded address cached in LLC")
	}
	if !h.L1D.Lookup(0x10000, 1) {
		t.Fatal("excluded address missing from L1")
	}
	// Normal addresses still reach the LLC.
	h.Data(0x40000, false, 1)
	if !h.LLC.Lookup(0x40000, 1) {
		t.Fatal("normal address missing from LLC")
	}
}

func TestHierarchyUncacheable(t *testing.T) {
	h := newTestHierarchy()
	h.Cacheability = func(addr uint32) Level { return LevelNone }
	r1 := h.Data(0x5000, false, 0)
	r2 := h.Data(0x5000, false, 0)
	if !r1.FromMemory() || !r2.FromMemory() {
		t.Fatal("uncacheable access was cached")
	}
	if r1.Latency != r2.Latency {
		t.Fatal("uncacheable latencies differ — timing channel would remain")
	}
}

func TestHierarchyFlushAndProbe(t *testing.T) {
	h := newTestHierarchy()
	h.Data(0x9000, false, 0)
	if h.Probe(0x9000, 0) != LevelL1 {
		t.Fatal("probe did not find line in L1")
	}
	if !h.InL1(0x9000, 0) {
		t.Fatal("InL1 false after fill")
	}
	if !h.FlushAddr(0x9000) {
		t.Fatal("FlushAddr found nothing")
	}
	if h.Probe(0x9000, 0) != 0 {
		t.Fatal("line survived FlushAddr")
	}
	h.Data(0xa000, false, 0)
	h.FlushL1()
	if h.InL1(0xa000, 0) {
		t.Fatal("line survived FlushL1")
	}
	if h.Probe(0xa000, 0) != LevelLLC {
		t.Fatal("LLC copy lost by FlushL1")
	}
	h.FlushAll()
	if h.Probe(0xa000, 0) != 0 {
		t.Fatal("line survived FlushAll")
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := newTestHierarchy()
	h.Fetch(0x1000, 0)
	if !h.L1I.Lookup(0x1000, 0) {
		t.Fatal("fetch did not fill L1I")
	}
	if h.L1D.Lookup(0x1000, 0) {
		t.Fatal("fetch filled L1D")
	}
}

func TestHierarchyExtraMemLatency(t *testing.T) {
	h := newTestHierarchy()
	h.ExtraMemLatency = func(addr uint32) int {
		if addr >= 0x100000 {
			return 12
		}
		return 0
	}
	plain := h.Data(0x2000, false, 0)
	mee := h.Data(0x100000, false, 0)
	if mee.Latency-plain.Latency != 12 {
		t.Fatalf("extra latency = %d", mee.Latency-plain.Latency)
	}
	if h.MissLatency() != 2+20+100 || h.HitLatency() != 2 {
		t.Fatalf("latency summary wrong: miss %d hit %d", h.MissLatency(), h.HitLatency())
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(16, 4)
	if _, hit := tlb.Lookup(5, 1); hit {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(5, 1, 0xabcd)
	pte, hit := tlb.Lookup(5, 1)
	if !hit || pte != 0xabcd {
		t.Fatalf("lookup = %#x, %v", pte, hit)
	}
	// Different ASID misses.
	if _, hit := tlb.Lookup(5, 2); hit {
		t.Fatal("cross-ASID TLB hit")
	}
	tlb.FlushPage(5, 1)
	if _, hit := tlb.Lookup(5, 1); hit {
		t.Fatal("entry survived FlushPage")
	}
}

func TestTLBEvictionAndSetConflicts(t *testing.T) {
	tlb := NewTLB(16, 2)
	// Three VPNs mapping to set 3 overflow its 2 ways.
	vpns := []uint32{3, 19, 35}
	for _, v := range vpns {
		tlb.Insert(v, 1, v)
	}
	if got := tlb.ValidIn(3); got != 2 {
		t.Fatalf("set occupancy = %d", got)
	}
	if _, hit := tlb.Lookup(vpns[0], 1); hit {
		t.Fatal("LRU TLB entry survived conflict — TLB attack geometry broken")
	}
	tlb.FlushASID(1)
	if tlb.ValidIn(3) != 0 {
		t.Fatal("FlushASID left entries")
	}
	tlb.Insert(1, 1, 1)
	tlb.FlushAll()
	if _, hit := tlb.Lookup(1, 1); hit {
		t.Fatal("entry survived FlushAll")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad TLB geometry accepted")
		}
	}()
	NewTLB(3, 2)
}

func TestScrambleIsDeterministicAndSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	buckets := make([]int, 64)
	for i := 0; i < 4096; i++ {
		v := rng.Uint32()
		if scramble(v, 0x1234) != scramble(v, 0x1234) {
			t.Fatal("scramble not deterministic")
		}
		buckets[scramble(v, 0x1234)%64]++
	}
	for b, n := range buckets {
		if n == 0 {
			t.Fatalf("scramble never hit bucket %d", b)
		}
	}
}
