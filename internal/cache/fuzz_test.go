package cache

import "testing"

// FuzzCacheAccess drives random geometry and random
// access/flush/partition/randomize sequences through the flattened cache
// and asserts the structural invariants the attacks depend on: no panics
// on any well-formed input, a just-accessed address is always visible to
// the same domain's Lookup, and a flushed address is visible to no one.
func FuzzCacheAccess(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(2), []byte{0x00, 0x10, 0x21, 0x32, 0x43})
	f.Add(uint8(0), uint8(0), uint8(0), []byte{0x10, 0x10, 0x20})
	f.Add(uint8(7), uint8(7), uint8(4), []byte{0x55, 0xaa, 0x31, 0x42, 0x53, 0x64})
	f.Fuzz(func(t *testing.T, setsExp, waysRaw, lineExp uint8, ops []byte) {
		cfg := Config{
			Name:       "fuzz",
			Sets:       1 << (setsExp % 8),   // 1..128
			Ways:       int(waysRaw%8) + 1,   // 1..8
			LineSize:   1 << (lineExp%5 + 2), // 4..64
			HitLatency: 1,
			Policy:     Policy(waysRaw % 3),
		}
		c := New(cfg)
		// Consume ops in (op, a, b) triples: op selects the operation,
		// a/b parameterize address, domain, mask or key.
		for len(ops) >= 3 {
			op, a, b := ops[0], ops[1], ops[2]
			ops = ops[3:]
			addr := (uint32(a)<<6 | uint32(b)) * 4
			domain := int(a % 8)
			switch op % 8 {
			case 0, 1, 2: // accesses dominate, like the real workload
				c.Access(addr, op%2 == 0, domain)
				if !c.Lookup(addr, domain) {
					t.Fatalf("addr %#x invisible to domain %d right after its own access", addr, domain)
				}
			case 3:
				c.FlushLine(addr)
				for d := 0; d < 8; d++ {
					if c.Lookup(addr, d) {
						t.Fatalf("addr %#x still visible to domain %d after FlushLine", addr, d)
					}
				}
			case 4:
				// A partition must keep at least one way inside the
				// configured geometry; an empty effective mask is a
				// documented configuration bug (chooseVictim panics).
				mask := uint64(b) & (1<<uint(cfg.Ways) - 1)
				if b%5 == 0 {
					mask = 0 // exercise clearing
				} else {
					mask |= 1 << uint(int(b)%cfg.Ways)
				}
				c.SetPartition(domain, mask)
			case 5:
				c.SetRandomizedIndex(domain, uint32(a)<<8|uint32(b))
			case 6:
				c.FlushDomain(domain)
			case 7:
				if b%7 == 0 {
					c.FlushAll()
				} else {
					c.Reset()
				}
			}
			if n := c.OccupancyOf(-1); n != 0 {
				t.Fatalf("phantom lines owned by domain -1: %d", n)
			}
		}
	})
}
