package cpu

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// pagedMachine builds a machine with an address space: page tables at
// 0x100000, and identity-mapped program RAM.
func pagedMachine(t *testing.T, feat Features) (*CPU, *mem.Memory, *AddressSpace) {
	t.Helper()
	c, m := testMachine(t, feat)
	as, err := NewAddressSpace(m, 0x100000, 0x40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, as
}

func TestAddressSpaceMapAndTranslate(t *testing.T) {
	c, m, as := pagedMachine(t, EmbeddedFeatures())
	// Map VA 0x40000000 -> PA 0x2000.
	if err := as.Map(0x40000000, 0x2000, PTERead|PTEWrite|PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(0x2000, []byte{0xaa, 0xbb, 0xcc, 0xdd}); err != nil {
		t.Fatal(err)
	}
	c.SetCSR(isa.CSRSatp, as.SATP())
	c.Priv = isa.PrivUser
	pa, pte, flt := c.translate(0x40000000, classLoad)
	if flt != nil {
		t.Fatalf("translate: %v", flt)
	}
	if pa != 0x2000 {
		t.Fatalf("pa = %#x", pa)
	}
	if pte&PTEValid == 0 || pte&PTEUser == 0 {
		t.Fatalf("leaf pte = %#x", pte)
	}
	// Offsets preserved.
	pa, _, flt = c.translate(0x40000abc, classLoad)
	if flt != nil || pa != 0x2abc {
		t.Fatalf("offset translate pa=%#x flt=%v", pa, flt)
	}
}

func TestTranslatePermissionFaults(t *testing.T) {
	c, _, as := pagedMachine(t, EmbeddedFeatures())
	if err := as.Map(0x1000, 0x3000, PTERead); err != nil { // supervisor read-only
		t.Fatal(err)
	}
	if err := as.Map(0x2000, 0x4000, PTERead|PTEWrite|PTEExec|PTEUser); err != nil {
		t.Fatal(err)
	}
	c.SetCSR(isa.CSRSatp, as.SATP())

	c.Priv = isa.PrivUser
	// User load of supervisor page: permission fault on a PRESENT page —
	// the Meltdown shape — so NotPresent must be false and the PTE kept.
	_, _, flt := c.translate(0x1000, classLoad)
	if flt == nil {
		t.Fatal("user load of supervisor page allowed")
	}
	if flt.NotPresent {
		t.Error("permission fault misreported as not-present")
	}
	if flt.PTE&^uint32(0xfff) != 0x3000 {
		t.Errorf("fault PTE frame = %#x", flt.PTE)
	}
	// Store to read-only page.
	c.Priv = isa.PrivSuper
	if _, _, flt := c.translate(0x1000, classStore); flt == nil {
		t.Error("store to read-only page allowed")
	}
	// Fetch from non-executable page.
	if _, _, flt := c.translate(0x1000, classFetch); flt == nil {
		t.Error("fetch from non-executable page allowed")
	}
	// Supervisor fetch from user page refused (SMEP-style).
	if _, _, flt := c.translate(0x2000, classFetch); flt == nil {
		t.Error("supervisor fetch from user page allowed")
	}
	// Supervisor load of user page allowed (no SMAP).
	if _, _, flt := c.translate(0x2000, classLoad); flt != nil {
		t.Errorf("supervisor load of user page: %v", flt)
	}
	// Unmapped VA: not-present fault without PTE frame.
	_, _, flt = c.translate(0x9000000, classLoad)
	if flt == nil || !flt.NotPresent {
		t.Fatalf("unmapped translate flt = %v", flt)
	}
}

func TestPresentBitClearPreservesFrame(t *testing.T) {
	// The L1TF precondition: clearing PTEValid faults, but the fault
	// carries the stale frame bits.
	c, _, as := pagedMachine(t, EmbeddedFeatures())
	if err := as.Map(0x5000, 0x7000, PTERead|PTEUser); err != nil {
		t.Fatal(err)
	}
	c.SetCSR(isa.CSRSatp, as.SATP())
	c.Priv = isa.PrivUser
	_, _, flt := c.translate(0x5000, classLoad)
	if flt != nil {
		t.Fatalf("pre-clear translate: %v", flt)
	}
	if err := as.SetFlags(0x5000, 0, PTEValid); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll() // OS flushes the stale translation
	_, _, flt = c.translate(0x5000, classLoad)
	if flt == nil {
		t.Fatal("cleared present bit did not fault")
	}
	if !flt.NotPresent {
		t.Error("present-bit fault not flagged NotPresent")
	}
	if flt.PTE&^uint32(0xfff) != 0x7000 {
		t.Errorf("dead PTE frame = %#x, want 0x7000", flt.PTE&^uint32(0xfff))
	}
	// Reserved-bit variant.
	if err := as.SetFlags(0x5000, PTEValid|PTEReserved, 0); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	_, _, flt = c.translate(0x5000, classLoad)
	if flt == nil || !flt.NotPresent {
		t.Fatalf("reserved-bit fault = %v", flt)
	}
}

func TestTLBCachesTranslations(t *testing.T) {
	c, _, as := pagedMachine(t, EmbeddedFeatures())
	if err := as.Map(0x8000, 0x9000, PTERead|PTEUser); err != nil {
		t.Fatal(err)
	}
	c.SetCSR(isa.CSRSatp, as.SATP())
	c.Priv = isa.PrivUser
	if _, _, flt := c.translate(0x8000, classLoad); flt != nil {
		t.Fatal(flt)
	}
	missesAfterWalk := c.TLB.Stats.Misses
	for i := 0; i < 10; i++ {
		if _, _, flt := c.translate(0x8000, classLoad); flt != nil {
			t.Fatal(flt)
		}
	}
	if c.TLB.Stats.Misses != missesAfterWalk {
		t.Error("warm translations missed the TLB")
	}
	// A stale TLB entry outlives a PTE change until flushed — the reason
	// Foreshadow attackers must flush after clearing the present bit.
	if err := as.SetFlags(0x8000, 0, PTEValid); err != nil {
		t.Fatal(err)
	}
	if _, _, flt := c.translate(0x8000, classLoad); flt != nil {
		t.Fatal("TLB did not shield stale translation")
	}
	c.TLB.FlushPage(0x8, 1)
	if _, _, flt := c.translate(0x8000, classLoad); flt == nil {
		t.Fatal("stale translation survived TLB flush")
	}
}

func TestASIDSeparation(t *testing.T) {
	c, m, as1 := pagedMachine(t, EmbeddedFeatures())
	as2, err := NewAddressSpace(m, 0x180000, 0x40000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := as1.Map(0xa000, 0xb000, PTERead|PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(0xa000, 0xc000, PTERead|PTEUser); err != nil {
		t.Fatal(err)
	}
	c.SetCSR(isa.CSRSatp, as1.SATP())
	c.Priv = isa.PrivUser
	pa1, _, flt := c.translate(0xa000, classLoad)
	if flt != nil || pa1 != 0xb000 {
		t.Fatalf("as1 pa=%#x flt=%v", pa1, flt)
	}
	// Switch address space without flushing: ASID tags must keep the
	// translations separate.
	c.SetCSR(isa.CSRSatp, as2.SATP())
	pa2, _, flt := c.translate(0xa000, classLoad)
	if flt != nil || pa2 != 0xc000 {
		t.Fatalf("as2 pa=%#x flt=%v (stale cross-ASID TLB hit?)", pa2, flt)
	}
}

func TestMachineModeBypassesTranslation(t *testing.T) {
	c, _, as := pagedMachine(t, EmbeddedFeatures())
	c.SetCSR(isa.CSRSatp, as.SATP())
	c.Priv = isa.PrivMachine
	pa, _, flt := c.translate(0x2000, classLoad)
	if flt != nil || pa != 0x2000 {
		t.Fatalf("machine-mode translate pa=%#x flt=%v", pa, flt)
	}
}

func TestPagedProgramExecution(t *testing.T) {
	// End-to-end: user program running under translation.
	c, m, as := pagedMachine(t, EmbeddedFeatures())
	prog := isa.MustAssemble(`
        .org 0x1000
        li  t0, 0x2000
        li  t1, 0x1234
        sw  t1, 0(t0)
        lw  a0, 0(t0)
        hlt
`)
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	// Identity-map code (U+X+R) and data (U+R+W).
	if err := as.Map(0x1000, 0x1000, PTERead|PTEExec|PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x2000, 0x2000, PTERead|PTEWrite|PTEUser); err != nil {
		t.Fatal(err)
	}
	c.Reset(0x1000)
	c.SetCSR(isa.CSRSatp, as.SATP())
	c.Priv = isa.PrivUser
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 0x1234 {
		t.Errorf("paged execution a0 = %#x", c.Regs[isa.RegA0])
	}
}

func TestMPURegions(t *testing.T) {
	mpu := &MPU{DefaultAllow: true}
	if err := mpu.AddRegion(MPURegion{
		Name: "secret", Base: 0x5000, Size: 0x1000, R: true, W: true,
		CodeBase: 0x1000, CodeSize: 0x100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := mpu.AddRegion(MPURegion{
		Name: "code", Base: 0x1000, Size: 0x1000, R: true, X: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Owner code may access its data region.
	if err := mpu.Check(0x5000, classLoad, 0x1050, isa.PrivUser); err != nil {
		t.Errorf("owner access denied: %v", err)
	}
	// Foreign code may not (EA-MPU execution-awareness).
	if err := mpu.Check(0x5000, classLoad, 0x2000, isa.PrivUser); err == nil {
		t.Error("foreign access to EA region allowed")
	}
	// Execute permissions enforced.
	if err := mpu.Check(0x5000, classFetch, 0x5000, isa.PrivUser); err == nil {
		t.Error("fetch from non-X region allowed")
	}
	if err := mpu.Check(0x1000, classFetch, 0x1000, isa.PrivUser); err != nil {
		t.Errorf("fetch from code region denied: %v", err)
	}
	// Store to non-W region.
	if err := mpu.Check(0x1000, classStore, 0x1000, isa.PrivUser); err == nil {
		t.Error("store to read-only region allowed")
	}
	// Default-allow outside regions.
	if err := mpu.Check(0x9000, classStore, 0x9000, isa.PrivUser); err != nil {
		t.Errorf("default region denied: %v", err)
	}
	// Lock freezes configuration.
	mpu.Lock()
	if err := mpu.AddRegion(MPURegion{Name: "late"}); err == nil {
		t.Error("region added after lock")
	}
}

func TestMPUPrivOnlyAndDefaultDeny(t *testing.T) {
	mpu := &MPU{}
	if err := mpu.AddRegion(MPURegion{Name: "krn", Base: 0, Size: 0x1000, R: true, W: true, X: true, PrivOnly: true}); err != nil {
		t.Fatal(err)
	}
	if err := mpu.Check(0x10, classLoad, 0x10, isa.PrivUser); err == nil {
		t.Error("user access to priv-only region allowed")
	}
	if err := mpu.Check(0x10, classLoad, 0x10, isa.PrivSuper); err != nil {
		t.Errorf("supervisor access denied: %v", err)
	}
	if err := mpu.Check(0x8000, classLoad, 0, isa.PrivSuper); err == nil {
		t.Error("default-deny MPU allowed uncovered address")
	}
}

func TestMPUGuardsExecution(t *testing.T) {
	// An in-ISA TrustLite-style check: a thief routine reading a
	// trustlet's data faults, the owner succeeds.
	c, m := testMachine(t, EmbeddedFeatures())
	c.MPU = &MPU{DefaultAllow: true}
	if err := c.MPU.AddRegion(MPURegion{
		Name: "tl-data", Base: 0x6000, Size: 0x1000, R: true, W: true,
		CodeBase: 0x2000, CodeSize: 0x100,
	}); err != nil {
		t.Fatal(err)
	}
	p := isa.MustAssemble(`
        .org 0x1000
        li   t0, 0x300
        csrw tvec, t0
        li   t0, 0x6000
        call owner
        lw   a1, 0(t0)      ; thief: faults -> trap -> a1 stays 0
        hlt
        .org 0x300
trap:   hlt
        .org 0x2000
owner:  lw   a0, 0(t0)      ; owner reads fine
        ret
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(0x6000, []byte{0x99, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	c.Reset(0x1000)
	c.Priv = isa.PrivSuper // MPU applies below machine mode
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 0x99 {
		t.Errorf("owner read failed: a0 = %#x", c.Regs[isa.RegA0])
	}
	if c.Regs[isa.RegA1] != 0 {
		t.Errorf("thief read trustlet data: a1 = %#x", c.Regs[isa.RegA1])
	}
}
