package cpu

import (
	"testing"

	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// Layout used by the transient-execution mechanism tests:
//
//	0x01000  victim/attacker code
//	0x02000  array1 (bounds-checked array), length word at 0x2100
//	0x02200  the secret byte, adjacent in memory but outside array1
//	0x10000  probe array: 256 cache lines of 64 bytes
const (
	tArray  = 0x2000
	tLen    = 0x2100
	tSecret = 0x2200
	tProbe  = 0x10000
)

// spectreVictim is the classic bounds-check-bypass gadget. a0 = index.
const spectreVictim = `
        .org 0x1000
victim: la   t0, 0x2100
        lw   t0, 0(t0)        ; t0 = len
        bgeu a0, t0, out      ; the mispredicted guard
        la   t1, 0x2000
        add  t1, t1, a0
        lbu  t2, 0(t1)        ; secret-dependent load
        slli t2, t2, 6        ; * 64 (line size)
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)        ; transmit through the cache
out:    hlt
`

func setupSpectre(t *testing.T, feat Features) (*CPU, *mem.Memory) {
	t.Helper()
	c, m := testMachine(t, feat)
	p := isa.MustAssemble(spectreVictim)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	// array1 = [0..15], len = 16, secret = 0x2a at tSecret.
	arr := make([]byte, 16)
	for i := range arr {
		arr[i] = byte(i)
	}
	if err := m.LoadImage(tArray, arr); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tLen, []byte{16, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tSecret, []byte{0x2a}); err != nil {
		t.Fatal(err)
	}
	return c, m
}

// callVictim runs the victim once with the given index.
func callVictim(t *testing.T, c *CPU, idx uint32) {
	t.Helper()
	c.Halted = false
	c.PC = 0x1000
	c.Regs[isa.RegA0] = idx
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
}

func probeLineSet(c *CPU, value int) bool {
	return c.Hier.Probe(uint32(tProbe+value*64), c.Domain) != 0
}

func flushProbe(c *CPU) {
	for v := 0; v < 256; v++ {
		c.Hier.FlushAddr(uint32(tProbe + v*64))
	}
}

func TestSpectreV1MechanismLeaks(t *testing.T) {
	c, _ := setupSpectre(t, HighEndFeatures())
	// Train the predictor: in-bounds calls take the not-taken path.
	for i := 0; i < 8; i++ {
		callVictim(t, c, uint32(i%16))
	}
	flushProbe(c)
	// Out-of-bounds call: architecturally the guard skips the loads, but
	// the trained predictor speculates into them.
	callVictim(t, c, tSecret-tArray)
	if !probeLineSet(c, 0x2a) {
		t.Fatal("secret-indexed probe line not cached — Spectre v1 failed")
	}
	// Verify architectural state never saw the secret: t2 was squashed.
	if c.Regs[isa.RegT2] == 0x2a<<6 {
		t.Error("transient value leaked into architectural register")
	}
	if c.TransientExecuted == 0 || c.BranchMispredicts == 0 {
		t.Error("no transient execution recorded")
	}
}

func TestSpectreV1BlockedWithoutSpeculation(t *testing.T) {
	// The embedded in-order core: same program, no leak. ("IoT devices
	// ... are less likely to be susceptible to microarchitectural
	// attacks.")
	c, _ := setupSpectre(t, EmbeddedFeatures())
	for i := 0; i < 8; i++ {
		callVictim(t, c, uint32(i%16))
	}
	flushProbe(c)
	callVictim(t, c, tSecret-tArray)
	if probeLineSet(c, 0x2a) {
		t.Fatal("in-order core leaked through speculation")
	}
}

func TestSpectreV1BlockedByFence(t *testing.T) {
	// Same gadget with a FENCE after the guard: the window closes before
	// the secret load.
	c, m := testMachine(t, HighEndFeatures())
	p := isa.MustAssemble(`
        .org 0x1000
victim: la   t0, 0x2100
        lw   t0, 0(t0)
        bgeu a0, t0, out
        fence                 ; Spectre mitigation
        la   t1, 0x2000
        add  t1, t1, a0
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
out:    hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tLen, []byte{16, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tSecret, []byte{0x2a}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		callVictim(t, c, uint32(i%16))
	}
	flushProbe(c)
	callVictim(t, c, tSecret-tArray)
	if probeLineSet(c, 0x2a) {
		t.Fatal("FENCE did not stop the transient leak")
	}
}

func TestSpectreV2BTBInjection(t *testing.T) {
	// Mistrain an indirect branch to send speculation into a disclosure
	// gadget the victim never calls architecturally.
	c, m := testMachine(t, HighEndFeatures())
	p := isa.MustAssemble(`
        .org 0x1000
        ; victim: jalr through t0 (function pointer)
victim: jalr ra, t0, 0
        hlt
        .org 0x2000
legit:  addi a1, a1, 1       ; harmless target
        hlt
        .org 0x3000
gadget: la   t1, 0x2200      ; disclosure gadget: leak secret byte
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tSecret, []byte{0x5b}); err != nil {
		t.Fatal(err)
	}
	// Attacker phase: execute a jalr at the same virtual address with the
	// gadget as target (BTB is VA-indexed with no ASID — cross-context
	// training).
	c.Reset(0x1000)
	c.Regs[isa.RegT0] = 0x3000
	if _, err := c.Run(100); err == nil {
		// The gadget ran architecturally during training; that is fine —
		// we flush the probe lines before the victim run.
		_ = err
	}
	flushProbe(c)
	// Victim phase: same branch, legitimate target. BTB predicts the
	// gadget; the wrong path runs transiently.
	c.Halted = false
	c.PC = 0x1000
	c.Regs[isa.RegT0] = 0x2000
	c.Regs[isa.RegT2] = 0 // clear training residue to observe squash
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if !probeLineSet(c, 0x5b) {
		t.Fatal("BTB injection did not leak through the gadget")
	}
	if c.Regs[isa.RegT2] == 0x5b<<6 {
		t.Error("gadget state visible architecturally")
	}
}

func TestSpectreV2BlockedByPredictorFlush(t *testing.T) {
	c, m := testMachine(t, HighEndFeatures())
	p := isa.MustAssemble(`
        .org 0x1000
victim: jalr ra, t0, 0
        hlt
        .org 0x2000
legit:  addi a1, a1, 1
        hlt
        .org 0x3000
gadget: la   t1, 0x2200
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tSecret, []byte{0x5b}); err != nil {
		t.Fatal(err)
	}
	c.Reset(0x1000)
	c.Regs[isa.RegT0] = 0x3000
	c.Run(100)
	flushProbe(c)
	// Context switch with predictor isolation (IBPB).
	c.Pred.Flush()
	c.Halted = false
	c.PC = 0x1000
	c.Regs[isa.RegT0] = 0x2000
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if probeLineSet(c, 0x5b) {
		t.Fatal("predictor flush did not stop BTB injection")
	}
}

func TestRet2specRSBPoisoning(t *testing.T) {
	// Poison the RSB so a victim return speculates into a gadget.
	c, m := testMachine(t, HighEndFeatures())
	p := isa.MustAssemble(`
        .org 0x1000
        ; victim function: returns to its caller, but the RSB says
        ; otherwise after attacker manipulation.
victim: ret
        .org 0x3000
gadget: la   t1, 0x2200
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(tSecret, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	flushProbe(c)
	c.Reset(0x1000)
	// Attacker poisons the RSB (modelled directly: the attacker ran calls
	// whose return addresses point at the gadget).
	c.Pred.PushReturn(0x3000)
	// Victim executes a return to a different (architectural) address.
	c.Regs[isa.RegRA] = 0x5000
	m2 := isa.MustAssemble(".org 0x5000\nhlt")
	if err := m.LoadProgram(m2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if !probeLineSet(c, 0x77) {
		t.Fatal("RSB poisoning did not trigger transient gadget")
	}
}

// meltdownSetup builds a paged user process with a kernel secret mapped
// supervisor-only at VA 0x80000, probe array user-mapped at tProbe.
func meltdownSetup(t *testing.T, feat Features) (*CPU, *mem.Memory, *AddressSpace) {
	t.Helper()
	c, m, as := pagedMachine(t, feat)
	prog := isa.MustAssemble(`
        .org 0x1000
        ; t0 = kernel VA; transiently: t2 = *t0; touch probe[t2*64]
attack: la   t0, 0x80000
        lbu  t2, 0(t0)        ; faults; forwarded transiently
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
        .org 0x400
trap:   hlt                   ; the architectural fault lands here
`)
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	// Kernel secret at PA 0x70000: supervisor-only mapping.
	if err := m.LoadImage(0x70000, []byte{0xc3}); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x80000, 0x70000, PTERead); err != nil {
		t.Fatal(err)
	}
	// Trap handler page supervisor-executable, user code page user-
	// executable, probe array user-readable.
	if err := as.Map(0x0, 0x0, PTERead|PTEExec); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x1000, 0x1000, PTERead|PTEExec|PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(tProbe, tProbe, 256*64, PTERead|PTEUser); err != nil {
		t.Fatal(err)
	}
	c.Reset(0x1000)
	c.SetCSR(isa.CSRTvec, 0x400)
	c.SetCSR(isa.CSRSatp, as.SATP())
	c.Priv = isa.PrivUser
	return c, m, as
}

func TestMeltdownMechanismLeaks(t *testing.T) {
	c, _, _ := meltdownSetup(t, HighEndFeatures())
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// The trap was taken (we halted in the handler at supervisor priv).
	if c.Priv != isa.PrivSuper {
		t.Errorf("fault did not trap: priv = %v", c.Priv)
	}
	if !probeLineSet(c, 0xc3) {
		t.Fatal("kernel byte not transmitted through cache — Meltdown failed")
	}
}

func TestMeltdownBlockedWithoutForwarding(t *testing.T) {
	feat := HighEndFeatures()
	feat.FaultForwarding = false // the hardware fix
	c, _, _ := meltdownSetup(t, feat)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if probeLineSet(c, 0xc3) {
		t.Fatal("fixed CPU still forwarded faulting data")
	}
}

// foreshadowSetup: the secret page is PRESENT-mapped for the victim, the
// attacker clears the present bit and relies on L1TF. The victim's data
// must be in L1.
func TestForeshadowL1TF(t *testing.T) {
	c, _, as := meltdownSetup(t, HighEndFeatures())
	// Make the kernel mapping not-present (the malicious-OS step); the
	// frame bits still point at PA 0x70000.
	if err := as.SetFlags(0x80000, 0, PTEValid); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	// Victim effect: the secret line sits in L1 (the enclave/kernel
	// touched it recently).
	c.Hier.Data(0x70000, false, 5)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if !probeLineSet(c, 0xc3) {
		t.Fatal("L1TF did not forward from L1")
	}
}

func TestForeshadowNeedsLineInL1(t *testing.T) {
	c, _, as := meltdownSetup(t, HighEndFeatures())
	if err := as.SetFlags(0x80000, 0, PTEValid); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	// No victim access: the line is NOT in L1 — the terminal fault
	// matches nothing and nothing is forwarded.
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if probeLineSet(c, 0xc3) {
		t.Fatal("L1TF forwarded without an L1 line")
	}
}

func TestForeshadowBlockedByL1Flush(t *testing.T) {
	// The L1TF mitigation: flush L1 when leaving the victim context.
	c, _, as := meltdownSetup(t, HighEndFeatures())
	if err := as.SetFlags(0x80000, 0, PTEValid); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	c.Hier.Data(0x70000, false, 5) // victim touches the secret
	c.Hier.FlushL1()               // mitigation on context exit
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if probeLineSet(c, 0xc3) {
		t.Fatal("L1 flush did not stop Foreshadow")
	}
}

func TestAbortPageStopsMeltdownWindow(t *testing.T) {
	// SGX semantics: reads of protected memory return the abort value
	// WITHOUT faulting, so no transient window opens and nothing leaks.
	c, _, as := meltdownSetup(t, HighEndFeatures())
	// Install an EPCM-style filter over the secret frame.
	c.Bus.AddFilter(mem.FuncFilter{FilterName: "epcm", Fn: func(a mem.Access) mem.Action {
		if a.Addr >= 0x70000 && a.Addr < 0x71000 && a.Domain != 5 {
			return mem.ActionAbort
		}
		return mem.ActionAllow
	}})
	// Re-mark the kernel page user-accessible so translation succeeds and
	// the access reaches the bus (where it aborts instead of faulting).
	if err := as.SetFlags(0x80000, PTEUser, 0); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// The load architecturally returned the abort value.
	if c.Priv != isa.PrivUser {
		t.Error("abort page raised a fault")
	}
	if probeLineSet(c, 0xc3) {
		t.Fatal("abort-page read leaked the secret")
	}
	// The probe line for the abort value (0xff) IS set — the attacker
	// learns only that the page is protected.
	if !probeLineSet(c, 0xff) {
		t.Error("abort value not observed")
	}
}

func TestTransientWindowAblation(t *testing.T) {
	// A window too short to reach the transmit load must not leak.
	feat := HighEndFeatures()
	feat.SpecWindow = 2
	c, _ := setupSpectre(t, feat)
	for i := 0; i < 8; i++ {
		callVictim(t, c, uint32(i%16))
	}
	flushProbe(c)
	callVictim(t, c, tSecret-tArray)
	if probeLineSet(c, 0x2a) {
		t.Fatal("2-instruction window reached the transmit load")
	}
}
