package cpu

import (
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// This file implements the transient-execution engine: bounded wrong-path
// execution whose architectural effects are squashed but whose
// microarchitectural effects — cache fills, TLB fills — persist. That
// asymmetry is the root cause of the Section 4.2 attacks:
//
//   - Spectre: a mispredicted branch opens a window executing the wrong
//     path (runTransient from exec's branch/JALR cases).
//   - Meltdown: a faulting load forwards its protected data to dependent
//     instructions for the window between access and exception retirement
//     (meltdownWindow).
//   - Foreshadow/L1TF: the same window, but the load faulted on a clear
//     present bit, and the forwarded value comes from L1 using the frame
//     bits of the dead PTE — after MEE decryption, which is why SGX's
//     memory encryption does not help.

// archSnapshot is the architectural state restored on squash.
type archSnapshot struct {
	regs [isa.NumRegs]uint32
	pc   uint32
}

// runTransient speculatively executes from startPC until the window
// closes, then squashes. seed, if non-nil, runs first (it injects
// forwarded values into the shadow register file).
func (c *CPU) runTransient(startPC uint32, seed func(*CPU)) {
	if !c.Feat.Speculation || c.Feat.SpecWindow <= 0 || c.inTransient {
		return
	}
	c.inTransient = true
	saved := archSnapshot{regs: c.Regs, pc: c.PC}
	c.PC = startPC
	if seed != nil {
		seed(c)
	}
	for i := 0; i < c.Feat.SpecWindow; i++ {
		if !c.stepTransient() {
			break
		}
		c.TransientExecuted++
	}
	c.Regs = saved.regs
	c.PC = saved.pc
	c.inTransient = false
}

// stepTransient executes one wrong-path instruction. It returns false when
// the window must close (fault, serializing instruction, fence).
func (c *CPU) stepTransient() bool {
	pa, _, flt := c.translate(c.PC, classFetch)
	if flt != nil {
		return false
	}
	word, err := c.Bus.Read(c.busAccess(pa, 4, mem.KindFetch))
	if err != nil {
		return false
	}
	if c.Hier != nil {
		// Wrong-path fetches fill the instruction cache: the channel
		// branch-shadowing style attacks observe.
		c.Hier.Fetch(pa, c.Domain)
	}
	in := isa.Decode(word)
	pc := c.PC
	seq := pc + 4
	switch in.Op {
	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU:
		c.setRegRaw(in.Rd, aluOp(in.Op, c.reg(in.Rs1), c.reg(in.Rs2)))
	case isa.OpMUL:
		c.setRegRaw(in.Rd, c.reg(in.Rs1)*c.reg(in.Rs2))
	case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSLTI:
		c.setRegRaw(in.Rd, aluImmOp(in.Op, c.reg(in.Rs1), in.Imm))
	case isa.OpLUI:
		c.setRegRaw(in.Rd, uint32(in.Imm<<10))

	case isa.OpLW, isa.OpLB, isa.OpLBU:
		va := c.reg(in.Rs1) + uint32(in.Imm)
		size := 4
		if in.Op != isa.OpLW {
			size = 1
		}
		tpa, _, tflt := c.translate(va, classLoad)
		if tflt != nil {
			// Faults inside an already-transient path close the window;
			// there is no nested forwarding.
			return false
		}
		v, err := c.Bus.Read(c.busAccess(tpa, size, mem.KindLoad))
		if err != nil {
			return false
		}
		if c.Hier != nil {
			// THE side effect: a transient load fills the cache and the
			// fill survives the squash.
			c.Hier.Data(tpa, false, c.Domain)
		}
		if in.Op == isa.OpLB && v&0x80 != 0 {
			v |= 0xffffff00
		}
		c.setRegRaw(in.Rd, v)

	case isa.OpSW, isa.OpSB:
		// Stores never commit speculatively; they also do not fill the
		// cache (no write-allocate before retirement).

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		// Within the window, branches resolve immediately (no nested
		// speculation).
		if branchTaken(in.Op, c.reg(in.Rs1), c.reg(in.Rs2)) {
			c.PC = pc + uint32(in.Imm)*4
			return true
		}
	case isa.OpJAL:
		c.setRegRaw(in.Rd, seq)
		c.PC = pc + uint32(in.Imm)*4
		return true
	case isa.OpJALR:
		t := (c.reg(in.Rs1) + uint32(in.Imm)) &^ 3
		c.setRegRaw(in.Rd, seq)
		c.PC = t
		return true

	case isa.OpCSRR:
		n := int(in.Imm)
		if !c.csrAllowed(n, false) {
			return false
		}
		c.setRegRaw(in.Rd, c.CSR(n))

	case isa.OpFENCE:
		// FENCE is the Spectre mitigation: it drains the window.
		return false
	default:
		// ECALL, ERET, SMC, CSRW, CLFLUSH, HLT, WFI and invalid opcodes
		// serialize the pipeline and close the window.
		return false
	}
	c.PC = seq
	return true
}

// meltdownWindow opens the fault-forwarding transient window after an
// architectural load fault, before the trap is delivered.
//
// Forwarding rules (per CPU feature flags):
//
//   - Permission fault on a *present* page (classic Meltdown): forward the
//     data at the translated physical address if FaultForwarding is on.
//   - Present-bit/reserved-bit fault (L1 terminal fault, Foreshadow):
//     translation aborted, but the frame bits of the dead PTE are used to
//     match the L1 cache. Forward only if L1TFForwarding is on AND the
//     line is currently in L1. The forwarded bytes are the L1 contents —
//     i.e. post-MEE plaintext, which is how Foreshadow defeats SGX's
//     memory encryption.
//
// SGX's abort-page semantics are immune to this path entirely: reads of
// enclave memory from outside do not fault (the EPCM filter returns the
// abort value), so no window ever opens — matching the paper's "SGX is
// immune to a plain Meltdown attack as enclave memory usually does not
// raise memory access exceptions".
func (c *CPU) meltdownWindow(flt *Fault, in isa.Instruction, nextPC uint32) {
	if !c.Feat.Speculation || c.inTransient {
		return
	}
	size := 4
	if in.Op != isa.OpLW {
		size = 1
	}
	var fwd uint32
	var ok bool
	if flt.NotPresent {
		if c.Feat.L1TFForwarding && flt.PTE&^uint32(0xfff) != 0 {
			pa := flt.PTE&^uint32(0xfff) | flt.Addr&0xfff
			if c.Hier != nil && c.Hier.InL1(pa, c.Domain) {
				if v, err := c.Bus.ReadL1Content(pa, size); err == nil {
					fwd, ok = v, true
				}
			}
		}
	} else if c.Feat.FaultForwarding {
		pa := flt.PTE&^uint32(0xfff) | flt.Addr&0xfff
		if v, err := c.Bus.ReadL1Content(pa, size); err == nil {
			fwd, ok = v, true
		}
	}
	if !ok {
		return
	}
	if in.Op == isa.OpLB && fwd&0x80 != 0 {
		fwd |= 0xffffff00
	}
	rd := in.Rd
	c.runTransient(nextPC, func(c *CPU) { c.setRegRaw(rd, fwd) })
}
