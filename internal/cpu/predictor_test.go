package cpu

import "testing"

func TestPHTTrainsTowardTaken(t *testing.T) {
	p := NewPredictor(256, 64, 8)
	pc := uint32(0x1000)
	if p.PredictBranch(pc) {
		t.Fatal("initial prediction should be not-taken")
	}
	for i := 0; i < 4; i++ {
		p.UpdateBranch(pc, true)
	}
	// Note: ghist changes move the PHT index, so re-train at the live
	// index until saturation.
	taken := 0
	for i := 0; i < 16; i++ {
		if p.PredictBranch(pc) {
			taken++
		}
		p.UpdateBranch(pc, true)
	}
	if taken < 10 {
		t.Errorf("trained predictor predicted taken only %d/16 times", taken)
	}
}

func TestBTBStoresAndAliases(t *testing.T) {
	p := NewPredictor(256, 64, 8)
	if _, ok := p.PredictTarget(0x1000); ok {
		t.Fatal("cold BTB predicted")
	}
	p.UpdateTarget(0x1000, 0x3000)
	tgt, ok := p.PredictTarget(0x1000)
	if !ok || tgt != 0x3000 {
		t.Fatalf("BTB = %#x, %v", tgt, ok)
	}
	// Same virtual address from "another process" reads the same entry —
	// the cross-address-space mistraining property.
	tgt, ok = p.PredictTarget(0x1000)
	if !ok || tgt != 0x3000 {
		t.Fatal("BTB entry not shared by virtual address")
	}
}

func TestRSBLIFOAndUnderflow(t *testing.T) {
	p := NewPredictor(256, 64, 4)
	p.PushReturn(0x100)
	p.PushReturn(0x200)
	if a, ok := p.PopReturn(); !ok || a != 0x200 {
		t.Fatalf("pop1 = %#x, %v", a, ok)
	}
	if a, ok := p.PopReturn(); !ok || a != 0x100 {
		t.Fatalf("pop2 = %#x, %v", a, ok)
	}
	if _, ok := p.PopReturn(); ok {
		t.Fatal("underflow returned a prediction")
	}
	// Wrap-around overwrites oldest entries.
	for i := 0; i < 6; i++ {
		p.PushReturn(uint32(i))
	}
	if p.RSBDepth() != 4 {
		t.Errorf("depth = %d", p.RSBDepth())
	}
}

func TestPredictorFlushClearsEverything(t *testing.T) {
	p := NewPredictor(256, 64, 8)
	for i := 0; i < 8; i++ {
		p.UpdateBranch(0x40, true)
	}
	p.UpdateTarget(0x80, 0x9000)
	p.PushReturn(0x123)
	p.Flush()
	if p.PredictBranch(0x40) {
		t.Error("PHT survived flush")
	}
	if _, ok := p.PredictTarget(0x80); ok {
		t.Error("BTB survived flush")
	}
	if _, ok := p.PopReturn(); ok {
		t.Error("RSB survived flush")
	}
}

func TestPredictorSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad predictor size accepted")
		}
	}()
	NewPredictor(100, 64, 8)
}

func TestDVFSMarginAndFaultProbability(t *testing.T) {
	d := DefaultDVFS()
	if d.FaultProb() != 0 {
		t.Fatalf("nominal point faults: p=%v", d.FaultProb())
	}
	if d.MarginMHz() != 0 {
		t.Fatalf("nominal margin = %d", d.MarginMHz())
	}
	// Undervolting reduces the safe frequency (the CLKSCREW lever).
	d.VoltMV = 800
	if d.MaxSafeFreqMHz(800) >= d.BaseFreqMHz {
		t.Error("undervolting did not reduce safe frequency")
	}
	if d.FaultProb() <= 0 {
		t.Error("beyond-margin point does not fault")
	}
	// Overclocking at nominal voltage.
	d = DefaultDVFS()
	d.FreqMHz = d.BaseFreqMHz + 100
	p100 := d.FaultProb()
	d.FreqMHz = d.BaseFreqMHz + 200
	p200 := d.FaultProb()
	if !(p200 > p100 && p100 > 0) {
		t.Errorf("fault probability not monotonic: %v, %v", p100, p200)
	}
	// Cap respected.
	d.FreqMHz = 100000
	if d.FaultProb() > d.MaxFaultProb {
		t.Error("fault probability exceeds cap")
	}
}

func TestDVFSFaultInjectionEndToEnd(t *testing.T) {
	// A kernel (supervisor) program overclocks the core via the FREQ CSR —
	// exactly CLKSCREW's software lever — and subsequent computation gets
	// corrupted.
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        li   t0, 2400          ; 2x the safe frequency
        csrw freq, t0
        li   a0, 0
        li   t1, 2000
loop:   addi a0, a0, 1
        bne  a0, t1, loop
        hlt
`, 20000)
	if c.FaultsInjected == 0 {
		t.Fatal("no faults injected beyond DVFS margin")
	}
	// At nominal frequency the same loop is fault-free.
	c2, m2 := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c2, m2, `
        li   a0, 0
        li   t1, 2000
loop:   addi a0, a0, 1
        bne  a0, t1, loop
        hlt
`, 20000)
	if c2.FaultsInjected != 0 {
		t.Fatal("faults at nominal operating point")
	}
	if c2.Regs[9] != 2000 { // a0
		t.Errorf("nominal loop result corrupted: %d", c2.Regs[9])
	}
}
