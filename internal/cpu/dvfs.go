package cpu

// DVFS models the dynamic voltage and frequency scaling regulator of the
// SoC. Software with driver access (the OS kernel — i.e. the normal world
// on TrustZone platforms) sets operating points through the FREQ/VOLT
// CSRs.
//
// The security-relevant physics, reproduced from CLKSCREW (Tang et al.,
// USENIX Security'17): every voltage has a maximum safe frequency; pushing
// the clock beyond that margin shortens the cycle below the critical path
// of the logic, so flip-flops latch wrong values. The regulator performs
// no cross-check between the frequency and voltage domains, and its
// interface is reachable from outside the secure world — those two design
// facts are the entire attack surface.
type DVFS struct {
	FreqMHz int // current frequency
	VoltMV  int // current voltage

	// BaseFreqMHz is the safe frequency at BaseVoltMV.
	BaseFreqMHz int
	BaseVoltMV  int
	// SlopeMHzPerMV is how much safe frequency each extra millivolt buys.
	SlopeMHzPerMV float64
	// FaultPerMHz is the per-instruction fault probability contributed by
	// each MHz beyond the safe margin.
	FaultPerMHz float64
	// MaxFaultProb caps the per-instruction fault probability.
	MaxFaultProb float64
}

// DefaultDVFS returns a mobile-class regulator: 1.2 GHz safe at 900 mV,
// gaining 2 MHz of margin per mV.
func DefaultDVFS() DVFS {
	return DVFS{
		FreqMHz:       1200,
		VoltMV:        900,
		BaseFreqMHz:   1200,
		BaseVoltMV:    900,
		SlopeMHzPerMV: 2.0,
		FaultPerMHz:   0.004,
		MaxFaultProb:  0.95,
	}
}

// MaxSafeFreqMHz returns the highest reliable frequency at voltage v.
func (d *DVFS) MaxSafeFreqMHz(v int) int {
	return d.BaseFreqMHz + int(d.SlopeMHzPerMV*float64(v-d.BaseVoltMV))
}

// MarginMHz returns how far the current point exceeds the safe frequency
// (0 when operating safely).
func (d *DVFS) MarginMHz() int {
	m := d.FreqMHz - d.MaxSafeFreqMHz(d.VoltMV)
	if m < 0 {
		return 0
	}
	return m
}

// FaultProb returns the per-instruction probability of a timing fault at
// the current operating point.
func (d *DVFS) FaultProb() float64 {
	p := float64(d.MarginMHz()) * d.FaultPerMHz
	if p > d.MaxFaultProb {
		return d.MaxFaultProb
	}
	return p
}
