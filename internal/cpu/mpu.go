package cpu

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/isa"
)

// MPURegion is one memory protection unit entry. Embedded platforms use
// the MPU instead of an MMU ("instead of integrating fully-fledged MMUs,
// these systems use primitive access controllers").
//
// When CodeSize is non-zero the region is execution-aware (TrustLite's
// EA-MPU): data accesses are permitted only while the program counter lies
// inside [CodeBase, CodeBase+CodeSize). This binds a Trustlet's data to
// its code.
type MPURegion struct {
	Name       string
	Base, Size uint32
	R, W, X    bool
	PrivOnly   bool // accessible only above user privilege
	CodeBase   uint32
	CodeSize   uint32
}

// Contains reports whether addr is inside the region.
func (r MPURegion) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

func (r MPURegion) ownerExecuting(pc uint32) bool {
	return pc >= r.CodeBase && pc-r.CodeBase < r.CodeSize
}

// MPU is a primitive access controller with a fixed set of regions and a
// lock bit. TrustLite's Secure Loader configures the regions and then
// locks the unit, making protection static for the rest of the boot cycle.
type MPU struct {
	Regions []MPURegion
	// Locked freezes configuration (TrustLite: "EA-MPU configuration is
	// locked, thus protection regions are static").
	Locked bool
	// DefaultAllow permits accesses that match no region. Embedded
	// platforms typically allow open access outside protected regions.
	DefaultAllow bool
}

// AddRegion appends a region; it fails once the MPU is locked.
func (m *MPU) AddRegion(r MPURegion) error {
	if m.Locked {
		return fmt.Errorf("cpu: MPU locked, cannot add region %q", r.Name)
	}
	m.Regions = append(m.Regions, r)
	return nil
}

// Lock freezes the configuration.
func (m *MPU) Lock() { m.Locked = true }

// Check validates an access at pc with the given privilege. It returns nil
// when permitted.
func (m *MPU) Check(addr uint32, kind accessClass, pc uint32, priv isa.Priv) error {
	for _, r := range m.Regions {
		if !r.Contains(addr) {
			continue
		}
		if r.PrivOnly && priv == isa.PrivUser {
			return fmt.Errorf("cpu: MPU region %q requires privilege", r.Name)
		}
		switch kind {
		case classFetch:
			if !r.X {
				return fmt.Errorf("cpu: MPU region %q not executable", r.Name)
			}
		case classLoad:
			if !r.R {
				return fmt.Errorf("cpu: MPU region %q not readable", r.Name)
			}
		case classStore:
			if !r.W {
				return fmt.Errorf("cpu: MPU region %q not writable", r.Name)
			}
		}
		if kind != classFetch && r.CodeSize != 0 && !r.ownerExecuting(pc) {
			return fmt.Errorf("cpu: EA-MPU region %q accessible only from its owner code (pc=%#x)", r.Name, pc)
		}
		return nil
	}
	if m.DefaultAllow {
		return nil
	}
	return fmt.Errorf("cpu: MPU: no region covers %#x", addr)
}

type accessClass uint8

const (
	classFetch accessClass = iota
	classLoad
	classStore
)
