package cpu

// Predictor models the branch prediction unit: a gshare pattern history
// table for conditional branches, a branch target buffer for indirect
// jumps, and a return stack buffer for returns.
//
// Deliberate (in)security properties reproduced from the paper:
//
//   - The BTB is indexed and tagged by virtual address only, with no
//     address-space identifier. Two processes whose branches share a
//     virtual address share BTB entries, which is precisely what enables
//     cross-address-space mistraining in Spectre variant 2 ("branch
//     prediction buffers are indexed using virtual addresses of the
//     branch instructions, allowing mistraining not only from the same
//     address space, but also from different processes").
//   - The RSB is shared state with a fixed depth; underflow and stale
//     entries after a context switch enable ret2spec-style attacks.
//
// Flush() models the predictor-isolation mitigation (IBPB-like barrier on
// context switch).
type Predictor struct {
	phtSize int
	pht     []uint8 // 2-bit saturating counters
	ghist   uint32

	btbSize int
	btbTag  []uint32
	btbTgt  []uint32
	btbOk   []bool

	rsb   []uint32
	rsbSP int

	// Stats
	BranchPredicts uint64
	BranchMiss     uint64
	TargetPredicts uint64
	TargetMiss     uint64
}

// NewPredictor creates a predictor with the given PHT/BTB sizes (powers of
// two) and RSB depth.
func NewPredictor(phtSize, btbSize, rsbDepth int) *Predictor {
	if phtSize <= 0 || phtSize&(phtSize-1) != 0 || btbSize <= 0 || btbSize&(btbSize-1) != 0 {
		panic("cpu: predictor table sizes must be powers of two")
	}
	p := &Predictor{
		phtSize: phtSize,
		pht:     make([]uint8, phtSize),
		btbSize: btbSize,
		btbTag:  make([]uint32, btbSize),
		btbTgt:  make([]uint32, btbSize),
		btbOk:   make([]bool, btbSize),
		rsb:     make([]uint32, rsbDepth),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

func (p *Predictor) phtIndex(pc uint32) int {
	return int((pc>>2 ^ p.ghist) & uint32(p.phtSize-1))
}

// PredictBranch returns the predicted direction for the branch at pc.
func (p *Predictor) PredictBranch(pc uint32) bool {
	p.BranchPredicts++
	return p.pht[p.phtIndex(pc)] >= 2
}

// UpdateBranch trains the PHT and global history with the actual outcome.
func (p *Predictor) UpdateBranch(pc uint32, taken bool) {
	idx := p.phtIndex(pc)
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.ghist = p.ghist<<1 | b2u(taken)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (p *Predictor) btbIndex(pc uint32) int { return int((pc >> 2) & uint32(p.btbSize-1)) }

// PredictTarget returns the BTB's predicted target for the indirect branch
// at pc, if one is cached.
func (p *Predictor) PredictTarget(pc uint32) (uint32, bool) {
	p.TargetPredicts++
	i := p.btbIndex(pc)
	if p.btbOk[i] && p.btbTag[i] == pc {
		return p.btbTgt[i], true
	}
	return 0, false
}

// UpdateTarget records the actual target of the indirect branch at pc.
func (p *Predictor) UpdateTarget(pc, target uint32) {
	i := p.btbIndex(pc)
	p.btbTag[i] = pc
	p.btbTgt[i] = target
	p.btbOk[i] = true
}

// PushReturn records a call's return address on the RSB.
func (p *Predictor) PushReturn(addr uint32) {
	p.rsb[p.rsbSP%len(p.rsb)] = addr
	p.rsbSP++
}

// PopReturn predicts the target of a return. ok is false when the RSB has
// underflowed (no prediction).
func (p *Predictor) PopReturn() (uint32, bool) {
	if p.rsbSP == 0 {
		return 0, false
	}
	p.rsbSP--
	return p.rsb[p.rsbSP%len(p.rsb)], true
}

// RSBDepth returns the number of live RSB entries (capped at capacity).
func (p *Predictor) RSBDepth() int {
	if p.rsbSP > len(p.rsb) {
		return len(p.rsb)
	}
	return p.rsbSP
}

// Reset returns the predictor to its as-built state: all prediction
// state flushed and the accuracy counters zeroed. The platform pool uses
// it to recycle cores across measurement passes; Flush alone is the
// architectural mitigation and deliberately keeps the statistics.
func (p *Predictor) Reset() {
	p.Flush()
	p.BranchPredicts = 0
	p.BranchMiss = 0
	p.TargetPredicts = 0
	p.TargetMiss = 0
}

// Flush clears all prediction state: the predictor-isolation mitigation.
func (p *Predictor) Flush() {
	for i := range p.pht {
		p.pht[i] = 1
	}
	p.ghist = 0
	for i := range p.btbOk {
		p.btbOk[i] = false
	}
	p.rsbSP = 0
	for i := range p.rsb {
		p.rsb[i] = 0
	}
}
