// Package cpu implements the HS-32 core simulator: a functional,
// cycle-approximate CPU with privilege levels, TrustZone-style worlds, an
// MMU or MPU, branch prediction, and — the heart of the Section 4
// experiments — a bounded transient-execution engine whose wrong-path
// side effects persist in the caches after the architectural squash.
//
// Feature flags turn the hardware bugs of the surveyed attacks on and off:
// speculation (Spectre), fault-deferred data forwarding (Meltdown) and
// L1-terminal-fault forwarding (Foreshadow), so the same attack programs
// can be run against vulnerable and fixed configurations.
package cpu

import (
	"fmt"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// Features selects the microarchitectural behaviour of a core.
type Features struct {
	// Speculation enables branch-prediction-driven transient execution.
	// In-order embedded cores leave it off and are immune to Spectre —
	// the paper's point that IoT devices "do not incorporate the
	// performance enhancements found in high-end CPUs".
	Speculation bool
	// SpecWindow caps the number of transiently executed instructions.
	SpecWindow int
	// MispredictPenalty is the cycle cost of a squash.
	MispredictPenalty int
	// FaultForwarding enables Meltdown-style forwarding: a faulting load
	// hands its (permission-protected) data to dependents for the window
	// between the access and the exception's retirement.
	FaultForwarding bool
	// L1TFForwarding enables Foreshadow: loads that fault on a clear
	// present bit forward data from L1 if the frame bits of the dead PTE
	// match a cached line.
	L1TFForwarding bool
	// TakenBranchCost is the pipeline-bubble cost of taken branches on
	// non-speculative cores.
	TakenBranchCost int
}

// HighEndFeatures returns the server/desktop-class configuration with all
// performance enhancements (and thus all transient-execution bugs) on.
func HighEndFeatures() Features {
	return Features{
		Speculation:       true,
		SpecWindow:        64,
		MispredictPenalty: 14,
		FaultForwarding:   true,
		L1TFForwarding:    true,
	}
}

// MobileFeatures returns a mobile-class configuration: speculative, with a
// shorter window.
func MobileFeatures() Features {
	return Features{
		Speculation:       true,
		SpecWindow:        24,
		MispredictPenalty: 10,
		FaultForwarding:   false, // typical in-order-retire mobile cores
		L1TFForwarding:    false,
	}
}

// EmbeddedFeatures returns the in-order microcontroller configuration.
func EmbeddedFeatures() Features {
	return Features{TakenBranchCost: 2}
}

// Counters tallies retired instructions by class for the energy model.
type Counters struct {
	ALU    uint64
	Mul    uint64
	Load   uint64
	Store  uint64
	Branch uint64
	Jump   uint64
	CSR    uint64
	System uint64
}

// Total returns the number of retired instructions.
func (k Counters) Total() uint64 {
	return k.ALU + k.Mul + k.Load + k.Store + k.Branch + k.Jump + k.CSR + k.System
}

// StopReason tells why Run returned.
type StopReason uint8

const (
	// StopHalt: the program executed HLT.
	StopHalt StopReason = iota
	// StopWFI: the core is waiting for an interrupt.
	StopWFI
	// StopMax: the instruction budget was exhausted.
	StopMax
)

func (s StopReason) String() string {
	switch s {
	case StopHalt:
		return "halt"
	case StopWFI:
		return "wfi"
	case StopMax:
		return "max-instructions"
	}
	return "stop?"
}

const numCSRs = 0x60

// CPU is one HS-32 hardware thread.
type CPU struct {
	ID   int
	Regs [isa.NumRegs]uint32
	PC   uint32
	Priv isa.Priv
	// World is the TrustZone security state, mirrored in the WORLD CSR.
	World mem.World
	// Domain tags bus and cache accesses with the current security domain
	// (0 = untrusted software; TEEs assign enclave IDs on entry).
	Domain int

	Bus  *mem.Controller
	Hier *cache.Hierarchy
	TLB  *cache.TLB
	MPU  *MPU
	Pred *Predictor
	Feat Features
	DVFS DVFS

	Cycles  uint64
	Instret uint64
	Count   Counters
	// BranchMispredicts counts squashed speculative paths.
	BranchMispredicts uint64
	// TransientExecuted counts instructions executed on squashed paths.
	TransientExecuted uint64
	// FaultsInjected counts DVFS/glitch bit flips applied to results.
	FaultsInjected uint64

	// Halted is set by HLT.
	Halted bool
	// Waiting is set by WFI until an interrupt arrives.
	Waiting bool
	// IRQ is the external interrupt line; it is cleared when taken.
	IRQ bool

	// KeyGate, when non-nil, decides whether a KEY0..KEY3 CSR access from
	// pc at priv is allowed. SMART installs a program-counter gate here:
	// the attestation key is readable only while executing the ROM
	// routine. When nil, machine mode is required.
	KeyGate func(csr int, pc uint32, priv isa.Priv) bool
	// EcallHandler, when non-nil, may handle an ECALL at Go level
	// (returning true) instead of the architectural trap. It models OS or
	// monitor services without requiring a full in-ISA kernel.
	EcallHandler func(c *CPU, code int32) bool
	// SMCHandler handles secure monitor calls at Go level (TrustZone
	// monitor). If nil, SMC traps to machine mode.
	SMCHandler func(c *CPU, code int32) bool
	// OnTrap observes every architectural trap taken.
	OnTrap func(cause, tval uint32)
	// LeakHook observes architecturally retired register writebacks, the
	// hookup point for power-analysis instrumentation of in-ISA victims.
	LeakHook func(value uint32)

	csr         [numCSRs]uint32
	inTransient bool
	rng         *rand.Rand
}

// New creates a CPU attached to the given memory controller. Cache
// hierarchy, TLB, MPU and predictor are optional and wired by the platform
// layer.
func New(id int, bus *mem.Controller) *CPU {
	c := &CPU{
		ID:   id,
		Bus:  bus,
		Priv: isa.PrivMachine,
		DVFS: DefaultDVFS(),
		rng:  rand.New(rand.NewSource(int64(id)*2654435761 + 12345)),
	}
	c.csr[isa.CSRFreq] = uint32(c.DVFS.FreqMHz)
	c.csr[isa.CSRVolt] = uint32(c.DVFS.VoltMV)
	return c
}

// Reset returns the core to its boot state without touching memory.
func (c *CPU) Reset(pc uint32) {
	c.Regs = [isa.NumRegs]uint32{}
	c.PC = pc
	c.Priv = isa.PrivMachine
	c.World = mem.WorldSecure
	c.Domain = 0
	c.Halted = false
	c.Waiting = false
	c.IRQ = false
	for i := range c.csr {
		c.csr[i] = 0
	}
	c.csr[isa.CSRFreq] = uint32(c.DVFS.FreqMHz)
	c.csr[isa.CSRVolt] = uint32(c.DVFS.VoltMV)
	if c.TLB != nil {
		c.TLB.FlushAll()
	}
}

// CSR reads a CSR directly (harness/debug path, no permission checks).
func (c *CPU) CSR(n int) uint32 {
	switch n {
	case isa.CSRCycle:
		return uint32(c.Cycles)
	case isa.CSRInstret:
		return uint32(c.Instret)
	case isa.CSRWorld:
		return uint32(c.World)
	}
	return c.csr[n]
}

// SetCSR writes a CSR directly (harness/debug path).
func (c *CPU) SetCSR(n int, v uint32) {
	c.csr[n] = v
	c.applyCSRSideEffects(n, v)
}

func (c *CPU) applyCSRSideEffects(n int, v uint32) {
	switch n {
	case isa.CSRFreq:
		c.DVFS.FreqMHz = int(v)
	case isa.CSRVolt:
		c.DVFS.VoltMV = int(v)
	case isa.CSRWorld:
		if v == 0 {
			c.World = mem.WorldSecure
		} else {
			c.World = mem.WorldNormal
		}
	}
}

// reg reads a register (x0 is hardwired zero).
func (c *CPU) reg(r uint8) uint32 {
	if r == isa.RegZero {
		return 0
	}
	return c.Regs[r]
}

// setReg writes a register, applying DVFS fault injection to model timing
// violations corrupting in-flight results, and feeding the leakage hook.
func (c *CPU) setReg(r uint8, v uint32) {
	if r == isa.RegZero {
		return
	}
	if !c.inTransient {
		if p := c.DVFS.FaultProb(); p > 0 && c.rng.Float64() < p {
			v ^= 1 << uint(c.rng.Intn(32))
			c.FaultsInjected++
		}
		if c.LeakHook != nil {
			c.LeakHook(v)
		}
	}
	c.Regs[r] = v
}

// setRegRaw writes a register without fault injection (used when seeding
// transient windows with forwarded data).
func (c *CPU) setRegRaw(r uint8, v uint32) {
	if r != isa.RegZero {
		c.Regs[r] = v
	}
}

func (c *CPU) busAccess(pa uint32, size int, kind mem.AccessKind) mem.Access {
	return mem.Access{
		Addr: pa, Size: size, Kind: kind, Priv: c.Priv, World: c.World,
		Init: mem.Initiator{Type: mem.InitCPU, ID: c.ID}, PC: c.PC, Domain: c.Domain,
	}
}

// load performs an architectural data load at a translated physical
// address, returning the raw value and charging cache latency.
func (c *CPU) loadPhys(pa uint32, size int) (uint32, *Fault) {
	v, err := c.Bus.Read(c.busAccess(pa, size, mem.KindLoad))
	if err != nil {
		return 0, &Fault{Cause: isa.CauseLoadFault, Addr: pa, Msg: err.Error()}
	}
	if c.Hier != nil {
		r := c.Hier.Data(pa, false, c.Domain)
		if !c.inTransient {
			c.Cycles += uint64(r.Latency)
		}
	}
	return v, nil
}

func (c *CPU) storePhys(pa uint32, size int, v uint32) *Fault {
	if err := c.Bus.Write(c.busAccess(pa, size, mem.KindStore), v); err != nil {
		return &Fault{Cause: isa.CauseStoreFault, Addr: pa, Msg: err.Error()}
	}
	if c.Hier != nil {
		r := c.Hier.Data(pa, true, c.Domain)
		c.Cycles += uint64(r.Latency)
	}
	return nil
}

// trap takes an architectural trap. EPC convention: ECALL/SMC record the
// *following* instruction (handlers return past the call); faults record
// the faulting instruction itself.
func (c *CPU) trap(cause, tval uint32, epc uint32) error {
	vec := c.csr[isa.CSRTvec]
	if vec == 0 {
		return fmt.Errorf("cpu%d: unhandled trap cause=%d tval=%#x pc=%#x (no trap vector)",
			c.ID, cause, tval, c.PC)
	}
	c.csr[isa.CSREpc] = epc
	c.csr[isa.CSRCause] = cause
	c.csr[isa.CSRTval] = tval
	st := c.csr[isa.CSRStatus]
	// Save IE and privilege, then disable interrupts.
	st &^= isa.StatusPIE | (3 << isa.StatusPPSh)
	if st&isa.StatusIE != 0 {
		st |= isa.StatusPIE
	}
	st |= uint32(c.Priv) << isa.StatusPPSh
	st &^= isa.StatusIE
	c.csr[isa.CSRStatus] = st
	if cause == isa.CauseSMC {
		c.Priv = isa.PrivMachine
	} else if c.Priv < isa.PrivSuper {
		c.Priv = isa.PrivSuper
	}
	c.PC = vec
	if c.OnTrap != nil {
		c.OnTrap(cause, tval)
	}
	return nil
}

// trapTo takes a trap and returns the next PC for exec (the trap vector),
// or the unrecoverable-simulation error.
func (c *CPU) trapTo(cause, tval, epc uint32) (uint32, error) {
	if err := c.trap(cause, tval, epc); err != nil {
		return c.PC, err
	}
	return c.PC, nil
}

func (c *CPU) eret() {
	st := c.csr[isa.CSRStatus]
	c.PC = c.csr[isa.CSREpc]
	if st&isa.StatusPIE != 0 {
		c.csr[isa.CSRStatus] |= isa.StatusIE
	} else {
		c.csr[isa.CSRStatus] &^= isa.StatusIE
	}
	c.Priv = isa.Priv(st >> isa.StatusPPSh & 3)
}

// Step executes one architectural instruction (plus any transient windows
// it opens). It returns an error only for unrecoverable simulation states
// (trap with no vector).
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.IRQ && (c.csr[isa.CSRStatus]&isa.StatusIE != 0 || c.Waiting) {
		c.IRQ = false
		c.Waiting = false
		return c.trap(isa.CauseInterrupt, 0, c.PC)
	}
	if c.Waiting {
		c.Cycles++
		return nil
	}

	pa, _, flt := c.translate(c.PC, classFetch)
	if flt != nil {
		return c.trap(flt.Cause, flt.Addr, c.PC)
	}
	word, err := c.Bus.Read(c.busAccess(pa, 4, mem.KindFetch))
	if err != nil {
		return c.trap(isa.CauseFetchFault, c.PC, c.PC)
	}
	if c.Hier != nil {
		r := c.Hier.Fetch(pa, c.Domain)
		c.Cycles += uint64(r.Latency)
	}
	c.Cycles++

	in := isa.Decode(word)
	next, ferr := c.exec(in)
	if ferr != nil {
		return ferr
	}
	c.PC = next
	c.Instret++
	return nil
}

// exec executes a decoded instruction architecturally and returns the next
// PC. Traps are taken inside.
func (c *CPU) exec(in isa.Instruction) (uint32, error) {
	pc := c.PC
	seq := pc + 4
	switch in.Op {
	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU:
		c.Count.ALU++
		c.setReg(in.Rd, aluOp(in.Op, c.reg(in.Rs1), c.reg(in.Rs2)))
		return seq, nil
	case isa.OpMUL:
		c.Count.Mul++
		c.setReg(in.Rd, c.reg(in.Rs1)*c.reg(in.Rs2))
		return seq, nil
	case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSLTI:
		c.Count.ALU++
		c.setReg(in.Rd, aluImmOp(in.Op, c.reg(in.Rs1), in.Imm))
		return seq, nil
	case isa.OpLUI:
		c.Count.ALU++
		c.setReg(in.Rd, uint32(in.Imm<<10))
		return seq, nil

	case isa.OpLW, isa.OpLB, isa.OpLBU:
		c.Count.Load++
		va := c.reg(in.Rs1) + uint32(in.Imm)
		size := 4
		if in.Op != isa.OpLW {
			size = 1
		}
		pa, _, flt := c.translate(va, classLoad)
		if flt != nil {
			c.meltdownWindow(flt, in, seq)
			return c.trapTo(flt.Cause, va, pc)
		}
		v, lf := c.loadPhys(pa, size)
		if lf != nil {
			return c.trapTo(lf.Cause, va, pc)
		}
		if in.Op == isa.OpLB && v&0x80 != 0 {
			v |= 0xffffff00
		}
		c.setReg(in.Rd, v)
		return seq, nil

	case isa.OpSW, isa.OpSB:
		c.Count.Store++
		va := c.reg(in.Rs1) + uint32(in.Imm)
		size := 4
		if in.Op == isa.OpSB {
			size = 1
		}
		pa, _, flt := c.translate(va, classStore)
		if flt != nil {
			return c.trapTo(flt.Cause, va, pc)
		}
		if sf := c.storePhys(pa, size, c.reg(in.Rs2)); sf != nil {
			return c.trapTo(sf.Cause, va, pc)
		}
		return seq, nil

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		c.Count.Branch++
		taken := branchTaken(in.Op, c.reg(in.Rs1), c.reg(in.Rs2))
		target := pc + uint32(in.Imm)*4
		if c.Feat.Speculation && c.Pred != nil {
			predicted := c.Pred.PredictBranch(pc)
			c.Pred.UpdateBranch(pc, taken)
			if predicted != taken {
				c.BranchMispredicts++
				c.Pred.BranchMiss++
				wrong := seq
				if predicted {
					wrong = target
				}
				c.runTransient(wrong, nil)
				c.Cycles += uint64(c.Feat.MispredictPenalty)
			}
		} else if taken {
			c.Cycles += uint64(c.Feat.TakenBranchCost)
		}
		if taken {
			return target, nil
		}
		return seq, nil

	case isa.OpJAL:
		c.Count.Jump++
		if in.Rd == isa.RegRA && c.Pred != nil {
			c.Pred.PushReturn(seq)
		}
		c.setReg(in.Rd, seq)
		return pc + uint32(in.Imm)*4, nil

	case isa.OpJALR:
		c.Count.Jump++
		target := (c.reg(in.Rs1) + uint32(in.Imm)) &^ 3
		if c.Pred != nil {
			isReturn := in.Rd == isa.RegZero && in.Rs1 == isa.RegRA
			var predicted uint32
			var ok bool
			if isReturn {
				predicted, ok = c.Pred.PopReturn()
			} else {
				predicted, ok = c.Pred.PredictTarget(pc)
				c.Pred.UpdateTarget(pc, target)
			}
			if c.Feat.Speculation && ok && predicted != target {
				c.BranchMispredicts++
				c.Pred.TargetMiss++
				c.runTransient(predicted, nil)
				c.Cycles += uint64(c.Feat.MispredictPenalty)
			}
		}
		c.setReg(in.Rd, seq)
		return target, nil

	case isa.OpCSRR:
		c.Count.CSR++
		n := int(in.Imm)
		if !c.csrAllowed(n, false) {
			return c.trapTo(isa.CauseIllegal, uint32(n), pc)
		}
		c.setReg(in.Rd, c.CSR(n))
		return seq, nil

	case isa.OpCSRW:
		c.Count.CSR++
		n := int(in.Imm)
		if !c.csrAllowed(n, true) {
			return c.trapTo(isa.CauseIllegal, uint32(n), pc)
		}
		c.SetCSR(n, c.reg(in.Rs1))
		return seq, nil

	case isa.OpECALL:
		c.Count.System++
		if c.EcallHandler != nil && c.EcallHandler(c, in.Imm) {
			return c.PC + 4, nil
		}
		cause := uint32(isa.CauseEcallU)
		if c.Priv >= isa.PrivSuper {
			cause = isa.CauseEcallS
		}
		return c.trapTo(cause, uint32(in.Imm), seq)

	case isa.OpERET:
		c.Count.System++
		if c.Priv < isa.PrivSuper {
			return c.trapTo(isa.CauseIllegal, 0, pc)
		}
		c.eret()
		return c.PC, nil

	case isa.OpSMC:
		c.Count.System++
		if c.SMCHandler != nil && c.SMCHandler(c, in.Imm) {
			return c.PC + 4, nil
		}
		return c.trapTo(isa.CauseSMC, uint32(in.Imm), seq)

	case isa.OpFENCE:
		c.Count.System++
		return seq, nil

	case isa.OpCLFLUSH:
		c.Count.System++
		va := c.reg(in.Rs1) + uint32(in.Imm)
		pa, _, flt := c.translate(va, classLoad)
		if flt != nil {
			return c.trapTo(flt.Cause, va, pc)
		}
		if c.Hier != nil {
			c.Hier.FlushAddr(pa)
			c.Cycles += 4
		}
		return seq, nil

	case isa.OpHLT:
		c.Count.System++
		c.Halted = true
		return pc, nil

	case isa.OpWFI:
		c.Count.System++
		if c.IRQ {
			return seq, nil
		}
		c.Waiting = true
		return seq, nil
	}
	return c.trapTo(isa.CauseIllegal, 0, pc)
}

func (c *CPU) csrAllowed(n int, write bool) bool {
	if n < 0 || n >= numCSRs {
		return false
	}
	switch n {
	case isa.CSRCycle, isa.CSRInstret:
		return !write
	case isa.CSRKey0, isa.CSRKey1, isa.CSRKey2, isa.CSRKey3:
		if c.KeyGate != nil {
			return c.KeyGate(n, c.PC, c.Priv)
		}
		return c.Priv == isa.PrivMachine
	case isa.CSRWorld:
		if write {
			return c.Priv == isa.PrivMachine
		}
		return true
	case isa.CSRFreq, isa.CSRVolt:
		// The DVFS regulator interface is reachable from any kernel —
		// including the normal world. CLKSCREW depends on this.
		if write {
			return c.Priv >= isa.PrivSuper
		}
		return true
	default:
		return c.Priv >= isa.PrivSuper
	}
}

func aluOp(op isa.Opcode, a, b uint32) uint32 {
	switch op {
	case isa.OpADD:
		return a + b
	case isa.OpSUB:
		return a - b
	case isa.OpAND:
		return a & b
	case isa.OpOR:
		return a | b
	case isa.OpXOR:
		return a ^ b
	case isa.OpSLL:
		return a << (b & 31)
	case isa.OpSRL:
		return a >> (b & 31)
	case isa.OpSRA:
		return uint32(int32(a) >> (b & 31))
	case isa.OpSLT:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case isa.OpSLTU:
		if a < b {
			return 1
		}
		return 0
	}
	return 0
}

func aluImmOp(op isa.Opcode, a uint32, imm int32) uint32 {
	b := uint32(imm)
	switch op {
	case isa.OpADDI:
		return a + b
	case isa.OpANDI:
		return a & b
	case isa.OpORI:
		return a | b
	case isa.OpXORI:
		return a ^ b
	case isa.OpSLLI:
		return a << (b & 31)
	case isa.OpSRLI:
		return a >> (b & 31)
	case isa.OpSLTI:
		if int32(a) < imm {
			return 1
		}
		return 0
	}
	return 0
}

func branchTaken(op isa.Opcode, a, b uint32) bool {
	switch op {
	case isa.OpBEQ:
		return a == b
	case isa.OpBNE:
		return a != b
	case isa.OpBLT:
		return int32(a) < int32(b)
	case isa.OpBGE:
		return int32(a) >= int32(b)
	case isa.OpBLTU:
		return a < b
	case isa.OpBGEU:
		return a >= b
	}
	return false
}

// RunResult reports how a Run ended.
type RunResult struct {
	Reason  StopReason
	Instret uint64
	Cycles  uint64
}

// Run executes until HLT, WFI or maxSteps step attempts. The bound counts
// steps rather than retired instructions so that trap loops (e.g. a fault
// whose handler faults again) still terminate.
func (c *CPU) Run(maxSteps uint64) (RunResult, error) {
	start := c.Instret
	startCycles := c.Cycles
	for n := uint64(0); n < maxSteps; n++ {
		if err := c.Step(); err != nil {
			return RunResult{Reason: StopMax, Instret: c.Instret - start, Cycles: c.Cycles - startCycles}, err
		}
		if c.Halted {
			return RunResult{Reason: StopHalt, Instret: c.Instret - start, Cycles: c.Cycles - startCycles}, nil
		}
		if c.Waiting {
			return RunResult{Reason: StopWFI, Instret: c.Instret - start, Cycles: c.Cycles - startCycles}, nil
		}
	}
	return RunResult{Reason: StopMax, Instret: c.Instret - start, Cycles: c.Cycles - startCycles}, nil
}

// RaiseIRQ asserts the external interrupt line.
func (c *CPU) RaiseIRQ() { c.IRQ = true; c.Waiting = false }

// InterruptsEnabled reports the IE bit.
func (c *CPU) InterruptsEnabled() bool { return c.csr[isa.CSRStatus]&isa.StatusIE != 0 }
