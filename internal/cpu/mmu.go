package cpu

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// Page-table entry layout: frame base in bits [31:12], flags in [11:0].
// A leaf must have PTEValid plus at least one of R/W/X. A non-leaf (level-1
// pointer) has PTEValid and no permission bits.
const (
	PTEValid    = 1 << 0 // present bit — clearing it is the Foreshadow lever
	PTERead     = 1 << 1
	PTEWrite    = 1 << 2
	PTEExec     = 1 << 3
	PTEUser     = 1 << 4 // accessible from user mode
	PTEReserved = 1 << 9 // reserved-bit set: the alternative L1TF trigger

	// PageSize is the translation granule.
	PageSize = 4096
)

// SATP field helpers: bit 31 enables translation, bits [27:20] hold the
// ASID, bits [19:0] the root table's physical frame number.
const (
	SatpEnable    = uint32(1) << 31
	satpASIDShift = 20
	satpASIDMask  = 0xff
	satpPPNMask   = 0xfffff
)

// MakeSATP builds a SATP value from a root-table physical address and ASID.
func MakeSATP(root uint32, asid int) uint32 {
	return SatpEnable | uint32(asid&satpASIDMask)<<satpASIDShift | (root / PageSize & satpPPNMask)
}

// Fault describes a failed translation or memory access. It preserves the
// observed leaf PTE because the transient-forwarding hardware bug (L1TF)
// uses the frame bits of a *not-present* PTE to match L1 lines.
type Fault struct {
	Cause      uint32 // isa.CauseFetchFault, CauseLoadFault, CauseStoreFault, CauseBusError
	Addr       uint32 // faulting virtual address
	PTE        uint32 // leaf PTE content observed during the walk (0 if none)
	NotPresent bool   // fault caused by a clear present bit or reserved bit
	Msg        string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("cpu: fault cause=%d addr=%#x: %s", f.Cause, f.Addr, f.Msg)
}

func causeFor(class accessClass) uint32 {
	switch class {
	case classFetch:
		return isa.CauseFetchFault
	case classStore:
		return isa.CauseStoreFault
	}
	return isa.CauseLoadFault
}

// satpActive reports whether paging is on for the current mode.
func (c *CPU) satpActive() bool {
	return c.csr[isa.CSRSatp]&SatpEnable != 0 && c.Priv != isa.PrivMachine
}

// ASID returns the current address-space identifier from SATP.
func (c *CPU) ASID() int {
	return int(c.csr[isa.CSRSatp] >> satpASIDShift & satpASIDMask)
}

// ptwRead fetches a PTE through the bus, tagged as a page-table-walker
// access so architecture filters (Sanctum) can vet it. PTE fetches travel
// through the data cache like on real hardware.
func (c *CPU) ptwRead(pa uint32) (uint32, error) {
	a := mem.Access{
		Addr: pa, Size: 4, Kind: mem.KindLoad, Priv: isa.PrivSuper,
		World: c.World, Init: mem.Initiator{Type: mem.InitCPU, ID: c.ID},
		PC: c.PC, Domain: c.Domain, PTW: true,
	}
	v, err := c.Bus.Read(a)
	if err != nil {
		return 0, err
	}
	if c.Hier != nil {
		r := c.Hier.Data(pa, false, c.Domain)
		c.Cycles += uint64(r.Latency)
	}
	return v, nil
}

// translate resolves va for the given access class. On success it returns
// the physical address and the leaf PTE (0 when translation is off).
func (c *CPU) translate(va uint32, class accessClass) (uint32, uint32, *Fault) {
	if !c.satpActive() {
		if c.MPU != nil && c.Priv != isa.PrivMachine {
			if err := c.MPU.Check(va, class, c.PC, c.Priv); err != nil {
				return 0, 0, &Fault{Cause: causeFor(class), Addr: va, Msg: err.Error()}
			}
		}
		return va, 0, nil
	}

	vpn := va / PageSize
	asid := c.ASID()
	var leaf uint32
	if c.TLB != nil {
		if pte, hit := c.TLB.Lookup(vpn, asid); hit {
			leaf = pte
		}
	}
	if leaf == 0 {
		root := (c.csr[isa.CSRSatp] & satpPPNMask) * PageSize
		l1pa := root + (va>>22)*4
		l1, err := c.ptwRead(l1pa)
		if err != nil {
			return 0, 0, &Fault{Cause: causeFor(class), Addr: va, Msg: "page-table walk: " + err.Error()}
		}
		if l1&PTEValid == 0 {
			return 0, 0, &Fault{Cause: causeFor(class), Addr: va, NotPresent: true, Msg: "level-1 entry not present"}
		}
		l0pa := (l1 &^ 0xfff) + (va>>12&0x3ff)*4
		l0, err := c.ptwRead(l0pa)
		if err != nil {
			return 0, 0, &Fault{Cause: causeFor(class), Addr: va, Msg: "page-table walk: " + err.Error()}
		}
		leaf = l0
		if leaf&PTEValid == 0 || leaf&PTEReserved != 0 {
			// The frame bits of the dead PTE remain architecturally
			// meaningless but microarchitecturally live (L1TF).
			return 0, 0, &Fault{Cause: causeFor(class), Addr: va, PTE: leaf, NotPresent: true,
				Msg: "page not present"}
		}
		if c.TLB != nil {
			c.TLB.Insert(vpn, asid, leaf)
		}
	}

	if flt := checkLeafPerms(leaf, class, c.Priv, va); flt != nil {
		return 0, leaf, flt
	}
	return (leaf &^ 0xfff) | va&0xfff, leaf, nil
}

func checkLeafPerms(leaf uint32, class accessClass, priv isa.Priv, va uint32) *Fault {
	needed := uint32(PTERead)
	switch class {
	case classFetch:
		needed = PTEExec
	case classStore:
		needed = PTEWrite
	}
	if leaf&needed == 0 {
		return &Fault{Cause: causeFor(class), Addr: va, PTE: leaf, Msg: "permission denied by PTE"}
	}
	if priv == isa.PrivUser && leaf&PTEUser == 0 {
		// Supervisor data is mapped but not user-accessible: the classic
		// Meltdown target. The fault is a *permission* fault on a present
		// page, so Fault.NotPresent stays false.
		return &Fault{Cause: causeFor(class), Addr: va, PTE: leaf, Msg: "user access to supervisor page"}
	}
	if priv != isa.PrivUser && class == classFetch && leaf&PTEUser != 0 {
		return &Fault{Cause: causeFor(class), Addr: va, PTE: leaf, Msg: "supervisor fetch from user page"}
	}
	return nil
}

// AddressSpace is an OS-level helper that builds two-level page tables in
// simulated physical memory. Attack harnesses use SetFlags to tamper with
// live PTEs (e.g. clearing the present bit for Foreshadow).
type AddressSpace struct {
	Mem  *mem.Memory
	Root uint32
	ASID int

	nextTable uint32
	limit     uint32
}

// NewAddressSpace carves page tables out of [tableBase, tableBase+tableLen)
// which must be page-aligned RAM.
func NewAddressSpace(m *mem.Memory, tableBase, tableLen uint32, asid int) (*AddressSpace, error) {
	if tableBase%PageSize != 0 || tableLen < PageSize {
		return nil, fmt.Errorf("cpu: page-table arena %#x+%#x not page aligned", tableBase, tableLen)
	}
	as := &AddressSpace{
		Mem: m, Root: tableBase, ASID: asid,
		nextTable: tableBase + PageSize,
		limit:     tableBase + tableLen,
	}
	return as, nil
}

func (as *AddressSpace) write32(pa, v uint32) error {
	return as.Mem.WriteRaw(pa, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

func (as *AddressSpace) read32(pa uint32) (uint32, error) {
	b := make([]byte, 4)
	if err := as.Mem.ReadRaw(pa, b); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Map installs a 4 KiB mapping va -> pa with the given flag bits
// (PTEValid is implied).
func (as *AddressSpace) Map(va, pa uint32, flags uint32) error {
	if va%PageSize != 0 || pa%PageSize != 0 {
		return fmt.Errorf("cpu: Map(%#x -> %#x): unaligned", va, pa)
	}
	l1pa := as.Root + (va>>22)*4
	l1, err := as.read32(l1pa)
	if err != nil {
		return err
	}
	if l1&PTEValid == 0 {
		if as.nextTable >= as.limit {
			return fmt.Errorf("cpu: page-table arena exhausted")
		}
		table := as.nextTable
		as.nextTable += PageSize
		if err := as.write32(l1pa, table|PTEValid); err != nil {
			return err
		}
		l1 = table | PTEValid
	}
	l0pa := (l1 &^ 0xfff) + (va>>12&0x3ff)*4
	return as.write32(l0pa, pa&^0xfff|flags|PTEValid)
}

// MapRange maps n contiguous bytes from va to pa (rounded up to pages).
func (as *AddressSpace) MapRange(va, pa, n uint32, flags uint32) error {
	for off := uint32(0); off < n; off += PageSize {
		if err := as.Map(va+off, pa+off, flags); err != nil {
			return err
		}
	}
	return nil
}

// MapIdentity maps [base, base+n) to itself.
func (as *AddressSpace) MapIdentity(base, n uint32, flags uint32) error {
	return as.MapRange(base, base, n, flags)
}

// PTEAddr returns the physical address of the leaf PTE for va, for direct
// tampering by attack harnesses.
func (as *AddressSpace) PTEAddr(va uint32) (uint32, error) {
	l1, err := as.read32(as.Root + (va>>22)*4)
	if err != nil {
		return 0, err
	}
	if l1&PTEValid == 0 {
		return 0, fmt.Errorf("cpu: va %#x has no level-0 table", va)
	}
	return (l1 &^ 0xfff) + (va>>12&0x3ff)*4, nil
}

// SetFlags ORs set into and clears clear from the leaf PTE of va.
// Clearing PTEValid models the malicious-OS step of Foreshadow.
func (as *AddressSpace) SetFlags(va uint32, set, clear uint32) error {
	pa, err := as.PTEAddr(va)
	if err != nil {
		return err
	}
	pte, err := as.read32(pa)
	if err != nil {
		return err
	}
	return as.write32(pa, pte&^clear|set)
}

// SATP returns the CSR value activating this address space.
func (as *AddressSpace) SATP() uint32 { return MakeSATP(as.Root, as.ASID) }
