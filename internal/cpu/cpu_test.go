package cpu

import (
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// testMachine builds a 4 MiB flat-RAM machine with caches and predictor.
func testMachine(t *testing.T, feat Features) (*CPU, *mem.Memory) {
	t.Helper()
	m := mem.NewMemory()
	m.MustAddRegion(mem.Region{Name: "ram", Base: 0, Size: 4 << 20, Kind: mem.RegionRAM})
	ctl := mem.NewController(m)
	c := New(0, ctl)
	c.Hier = &cache.Hierarchy{
		L1I:        cache.New(cache.Config{Name: "l1i", Sets: 64, Ways: 4, LineSize: 64, HitLatency: 1}),
		L1D:        cache.New(cache.Config{Name: "l1d", Sets: 64, Ways: 4, LineSize: 64, HitLatency: 2}),
		LLC:        cache.New(cache.Config{Name: "llc", Sets: 1024, Ways: 8, LineSize: 64, HitLatency: 18}),
		MemLatency: 100,
	}
	c.TLB = cache.NewTLB(32, 4)
	c.Pred = NewPredictor(1024, 256, 16)
	c.Feat = feat
	return c, m
}

// loadAndRun assembles src, loads it, and runs from its entry point.
func loadAndRun(t *testing.T, c *CPU, m *mem.Memory, src string, max uint64) RunResult {
	t.Helper()
	p := isa.MustAssemble(src)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c.Reset(p.Entry)
	res, err := c.Run(max)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestALUProgram(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        .org 0x1000
        li   a0, 100
        li   a1, 7
        add  a2, a0, a1    ; 107
        sub  a3, a0, a1    ; 93
        mul  t0, a0, a1    ; 700
        and  t1, a0, a1    ; 4
        or   t2, a0, a1    ; 103
        xor  t3, a0, a1    ; 99
        slli t4, a1, 4     ; 112
        hlt
`, 100)
	want := map[uint8]uint32{
		isa.RegA2: 107, isa.RegA3: 93, isa.RegT0: 700,
		isa.RegT1: 4, isa.RegT2: 103, isa.RegT3: 99, isa.RegT4: 112,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %d, want %d", isa.RegName(r), c.Regs[r], v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        li   a0, -8
        li   a1, 2
        sra  a2, a0, a1    ; -2
        srl  a3, a0, a1    ; big positive
        slt  t0, a0, a1    ; 1 (signed)
        sltu t1, a0, a1    ; 0 (unsigned: -8 is huge)
        slti t2, a0, -4    ; 1
        hlt
`, 100)
	if int32(c.Regs[isa.RegA2]) != -2 {
		t.Errorf("sra = %d", int32(c.Regs[isa.RegA2]))
	}
	if c.Regs[isa.RegA3] != 0x3ffffffe {
		t.Errorf("srl = %#x", c.Regs[isa.RegA3])
	}
	if c.Regs[isa.RegT0] != 1 || c.Regs[isa.RegT1] != 0 || c.Regs[isa.RegT2] != 1 {
		t.Errorf("slt=%d sltu=%d slti=%d", c.Regs[isa.RegT0], c.Regs[isa.RegT1], c.Regs[isa.RegT2])
	}
}

func TestLoadStoreBytesAndWords(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        .org 0x1000
        li   t0, 0x2000
        li   t1, 0xdeadbeef
        sw   t1, 0(t0)
        lw   a0, 0(t0)       ; 0xdeadbeef
        lbu  a1, 3(t0)       ; 0xde
        lb   a2, 3(t0)       ; sign-extended 0xde -> negative
        li   t2, 0x5a
        sb   t2, 1(t0)
        lw   a3, 0(t0)       ; 0xdead5aef
        hlt
`, 100)
	if c.Regs[isa.RegA0] != 0xdeadbeef {
		t.Errorf("lw = %#x", c.Regs[isa.RegA0])
	}
	if c.Regs[isa.RegA1] != 0xde {
		t.Errorf("lbu = %#x", c.Regs[isa.RegA1])
	}
	if c.Regs[isa.RegA2] != 0xffffffde {
		t.Errorf("lb = %#x", c.Regs[isa.RegA2])
	}
	if c.Regs[isa.RegA3] != 0xdead5aef {
		t.Errorf("after sb = %#x", c.Regs[isa.RegA3])
	}
}

func TestLoopAndBranches(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	// Sum 1..10 with a loop.
	res := loadAndRun(t, c, m, `
        li   a0, 0     ; sum
        li   t0, 1     ; i
        li   t1, 10
loop:   add  a0, a0, t0
        addi t0, t0, 1
        ble  t0, t1, loop
        hlt
`, 1000)
	if c.Regs[isa.RegA0] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[isa.RegA0])
	}
	if res.Reason != StopHalt {
		t.Errorf("stop reason = %v", res.Reason)
	}
}

func TestCallReturn(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        .org 0x1000
        li   a0, 5
        call double
        call double
        hlt
double: add a0, a0, a0
        ret
`, 100)
	if c.Regs[isa.RegA0] != 20 {
		t.Errorf("after two doublings a0 = %d", c.Regs[isa.RegA0])
	}
}

func TestSpeculativeCoreSameResults(t *testing.T) {
	// Architectural results must be identical with speculation on and off.
	prog := `
        li   a0, 0
        li   t0, 0
        li   t1, 37
loop:   andi t2, t0, 3
        beq  t2, zero, skip
        add  a0, a0, t0
skip:   addi t0, t0, 1
        bne  t0, t1, loop
        hlt
`
	c1, m1 := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c1, m1, prog, 10000)
	c2, m2 := testMachine(t, HighEndFeatures())
	loadAndRun(t, c2, m2, prog, 10000)
	if c1.Regs[isa.RegA0] != c2.Regs[isa.RegA0] {
		t.Fatalf("speculation changed architecture: %d vs %d",
			c1.Regs[isa.RegA0], c2.Regs[isa.RegA0])
	}
	if c2.BranchMispredicts == 0 {
		t.Error("irregular branch pattern produced no mispredictions")
	}
}

func TestEcallTrapAndEret(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        .org 0x100
        li   t0, 0x500
        csrw tvec, t0
        li   a0, 1
        ecall 7            ; traps to handler
        addi a0, a0, 10    ; resumed here: a0 = 102
        hlt

        .org 0x500
handler: csrr a1, cause
        csrr a2, tval
        li   a0, 92
        eret
`, 100)
	if c.Regs[isa.RegA0] != 102 {
		t.Errorf("a0 = %d, want 102", c.Regs[isa.RegA0])
	}
	if c.Regs[isa.RegA1] != isa.CauseEcallS {
		t.Errorf("cause = %d", c.Regs[isa.RegA1])
	}
	if c.Regs[isa.RegA2] != 7 {
		t.Errorf("tval = %d, want ecall code 7", c.Regs[isa.RegA2])
	}
}

func TestEcallGoHandler(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	var got int32
	c.EcallHandler = func(c *CPU, code int32) bool {
		got = code
		c.Regs[isa.RegA0] = 4242
		return true
	}
	loadAndRun(t, c, m, `
        ecall 33
        hlt
`, 10)
	if got != 33 || c.Regs[isa.RegA0] != 4242 {
		t.Errorf("handler saw %d, a0 = %d", got, c.Regs[isa.RegA0])
	}
}

func TestUnhandledTrapIsError(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	p := isa.MustAssemble(".word 0xffffffff") // undecodable
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c.Reset(p.Entry)
	_, err := c.Run(10)
	if err == nil || !strings.Contains(err.Error(), "unhandled trap") {
		t.Fatalf("err = %v", err)
	}
}

func TestIllegalCSRAccessTraps(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	p := isa.MustAssemble(`
        li   t0, 0x300
        csrw tvec, t0
        .org 0x200
user:   csrw satp, zero    ; illegal from user mode
        hlt
        .org 0x300
trap:   csrr a0, cause
        hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c.Reset(0)
	// Execute the two setup instructions (li = 2 slots + csrw).
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	c.Priv = isa.PrivUser
	c.PC = 0x200
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != isa.CauseIllegal {
		t.Errorf("cause = %d, want illegal", c.Regs[isa.RegA0])
	}
	if c.Priv != isa.PrivSuper {
		t.Errorf("trap did not raise privilege: %v", c.Priv)
	}
}

func TestCycleCounterAndCacheTiming(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	// Measure a cold load then a warm load of the same address with
	// rdcycle; the difference must expose the cache hit/miss contrast —
	// the primitive every cache side-channel attack relies on.
	loadAndRun(t, c, m, `
        li   t0, 0x3000
        rdcycle a0
        lw   t1, 0(t0)
        rdcycle a1
        lw   t2, 0(t0)
        rdcycle a2
        hlt
`, 100)
	cold := c.Regs[isa.RegA1] - c.Regs[isa.RegA0]
	warm := c.Regs[isa.RegA2] - c.Regs[isa.RegA1]
	if warm >= cold {
		t.Fatalf("warm load (%d cycles) not faster than cold load (%d cycles)", warm, cold)
	}
	if cold-warm < 50 {
		t.Errorf("hit/miss contrast too small: cold %d warm %d", cold, warm)
	}
}

func TestClflushRestoresMissLatency(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        li   t0, 0x3000
        lw   t1, 0(t0)      ; fill
        rdcycle a0
        lw   t1, 0(t0)      ; hit
        rdcycle a1
        clflush 0(t0)
        rdcycle a2
        lw   t1, 0(t0)      ; miss again
        rdcycle a3
        hlt
`, 100)
	hit := c.Regs[isa.RegA1] - c.Regs[isa.RegA0]
	missAfterFlush := c.Regs[isa.RegA3] - c.Regs[isa.RegA2]
	if missAfterFlush <= hit {
		t.Fatalf("clflush did not evict: hit %d, post-flush %d", hit, missAfterFlush)
	}
}

func TestWFIAndInterrupt(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	p := isa.MustAssemble(`
        li   t0, 0x400
        csrw tvec, t0
        li   t0, 1
        csrw status, t0     ; enable interrupts
        wfi
        hlt
        .org 0x400
isr:    li a0, 77
        hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c.Reset(0)
	res, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopWFI {
		t.Fatalf("expected WFI stop, got %v", res.Reason)
	}
	c.RaiseIRQ()
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 77 {
		t.Errorf("ISR did not run: a0 = %d", c.Regs[isa.RegA0])
	}
}

func TestInterruptMaskedUntilEnabled(t *testing.T) {
	// With IE clear, a pending IRQ must wait — the SMART property that
	// attestation with interrupts disabled delays interrupt service.
	c, m := testMachine(t, EmbeddedFeatures())
	p := isa.MustAssemble(`
        li   t0, 0x400
        csrw tvec, t0
        li   t1, 200
busy:   addi t1, t1, -1
        bne  t1, zero, busy
        li   t0, 1
        csrw status, t0    ; enable -> IRQ taken now
        li   t2, 1
stall:  bne  t2, zero, stall
        .org 0x400
isr:    csrr a0, instret
        hlt
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c.Reset(0)
	c.RaiseIRQ()
	if _, err := c.Run(2000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("ISR never ran")
	}
	// The busy loop retires ~400 instructions before IE is set; the ISR
	// must not have preempted it.
	if c.Regs[isa.RegA0] < 400 {
		t.Errorf("IRQ taken too early: instret at ISR = %d", c.Regs[isa.RegA0])
	}
}

func TestKeyGateCSR(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	c.SetCSR(isa.CSRKey0, 0x5ec2e7)
	// Gate: key readable only from ROM-ish region [0x800, 0x900).
	c.KeyGate = func(csr int, pc uint32, priv isa.Priv) bool {
		return pc >= 0x800 && pc < 0x900
	}
	p := isa.MustAssemble(`
        .org 0x200
steal:  csrr a1, key0      ; outside the gate: traps
        hlt
        .org 0x300
trap:   li   a1, 0
        hlt
        .org 0x800
attest: csrr a0, key0      ; inside the gate: allowed
        j    steal
`)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	c.Reset(0x800)
	c.SetCSR(isa.CSRTvec, 0x300)
	c.SetCSR(isa.CSRKey0, 0x5ec2e7)
	c.Priv = isa.PrivUser
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RegA0] != 0x5ec2e7 {
		t.Errorf("gated read failed: a0 = %#x", c.Regs[isa.RegA0])
	}
	if c.Regs[isa.RegA1] != 0 {
		t.Errorf("ungated read leaked key: a1 = %#x", c.Regs[isa.RegA1])
	}
}

func TestWorldCSRAndSMCHandler(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	worlds := []mem.World{}
	c.SMCHandler = func(c *CPU, code int32) bool {
		// Monitor: flip the world.
		if c.World == mem.WorldNormal {
			c.World = mem.WorldSecure
		} else {
			c.World = mem.WorldNormal
		}
		worlds = append(worlds, c.World)
		return true
	}
	loadAndRun(t, c, m, `
        csrr a0, world
        smc  1
        csrr a1, world
        smc  2
        csrr a2, world
        hlt
`, 100)
	if c.Regs[isa.RegA0] != uint32(mem.WorldSecure) {
		t.Errorf("boot world = %d", c.Regs[isa.RegA0])
	}
	if c.Regs[isa.RegA1] != uint32(mem.WorldNormal) || c.Regs[isa.RegA2] != uint32(mem.WorldSecure) {
		t.Errorf("world after SMCs = %d, %d", c.Regs[isa.RegA1], c.Regs[isa.RegA2])
	}
	if len(worlds) != 2 {
		t.Errorf("SMC handler calls = %d", len(worlds))
	}
}

func TestRunMaxInstructions(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	res := loadAndRun(t, c, m, "spin: j spin", 50)
	if res.Reason != StopMax || res.Instret != 50 {
		t.Errorf("res = %+v", res)
	}
}

func TestCountersClassify(t *testing.T) {
	c, m := testMachine(t, EmbeddedFeatures())
	loadAndRun(t, c, m, `
        li   t0, 0x2000   ; 2 ALU
        lw   t1, 0(t0)    ; load
        sw   t1, 4(t0)    ; store
        mul  t2, t1, t1   ; mul
        beq  zero, zero, next ; branch
next:   csrr a0, cycle    ; csr
        hlt               ; system
`, 100)
	k := c.Count
	if k.ALU != 2 || k.Load != 1 || k.Store != 1 || k.Mul != 1 || k.Branch != 1 || k.CSR != 1 || k.System != 1 {
		t.Errorf("counters = %+v", k)
	}
	if k.Total() != c.Instret {
		t.Errorf("total %d != instret %d", k.Total(), c.Instret)
	}
}
