package serve

import (
	"math"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/core"
)

// FuzzCacheKey fuzzes the cache address encoding the whole service
// content-addresses by: Encode must never panic, must be injective
// (distinct keys never collide on one address — a collision would serve
// one cell's verdict for another), and must round-trip exactly through
// the strict decoder.
func FuzzCacheKey(f *testing.F) {
	f.Add("flush+reload", "sgx", "none", 64, 0.9, 0, int64(0))
	f.Add("dpa", "trustzone", "ct-aes+clock-jitter", 1500, 0.99, 6000, int64(-7))
	f.Add("weird|scenario", "a%b", "x%7Cy", -3, 0.5, 9, int64(1)<<62)
	f.Add("", "", "", 0, 0.0, 0, int64(0))
	f.Add("a|b%25c", "|", "%", math.MaxInt, math.SmallestNonzeroFloat64, math.MinInt, int64(math.MinInt64))
	f.Fuzz(func(t *testing.T, scen, arch, def string, samples int, conf float64, maxs int, seed int64) {
		if math.IsNaN(conf) {
			t.Skip("NaN never equals itself; the resolver rejects it before a key exists")
		}
		k := core.CellKey{Scenario: scen, Arch: arch, Defense: def,
			Samples: samples, Confidence: conf, MaxSamples: maxs, Seed: seed}
		enc := k.Encode() // must not panic on any input
		got, err := core.DecodeCellKey(enc)
		if err != nil {
			t.Fatalf("decode(encode(%+v)) = %v", k, err)
		}
		if got != k {
			t.Fatalf("round trip changed the key:\n in: %+v\nout: %+v\nvia: %q", k, got, enc)
		}
		// Injectivity witness: a key differing in any single field must
		// encode differently. (Full injectivity follows from the exact
		// round trip above; this catches encoders that drop a field.)
		for _, other := range []core.CellKey{
			{Scenario: scen + "x", Arch: arch, Defense: def, Samples: samples, Confidence: conf, MaxSamples: maxs, Seed: seed},
			{Scenario: scen, Arch: arch + "x", Defense: def, Samples: samples, Confidence: conf, MaxSamples: maxs, Seed: seed},
			{Scenario: scen, Arch: arch, Defense: def + "x", Samples: samples, Confidence: conf, MaxSamples: maxs, Seed: seed},
			{Scenario: scen, Arch: arch, Defense: def, Samples: samples ^ 1, Confidence: conf, MaxSamples: maxs, Seed: seed},
			{Scenario: scen, Arch: arch, Defense: def, Samples: samples, Confidence: conf, MaxSamples: maxs ^ 1, Seed: seed},
			{Scenario: scen, Arch: arch, Defense: def, Samples: samples, Confidence: conf, MaxSamples: maxs, Seed: seed ^ 1},
		} {
			if other.Encode() == enc {
				t.Fatalf("distinct keys collide on %q:\n%+v\n%+v", enc, k, other)
			}
		}
		// The field separator must never leak: an unescaped '|' in a
		// field would let crafted axis strings forge other keys.
		if n := strings.Count(enc, "|"); n != 8 {
			t.Fatalf("encoding %q has %d separators, want 8", enc, n)
		}
	})
}

// FuzzCacheKeyDecode fuzzes the decoder with raw strings: it must never
// panic, and anything it accepts must be a canonical encoding —
// encode(decode(s)) == s — so no two distinct wire strings alias one
// cache entry.
func FuzzCacheKeyDecode(f *testing.F) {
	f.Add("cell|v1|flush+reload|sgx|none|64|0.9|0|0")
	f.Add("cell|v1|a%7Cb|c%25d||0|0|0|-1")
	f.Add("cell|v1||||0|0|0|0")
	f.Add("not a key")
	f.Add("cell|v1|a|b|c|1|0|0|0|trailing")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := core.DecodeCellKey(s) // must not panic on any input
		if err != nil {
			return
		}
		if enc := k.Encode(); enc != s {
			t.Fatalf("decoder accepted non-canonical %q (canonical form %q)", s, enc)
		}
	})
}
