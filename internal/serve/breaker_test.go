package serve

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks every transition with a deterministic
// clock: consecutive failures open, success resets the count, the
// cooldown admits exactly one half-open probe, and the probe's outcome
// alone decides between re-opening and closing.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, 10*time.Second)
	b.now = func() time.Time { return clock }

	if !b.allow() || b.snapshot() != breakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}

	// A success between failures resets the consecutive count.
	b.fail()
	b.fail()
	b.ok()
	b.fail()
	b.fail()
	if b.snapshot() != breakerClosed {
		t.Fatal("non-consecutive failures must not open the breaker")
	}
	b.fail()
	if b.snapshot() != breakerOpen || b.opens.Load() != 1 {
		t.Fatalf("3 consecutive failures: state %s opens %d, want open/1", stateName(b.snapshot()), b.opens.Load())
	}
	if b.allow() {
		t.Fatal("open breaker allowed an operation inside the cooldown")
	}

	// Cooldown elapses: exactly one caller gets the half-open probe.
	clock = clock.Add(11 * time.Second)
	if !b.allow() {
		t.Fatal("elapsed cooldown must admit the probe")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state after probe admission = %s, want half-open", stateName(b.snapshot()))
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: straight back to open for another cooldown.
	b.fail()
	if b.snapshot() != breakerOpen || b.opens.Load() != 2 {
		t.Fatal("failed probe must re-open")
	}
	clock = clock.Add(11 * time.Second)
	if !b.allow() {
		t.Fatal("second cooldown must admit a probe")
	}
	b.ok()
	if b.snapshot() != breakerClosed || !b.allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

// TestBreakerProbeMiss pins the miss semantics: a read miss resolves a
// half-open probe (the IO path worked, the breaker closes) but in the
// closed state it is neutral — it must not reset the failure count, or
// write-only failure modes interleaved with cold misses never trip.
func TestBreakerProbeMiss(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(2, 10*time.Second)
	b.now = func() time.Time { return clock }

	b.fail()
	b.probeMiss() // neutral while closed
	b.fail()
	if b.snapshot() != breakerOpen {
		t.Fatal("a closed-state miss reset the failure count")
	}

	clock = clock.Add(11 * time.Second)
	if !b.allow() || b.snapshot() != breakerHalfOpen {
		t.Fatal("cooldown must admit the probe")
	}
	b.probeMiss()
	if b.snapshot() != breakerClosed || !b.allow() {
		t.Fatal("a probe miss must close the half-open breaker")
	}
}

// TestBreakerDefaults pins the zero-value guards.
func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != 5 || b.cooldown != 5*time.Second {
		t.Fatalf("defaults = %d/%v, want 5/5s", b.threshold, b.cooldown)
	}
}
