package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// expensiveCell is a genuinely costly cold computation: a fixed-budget
// dpa trace collection well above the scenario floor.
const expensiveCell = "/cell?scenario=dpa&arch=sgx&defense=none&samples=6000&confidence=0"

// TestWarmCellSpeedup is the cache acceptance criterion: a warm /cell
// must be at least 100x faster than the cold computation it replays,
// and the hit/miss traffic must be visible at /metrics.
func TestWarmCellSpeedup(t *testing.T) {
	s := newTestServer(Options{})

	start := time.Now()
	rec := get(t, s, expensiveCell)
	cold := time.Since(start)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold = %d X-Cache=%q", rec.Code, rec.Header().Get("X-Cache"))
	}

	const warmRounds = 200
	warmBest := time.Duration(1 << 62)
	for i := 0; i < warmRounds; i++ {
		start = time.Now()
		rec := get(t, s, expensiveCell)
		if d := time.Since(start); d < warmBest {
			warmBest = d
		}
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
			t.Fatalf("warm round %d = %d X-Cache=%q", i, rec.Code, rec.Header().Get("X-Cache"))
		}
	}
	t.Logf("cold %v, warm best-of-%d %v (%.0fx)", cold, warmRounds, warmBest, float64(cold)/float64(warmBest))
	if cold < 100*warmBest {
		t.Errorf("warm cell only %.1fx faster than cold (%v vs %v), want >= 100x",
			float64(cold)/float64(warmBest), warmBest, cold)
	}

	metrics := get(t, s, "/metrics").Body.String()
	if !strings.Contains(metrics, fmt.Sprintf("intrust_cache_hits_total %d", warmRounds)) {
		t.Errorf("/metrics does not account the %d warm hits:\n%s", warmRounds, metrics)
	}
	if !strings.Contains(metrics, "intrust_cache_misses_total 1") {
		t.Errorf("/metrics does not account the cold miss")
	}
}

// BenchmarkCellWarm times the cache hit path end to end through the
// handler stack (mux, instrumentation, LRU promotion, body write).
func BenchmarkCellWarm(b *testing.B) {
	s := newTestServer(Options{})
	const target = "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=32"
	if rec := warmup(b, s, target); rec != http.StatusOK {
		b.Fatalf("warmup = %d", rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("warm = %d", rec.Code)
		}
	}
}

// BenchmarkCellCold times the full compute path; every iteration
// addresses a distinct seed so the cache never helps.
func BenchmarkCellCold(b *testing.B) {
	s := newTestServer(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := fmt.Sprintf("/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=32&seed=%d", i+1)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("cold = %d", rec.Code)
		}
	}
}

// BenchmarkSweepWarm times a fully-warm 40-cell NDJSON stream — the
// serve layer's steady-state grid query.
func BenchmarkSweepWarm(b *testing.B) {
	s := newTestServer(Options{})
	const target = "/sweep?attack=transient&defense=none&samples=32"
	if rec := warmup(b, s, target); rec != http.StatusOK {
		b.Fatalf("warmup = %d", rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("warm sweep = %d", rec.Code)
		}
	}
}

// BenchmarkRestart contrasts the two restart stories: ColdCompute is a
// fresh server paying the engine price for its first cell, DiskWarm is
// a fresh server answering the same cell from the persistent tier. The
// gap is what `-cache-dir` buys across a process restart.
func BenchmarkRestart(b *testing.B) {
	const target = "/cell?scenario=dpa&arch=sgx&defense=none&samples=6000&confidence=0"

	b.Run("ColdCompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := newTestServer(Options{})
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
				b.Fatalf("cold = %d X-Cache=%q", rec.Code, rec.Header().Get("X-Cache"))
			}
		}
	})

	b.Run("DiskWarm", func(b *testing.B) {
		dir := b.TempDir()
		opts := Options{CacheDir: dir, CacheSecret: "bench"}
		seed := newTestServer(opts)
		if code := warmup(b, seed, target); code != http.StatusOK {
			b.Fatalf("seed = %d", code)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := newTestServer(opts)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "disk" {
				b.Fatalf("restart = %d X-Cache=%q", rec.Code, rec.Header().Get("X-Cache"))
			}
		}
	})
}

func warmup(b *testing.B, s *Server, target string) int {
	b.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec.Code
}
