// Package serve is the sweep-as-a-service layer: a long-running
// HTTP/JSON API over the scenario × architecture × defense grid, so the
// paper's efficacy surface is queried instead of recomputed.
//
// The service stands on the engine's determinism guarantee: every grid
// cell's measurement is a pure function of its canonical CellKey
// (scenario, arch, defense, samples, confidence, seed — see
// internal/core), so a content-addressed result cache never serves a
// stale or approximate answer — a cache hit is byte-identical to what a
// fresh computation would render. Repeated queries are therefore O(1),
// and the cache needs bounding (LRU) but never invalidation.
//
// The cache is two-tiered: an in-memory LRU (bounded by entries and by
// resident bytes) in front of an optional persistent tier
// (Options.CacheDir, see internal/diskcache) whose authenticated
// envelopes survive restarts. The hit path is LRU -> disk -> admission
// -> engine: disk hits promote into the LRU and cold computes write
// behind to disk, so a restarted server answers warm cells
// byte-identically with zero engine work, while a tampered, torn or
// truncated cache file reads as a miss and is quarantined — never a
// served body, never a 500.
//
// Endpoints:
//
//	/healthz   liveness (503 while draining)
//	/cell      one grid cell as JSON (X-Cache: hit|miss)
//	/sweep     a grid selection as streaming NDJSON, one cell per line,
//	           warm cells flowing immediately, plus a summary line
//	/attacks   the scenario catalog as JSON
//	/defenses  the mitigation catalog as JSON
//	/bench     the internal/perf throughput report (computed once,
//	           ?refresh=1 recomputes)
//	/attest/quote   a signed attestation quote for (arch, config, tcb)
//	/attest/verify  verify a wire quote under the sweep-driven policy
//	/attest/tcb     per-arch TCB revocation state and its grid evidence
//	/metrics   Prometheus text exposition (cells/sec, cache hit rate,
//	           in-flight jobs, queue depth, per-endpoint latency)
//
// Backpressure: requests that need at least one cold cell pass through
// a bounded admission queue (Options.MaxInFlight compute slots,
// Options.QueueDepth waiters); past that the service answers 429 with
// Retry-After instead of queueing without bound. Cache hits bypass
// admission entirely — a saturated queue cannot slow the warm path.
// Shutdown is graceful: BeginDrain flips new requests to 503 while
// in-flight cells run to completion (ListenAndServe wires this to
// context cancellation and http.Server.Shutdown).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/fault"
	"github.com/intrust-sim/intrust/internal/perf"
	"github.com/intrust-sim/intrust/internal/stats"
)

// Options configures a Server. The zero value selects the defaults
// documented per field.
type Options struct {
	// CacheEntries bounds the result cache's LRU (<= 0 selects 4096).
	CacheEntries int
	// CacheBytes bounds the LRU by resident body bytes alongside the
	// entry bound (<= 0 selects 256 MiB) — entry count alone lets a
	// few large bodies dwarf thousands of cell entries.
	CacheBytes int64
	// CacheDir enables the persistent second cache tier: rendered cell
	// bodies stored in tamper-evident authenticated envelopes
	// (internal/diskcache) that survive restarts. Empty disables the
	// disk tier. The hit path is LRU -> disk -> compute; disk hits
	// promote into the LRU, cold computes write behind to disk.
	CacheDir string
	// CacheSecret keys the disk tier's authentication (HMAC-SHA256,
	// derived deterministically): a file that fails authentication is
	// quarantined and treated as a miss, never served. Every process
	// sharing a CacheDir must share its secret.
	CacheSecret string
	// MaxInFlight bounds concurrently computing requests
	// (<= 0 selects GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds the admission queue: how many computing
	// requests may wait for a slot before the service answers 429
	// (<= 0 selects 64).
	QueueDepth int
	// Seed is the base engine seed cells compute under (the CLI sweep
	// uses 0). It also roots the attestation authority's per-arch
	// quoting keys, so a CLI `intrust attest` run with the same seed
	// mints quotes this server verifies.
	Seed int64
	// BenchConfigs are the sweep configurations /bench measures
	// (nil selects perf.CanonicalConfigs()).
	BenchConfigs []perf.Config
	// RevocationArchs and RevocationAttacks select the none-defense
	// grid slice TCB revocation derives from (nil selects "all"). The
	// slice computes lazily on the first /attest/verify or /attest/tcb
	// request, through the same content-addressed cell cache as any
	// /cell request, so a warm grid revokes in microseconds.
	RevocationArchs, RevocationAttacks []string
	// RevocationSamples is the per-cell budget of the revocation grid
	// (<= 0 selects 64; fixed-budget, so the derived state is identical
	// across processes regardless of adaptive policy defaults).
	RevocationSamples int
	// Faults, when non-nil, arms the deterministic fault-injection plane
	// (internal/fault) across the stack: disk read/write/corruption
	// faults in the persistent tier, stall/panic faults in the engine,
	// and connection drops at the listener. nil (the default) leaves
	// every seam a no-op. Production servers never set this; the chaos
	// suite and the -fault CLI flag do.
	Faults *fault.Plane
	// ComputeDeadline bounds one request's compute time (admission wait
	// included): past it, the request answers 503 with a structured body
	// instead of hanging the handler on a stuck cell. 0 disables the
	// deadline.
	ComputeDeadline time.Duration
	// BreakerThreshold is how many consecutive disk-tier IO failures
	// open the circuit breaker over the persistent cache (<= 0 selects
	// 5). While open the server degrades to memory-only.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker bypasses the disk
	// before probing it again half-open (<= 0 selects 5s).
	BreakerCooldown time.Duration
	// DiskRetries is how many times a failed write-behind persist
	// retries with exponential backoff before counting as a failure
	// (0 selects 2; negative disables retries).
	DiskRetries int
	// DiskRetryBase is the first retry's backoff, doubling per attempt
	// (<= 0 selects 5ms).
	DiskRetryBase time.Duration
}

// Server is the sweep-as-a-service HTTP handler plus its cache,
// admission and metrics state. Create it with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	opts     Options
	cache    *cellCache
	disk     *diskcache.Store // nil when Options.CacheDir is empty
	adm      *admission
	met      *metrics
	flight   *flightGroup
	mux      *http.ServeMux
	brk      *breaker     // circuit breaker over the disk tier (never nil)
	faults   *fault.Plane // nil unless Options.Faults armed the chaos plane
	draining atomic.Bool

	benchFlight *flightGroup
	bench       atomic.Pointer[[]byte]
	attacks     []byte
	defenses    []byte

	attest *attestState
}

// testComputeStall, when non-nil, is called while holding a compute
// slot before a cold cell runs — the deterministic seam the
// backpressure and graceful-shutdown tests block on.
var testComputeStall func(key core.CellKey)

// New builds a Server from the options. The only failure mode is the
// persistent cache tier: an unusable Options.CacheDir is an error at
// construction, not a silently-degraded server.
func New(opts Options) (*Server, error) {
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.BenchConfigs == nil {
		opts.BenchConfigs = perf.CanonicalConfigs()
	}
	switch {
	case opts.DiskRetries == 0:
		opts.DiskRetries = 2
	case opts.DiskRetries < 0:
		opts.DiskRetries = 0
	}
	if opts.DiskRetryBase <= 0 {
		opts.DiskRetryBase = 5 * time.Millisecond
	}
	var disk *diskcache.Store
	if opts.CacheDir != "" {
		var err error
		if disk, err = diskcache.Open(opts.CacheDir, opts.CacheSecret); err != nil {
			return nil, err
		}
		disk.SetFaults(opts.Faults)
	}
	// The engine's fault seam is process-global (the engine has no
	// per-server state); storing nil disarms it, so the last-constructed
	// server's plane governs — fine for production (always nil) and for
	// the chaos suite (one server at a time).
	engine.SetFaultPlane(opts.Faults)
	s := &Server{
		opts:        opts,
		cache:       newCellCache(opts.CacheEntries, opts.CacheBytes),
		disk:        disk,
		adm:         newAdmission(opts.MaxInFlight, opts.QueueDepth),
		met:         newMetrics(),
		flight:      newFlightGroup(),
		benchFlight: newFlightGroup(),
		mux:         http.NewServeMux(),
		brk:         newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		faults:      opts.Faults,
	}
	s.attest = newAttestState(opts)
	s.buildCatalogs()
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.instrumentAlways("/readyz", s.handleReadyz))
	s.mux.HandleFunc("/cell", s.instrument("/cell", s.handleCell))
	s.mux.HandleFunc("/sweep", s.instrument("/sweep", s.handleSweep))
	s.mux.HandleFunc("/attacks", s.instrument("/attacks", s.handleAttacks))
	s.mux.HandleFunc("/defenses", s.instrument("/defenses", s.handleDefenses))
	s.mux.HandleFunc("/bench", s.instrument("/bench", s.handleBench))
	s.mux.HandleFunc("/attest/quote", s.instrument("/attest/quote", s.handleAttestQuote))
	s.mux.HandleFunc("/attest/verify", s.instrument("/attest/verify", s.handleAttestVerify))
	s.mux.HandleFunc("/attest/tcb", s.instrument("/attest/tcb", s.handleAttestTCB))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server into draining mode: every new request
// (including /healthz, so load balancers stop routing here) answers
// 503 while requests already past admission run to completion. It is
// idempotent; ListenAndServe calls it before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Connection hygiene bounds pinned by TestHTTPServerTimeouts: a peer
// that never finishes its headers, or an idle keep-alive connection,
// must not hold a file descriptor forever.
const (
	// readHeaderTimeout bounds how long a connection may take to send
	// its request headers (Slowloris protection).
	readHeaderTimeout = 10 * time.Second
	// idleTimeout bounds how long a keep-alive connection may sit idle
	// between requests. Generous relative to request cadence: warm
	// clients polling every minute stay connected, abandoned sockets
	// do not.
	idleTimeout = 120 * time.Second
)

// httpServer builds the http.Server ListenAndServe runs: the handler
// plus the connection hygiene timeouts. ReadTimeout is deliberately
// unset — /sweep responses stream for as long as the grid takes, and
// the per-request ComputeDeadline already bounds compute.
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// faultListener wraps the accept loop with the listener.drop fault
// point: a fired accept closes the connection immediately (the client
// sees a reset, exactly like a crashed peer) and keeps accepting.
type faultListener struct {
	net.Listener
	faults *fault.Plane
}

// faultListenerDrop is the listener-level fault point name (see
// internal/fault's catalog).
const faultListenerDrop = "listener.drop"

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil || !l.faults.Fire(faultListenerDrop) {
			return c, err
		}
		c.Close()
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then drains
// gracefully: new requests are refused (503, then the listener closes)
// while in-flight cells complete, bounded by drainTimeout.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	hs := s.httpServer(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var lst net.Listener = ln
	if s.faults != nil {
		lst = &faultListener{Listener: ln, faults: s.faults}
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lst) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// instrument wraps a handler with the draining gate and per-endpoint
// request/latency metrics.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrap(endpoint, h, true)
}

// instrumentAlways is instrument without the draining gate: /readyz
// must keep answering while draining — reporting {"status":"draining"}
// as JSON is the whole point — where every other endpoint flips to a
// blanket 503.
func (s *Server) instrumentAlways(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrap(endpoint, h, false)
}

func (s *Server) wrap(endpoint string, h http.HandlerFunc, gateDrain bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if gateDrain && s.draining.Load() {
			writeError(sw, http.StatusServiceUnavailable, "server is draining")
		} else if r.Method != http.MethodGet {
			sw.Header().Set("Allow", http.MethodGet)
			writeError(sw, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed; endpoints are read-only GETs", r.Method))
		} else {
			h(sw, r)
		}
		s.met.observeRequest(endpoint, sw.code, time.Since(start))
	}
}

// statusWriter captures the response code for metrics while preserving
// the Flusher the streaming sweep handler needs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying Flusher so NDJSON streaming works
// through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// apiError is the structured error body every non-2xx JSON response
// carries: malformed axis values are a client's 400 with the same
// message the CLI would print, never a 500.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: msg})
}

// computeCell renders one cold cell: it re-checks the cache tiers
// (another flight may have landed it in memory, or a previous process
// in the disk store), runs the cell on the engine, and caches the
// rendered body in both tiers. Concurrent computations of the same key
// collapse into one flight. The caller must already hold a compute
// slot.
//
// Cancellation is mapped, not stringified: when a cell fails because
// the request context ended (client gone, or the compute deadline
// fired), the typed context error surfaces so handlers can answer 503
// instead of 500 — the engine confines everything, cancellation
// included, into Result.Err strings that errors.Is cannot see through.
// A follower whose flight leader was cancelled retries under its own
// still-live context rather than inheriting the leader's abort.
func (s *Server) computeCell(ctx context.Context, key core.CellKey) ([]byte, error) {
	addr := key.Encode()
	for {
		body, err, shared := s.flight.do(addr, func() ([]byte, error) {
			if b, ok := s.cache.lookup(addr); ok {
				return b, nil
			}
			if b, ok := s.diskLoad(addr); ok {
				return b, nil
			}
			if h := testComputeStall; h != nil {
				h(key)
			}
			start := time.Now()
			res, err := core.RunCell(ctx, key)
			if err == nil && res.Failed() {
				err = fmt.Errorf("cell %s: %s", addr, res.Err)
			}
			s.met.observeCompute(time.Since(start), err != nil)
			if err != nil {
				if ce := ctx.Err(); ce != nil {
					err = ce
				}
				return nil, err
			}
			b := marshalLine(newCell(key, &res))
			s.cache.put(addr, b)
			s.diskWrite(addr, b)
			return b, nil
		})
		if err != nil && shared && ctx.Err() == nil && isContextError(err) {
			continue
		}
		return body, err
	}
}

// isContextError reports whether err is a (wrapped) context
// cancellation or deadline error.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// diskLoad reads one body from the persistent tier, promoting a hit
// into the in-memory LRU. Everything the store refuses — absent,
// truncated, tampered, torn, cross-key aliased — is a plain miss; the
// caller falls through to compute, never to an error. IO-level
// failures (as opposed to refused entries) feed the circuit breaker,
// and while the breaker is open the disk is bypassed entirely: the
// server degrades to memory-only rather than paying a failing disk's
// latency on every request.
func (s *Server) diskLoad(addr string) ([]byte, bool) {
	if s.disk == nil {
		return nil, false
	}
	if !s.brk.allow() {
		s.met.diskBypassed.Add(1)
		return nil, false
	}
	b, ok, ioErr := s.disk.GetE(addr)
	if ioErr != nil {
		s.met.diskReadErrors.Add(1)
		s.brk.fail()
		return nil, false
	}
	if ok {
		s.brk.ok()
		s.cache.put(addr, b)
	} else {
		// A miss is only a weak health signal: it resolves a half-open
		// probe (the IO path worked) but must not reset the closed
		// state's failure count — see breaker.probeMiss.
		s.brk.probeMiss()
	}
	return b, ok
}

// diskWrite persists one rendered body write-behind, retrying a failed
// persist with exponential backoff (transient IO hiccups — a full
// fsync queue, a momentary EIO — usually clear in milliseconds). A
// write that exhausts its retries costs the restart-warm guarantee for
// this cell, not the response: it moves an error counter and feeds the
// circuit breaker, which after enough consecutive failures stops
// touching the disk at all until a cooldown probe succeeds.
func (s *Server) diskWrite(addr string, body []byte) {
	if s.disk == nil {
		return
	}
	if !s.brk.allow() {
		s.met.diskBypassed.Add(1)
		return
	}
	for attempt := 0; ; attempt++ {
		if err := s.disk.Put(addr, body); err == nil {
			s.brk.ok()
			return
		}
		if attempt >= s.opts.DiskRetries {
			break
		}
		s.met.diskWriteRetries.Add(1)
		time.Sleep(s.opts.DiskRetryBase << attempt)
	}
	s.met.diskWriteErrors.Add(1)
	s.brk.fail()
}

// WarmUp precomputes the canonical none+stock grid — the paper's
// primary efficacy surface — into the cache tiers, so a fresh process
// (or a restarted one pointed at a populated CacheDir) answers it with
// zero engine work. Cells already on disk load and promote; only
// genuinely new cells compute, bounded by GOMAXPROCS. It returns how
// many cells each path took. Safe to run concurrently with live
// traffic: it goes through the same flights and caches as any request.
func (s *Server) WarmUp(ctx context.Context) (loaded, computed int, err error) {
	return s.warmUp(ctx, nil, nil, []string{"none", "stock"})
}

// warmUp is WarmUp over an explicit axis selection (tests warm small
// slices; the canonical entry point warms the full none+stock grid).
func (s *Server) warmUp(ctx context.Context, archs, attacks, defenses []string) (loaded, computed int, err error) {
	keys, err := core.EnumerateCells(archs, attacks, defenses, core.CellOptions{Confidence: stats.DefaultConfidence, Seed: s.opts.Seed})
	if err != nil {
		return 0, 0, err
	}
	var nLoaded, nComputed atomic.Int64
	var firstErr atomic.Pointer[error]
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, key := range keys {
		if ctx.Err() != nil {
			break
		}
		addr := key.Encode()
		if s.cache.peek(addr) {
			continue
		}
		if _, ok := s.diskLoad(addr); ok {
			nLoaded.Add(1)
			continue
		}
		wg.Add(1)
		go func(key core.CellKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, cerr := s.computeCell(ctx, key); cerr != nil {
				firstErr.CompareAndSwap(nil, &cerr)
				return
			}
			nComputed.Add(1)
		}(key)
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		err = *p
	}
	return int(nLoaded.Load()), int(nComputed.Load()), err
}
