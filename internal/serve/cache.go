package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cellCache is the content-addressed result cache: canonical CellKey
// encoding -> rendered response body, bounded by an LRU eviction
// policy. Determinism is what makes it sound — the engine's per-job
// seeding guarantees a cached body is byte-identical to what a fresh
// computation of the same key would render — so the cache never needs
// invalidation, only bounding.
type cellCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCellCache(max int) *cellCache {
	if max <= 0 {
		max = 4096
	}
	return &cellCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body for a key, promoting it to most recently
// used, and counts the hit or miss.
func (c *cellCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// lookup is get without the hit/miss accounting: the singleflight
// re-check path, which would otherwise double-count a cold request's
// miss (the handler's own get already counted it).
func (c *cellCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// peek reports whether a key is cached without promoting it or touching
// the hit/miss counters (the sweep handler's upfront miss scan).
func (c *cellCache) peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// put stores a body under a key, evicting from the LRU tail past the
// bound. Storing an existing key refreshes its recency but keeps the
// first body: contents are content-addressed, so both writers hold the
// same bytes.
func (c *cellCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// len returns the current entry count.
func (c *cellCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup deduplicates concurrent computations of the same key:
// the first caller (the leader) runs fn, everyone else arriving before
// it finishes blocks and shares the leader's result. Errors are shared
// with the in-flight followers but never retained — the next request
// retries fresh.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under the key's flight, returning the shared result and
// whether this caller was a follower (shared == true).
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (body []byte, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.body, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.body, call.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.body, call.err, false
}
