package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// cellCache is the content-addressed result cache: canonical CellKey
// encoding -> rendered response body, bounded by an LRU eviction
// policy. Determinism is what makes it sound — the engine's per-job
// seeding guarantees a cached body is byte-identical to what a fresh
// computation of the same key would render — so the cache never needs
// invalidation, only bounding. Bounding is two-dimensional: an entry
// count and a resident-byte budget, because entry count alone lets a
// few very large bodies dwarf thousands of cell entries and blow
// memory without a single eviction.
type cellCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64 // resident key+body bytes, guarded by mu
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// defaultCacheBytes bounds resident bodies when the caller does not:
// generous for cell-sized entries (hundreds of bytes each) while
// keeping the worst case far below container memory limits.
const defaultCacheBytes = 256 << 20

func newCellCache(max int, maxBytes int64) *cellCache {
	if max <= 0 {
		max = 4096
	}
	if maxBytes <= 0 {
		maxBytes = defaultCacheBytes
	}
	return &cellCache{max: max, maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body for a key, promoting it to most recently
// used, and counts the hit or miss.
func (c *cellCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// lookup is get without the hit/miss accounting: the singleflight
// re-check path, which would otherwise double-count a cold request's
// miss (the handler's own get already counted it).
func (c *cellCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// peek reports whether a key is cached without promoting it or touching
// the hit/miss counters (the sweep handler's upfront miss scan).
func (c *cellCache) peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// put stores a body under a key, evicting from the LRU tail past
// either bound (entries or resident bytes). Storing an existing key
// refreshes its recency but keeps the first body: contents are
// content-addressed, so both writers hold the same bytes. A single
// body larger than the whole byte budget still caches (it was just
// computed; evicting everything else is the best the bound can do) and
// is shed by the next put.
func (c *cellCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += entryBytes(key, body)
	for (c.ll.Len() > c.max || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		tail := c.ll.Back()
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.bytes -= entryBytes(ent.key, ent.body)
		c.evictions.Add(1)
	}
}

// entryBytes is one entry's accounted footprint: the retained key and
// body bytes (map/list overhead is proportional to the entry bound,
// which the count dimension already limits).
func entryBytes(key string, body []byte) int64 {
	return int64(len(key) + len(body))
}

// len returns the current entry count.
func (c *cellCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size returns the current entry count and resident bytes.
func (c *cellCache) size() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// flightGroup deduplicates concurrent computations of the same key:
// the first caller (the leader) runs fn, everyone else arriving before
// it finishes blocks and shares the leader's result. Errors are shared
// with the in-flight followers but never retained — the next request
// retries fresh.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under the key's flight, returning the shared result and
// whether this caller was a follower (shared == true).
//
// The unwind is deferred so it runs even when fn panics: without that,
// a panicking leader would leak the map entry and never close done,
// permanently wedging the key — every later request for it would block
// forever. A leader panic instead converts to an error shared with the
// in-flight followers (surfaced upstream as a structured 500, exactly
// like an engine error) and the key recovers: the next request starts
// a fresh flight.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (body []byte, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.body, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	defer func() {
		if p := recover(); p != nil {
			call.body, call.err = nil, fmt.Errorf("panic computing %s: %v", key, p)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(call.done)
		body, err = call.body, call.err
	}()
	call.body, call.err = fn()
	return call.body, call.err, false
}
