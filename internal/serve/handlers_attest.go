package serve

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/intrust-sim/intrust/internal/attestsvc"
	"github.com/intrust-sim/intrust/internal/core"
)

// The attestation endpoints make the serve tier a quote/verify service
// riding the existing machinery: quote bodies and verify verdicts are
// pure functions of their inputs (deterministic Ed25519 signing, and a
// verifier that is stateless with respect to nonces), so both cache in
// the same content-addressed LRU as grid cells; the revocation grid the
// verify policy derives from computes through computeCell, so its cells
// are shared with /cell and /sweep traffic and ride admission when cold.

// attestState is the server's attestation lifecycle state: the service
// (authority + policy) and the lazily computed sweep-driven revocation
// grid behind it.
type attestState struct {
	svc    *attestsvc.Service
	keys   []core.CellKey
	keyErr error

	flight *flightGroup
	mu     sync.RWMutex
	ready  bool
	fp     string
}

// defaultRevocationSamples is the fixed per-cell budget of the
// revocation grid: fixed rather than adaptive so the derived TCB state
// never depends on an adaptive policy default.
const defaultRevocationSamples = 64

func newAttestState(opts Options) *attestState {
	archs, attacks := opts.RevocationArchs, opts.RevocationAttacks
	if len(archs) == 0 {
		archs = []string{"all"}
	}
	if len(attacks) == 0 {
		attacks = []string{"all"}
	}
	samples := opts.RevocationSamples
	if samples <= 0 {
		samples = defaultRevocationSamples
	}
	st := &attestState{
		svc:    attestsvc.NewService(attestsvc.RootFromSeed(opts.Seed)),
		flight: newFlightGroup(),
	}
	st.keys, st.keyErr = core.RevocationCellKeys(archs, attacks, core.CellOptions{Samples: samples, Seed: opts.Seed})
	return st
}

// revocationReady reports whether the revocation grid has been folded
// into the service's policy (and its fingerprint when it has).
func (a *attestState) revocationReady() (string, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.fp, a.ready
}

// ensureRevocations computes (or reads warm) every revocation grid cell
// and installs the derived TCB state. Concurrent callers collapse into
// one flight; the caller must hold a compute slot if any cell is cold.
func (s *Server) ensureRevocations(ctx context.Context) (string, error) {
	a := s.attest
	if fp, ok := a.revocationReady(); ok {
		return fp, nil
	}
	if a.keyErr != nil {
		return "", a.keyErr
	}
	_, err, _ := a.flight.do("revocations", func() ([]byte, error) {
		if _, ok := a.revocationReady(); ok {
			return nil, nil
		}
		cells := make([]attestsvc.Cell, 0, len(a.keys))
		for _, k := range a.keys {
			body, ok := s.cache.get(k.Encode())
			if !ok {
				var err error
				if body, err = s.computeCell(ctx, k); err != nil {
					return nil, err
				}
			}
			var c Cell
			if err := json.Unmarshal(body, &c); err != nil {
				return nil, fmt.Errorf("revocation cell %s: %w", k.Encode(), err)
			}
			cells = append(cells, attestsvc.Cell{
				Scenario: c.Scenario, Arch: c.Arch, Defense: c.Defense, Class: c.Class,
			})
		}
		rev := attestsvc.Revoke(cells)
		a.svc.SetRevocations(rev)
		revoked := 0
		for _, st := range rev.Statuses() {
			if st.Revoked {
				revoked++
			}
		}
		s.met.attestRevoked.Store(int64(revoked))
		a.mu.Lock()
		a.fp = rev.Fingerprint()
		a.ready = true
		a.mu.Unlock()
		return nil, nil
	})
	if err != nil {
		return "", err
	}
	fp, _ := a.revocationReady()
	return fp, nil
}

// revocationCold reports whether any revocation grid cell would need a
// cold compute — the admission decision for /attest/verify and
// /attest/tcb, mirroring /sweep's.
func (s *Server) revocationCold() bool {
	if _, ok := s.attest.revocationReady(); ok {
		return false
	}
	for _, k := range s.attest.keys {
		if !s.cache.peek(k.Encode()) {
			return true
		}
	}
	return false
}

// quoteWire is the URL-safe text encoding of a wire quote: unpadded
// base64url survives query strings without '+'-mangling (see axisToken
// for the axis-side version of that hazard).
var quoteWire = base64.RawURLEncoding

// attestQuoteBody is the /attest/quote response.
type attestQuoteBody struct {
	Arch        string `json:"arch"`
	Config      string `json:"config"`
	TCBVersion  uint32 `json:"tcb_version"`
	Measurement string `json:"measurement"`
	Nonce       string `json:"nonce,omitempty"`
	Quote       string `json:"quote"`
}

// handleAttestQuote mints the canonical quote for (arch, config, tcb),
// optionally bound to a challenger nonce and report data (hex). Quotes
// are deterministic, so they cache like grid cells.
func (s *Server) handleAttestQuote(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	arch := axisToken(q.Get("arch"))
	config := q.Get("config")
	if config == "" {
		config = attestsvc.ConfigStock
	}
	if config != attestsvc.ConfigNone && config != attestsvc.ConfigStock {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("config: %q is not a canonical configuration (none, stock)", config))
		return
	}
	tcb := attestsvc.TCBForConfig(config)
	if v := q.Get("tcb"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("tcb: %q is not an unsigned integer", v))
			return
		}
		tcb = uint32(n)
	}
	nonce, err := hexParam(q.Get("nonce"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "nonce: "+err.Error())
		return
	}
	data, err := hexParam(q.Get("data"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "data: "+err.Error())
		return
	}
	addr := fmt.Sprintf("attest|quote|v1|%s|%s|%d|%x|%x", arch, config, tcb, nonce, data)
	if body, ok := s.cache.get(addr); ok {
		writeCell(w, body, "hit")
		return
	}
	qt, err := s.attest.svc.Quote(arch, config, tcb, nonce, data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	wire, err := qt.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.met.attestQuotes.Add(1)
	body := marshalLine(attestQuoteBody{
		Arch:        arch,
		Config:      config,
		TCBVersion:  tcb,
		Measurement: qt.Measurement.Hex(),
		Nonce:       hex.EncodeToString(nonce),
		Quote:       quoteWire.EncodeToString(wire),
	})
	s.cache.put(addr, body)
	writeCell(w, body, "miss")
}

// attestVerifyBody is the /attest/verify response: the verdict plus the
// revocation-state fingerprint it was decided under.
type attestVerifyBody struct {
	attestsvc.Verdict
	RevocationFP string `json:"revocation_fp"`
}

// handleAttestVerify verifies a wire quote (base64url `quote` param)
// against the sweep-driven policy, optionally binding a challenge nonce
// (hex). The verdict is a pure function of (quote, nonce, revocation
// state), so it caches keyed by the revocation fingerprint; rejected
// quotes are still 200s — the HTTP layer reports transport problems,
// the body reports attestation ones.
func (s *Server) handleAttestVerify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	wire, err := quoteWire.DecodeString(q.Get("quote"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "quote: not valid base64url: "+err.Error())
		return
	}
	if len(wire) == 0 {
		writeError(w, http.StatusBadRequest, "quote: required (base64url wire quote)")
		return
	}
	nonce, err := hexParam(q.Get("nonce"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "nonce: "+err.Error())
		return
	}
	if s.revocationCold() {
		release, err := s.adm.acquire(r.Context())
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
	}
	fp, err := s.ensureRevocations(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sum := sha256.Sum256(wire)
	addr := fmt.Sprintf("attest|verify|v1|%s|%x|%x", fp, sum[:16], nonce)
	if body, ok := s.cache.get(addr); ok {
		writeCell(w, body, "hit")
		return
	}
	vd := s.attest.svc.Verify(wire, nonce)
	if vd.OK {
		s.met.attestAccepted.Add(1)
	} else {
		s.met.attestRejected.Add(1)
	}
	body := marshalLine(attestVerifyBody{Verdict: vd, RevocationFP: fp})
	s.cache.put(addr, body)
	writeCell(w, body, "miss")
}

// attestTCBBody is the /attest/tcb response: the per-arch revocation
// table plus the grid slice it derives from.
type attestTCBBody struct {
	RevocationFP string                `json:"revocation_fp"`
	GridCells    int                   `json:"grid_cells"`
	Statuses     []attestsvc.TCBStatus `json:"statuses"`
}

// handleAttestTCB reports the sweep-driven TCB state, computing the
// revocation grid on first use. No refresh knob: the grid is a pure
// function of the configured slice and seed, so recomputing could never
// change the answer within one process lifetime.
func (s *Server) handleAttestTCB(w http.ResponseWriter, r *http.Request) {
	if s.revocationCold() {
		release, err := s.adm.acquire(r.Context())
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
	}
	fp, err := s.ensureRevocations(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body := marshalLine(attestTCBBody{
		RevocationFP: fp,
		GridCells:    len(s.attest.keys),
		Statuses:     s.attest.svc.TCB(),
	})
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// hexParam decodes an optional hex query value ("" decodes to nil).
func hexParam(v string) ([]byte, error) {
	if v == "" {
		return nil, nil
	}
	b, err := hex.DecodeString(v)
	if err != nil {
		return nil, fmt.Errorf("%q is not valid hex", v)
	}
	return b, nil
}
