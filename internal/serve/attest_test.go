package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"testing"

	"github.com/intrust-sim/intrust/internal/attestsvc"
	"github.com/intrust-sim/intrust/internal/core"
)

// attestOpts configures a one-cell revocation grid: flush+reload on
// undefended SGX, a broken cell, so exactly one architecture revokes.
func attestOpts() Options {
	return Options{
		RevocationArchs:   []string{"sgx"},
		RevocationAttacks: []string{"flush+reload"},
		RevocationSamples: 64,
	}
}

func quoteFrom(t *testing.T, s *Server, target string) attestQuoteBody {
	t.Helper()
	rec := get(t, s, target)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s = %d %s", target, rec.Code, rec.Body.String())
	}
	var q attestQuoteBody
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatalf("%s: %v", target, err)
	}
	return q
}

func verifyQuote(t *testing.T, s *Server, wire, nonce string) attestVerifyBody {
	t.Helper()
	target := "/attest/verify?quote=" + url.QueryEscape(wire)
	if nonce != "" {
		target += "&nonce=" + nonce
	}
	rec := get(t, s, target)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s = %d %s", target, rec.Code, rec.Body.String())
	}
	var v attestVerifyBody
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestAttestRevocationFlipsVerify is the issue's end-to-end acceptance
// path: a grid with a broken none-defense cell for SGX flips
// /attest/verify for SGX's stale-TCB quote from accept (policy-free
// service) to reject, while a quote claiming the stock defense is
// accepted again — and an unrevoked architecture is untouched.
func TestAttestRevocationFlipsVerify(t *testing.T) {
	s := newTestServer(attestOpts())

	// Before the grid feeds the policy, the baseline quote verifies
	// (checked directly against the service, pre-revocation).
	staleQ := quoteFrom(t, s, "/attest/quote?arch=sgx&config=none&nonce=0a0b")
	wire, err := quoteWire.DecodeString(staleQ.Quote)
	if err != nil {
		t.Fatal(err)
	}
	if vd := s.attest.svc.Verify(wire, nil); !vd.OK {
		t.Fatalf("pre-revocation baseline verify: %+v", vd)
	}

	// /attest/verify computes the revocation grid, then rejects.
	vd := verifyQuote(t, s, staleQ.Quote, "0a0b")
	if vd.OK || vd.Code != attestsvc.VerdictTCBRevoked {
		t.Fatalf("stale-TCB quote after broken sweep cell = %+v, want tcb-revoked", vd)
	}
	if vd.MinTCB != attestsvc.TCBStock {
		t.Fatalf("MinTCB = %d, want %d", vd.MinTCB, attestsvc.TCBStock)
	}

	// A quote claiming the stock defense configuration is accepted again.
	stockQ := quoteFrom(t, s, "/attest/quote?arch=sgx&config=stock")
	if vd := verifyQuote(t, s, stockQ.Quote, ""); !vd.OK {
		t.Fatalf("stock-claiming quote rejected: %+v", vd)
	}

	// The one-cell grid revoked only SGX: sanctum's baseline still flies.
	sancQ := quoteFrom(t, s, "/attest/quote?arch=sanctum&config=none")
	if vd := verifyQuote(t, s, sancQ.Quote, ""); !vd.OK {
		t.Fatalf("unrevoked arch rejected: %+v", vd)
	}

	// /attest/tcb agrees and names the evidence.
	rec := get(t, s, "/attest/tcb")
	var tcb attestTCBBody
	if err := json.Unmarshal(rec.Body.Bytes(), &tcb); err != nil {
		t.Fatal(err)
	}
	if tcb.GridCells != 1 {
		t.Fatalf("grid cells = %d", tcb.GridCells)
	}
	for _, st := range tcb.Statuses {
		wantRevoked := st.Arch == "sgx"
		if st.Revoked != wantRevoked {
			t.Fatalf("tcb status %+v", st)
		}
		if st.Arch == "sgx" && (len(st.BrokenScenarios) != 1 || st.BrokenScenarios[0] != "flush+reload") {
			t.Fatalf("sgx evidence = %v", st.BrokenScenarios)
		}
	}

	// The serve-derived state matches an independent engine computation
	// at a different parallelism — the determinism the revocation
	// feedback loop stands on.
	rev, err := core.ComputeRevocations(context.Background(),
		[]string{"sgx"}, []string{"flush+reload"}, core.CellOptions{Samples: 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Fingerprint() != tcb.RevocationFP {
		t.Fatalf("revocation fingerprint drifted: engine %s vs serve %s", rev.Fingerprint(), tcb.RevocationFP)
	}
}

// TestAttestByteIdenticalReplay pins the cache soundness of the attest
// endpoints: quote and verify bodies are byte-identical cold vs warm,
// with the X-Cache disposition flipping miss -> hit.
func TestAttestByteIdenticalReplay(t *testing.T) {
	s := newTestServer(attestOpts())
	target := "/attest/quote?arch=trustzone&config=none&nonce=beef"
	cold := get(t, s, target)
	warm := get(t, s, target)
	if cold.Header().Get("X-Cache") != "miss" || warm.Header().Get("X-Cache") != "hit" {
		t.Fatalf("quote dispositions = %q, %q", cold.Header().Get("X-Cache"), warm.Header().Get("X-Cache"))
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("warm quote body differs from cold")
	}

	var q attestQuoteBody
	json.Unmarshal(cold.Body.Bytes(), &q)
	vt := "/attest/verify?quote=" + url.QueryEscape(q.Quote) + "&nonce=beef"
	vcold := get(t, s, vt)
	vwarm := get(t, s, vt)
	if vcold.Header().Get("X-Cache") != "miss" || vwarm.Header().Get("X-Cache") != "hit" {
		t.Fatalf("verify dispositions = %q, %q", vcold.Header().Get("X-Cache"), vwarm.Header().Get("X-Cache"))
	}
	if !bytes.Equal(vcold.Body.Bytes(), vwarm.Body.Bytes()) {
		t.Fatal("warm verify body differs from cold")
	}
}

// TestAttestVerifyRejectsGarbage pins the error surface: malformed
// base64 and malformed wire bytes are client errors or clean rejections,
// never 500s.
func TestAttestVerifyRejectsGarbage(t *testing.T) {
	s := newTestServer(attestOpts())
	if rec := get(t, s, "/attest/verify?quote=%2Bnot-base64%2B"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad base64 = %d", rec.Code)
	}
	if rec := get(t, s, "/attest/verify"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing quote = %d", rec.Code)
	}
	// Valid base64, garbage wire: 200 with a bad-encoding verdict.
	vd := verifyQuote(t, s, quoteWire.EncodeToString([]byte("junk")), "")
	if vd.OK || vd.Code != attestsvc.VerdictBadEncoding {
		t.Fatalf("garbage wire = %+v", vd)
	}
	if rec := get(t, s, "/attest/quote?arch=nope"); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown arch quote = %d", rec.Code)
	}
	if rec := get(t, s, "/attest/quote?arch=sgx&config=weird"); rec.Code != http.StatusBadRequest {
		t.Fatalf("non-canonical config = %d", rec.Code)
	}
}

// TestAttestMetricsMove pins the attestation counters into the /metrics
// exposition.
func TestAttestMetricsMove(t *testing.T) {
	s := newTestServer(attestOpts())
	q := quoteFrom(t, s, "/attest/quote?arch=sgx&config=none")
	verifyQuote(t, s, q.Quote, "") // rejected: revoked
	stock := quoteFrom(t, s, "/attest/quote?arch=sgx&config=stock")
	verifyQuote(t, s, stock.Quote, "") // accepted
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"intrust_attest_quotes_total 2",
		`intrust_attest_verifies_total{result="accepted"} 1`,
		`intrust_attest_verifies_total{result="rejected"} 1`,
		"intrust_attest_revoked_archs 1",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
