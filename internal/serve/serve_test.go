package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/perf"
	"github.com/intrust-sim/intrust/internal/stats"
)

// raceDetectorEnabled is set by race_test.go under `go test -race`.
var raceDetectorEnabled bool

func newTestServer(opts Options) *Server {
	if opts.BenchConfigs == nil {
		// Never let a test accidentally run the full canonical bench.
		opts.BenchConfigs = []perf.Config{{
			Name: "tiny", Archs: []string{"sgx"}, Attacks: []string{"spectre-v1"},
			Defenses: []string{"none"}, Samples: 8,
		}}
	}
	s, err := New(opts)
	if err != nil {
		panic("newTestServer: " + err.Error())
	}
	return s
}

// get performs one in-process GET against the handler stack (through
// instrument, so codes and headers are exactly what a client sees).
func get(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	s := newTestServer(Options{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(Options{})
	for _, target := range []string{"/cell", "/sweep", "/metrics"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, strings.NewReader("{}")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", target, rec.Code)
		}
		if rec.Header().Get("Allow") != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want GET", target, rec.Header().Get("Allow"))
		}
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("POST %s body %q is not a structured error", target, rec.Body.String())
		}
	}
}

// TestCellColdWarm pins the cache contract end to end: the warm
// response is byte-identical to the cold one (X-Cache flipping
// miss -> hit is the only difference a client can observe), and every
// accepted spelling of the URL lands on the same entry.
func TestCellColdWarm(t *testing.T) {
	s := newTestServer(Options{})
	const target = "/cell?scenario=flush%2Breload&arch=sgx&defense=none&samples=64"
	cold := get(t, s, target)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold = %d %s", cold.Code, cold.Body.String())
	}
	if h := cold.Header().Get("X-Cache"); h != "miss" {
		t.Fatalf("cold X-Cache = %q, want miss", h)
	}
	warm := get(t, s, target)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm = %d %s", warm.Code, warm.Body.String())
	}
	if h := warm.Header().Get("X-Cache"); h != "hit" {
		t.Fatalf("warm X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatalf("warm body differs from cold:\ncold: %s\nwarm: %s", cold.Body.String(), warm.Body.String())
	}
	// Alternate spellings of the same cell: literal '+' (query parsing
	// decodes it as a space), mixed case, permuted combos — all hits on
	// the one entry the cold request populated.
	for _, alt := range []string{
		"/cell?scenario=flush+reload&arch=sgx&defense=none&samples=64",
		"/cell?scenario=Flush%2BReload&arch=SGX&defense=None&samples=64",
	} {
		rec := get(t, s, alt)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
			t.Errorf("%s = %d X-Cache=%q, want a 200 hit", alt, rec.Code, rec.Header().Get("X-Cache"))
		}
		if !bytes.Equal(rec.Body.Bytes(), cold.Body.Bytes()) {
			t.Errorf("%s body differs from canonical spelling", alt)
		}
	}
	var c Cell
	if err := json.Unmarshal(cold.Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	if c.Scenario != "flush+reload" || c.Arch != "sgx" || c.Defense != "none" {
		t.Errorf("cell coordinates = %q/%q/%q", c.Scenario, c.Arch, c.Defense)
	}
	if c.Class == "" || c.Verdict == "" {
		t.Errorf("cell verdict empty: %+v", c)
	}
	if dec, err := core.DecodeCellKey(c.Key); err != nil || dec.Scenario != "flush+reload" {
		t.Errorf("cell key %q does not decode to its own coordinates (%v)", c.Key, err)
	}
}

func TestCellSeedAddressesDistinctEntries(t *testing.T) {
	s := newTestServer(Options{})
	a := get(t, s, "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=32")
	b := get(t, s, "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=32&seed=7")
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("codes %d/%d", a.Code, b.Code)
	}
	if b.Header().Get("X-Cache") != "miss" {
		t.Errorf("different seed served from the same cache entry")
	}
	var ca, cb Cell
	json.Unmarshal(a.Body.Bytes(), &ca)
	json.Unmarshal(b.Body.Bytes(), &cb)
	if ca.Key == cb.Key {
		t.Errorf("seed 0 and seed 7 share key %q", ca.Key)
	}
}

// TestCellBadRequest pins the malformed-input contract: every bad axis
// or knob value is a structured 400 carrying a usable message — never a
// 500, never an empty body.
func TestCellBadRequest(t *testing.T) {
	s := newTestServer(Options{})
	cases := []struct{ name, target string }{
		{"unknown scenario", "/cell?scenario=rowhammer&arch=sgx"},
		{"family token", "/cell?scenario=transient&arch=sgx"},
		{"all scenarios", "/cell?scenario=all&arch=sgx"},
		{"missing scenario", "/cell?arch=sgx"},
		{"unknown arch", "/cell?scenario=dpa&arch=riscv"},
		{"all archs", "/cell?scenario=dpa&arch=all"},
		{"missing arch", "/cell?scenario=dpa"},
		{"unknown defense", "/cell?scenario=dpa&arch=sgx&defense=moat"},
		{"defense family", "/cell?scenario=dpa&arch=sgx&defense=all"},
		{"bad samples", "/cell?scenario=dpa&arch=sgx&samples=many"},
		{"bad confidence", "/cell?scenario=dpa&arch=sgx&confidence=high"},
		{"low confidence", "/cell?scenario=dpa&arch=sgx&confidence=0.3"},
		{"confidence one", "/cell?scenario=dpa&arch=sgx&confidence=1"},
		{"nan confidence", "/cell?scenario=dpa&arch=sgx&confidence=NaN"},
		{"inf confidence", "/cell?scenario=dpa&arch=sgx&confidence=%2BInf"},
		{"bad maxsamples", "/cell?scenario=dpa&arch=sgx&maxsamples=1e3"},
		{"bad seed", "/cell?scenario=dpa&arch=sgx&seed=0x10"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, s, tc.target)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("%s = %d %s, want 400", tc.target, rec.Code, rec.Body.String())
			}
			var e apiError
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("%s body %q is not a structured error", tc.target, rec.Body.String())
			}
		})
	}
	for _, tc := range []string{
		"/sweep?attack=nothing",
		"/sweep?arch=riscv",
		"/sweep?defense=moat",
		"/sweep?samples=many",
		"/sweep?confidence=0.2",
	} {
		rec := get(t, s, tc)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", tc, rec.Code)
		}
	}
}

// TestCellMatchesGoldenGrid samples the checked-in golden grid fixture
// and asserts /cell reproduces each sampled cell's class through the
// HTTP surface — the service returns the paper's table, not a variant
// of it.
func TestCellMatchesGoldenGrid(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden_grid.tsv"))
	if err != nil {
		t.Fatalf("golden grid fixture: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	stride := 37
	if raceDetectorEnabled || testing.Short() {
		stride = 149
	}
	s := newTestServer(Options{})
	checked := 0
	for i := 0; i < len(lines); i += stride {
		f := strings.Split(lines[i], "\t")
		if len(f) != 4 {
			t.Fatalf("malformed golden line %q", lines[i])
		}
		scen, arch, def, class := f[0], f[1], f[2], f[3]
		target := "/cell?samples=96&scenario=" + strings.ReplaceAll(scen, "+", "%2B") +
			"&arch=" + arch + "&defense=" + strings.ReplaceAll(def, "+", "%2B")
		rec := get(t, s, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d %s", target, rec.Code, rec.Body.String())
		}
		var c Cell
		if err := json.Unmarshal(rec.Body.Bytes(), &c); err != nil {
			t.Fatal(err)
		}
		if c.Class != class {
			t.Errorf("%s/%s/%s: /cell class %q, golden %q", scen, arch, def, c.Class, class)
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d golden cells sampled", checked)
	}
}

// decodeSweep splits an NDJSON sweep stream into its cell lines and the
// trailing summary, failing the test on any malformed or error line.
func decodeSweep(t *testing.T, body []byte) ([]string, []Cell, SweepSummary) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty sweep stream")
	}
	var sum SweepSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil || sum.Cells == 0 {
		t.Fatalf("last line %q is not a summary (%v)", lines[len(lines)-1], err)
	}
	cellLines := lines[:len(lines)-1]
	cells := make([]Cell, len(cellLines))
	for i, ln := range cellLines {
		var e apiError
		if json.Unmarshal([]byte(ln), &e) == nil && e.Error != "" {
			t.Fatalf("stream carries error line: %s", e.Error)
		}
		if err := json.Unmarshal([]byte(ln), &cells[i]); err != nil {
			t.Fatalf("cell line %q: %v", ln, err)
		}
	}
	return cellLines, cells, sum
}

// TestSweepStreamMatchesCLI is the cross-surface verdict equivalence
// guard at the grid level: the NDJSON stream must carry exactly the
// cells the CLI sweep enumerates, in order, with identical verdicts —
// and a second pass must be all cache hits with byte-identical lines.
func TestSweepStreamMatchesCLI(t *testing.T) {
	s := newTestServer(Options{})
	const target = "/sweep?attack=cachesca&arch=sgx,trustzone&defense=none,stock&samples=48"
	rec := get(t, s, target)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	coldLines, cells, sum := decodeSweep(t, rec.Body.Bytes())

	exps, err := core.SweepExperimentsWith(
		[]string{"sgx", "trustzone"}, []string{"cachesca"}, []string{"none", "stock"},
		core.SweepOptions{Samples: 48, Adaptive: &stats.Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(0).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(results) {
		t.Fatalf("stream carries %d cells, CLI sweep %d", len(cells), len(results))
	}
	if sum.Cells != len(results) || sum.CacheMisses != len(results) || sum.CacheHits != 0 {
		t.Errorf("cold summary %+v, want %d cells all misses", sum, len(results))
	}
	for i := range cells {
		r := &results[i]
		if cells[i].Verdict != r.Verdict || cells[i].Detail != r.Detail {
			t.Errorf("cell %d (%s): stream verdict %q/%q, CLI %q/%q",
				i, r.Name, cells[i].Verdict, cells[i].Detail, r.Verdict, r.Detail)
		}
		if !strings.Contains(r.Name, "/"+cells[i].Scenario+"/") {
			t.Errorf("cell %d order mismatch: stream %s, CLI %s", i, cells[i].Scenario, r.Name)
		}
	}

	warm := get(t, s, target)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm sweep = %d", warm.Code)
	}
	warmLines, _, warmSum := decodeSweep(t, warm.Body.Bytes())
	if warmSum.CacheHits != len(cells) || warmSum.CacheMisses != 0 {
		t.Errorf("warm summary %+v, want all %d hits", warmSum, len(cells))
	}
	for i := range coldLines {
		if coldLines[i] != warmLines[i] {
			t.Fatalf("warm cell line %d differs from cold:\ncold: %s\nwarm: %s", i, coldLines[i], warmLines[i])
		}
	}
}

// TestSweepFullGridMatchesCLI replays the entire default grid (every
// scenario, every architecture, none+stock) through the stream. Skipped
// in -short and race runs; the small-grid equivalence above covers the
// wiring there.
func TestSweepFullGridMatchesCLI(t *testing.T) {
	if testing.Short() || raceDetectorEnabled {
		t.Skip("full 320-cell grid replay skipped in short/race mode")
	}
	s := newTestServer(Options{})
	rec := get(t, s, "/sweep?defense=none,stock&samples=64")
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d", rec.Code)
	}
	_, cells, sum := decodeSweep(t, rec.Body.Bytes())
	exps, err := core.SweepExperimentsWith(nil, nil, []string{"none", "stock"},
		core.SweepOptions{Samples: 64, Adaptive: &stats.Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(0).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(results) || sum.Cells != len(results) {
		t.Fatalf("stream %d cells, CLI %d", len(cells), len(results))
	}
	for i := range cells {
		if cells[i].Verdict != results[i].Verdict {
			t.Errorf("cell %d (%s): stream %q, CLI %q", i, results[i].Name, cells[i].Verdict, results[i].Verdict)
		}
	}
}

func TestCatalogs(t *testing.T) {
	s := newTestServer(Options{})
	var attacks []attackEntry
	rec := get(t, s, "/attacks")
	if rec.Code != http.StatusOK {
		t.Fatalf("/attacks = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &attacks); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range attacks {
		names[a.Name] = true
		if len(a.Applicable) == 0 {
			t.Errorf("attack %s applicable to nothing", a.Name)
		}
	}
	if len(attacks) < 16 || !names["flush+reload"] || !names["dpa"] {
		t.Errorf("attack catalog incomplete: %d entries", len(attacks))
	}
	var defenses []defenseEntry
	rec = get(t, s, "/defenses")
	if rec.Code != http.StatusOK {
		t.Fatalf("/defenses = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &defenses); err != nil {
		t.Fatal(err)
	}
	if len(defenses) < 10 {
		t.Errorf("defense catalog incomplete: %d entries", len(defenses))
	}
}

func TestBenchEndpoint(t *testing.T) {
	s := newTestServer(Options{})
	cold := get(t, s, "/bench")
	if cold.Code != http.StatusOK {
		t.Fatalf("/bench = %d %s", cold.Code, cold.Body.String())
	}
	if cold.Header().Get("X-Cache") != "miss" {
		t.Errorf("cold /bench X-Cache = %q", cold.Header().Get("X-Cache"))
	}
	var rep perf.Report
	if err := json.Unmarshal(cold.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 1 || rep.Configs[0].Cells == 0 {
		t.Errorf("bench report %+v lacks the tiny config's cells", rep)
	}
	warm := get(t, s, "/bench")
	if warm.Header().Get("X-Cache") != "hit" || !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Errorf("warm /bench not served from memory")
	}
}

// TestMetricsEndpoint drives known traffic and checks the counters it
// must have moved, plus the exposition families the scrape contract
// names.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(Options{})
	get(t, s, "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=32") // miss
	get(t, s, "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=32") // hit
	get(t, s, "/cell?scenario=bogus&arch=sgx")                              // 400
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"intrust_cache_hits_total 1",
		"intrust_cache_misses_total 1",
		"intrust_cache_entries 1",
		"intrust_cells_computed_total 1",
		`intrust_requests_total{endpoint="/cell",code="200"} 2`,
		`intrust_requests_total{endpoint="/cell",code="400"} 1`,
		"intrust_request_seconds_bucket",
		"intrust_inflight_requests 0",
		"intrust_queue_waiting 0",
		"intrust_rejected_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestDrainingRefusesRequests(t *testing.T) {
	s := newTestServer(Options{})
	s.BeginDrain()
	for _, target := range []string{"/healthz", "/cell?scenario=dpa&arch=sgx"} {
		rec := get(t, s, target)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("draining %s = %d, want 503", target, rec.Code)
		}
	}
}
