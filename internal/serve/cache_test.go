package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/core"
)

// TestFlightPanicRecovers is the singleflight regression test: a
// panicking leader must not wedge the key. Before the fix, the leader's
// unwind skipped the map delete and the done close, so every follower
// (and every later request for the key) blocked forever. Now the panic
// converts to a shared error, followers unblock, and the very next
// flight for the key runs fresh.
func TestFlightPanicRecovers(t *testing.T) {
	g := newFlightGroup()
	leaderIn := make(chan struct{})
	followersReady := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // absorb nothing: do must not re-panic
		_, err, shared := g.do("k", func() ([]byte, error) {
			close(leaderIn)
			<-followersReady
			panic("boom in leader")
		})
		if shared {
			t.Error("leader reported shared")
		}
		if err == nil || !strings.Contains(err.Error(), "boom in leader") {
			t.Errorf("leader err = %v; want the panic converted to an error", err)
		}
	}()

	<-leaderIn
	const followers = 4
	ferrs := make(chan error, followers)
	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go func() {
			defer wg.Done()
			_, err, shared := g.do("k", func() ([]byte, error) {
				return nil, fmt.Errorf("follower ran fn")
			})
			if !shared {
				ferrs <- fmt.Errorf("follower was not shared")
				return
			}
			ferrs <- err
		}()
	}
	// Give the followers a beat to park on the flight, then let the
	// leader panic.
	time.Sleep(50 * time.Millisecond)
	close(followersReady)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("flight wedged: goroutines still blocked 10s after the leader panicked")
	}
	close(ferrs)
	for err := range ferrs {
		if err == nil || !strings.Contains(err.Error(), "boom in leader") {
			t.Errorf("follower err = %v; want the leader's panic error", err)
		}
	}

	// The key recovered: a fresh flight runs its own fn.
	body, err, shared := g.do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || shared || string(body) != "ok" {
		t.Fatalf("post-panic flight = %q, %v, shared=%v; want fresh ok", body, err, shared)
	}
	if len(g.calls) != 0 {
		t.Errorf("flight map retains %d entries after all flights finished", len(g.calls))
	}
}

// TestFlightPanicEndToEnd drives a compute panic through the full
// handler stack via the compute-stall seam: the request gets a
// structured 500 (never a hang, never a crash), and the same cell
// computes cleanly on retry.
func TestFlightPanicEndToEnd(t *testing.T) {
	s := newTestServer(Options{})
	panicked := false
	testComputeStall = func(core.CellKey) {
		if !panicked {
			panicked = true
			panic("injected compute panic")
		}
	}
	defer func() { testComputeStall = nil }()

	const target = "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=16"
	rec := get(t, s, target)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking compute = %d %s; want 500", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "injected compute panic") {
		t.Errorf("500 body %q does not carry the panic message", rec.Body.String())
	}

	// The key recovered: the retry computes and caches normally.
	rec = get(t, s, target)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("retry = %d X-Cache=%q; want 200 miss", rec.Code, rec.Header().Get("X-Cache"))
	}
	if rec := get(t, s, target); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("post-retry = X-Cache=%q; want hit", rec.Header().Get("X-Cache"))
	}
}

// TestCellCacheByteBound exercises the byte dimension of the LRU bound:
// with a generous entry bound and a tight byte budget, resident bytes —
// not entry count — drive eviction.
func TestCellCacheByteBound(t *testing.T) {
	c := newCellCache(1000, 1024)
	body := make([]byte, 400)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("key-%02d", i), body)
	}
	entries, bytes := c.size()
	if bytes > 1024 {
		t.Errorf("resident bytes %d exceed the 1024 budget", bytes)
	}
	// 400+6 bytes per entry under a 1 KiB budget: exactly 2 fit.
	if entries != 2 {
		t.Errorf("entries = %d; want 2 under the byte budget", entries)
	}
	if got := c.evictions.Load(); got != 8 {
		t.Errorf("evictions = %d; want 8", got)
	}
	// MRU entries survive, the tail went first.
	if _, ok := c.lookup("key-09"); !ok {
		t.Error("most recent entry was evicted")
	}
	if _, ok := c.lookup("key-00"); ok {
		t.Error("oldest entry survived a byte-driven eviction")
	}
}

// TestCellCacheOverBudgetBody: a single body larger than the whole byte
// budget still caches (evicting the rest), and accounting stays exact
// when it is later shed.
func TestCellCacheOverBudgetBody(t *testing.T) {
	c := newCellCache(1000, 1024)
	c.put("small", make([]byte, 100))
	c.put("huge", make([]byte, 4096))
	if _, ok := c.lookup("huge"); !ok {
		t.Fatal("over-budget body was not cached")
	}
	if _, ok := c.lookup("small"); ok {
		t.Error("small entry survived the over-budget put")
	}
	// The next put sheds the over-budget body and accounting returns to
	// the small steady state.
	c.put("next", make([]byte, 100))
	if _, ok := c.lookup("huge"); ok {
		t.Error("over-budget body survived the next put")
	}
	entries, bytes := c.size()
	if entries != 1 || bytes != int64(len("next")+100) {
		t.Errorf("after shed: %d entries, %d bytes; want 1 entry, %d bytes", entries, bytes, len("next")+100)
	}
}

// TestCellCacheEntryBoundStillHolds: the pre-existing entry dimension
// keeps working alongside the byte budget.
func TestCellCacheEntryBoundStillHolds(t *testing.T) {
	c := newCellCache(3, 1<<20)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte("b"))
	}
	if entries, _ := c.size(); entries != 3 {
		t.Errorf("entries = %d; want 3 under the entry bound", entries)
	}
}
