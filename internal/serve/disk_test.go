package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// diskTarget is the cheap fixed-budget cell the disk-tier tests
// revolve around.
const diskTarget = "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=64&confidence=0"

// diskOpts builds server options sharing one persistent tier.
func diskOpts(dir string) Options {
	return Options{CacheDir: dir, CacheSecret: "test-secret"}
}

// metricsBody scrapes /metrics as text.
func metricsBody(t *testing.T, s *Server) string {
	t.Helper()
	return get(t, s, "/metrics").Body.String()
}

func mustContain(t *testing.T, metrics string, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if !strings.Contains(metrics, l) {
			t.Errorf("/metrics missing %q:\n%s", l, metrics)
		}
	}
}

// TestRestartWarmDisk is the persistent tier's acceptance criterion: a
// fresh server pointed at a populated cache directory must answer the
// cell byte-identically to the cold compute with ZERO engine work —
// computed stays 0, the disk hit is accounted, and the response is
// marked as served from disk.
func TestRestartWarmDisk(t *testing.T) {
	dir := t.TempDir()

	a := newTestServer(diskOpts(dir))
	cold := get(t, a, diskTarget)
	if cold.Code != http.StatusOK || cold.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold = %d X-Cache=%q", cold.Code, cold.Header().Get("X-Cache"))
	}
	mustContain(t, metricsBody(t, a),
		"intrust_cells_computed_total 1",
		"intrust_disk_writes_total 1")

	// A new Server over the same directory is the restart: its LRU is
	// empty, only the disk tier carries state across.
	b := newTestServer(diskOpts(dir))
	warm := get(t, b, diskTarget)
	if warm.Code != http.StatusOK || warm.Header().Get("X-Cache") != "disk" {
		t.Fatalf("restart-warm = %d X-Cache=%q", warm.Code, warm.Header().Get("X-Cache"))
	}
	if cold.Body.String() != warm.Body.String() {
		t.Errorf("restart-warm body differs from cold compute:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}
	mustContain(t, metricsBody(t, b),
		"intrust_cells_computed_total 0",
		"intrust_disk_hits_total 1")

	// The disk hit promoted into the LRU: the next request is a memory
	// hit and touches the disk not at all.
	again := get(t, b, diskTarget)
	if again.Header().Get("X-Cache") != "hit" {
		t.Fatalf("post-promotion = X-Cache=%q, want hit", again.Header().Get("X-Cache"))
	}
	if again.Body.String() != cold.Body.String() {
		t.Error("promoted body differs from cold compute")
	}
}

// tamperEntries mutates every committed cache file under dir.
func tamperEntries(t *testing.T, dir string, mutate func([]byte) []byte) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.cell"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache entries under %s (err %v)", dir, err)
	}
	for _, f := range files {
		env, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, mutate(env), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(files)
}

// TestTamperedDiskEntryIsMissNever500: every flavor of on-disk
// corruption must read as a miss — the cell recomputes (byte-identical
// to the original, as determinism guarantees), the bad file is
// quarantined, and the client never sees a 500 or a tampered body.
func TestTamperedDiskEntryIsMissNever500(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped-body-byte", func(e []byte) []byte { e[len(e)/2] ^= 0x01; return e }},
		{"truncated", func(e []byte) []byte { return e[:len(e)/3] }},
		{"trailing-byte", func(e []byte) []byte { return append(e, 'x') }},
		{"emptied", func(e []byte) []byte { return nil }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			a := newTestServer(diskOpts(dir))
			cold := get(t, a, diskTarget)
			if cold.Code != http.StatusOK {
				t.Fatalf("cold = %d", cold.Code)
			}
			tamperEntries(t, dir, tc.mutate)

			b := newTestServer(diskOpts(dir))
			rec := get(t, b, diskTarget)
			if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
				t.Fatalf("tampered read = %d X-Cache=%q; want 200 miss", rec.Code, rec.Header().Get("X-Cache"))
			}
			if rec.Body.String() != cold.Body.String() {
				t.Error("recomputed body differs from the original cold compute")
			}
			mustContain(t, metricsBody(t, b),
				"intrust_disk_rejects_total 1",
				"intrust_cells_computed_total 1")
			bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
			if len(bad) == 0 {
				t.Error("tampered file was not quarantined")
			}
		})
	}
}

// TestWrongSecretIsMiss: a directory written under another secret must
// not serve — poisoning a differently-keyed store buys nothing.
func TestWrongSecretIsMiss(t *testing.T) {
	dir := t.TempDir()
	a := newTestServer(Options{CacheDir: dir, CacheSecret: "alpha"})
	cold := get(t, a, diskTarget)

	b := newTestServer(Options{CacheDir: dir, CacheSecret: "beta"})
	rec := get(t, b, diskTarget)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cross-secret read = %d X-Cache=%q; want 200 miss", rec.Code, rec.Header().Get("X-Cache"))
	}
	if rec.Body.String() != cold.Body.String() {
		t.Error("recomputed body differs across secrets (determinism broken)")
	}
	mustContain(t, metricsBody(t, b), "intrust_disk_rejects_total 1")
}

// TestSweepServesFromDisk: the NDJSON grid path reads through the
// persistent tier too — a restarted server streams a warm selection
// with zero engine work.
func TestSweepServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	const sweepTarget = "/sweep?attack=transient&arch=sgx&defense=none&samples=32&confidence=0"
	a := newTestServer(diskOpts(dir))
	cold := get(t, a, sweepTarget)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold sweep = %d", cold.Code)
	}

	b := newTestServer(diskOpts(dir))
	warm := get(t, b, sweepTarget)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm sweep = %d", warm.Code)
	}
	// The final NDJSON line is the summary, whose hit/miss split
	// legitimately differs between the runs; every cell line must match
	// byte for byte.
	cells := func(stream string) string {
		lines := strings.Split(strings.TrimRight(stream, "\n"), "\n")
		return strings.Join(lines[:len(lines)-1], "\n")
	}
	if cells(warm.Body.String()) != cells(cold.Body.String()) {
		t.Errorf("restart-warm sweep cells differ:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}
	if !strings.Contains(warm.Body.String(), `"cache_hits":5`) {
		t.Errorf("warm sweep summary did not count 5 hits: %s", warm.Body)
	}
	mustContain(t, metricsBody(t, b), "intrust_cells_computed_total 0")
}

// TestWarmUp: warm-up computes a cold slice into both tiers, and a
// restarted server's warm-up loads the same slice purely from disk —
// after which default-option /cell requests are memory hits.
func TestWarmUp(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	a := newTestServer(diskOpts(dir))
	loaded, computed, err := a.warmUp(ctx, []string{"sgx"}, []string{"transient"}, []string{"none"})
	if err != nil {
		t.Fatalf("warmUp: %v", err)
	}
	if loaded != 0 || computed != 5 {
		t.Fatalf("first warm-up = %d loaded, %d computed; want 0/5", loaded, computed)
	}

	b := newTestServer(diskOpts(dir))
	loaded, computed, err = b.warmUp(ctx, []string{"sgx"}, []string{"transient"}, []string{"none"})
	if err != nil {
		t.Fatalf("restart warmUp: %v", err)
	}
	if loaded != 5 || computed != 0 {
		t.Fatalf("restart warm-up = %d loaded, %d computed; want 5/0", loaded, computed)
	}
	// Warmed cells answer default-option requests from memory.
	rec := get(t, b, "/cell?scenario=spectre-v1&arch=sgx&defense=none")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("post-warm-up cell = %d X-Cache=%q; want 200 hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	mustContain(t, metricsBody(t, b), "intrust_cells_computed_total 0")

	// Re-warming an already-warm server is a no-op on both counters.
	loaded, computed, err = b.warmUp(ctx, []string{"sgx"}, []string{"transient"}, []string{"none"})
	if err != nil || loaded != 0 || computed != 0 {
		t.Fatalf("idempotent warm-up = %d/%d (%v); want 0/0", loaded, computed, err)
	}
}

// TestDisklessServerUnchanged: with no CacheDir the server must behave
// exactly as before — no disk metrics, miss -> compute -> hit.
func TestDisklessServerUnchanged(t *testing.T) {
	s := newTestServer(Options{})
	if got := get(t, s, diskTarget).Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("cold = %q", got)
	}
	if got := get(t, s, diskTarget).Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("warm = %q", got)
	}
	if m := metricsBody(t, s); strings.Contains(m, "intrust_disk_") {
		t.Errorf("diskless /metrics exposes disk counters:\n%s", m)
	}
}
