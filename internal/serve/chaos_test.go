package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/fault"
)

// chaosSeed fixes every chaos schedule in this file: the same seed CI
// runs, so a failure here replays bit-identically on a laptop.
const chaosSeed = 42

// cellTargets is the small grid slice the chaos tests hammer; tiny
// budgets keep each cold compute in the low milliseconds.
var cellTargets = []string{
	"/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=16",
	"/cell?scenario=meltdown&arch=sgx&defense=none&samples=16",
	"/cell?scenario=flush%2Breload&arch=sgx&defense=none&samples=16",
}

// expectedBodies computes each cellTargets body on a pristine server
// (no faults): the byte-identical ground truth faults must never bend.
func expectedBodies(t *testing.T) map[string]string {
	t.Helper()
	clean := newTestServer(Options{})
	want := make(map[string]string, len(cellTargets))
	for _, target := range cellTargets {
		rec := get(t, clean, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("pristine %s = %d %s", target, rec.Code, rec.Body.String())
		}
		want[target] = rec.Body.String()
	}
	return want
}

// TestChaosDiskFaults drives every disk fault point (read IO errors,
// write IO errors, at-rest corruption) under concurrent load and pins
// the degradation contract: injected disk faults never surface as a
// 5xx, never bend a served body away from the pristine ground truth,
// never leak an admission slot, and once the faults clear the server
// still answers byte-identically.
func TestChaosDiskFaults(t *testing.T) {
	want := expectedBodies(t)
	baseline := runtime.NumGoroutine()

	plane := fault.New(chaosSeed)
	plane.Arm(diskcache.FaultRead, fault.Spec{Prob: 0.5})
	plane.Arm(diskcache.FaultWrite, fault.Spec{Prob: 0.5})
	plane.Arm(diskcache.FaultCorrupt, fault.Spec{Prob: 0.5})
	s := newTestServer(Options{
		CacheDir:         t.TempDir(),
		CacheEntries:     2, // small LRU forces repeated disk reads
		Faults:           plane,
		DiskRetryBase:    time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Millisecond,
	})

	var wg sync.WaitGroup
	var badCode atomic503
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				for _, target := range cellTargets {
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
					if rec.Code >= 500 {
						badCode.set(target, rec.Code, rec.Body.String())
					} else if rec.Code == http.StatusOK && rec.Body.String() != want[target] {
						badCode.set(target, rec.Code, "body diverged under disk faults")
					}
				}
			}
		}()
	}
	wg.Wait()
	if msg := badCode.get(); msg != "" {
		t.Fatal(msg)
	}
	if n := s.adm.inFlight.Load(); n != 0 {
		t.Fatalf("in-flight gauge = %d after chaos, want 0 (leaked slot)", n)
	}
	if n := s.adm.waiting.Load(); n != 0 {
		t.Fatalf("queue gauge = %d after chaos, want 0", n)
	}

	// Faults clear: every body must still be the pristine bytes.
	plane.Reset()
	for _, target := range cellTargets {
		rec := get(t, s, target)
		if rec.Code != http.StatusOK || rec.Body.String() != want[target] {
			t.Fatalf("after faults cleared %s = %d, body diverged: %s", target, rec.Code, rec.Body.String())
		}
	}
	waitFor(t, "chaos goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}

// atomic503 records the first bad response seen across hammer
// goroutines (t.Fatalf must not be called off the test goroutine).
type atomic503 struct {
	mu  sync.Mutex
	msg string
}

func (a *atomic503) set(target string, code int, body string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.msg == "" {
		a.msg = target + " = " + http.StatusText(code) + ": " + body
	}
}

func (a *atomic503) get() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.msg
}

// readyz fetches and decodes /readyz.
func readyz(t *testing.T, s *Server) (int, readiness) {
	t.Helper()
	rec := get(t, s, "/readyz")
	var body readiness
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/readyz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, body
}

// TestChaosBreakerLifecycle walks the breaker through its whole state
// machine with a deterministic clock: persistent write failures open
// it (readyz flips healthy -> degraded while /cell keeps answering
// from memory), the cooldown admits a half-open probe, and a healthy
// disk closes it again (degraded -> healthy).
func TestChaosBreakerLifecycle(t *testing.T) {
	plane := fault.New(chaosSeed)
	plane.Arm(diskcache.FaultWrite, fault.Spec{Prob: 1})
	s := newTestServer(Options{
		CacheDir:         t.TempDir(),
		Faults:           plane,
		DiskRetries:      -1, // no backoff retries: each Put is one failure
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	clock := time.Unix(1000, 0)
	s.brk.now = func() time.Time { return clock }

	if code, body := readyz(t, s); code != http.StatusOK || body.Status != "healthy" || body.Disk != "closed" {
		t.Fatalf("fresh /readyz = %d %+v, want 200 healthy/closed", code, body)
	}

	// Two cold cells -> two failed write-behinds -> breaker opens.
	for _, target := range cellTargets[:2] {
		if rec := get(t, s, target); rec.Code != http.StatusOK {
			t.Fatalf("%s under write faults = %d %s, want 200 (write-behind is best-effort)", target, rec.Code, rec.Body.String())
		}
	}
	if code, body := readyz(t, s); code != http.StatusOK || body.Status != "degraded" || body.Disk != "open" {
		t.Fatalf("/readyz after breaker opened = %d %+v, want 200 degraded/open", code, body)
	}
	if s.brk.opens.Load() != 1 {
		t.Fatalf("breaker opens = %d, want 1", s.brk.opens.Load())
	}

	// While open the disk is bypassed: a cold cell still answers 200
	// and the bypass counter moves instead of the disk.
	before := s.met.diskBypassed.Load()
	if rec := get(t, s, cellTargets[2]); rec.Code != http.StatusOK {
		t.Fatalf("%s while breaker open = %d, want 200 (memory-only degraded mode)", cellTargets[2], rec.Code)
	}
	if s.met.diskBypassed.Load() <= before {
		t.Fatal("open breaker did not bypass the disk tier")
	}

	// Disk heals, cooldown elapses: the next disk operation is the
	// half-open probe, and its success closes the breaker.
	plane.Reset()
	clock = clock.Add(2 * time.Minute)
	s.cache = newCellCache(2, 0) // drop the memory tier so the next hit goes cold
	if rec := get(t, s, cellTargets[0]); rec.Code != http.StatusOK {
		t.Fatalf("probe request = %d, want 200", rec.Code)
	}
	if code, body := readyz(t, s); code != http.StatusOK || body.Status != "healthy" || body.Disk != "closed" {
		t.Fatalf("/readyz after recovery = %d %+v, want 200 healthy/closed", code, body)
	}
}

// TestChaosEnginePanic pins panic confinement end to end: an injected
// panic inside a job's compute surfaces as one structured 500 — not a
// crashed process, not a wedged flight — and the very next request for
// the same cell computes cleanly once the fault budget is spent.
func TestChaosEnginePanic(t *testing.T) {
	want := expectedBodies(t)
	plane := fault.New(chaosSeed)
	plane.Arm(engine.FaultPanic, fault.Spec{Prob: 1, Limit: 1})
	s := newTestServer(Options{Faults: plane})

	rec := get(t, s, cellTargets[0])
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("cell under engine panic = %d %s, want 500", rec.Code, rec.Body.String())
	}
	var e apiError
	if json.Unmarshal(rec.Body.Bytes(), &e) != nil || e.Error == "" {
		t.Fatalf("panic 500 body %q is not a structured error", rec.Body.String())
	}

	rec = get(t, s, cellTargets[0])
	if rec.Code != http.StatusOK || rec.Body.String() != want[cellTargets[0]] {
		t.Fatalf("retry after panic budget spent = %d, body diverged: %s", rec.Code, rec.Body.String())
	}
}

// TestComputeDeadline pins the deadline contract: a compute stalled
// far past Options.ComputeDeadline answers a structured 503 about the
// deadline — it does not hang the handler for the stall's duration.
func TestComputeDeadline(t *testing.T) {
	plane := fault.New(chaosSeed)
	plane.Arm(engine.FaultStall, fault.Spec{Prob: 1, Delay: time.Minute})
	s := newTestServer(Options{Faults: plane, ComputeDeadline: 100 * time.Millisecond})

	start := time.Now()
	rec := get(t, s, cellTargets[0])
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline did not interrupt the stall (took %v)", elapsed)
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stalled cell = %d %s, want 503", rec.Code, rec.Body.String())
	}
	var e apiError
	if json.Unmarshal(rec.Body.Bytes(), &e) != nil || !strings.Contains(e.Error, "deadline") {
		t.Fatalf("deadline 503 body %q does not name the deadline", rec.Body.String())
	}
	if s.met.deadlineRejects.Load() == 0 {
		t.Fatal("deadline 503 did not move intrust_deadline_rejects_total")
	}
	if n := s.adm.inFlight.Load(); n != 0 {
		t.Fatalf("in-flight gauge = %d after deadline 503, want 0", n)
	}
}

// TestSweepClientDisconnect is the regression test for cooperative
// cancellation: a client that vanishes mid-cold-sweep (while an
// injected stall holds the compute) must stop the in-flight compute at
// the next checkpoint, release its admission slot, and leave the
// caches consistent — the same sweep afterwards streams clean.
func TestSweepClientDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()
	plane := fault.New(chaosSeed)
	plane.Arm(engine.FaultStall, fault.Spec{Prob: 1, Delay: time.Minute})
	s := newTestServer(Options{Faults: plane, MaxInFlight: 1})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet,
			"/sweep?arch=sgx&attack=spectre-v1,meltdown&defense=none&samples=16", nil).WithContext(ctx)
		s.ServeHTTP(rec, req)
	}()

	waitFor(t, "sweep to take its compute slot", func() bool { return s.adm.inFlight.Load() == 1 })
	cancel() // the client is gone

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled sweep handler did not return (compute not stopped at a checkpoint)")
	}
	waitFor(t, "admission slot release", func() bool { return s.adm.inFlight.Load() == 0 })
	waitFor(t, "sweep goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})

	// Caches stayed consistent: with the stall disarmed the identical
	// sweep streams every cell plus an error-free summary.
	plane.Reset()
	rec := get(t, s, "/sweep?arch=sgx&attack=spectre-v1,meltdown&defense=none&samples=16")
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep after disconnect recovery = %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var sum SweepSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("terminal line %q: %v", lines[len(lines)-1], err)
	}
	if sum.Error != "" || sum.Cells != 2 || len(lines) != sum.Cells+1 {
		t.Fatalf("recovered sweep summary %+v over %d lines, want 2 clean cells", sum, len(lines))
	}
}

// TestSweepErrorEmitsSummary pins the mid-stream failure contract: a
// sweep that fails after streaming starts emits an NDJSON error line
// AND still terminates with a SweepSummary whose error field is set —
// distinguishable from a dropped connection, which has no summary.
func TestSweepErrorEmitsSummary(t *testing.T) {
	plane := fault.New(chaosSeed)
	plane.Arm(engine.FaultPanic, fault.Spec{Prob: 1})
	s := newTestServer(Options{Faults: plane})

	rec := get(t, s, "/sweep?arch=sgx&attack=spectre-v1&defense=none&samples=16")
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d (headers committed before the failure)", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("failed sweep streamed %d lines, want error line + summary line:\n%s", len(lines), rec.Body.String())
	}
	var e apiError
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &e); err != nil || e.Error == "" {
		t.Fatalf("penultimate line %q is not an NDJSON error record", lines[len(lines)-2])
	}
	var sum SweepSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("terminal line %q: %v", lines[len(lines)-1], err)
	}
	if sum.Error == "" {
		t.Fatalf("terminal summary %+v carries no error after a mid-stream failure", sum)
	}
	if sum.Cells != 1 {
		t.Fatalf("summary cells = %d, want the full selection size 1", sum.Cells)
	}
}

// TestReadyzStates pins every /readyz status: healthy without and with
// a (closed-breaker) disk tier, degraded once the breaker trips, and
// draining — which must still answer as JSON while every other
// endpoint 503s behind the drain gate.
func TestReadyzStates(t *testing.T) {
	s := newTestServer(Options{})
	if code, body := readyz(t, s); code != http.StatusOK || body.Status != "healthy" || body.Disk != "" {
		t.Fatalf("diskless /readyz = %d %+v, want 200 healthy with no disk field", code, body)
	}

	s = newTestServer(Options{CacheDir: t.TempDir(), BreakerThreshold: 2})
	if code, body := readyz(t, s); code != http.StatusOK || body.Status != "healthy" || body.Disk != "closed" {
		t.Fatalf("disk /readyz = %d %+v, want 200 healthy/closed", code, body)
	}
	s.brk.fail()
	s.brk.fail()
	if code, body := readyz(t, s); code != http.StatusOK || body.Status != "degraded" || body.Disk != "open" {
		t.Fatalf("tripped /readyz = %d %+v, want 200 degraded/open", code, body)
	}

	s.BeginDrain()
	code, body := readyz(t, s)
	if code != http.StatusServiceUnavailable || body.Status != "draining" {
		t.Fatalf("draining /readyz = %d %+v, want 503 draining", code, body)
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503 (drain gate)", rec.Code)
	}
}

// TestHTTPServerTimeouts pins the connection hygiene bounds on the
// server ListenAndServe runs: a header-stalling peer is cut at 10s, an
// idle keep-alive connection at 120s, and the read timeout stays unset
// so /sweep can stream indefinitely.
func TestHTTPServerTimeouts(t *testing.T) {
	hs := newTestServer(Options{}).httpServer(":0")
	if hs.ReadHeaderTimeout != 10*time.Second {
		t.Fatalf("ReadHeaderTimeout = %v, want 10s", hs.ReadHeaderTimeout)
	}
	if hs.IdleTimeout != 120*time.Second {
		t.Fatalf("IdleTimeout = %v, want 120s", hs.IdleTimeout)
	}
	if hs.ReadTimeout != 0 {
		t.Fatalf("ReadTimeout = %v, want 0 (streams must not be cut)", hs.ReadTimeout)
	}
}

// TestRetryAfterDerived pins the 429 hint derivation: observed mean
// cell cost times the queue ahead, spread over the slots, clamped to
// [1, 60] — not the old hard-coded "1".
func TestRetryAfterDerived(t *testing.T) {
	s := newTestServer(Options{MaxInFlight: 2})

	// No computes observed yet: the prior says 1s.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold retryAfterSeconds = %d, want the 1s floor", got)
	}

	// Mean cell cost 2s, 3 waiting + 2 in flight + 1 self = 6 ahead,
	// over 2 slots -> ceil(2*6/2) = 6 seconds.
	s.met.cellsComputed.Store(4)
	s.met.cellComputeUS.Store(8_000_000)
	s.adm.waiting.Store(3)
	s.adm.inFlight.Store(2)
	if got := s.retryAfterSeconds(); got != 6 {
		t.Fatalf("retryAfterSeconds = %d, want 6", got)
	}

	// A pathological backlog clamps at 60.
	s.adm.waiting.Store(10_000)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("backlogged retryAfterSeconds = %d, want the 60s cap", got)
	}
	s.adm.waiting.Store(0)
	s.adm.inFlight.Store(0)
}

// TestChaosMetricsExposed asserts the resilience surface shows up in
// /metrics: breaker state and opens, disk IO error counters, and the
// per-point fault injection counters.
func TestChaosMetricsExposed(t *testing.T) {
	plane := fault.New(chaosSeed)
	plane.Arm(diskcache.FaultWrite, fault.Spec{Prob: 1})
	s := newTestServer(Options{
		CacheDir:         t.TempDir(),
		Faults:           plane,
		DiskRetries:      -1,
		BreakerThreshold: 1,
	})
	if rec := get(t, s, cellTargets[0]); rec.Code != http.StatusOK {
		t.Fatalf("cell = %d", rec.Code)
	}
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"intrust_disk_breaker_state 1",
		"intrust_disk_breaker_opens_total 1",
		"intrust_disk_io_errors_total 1",
		"intrust_disk_write_errors_total 1",
		`intrust_fault_injections_total{point="disk.write"} 1`,
		"intrust_deadline_rejects_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
