package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Breaker states, exposed on /readyz and /metrics.
const (
	breakerClosed   = iota // disk tier healthy, all traffic flows
	breakerOpen            // disk tier failing, bypassed entirely
	breakerHalfOpen        // cooldown elapsed, one probe in flight
)

// breaker is the circuit breaker over the persistent cache tier. The
// disk tier is an optimization — every body it would serve can be
// recomputed — so when storage starts failing the correct degradation
// is to stop touching it (each failed write-behind already burned
// retries and backoff) and serve memory-only, not to keep paying IO
// timeouts on the request path.
//
// State machine: closed counts consecutive IO failures (reads and
// writes share the count; a served read or completed write resets it —
// a read miss proves nothing and resets nothing) and opens at
// the threshold. Open bypasses the disk for the cooldown, then the
// next allow() claims the half-open probe: exactly one operation goes
// through, and its outcome alone decides — success closes the breaker,
// failure re-opens it for another cooldown. Concurrent requests during
// half-open are bypassed, so a failing disk sees one probe per
// cooldown, never a thundering herd.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	now         func() time.Time // injectable for tests
	state       int
	consecutive int
	openedAt    time.Time

	opens atomic.Int64 // closed->open transitions, cumulative
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether the next disk operation may proceed. In the
// open state it also performs the open -> half-open transition once the
// cooldown elapses, granting the caller the probe slot.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true // this caller is the probe
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// ok records a successful disk operation: failures reset, and a
// half-open probe's success closes the breaker.
func (b *breaker) ok() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.state = breakerClosed
}

// probeMiss resolves a probe whose operation completed without an IO
// error but served nothing (a read miss): the IO path demonstrably
// worked, so a half-open breaker closes. In the closed state a miss is
// neutral — it must NOT reset the consecutive-failure count, or a
// write-only failure mode (disk full, read-only remount) interleaved
// with cold-key misses would never reach the threshold.
func (b *breaker) probeMiss() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.consecutive = 0
	}
}

// fail records an IO failure: in closed state it counts toward the
// threshold; a half-open probe's failure re-opens immediately.
func (b *breaker) fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open()
		}
	case breakerHalfOpen:
		b.open()
	}
}

// open transitions to the open state (caller holds mu).
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.consecutive = 0
	b.opens.Add(1)
}

// snapshot returns the current state (re-evaluating an elapsed
// cooldown would be a side effect; /readyz reports open until a real
// operation claims the probe).
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// stateName renders a breaker state for /readyz and logs.
func stateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
