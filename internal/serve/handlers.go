package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/perf"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/stats"
)

// Cell is the JSON rendering of one grid cell — what /cell returns and
// /sweep streams one-per-line. It deliberately excludes wall-clock
// fields: a cell body is a pure function of its key, so cold and cached
// responses (and responses across restarts) are byte-identical.
type Cell struct {
	// Key is the canonical cache address the cell was computed under.
	Key string `json:"key"`
	// Scenario, Family, Arch are the cell's grid coordinates.
	Scenario string `json:"scenario"`
	Family   string `json:"family"`
	Arch     string `json:"arch"`
	// Defense is the canonical axis label ("none", "stock",
	// "ct-aes+clock-jitter"); Resolved is the display form with stock
	// wiring expanded ("stock (way-partition)").
	Defense  string `json:"defense"`
	Resolved string `json:"resolved_defense"`
	// Samples is the effective reference budget.
	Samples int `json:"samples"`
	// Verdict is the scenario's raw verdict; Class its normalized
	// broken/mitigated/n-a grading.
	Verdict string `json:"verdict"`
	Class   string `json:"class"`
	// Detail is the verdict's basis note (or the n/a reason).
	Detail string `json:"detail,omitempty"`
	// Metrics are the scenario's named scalar measurements.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Sampling is the adaptive sequential-sampling decision (nil for
	// fixed-budget and n/a cells).
	Sampling *stats.Decision `json:"sampling,omitempty"`
}

// newCell projects an engine result onto the wire shape.
func newCell(key core.CellKey, r *engine.Result) Cell {
	return Cell{
		Key:      key.Encode(),
		Scenario: key.Scenario,
		Family:   r.Experiment.Attack,
		Arch:     key.Arch,
		Defense:  key.Defense,
		Resolved: r.Experiment.Defense,
		Samples:  r.Experiment.Samples,
		Verdict:  r.Verdict,
		Class:    scenario.VerdictClass(r.Verdict),
		Detail:   r.Detail,
		Metrics:  r.Metrics,
		Sampling: r.Sampling,
	}
}

// SweepSummary is the final line of a /sweep NDJSON stream (it carries
// a "cells" field, which no Cell line has, so clients can tell them
// apart without schema negotiation).
type SweepSummary struct {
	Cells       int            `json:"cells"`
	CacheHits   int            `json:"cache_hits"`
	CacheMisses int            `json:"cache_misses"`
	Verdicts    map[string]int `json:"verdicts,omitempty"`
	// Error is set when the stream stopped before streaming every
	// selected cell: the summary line still arrives, so a client can
	// always distinguish "sweep failed mid-stream" (summary with error)
	// from "connection truncated" (no summary line at all).
	Error string `json:"error,omitempty"`
}

// axisToken normalizes one HTTP axis value: trimmed, with spaces
// restored to '+'. Query-string parsing decodes an unescaped '+' as a
// space, which would silently mangle every scenario ("flush+reload")
// and defense-combination name; restoring it here means both the
// %2B-escaped and the literal-plus spelling of a URL address the same
// cell. No axis name legitimately contains a space.
func axisToken(s string) string {
	return strings.ReplaceAll(strings.TrimSpace(s), " ", "+")
}

// axisList splits a comma-separated HTTP axis value into normalized
// tokens (empty tokens drop, an empty list means the axis default).
func axisList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = axisToken(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// cellOptions parses the shared measurement knobs (samples, confidence,
// maxsamples, seed) from a query, defaulting exactly like the sweep
// CLI: 256 samples, adaptive sampling at the default confidence.
func (s *Server) cellOptions(q url.Values) (core.CellOptions, error) {
	opt := core.CellOptions{Samples: 0, Confidence: stats.DefaultConfidence, Seed: s.opts.Seed}
	if v := q.Get("samples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return opt, fmt.Errorf("samples: %q is not an integer", v)
		}
		opt.Samples = n
	}
	if v := q.Get("confidence"); v != "" {
		c, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return opt, fmt.Errorf("confidence: %q is not a number", v)
		}
		opt.Confidence = c
	}
	if v := q.Get("maxsamples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return opt, fmt.Errorf("maxsamples: %q is not an integer", v)
		}
		opt.MaxSamples = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return opt, fmt.Errorf("seed: %q is not an integer", v)
		}
		opt.Seed = n
	}
	return opt, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readiness is the /readyz body: a load balancer's routing decision in
// one field, with the disk breaker's state alongside for operators.
type readiness struct {
	// Status is healthy (full service), degraded (serving memory-only
	// because the disk breaker is not closed — still routable), or
	// draining (shutting down — stop routing here).
	Status string `json:"status"`
	// Disk is the persistent tier's breaker state (closed, open,
	// half-open); omitted when no disk tier is configured.
	Disk string `json:"disk,omitempty"`
}

// handleReadyz reports readiness as JSON. Unlike every other endpoint
// it keeps answering while draining (registered through
// instrumentAlways): draining is a state it must report, not a gate
// that should blank it. Degraded is still 200 — a memory-only server
// answers correctly, just cold across restarts — while draining is 503
// so balancers stop routing.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readiness{Status: "healthy"}
	if s.disk != nil {
		state := s.brk.snapshot()
		body.Disk = stateName(state)
		if state != breakerClosed {
			body.Status = "degraded"
		}
	}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// computeCtx derives the context a request's admission wait and
// compute run under: the request context (client disconnect propagates
// as cancellation) bounded by Options.ComputeDeadline when one is set.
func (s *Server) computeCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.ComputeDeadline > 0 {
		return context.WithTimeout(r.Context(), s.opts.ComputeDeadline)
	}
	return r.Context(), func() {}
}

// writeComputeError maps a compute failure onto its status: a fired
// compute deadline or a vanished client is a 503 (the service is
// refusing/abandoning work, not broken), anything else is the 500 it
// always was.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.deadlineRejects.Add(1)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("compute deadline %s exceeded; narrow the selection or raise -deadline", s.opts.ComputeDeadline))
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request cancelled before the result was ready")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleCell serves one grid cell: resolve the canonical key through
// the sweep's own axis parsers (malformed values are structured 400s),
// answer warm hits straight from the cache, and compute cold cells
// under admission.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opt, err := s.cellOptions(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := core.ResolveCell(axisToken(q.Get("scenario")), axisToken(q.Get("arch")), axisToken(q.Get("defense")), opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A cell body is a pure function of its canonical key, so the ETag
	// derives from the content *address*, not the content: revalidation
	// is sound even for cells this process has never computed — if the
	// client holds a body for this address, that body is current. A warm
	// revalidate (and even a cold one) is therefore a 304 with zero
	// compute.
	etag := cellETag(key)
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.met.revalidations.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if body, ok := s.cache.get(key.Encode()); ok {
		writeCell(w, body, "hit")
		return
	}
	// The persistent tier: a restart-warm cell serves (and promotes into
	// the LRU) without admission or engine work; anything the store
	// refuses falls through to compute as a plain miss.
	if body, ok := s.diskLoad(key.Encode()); ok {
		writeCell(w, body, "disk")
		return
	}
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()
	body, err := s.computeCell(ctx, key)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	writeCell(w, body, "miss")
}

// cellETag renders a cell's entity tag: a digest of the canonical
// content address. Strong (no W/ prefix) because equal addresses imply
// byte-equal bodies.
func cellETag(key core.CellKey) string {
	sum := sha256.Sum256([]byte(key.Encode()))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatch implements If-None-Match per RFC 9110 §13.1.2 for strong
// tags: a comma-separated candidate list, "*" matching anything, and
// weak-prefixed candidates compared by opaque value (weak comparison is
// allowed for If-None-Match).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// writeCell writes one cached (newline-terminated) JSON body with its
// X-Cache disposition. Bodies are terminated at marshal time, never
// here: appending to a shared cached slice could race in its spare
// capacity.
func writeCell(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Write(body)
}

// writeAdmissionError maps an acquire failure: a full queue is 429 with
// a Retry-After hint (backpressure, not failure) derived from observed
// load, a cancelled client or fired deadline is 503.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	if err == errQueueFull {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "admission queue full; retry later")
		return
	}
	s.writeComputeError(w, err)
}

// retryAfterSeconds derives the 429 Retry-After hint from observed
// load instead of a constant: the mean cold-cell compute cost seen so
// far, times the work queued ahead of a re-arriving client (current
// waiters + in-flight + the client itself), spread across the compute
// slots. Before any cold cell has landed a 250ms prior stands in for
// the mean. Clamped to [1, 60]: sub-second answers still say 1 (the
// header is integer seconds), and even a deeply backed-up queue should
// re-probe within a minute rather than trusting a stale estimate.
func (s *Server) retryAfterSeconds() int {
	avg := 0.25
	if n := s.met.cellsComputed.Load(); n > 0 {
		avg = float64(s.met.cellComputeUS.Load()) / 1e6 / float64(n)
	}
	ahead := float64(s.adm.waiting.Load() + s.adm.inFlight.Load() + 1)
	secs := int(math.Ceil(avg * ahead / float64(s.opts.MaxInFlight)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// handleSweep streams a grid selection as NDJSON, one Cell per line in
// the CLI sweep's enumeration order, then one SweepSummary line. Warm
// cells flow immediately; cold cells compute concurrently (bounded by
// GOMAXPROCS inside the request's single admission slot) a batch ahead
// of the write cursor, so a mostly-warm 1280-cell grid starts flowing
// in microseconds instead of after the last cold cell.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opt, err := s.cellOptions(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defenses := axisList(q.Get("defense"))
	if len(defenses) == 0 {
		defenses = []string{"stock"}
	}
	keys, err := core.EnumerateCells(axisList(q.Get("arch")), axisList(q.Get("attack")), defenses, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Admission is request-scoped and decided before the first byte:
	// once streaming starts the status code is committed, so a
	// selection that needs any cold compute must win its slot (or 429)
	// up front. Fully-warm selections bypass admission entirely. The
	// scan consults only the memory tier: a disk-warm selection takes a
	// slot it will barely use, which is the conservative direction — a
	// cell whose disk entry later fails authentication still computes
	// under a held slot, never outside the admission bound.
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	var release func()
	for _, k := range keys {
		if !s.cache.peek(k.Encode()) {
			if release, err = s.adm.acquire(ctx); err != nil {
				s.writeAdmissionError(w, err)
				return
			}
			defer release()
			break
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sum := SweepSummary{Cells: len(keys), Verdicts: map[string]int{}}
	enc := json.NewEncoder(w)
	workers := runtime.GOMAXPROCS(0)
	batch := 4 * workers
	for start := 0; start < len(keys); start += batch {
		end := start + batch
		if end > len(keys) {
			end = len(keys)
		}
		bodies := make([][]byte, end-start)
		errs := make([]error, end-start)
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := start; i < end; i++ {
			addr := keys[i].Encode()
			if b, ok := s.cache.get(addr); ok {
				bodies[i-start] = b
				sum.CacheHits++
				continue
			}
			if b, ok := s.diskLoad(addr); ok {
				bodies[i-start] = b
				sum.CacheHits++
				continue
			}
			sum.CacheMisses++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				bodies[i-start], errs[i-start] = s.computeCell(ctx, keys[i])
			}(i)
		}
		wg.Wait()
		for i := range bodies {
			if errs[i] != nil {
				// Headers are long gone; surface the failure as a
				// distinguishable NDJSON error line, then still emit
				// the terminal summary with the error recorded — a
				// stream that simply ends is indistinguishable from a
				// dropped connection, a summary with an error field is
				// a deliberate stop.
				enc.Encode(apiError{Error: errs[i].Error()})
				sum.Error = errs[i].Error()
				enc.Encode(sum)
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			w.Write(bodies[i])
			s.met.cellsStreamed.Add(1)
			var c Cell
			if json.Unmarshal(bodies[i], &c) == nil && c.Verdict != "" {
				sum.Verdicts[c.Verdict]++
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// catalogJSON marshals the attack and defense catalogs once; both are
// immutable after init.
type attackEntry struct {
	Name       string            `json:"name"`
	Family     string            `json:"family"`
	Section    string            `json:"section,omitempty"`
	Summary    string            `json:"summary,omitempty"`
	Sampling   string            `json:"sampling"`
	MinSamples int               `json:"min_samples,omitempty"`
	Applicable []string          `json:"applicable"`
	NA         map[string]string `json:"not_applicable,omitempty"`
}

type defenseEntry struct {
	Name       string            `json:"name"`
	Family     string            `json:"family"`
	Section    string            `json:"section,omitempty"`
	Summary    string            `json:"summary,omitempty"`
	Blocks     []string          `json:"blocks,omitempty"`
	StockOn    []string          `json:"stock_on,omitempty"`
	Applicable []string          `json:"applicable"`
	NA         map[string]string `json:"not_applicable,omitempty"`
}

// buildCatalogs renders the immutable attack and defense catalogs once
// at construction (lazy init from concurrent handlers would race).
func (s *Server) buildCatalogs() {
	var attacks []attackEntry
	for _, sc := range scenario.All() {
		section, summary := scenario.DescriptionOf(sc)
		applicable, na := scenario.ApplicableArchitectures(sc)
		attacks = append(attacks, attackEntry{
			Name:       sc.Name(),
			Family:     sc.Family(),
			Section:    section,
			Summary:    summary,
			Sampling:   scenario.SamplingCell(sc),
			MinSamples: scenario.MinSamplesOf(sc),
			Applicable: applicable,
			NA:         na,
		})
	}
	s.attacks = marshalLine(attacks)
	var defenses []defenseEntry
	for _, d := range defense.All() {
		section, summary := defense.DescriptionOf(d)
		applicable, na := defense.ApplicableArchitectures(d)
		defenses = append(defenses, defenseEntry{
			Name:       d.Name(),
			Family:     d.Family(),
			Section:    section,
			Summary:    summary,
			Blocks:     defense.BlocksOf(d),
			StockOn:    defense.StockOnOf(d),
			Applicable: applicable,
			NA:         na,
		})
	}
	s.defenses = marshalLine(defenses)
}

// marshalLine marshals v with a trailing newline baked in (see
// writeCell for why termination happens at marshal time).
func marshalLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal catalog: %v", err))
	}
	return append(b, '\n')
}

func (s *Server) handleAttacks(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.attacks)
}

func (s *Server) handleDefenses(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.defenses)
}

// handleBench serves the internal/perf throughput report for this
// process's environment. The full canonical measurement costs seconds,
// so it computes at most once (under admission, deduplicated across
// concurrent requests) and is then served from memory; ?refresh=1
// forces a re-measurement.
func (s *Server) handleBench(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("refresh") == "1" {
		s.bench.Store(nil)
	}
	if b := s.bench.Load(); b != nil {
		writeCell(w, *b, "hit")
		return
	}
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()
	body, err, _ := s.benchFlight.do("bench", func() ([]byte, error) {
		if b := s.bench.Load(); b != nil {
			return *b, nil
		}
		rep, err := perf.Run(0, s.opts.BenchConfigs)
		if err != nil {
			return nil, err
		}
		b := marshalLine(rep)
		s.bench.Store(&b)
		return b, nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCell(w, body, "miss")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.cache, s.disk, s.adm, s.brk, s.faults)
}
