package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/core"
)

// TestConcurrentHammer drives 32 goroutines through the full handler
// stack against a cell pool larger than the cache bound, so admission,
// the LRU's eviction path, the singleflight and the metrics all run
// concurrently. Run under -race this is the synchronization proof; in
// any mode it asserts no request ever sees a 5xx and every key's body
// stays byte-stable across hits, misses and re-computations after
// eviction.
func TestConcurrentHammer(t *testing.T) {
	s := newTestServer(Options{CacheEntries: 8, MaxInFlight: 4, QueueDepth: 1024})
	scenarios := []string{"spectre-v1", "spectre-btb", "ret2spec", "meltdown", "foreshadow"}
	archs := []string{"sgx", "trustzone", "sanctuary"}
	var targets []string
	for _, sc := range scenarios {
		for _, a := range archs {
			targets = append(targets, "/cell?scenario="+sc+"&arch="+a+"&defense=none&samples=16")
		}
	}
	const goroutines = 32
	const perG = 8
	var bodies sync.Map // target -> first body seen
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				target := targets[(g*perG+i*7)%len(targets)]
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("%s = %d %s", target, rec.Code, rec.Body.String())
					return
				}
				body := rec.Body.String()
				if prev, loaded := bodies.LoadOrStore(target, body); loaded && prev.(string) != body {
					errc <- fmt.Errorf("%s body changed between computations:\n%s\n%s", target, prev, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := s.cache.len(); got > 8 {
		t.Errorf("cache holds %d entries past its bound of 8", got)
	}
	if s.cache.evictions.Load() == 0 {
		t.Errorf("hammer over %d cells never evicted from an 8-entry cache", len(targets))
	}
	hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
	if hits+misses != goroutines*perG {
		t.Errorf("cache accounting %d hits + %d misses != %d requests", hits, misses, goroutines*perG)
	}
}

// stall installs the compute-stall seam: the first cold compute signals
// stalled and every cold compute blocks until release is closed. The
// caller must defer the returned cleanup.
func stall(t *testing.T) (stalled chan core.CellKey, release chan struct{}, cleanup func()) {
	t.Helper()
	stalled = make(chan core.CellKey, 16)
	release = make(chan struct{})
	testComputeStall = func(k core.CellKey) {
		select {
		case stalled <- k:
		default:
		}
		<-release
	}
	return stalled, release, func() { testComputeStall = nil }
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueSaturation pins the backpressure contract deterministically:
// with one compute slot (held by a stalled request) and a queue of one
// (occupied by a second), the third cold request is refused immediately
// with 429 and a Retry-After hint — and once the slot frees, the queued
// request completes normally.
func TestQueueSaturation(t *testing.T) {
	stalled, release, cleanup := stall(t)
	defer cleanup()
	s := newTestServer(Options{MaxInFlight: 1, QueueDepth: 1})

	type reply struct {
		code int
		body string
	}
	fire := func(target string) chan reply {
		ch := make(chan reply, 1)
		go func() {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			ch <- reply{rec.Code, rec.Body.String()}
		}()
		return ch
	}

	aCh := fire("/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=16")
	<-stalled // A holds the only compute slot
	bCh := fire("/cell?scenario=meltdown&arch=sgx&defense=none&samples=16")
	waitFor(t, "request B to queue", func() bool { return s.adm.waiting.Load() == 1 })

	// The queue is now full: C must be refused in microseconds, not queued.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cell?scenario=foreshadow&arch=sgx&defense=none&samples=16", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d %s, want 429", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Errorf("429 carries no Retry-After hint")
	}
	var e apiError
	if err := json.Unmarshal([]byte(rec.Body.String()), &e); err != nil || e.Error == "" {
		t.Errorf("429 body %q is not a structured error", rec.Body.String())
	}
	if s.adm.rejected.Load() != 1 {
		t.Errorf("rejected counter = %d, want 1", s.adm.rejected.Load())
	}

	close(release)
	for name, ch := range map[string]chan reply{"A": aCh, "B": bCh} {
		select {
		case r := <-ch:
			if r.code != http.StatusOK {
				t.Errorf("request %s = %d %s after release", name, r.code, r.body)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %s never completed after release", name)
		}
	}
}

// TestGracefulShutdown drives the drain sequence over real connections:
// a cold request is mid-compute when the drain begins; late requests
// are refused with 503; http.Server.Shutdown waits; and the in-flight
// request still completes with its full 200 body.
func TestGracefulShutdown(t *testing.T) {
	stalled, release, cleanup := stall(t)
	defer cleanup()
	s := newTestServer(Options{MaxInFlight: 2, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	type reply struct {
		code int
		body string
		err  error
	}
	inFlight := make(chan reply, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/cell?scenario=spectre-v1&arch=sgx&defense=none&samples=16")
		if err != nil {
			inFlight <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inFlight <- reply{code: resp.StatusCode, body: string(b)}
	}()
	<-stalled // the request is past admission, computing

	s.BeginDrain()
	late, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	late.Body.Close()
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("late request during drain = %d, want 503", late.StatusCode)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- ts.Config.Shutdown(ctx)
	}()
	close(release) // let the in-flight compute finish

	select {
	case r := <-inFlight:
		if r.err != nil {
			t.Fatalf("in-flight request severed by shutdown: %v", r.err)
		}
		if r.code != http.StatusOK || !strings.Contains(r.body, `"verdict"`) {
			t.Fatalf("in-flight request = %d %q, want a complete 200 cell", r.code, r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}
}
