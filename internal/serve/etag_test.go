package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// getWithHeaders is get with request headers, for conditional requests.
func getWithHeaders(t *testing.T, s *Server, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestCellETagRevalidate pins /cell's conditional-request contract: a
// 200 carries a strong ETag derived from the canonical content address,
// and If-None-Match on that tag revalidates as an empty 304.
func TestCellETagRevalidate(t *testing.T) {
	s := newTestServer(Options{})
	const target = "/cell?scenario=flush%2Breload&arch=sgx&defense=none&samples=64"

	first := get(t, s, target)
	if first.Code != http.StatusOK {
		t.Fatalf("GET = %d %s", first.Code, first.Body.String())
	}
	etag := first.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) || strings.HasPrefix(etag, "W/") {
		t.Fatalf("ETag = %q, want a quoted strong tag", etag)
	}

	// Matching tag: 304, no body, ETag still present for cache update.
	cond := getWithHeaders(t, s, target, map[string]string{"If-None-Match": etag})
	if cond.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match %s = %d, want 304", etag, cond.Code)
	}
	if cond.Body.Len() != 0 {
		t.Fatalf("304 carried a body: %q", cond.Body.String())
	}
	if got := cond.Header().Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}

	// Weak-form and list-form matches also revalidate (RFC 9110 §13.1.2:
	// If-None-Match uses weak comparison).
	for _, h := range []string{"W/" + etag, `"deadbeef", ` + etag, "*"} {
		if rec := getWithHeaders(t, s, target, map[string]string{"If-None-Match": h}); rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q = %d, want 304", h, rec.Code)
		}
	}

	// A stale tag misses: full 200 with the same ETag.
	miss := getWithHeaders(t, s, target, map[string]string{"If-None-Match": `"0123456789abcdef0123456789abcdef"`})
	if miss.Code != http.StatusOK || miss.Body.Len() == 0 {
		t.Fatalf("stale If-None-Match = %d body %d bytes, want full 200", miss.Code, miss.Body.Len())
	}
	if miss.Header().Get("ETag") != etag {
		t.Fatalf("ETag changed across requests: %q vs %q", miss.Header().Get("ETag"), etag)
	}

	// Canonically equal queries address the same content, so they carry
	// the same tag; a different cell carries a different one.
	alias := get(t, s, "/cell?scenario=Flush%2BReload&arch=SGX&defense=None&samples=64")
	if alias.Header().Get("ETag") != etag {
		t.Fatalf("canonical alias ETag = %q, want %q", alias.Header().Get("ETag"), etag)
	}
	other := get(t, s, "/cell?scenario=flush%2Breload&arch=sgx&defense=none&samples=32")
	if other.Header().Get("ETag") == etag {
		t.Fatal("distinct cells share an ETag")
	}

	// The metrics ledger: exactly the four 304s above were revalidations.
	body := get(t, s, "/metrics").Body.String()
	if !strings.Contains(body, "intrust_cell_revalidations_total 4") {
		t.Fatalf("metrics missing revalidation count:\n%s", body)
	}
}

// TestCellETagZeroCompute pins the property the address-derived tag
// buys: a conditional request revalidates 304 without ever computing
// the cell — even on a process that has never seen it.
func TestCellETagZeroCompute(t *testing.T) {
	s := newTestServer(Options{})
	const target = "/cell?scenario=dpa&arch=trustzone&defense=none&samples=64"

	// Learn the tag on one server, revalidate against a cold one.
	etag := get(t, s, target).Header().Get("ETag")
	cold := newTestServer(Options{})
	rec := getWithHeaders(t, cold, target, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("cold revalidation = %d, want 304", rec.Code)
	}
	body := get(t, cold, "/metrics").Body.String()
	for _, want := range []string{
		"intrust_cells_computed_total 0",
		"intrust_cache_hits_total 0",
		"intrust_cache_misses_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("cold server moved a counter; metrics missing %q", want)
		}
	}
}
