package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is the admission queue's backpressure signal; handlers
// translate it into 429 Too Many Requests with a Retry-After hint.
var errQueueFull = errors.New("admission queue full")

// admission bounds the computing side of the service: at most
// maxInFlight requests hold a compute slot at once, at most queueDepth
// more wait for one, and everything past that is rejected immediately —
// a full queue must answer in microseconds, not add itself to the pile.
// Cache hits never pass through admission; only requests that need at
// least one cold cell pay for a slot.
type admission struct {
	slots      chan struct{}
	queueDepth int64
	waiting    atomic.Int64
	inFlight   atomic.Int64
	rejected   atomic.Int64
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	return &admission{
		slots:      make(chan struct{}, maxInFlight),
		queueDepth: int64(queueDepth),
	}
}

// acquire obtains a compute slot, waiting in the bounded queue when all
// slots are busy. It returns the release function, errQueueFull when
// the queue is already at depth, or the context error if the caller
// gives up while queued.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	release = func() {
		a.inFlight.Add(-1)
		<-a.slots
	}
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return release, nil
	default:
	}
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return nil, errQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
