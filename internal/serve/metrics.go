package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/fault"
)

// metrics is the service's Prometheus-style instrumentation: request
// counters and latency histograms per endpoint, plus the cell-compute
// throughput counters the cells/sec rate derives from. Cache and
// admission numbers live on their own structs (cellCache, admission)
// and are rendered alongside these in the /metrics exposition.
//
// Everything is hand-rolled on purpose: the container bakes in no
// Prometheus client library, and the text exposition format is simple
// enough that deterministic, dependency-free rendering is less code
// than an adapter would be.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64      // endpoint \x00 code -> count
	latency  map[string]*histogram // endpoint -> seconds histogram

	cellsComputed  atomic.Int64
	cellComputeUS  atomic.Int64 // summed compute wall clock, microseconds
	cellsStreamed  atomic.Int64
	cellErrors     atomic.Int64
	diskWriteErrors atomic.Int64 // write-behind persists that failed all retries
	diskWriteRetries atomic.Int64 // backoff retries of failed persists
	diskReadErrors  atomic.Int64 // disk-tier reads that failed at the IO layer
	diskBypassed    atomic.Int64 // disk operations skipped by an open breaker
	deadlineRejects atomic.Int64 // requests answered 503 by the compute deadline

	revalidations  atomic.Int64 // /cell 304s answered from the content address
	attestQuotes   atomic.Int64
	attestAccepted atomic.Int64
	attestRejected atomic.Int64
	attestRevoked  atomic.Int64 // gauge: archs with a revoked baseline TCB
}

// latencyBuckets are the per-endpoint histogram bounds in seconds; +Inf
// is implicit.
var latencyBuckets = []float64{0.0005, 0.002, 0.01, 0.05, 0.25, 1, 5}

type histogram struct {
	counts []int64 // one per bucket, non-cumulative
	inf    int64
	sum    float64
	count  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]int64),
		latency:  make(map[string]*histogram),
	}
}

// observeRequest records one finished request: its endpoint, status
// code and wall-clock duration.
func (m *metrics) observeRequest(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint+"\x00"+strconv.Itoa(code)]++
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets))}
		m.latency[endpoint] = h
	}
	h.sum += secs
	h.count++
	for i, b := range latencyBuckets {
		if secs <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// observeCompute records one computed (cold) cell and its cost.
func (m *metrics) observeCompute(d time.Duration, failed bool) {
	m.cellsComputed.Add(1)
	m.cellComputeUS.Add(d.Microseconds())
	if failed {
		m.cellErrors.Add(1)
	}
}

// render writes the full text exposition (version 0.0.4): the request
// and compute metrics above plus the cache, disk-tier and admission
// state passed in (disk may be nil). Output is deterministically
// ordered so scrapes diff cleanly.
func (m *metrics) render(w io.Writer, cache *cellCache, disk *diskcache.Store, adm *admission, brk *breaker, faults *fault.Plane) {
	writeHeader := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	writeHeader("intrust_requests_total", "counter", "HTTP requests served, by endpoint and status code.")
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Strings(reqKeys)
	for _, k := range reqKeys {
		endpoint, code, _ := strings.Cut(k, "\x00")
		fmt.Fprintf(w, "intrust_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, m.requests[k])
	}

	writeHeader("intrust_request_seconds", "histogram", "Request latency by endpoint.")
	epKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		epKeys = append(epKeys, k)
	}
	sort.Strings(epKeys)
	for _, ep := range epKeys {
		h := m.latency[ep]
		var cum int64
		for i, b := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "intrust_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, formatBound(b), cum)
		}
		cum += h.inf
		fmt.Fprintf(w, "intrust_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "intrust_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "intrust_request_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
	m.mu.Unlock()

	writeHeader("intrust_cells_computed_total", "counter", "Grid cells computed cold (cache misses that ran the engine).")
	fmt.Fprintf(w, "intrust_cells_computed_total %d\n", m.cellsComputed.Load())
	writeHeader("intrust_cell_compute_seconds_total", "counter", "Wall clock summed over cold cell computations; rate() against intrust_cells_computed_total gives cells/sec.")
	fmt.Fprintf(w, "intrust_cell_compute_seconds_total %g\n", float64(m.cellComputeUS.Load())/1e6)
	writeHeader("intrust_cells_streamed_total", "counter", "Cells written to /sweep NDJSON streams.")
	fmt.Fprintf(w, "intrust_cells_streamed_total %d\n", m.cellsStreamed.Load())
	writeHeader("intrust_cell_errors_total", "counter", "Cell computations that returned an engine error.")
	fmt.Fprintf(w, "intrust_cell_errors_total %d\n", m.cellErrors.Load())
	writeHeader("intrust_cell_revalidations_total", "counter", "Conditional /cell requests answered 304 from the content address alone.")
	fmt.Fprintf(w, "intrust_cell_revalidations_total %d\n", m.revalidations.Load())

	writeHeader("intrust_attest_quotes_total", "counter", "Attestation quotes minted cold (cache misses that signed).")
	fmt.Fprintf(w, "intrust_attest_quotes_total %d\n", m.attestQuotes.Load())
	writeHeader("intrust_attest_verifies_total", "counter", "Quote verifications decided cold, by result.")
	fmt.Fprintf(w, "intrust_attest_verifies_total{result=\"accepted\"} %d\n", m.attestAccepted.Load())
	fmt.Fprintf(w, "intrust_attest_verifies_total{result=\"rejected\"} %d\n", m.attestRejected.Load())
	writeHeader("intrust_attest_revoked_archs", "gauge", "Architectures whose baseline TCB is revoked by the sweep-driven policy.")
	fmt.Fprintf(w, "intrust_attest_revoked_archs %d\n", m.attestRevoked.Load())

	writeHeader("intrust_cache_hits_total", "counter", "Result-cache hits.")
	fmt.Fprintf(w, "intrust_cache_hits_total %d\n", cache.hits.Load())
	writeHeader("intrust_cache_misses_total", "counter", "Result-cache misses.")
	fmt.Fprintf(w, "intrust_cache_misses_total %d\n", cache.misses.Load())
	writeHeader("intrust_cache_evictions_total", "counter", "Result-cache LRU evictions.")
	fmt.Fprintf(w, "intrust_cache_evictions_total %d\n", cache.evictions.Load())
	writeHeader("intrust_cache_entries", "gauge", "Result-cache resident entries.")
	entries, bytes := cache.size()
	fmt.Fprintf(w, "intrust_cache_entries %d\n", entries)
	writeHeader("intrust_cache_bytes", "gauge", "Result-cache resident key+body bytes (bounded alongside the entry count).")
	fmt.Fprintf(w, "intrust_cache_bytes %d\n", bytes)

	if disk != nil {
		c := disk.Counters()
		writeHeader("intrust_disk_hits_total", "counter", "Persistent-tier reads that served an authenticated body.")
		fmt.Fprintf(w, "intrust_disk_hits_total %d\n", c.Hits)
		writeHeader("intrust_disk_misses_total", "counter", "Persistent-tier reads with no entry on disk.")
		fmt.Fprintf(w, "intrust_disk_misses_total %d\n", c.Misses)
		writeHeader("intrust_disk_rejects_total", "counter", "Persistent-tier entries refused (failed authentication, truncated, torn or aliased) and quarantined.")
		fmt.Fprintf(w, "intrust_disk_rejects_total %d\n", c.Rejects)
		writeHeader("intrust_disk_writes_total", "counter", "Cell bodies durably persisted to the disk tier.")
		fmt.Fprintf(w, "intrust_disk_writes_total %d\n", c.Writes)
		writeHeader("intrust_disk_write_errors_total", "counter", "Write-behind persists that failed all retries (the response was served anyway).")
		fmt.Fprintf(w, "intrust_disk_write_errors_total %d\n", m.diskWriteErrors.Load())
		writeHeader("intrust_disk_write_retries_total", "counter", "Backoff retries of failed write-behind persists.")
		fmt.Fprintf(w, "intrust_disk_write_retries_total %d\n", m.diskWriteRetries.Load())
		writeHeader("intrust_disk_read_errors_total", "counter", "Persistent-tier reads that failed at the IO layer (served as misses).")
		fmt.Fprintf(w, "intrust_disk_read_errors_total %d\n", m.diskReadErrors.Load())
		writeHeader("intrust_disk_io_errors_total", "counter", "Storage-layer read and write failures seen by the disk store itself.")
		fmt.Fprintf(w, "intrust_disk_io_errors_total %d\n", c.IOErrors)
		writeHeader("intrust_disk_bypassed_total", "counter", "Disk-tier operations skipped because the circuit breaker was open.")
		fmt.Fprintf(w, "intrust_disk_bypassed_total %d\n", m.diskBypassed.Load())
		writeHeader("intrust_disk_breaker_state", "gauge", "Disk-tier circuit breaker state: 0 closed, 1 open, 2 half-open.")
		fmt.Fprintf(w, "intrust_disk_breaker_state %d\n", brk.snapshot())
		writeHeader("intrust_disk_breaker_opens_total", "counter", "Times the disk-tier circuit breaker tripped open.")
		fmt.Fprintf(w, "intrust_disk_breaker_opens_total %d\n", brk.opens.Load())
	}

	writeHeader("intrust_deadline_rejects_total", "counter", "Requests answered 503 because the compute deadline fired.")
	fmt.Fprintf(w, "intrust_deadline_rejects_total %d\n", m.deadlineRejects.Load())

	if faults != nil {
		writeHeader("intrust_fault_injections_total", "counter", "Fault-plane injections that fired, by fault point.")
		counters := faults.Counters()
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "intrust_fault_injections_total{point=%q} %d\n", name, counters[name].Fires)
		}
	}

	writeHeader("intrust_inflight_requests", "gauge", "Requests currently holding a compute slot.")
	fmt.Fprintf(w, "intrust_inflight_requests %d\n", adm.inFlight.Load())
	writeHeader("intrust_queue_waiting", "gauge", "Requests waiting in the admission queue.")
	fmt.Fprintf(w, "intrust_queue_waiting %d\n", adm.waiting.Load())
	writeHeader("intrust_rejected_total", "counter", "Requests rejected with 429 because the admission queue was full.")
	fmt.Fprintf(w, "intrust_rejected_total %d\n", adm.rejected.Load())
}

// formatBound renders a bucket bound the way Prometheus clients do
// (shortest float form).
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }
