package transient

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"math/big"
	"testing"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
)

var testSecret = []byte("TOP-SECRET-DATA!")

func TestSpectreV1Extraction(t *testing.T) {
	res, err := SpectreV1(cpu.HighEndFeatures(), testSecret, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != len(testSecret) {
		t.Fatalf("recovered %d/%d bytes: %q", res.Correct, len(testSecret), res.Recovered)
	}
}

func TestSpectreV1MitigatedByFence(t *testing.T) {
	res, err := SpectreV1(cpu.HighEndFeatures(), testSecret, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > len(testSecret)/4 {
		t.Fatalf("fence left %d/%d bytes extractable", res.Correct, len(testSecret))
	}
}

func TestSpectreV1ImmuneOnInOrderCore(t *testing.T) {
	res, err := SpectreV1(cpu.EmbeddedFeatures(), testSecret, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > len(testSecret)/4 {
		t.Fatalf("in-order core leaked %d/%d bytes", res.Correct, len(testSecret))
	}
}

func TestSpectreBTBExtraction(t *testing.T) {
	res, err := SpectreBTB(cpu.HighEndFeatures(), testSecret, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != len(testSecret) {
		t.Fatalf("recovered %d/%d bytes", res.Correct, len(testSecret))
	}
}

func TestSpectreBTBMitigatedByPredictorFlush(t *testing.T) {
	res, err := SpectreBTB(cpu.HighEndFeatures(), testSecret, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > len(testSecret)/4 {
		t.Fatalf("IBPB left %d/%d bytes extractable", res.Correct, len(testSecret))
	}
}

func TestRet2specExtraction(t *testing.T) {
	res, err := Ret2spec(cpu.HighEndFeatures(), testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != len(testSecret) {
		t.Fatalf("recovered %d/%d bytes", res.Correct, len(testSecret))
	}
}

func TestMeltdownExtraction(t *testing.T) {
	res, err := Meltdown(cpu.HighEndFeatures(), testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != len(testSecret) {
		t.Fatalf("recovered %d/%d bytes: %q", res.Correct, len(testSecret), res.Recovered)
	}
}

func TestMeltdownMitigatedInHardware(t *testing.T) {
	feat := cpu.HighEndFeatures()
	feat.FaultForwarding = false
	res, err := Meltdown(feat, testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > len(testSecret)/4 {
		t.Fatalf("fixed silicon leaked %d/%d bytes", res.Correct, len(testSecret))
	}
}

func TestForeshadowExtractsQuotingKey(t *testing.T) {
	p := platform.NewServer()
	s, err := sgx.New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ForeshadowSGX(s, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 16 {
		t.Fatalf("Foreshadow recovered %d/16 key bytes", res.Correct)
	}
}

func TestForeshadowForgesAttestation(t *testing.T) {
	// The consequence the paper highlights: with the extracted key, the
	// attacker signs quotes for arbitrary (malicious) enclaves that any
	// remote verifier accepts.
	p := platform.NewServer()
	s, err := sgx.New(p)
	if err != nil {
		t.Fatal(err)
	}
	full := len(s.QuotingPublic().PrivateBytes())
	res, err := ForeshadowSGX(s, full, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != full {
		t.Fatalf("extracted %d/%d key bytes", res.Correct, full)
	}
	// Reconstruct the ECDSA key from the stolen scalar.
	d := new(big.Int).SetBytes(res.Recovered)
	stolen := &ecdsa.PrivateKey{D: d}
	stolen.PublicKey.Curve = elliptic.P256()
	stolen.PublicKey.X, stolen.PublicKey.Y = elliptic.P256().ScalarBaseMult(res.Recovered)
	if stolen.PublicKey.X.Cmp(s.QuotingPublic().Public().X) != 0 {
		t.Fatal("stolen key does not match platform public key")
	}
	// Forge a quote for "malware" with a fresh nonce: the verifier that
	// trusts the platform public key accepts it.
	verifier := attest.NewVerifier()
	malware := attest.Measure([]byte("malware enclave"))
	verifier.AllowMeasurement("genuine-app", malware) // verifier is told it's genuine
	nonce, _ := verifier.Challenge()
	report := attest.NewReport(nil, malware, nonce, nil)
	forged, err := forgeQuote(stolen, report)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.CheckQuote(s.QuotingPublic().Public(), forged); err != nil {
		t.Fatalf("forged quote rejected: %v", err)
	}
}

func forgeQuote(k *ecdsa.PrivateKey, r *attest.Report) (*attest.Quote, error) {
	// Reimplements the quote signature with the stolen key: the digest
	// layout is public (it is part of the attestation protocol).
	return attest.SignQuoteWithKey(k, r)
}

func TestForeshadowMitigatedByL1Flush(t *testing.T) {
	p := platform.NewServer()
	s, err := sgx.New(p)
	if err != nil {
		t.Fatal(err)
	}
	s.MitigateL1TF = true
	res, err := ForeshadowSGX(s, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > 4 {
		t.Fatalf("mitigated platform leaked %d/16 key bytes", res.Correct)
	}
}

func TestForeshadowNeedsL1TFHardwareBug(t *testing.T) {
	p := platform.NewServer()
	for _, c := range p.Cores {
		f := c.Feat
		f.L1TFForwarding = false // fixed silicon
		c.Feat = f
	}
	s, err := sgx.New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ForeshadowSGX(s, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > 4 {
		t.Fatalf("fixed silicon leaked %d/16 key bytes", res.Correct)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Attack: "x", Target: []byte{1, 2}, Recovered: []byte{1, 3}}
	r.grade()
	if r.Correct != 1 {
		t.Fatalf("grade = %d", r.Correct)
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
	if bytes.Equal(r.Recovered, r.Target) {
		t.Fatal("test data degenerate")
	}
}
