// Package transient implements the Section 4.2 attacks end-to-end as
// programs running on the simulated CPU: Spectre-PHT (bounds-check
// bypass), Spectre-BTB (cross-training of indirect branches), ret2spec
// (return stack buffer poisoning), Meltdown (fault-deferred forwarding of
// supervisor data) and Foreshadow (L1 terminal fault against SGX,
// including the page-swap L1 preload and the extraction of the platform's
// attestation key — the paper's "trust has been shattered irreparably"
// example).
//
// The attacker's receiver is honest: a probe program on the same CPU times
// 256 cache lines with RDCYCLE and picks the fastest — no simulator
// backdoors are consulted.
package transient

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
)

// Memory layout shared by the attack programs.
const (
	codeBase   = 0x1000
	arrayBase  = 0x2000 // bounds-checked array
	lenAddr    = 0x2100 // array length word
	secretBase = 0x2200 // victim secret (out of bounds for the array)
	probeBase  = 0x10000
	probeLines = 256
	lineSize   = 64
)

// Result reports an extraction attempt.
type Result struct {
	Attack    string
	Recovered []byte
	Target    []byte
	Correct   int
}

func (r Result) String() string {
	return fmt.Sprintf("%-12s: %d/%d bytes extracted", r.Attack, r.Correct, len(r.Target))
}

func (r *Result) grade() {
	for i := range r.Target {
		if i < len(r.Recovered) && r.Recovered[i] == r.Target[i] {
			r.Correct++
		}
	}
}

// probeProgram times every probe line and returns the fastest index in a0.
// t2 must hold the probe base address on entry.
//
// The fence at the loop head is attacker self-defense: without it, the
// attacker's own mispredicted comparison branch speculatively runs ahead
// into the next iteration and prefetches the line about to be measured,
// destroying the timing signal (real Spectre PoCs serialize with
// mfence/lfence for exactly this reason).
const probeProgram = `
        .org 0x6000
probe:  li   t0, 0           ; best index
        li   t1, 0x7ffffff   ; best time
        li   t3, 0           ; i
ploop:  fence                ; keep wrong-path run-ahead out of the timing
        slli t4, t3, 6
        add  t4, t4, t2
        rdcycle s0
        lbu  s2, 0(t4)
        rdcycle s1
        sub  s0, s1, s0
        bge  s0, t1, pnext
        mv   t1, s0
        mv   t0, t3
pnext:  addi t3, t3, 1
        slti t4, t3, 256
        bne  t4, zero, ploop
        mv   a0, t0
        hlt
`

// probeWarmBase is a scratch range the probe walks once before measuring,
// to warm its own code in the I-cache and train the loop branch.
const probeWarmBase = 0x20000

// machine is a bare high-end box for the same-address-space attacks.
type machine struct {
	c *cpu.CPU
	m *mem.Memory
}

func newMachine(feat cpu.Features) *machine {
	m := mem.NewMemory()
	m.MustAddRegion(mem.Region{Name: "ram", Base: 0, Size: 4 << 20, Kind: mem.RegionRAM})
	ctl := mem.NewController(m)
	c := cpu.New(0, ctl)
	c.Hier = &cache.Hierarchy{
		L1I:        cache.New(cache.Config{Name: "l1i", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 2}),
		L1D:        cache.New(cache.Config{Name: "l1d", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 3}),
		LLC:        cache.New(cache.Config{Name: "llc", Sets: 2048, Ways: 16, LineSize: 64, HitLatency: 24}),
		MemLatency: 150,
	}
	c.TLB = cache.NewTLB(32, 4)
	c.Pred = cpu.NewPredictor(2048, 512, 16)
	c.Feat = feat
	return &machine{c: c, m: m}
}

func (mc *machine) load(src string) *isa.Program {
	p := isa.MustAssemble(src)
	if err := mc.m.LoadProgram(p); err != nil {
		panic(err)
	}
	return p
}

// run starts at pc with the given a0 and runs to halt.
func (mc *machine) run(pc uint32, regs map[uint8]uint32) error {
	mc.c.Halted = false
	mc.c.Waiting = false
	mc.c.PC = pc
	for r, v := range regs {
		mc.c.Regs[r] = v
	}
	_, err := mc.c.Run(50_000)
	return err
}

func (mc *machine) flushProbe() {
	for i := 0; i < probeLines; i++ {
		mc.c.Hier.FlushAddr(uint32(probeBase + i*lineSize))
	}
}

// runProbe executes the in-ISA timing probe and returns the hot index.
// A warm-up pass over scratch memory first brings the probe code into the
// I-cache so the first measured lines are not penalized by cold fetches.
func (mc *machine) runProbe() (byte, error) {
	if err := mc.run(0x6000, map[uint8]uint32{isa.RegT2: probeWarmBase}); err != nil {
		return 0, err
	}
	if err := mc.run(0x6000, map[uint8]uint32{isa.RegT2: probeBase}); err != nil {
		return 0, err
	}
	return byte(mc.c.Regs[isa.RegA0]), nil
}

// SpectreV1 extracts secret bytes through a bounds-check-bypass gadget.
// withFence compiles the victim with a speculation barrier after the
// check (the software mitigation).
func SpectreV1(feat cpu.Features, secret []byte, withFence bool) (Result, error) {
	mc := newMachine(feat)
	defer mc.m.Release()
	fence := ""
	if withFence {
		fence = "fence\n"
	}
	mc.load(`
        .org 0x1000
victim: la   t0, 0x2100
        lw   t0, 0(t0)
        bgeu a0, t0, vout
        ` + fence + `
        la   t1, 0x2000
        add  t1, t1, a0
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
vout:   hlt
`)
	mc.load(probeProgram)
	if err := mc.m.LoadImage(lenAddr, []byte{16, 0, 0, 0}); err != nil {
		return Result{}, err
	}
	if err := mc.m.LoadImage(secretBase, secret); err != nil {
		return Result{}, err
	}
	res := Result{Attack: "spectre-pht", Target: secret}
	for i := range secret {
		// Train in-bounds. The probe program's own branches scramble the
		// gshare history between extractions, so train long enough for
		// the global history to reach its fixed point (all not-taken)
		// and saturate the operative PHT entry.
		for k := 0; k < 40; k++ {
			if err := mc.run(codeBase, map[uint8]uint32{isa.RegA0: uint32(k % 16)}); err != nil {
				return res, err
			}
		}
		mc.flushProbe()
		oob := uint32(secretBase - arrayBase + i)
		if err := mc.run(codeBase, map[uint8]uint32{isa.RegA0: oob}); err != nil {
			return res, err
		}
		b, err := mc.runProbe()
		if err != nil {
			return res, err
		}
		res.Recovered = append(res.Recovered, b)
	}
	res.grade()
	return res, nil
}

// SpectreBTB extracts secret bytes by mistraining an indirect branch to a
// disclosure gadget the victim never calls. flushPredictors enables the
// IBPB-style mitigation at the "context switch" between attacker training
// and victim execution.
func SpectreBTB(feat cpu.Features, secret []byte, flushPredictors bool) (Result, error) {
	mc := newMachine(feat)
	defer mc.m.Release()
	mc.load(`
        .org 0x1000
victim: jalr ra, t0, 0       ; indirect call through t0
        hlt
        .org 0x2000
legit:  addi a1, a1, 1
        hlt
        .org 0x3000
gadget: la   t1, 0x2200
        add  t1, t1, s1      ; s1 = byte offset
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
`)
	mc.load(probeProgram)
	if err := mc.m.LoadImage(secretBase, secret); err != nil {
		return Result{}, err
	}
	res := Result{Attack: "spectre-btb", Target: secret}
	for i := range secret {
		// Attacker phase: execute the same-VA branch to the gadget. The
		// gadget runs architecturally here, so flush the probe after.
		if err := mc.run(codeBase, map[uint8]uint32{
			isa.RegT0: 0x3000, isa.RegS1: uint32(i)}); err != nil {
			return res, err
		}
		mc.flushProbe()
		if flushPredictors {
			mc.c.Pred.Flush() // predictor isolation on context switch
		}
		// Victim phase: legitimate target; speculation follows the BTB.
		if err := mc.run(codeBase, map[uint8]uint32{
			isa.RegT0: 0x2000, isa.RegS1: uint32(i)}); err != nil {
			return res, err
		}
		b, err := mc.runProbe()
		if err != nil {
			return res, err
		}
		res.Recovered = append(res.Recovered, b)
	}
	res.grade()
	return res, nil
}

// Ret2spec extracts secret bytes by poisoning the return stack buffer so a
// victim return transiently executes the disclosure gadget.
func Ret2spec(feat cpu.Features, secret []byte) (Result, error) {
	mc := newMachine(feat)
	defer mc.m.Release()
	mc.load(`
        .org 0x1000
victim: ret                  ; architectural target in ra
        .org 0x3000
gadget: la   t1, 0x2200
        add  t1, t1, s1
        lbu  t2, 0(t1)
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
        .org 0x5000
landing: hlt
`)
	mc.load(probeProgram)
	if err := mc.m.LoadImage(secretBase, secret); err != nil {
		return Result{}, err
	}
	res := Result{Attack: "ret2spec", Target: secret}
	for i := range secret {
		mc.flushProbe()
		// Attacker poisons the RSB with the gadget address (modelled as
		// the residue of attacker calls before the context switch).
		mc.c.Pred.PushReturn(0x3000)
		mc.c.Regs[isa.RegS1] = uint32(i)
		if err := mc.run(codeBase, map[uint8]uint32{
			isa.RegRA: 0x5000, isa.RegS1: uint32(i)}); err != nil {
			return res, err
		}
		b, err := mc.runProbe()
		if err != nil {
			return res, err
		}
		res.Recovered = append(res.Recovered, b)
	}
	res.grade()
	return res, nil
}

// Meltdown extracts kernel memory from user space through the
// fault-forwarding window. The kernel secret is mapped supervisor-only;
// the user attacker faults on it and transmits the forwarded byte through
// the probe array before the trap is delivered.
func Meltdown(feat cpu.Features, secret []byte) (Result, error) {
	mc := newMachine(feat)
	defer mc.m.Release()
	as, err := cpu.NewAddressSpace(mc.m, 0x100000, 0x40000, 1)
	if err != nil {
		return Result{}, err
	}
	mc.load(`
        .org 0x1000
attack: lbu  t2, 0(t0)       ; t0 = kernel VA; faults, forwards
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
        .org 0x400
trap:   hlt
`)
	mc.load(probeProgram)
	const kernelVA, kernelPA = 0x80000, 0x70000
	if err := mc.m.LoadImage(kernelPA, secret); err != nil {
		return Result{}, err
	}
	// Supervisor-only mapping of the secret; user mappings for code and
	// probe; trap page supervisor-executable.
	maps := []struct {
		va, pa, n uint32
		flags     uint32
	}{
		{kernelVA, kernelPA, 4096, cpu.PTERead},
		{0x0, 0x0, 4096, cpu.PTERead | cpu.PTEExec},
		{0x1000, 0x1000, 0x6000, cpu.PTERead | cpu.PTEExec | cpu.PTEUser},
		{probeBase, probeBase, probeLines * lineSize, cpu.PTERead | cpu.PTEUser},
		{probeWarmBase, probeWarmBase, probeLines * lineSize, cpu.PTERead | cpu.PTEUser},
	}
	for _, mp := range maps {
		if err := as.MapRange(mp.va, mp.pa, mp.n, mp.flags); err != nil {
			return Result{}, err
		}
	}
	mc.c.Reset(codeBase)
	mc.c.SetCSR(isa.CSRTvec, 0x400)
	mc.c.SetCSR(isa.CSRSatp, as.SATP())
	res := Result{Attack: "meltdown", Target: secret}
	for i := range secret {
		mc.flushProbe()
		mc.c.Priv = isa.PrivUser
		if err := mc.run(codeBase, map[uint8]uint32{isa.RegT0: kernelVA + uint32(i)}); err != nil {
			return res, err
		}
		// The probe runs in user mode too (same address space).
		mc.c.Priv = isa.PrivUser
		b, err := mc.runProbe()
		if err != nil {
			return res, err
		}
		res.Recovered = append(res.Recovered, b)
	}
	res.grade()
	return res, nil
}

// ForeshadowSGX extracts the platform's SGX attestation key from the
// quoting enclave's EPC memory:
//
//  1. the malicious OS maps the EPC page into the attacker's address
//     space and clears the present bit (L1 terminal fault setup);
//  2. SGX's secure page swapping (EWB/ELD) forces the page's plaintext
//     through the L1 cache — no enclave cooperation needed;
//  3. a faulting user load forwards the L1 plaintext to the probe gadget.
//
// With s.MitigateL1TF (microcode L1 flush on enclave interface crossings
// plus our explicit flush after paging), the same code recovers nothing.
func ForeshadowSGX(s *sgx.SGX, nbytes int, mitigated bool) (Result, error) {
	plat := s.Platform()
	c := plat.Core(0)
	keyAddr, keyLen := s.QuotingKeyAddress()
	if nbytes > keyLen {
		nbytes = keyLen
	}
	target := make([]byte, nbytes)
	// Ground truth for grading only.
	copy(target, s.QuotingPublic().PrivateBytes()[:nbytes])
	res := Result{Attack: "foreshadow", Target: target}

	// Attacker code + probe in low memory.
	prog := isa.MustAssemble(`
        .org 0x1000
attack: lbu  t2, 0(t0)       ; t0 = VA of enclave byte; terminal fault
        slli t2, t2, 6
        la   t3, 0x10000
        add  t3, t3, t2
        lbu  t4, 0(t3)
        hlt
        .org 0x400
trap:   hlt
` + probeProgram)
	if err := plat.Mem.LoadProgram(prog); err != nil {
		return res, err
	}
	as, err := cpu.NewAddressSpace(plat.Mem, 0x1800000, 0x40000, 3)
	if err != nil {
		return res, err
	}
	const evVA = 0x90000
	epcPage := keyAddr &^ 0xfff
	maps := []struct {
		va, pa, n uint32
		flags     uint32
	}{
		{evVA, epcPage, 4096, cpu.PTERead | cpu.PTEUser},
		{0x0, 0x0, 4096, cpu.PTERead | cpu.PTEExec},
		{0x1000, 0x1000, 0x6000, cpu.PTERead | cpu.PTEExec | cpu.PTEUser},
		{probeBase, probeBase, probeLines * lineSize, cpu.PTERead | cpu.PTEUser},
		{probeWarmBase, probeWarmBase, probeLines * lineSize, cpu.PTERead | cpu.PTEUser},
	}
	for _, mp := range maps {
		if err := as.MapRange(mp.va, mp.pa, mp.n, mp.flags); err != nil {
			return res, err
		}
	}
	// Malicious-OS step: clear the present bit; the stale frame bits keep
	// pointing into the EPC.
	if err := as.SetFlags(evVA, 0, cpu.PTEValid); err != nil {
		return res, err
	}
	qe := s.QuotingEnclaveHandle()
	c.SetCSR(isa.CSRTvec, 0x400)
	c.SetCSR(isa.CSRSatp, as.SATP())
	for i := 0; i < nbytes; i++ {
		// Page-swap preload: evict and reload the key page; ELD decrypts
		// it through L1.
		blob, err := s.EWB(qe, epcPage)
		if err != nil {
			return res, err
		}
		if err := s.ELD(blob); err != nil {
			return res, err
		}
		if mitigated {
			c.Hier.FlushL1() // the L1TF microcode mitigation
		}
		for l := 0; l < probeLines; l++ {
			c.Hier.FlushAddr(uint32(probeBase + l*lineSize))
		}
		c.TLB.FlushAll()
		c.Halted = false
		c.PC = 0x1000
		c.Priv = isa.PrivUser
		c.Domain = 0
		c.Regs[isa.RegT0] = evVA + (keyAddr & 0xfff) + uint32(i)
		if _, err := c.Run(50_000); err != nil {
			return res, err
		}
		// Probe with RDCYCLE timing (warm-up pass first).
		for _, base := range []uint32{probeWarmBase, probeBase} {
			c.Halted = false
			c.PC = 0x6000
			c.Priv = isa.PrivUser
			c.Regs[isa.RegT2] = base
			if _, err := c.Run(50_000); err != nil {
				return res, err
			}
		}
		res.Recovered = append(res.Recovered, byte(c.Regs[isa.RegA0]))
	}
	res.grade()
	return res, nil
}
