package physical

import (
	"math/rand"

	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/softcrypto"
)

// The arena-backed DPA/CPA path: the sweep's production kernels. The
// naive TraceSet implementations above are retained as the reference —
// the kernel-equivalence property tests assert both paths bit-identical
// on randomized trace sets, which the exact int64 arithmetic of
// power.Arena makes possible (see power.Quantize).

// CollectArena gathers n traces of random plaintexts into the arena.
// The RNG and probe-noise consumption is identical to CollectTraces, so
// both paths record the same quantized samples for the same seed.
func CollectArena(a *power.Arena, v AESVictim, probe *power.Probe, n int, rng *rand.Rand) {
	a.Reset()
	ExtendArena(a, v, probe, n, rng)
}

// ExtendArena adds n more traces to the arena — the sequential-sampling
// hook, allocation-free in steady state: trace samples append to the
// arena's contiguous backing (pre-reserved via Grow) and the plaintext
// buffer lives on the arena.
func ExtendArena(a *power.Arena, v AESVictim, probe *power.Probe, n int, rng *rand.Rand) {
	pt := a.StageInput()
	for i := 0; i < n; i++ {
		rng.Read(pt)
		rec := a.BeginTrace(probe)
		v.EncryptTraced(pt, rec)
		a.EndTrace(pt)
	}
}

// sboxHW[u] is HW(SBox(u)) — the CPA hypothesis table. For guess k and
// plaintext-byte class v the model value is sboxHW[v^k].
var sboxHW [256]int64

// sboxBit0 holds the 128 byte values whose S-box output has bit 0 set —
// the DPA selection function's preimage. For guess k, class v is
// selected iff v^k is in this set.
var sboxBit0 []byte

func init() {
	for u := 0; u < 256; u++ {
		s := softcrypto.SBox(byte(u))
		sboxHW[u] = int64(power.HW(uint32(s)))
		if s&1 == 1 {
			sboxBit0 = append(sboxBit0, byte(u))
		}
	}
}

// DPAByteArena recovers one key byte with the batched difference-of-means
// distinguisher — bit-identical to DPAByte on the same recorded traces.
func DPAByteArena(a *power.Arena, byteIdx int) (byte, float64) {
	cs := a.ClassSumsFor(byteIdx)
	bestK, bestD := byte(0), -1.0
	var selected [256]bool
	for k := 0; k < 256; k++ {
		for i := range selected {
			selected[i] = false
		}
		for _, u := range sboxBit0 {
			selected[u^byte(k)] = true
		}
		if d := cs.DifferenceOfMeans(&selected); d > bestD {
			bestK, bestD = byte(k), d
		}
	}
	return bestK, bestD
}

// DPAKeyArena recovers all 16 key bytes with the batched distinguisher.
func DPAKeyArena(a *power.Arena) [16]byte {
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[i], _ = DPAByteArena(a, i)
	}
	return out
}

// CPAByteArena recovers one key byte by batched Pearson correlation
// against the HW(SBox(pt^k)) hypothesis — bit-identical to CPAByte on
// the same recorded traces.
func CPAByteArena(a *power.Arena, byteIdx int) (byte, float64) {
	cs := a.ClassSumsFor(byteIdx)
	bestK, bestC := byte(0), -1.0
	var hyp [256]int64
	for k := 0; k < 256; k++ {
		for v := 0; v < 256; v++ {
			hyp[v] = sboxHW[v^k]
		}
		if c := cs.MaxAbsPearson(&hyp); c > bestC {
			bestK, bestC = byte(k), c
		}
	}
	return bestK, bestC
}

// CPAKeyArena recovers all 16 key bytes with the batched distinguisher.
func CPAKeyArena(a *power.Arena) [16]byte {
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[i], _ = CPAByteArena(a, i)
	}
	return out
}
