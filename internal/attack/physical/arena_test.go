package physical

import (
	"math"
	"math/rand"
	"testing"

	"github.com/intrust-sim/intrust/internal/power"
)

// collectBoth records the same attack campaign through both capture
// paths: fresh victims and probes with identical seeds, one shared
// plaintext stream shape (separate rand.Rand at the same seed).
func collectBoth(t *testing.T, key []byte, sigma float64, jitter, n int) (*power.TraceSet, *power.Arena) {
	t.Helper()
	mkProbe := func() *power.Probe {
		p := power.PowerProbe(sigma, 7)
		p.JitterMax = jitter
		return p
	}
	vNaive, err := NewUnprotectedAES(key)
	if err != nil {
		t.Fatal(err)
	}
	vArena, err := NewUnprotectedAES(key)
	if err != nil {
		t.Fatal(err)
	}
	ts := CollectTraces(vNaive, mkProbe(), n, rand.New(rand.NewSource(99)))
	a := power.NewArena(16)
	CollectArena(a, vArena, mkProbe(), n, rand.New(rand.NewSource(99)))
	return ts, a
}

// TestArenaAttackEquivalence pins the full distinguisher stack: the
// batched arena DPA and CPA return the same recovered byte AND the same
// statistic bits as the naive reference on the same campaign.
func TestArenaAttackEquivalence(t *testing.T) {
	key := []byte("sixteen byte key")
	for _, tc := range []struct {
		name   string
		sigma  float64
		jitter int
	}{
		{"clean", 0.5, 0},
		{"jitter", 1.0, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts, a := collectBoth(t, key, tc.sigma, tc.jitter, 300)
			for _, byteIdx := range []int{0, 7, 15} {
				nk, nd := DPAByte(ts, byteIdx)
				ak, ad := DPAByteArena(a, byteIdx)
				if nk != ak || math.Float64bits(nd) != math.Float64bits(ad) {
					t.Errorf("DPA byte %d: naive (%#02x, %v) != arena (%#02x, %v)",
						byteIdx, nk, nd, ak, ad)
				}
				nk, nc := CPAByte(ts, byteIdx)
				ak, ac := CPAByteArena(a, byteIdx)
				if nk != ak || math.Float64bits(nc) != math.Float64bits(ac) {
					t.Errorf("CPA byte %d: naive (%#02x, %v) != arena (%#02x, %v)",
						byteIdx, nk, nc, ak, ac)
				}
			}
		})
	}
}

// TestArenaKeyRecovery pins that the batched path actually breaks the
// unprotected victim — full 16-byte CPA recovery at a realistic budget.
func TestArenaKeyRecovery(t *testing.T) {
	key := []byte("sixteen byte key")
	v, err := NewUnprotectedAES(key)
	if err != nil {
		t.Fatal(err)
	}
	a := power.NewArena(16)
	CollectArena(a, v, power.PowerProbe(0.5, 7), 400, rand.New(rand.NewSource(3)))
	if got := CorrectBytes(CPAKeyArena(a), key); got != 16 {
		t.Fatalf("arena CPA recovered %d/16 key bytes", got)
	}
	if got := CorrectBytes(DPAKeyArena(a), key); got < 12 {
		t.Fatalf("arena DPA recovered %d/16 key bytes, want >= 12", got)
	}
}

// TestExtendArenaZeroAlloc is the alloc-regression pin for the adaptive
// escalation path: after Grow pre-reserves the backing, an Extend pass —
// plaintext generation, AES victim, probe noise, quantized capture —
// touches the heap zero times.
func TestExtendArenaZeroAlloc(t *testing.T) {
	v, err := NewUnprotectedAES([]byte("sixteen byte key"))
	if err != nil {
		t.Fatal(err)
	}
	probe := power.PowerProbe(0.8, 7)
	rng := rand.New(rand.NewSource(5))
	a := power.NewArena(16)

	const perPass, passes = 32, 20
	CollectArena(a, v, probe, perPass, rng) // warm victim, probe RNGs, arena
	a.Grow((passes+2)*perPass, 160)

	allocs := testing.AllocsPerRun(passes, func() {
		ExtendArena(a, v, probe, perPass, rng)
	})
	if allocs != 0 {
		t.Fatalf("ExtendArena allocated %.1f objects/pass, want 0", allocs)
	}
}

// TestArenaAnalysisZeroAlloc pins the regrade path: once the arena's
// caches exist, a full 256-guess DPA+CPA regrade of one byte does not
// allocate — the per-checkpoint analysis cost that was triggering GC
// storms in the adaptive sweep.
func TestArenaAnalysisZeroAlloc(t *testing.T) {
	v, err := NewUnprotectedAES([]byte("sixteen byte key"))
	if err != nil {
		t.Fatal(err)
	}
	a := power.NewArena(16)
	CollectArena(a, v, power.PowerProbe(0.8, 7), 200, rand.New(rand.NewSource(5)))
	DPAByteArena(a, 0) // build grouping + scratch
	CPAByteArena(a, 0) // build column caches + scratch

	allocs := testing.AllocsPerRun(10, func() {
		DPAByteArena(a, 0)
		CPAByteArena(a, 0)
	})
	if allocs != 0 {
		t.Fatalf("arena regrade allocated %.1f objects/run, want 0", allocs)
	}
}
