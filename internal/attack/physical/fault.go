package physical

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/softcrypto"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
)

// Bellcore runs the Boneh–DeMillo–Lipton attack ([5]): one correct and one
// faulty CRT signature of the same message factor the modulus.
func Bellcore(n, good, bad *big.Int) (p, q *big.Int, ok bool) {
	diff := new(big.Int).Sub(good, bad)
	g := new(big.Int).GCD(nil, nil, new(big.Int).Abs(diff), n)
	if g.Cmp(big.NewInt(1)) <= 0 || g.Cmp(n) == 0 {
		return nil, nil, false
	}
	return new(big.Int).Div(n, g), g, true
}

// BellcoreSingle is the variant needing only the faulty signature and the
// message: gcd(sig^e - m, n).
func BellcoreSingle(n, e, msg, bad *big.Int) (p, q *big.Int, ok bool) {
	v := new(big.Int).Exp(bad, e, n)
	v.Sub(v, msg)
	v.Mod(v, n)
	g := new(big.Int).GCD(nil, nil, v, n)
	if g.Cmp(big.NewInt(1)) <= 0 || g.Cmp(n) == 0 {
		return nil, nil, false
	}
	return new(big.Int).Div(n, g), g, true
}

// GlitchKind enumerates the injection mechanisms of Section 5: "glitches
// can be induced through the clock signal, the power supply, EM pulses or
// optical signals".
type GlitchKind uint8

const (
	GlitchClock GlitchKind = iota
	GlitchVoltage
	GlitchEM
	GlitchOptical
)

func (k GlitchKind) String() string {
	switch k {
	case GlitchClock:
		return "clock"
	case GlitchVoltage:
		return "voltage"
	case GlitchEM:
		return "em"
	case GlitchOptical:
		return "optical"
	}
	return "glitch?"
}

// glitchProfile parameterizes the fault/crash response per mechanism:
// below threshold nothing happens; around the sweet spot exploitable
// single-byte faults appear; beyond it the device mostly crashes/resets.
type glitchProfile struct {
	sweetSpot float64
	width     float64
	crashRate float64 // crash growth beyond the sweet spot
	peak      float64 // max exploitable-fault probability
}

var profiles = map[GlitchKind]glitchProfile{
	GlitchClock:   {sweetSpot: 0.55, width: 0.10, crashRate: 3.0, peak: 0.5},
	GlitchVoltage: {sweetSpot: 0.60, width: 0.12, crashRate: 2.5, peak: 0.45},
	GlitchEM:      {sweetSpot: 0.70, width: 0.08, crashRate: 4.0, peak: 0.35},
	GlitchOptical: {sweetSpot: 0.75, width: 0.05, crashRate: 5.0, peak: 0.6},
}

// GlitchResponse returns (exploitable-fault probability, crash
// probability) for a mechanism at normalized strength s in [0,1].
func GlitchResponse(kind GlitchKind, s float64) (faultProb, crashProb float64) {
	p := profiles[kind]
	faultProb = p.peak * math.Exp(-((s-p.sweetSpot)*(s-p.sweetSpot))/(2*p.width*p.width))
	if s > p.sweetSpot {
		crashProb = math.Min(1, (s-p.sweetSpot)*p.crashRate)
	}
	if s < p.sweetSpot-2*p.width {
		faultProb = 0
	}
	return faultProb, crashProb
}

// CampaignPoint is one parameter setting's outcome statistics.
type CampaignPoint struct {
	Kind     GlitchKind
	Strength float64
	Faults   int
	Crashes  int
	Silent   int
	Trials   int
}

// GlitchCampaign sweeps injection strength and tallies outcomes — the
// parameter-search phase every fault attack starts with.
func GlitchCampaign(kind GlitchKind, steps, trialsPer int, rng *rand.Rand) []CampaignPoint {
	out := make([]CampaignPoint, 0, steps)
	for i := 0; i < steps; i++ {
		s := float64(i) / float64(steps-1)
		fp, cp := GlitchResponse(kind, s)
		pt := CampaignPoint{Kind: kind, Strength: s, Trials: trialsPer}
		for t := 0; t < trialsPer; t++ {
			r := rng.Float64()
			switch {
			case r < cp:
				pt.Crashes++
			case r < cp+fp:
				pt.Faults++
			default:
				pt.Silent++
			}
		}
		out = append(out, pt)
	}
	return out
}

// BestGlitchStrength returns the strength with the most exploitable faults.
func BestGlitchStrength(points []CampaignPoint) (float64, int) {
	best, faults := 0.0, -1
	for _, p := range points {
		if p.Faults > faults {
			best, faults = p.Strength, p.Faults
		}
	}
	return best, faults
}

// CLKSCREWResult reports the end-to-end CLKSCREW run.
type CLKSCREWResult struct {
	OverclockMHz  int
	FaultProb     float64
	Invocations   int
	UsableFaults  int
	RecoveredKey  [16]byte
	Success       bool
	NominalFaults int // faults observed at the nominal operating point
}

// CLKSCREW mounts the Tang–Sethumadhavan–Stolfo attack on a TrustZone
// platform: the normal-world kernel raises the core frequency beyond the
// voltage's safe margin through the (unchecked, software-exposed) DVFS
// regulator, while repeatedly invoking a secure-world AES service. Timing
// faults corrupt the round-9 state; the collected faulty ciphertexts feed
// the Piret–Quisquater DFA, recovering the secure world's key without any
// access-control violation.
func CLKSCREW(seed int64) (*CLKSCREWResult, error) {
	return CLKSCREWDefended(seed, false)
}

// CLKSCREWDefended is CLKSCREW against a secure world whose clock is
// optionally protected by random jitter — the fault-attack countermeasure
// of Section 5 (random clock jitter / unstable internal clocks). The
// jittered clock displaces the timing-violation instant away from the
// attacker-targeted final-round datapath: faults land in a random earlier
// round, diffuse through the remaining rounds, and fail the DFA's
// single-byte round-9 fault model, so the usable-fault filter starves
// (reported as a "starved of faults" error with the partial result).
func CLKSCREWDefended(seed int64, clockJitter bool) (*CLKSCREWResult, error) {
	p := platform.NewMobile()
	// The platform lives only for this campaign; its result carries no
	// references into it, so the DRAM backing can go back to the pool.
	defer p.Mem.Release()
	tz, err := trustzone.New(p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// The secure world holds an AES key and offers an encryption service.
	secretKey := make([]byte, 16)
	rng.Read(secretKey)
	rk, err := softcrypto.ExpandKey(secretKey)
	if err != nil {
		return nil, err
	}
	const ctBuf = 0x9000 // normal-world buffer the service writes to
	plaintext := []byte("CLKSCREW test pt")
	svc := func(c *cpu.CPU, args [3]uint32) [2]uint32 {
		// The service's datapath experiences timing faults at the current
		// operating point. A fault corrupts one random byte of the
		// round-9 state (the single-byte fault model the DFA consumes;
		// faults landing elsewhere are modelled by the usable-fault
		// filter discarding them).
		var hooks *softcrypto.Hooks
		if fp := c.DVFS.FaultProb(); fp > 0 && rng.Float64() < fp {
			pos, xor := rng.Intn(16), byte(1+rng.Intn(255))
			// With clock jitter the violation instant is unpredictable:
			// the fault hits a random earlier round and diffuses into a
			// multi-byte pattern the DFA cannot use.
			faultRound := 9
			if clockJitter {
				faultRound = rng.Intn(9)
			}
			hooks = &softcrypto.Hooks{RoundIn: func(round int, s *[16]byte) {
				if round == faultRound {
					s[pos] ^= xor
				}
			}}
		}
		ct := softcrypto.Encrypt(&rk, plaintext, hooks)
		if err := p.Mem.WriteRaw(ctBuf, ct[:]); err != nil {
			return [2]uint32{1, 0}
		}
		return [2]uint32{0, 0}
	}
	tz.RegisterService(0x100, svc)

	core := p.Core(0)
	res := &CLKSCREWResult{}
	// Attacker phase 0: clean ciphertext at the nominal operating point.
	invoke := func() ([16]byte, error) {
		prog := isa.MustAssemble("smc 0x100\nhlt")
		if err := p.Mem.LoadProgram(prog); err != nil {
			return [16]byte{}, err
		}
		core.Halted = false
		core.PC = prog.Entry
		core.Priv = isa.PrivSuper // normal-world kernel
		if _, err := core.Run(1000); err != nil {
			return [16]byte{}, err
		}
		var ct [16]byte
		if err := p.Mem.ReadRaw(ctBuf, ct[:]); err != nil {
			return ct, err
		}
		return ct, nil
	}
	clean, err := invoke()
	if err != nil {
		return nil, err
	}
	// Sanity: nominal point produces no faults.
	for i := 0; i < 20; i++ {
		ct, err := invoke()
		if err != nil {
			return nil, err
		}
		if ct != clean {
			res.NominalFaults++
		}
	}
	// Attacker phase 1: overclock through the kernel-accessible regulator.
	oc := core.DVFS.MaxSafeFreqMHz(core.DVFS.VoltMV) + 120
	core.SetCSR(isa.CSRFreq, uint32(oc))
	res.OverclockMHz = oc
	res.FaultProb = core.DVFS.FaultProb()
	// Attacker phase 2: collect usable faulty ciphertexts per column.
	perColumn := map[int][][16]byte{}
	for res.Invocations = 0; res.Invocations < 4000; res.Invocations++ {
		done := true
		for c := 0; c < 4; c++ {
			if len(perColumn[c]) < 2 {
				done = false
			}
		}
		if done {
			break
		}
		ct, err := invoke()
		if err != nil {
			return nil, err
		}
		if ct == clean {
			continue
		}
		col := FaultedColumn(clean, ct)
		if col < 0 {
			continue // unusable fault pattern
		}
		if len(perColumn[col]) < 2 {
			perColumn[col] = append(perColumn[col], ct)
			res.UsableFaults++
		}
	}
	// Restore the regulator (cover tracks).
	core.SetCSR(isa.CSRFreq, uint32(core.DVFS.BaseFreqMHz))
	for c := 0; c < 4; c++ {
		if len(perColumn[c]) < 2 {
			return res, fmt.Errorf("physical: CLKSCREW starved of faults for column %d", c)
		}
	}
	// Attacker phase 3: DFA over the collected pairs.
	var k10 [16]byte
	for c := 0; c < 4; c++ {
		var inter map[[4]byte]bool
		for _, faulty := range perColumn[c] {
			cands := columnCandidates(clean, faulty, c)
			if inter == nil {
				inter = cands
				continue
			}
			next := map[[4]byte]bool{}
			for t := range cands {
				if inter[t] {
					next[t] = true
				}
			}
			inter = next
		}
		if len(inter) != 1 {
			return res, fmt.Errorf("physical: CLKSCREW DFA ambiguous for column %d (%d candidates)", c, len(inter))
		}
		for t := range inter {
			for r := 0; r < 4; r++ {
				k10[softcrypto.ShiftRowsIndex(r, c)] = t[r]
			}
		}
	}
	res.RecoveredKey = softcrypto.InvertKeySchedule(k10)
	res.Success = true
	for i := range secretKey {
		if res.RecoveredKey[i] != secretKey[i] {
			res.Success = false
		}
	}
	return res, nil
}
