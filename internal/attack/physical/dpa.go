package physical

import (
	"math/rand"

	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/softcrypto"
)

// AESVictim produces power traces for chosen plaintexts. Implementations
// wrap the unprotected, masked and hiding-protected AES variants.
type AESVictim interface {
	// EncryptTraced encrypts pt while leaking into rec.
	EncryptTraced(pt []byte, rec *power.Recorder) [16]byte
}

// UnprotectedAES leaks every S-box output of the reference implementation.
type UnprotectedAES struct {
	rk softcrypto.RoundKeys
	// hooks and rec are built once at construction so EncryptTraced stays
	// allocation-free — the arena collection path pins AllocsPerRun==0
	// across adaptive Extend passes.
	hooks *softcrypto.Hooks
	rec   *power.Recorder
	st    [16]byte
}

// NewUnprotectedAES builds the victim.
func NewUnprotectedAES(key []byte) (*UnprotectedAES, error) {
	rk, err := softcrypto.ExpandKey(key)
	if err != nil {
		return nil, err
	}
	u := &UnprotectedAES{rk: rk}
	u.hooks = &softcrypto.Hooks{SBoxOut: func(round, i int, v byte) {
		if u.rec != nil {
			u.rec.Leak(uint32(v))
		}
	}}
	return u, nil
}

// EncryptTraced implements AESVictim.
func (u *UnprotectedAES) EncryptTraced(pt []byte, rec *power.Recorder) [16]byte {
	u.rec = rec
	defer func() { u.rec = nil }()
	softcrypto.EncryptTo(&u.st, &u.rk, pt, u.hooks)
	return u.st
}

// MaskedAESVictim leaks the masked implementation's intermediates.
type MaskedAESVictim struct {
	m   *softcrypto.MaskedAES
	rec *power.Recorder
}

// NewMaskedAESVictim builds the masking-countermeasure victim.
func NewMaskedAESVictim(key []byte, seed int64) (*MaskedAESVictim, error) {
	m, err := softcrypto.NewMaskedAES(key, seed)
	if err != nil {
		return nil, err
	}
	v := &MaskedAESVictim{m: m}
	m.Hooks = &softcrypto.Hooks{SBoxOut: func(round, i int, val byte) {
		if v.rec != nil {
			v.rec.Leak(uint32(val))
		}
	}}
	return v, nil
}

// EncryptTraced implements AESVictim.
func (v *MaskedAESVictim) EncryptTraced(pt []byte, rec *power.Recorder) [16]byte {
	v.rec = rec
	defer func() { v.rec = nil }()
	return v.m.Encrypt(pt)
}

// CollectTraces gathers n traces of random plaintexts on the given probe.
func CollectTraces(v AESVictim, probe *power.Probe, n int, rng *rand.Rand) *power.TraceSet {
	ts := &power.TraceSet{}
	ExtendTraces(ts, v, probe, n, rng)
	return ts
}

// ExtendTraces adds n more traces to an existing set — the sequential
// sampling hook: extending a set in increments consumes the RNG and the
// probe's noise stream exactly like one larger CollectTraces call, so the
// cumulative statistic at any checkpoint matches a fixed-budget
// collection of the same size.
func ExtendTraces(ts *power.TraceSet, v AESVictim, probe *power.Probe, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		pt := make([]byte, 16)
		rng.Read(pt)
		rec := power.NewRecorder(probe)
		v.EncryptTraced(pt, rec)
		ts.Add(rec.Samples, pt)
	}
}

// CPAByte recovers one key byte by Pearson correlation against the
// HW(SBox(pt^k)) hypothesis.
func CPAByte(ts *power.TraceSet, byteIdx int) (byte, float64) {
	bestK, bestC := byte(0), -1.0
	h := make([]float64, ts.Len())
	for k := 0; k < 256; k++ {
		for i := range h {
			h[i] = power.HW(uint32(softcrypto.SBox(ts.Inputs[i][byteIdx] ^ byte(k))))
		}
		if c := ts.MaxAbsPearson(h); c > bestC {
			bestK, bestC = byte(k), c
		}
	}
	return bestK, bestC
}

// CPAKey recovers all 16 key bytes.
func CPAKey(ts *power.TraceSet) [16]byte {
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[i], _ = CPAByte(ts, i)
	}
	return out
}

// DPAByte recovers one key byte with Kocher's original difference-of-means
// distinguisher on bit 0 of the S-box output.
//
// The partition of a guess k depends on trace i only through the
// plaintext byte ts.Inputs[i][byteIdx], so the traces are grouped into
// per-byte-value class sums once and each of the 256 guesses combines at
// most 256 presummed vectors instead of re-walking the whole trace
// matrix — the same distinguisher at a fraction of the arithmetic.
func DPAByte(ts *power.TraceSet, byteIdx int) (byte, float64) {
	cs := ts.ClassSums(func(i int) uint8 { return ts.Inputs[i][byteIdx] })
	bestK, bestD := byte(0), -1.0
	for k := 0; k < 256; k++ {
		d := cs.DifferenceOfMeans(func(v uint8) bool {
			return softcrypto.SBox(v^byte(k))&1 == 1
		})
		if d > bestD {
			bestK, bestD = byte(k), d
		}
	}
	return bestK, bestD
}

// DPAKey recovers all 16 key bytes with difference of means.
func DPAKey(ts *power.TraceSet) [16]byte {
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[i], _ = DPAByte(ts, i)
	}
	return out
}

// CorrectBytes counts matching bytes between a recovered and true key.
func CorrectBytes(got [16]byte, want []byte) int {
	n := 0
	for i := range got {
		if got[i] == want[i] {
			n++
		}
	}
	return n
}

// TracesToDisclosure doubles the trace budget until CPA recovers the full
// key (or the cap is hit) and returns the budget needed — the standard
// countermeasure-strength metric.
func TracesToDisclosure(v AESVictim, probe *power.Probe, key []byte, cap int, rng *rand.Rand) (int, bool) {
	for n := 32; n <= cap; n *= 2 {
		ts := CollectTraces(v, probe, n, rng)
		if CorrectBytes(CPAKey(ts), key) == 16 {
			return n, true
		}
	}
	return cap, false
}
