package physical

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/intrust-sim/intrust/internal/softcrypto"
)

// Property: the Piret–Quisquater key filter recovers the correct column
// key bytes for arbitrary keys and arbitrary nonzero fault values.
func TestDFAColumnCandidatesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		key := make([]byte, 16)
		rng.Read(key)
		rk := softcrypto.MustExpandKey(key)
		pt := make([]byte, 16)
		rng.Read(pt)
		clean := softcrypto.Encrypt(&rk, pt, nil)
		col := rng.Intn(4)
		xor := byte(1 + rng.Intn(255))
		faulty := softcrypto.Encrypt(&rk, pt, &softcrypto.Hooks{
			RoundIn: func(round int, s *[16]byte) {
				if round == 9 {
					s[4*col] ^= xor
				}
			},
		})
		cands := columnCandidates(clean, faulty, col)
		// The true round-10 key bytes for this column must be among the
		// candidates.
		var want [4]byte
		for r := 0; r < 4; r++ {
			want[r] = rk[10][softcrypto.ShiftRowsIndex(r, col)]
		}
		return cands[want]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: FaultedColumn classifies round-9 faults by column and rejects
// fault patterns from other rounds.
func TestFaultedColumnClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	key := make([]byte, 16)
	rng.Read(key)
	rk := softcrypto.MustExpandKey(key)
	pt := make([]byte, 16)
	rng.Read(pt)
	clean := softcrypto.Encrypt(&rk, pt, nil)
	for trial := 0; trial < 40; trial++ {
		pos := rng.Intn(16)
		xor := byte(1 + rng.Intn(255))
		round := 9
		if trial%4 == 0 {
			round = 7 // unusable: fault spreads to all 16 bytes
		}
		faulty := softcrypto.Encrypt(&rk, pt, &softcrypto.Hooks{
			RoundIn: func(r int, s *[16]byte) {
				if r == round {
					s[pos] ^= xor
				}
			},
		})
		col := FaultedColumn(clean, faulty)
		if round == 7 {
			if col != -1 {
				t.Fatalf("round-7 fault classified as column %d", col)
			}
			continue
		}
		// Round-9 fault at state position (r0, c0): lands in output
		// column (c0 - r0) mod 4 after round 9's ShiftRows.
		r0, c0 := pos%4, pos/4
		want := (c0 - r0 + 4) % 4
		if col != want {
			t.Fatalf("round-9 fault at pos %d classified as column %d, want %d", pos, col, want)
		}
	}
}

// Property: DFA recovers arbitrary random keys via the oracle interface.
func TestDFARandomKeysQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		key := make([]byte, 16)
		rng.Read(key)
		oracle, err := NewFaultOracle(key)
		if err != nil {
			return false
		}
		got, _, err := PiretQuisquater(oracle, 2)
		if err != nil {
			return false
		}
		return CorrectBytes(got, key) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}
