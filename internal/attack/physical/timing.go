// Package physical implements the classical physical attacks of Section 5
// against the instrumented victims: Kocher's timing attack on modular
// exponentiation, DPA (difference of means) and CPA (Pearson correlation)
// on AES power traces, the Piret–Quisquater differential fault attack, the
// Bellcore RSA-CRT fault attack, a glitch-parameter campaign model, and
// CLKSCREW end-to-end against a TrustZone secure world — plus the
// countermeasures: constant-time exponentiation, masking, hiding, and
// redundant computation.
package physical

import (
	"math"
	"math/big"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/softcrypto"
)

// TimingSample is one (message, total execution time) observation.
type TimingSample struct {
	Msg  *big.Int
	Time int
}

// CollectTimingSamples runs the square-and-multiply victim on random
// messages and records total times — the attacker's measurement phase.
func CollectTimingSamples(exp, mod *big.Int, n int, rng *rand.Rand) []TimingSample {
	return ExtendTimingSamples(nil, exp, mod, n, rng)
}

// ExtendTimingSamples appends n more measurements to an existing sample
// set — the sequential sampling hook: incremental extension draws the
// same message sequence as one larger CollectTimingSamples call.
func ExtendTimingSamples(samples []TimingSample, exp, mod *big.Int, n int, rng *rand.Rand) []TimingSample {
	for i := 0; i < n; i++ {
		msg := new(big.Int).Rand(rng, mod)
		_, tm := softcrypto.ModExpSquareMultiply(msg, exp, mod)
		samples = append(samples, TimingSample{Msg: msg, Time: tm.Total})
	}
	return samples
}

// CollectLadderSamples is the same measurement against the Montgomery
// ladder countermeasure.
func CollectLadderSamples(exp, mod *big.Int, n int, rng *rand.Rand) []TimingSample {
	out := make([]TimingSample, n)
	for i := range out {
		msg := new(big.Int).Rand(rng, mod)
		_, tm := softcrypto.ModExpLadder(msg, exp, mod)
		out[i] = TimingSample{Msg: msg, Time: tm.Total}
	}
	return out
}

// kocherState tracks the attacker's per-message simulation of the victim's
// intermediate value and predicted cumulative cost for the key prefix
// guessed so far.
type kocherState struct {
	result *big.Int
	cost   float64
}

// KocherTiming recovers a bits-long exponent from timing samples by
// hypothesis testing: for each next bit, simulate both choices for every
// message and keep the one whose predicted cumulative times correlate
// better with the measured totals ([23]).
func KocherTiming(samples []TimingSample, mod *big.Int, bits int) *big.Int {
	states := make([]kocherState, len(samples))
	for i := range states {
		states[i] = kocherState{result: big.NewInt(1)}
	}
	recovered := new(big.Int)
	recovered.SetBit(recovered, bits-1, 1) // MSB of a bits-long exponent is 1
	// Advance all states through the MSB (always a squaring+multiply with
	// result 1 then msg — simulate exactly like the victim).
	advance(states, samples, mod, 1)

	for pos := bits - 2; pos >= 0; pos-- {
		corr1, states1 := tryBit(states, samples, mod, 1)
		corr0, states0 := tryBit(states, samples, mod, 0)
		if corr1 >= corr0 {
			recovered.SetBit(recovered, pos, 1)
			states = states1
		} else {
			states = states0
		}
	}
	return recovered
}

// tryBit simulates one more key bit for every message and returns the
// correlation of predicted cost with measured time.
func tryBit(states []kocherState, samples []TimingSample, mod *big.Int, bit uint) (float64, []kocherState) {
	next := make([]kocherState, len(states))
	for i := range states {
		next[i] = kocherState{result: new(big.Int).Set(states[i].result), cost: states[i].cost}
	}
	advance(next, samples, mod, bit)
	xs := make([]float64, len(next))
	ys := make([]float64, len(next))
	for i := range next {
		xs[i] = next[i].cost
		ys[i] = float64(samples[i].Time)
	}
	return pearson(xs, ys), next
}

// advance applies one square(-and-multiply) step with the same cost model
// as the victim implementation.
func advance(states []kocherState, samples []TimingSample, mod *big.Int, bit uint) {
	half := new(big.Int).Rsh(mod, 1)
	for i := range states {
		s := &states[i]
		s.result.Mul(s.result, s.result)
		s.result.Mod(s.result, mod)
		s.cost += 10
		if s.result.Cmp(half) > 0 {
			s.cost += 3
		}
		if bit == 1 {
			s.result.Mul(s.result, samples[i].Msg)
			s.result.Mod(s.result, mod)
			s.cost += 10
			if s.result.Cmp(half) > 0 {
				s.cost += 3
			}
		}
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	den := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// MatchingBits counts equal bits between two exponents over the low n
// bits — the attack success metric.
func MatchingBits(a, b *big.Int, n int) int {
	m := 0
	for i := 0; i < n; i++ {
		if a.Bit(i) == b.Bit(i) {
			m++
		}
	}
	return m
}
