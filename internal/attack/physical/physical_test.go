package physical

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/softcrypto"
)

func TestKocherTimingRecoversExponent(t *testing.T) {
	mod := big.NewInt(1)
	mod.Lsh(mod, 61)
	mod.Sub(mod, big.NewInt(1))
	exp := big.NewInt(0xB6D5) // 16-bit secret exponent
	rng := rand.New(rand.NewSource(1))
	samples := CollectTimingSamples(exp, mod, 600, rng)
	rec := KocherTiming(samples, mod, exp.BitLen())
	if rec.Cmp(exp) != 0 {
		match := MatchingBits(rec, exp, exp.BitLen())
		t.Fatalf("recovered %#x want %#x (%d/%d bits)", rec, exp, match, exp.BitLen())
	}
}

func TestKocherTimingDefeatedByLadder(t *testing.T) {
	mod := big.NewInt(1)
	mod.Lsh(mod, 61)
	mod.Sub(mod, big.NewInt(1))
	exp := big.NewInt(0xB6D5)
	rng := rand.New(rand.NewSource(2))
	samples := CollectLadderSamples(exp, mod, 600, rng)
	rec := KocherTiming(samples, mod, exp.BitLen())
	if rec.Cmp(exp) == 0 {
		t.Fatal("timing attack succeeded against the Montgomery ladder")
	}
}

var aesKey = []byte("correct horse ba")

func TestCPARecoversFullKey(t *testing.T) {
	v, err := NewUnprotectedAES(aesKey)
	if err != nil {
		t.Fatal(err)
	}
	ts := CollectTraces(v, power.PowerProbe(0.8, 3), 256, rand.New(rand.NewSource(3)))
	got := CPAKey(ts)
	if n := CorrectBytes(got, aesKey); n != 16 {
		t.Fatalf("CPA recovered %d/16 bytes", n)
	}
}

func TestDPARecoversKeyBytes(t *testing.T) {
	v, err := NewUnprotectedAES(aesKey)
	if err != nil {
		t.Fatal(err)
	}
	ts := CollectTraces(v, power.PowerProbe(0.5, 4), 1500, rand.New(rand.NewSource(4)))
	got := DPAKey(ts)
	if n := CorrectBytes(got, aesKey); n < 12 {
		t.Fatalf("DPA recovered only %d/16 bytes", n)
	}
}

func TestEMProbeAlsoWorks(t *testing.T) {
	// EM side channel: weaker coupling, more traces, same result shape.
	v, _ := NewUnprotectedAES(aesKey)
	ts := CollectTraces(v, power.EMProbe(0.8, 5), 1024, rand.New(rand.NewSource(5)))
	got := CPAKey(ts)
	if n := CorrectBytes(got, aesKey); n < 14 {
		t.Fatalf("EM CPA recovered %d/16 bytes", n)
	}
}

func TestMaskingDefeatsFirstOrderCPA(t *testing.T) {
	v, err := NewMaskedAESVictim(aesKey, 99)
	if err != nil {
		t.Fatal(err)
	}
	ts := CollectTraces(v, power.PowerProbe(0.8, 6), 512, rand.New(rand.NewSource(6)))
	got := CPAKey(ts)
	if n := CorrectBytes(got, aesKey); n > 2 {
		t.Fatalf("masked implementation leaked %d/16 bytes to first-order CPA", n)
	}
}

func TestHidingRaisesTraceBudget(t *testing.T) {
	v, _ := NewUnprotectedAES(aesKey)
	rng := rand.New(rand.NewSource(7))
	plain, okPlain := TracesToDisclosure(v, power.PowerProbe(0.8, 8), aesKey, 2048, rng)
	if !okPlain {
		t.Fatal("CPA never recovered the unprotected key")
	}
	hidden := power.PowerProbe(0.8, 9)
	hidden.JitterMax = 6 // random-delay hiding countermeasure
	hiddenN, okHidden := TracesToDisclosure(v, hidden, aesKey, 2048, rng)
	if okHidden && hiddenN <= plain {
		t.Fatalf("hiding did not raise the trace budget: %d (plain) vs %d (hidden)", plain, hiddenN)
	}
}

func TestPiretQuisquaterDFA(t *testing.T) {
	for seed := 0; seed < 3; seed++ {
		key := make([]byte, 16)
		rand.New(rand.NewSource(int64(seed + 100))).Read(key)
		oracle, err := NewFaultOracle(key)
		if err != nil {
			t.Fatal(err)
		}
		got, faults, err := PiretQuisquater(oracle, 2)
		if err != nil {
			t.Fatal(err)
		}
		if CorrectBytes(got, key) != 16 {
			t.Fatalf("DFA recovered wrong key for seed %d", seed)
		}
		if faults != 8 {
			t.Fatalf("faults used = %d, want 8 (2 per column)", faults)
		}
	}
}

func TestDFAStarvedByRedundancy(t *testing.T) {
	key := []byte("redundant aes ky")
	oracle, _ := NewFaultOracle(key)
	protected := RedundantOracle(oracle)
	// Every faulty computation is detected and suppressed.
	released := 0
	for i := 0; i < 20; i++ {
		_, ok := protected([]byte("DFA attack block"), &FaultSpec{Round: 9, Pos: i % 16, XOR: 0x42})
		if ok {
			released++
		}
	}
	if released != 0 {
		t.Fatalf("redundancy released %d faulty ciphertexts", released)
	}
	// Clean computations still work.
	if _, ok := protected([]byte("DFA attack block"), nil); !ok {
		t.Fatal("redundancy blocked a clean computation")
	}
}

func TestBellcoreFactorsModulus(t *testing.T) {
	key, err := softcrypto.GenerateRSA(512)
	if err != nil {
		t.Fatal(err)
	}
	msg := big.NewInt(0xFEEDC0FFEE)
	good := key.SignCRT(msg, nil)
	bad := key.SignCRT(msg, &softcrypto.CRTFault{Half: 0, XORMask: 2})
	p, q, ok := Bellcore(key.N, good, bad)
	if !ok {
		t.Fatal("Bellcore failed")
	}
	if new(big.Int).Mul(p, q).Cmp(key.N) != 0 {
		t.Fatal("factors do not multiply to N")
	}
	// Single-signature variant.
	p2, q2, ok := BellcoreSingle(key.N, key.E, msg, bad)
	if !ok || new(big.Int).Mul(p2, q2).Cmp(key.N) != 0 {
		t.Fatal("single-signature Bellcore failed")
	}
	// No fault, no factorization.
	if _, _, ok := Bellcore(key.N, good, good); ok {
		t.Fatal("Bellcore 'succeeded' without a fault")
	}
}

func TestGlitchCampaignFindsSweetSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kind := range []GlitchKind{GlitchClock, GlitchVoltage, GlitchEM, GlitchOptical} {
		points := GlitchCampaign(kind, 21, 200, rng)
		best, faults := BestGlitchStrength(points)
		if faults <= 0 {
			t.Fatalf("%v: no faults found in campaign", kind)
		}
		want := profiles[kind].sweetSpot
		if best < want-0.15 || best > want+0.15 {
			t.Errorf("%v: sweet spot found at %.2f, expected near %.2f", kind, best, want)
		}
		// Low strengths are silent; extreme strengths mostly crash.
		if points[0].Faults != 0 {
			t.Errorf("%v: faults at zero strength", kind)
		}
		last := points[len(points)-1]
		if last.Crashes < last.Faults {
			t.Errorf("%v: extreme strength should mostly crash (crashes=%d faults=%d)",
				kind, last.Crashes, last.Faults)
		}
	}
}

func TestCLKSCREWEndToEnd(t *testing.T) {
	res, err := CLKSCREW(42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("CLKSCREW did not recover the secure-world key: %+v", res)
	}
	if res.NominalFaults != 0 {
		t.Fatalf("faults at nominal operating point: %d", res.NominalFaults)
	}
	if res.FaultProb <= 0 {
		t.Fatal("overclocked operating point reports zero fault probability")
	}
	if res.UsableFaults < 8 {
		t.Fatalf("usable faults = %d", res.UsableFaults)
	}
}
