package physical

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/softcrypto"
)

// This file implements the Piret–Quisquater differential fault attack
// (CHES'03), the workhorse of glitch-based key recovery against AES
// ([5]'s line of work applied to symmetric ciphers): a single-byte fault
// injected at the input of round 9 spreads through MixColumns into a
// 4-byte ciphertext difference with a structure that filters the last
// round key down to one candidate after about two faulty ciphertexts per
// column.

// mcCoeff is the AES MixColumns matrix.
var mcCoeff = [4][4]byte{
	{2, 3, 1, 1},
	{1, 2, 3, 1},
	{1, 1, 2, 3},
	{3, 1, 1, 2},
}

// FaultOracle produces ciphertexts with an optional single-byte fault
// injected at the input of round `Round` at state position `Pos`.
// Attack code treats it as a black box returning faulty ciphertexts.
type FaultSpec struct {
	Round int
	Pos   int
	XOR   byte
}

// Oracle encrypts a plaintext, optionally injecting a fault.
type Oracle func(pt []byte, fault *FaultSpec) [16]byte

// NewFaultOracle wraps a key into an oracle (the "device under glitch").
func NewFaultOracle(key []byte) (Oracle, error) {
	rk, err := softcrypto.ExpandKey(key)
	if err != nil {
		return nil, err
	}
	return func(pt []byte, fault *FaultSpec) [16]byte {
		var hooks *softcrypto.Hooks
		if fault != nil {
			f := *fault
			hooks = &softcrypto.Hooks{RoundIn: func(round int, s *[16]byte) {
				if round == f.Round {
					s[f.Pos] ^= f.XOR
				}
			}}
		}
		return softcrypto.Encrypt(&rk, pt, hooks)
	}, nil
}

// columnCandidates returns the set of 4-byte round-10 key candidates for
// MixColumns column c consistent with one clean/faulty ciphertext pair.
func columnCandidates(clean, faulty [16]byte, c int) map[[4]byte]bool {
	// Output byte positions of round-10-input column c after ShiftRows.
	var pos [4]int
	for r := 0; r < 4; r++ {
		pos[r] = softcrypto.ShiftRowsIndex(r, c)
	}
	out := map[[4]byte]bool{}
	// The faulted byte sat in some row rf of the column; the S-box output
	// difference was some delta; enumerate both.
	for rf := 0; rf < 4; rf++ {
		for delta := 1; delta < 256; delta++ {
			// Expected round-10-input differences for this (rf, delta).
			var want [4]byte
			for i := 0; i < 4; i++ {
				want[i] = gmulByte(mcCoeff[i][rf], byte(delta))
			}
			// Per-position key candidates.
			var cands [4][]byte
			ok := true
			for i := 0; i < 4; i++ {
				cb, fb := clean[pos[i]], faulty[pos[i]]
				for k := 0; k < 256; k++ {
					d := softcrypto.InvSBox(cb^byte(k)) ^ softcrypto.InvSBox(fb^byte(k))
					if d == want[i] {
						cands[i] = append(cands[i], byte(k))
					}
				}
				if len(cands[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, k0 := range cands[0] {
				for _, k1 := range cands[1] {
					for _, k2 := range cands[2] {
						for _, k3 := range cands[3] {
							out[[4]byte{k0, k1, k2, k3}] = true
						}
					}
				}
			}
		}
	}
	return out
}

func gmulByte(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// FaultedColumn identifies which MixColumns column a faulty ciphertext
// affected by looking at the 4-byte difference pattern; it returns -1 for
// unusable faults (wrong multiplicity — glitches that hit other rounds).
func FaultedColumn(clean, faulty [16]byte) int {
	var diffPos []int
	for i := 0; i < 16; i++ {
		if clean[i] != faulty[i] {
			diffPos = append(diffPos, i)
		}
	}
	if len(diffPos) != 4 {
		return -1
	}
	for c := 0; c < 4; c++ {
		match := 0
		for r := 0; r < 4; r++ {
			p := softcrypto.ShiftRowsIndex(r, c)
			for _, dp := range diffPos {
				if dp == p {
					match++
				}
			}
		}
		if match == 4 {
			return c
		}
	}
	return -1
}

// PiretQuisquater runs the full DFA: for each column it gathers faulty
// ciphertexts until the candidate intersection is a single 4-byte tuple,
// then inverts the key schedule. faultsPerColumn controls the injection
// budget (2 is the published requirement).
func PiretQuisquater(oracle Oracle, faultsPerColumn int) ([16]byte, int, error) {
	pt := []byte("DFA attack block")
	clean := oracle(pt, nil)
	var k10 [16]byte
	faults := 0
	for c := 0; c < 4; c++ {
		// Fault row 0 of the round-9 input column that lands in output
		// column c: input position (0, c) = state index 4c.
		var inter map[[4]byte]bool
		for f := 0; f < faultsPerColumn; f++ {
			faults++
			faulty := oracle(pt, &FaultSpec{Round: 9, Pos: 4 * c, XOR: byte(0x11 + 0x33*f)})
			cands := columnCandidates(clean, faulty, c)
			if inter == nil {
				inter = cands
				continue
			}
			next := map[[4]byte]bool{}
			for t := range cands {
				if inter[t] {
					next[t] = true
				}
			}
			inter = next
		}
		if len(inter) != 1 {
			return k10, faults, fmt.Errorf("physical: DFA column %d left %d candidates (need more faults)", c, len(inter))
		}
		for t := range inter {
			for r := 0; r < 4; r++ {
				k10[softcrypto.ShiftRowsIndex(r, c)] = t[r]
			}
		}
	}
	return softcrypto.InvertKeySchedule(k10), faults, nil
}

// RedundantOracle wraps an oracle with the fault countermeasure: compute
// twice and compare; on mismatch suppress the output (return an error
// marker). DFA is starved of faulty ciphertexts.
func RedundantOracle(o Oracle) func(pt []byte, fault *FaultSpec) ([16]byte, bool) {
	return func(pt []byte, fault *FaultSpec) ([16]byte, bool) {
		a := o(pt, fault)
		b := o(pt, nil) // the second computation is unaffected by the glitch
		if a != b {
			return [16]byte{}, false // fault detected: no output released
		}
		return a, true
	}
}
