package cachesca

import (
	"math/rand"
	"testing"

	"github.com/intrust-sim/intrust/internal/cache"
)

// TestExtendAllocs pins the steady-state allocation count of the
// resumable attacks' sample loops at zero: one Flush+Reload sample walks
// 64 flushes, one encryption and 64 reloads through the hierarchy, and
// none of it may touch the heap now that the plaintext buffers and
// eviction tables live on the run.
func TestExtendAllocs(t *testing.T) {
	hier := func() (*cache.Hierarchy, *cache.Cache) {
		llc := cache.New(cache.Config{Name: "llc", Sets: 1024, Ways: 16, LineSize: 64, HitLatency: 34})
		return &cache.Hierarchy{
			L1I:        cache.New(cache.Config{Name: "l1i", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 2}),
			L1D:        cache.New(cache.Config{Name: "l1d", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 3}),
			LLC:        llc,
			MemLatency: 160,
		}, llc
	}

	t.Run("flush+reload", func(t *testing.T) {
		h, _ := hier()
		v, err := NewVictim(h, []byte("alloc test key16"), 5, 0x40000)
		if err != nil {
			t.Fatal(err)
		}
		run := NewFlushReloadRun(v, 9)
		rng := rand.New(rand.NewSource(1))
		if avg := testing.AllocsPerRun(100, func() {
			run.Extend(1, rng)
		}); avg != 0 {
			t.Errorf("FlushReloadRun.Extend allocates %v objects per sample, want 0", avg)
		}
	})

	t.Run("prime+probe", func(t *testing.T) {
		h, llc := hier()
		v, err := NewVictim(h, []byte("alloc test key16"), 5, 0x40000)
		if err != nil {
			t.Fatal(err)
		}
		run := NewPrimeProbeRun(v, llc, 9)
		rng := rand.New(rand.NewSource(2))
		if avg := testing.AllocsPerRun(100, func() {
			run.Extend(1, rng)
		}); avg != 0 {
			t.Errorf("PrimeProbeRun.Extend allocates %v objects per sample, want 0", avg)
		}
	})

	t.Run("evict+time", func(t *testing.T) {
		h, _ := hier()
		v, err := NewVictim(h, []byte("alloc test key16"), 5, 0x40000)
		if err != nil {
			t.Fatal(err)
		}
		run := NewEvictTimeRun(v)
		rng := rand.New(rand.NewSource(3))
		if avg := testing.AllocsPerRun(100, func() {
			run.Extend(1, rng)
		}); avg != 0 {
			t.Errorf("EvictTimeRun.Extend allocates %v objects per sample, want 0", avg)
		}
	})
}
