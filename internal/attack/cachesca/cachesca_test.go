package cachesca

import (
	"math/rand"
	"testing"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/platform"
)

const (
	victimDomain   = 5
	attackerDomain = 9
	tableBase      = 0x40000
)

func testSetup(t *testing.T) (*Victim, *platform.Platform) {
	t.Helper()
	p := platform.NewServer()
	v, err := NewVictim(p.Core(0).Hier, []byte("sixteen byte key"), victimDomain, tableBase)
	if err != nil {
		t.Fatal(err)
	}
	return v, p
}

func TestFlushReloadRecoversKeyNibbles(t *testing.T) {
	v, _ := testSetup(t)
	res := FlushReload(v, 300, attackerDomain, rand.New(rand.NewSource(1)))
	if !res.Success {
		t.Fatalf("Flush+Reload failed on undefended platform: %v", res)
	}
	if res.NibblesCorrect < 14 {
		t.Fatalf("nibbles = %d", res.NibblesCorrect)
	}
}

func TestPrimeProbeRecoversKeyNibbles(t *testing.T) {
	v, p := testSetup(t)
	res := PrimeProbe(v, p.LLC, 400, attackerDomain, rand.New(rand.NewSource(2)))
	if !res.Success {
		t.Fatalf("Prime+Probe failed on undefended platform: %v", res)
	}
}

func TestEvictTimeRecoversSignal(t *testing.T) {
	v, _ := testSetup(t)
	res := EvictTime(v, 3000, rand.New(rand.NewSource(3)))
	if res.NibblesCorrect < 8 {
		t.Fatalf("Evict+Time too weak: %v", res)
	}
}

func TestPrimeProbeBlockedByWayPartition(t *testing.T) {
	// Sanctum-style isolation modelled as LLC partitioning: victim and
	// attacker confined to disjoint ways.
	v, p := testSetup(t)
	p.LLC.SetPartition(victimDomain, 0x00ff)
	p.LLC.SetPartition(attackerDomain, 0xff00)
	res := PrimeProbe(v, p.LLC, 400, attackerDomain, rand.New(rand.NewSource(4)))
	if res.Success {
		t.Fatalf("Prime+Probe succeeded across partition: %v", res)
	}
}

func TestPrimeProbeBlockedByRandomizedIndex(t *testing.T) {
	v, p := testSetup(t)
	p.LLC.SetRandomizedIndex(victimDomain, 0xfeedface)
	res := PrimeProbe(v, p.LLC, 400, attackerDomain, rand.New(rand.NewSource(5)))
	if res.Success {
		t.Fatalf("Prime+Probe succeeded against randomized mapping: %v", res)
	}
}

func TestPrimeProbeBlockedByCacheExclusion(t *testing.T) {
	// Sanctuary-style: victim table addresses never enter shared levels.
	v, p := testSetup(t)
	p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
		if addr >= tableBase && addr < tableBase+5*tableStride {
			return cache.LevelL1
		}
		return cache.LevelAll
	}
	res := PrimeProbe(v, p.LLC, 400, attackerDomain, rand.New(rand.NewSource(6)))
	if res.Success {
		t.Fatalf("Prime+Probe succeeded despite exclusion: %v", res)
	}
}

func TestFlushReloadBlockedByExclusionPlusFlush(t *testing.T) {
	// Exclusion alone leaves same-core L1 signal; adding flush-on-switch
	// (both Sanctuary and Sanctum do this) removes it. Model the flush by
	// wrapping the victim call — here we emulate with an L1 flush between
	// encrypt and reload, as the architecture performs on exit.
	v, p := testSetup(t)
	rng := rand.New(rand.NewSource(7))
	var sb scoreboard
	threshold := v.hier.HitLatency() + 2
	pt := make([]byte, 16)
	for n := 0; n < 300; n++ {
		rng.Read(pt)
		for tab := 0; tab < 4; tab++ {
			for line := 0; line < linesPerTab; line++ {
				v.hier.FlushAddr(tableBase + uint32(tab)*tableStride + uint32(line*lineSize))
			}
		}
		v.Encrypt(pt)
		p.Core(0).Hier.FlushAll() // enclave-exit hygiene: private + shared
		var hot [4][16]bool
		for tab := 0; tab < 4; tab++ {
			for line := 0; line < linesPerTab; line++ {
				r := v.hier.Data(tableBase+uint32(tab)*tableStride+uint32(line*lineSize), false, attackerDomain)
				hot[tab][line] = r.Latency <= threshold
			}
		}
		for i := 0; i < 16; i++ {
			sb.add(i, pt[i], hot[i%4], 1)
		}
	}
	if sb.grade(v.Key()) >= 14 {
		t.Fatal("flush-on-switch did not stop Flush+Reload")
	}
}

func TestTLBAttackOnSharedTLB(t *testing.T) {
	tlb := cache.NewTLB(32, 4)
	secret := []byte{0xA5, 0x3C, 0x96}
	_, correct := TLBAttack(tlb, secret, 1, 2)
	if correct < len(secret)*8-2 {
		t.Fatalf("TLB attack recovered %d/%d bits", correct, len(secret)*8)
	}
}

func TestTLBAttackNeedsSharedTLB(t *testing.T) {
	// Defense: give the victim a private TLB (per-context TLB
	// partitioning). The attacker probes a TLB the victim never touches;
	// no eviction signal means the attack emits its default guess (0),
	// which carries no information about an all-ones secret.
	sharedByAttackerOnly := cache.NewTLB(32, 4)
	secret := []byte{0xFF, 0xFF} // every true bit is 1
	recovered, correct := tlbAttackWithoutVictim(sharedByAttackerOnly, secret, 2)
	if correct != 0 {
		t.Fatalf("attack recovered %d bits without a shared TLB (recovered=%x)", correct, recovered)
	}
}

// tlbAttackWithoutVictim replays the attacker's half of TLBAttack with the
// victim absent (running on a private TLB).
func tlbAttackWithoutVictim(tlb *cache.TLB, secret []byte, attackerASID int) ([]byte, int) {
	pageA, pageB := uint32(0x100), uint32(0x101)
	out := make([]byte, len(secret))
	for bit := 0; bit < len(secret)*8; bit++ {
		for _, vpn := range []uint32{pageA, pageB} {
			set := tlb.SetIndexOf(vpn)
			for w := 0; w < tlb.Ways(); w++ {
				tlb.Insert(uint32(set)+uint32(w*tlb.Sets()), attackerASID, 1)
			}
		}
		lostA := tlbLost(tlb, pageA, attackerASID)
		lostB := tlbLost(tlb, pageB, attackerASID)
		if lostB && !lostA {
			out[bit/8] |= 1 << (bit % 8)
		}
	}
	correct := 0
	for i := range out {
		for b := 0; b < 8; b++ {
			if out[i]>>b&1 == secret[i]>>b&1 {
				correct++
			}
		}
	}
	return out, correct
}

func TestBranchShadowingRecoversBits(t *testing.T) {
	pred := cpu.NewPredictor(1024, 256, 8)
	secret := []byte{0xC3, 0x5A}
	_, correct := BranchShadow(pred, secret, 40)
	if correct < len(secret)*8-1 {
		t.Fatalf("branch shadowing recovered %d/%d bits", correct, len(secret)*8)
	}
}

func TestBranchShadowingBlockedByPredictorFlush(t *testing.T) {
	// Predictor isolation: flush between victim and attacker.
	pred := cpu.NewPredictor(1024, 256, 8)
	secret := []byte{0xC3}
	out := make([]byte, 1)
	for bit := 0; bit < 8; bit++ {
		b := secret[0] >> bit & 1
		for i := 0; i < 40; i++ {
			pred.UpdateBranch(0x1000, b == 1)
		}
		pred.Flush() // the mitigation
		if pred.PredictBranch(0x1000) {
			out[0] |= 1 << bit
		}
	}
	correct := 0
	for b := 0; b < 8; b++ {
		if out[0]>>b&1 == secret[0]>>b&1 {
			correct++
		}
	}
	if correct == 8 {
		t.Fatal("predictor flush did not degrade branch shadowing")
	}
}

func TestVictimEncryptionCorrectness(t *testing.T) {
	// Instrumentation must not change ciphertexts.
	v, _ := testSetup(t)
	pt := []byte("test plaintext!!")
	ct1 := v.Encrypt(pt)
	ct2, cycles := v.EncryptTimed(pt)
	if ct1 != ct2 {
		t.Fatal("timed encryption differs")
	}
	if cycles <= 0 {
		t.Fatal("no cache cost recorded")
	}
}
