// Package cachesca implements the software cache side-channel attacks of
// Section 4.1 — Evict+Time and Prime+Probe (Osvik–Shamir–Tromer),
// Flush+Reload (Yarom–Falkner), a TLB channel (Gras et al.) and BTB
// branch shadowing (Lee et al.) — against the T-table AES victim, and
// measures them under each architecture's defense: none (SGX, TrustZone),
// LLC partitioning (Sanctum), cache exclusion from shared levels
// (Sanctuary), index randomization, and flush-on-switch.
//
// Key-recovery methodology (first-round attack): in round 1 the T-table
// index for state byte i is pt[i] XOR k[i]. A cache line holds 16 table
// entries, so observing which line was touched yields the upper nibble of
// pt[i]^k[i]; correlating over many known plaintexts recovers the upper
// nibble of every key byte — the classic 64-bit reduction of the OST
// attack.
package cachesca

import (
	"fmt"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/softcrypto"
)

// Geometry constants of the victim tables.
const (
	tableStride = 0x400 // one 1 KiB T-table
	lineSize    = 64
	linesPerTab = tableStride / lineSize // 16
	entriesLine = lineSize / 4           // 16 table entries per line
)

// Victim is an AES encryption service under cache observation. The
// default (T-table) implementation's table lookups travel through the
// simulated cache hierarchy, tagged with the victim's domain; the
// constant-time implementation (NewCTVictim) performs no secret-dependent
// memory access at all, which is exactly the countermeasure's point.
type Victim struct {
	encrypt func(pt []byte) [16]byte
	hier    *cache.Hierarchy
	domain  int
	base    uint32 // T0 base; T1..T3 and the S-box follow at tableStride
	key     []byte

	// OnSwitch, when non-nil, runs after every encryption — the hook the
	// flush-on-switch defense (paper §4.1) uses to model cache hygiene on
	// the enclave context switch back to the attacker.
	OnSwitch func()

	// lastCycles accumulates lookup latency of the last encryption.
	lastCycles int
}

// NewVictim places the victim's tables at base in the simulated address
// space and wires the lookup hook.
func NewVictim(h *cache.Hierarchy, key []byte, domain int, base uint32) (*Victim, error) {
	ta, err := softcrypto.NewTableAES(key)
	if err != nil {
		return nil, err
	}
	v := &Victim{hier: h, domain: domain, base: base, key: key}
	ta.Hook = func(table int, idx byte) {
		r := h.Data(v.TableLineAddr(table, idx), false, domain)
		v.lastCycles += r.Latency
	}
	v.encrypt = ta.Encrypt
	return v, nil
}

// NewCTVictim builds a constant-time AES victim (bitsliced-style S-box
// computation, softcrypto.CTAES): same service interface, but no
// secret-indexed table lookups reach the cache hierarchy, so the §4.1
// cache channels have nothing to observe.
func NewCTVictim(h *cache.Hierarchy, key []byte, domain int, base uint32) (*Victim, error) {
	ct, err := softcrypto.NewCTAES(key)
	if err != nil {
		return nil, err
	}
	return &Victim{encrypt: ct.Encrypt, hier: h, domain: domain, base: base, key: key}, nil
}

// TableLineAddr returns the simulated address of a table entry.
func (v *Victim) TableLineAddr(table int, idx byte) uint32 {
	return v.base + uint32(table)*tableStride + uint32(idx)*4
}

// Encrypt runs one encryption, driving the cache.
func (v *Victim) Encrypt(pt []byte) [16]byte {
	v.lastCycles = 0
	ct := v.encrypt(pt)
	if v.OnSwitch != nil {
		v.OnSwitch()
	}
	return ct
}

// EncryptTimed runs one encryption and reports its cache latency — the
// externally observable execution time Evict+Time needs. The OnSwitch
// hook runs after the latency is captured: the context-switch hygiene is
// not part of the victim's observable compute time.
func (v *Victim) EncryptTimed(pt []byte) ([16]byte, int) {
	v.lastCycles = 0
	ct := v.encrypt(pt)
	cycles := v.lastCycles
	if v.OnSwitch != nil {
		v.OnSwitch()
	}
	return ct, cycles
}

// Key exposes the true key for scoring.
func (v *Victim) Key() []byte { return v.key }

// Result reports a key-recovery attempt.
type Result struct {
	Attack         string
	Defense        string
	Samples        int
	NibblesCorrect int // of 16 upper nibbles
	Success        bool
}

func (r Result) String() string {
	defense := r.Defense
	if defense == "" {
		defense = "no defense"
	}
	return fmt.Sprintf("%-14s vs %-18s: %2d/16 key nibbles after %d samples (success=%v)",
		r.Attack, defense, r.NibblesCorrect, r.Samples, r.Success)
}

// score tallies per-byte guesses: counts[i][line] accumulates evidence
// that T-line `line` was hot when the plaintext byte was pt[i].
type scoreboard struct {
	counts [16][16]float64
}

// add credits all key guesses consistent with an observed hot line.
func (s *scoreboard) add(byteIdx int, ptByte byte, hot [16]bool, weight float64) {
	for line := 0; line < 16; line++ {
		if !hot[line] {
			continue
		}
		// Key upper nibble consistent with this hot line:
		// (pt ^ k) >> 4 == line  =>  k_hi == line ^ (pt >> 4).
		s.counts[byteIdx][line^int(ptByte>>4)] += weight
	}
}

// best returns the most likely upper nibble for a key byte.
func (s *scoreboard) best(byteIdx int) int {
	bi, bv := 0, -1.0
	for n := 0; n < 16; n++ {
		if s.counts[byteIdx][n] > bv {
			bi, bv = n, s.counts[byteIdx][n]
		}
	}
	return bi
}

func (s *scoreboard) grade(key []byte) int {
	correct := 0
	for i := 0; i < 16; i++ {
		if s.best(i) == int(key[i]>>4) {
			correct++
		}
	}
	return correct
}

// FlushReloadRun is a resumable Flush+Reload attack: Extend adds samples
// to the cumulative scoreboard and Result grades what has been gathered
// so far. Extending a run in increments consumes the RNG exactly like one
// larger FlushReload call, so sequential sampling is bit-compatible with
// the fixed-budget measurement.
type FlushReloadRun struct {
	v         *Victim
	attacker  int
	threshold int
	sb        scoreboard
	samples   int
	pt        [16]byte // reused plaintext buffer; one draw per sample
}

// NewFlushReloadRun prepares the attack: the attacker shares the table
// pages with the victim (shared library / page dedup), flushes the lines,
// lets the victim encrypt, and reloads each line timing the access.
func NewFlushReloadRun(v *Victim, attackerDomain int) *FlushReloadRun {
	return &FlushReloadRun{v: v, attacker: attackerDomain, threshold: v.hier.HitLatency() + 2}
}

// Extend gathers n more samples.
func (fr *FlushReloadRun) Extend(n int, rng *rand.Rand) {
	v := fr.v
	pt := fr.pt[:]
	for ; n > 0; n-- {
		rng.Read(pt)
		// Flush every line of all four T-tables.
		for tab := 0; tab < 4; tab++ {
			for line := 0; line < linesPerTab; line++ {
				v.hier.FlushAddr(v.base + uint32(tab)*tableStride + uint32(line*lineSize))
			}
		}
		v.Encrypt(pt)
		// Reload, one table per state byte class.
		var hot [4][16]bool
		for tab := 0; tab < 4; tab++ {
			for line := 0; line < linesPerTab; line++ {
				r := v.hier.Data(v.base+uint32(tab)*tableStride+uint32(line*lineSize), false, fr.attacker)
				hot[tab][line] = r.Latency <= fr.threshold
			}
		}
		for i := 0; i < 16; i++ {
			fr.sb.add(i, pt[i], hot[i%4], 1)
		}
		fr.samples++
	}
}

// Result grades the samples gathered so far.
func (fr *FlushReloadRun) Result() Result {
	correct := fr.sb.grade(fr.v.key)
	return Result{Attack: "flush+reload", Samples: fr.samples,
		NibblesCorrect: correct, Success: correct >= 14}
}

// FlushReload runs the Flush+Reload attack at a fixed sample budget.
func FlushReload(v *Victim, samples int, attackerDomain int, rng *rand.Rand) Result {
	run := NewFlushReloadRun(v, attackerDomain)
	run.Extend(samples, rng)
	return run.Result()
}

// PrimeProbeRun is a resumable Prime+Probe attack through the shared LLC
// (see FlushReloadRun for the Extend/Result contract).
type PrimeProbeRun struct {
	v        *Victim
	llc      *cache.Cache
	attacker int
	sb       scoreboard
	samples  int
	pt       [16]byte // reused plaintext buffer; one draw per sample

	// ev holds the precomputed per-table-line eviction sets (4 tables x
	// 16 lines, Ways addresses each) in one contiguous backing array.
	// The addresses depend only on the LLC geometry and the victim's
	// table base, so they are derived once per run instead of twice per
	// line per sample in the innermost loop.
	ev [4 * linesPerTab][]uint32
}

// NewPrimeProbeRun prepares the attack: the attacker fills the LLC sets
// backing the victim's table lines with its own data, lets the victim
// encrypt, then re-touches its data counting evictions. No shared memory
// needed.
func NewPrimeProbeRun(v *Victim, llc *cache.Cache, attackerDomain int) *PrimeProbeRun {
	pp := &PrimeProbeRun{v: v, llc: llc, attacker: attackerDomain}
	cfg := llc.Config()
	stride := uint32(cfg.Sets * cfg.LineSize)
	const attackerBase = uint32(0x2000000)
	backing := make([]uint32, 4*linesPerTab*cfg.Ways)
	for tab := 0; tab < 4; tab++ {
		for line := 0; line < linesPerTab; line++ {
			// Attacker addresses that map (in the attacker's view) to the
			// same LLC set as the victim's table line.
			target := v.base + uint32(tab)*tableStride + uint32(line*lineSize)
			setOff := target % stride
			set := backing[:cfg.Ways:cfg.Ways]
			backing = backing[cfg.Ways:]
			for w := 0; w < cfg.Ways; w++ {
				set[w] = attackerBase + uint32(w)*stride + setOff
			}
			pp.ev[tab*linesPerTab+line] = set
		}
	}
	return pp
}

// Extend gathers n more samples.
func (pp *PrimeProbeRun) Extend(n int, rng *rand.Rand) {
	v, llc := pp.v, pp.llc
	pt := pp.pt[:]
	for ; n > 0; n-- {
		rng.Read(pt)
		// Prime all table-line sets.
		for tab := 0; tab < 4; tab++ {
			for line := 0; line < linesPerTab; line++ {
				for _, a := range pp.ev[tab*linesPerTab+line] {
					llc.Access(a, false, pp.attacker)
				}
			}
		}
		v.Encrypt(pt)
		// Probe: a miss on our own line means the victim displaced us.
		var hot [4][16]bool
		for tab := 0; tab < 4; tab++ {
			for line := 0; line < linesPerTab; line++ {
				misses := 0
				for _, a := range pp.ev[tab*linesPerTab+line] {
					if !llc.Access(a, false, pp.attacker) {
						misses++
					}
				}
				hot[tab][line] = misses > 0
			}
		}
		for i := 0; i < 16; i++ {
			pp.sb.add(i, pt[i], hot[i%4], 1)
		}
		pp.samples++
	}
}

// Result grades the samples gathered so far.
func (pp *PrimeProbeRun) Result() Result {
	correct := pp.sb.grade(pp.v.key)
	return Result{Attack: "prime+probe", Samples: pp.samples,
		NibblesCorrect: correct, Success: correct >= 14}
}

// PrimeProbe runs the Prime+Probe attack at a fixed sample budget.
func PrimeProbe(v *Victim, llc *cache.Cache, samples int, attackerDomain int, rng *rand.Rand) Result {
	run := NewPrimeProbeRun(v, llc, attackerDomain)
	run.Extend(samples, rng)
	return run.Result()
}

// EvictTime runs the Evict+Time attack: warm the tables, evict one
// candidate line, time the victim's whole encryption, and correlate the
// slowdown with the plaintext. The signal is statistical: a late-round
// access touches a random line with probability ~1-(15/16)^n, but the
// correct first-round key guess predicts a GUARANTEED touch, so the mean
// time of predicted-touch samples exceeds the rest. Slower and noisier
// than the resident-attacker techniques, as published.
func EvictTime(v *Victim, samples int, rng *rand.Rand) Result {
	run := NewEvictTimeRun(v)
	run.Extend(samples, rng)
	return run.Result()
}

// EvictTimeRun is the resumable form of EvictTime (see FlushReloadRun for
// the Extend/Result contract). The per-sample evicted-line rotation keys
// on the cumulative sample index, so extending in increments measures the
// same sequence as one larger EvictTime call.
type EvictTimeRun struct {
	v *Victim
	// Differential scoring per (byte, guess): mean time when the guess
	// predicts the evicted line was touched vs when it does not.
	sumIn, sumOut, nIn, nOut [16][16]float64
	samples                  int
	pt                       [16]byte // reused plaintext buffer; one draw per sample
}

// NewEvictTimeRun prepares the attack.
func NewEvictTimeRun(v *Victim) *EvictTimeRun {
	return &EvictTimeRun{v: v}
}

// Extend gathers n more timed encryptions.
func (et *EvictTimeRun) Extend(n int, rng *rand.Rand) {
	v := et.v
	pt := et.pt[:]
	for ; n > 0; n-- {
		rng.Read(pt)
		line := et.samples % linesPerTab
		tab := (et.samples / linesPerTab) % 4
		// Deterministically warm every table line, then evict the target.
		for tb := 0; tb < 5; tb++ {
			for l := 0; l < linesPerTab; l++ {
				v.hier.Data(v.base+uint32(tb)*tableStride+uint32(l*lineSize), false, v.domain)
			}
		}
		v.hier.FlushAddr(v.base + uint32(tab)*tableStride + uint32(line*lineSize))
		_, cycles := v.EncryptTimed(pt)
		for i := tab; i < 16; i += 4 {
			for k := 0; k < 16; k++ {
				// Guess k as the upper nibble of key byte i.
				predictedLine := int(pt[i]>>4) ^ k
				if predictedLine == line {
					et.sumIn[i][k] += float64(cycles)
					et.nIn[i][k]++
				} else {
					et.sumOut[i][k] += float64(cycles)
					et.nOut[i][k]++
				}
			}
		}
		et.samples++
	}
}

// Result grades the samples gathered so far.
func (et *EvictTimeRun) Result() Result {
	correct := 0
	for i := 0; i < 16; i++ {
		bestK, bestD := 0, -1e18
		for k := 0; k < 16; k++ {
			if et.nIn[i][k] == 0 || et.nOut[i][k] == 0 {
				continue
			}
			d := et.sumIn[i][k]/et.nIn[i][k] - et.sumOut[i][k]/et.nOut[i][k]
			if d > bestD {
				bestK, bestD = k, d
			}
		}
		if bestK == int(et.v.key[i]>>4) {
			correct++
		}
	}
	return Result{Attack: "evict+time", Samples: et.samples,
		NibblesCorrect: correct, Success: correct >= 10}
}

// TLBAttack mounts a Prime+Probe on the shared TLB: the victim translates
// one of two pages depending on each secret bit (the key-dependent data
// page access pattern of TLBleed); the attacker occupies the TLB sets and
// watches which one loses an entry.
func TLBAttack(tlb *cache.TLB, secret []byte, victimASID, attackerASID int) (recovered []byte, correct int) {
	pageA, pageB := uint32(0x100), uint32(0x101) // distinct TLB sets
	totalBits := len(secret) * 8
	out := make([]byte, len(secret))
	for bit := 0; bit < totalBits; bit++ {
		// Attacker primes both candidate sets fully.
		for _, vpn := range []uint32{pageA, pageB} {
			set := tlb.SetIndexOf(vpn)
			for w := 0; w < tlb.Ways(); w++ {
				tlb.Insert(uint32(set)+uint32(w*tlb.Sets()), attackerASID, 1)
			}
		}
		// Victim translates the secret-dependent page.
		b := secret[bit/8] >> (bit % 8) & 1
		vpn := pageA
		if b == 1 {
			vpn = pageB
		}
		tlb.Insert(vpn, victimASID, 1)
		// Probe: which of the attacker's sets lost an entry?
		lostA := tlbLost(tlb, pageA, attackerASID)
		lostB := tlbLost(tlb, pageB, attackerASID)
		guess := byte(0)
		if lostB && !lostA {
			guess = 1
		}
		out[bit/8] |= guess << (bit % 8)
	}
	for i := range out {
		for b := 0; b < 8; b++ {
			if out[i]>>b&1 == secret[i]>>b&1 {
				correct++
			}
		}
	}
	return out, correct
}

func tlbLost(tlb *cache.TLB, basevpn uint32, asid int) bool {
	set := tlb.SetIndexOf(basevpn)
	for w := 0; w < tlb.Ways(); w++ {
		if _, hit := tlb.Lookup(uint32(set)+uint32(w*tlb.Sets()), asid); !hit {
			return true
		}
	}
	return false
}

// BranchShadow mounts the BTB/PHT branch-shadowing attack: the victim's
// secret-dependent branch trains the shared, VA-indexed predictor; the
// attacker "shadows" it by querying the prediction at the same virtual
// address.
type BranchPredictor interface {
	PredictBranch(pc uint32) bool
	UpdateBranch(pc uint32, taken bool)
}

// BranchShadow recovers secret bits through the shared predictor.
// trainings is how many times the victim executes the branch per bit.
func BranchShadow(pred BranchPredictor, secret []byte, trainings int) (recovered []byte, correct int) {
	const branchVA = 0x1000
	out := make([]byte, len(secret))
	totalBits := len(secret) * 8
	for bit := 0; bit < totalBits; bit++ {
		b := secret[bit/8] >> (bit % 8) & 1
		// Victim: branch taken iff the secret bit is 1.
		for i := 0; i < trainings; i++ {
			pred.UpdateBranch(branchVA, b == 1)
		}
		// Attacker shadow-queries the prediction at the aliased address.
		if pred.PredictBranch(branchVA) {
			out[bit/8] |= 1 << (bit % 8)
		}
	}
	for i := range out {
		for b := 0; b < 8; b++ {
			if out[i]>>b&1 == secret[i]>>b&1 {
				correct++
			}
		}
	}
	return out, correct
}
