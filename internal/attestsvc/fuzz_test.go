package attestsvc

import (
	"bytes"
	"testing"
)

// FuzzQuoteDecode drives the quote parser and the full verification
// pipeline with arbitrary bytes. Invariants: never panic; anything that
// decodes re-encodes byte-identically (strict canonicality); and only the
// authority's own canonical quote verifies — every mutation of it must be
// rejected somewhere in the pipeline.
func FuzzQuoteDecode(f *testing.F) {
	svc := NewService(RootFromSeed(42))
	nonce := []byte("fuzz-nonce")
	good, err := svc.Quote("sgx", ConfigStock, TCBStock, nonce, []byte("rd"))
	if err != nil {
		f.Fatal(err)
	}
	goodWire, err := good.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodWire)
	f.Add([]byte(quoteMagic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 200))
	trunc := append([]byte(nil), goodWire[:len(goodWire)/2]...)
	f.Add(trunc)
	f.Add(append(append([]byte(nil), goodWire...), 0)) // trailing byte

	f.Fuzz(func(t *testing.T, wire []byte) {
		q, err := DecodeQuote(wire)
		if err != nil {
			if q != nil {
				t.Fatal("decode returned both quote and error")
			}
			return
		}
		reenc, err := q.Encode()
		if err != nil || !bytes.Equal(reenc, wire) {
			t.Fatalf("decoded quote is not canonical: err=%v", err)
		}
		vd := svc.Verify(wire, q.Nonce)
		if vd.OK && !bytes.Equal(wire, goodWire) {
			// Accepting means a valid signature over an allow-listed
			// measurement at an acceptable TCB. The only fuzz input that
			// can satisfy all of that without the signing key is the seed
			// quote itself.
			t.Fatalf("non-canonical quote verified: %+v", vd)
		}
	})
}
