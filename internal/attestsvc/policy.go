package attestsvc

import (
	"fmt"
	"sort"
	"sync"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/platform"
)

// Verdict codes. Every rejection path is typed so scenarios and callers
// can assert *why* a quote failed, not just that it did.
const (
	VerdictAccepted           = "accepted"
	VerdictBadEncoding        = "bad-encoding"
	VerdictUnknownArch        = "unknown-arch"
	VerdictBadSignature       = "bad-signature"
	VerdictUnknownMeasurement = "unknown-measurement"
	VerdictTCBRevoked         = "tcb-revoked"
	VerdictNonceMismatch      = "nonce-mismatch"
	VerdictNonceReplayed      = "nonce-replayed"
)

// Verdict is the result of verifying one quote.
type Verdict struct {
	OK          bool   `json:"ok"`
	Code        string `json:"code"`
	Reason      string `json:"reason,omitempty"`
	Arch        string `json:"arch,omitempty"`
	TCBVersion  uint32 `json:"tcb_version,omitempty"`
	MinTCB      uint32 `json:"min_tcb,omitempty"`
	Config      string `json:"config,omitempty"`
	Measurement string `json:"measurement,omitempty"`
}

func reject(code, reason string) Verdict { return Verdict{Code: code, Reason: reason} }

// Policy is the verifier's explicit acceptance policy: the measurement
// allow-list, the per-architecture minimum TCB version (raised by
// sweep-driven revocation), and whether nonce freshness is enforced.
type Policy struct {
	// Accepted maps known-good measurements to a human-readable identity
	// label ("arch/config@tcb").
	Accepted map[attest.Measurement]string
	// MinTCB maps an architecture to the minimum TCB version a quote must
	// claim. Missing entries default to TCBBaseline.
	MinTCB map[string]uint32
	// EnforceTCB gates the MinTCB check; a verifier that never refreshes
	// its TCB info (the stale-tcb scenario's victim) leaves it off.
	EnforceTCB bool
	// Freshness gates nonce single-use tracking; a verifier without it
	// (the quote-replay scenario's victim) accepts replayed quotes.
	Freshness bool
}

// CanonicalPolicy builds the deployment-wide allow-list: for every
// surveyed architecture, the canonical baseline ("none" @ TCB 1) and
// stock ("stock" @ TCB 2) images. MinTCB is taken from rev (nil means
// nothing revoked).
func CanonicalPolicy(rev *Revocations) Policy {
	p := Policy{
		Accepted:   make(map[attest.Measurement]string, 2*len(platform.Architectures)),
		MinTCB:     map[string]uint32{},
		EnforceTCB: true,
		Freshness:  false,
	}
	for _, arch := range platform.Architectures {
		for _, ic := range []struct {
			cfg string
			tcb uint32
		}{{ConfigNone, TCBBaseline}, {ConfigStock, TCBStock}} {
			m, err := CanonicalMeasurement(arch, ic.cfg, ic.tcb)
			if err != nil {
				continue
			}
			p.Accepted[m] = fmt.Sprintf("%s/%s@%d", arch, ic.cfg, ic.tcb)
		}
		if rev != nil {
			p.MinTCB[arch] = rev.MinTCB(arch)
		}
	}
	return p
}

// AcceptedList renders the allow-list deterministically (sorted by
// identity label) for policy dumps.
func (p Policy) AcceptedList() []PolicyEntry {
	out := make([]PolicyEntry, 0, len(p.Accepted))
	for m, id := range p.Accepted {
		out = append(out, PolicyEntry{Identity: id, Measurement: m.Hex()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Identity < out[j].Identity })
	return out
}

// PolicyEntry is one allow-list row in a policy dump.
type PolicyEntry struct {
	Identity    string `json:"identity"`
	Measurement string `json:"measurement"`
}

// Verifier checks wire quotes against an authority and a policy. The
// used-nonce set (when Freshness is on) is the only mutable state and is
// guarded for concurrent verifies.
type Verifier struct {
	auth   *Authority
	policy Policy

	mu   sync.Mutex
	used map[string]bool
}

// NewVerifier builds a verifier over the authority's public keys.
func NewVerifier(auth *Authority, p Policy) *Verifier {
	return &Verifier{auth: auth, policy: p, used: map[string]bool{}}
}

// Policy returns the verifier's current policy.
func (v *Verifier) Policy() Policy { return v.policy }

// SetPolicy swaps the policy (e.g. after a TCB refresh). The used-nonce
// set is preserved: freshness history outlives policy updates.
func (v *Verifier) SetPolicy(p Policy) {
	v.mu.Lock()
	v.policy = p
	v.mu.Unlock()
}

// Verify runs the full verification pipeline over a wire quote:
// decode (strictly canonical) → architecture known → signature valid →
// measurement in allow-list → TCB version ≥ per-arch minimum (when
// enforced) → nonce matches the challenge (when one is supplied) and is
// fresh (when freshness is enforced).
func (v *Verifier) Verify(wire, challengeNonce []byte) Verdict {
	q, err := DecodeQuote(wire)
	if err != nil {
		return reject(VerdictBadEncoding, err.Error())
	}
	return v.VerifyQuote(q, challengeNonce)
}

// VerifyQuote is Verify over an already-decoded quote.
func (v *Verifier) VerifyQuote(q *Quote, challengeNonce []byte) Verdict {
	v.mu.Lock()
	policy := v.policy
	v.mu.Unlock()

	if _, ok := platform.ArchClass(q.Arch); !ok {
		return reject(VerdictUnknownArch, fmt.Sprintf("architecture %q not surveyed", q.Arch))
	}
	vd := Verdict{
		Arch:        q.Arch,
		TCBVersion:  q.TCBVersion,
		Config:      q.Config,
		Measurement: q.Measurement.Hex(),
	}
	if !v.auth.VerifySignature(q) {
		vd.Code, vd.Reason = VerdictBadSignature, "ed25519 signature does not verify under the arch quoting key"
		return vd
	}
	id, ok := policy.Accepted[q.Measurement]
	if !ok {
		vd.Code, vd.Reason = VerdictUnknownMeasurement, "measurement not in the accepted allow-list"
		return vd
	}
	if policy.EnforceTCB {
		min := policy.MinTCB[q.Arch]
		if min == 0 {
			min = TCBBaseline
		}
		vd.MinTCB = min
		if q.TCBVersion < min {
			vd.Code = VerdictTCBRevoked
			vd.Reason = fmt.Sprintf("quote claims TCB %d but %s requires ≥ %d (revoked until the stock defense is applied)", q.TCBVersion, q.Arch, min)
			return vd
		}
	}
	if challengeNonce != nil && string(q.Nonce) != string(challengeNonce) {
		vd.Code, vd.Reason = VerdictNonceMismatch, "quote nonce does not match the challenge"
		return vd
	}
	if policy.Freshness {
		key := q.Arch + "|" + string(q.Nonce)
		v.mu.Lock()
		replayed := v.used[key]
		if !replayed {
			v.used[key] = true
		}
		v.mu.Unlock()
		if replayed {
			vd.Code, vd.Reason = VerdictNonceReplayed, "nonce already accepted once"
			return vd
		}
	}
	vd.OK = true
	vd.Code = VerdictAccepted
	vd.Reason = "measurement " + id + " accepted"
	return vd
}
