package attestsvc

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
)

// Quote is a remotely verifiable attestation statement: the enclave
// measurement plus the platform's claimed TCB version and defense
// configuration, bound to the challenger's nonce and optional report
// data, signed with the architecture's Ed25519 quoting key.
type Quote struct {
	Arch        string
	Measurement attest.Measurement
	TCBVersion  uint32
	Config      string
	Nonce       []byte
	ReportData  []byte
	Signature   []byte
}

// Wire-format limits. The format is strictly canonical: every field is
// length-prefixed, lengths are bounded, and DecodeQuote re-encodes what it
// parsed and requires byte equality with the input — the same discipline
// core.CellKey uses, and what makes quotes safe cache keys.
const (
	quoteMagic    = "IAQ1" // "intrust attestation quote, version 1"
	maxArchLen    = 64
	maxConfigLen  = 128
	maxNonceLen   = 64
	maxReportData = 1024
)

var (
	// ErrQuoteEncoding reports a malformed or non-canonical wire quote.
	ErrQuoteEncoding = errors.New("attestsvc: malformed quote encoding")
)

// encode serializes the quote; with signed=true the signature is appended
// (the full wire format), with signed=false it yields the byte string the
// signature covers.
func (q *Quote) encode(signed bool) ([]byte, error) {
	if len(q.Arch) == 0 || len(q.Arch) > maxArchLen {
		return nil, fmt.Errorf("%w: arch length %d", ErrQuoteEncoding, len(q.Arch))
	}
	if len(q.Config) > maxConfigLen {
		return nil, fmt.Errorf("%w: config length %d", ErrQuoteEncoding, len(q.Config))
	}
	if len(q.Nonce) > maxNonceLen {
		return nil, fmt.Errorf("%w: nonce length %d", ErrQuoteEncoding, len(q.Nonce))
	}
	if len(q.ReportData) > maxReportData {
		return nil, fmt.Errorf("%w: report data length %d", ErrQuoteEncoding, len(q.ReportData))
	}
	var b bytes.Buffer
	b.WriteString(quoteMagic)
	b.WriteByte(byte(len(q.Arch)))
	b.WriteString(q.Arch)
	b.Write(q.Measurement[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], q.TCBVersion)
	b.Write(u32[:])
	b.WriteByte(byte(len(q.Config)))
	b.WriteString(q.Config)
	b.WriteByte(byte(len(q.Nonce)))
	b.Write(q.Nonce)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(q.ReportData)))
	b.Write(u16[:])
	b.Write(q.ReportData)
	if signed {
		if len(q.Signature) != ed25519.SignatureSize {
			return nil, fmt.Errorf("%w: signature length %d", ErrQuoteEncoding, len(q.Signature))
		}
		b.Write(q.Signature)
	}
	return b.Bytes(), nil
}

// Encode serializes the signed quote into its canonical wire format.
func (q *Quote) Encode() ([]byte, error) { return q.encode(true) }

// quoteReader is a bounds-checked cursor over wire bytes.
type quoteReader struct {
	b   []byte
	off int
}

func (r *quoteReader) take(n int) ([]byte, bool) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, false
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, true
}

func (r *quoteReader) byte1() (byte, bool) {
	b, ok := r.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

// DecodeQuote parses the canonical wire format. It rejects truncated
// input, trailing bytes, out-of-bound lengths, and any encoding that does
// not round-trip byte-identically — only canonical quotes decode.
func DecodeQuote(wire []byte) (*Quote, error) {
	r := &quoteReader{b: wire}
	magic, ok := r.take(len(quoteMagic))
	if !ok || string(magic) != quoteMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrQuoteEncoding)
	}
	archLen, ok := r.byte1()
	if !ok || archLen == 0 || int(archLen) > maxArchLen {
		return nil, fmt.Errorf("%w: arch length", ErrQuoteEncoding)
	}
	arch, ok := r.take(int(archLen))
	if !ok {
		return nil, fmt.Errorf("%w: arch", ErrQuoteEncoding)
	}
	mraw, ok := r.take(len(attest.Measurement{}))
	if !ok {
		return nil, fmt.Errorf("%w: measurement", ErrQuoteEncoding)
	}
	tcbRaw, ok := r.take(4)
	if !ok {
		return nil, fmt.Errorf("%w: tcb version", ErrQuoteEncoding)
	}
	cfgLen, ok := r.byte1()
	if !ok || int(cfgLen) > maxConfigLen {
		return nil, fmt.Errorf("%w: config length", ErrQuoteEncoding)
	}
	cfg, ok := r.take(int(cfgLen))
	if !ok {
		return nil, fmt.Errorf("%w: config", ErrQuoteEncoding)
	}
	nonceLen, ok := r.byte1()
	if !ok || int(nonceLen) > maxNonceLen {
		return nil, fmt.Errorf("%w: nonce length", ErrQuoteEncoding)
	}
	nonce, ok := r.take(int(nonceLen))
	if !ok {
		return nil, fmt.Errorf("%w: nonce", ErrQuoteEncoding)
	}
	rdLenRaw, ok := r.take(2)
	if !ok {
		return nil, fmt.Errorf("%w: report data length", ErrQuoteEncoding)
	}
	rdLen := int(binary.LittleEndian.Uint16(rdLenRaw))
	if rdLen > maxReportData {
		return nil, fmt.Errorf("%w: report data length %d", ErrQuoteEncoding, rdLen)
	}
	rd, ok := r.take(rdLen)
	if !ok {
		return nil, fmt.Errorf("%w: report data", ErrQuoteEncoding)
	}
	sig, ok := r.take(ed25519.SignatureSize)
	if !ok {
		return nil, fmt.Errorf("%w: signature", ErrQuoteEncoding)
	}
	if r.off != len(wire) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrQuoteEncoding, len(wire)-r.off)
	}
	q := &Quote{
		Arch:       string(arch),
		TCBVersion: binary.LittleEndian.Uint32(tcbRaw),
		Config:     string(cfg),
		Nonce:      append([]byte(nil), nonce...),
		ReportData: append([]byte(nil), rd...),
		Signature:  append([]byte(nil), sig...),
	}
	copy(q.Measurement[:], mraw)
	reenc, err := q.Encode()
	if err != nil || !bytes.Equal(reenc, wire) {
		return nil, fmt.Errorf("%w: not canonical", ErrQuoteEncoding)
	}
	return q, nil
}
