package attestsvc

import (
	"sync"

	"github.com/intrust-sim/intrust/internal/attest"
)

// Service ties the lifecycle together for the CLI and the serve tier:
// one authority, the canonical measurement policy, and the current
// sweep-driven revocation state. Verification through the service is
// stateless with respect to nonces (Freshness off) so a verdict is a pure
// function of (quote, nonce, revocation state) — the property the serve
// tier's response cache depends on. Protocol-level freshness lives in
// per-session Verifiers (see the quote-replay scenario).
type Service struct {
	auth *Authority

	mu  sync.RWMutex
	rev *Revocations
	ver *Verifier
}

// NewService builds a service over an authority root secret with nothing
// revoked.
func NewService(root []byte) *Service {
	s := &Service{auth: NewAuthority(root)}
	s.SetRevocations(nil)
	return s
}

// Authority exposes the service's quoting authority.
func (s *Service) Authority() *Authority { return s.auth }

// SetRevocations installs sweep-driven revocation state and rebuilds the
// verification policy from it.
func (s *Service) SetRevocations(rev *Revocations) {
	if rev == nil {
		rev = Revoke(nil)
	}
	v := NewVerifier(s.auth, CanonicalPolicy(rev))
	s.mu.Lock()
	s.rev = rev
	s.ver = v
	s.mu.Unlock()
}

// Revocations returns the current revocation state.
func (s *Service) Revocations() *Revocations {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// Measure returns the canonical measurement for (arch, config, tcb).
func (s *Service) Measure(arch, config string, tcb uint32) (attest.Measurement, error) {
	return CanonicalMeasurement(arch, config, tcb)
}

// Quote builds the canonical image for (arch, config, tcb) and signs a
// quote over it. Deterministic: same arguments, same bytes.
func (s *Service) Quote(arch, config string, tcb uint32, nonce, reportData []byte) (*Quote, error) {
	im, err := BuildImage(arch, config, tcb)
	if err != nil {
		return nil, err
	}
	return s.auth.QuoteImage(im, nonce, reportData)
}

// Verify checks a wire quote against the canonical policy under the
// current revocation state.
func (s *Service) Verify(wire, challengeNonce []byte) Verdict {
	s.mu.RLock()
	v := s.ver
	s.mu.RUnlock()
	return v.Verify(wire, challengeNonce)
}

// Policy returns the current verification policy.
func (s *Service) Policy() Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ver.Policy()
}

// TCB renders the per-architecture revocation status table.
func (s *Service) TCB() []TCBStatus { return s.Revocations().Statuses() }
