package attestsvc

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"github.com/intrust-sim/intrust/internal/platform"
)

// Cell is the attestation service's view of one sweep grid cell: which
// attack ran on which architecture under which defense, and how the
// verdict classified ("broken", "mitigated", "n/a"). It deliberately
// mirrors the grid's output rather than importing the engine, so the
// revocation logic can be fed from a live sweep, a cached serve-tier
// grid, or a test fixture alike.
type Cell struct {
	Scenario string `json:"scenario"`
	Arch     string `json:"arch"`
	Defense  string `json:"defense"`
	Class    string `json:"class"`
}

// ClassBroken is the verdict class that triggers revocation.
const ClassBroken = "broken"

// Revocations is the sweep-driven TCB state: per architecture, the
// minimum TCB version verifiers accept and the evidence (broken
// `none`-defense cells) that raised it. An arch with any broken
// undefended cell is TCB-compromised at the baseline level — its quotes
// must claim the stock defense configuration (TCB ≥ stock) to verify.
type Revocations struct {
	minTCB map[string]uint32
	broken map[string][]string
}

// Revoke folds grid cells into revocation state. Only `none`-defense
// cells count: a broken cell under some other defense says that defense
// failed, not that the baseline TCB is compromised (the baseline already
// is, via the same scenario's none cell, whenever that holds).
func Revoke(cells []Cell) *Revocations {
	r := &Revocations{minTCB: map[string]uint32{}, broken: map[string][]string{}}
	for _, c := range cells {
		if c.Defense != ConfigNone || c.Class != ClassBroken {
			continue
		}
		if _, ok := platform.ArchClass(c.Arch); !ok {
			continue
		}
		r.minTCB[c.Arch] = TCBStock
		r.broken[c.Arch] = append(r.broken[c.Arch], c.Scenario)
	}
	for arch := range r.broken {
		sort.Strings(r.broken[arch])
		r.broken[arch] = dedupSorted(r.broken[arch])
	}
	return r
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// MinTCB returns the minimum accepted TCB version for an architecture
// (TCBBaseline when nothing is revoked).
func (r *Revocations) MinTCB(arch string) uint32 {
	if r == nil {
		return TCBBaseline
	}
	if v, ok := r.minTCB[arch]; ok {
		return v
	}
	return TCBBaseline
}

// Revoked reports whether the architecture's baseline TCB is revoked.
func (r *Revocations) Revoked(arch string) bool { return r.MinTCB(arch) > TCBBaseline }

// BrokenScenarios lists the scenarios whose broken none-cells revoked the
// architecture, sorted.
func (r *Revocations) BrokenScenarios(arch string) []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.broken[arch]...)
}

// Fingerprint is a stable digest of the full revocation state, used to
// key verify-result caches: two grids that revoke identically share
// cached verdicts.
func (r *Revocations) Fingerprint() string {
	var b strings.Builder
	b.WriteString("intrust/attestsvc/rev/v1")
	for _, arch := range platform.Architectures {
		fmt.Fprintf(&b, "|%s=%d", arch, r.MinTCB(arch))
		if r != nil {
			for _, s := range r.broken[arch] {
				b.WriteString(";")
				b.WriteString(s)
			}
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

// TCBStatus is one architecture's row in a TCB dump.
type TCBStatus struct {
	Arch            string   `json:"arch"`
	MinTCB          uint32   `json:"min_tcb"`
	Revoked         bool     `json:"revoked"`
	BrokenScenarios []string `json:"broken_scenarios,omitempty"`
}

// Statuses renders the revocation state for every surveyed architecture
// in the paper's Section 3 order.
func (r *Revocations) Statuses() []TCBStatus {
	out := make([]TCBStatus, 0, len(platform.Architectures))
	for _, arch := range platform.Architectures {
		out = append(out, TCBStatus{
			Arch:            arch,
			MinTCB:          r.MinTCB(arch),
			Revoked:         r.Revoked(arch),
			BrokenScenarios: r.BrokenScenarios(arch),
		})
	}
	return out
}
