package attestsvc

import (
	"bytes"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/platform"
)

func testService(t *testing.T) *Service {
	t.Helper()
	return NewService(RootFromSeed(1))
}

func TestImageDeterminismAndIdentity(t *testing.T) {
	a, err := BuildImage("sgx", ConfigNone, TCBBaseline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildImage("sgx", ConfigNone, TCBBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if a.Measurement() != b.Measurement() {
		t.Fatal("same (arch, config, tcb) must measure identically")
	}
	// Identity must separate on every header axis and on page content.
	variants := []*Image{}
	for _, mk := range []func() (*Image, error){
		func() (*Image, error) { return BuildImage("sanctum", ConfigNone, TCBBaseline) },
		func() (*Image, error) { return BuildImage("sgx", ConfigStock, TCBBaseline) },
		func() (*Image, error) { return BuildImage("sgx", ConfigNone, TCBStock) },
	} {
		v, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		variants = append(variants, v)
	}
	seen := map[string]bool{a.Measurement().Hex(): true}
	for _, v := range variants {
		h := v.Measurement().Hex()
		if seen[h] {
			t.Fatalf("measurement collision for %s/%s@%d", v.Arch, v.Config, v.TCBVersion)
		}
		seen[h] = true
	}
	// Tampering with one byte of one page changes the measurement.
	tampered, _ := BuildImage("sgx", ConfigNone, TCBBaseline)
	tampered.Pages[1][17] ^= 0x80
	if tampered.Measurement() == a.Measurement() {
		t.Fatal("page tampering must change the measurement")
	}
	if _, err := BuildImage("riscv-unknown", ConfigNone, TCBBaseline); err == nil {
		t.Fatal("unknown architecture must not build an image")
	}
}

func TestQuoteRoundTripAndDeterminism(t *testing.T) {
	s := testService(t)
	nonce := []byte("nonce-000000001")
	q1, err := s.Quote("sanctum", ConfigStock, TCBStock, nonce, []byte("report data"))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Quote("sanctum", ConfigStock, TCBStock, nonce, []byte("report data"))
	if err != nil {
		t.Fatal(err)
	}
	w1, err := q1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := q2.Encode()
	if !bytes.Equal(w1, w2) {
		t.Fatal("quotes must be byte-identical on replay (deterministic ed25519)")
	}
	dec, err := DecodeQuote(w1)
	if err != nil {
		t.Fatalf("canonical quote failed to decode: %v", err)
	}
	if dec.Arch != "sanctum" || dec.Config != ConfigStock || dec.TCBVersion != TCBStock ||
		!bytes.Equal(dec.Nonce, nonce) || dec.Measurement != q1.Measurement {
		t.Fatalf("decode round-trip mismatch: %+v", dec)
	}
	// A different authority root must produce a different signature.
	other := NewService(RootFromSeed(2))
	q3, _ := other.Quote("sanctum", ConfigStock, TCBStock, nonce, []byte("report data"))
	if bytes.Equal(q1.Signature, q3.Signature) {
		t.Fatal("different roots must derive different quoting keys")
	}
	if s.Verify(w1, nonce).OK != true {
		t.Fatal("own quote must verify")
	}
	w3, _ := q3.Encode()
	if vd := s.Verify(w3, nonce); vd.OK || vd.Code != VerdictBadSignature {
		t.Fatalf("foreign-authority quote must fail signature check, got %+v", vd)
	}
}

func TestVerifyRejectionPaths(t *testing.T) {
	s := testService(t)
	nonce := []byte("n1")
	q, err := s.Quote("sgx", ConfigNone, TCBBaseline, nonce, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := q.Encode()

	if vd := s.Verify(wire, nonce); !vd.OK || vd.Code != VerdictAccepted {
		t.Fatalf("clean verify: %+v", vd)
	}
	if vd := s.Verify(wire, []byte("different")); vd.OK || vd.Code != VerdictNonceMismatch {
		t.Fatalf("challenge binding: %+v", vd)
	}
	if vd := s.Verify(wire[:len(wire)-3], nonce); vd.OK || vd.Code != VerdictBadEncoding {
		t.Fatalf("truncated quote: %+v", vd)
	}
	// Flip a signature byte: decodes (layout intact) but fails the check.
	bad := append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0xff
	if vd := s.Verify(bad, nonce); vd.OK || vd.Code != VerdictBadSignature {
		t.Fatalf("tampered signature: %+v", vd)
	}
	// A correctly signed quote over a non-canonical measurement must be
	// rejected by the allow-list, not the signature check.
	im, _ := BuildImage("sgx", ConfigNone, TCBBaseline)
	im.Pages[0][0] ^= 1
	qBad, err := s.Authority().QuoteImage(im, nonce, nil)
	if err != nil {
		t.Fatal(err)
	}
	wBad, _ := qBad.Encode()
	if vd := s.Verify(wBad, nonce); vd.OK || vd.Code != VerdictUnknownMeasurement {
		t.Fatalf("tampered image: %+v", vd)
	}
}

func TestSweepDrivenRevocation(t *testing.T) {
	s := testService(t)
	nonce := []byte("n-rev")
	stale, _ := s.Quote("trustzone", ConfigNone, TCBBaseline, nonce, nil)
	staleWire, _ := stale.Encode()
	stock, _ := s.Quote("trustzone", ConfigStock, TCBStock, nonce, nil)
	stockWire, _ := stock.Encode()

	if vd := s.Verify(staleWire, nonce); !vd.OK {
		t.Fatalf("baseline quote must verify before revocation: %+v", vd)
	}

	// One broken none-defense cell for trustzone revokes its baseline TCB.
	rev := Revoke([]Cell{
		{Scenario: "prime+probe", Arch: "trustzone", Defense: ConfigNone, Class: ClassBroken},
		{Scenario: "prime+probe", Arch: "trustzone", Defense: "cache-coloring", Class: ClassBroken}, // defended cell: ignored
		{Scenario: "dfa", Arch: "sgx", Defense: ConfigNone, Class: "mitigated"},                     // not broken: ignored
	})
	if !rev.Revoked("trustzone") || rev.Revoked("sgx") {
		t.Fatalf("revocation scope wrong: %+v", rev.Statuses())
	}
	if got := rev.BrokenScenarios("trustzone"); len(got) != 1 || got[0] != "prime+probe" {
		t.Fatalf("broken evidence: %v", got)
	}
	s.SetRevocations(rev)

	if vd := s.Verify(staleWire, nonce); vd.OK || vd.Code != VerdictTCBRevoked {
		t.Fatalf("stale-TCB quote must be rejected after revocation: %+v", vd)
	}
	if vd := s.Verify(stockWire, nonce); !vd.OK {
		t.Fatalf("stock-claiming quote must be accepted after revocation: %+v", vd)
	}

	// Fingerprints separate distinct revocation states and agree on equal ones.
	if rev.Fingerprint() == Revoke(nil).Fingerprint() {
		t.Fatal("fingerprint must change when revocation state changes")
	}
	again := Revoke([]Cell{{Scenario: "prime+probe", Arch: "trustzone", Defense: ConfigNone, Class: ClassBroken}})
	if rev.Fingerprint() != again.Fingerprint() {
		t.Fatal("equal revocation states must fingerprint identically")
	}
	if n := len(s.TCB()); n != len(platform.Architectures) {
		t.Fatalf("TCB table rows = %d", n)
	}
}

func TestFreshnessVerifier(t *testing.T) {
	auth := NewAuthority(RootFromSeed(3))
	p := CanonicalPolicy(nil)
	p.Freshness = true
	v := NewVerifier(auth, p)
	im, _ := BuildImage("sancus", ConfigNone, TCBBaseline)
	q, err := auth.QuoteImage(im, []byte("one-shot"), nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := q.Encode()
	if vd := v.Verify(wire, []byte("one-shot")); !vd.OK {
		t.Fatalf("first presentation: %+v", vd)
	}
	if vd := v.Verify(wire, []byte("one-shot")); vd.OK || vd.Code != VerdictNonceReplayed {
		t.Fatalf("replayed presentation: %+v", vd)
	}
}

func TestPolicyDumpDeterministic(t *testing.T) {
	p := CanonicalPolicy(nil)
	if len(p.Accepted) != 2*len(platform.Architectures) {
		t.Fatalf("allow-list size = %d", len(p.Accepted))
	}
	a := p.AcceptedList()
	b := p.AcceptedList()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AcceptedList must be deterministic")
		}
	}
	if !strings.Contains(a[0].Identity, "/") {
		t.Fatalf("identity label shape: %q", a[0].Identity)
	}
}
