// Package attestsvc simulates the full remote-attestation lifecycle the
// paper's TEE survey implies but never exercises end to end: enclave
// measurement (deterministic MRENCLAVE-style digests over simulated
// enclave images), per-architecture signed quote generation, verification
// against an explicit policy (accepted measurements, minimum TCB version,
// nonce freshness), and TCB revocation driven by the sweep grid itself —
// any architecture with a broken `none`-defense cell is TCB-compromised,
// and verifiers reject its quotes until they claim the stock defense
// configuration.
//
// Everything here is deterministic by construction: image bytes are a
// SHA-256 stream keyed by (arch, defense config, TCB version), signing
// keys are Ed25519 keys derived from an authority root secret (RFC 8032
// signatures are deterministic, unlike ECDSA), and the quote wire format
// is strictly canonical. The same inputs therefore produce byte-identical
// quotes and verdicts in the CLI, the scenario grid, and the serve tier.
package attestsvc

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/platform"
)

// TCB versions. The simulation models exactly two trusted-computing-base
// levels per architecture: the undefended baseline and the architecture's
// stock defense configuration. Sweep-driven revocation raises an arch's
// minimum accepted version from baseline to stock.
const (
	// TCBBaseline is the undefended ("none" defense) configuration.
	TCBBaseline uint32 = 1
	// TCBStock is the architecture's stock defense configuration.
	TCBStock uint32 = 2
)

// Defense-configuration labels an enclave image (and hence a quote) can
// claim. They mirror the sweep's defense axis spellings.
const (
	ConfigNone  = "none"
	ConfigStock = "stock"
)

// TCBForConfig maps a claimed defense configuration to the TCB version it
// corresponds to. Unknown configurations get the baseline version.
func TCBForConfig(cfg string) uint32 {
	if cfg == ConfigStock {
		return TCBStock
	}
	return TCBBaseline
}

// imagePages is the number of simulated pages per enclave image and
// imagePageSize their size; small enough to measure thousands of images
// per second, large enough that single-byte tampering is realistic.
const (
	imagePages    = 4
	imagePageSize = 256
)

// Image is a simulated enclave image: a few pages of deterministic
// content unique to (architecture, defense configuration, TCB version).
// The content stands in for code+initial data; its measurement is the
// MRENCLAVE-style identity everything downstream binds to.
type Image struct {
	Arch       string
	Config     string
	TCBVersion uint32
	Pages      [][]byte
}

// BuildImage deterministically constructs the canonical enclave image for
// an (arch, config, tcb) triple. Every holder of the same triple builds
// byte-identical pages, so measurement policy can be computed anywhere.
func BuildImage(arch, config string, tcb uint32) (*Image, error) {
	if _, ok := platform.ArchClass(arch); !ok {
		return nil, fmt.Errorf("attestsvc: unknown architecture %q", arch)
	}
	im := &Image{Arch: arch, Config: config, TCBVersion: tcb, Pages: make([][]byte, imagePages)}
	for p := range im.Pages {
		im.Pages[p] = imagePage(arch, config, tcb, p)
	}
	return im, nil
}

// imagePage derives one page of image content as a SHA-256 output stream
// keyed by the image identity and page index.
func imagePage(arch, config string, tcb uint32, page int) []byte {
	out := make([]byte, 0, imagePageSize)
	var ctr uint32
	for len(out) < imagePageSize {
		h := sha256.New()
		fmt.Fprintf(h, "intrust/attestsvc/image/v1|%s|%s|%d|%d|%d", arch, config, tcb, page, ctr)
		out = append(out, h.Sum(nil)...)
		ctr++
	}
	return out[:imagePageSize]
}

// header returns the measured image header: the identity fields that are
// part of the enclave's signed metadata (SIGSTRUCT-style), so two images
// with identical pages but different claimed TCB levels measure apart.
func (im *Image) header() []byte {
	h := make([]byte, 0, 64)
	h = append(h, "intrust/attestsvc/header/v1|"...)
	h = append(h, im.Arch...)
	h = append(h, '|')
	h = append(h, im.Config...)
	h = append(h, '|')
	h = binary.LittleEndian.AppendUint32(h, im.TCBVersion)
	return h
}

// Measurement computes the image's identity: a measurement chain over the
// header followed by each page in load order, exactly how enclave loaders
// build MRENCLAVE (and why load order matters).
func (im *Image) Measurement() attest.Measurement {
	blobs := make([][]byte, 0, 1+len(im.Pages))
	blobs = append(blobs, im.header())
	blobs = append(blobs, im.Pages...)
	return attest.MeasureChain(blobs...)
}

// CanonicalMeasurement returns the measurement of the canonical image for
// (arch, config, tcb) without exposing the image itself.
func CanonicalMeasurement(arch, config string, tcb uint32) (attest.Measurement, error) {
	im, err := BuildImage(arch, config, tcb)
	if err != nil {
		return attest.Measurement{}, err
	}
	return im.Measurement(), nil
}

// Authority is the per-deployment quoting authority: it derives one
// Ed25519 signing key per architecture from a root secret. Ed25519 (not
// ECDSA) because RFC 8032 signatures are deterministic — the same quote
// body signs to the same bytes, which the byte-identical-replay guarantee
// of the whole grid depends on.
type Authority struct {
	root []byte
}

// NewAuthority creates an authority rooted in the given secret. The root
// may be any length; it is folded through SHA-256 per architecture.
func NewAuthority(root []byte) *Authority {
	cp := make([]byte, len(root))
	copy(cp, root)
	return &Authority{root: cp}
}

// RootFromSeed derives a 32-byte authority root from a numeric seed, so
// CLI and serve deployments keyed by the engine's base seed agree on keys.
func RootFromSeed(seed int64) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "intrust/attestsvc/root/v1|%d", seed)
	return h.Sum(nil)
}

// signingKey derives the architecture's Ed25519 private key.
func (a *Authority) signingKey(arch string) ed25519.PrivateKey {
	h := sha256.New()
	h.Write([]byte("intrust/attestsvc/key/v1|"))
	h.Write(a.root)
	h.Write([]byte("|"))
	h.Write([]byte(arch))
	return ed25519.NewKeyFromSeed(h.Sum(nil))
}

// PublicKey returns the architecture's quote-verification key.
func (a *Authority) PublicKey(arch string) ed25519.PublicKey {
	return a.signingKey(arch).Public().(ed25519.PublicKey)
}

// QuoteImage measures an image and signs a quote binding the measurement,
// the image's claimed TCB level and defense configuration, the
// challenger's nonce, and caller report data under the arch's key.
func (a *Authority) QuoteImage(im *Image, nonce, reportData []byte) (*Quote, error) {
	return a.QuoteMeasurement(im.Arch, im.Measurement(), im.Config, im.TCBVersion, nonce, reportData)
}

// QuoteMeasurement signs a quote over an externally supplied measurement.
// This is the TOCTOU seam the measure-toctou scenario exercises: a quoting
// implementation that signs a *ledger* measurement instead of re-measuring
// the live image attests to stale state.
func (a *Authority) QuoteMeasurement(arch string, m attest.Measurement, config string, tcb uint32, nonce, reportData []byte) (*Quote, error) {
	if _, ok := platform.ArchClass(arch); !ok {
		return nil, fmt.Errorf("attestsvc: unknown architecture %q", arch)
	}
	q := &Quote{
		Arch:        arch,
		Measurement: m,
		TCBVersion:  tcb,
		Config:      config,
		Nonce:       append([]byte(nil), nonce...),
		ReportData:  append([]byte(nil), reportData...),
	}
	body, err := q.encode(false)
	if err != nil {
		return nil, err
	}
	q.Signature = ed25519.Sign(a.signingKey(arch), body)
	return q, nil
}

// VerifySignature checks a quote's Ed25519 signature against the
// authority's per-arch public key.
func (a *Authority) VerifySignature(q *Quote) bool {
	body, err := q.encode(false)
	if err != nil {
		return false
	}
	if len(q.Signature) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(a.PublicKey(q.Arch), body, q.Signature)
}
