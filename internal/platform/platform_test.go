package platform

import "testing"

func TestBuildAllPlatforms(t *testing.T) {
	for _, p := range []*Platform{NewServer(), NewMobile(), NewEmbedded()} {
		if len(p.Cores) == 0 {
			t.Fatalf("%s: no cores", p.Name)
		}
		if p.Ctrl == nil || p.Mem == nil || p.DMA == nil {
			t.Fatalf("%s: missing memory system", p.Name)
		}
	}
}

func TestPlatformClassProperties(t *testing.T) {
	srv, mob, emb := NewServer(), NewMobile(), NewEmbedded()
	// Speculation gradient: server yes, mobile yes, embedded no.
	if !srv.Core(0).Feat.Speculation || !mob.Core(0).Feat.Speculation {
		t.Error("high-end platforms must speculate")
	}
	if emb.Core(0).Feat.Speculation {
		t.Error("embedded platform must not speculate")
	}
	// Shared LLC only on high-end platforms.
	if srv.LLC == nil || mob.LLC == nil {
		t.Error("high-end platforms need a shared LLC")
	}
	if emb.LLC != nil {
		t.Error("embedded platform must not have a shared LLC")
	}
	// Cores on one platform share their LLC.
	if srv.Core(0).Hier.LLC != srv.Core(1).Hier.LLC {
		t.Error("server cores do not share the LLC")
	}
	// Embedded uses an MPU, not paging hardware.
	if emb.Core(0).MPU == nil {
		t.Error("embedded core lacks MPU")
	}
	if emb.Core(0).TLB != nil {
		t.Error("embedded core has a TLB")
	}
	// Boot ROM present on embedded.
	if emb.ROMSize == 0 {
		t.Error("embedded platform lacks boot ROM")
	}
}

func TestPerfScoreOrdering(t *testing.T) {
	// Figure 1's performance row: server > mobile > embedded.
	score := func(p *Platform) float64 {
		t.Helper()
		s, err := p.PerfScore()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		return s
	}
	srv := score(NewServer())
	mob := score(NewMobile())
	emb := score(NewEmbedded())
	if !(srv > mob && mob > emb) {
		t.Fatalf("performance ordering violated: server %.1f, mobile %.1f, embedded %.1f MIPS",
			srv, mob, emb)
	}
}

func TestEnergyOrderingAndBudget(t *testing.T) {
	// Figure 1's energy row: embedded lives on a far smaller budget.
	srv, mob, emb := NewServer(), NewMobile(), NewEmbedded()
	if !(srv.Energy.BudgetW > mob.Energy.BudgetW && mob.Energy.BudgetW > emb.Energy.BudgetW) {
		t.Fatal("energy budget ordering violated")
	}
	for _, p := range []*Platform{srv, mob, emb} {
		if _, err := p.PerfScore(); err != nil {
			t.Fatal(err)
		}
		c := p.Core(0)
		e := p.EnergyJoules(c)
		if e <= 0 {
			t.Errorf("%s: energy = %v", p.Name, e)
		}
		if !p.FitsBudget(c) {
			t.Errorf("%s: reference workload exceeds power budget: %.3f W > %.3f W",
				p.Name, p.AvgPowerW(c), p.Energy.BudgetW)
		}
	}
}

func TestEnergyPerInstructionGradient(t *testing.T) {
	srv, emb := NewServer(), NewEmbedded()
	if srv.Energy.ALUpJ <= emb.Energy.ALUpJ {
		t.Error("server instructions should cost more energy than embedded")
	}
}

func TestMEELatencyHookWired(t *testing.T) {
	// Platform cores must route MEE latency into their miss cost so the
	// MEE-cost ablation measures something real.
	p := NewServer()
	if p.Core(0).Hier.ExtraMemLatency == nil {
		t.Fatal("ExtraMemLatency not wired")
	}
	if got := p.Core(0).Hier.ExtraMemLatency(0x1000); got != 0 {
		t.Fatalf("extra latency without MEE = %d", got)
	}
}

func TestPowerBudgetZeroCycles(t *testing.T) {
	p := NewEmbedded()
	if p.AvgPowerW(p.Core(0)) != 0 {
		t.Error("power nonzero with no cycles")
	}
}
