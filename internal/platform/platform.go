// Package platform assembles the three computing-platform classes the
// paper spans — stationary high-performance (server/desktop), mobile, and
// embedded — out of the CPU, cache and memory substrates. Each class gets
// the microarchitecture its threat profile derives from: speculative cores
// with deep cache hierarchies on the high end (microarchitectural attack
// surface), TrustZone-style worlds and DVFS on mobile, and in-order
// cacheless cores with MPUs on embedded devices (classical physical attack
// surface, tight energy budget).
//
// See docs/ARCHITECTURE.md for the full package map and the
// paper-section cross-reference.
package platform

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/mem"
)

// Architectures lists the eight surveyed security-architecture keys in
// the paper's Section 3 order (high-end to embedded). It lives here —
// below both the scenario and the defense registries — so the attack
// axis (internal/scenario) and the mitigation axis (internal/defense)
// share one source of truth for the architecture axis.
var Architectures = []string{
	"sgx", "sanctum", "trustzone", "sanctuary", "smart", "sancus", "trustlite", "tytan",
}

// archClasses maps an architecture key to the platform class it is built
// on (Section 3: SGX/Sanctum on stationary high-performance platforms,
// TrustZone/Sanctuary on mobile SoCs, the rest on embedded devices).
var archClasses = map[string]Class{
	"sgx": ClassServer, "sanctum": ClassServer,
	"trustzone": ClassMobile, "sanctuary": ClassMobile,
	"smart": ClassEmbedded, "sancus": ClassEmbedded, "trustlite": ClassEmbedded, "tytan": ClassEmbedded,
}

// ArchClass returns the platform class an architecture key is built on;
// ok is false for unknown keys.
func ArchClass(arch string) (Class, bool) {
	c, ok := archClasses[arch]
	return c, ok
}

// Class identifies a platform class from Figure 1.
type Class uint8

const (
	// ClassServer covers servers and desktop computers.
	ClassServer Class = iota
	// ClassMobile covers smartphones and tablets.
	ClassMobile
	// ClassEmbedded covers low-energy IoT and embedded devices.
	ClassEmbedded
)

func (c Class) String() string {
	switch c {
	case ClassServer:
		return "server/desktop"
	case ClassMobile:
		return "mobile"
	case ClassEmbedded:
		return "embedded"
	}
	return "class?"
}

// EnergyModel prices retired instructions and static draw.
type EnergyModel struct {
	ALUpJ    float64
	MempJ    float64
	MulpJ    float64
	BranchpJ float64
	CSRpJ    float64
	SystempJ float64
	// StaticW is the static power draw in watts.
	StaticW float64
	// BudgetW is the platform's power budget in watts.
	BudgetW float64
}

// Platform is one assembled machine.
type Platform struct {
	Name    string
	Class   Class
	FreqMHz int

	Mem   *mem.Memory
	Ctrl  *mem.Controller
	Cores []*cpu.CPU
	// LLC is the shared last-level cache (nil on embedded platforms —
	// "they are less likely to be susceptible to microarchitectural
	// attacks").
	LLC *cache.Cache
	DMA *mem.DMA

	Energy EnergyModel

	RAMBase, RAMSize uint32
	// ROMBase/ROMSize are set on platforms with boot ROM.
	ROMBase, ROMSize uint32
	// ScratchBase is free RAM for workloads and experiments.
	ScratchBase uint32
}

// Core returns core i.
func (p *Platform) Core(i int) *cpu.CPU { return p.Cores[i] }

// Reset returns the platform's microarchitectural state to its as-built
// condition: every cache level, TLB and branch predictor resets (lines
// invalid, partitions and randomized mappings removed, statistics and
// replacement state cleared) and defense-installed cacheability filters
// drop back to nil. Assembly-time wiring — the inclusive-LLC
// back-invalidation hook, per-core memory-latency hooks — is preserved,
// and memory contents, CPU register state and controller filters are
// untouched: the platform pool uses Reset to recycle a platform across
// measurement passes of the cache scenarios, which drive only the
// microarchitectural substrate, so a reset platform measures exactly like
// a freshly assembled one at a fraction of the construction cost (the
// server LLC alone backs 128Ki lines).
func (p *Platform) Reset() {
	if p.LLC != nil {
		p.LLC.Reset()
	}
	for _, c := range p.Cores {
		if h := c.Hier; h != nil {
			for _, cc := range []*cache.Cache{h.L1I, h.L1D, h.L2} {
				if cc != nil {
					cc.Reset()
				}
			}
			h.Cacheability = nil
		}
		if c.TLB != nil {
			c.TLB.Reset()
		}
		if c.Pred != nil {
			c.Pred.Reset()
		}
	}
}

// NewServer builds the stationary high-performance platform: speculative
// out-of-order-style cores, three-level cache hierarchy, large shared LLC.
func NewServer() *Platform {
	m := mem.NewMemory()
	m.MustAddRegion(mem.Region{Name: "dram", Base: 0, Size: 32 << 20, Kind: mem.RegionRAM})
	ctrl := mem.NewController(m)
	llc := cache.New(cache.Config{Name: "llc", Sets: 8192, Ways: 16, LineSize: 64, HitLatency: 34, Policy: cache.PolicyLRU})
	p := &Platform{
		Name: "hs-server", Class: ClassServer, FreqMHz: 3200,
		Mem: m, Ctrl: ctrl, LLC: llc,
		DMA: mem.NewDMA(ctrl, 1),
		Energy: EnergyModel{
			ALUpJ: 400, MempJ: 900, MulpJ: 600, BranchpJ: 450, CSRpJ: 400, SystempJ: 500,
			StaticW: 35, BudgetW: 150,
		},
		RAMBase: 0, RAMSize: 32 << 20, ScratchBase: 0x8000,
	}
	for i := 0; i < 2; i++ {
		p.Cores = append(p.Cores, newCore(i, ctrl, llc, cpu.HighEndFeatures(), 64, true))
	}
	enforceInclusion(p)
	return p
}

// NewMobile builds the mobile platform: speculative cores behind a smaller
// hierarchy, TrustZone world support and a software-reachable DVFS
// regulator (the CLKSCREW surface).
func NewMobile() *Platform {
	m := mem.NewMemory()
	m.MustAddRegion(mem.Region{Name: "dram", Base: 0, Size: 32 << 20, Kind: mem.RegionRAM})
	ctrl := mem.NewController(m)
	llc := cache.New(cache.Config{Name: "llc", Sets: 1024, Ways: 16, LineSize: 64, HitLatency: 26, Policy: cache.PolicyLRU})
	p := &Platform{
		Name: "hs-mobile", Class: ClassMobile, FreqMHz: 1900,
		Mem: m, Ctrl: ctrl, LLC: llc,
		DMA: mem.NewDMA(ctrl, 1),
		Energy: EnergyModel{
			ALUpJ: 90, MempJ: 220, MulpJ: 140, BranchpJ: 100, CSRpJ: 90, SystempJ: 120,
			StaticW: 0.4, BudgetW: 4,
		},
		RAMBase: 0, RAMSize: 32 << 20, ScratchBase: 0x8000,
	}
	for i := 0; i < 2; i++ {
		p.Cores = append(p.Cores, newCore(i, ctrl, llc, cpu.MobileFeatures(), 32, true))
	}
	enforceInclusion(p)
	return p
}

// NewEmbedded builds the embedded/IoT platform: one in-order core, tiny
// private cache, no shared cache levels, boot ROM, MPU instead of MMU.
func NewEmbedded() *Platform {
	m := mem.NewMemory()
	m.MustAddRegion(mem.Region{Name: "rom", Base: 0, Size: 0x4000, Kind: mem.RegionROM})
	m.MustAddRegion(mem.Region{Name: "sram", Base: 0x4000, Size: 0x40000, Kind: mem.RegionRAM})
	ctrl := mem.NewController(m)
	p := &Platform{
		Name: "hs-embedded", Class: ClassEmbedded, FreqMHz: 80,
		Mem: m, Ctrl: ctrl,
		DMA: mem.NewDMA(ctrl, 1),
		Energy: EnergyModel{
			ALUpJ: 12, MempJ: 30, MulpJ: 22, BranchpJ: 14, CSRpJ: 12, SystempJ: 15,
			StaticW: 0.004, BudgetW: 0.05,
		},
		RAMBase: 0x4000, RAMSize: 0x40000,
		ROMBase: 0, ROMSize: 0x4000,
		ScratchBase: 0x8000,
	}
	core := cpu.New(0, ctrl)
	core.Feat = cpu.EmbeddedFeatures()
	core.Hier = &cache.Hierarchy{
		L1I:        cache.New(cache.Config{Name: "l1i0", Sets: 16, Ways: 2, LineSize: 32, HitLatency: 1}),
		L1D:        cache.New(cache.Config{Name: "l1d0", Sets: 16, Ways: 2, LineSize: 32, HitLatency: 1}),
		MemLatency: 12,
	}
	core.MPU = &cpu.MPU{DefaultAllow: true}
	p.Cores = []*cpu.CPU{core}
	return p
}

// enforceInclusion makes the shared LLC inclusive: evicting an LLC line
// back-invalidates every core's private caches, which is what allows a
// cross-core Prime+Probe attacker to displace a victim's L1 lines.
func enforceInclusion(p *Platform) {
	p.LLC.OnEvict = func(lineBase uint32) {
		for _, c := range p.Cores {
			if c.Hier.L1I != nil {
				c.Hier.L1I.FlushLine(lineBase)
			}
			if c.Hier.L1D != nil {
				c.Hier.L1D.FlushLine(lineBase)
			}
			if c.Hier.L2 != nil {
				c.Hier.L2.FlushLine(lineBase)
			}
		}
	}
}

func newCore(id int, ctrl *mem.Controller, llc *cache.Cache, feat cpu.Features, tlbSets int, l2 bool) *cpu.CPU {
	c := cpu.New(id, ctrl)
	c.Feat = feat
	h := &cache.Hierarchy{
		L1I:        cache.New(cache.Config{Name: fmt.Sprintf("l1i%d", id), Sets: 64, Ways: 8, LineSize: 64, HitLatency: 2}),
		L1D:        cache.New(cache.Config{Name: fmt.Sprintf("l1d%d", id), Sets: 64, Ways: 8, LineSize: 64, HitLatency: 3}),
		LLC:        llc,
		MemLatency: 160,
		ExtraMemLatency: func(addr uint32) int {
			return ctrl.AccessLatency(addr)
		},
	}
	if l2 {
		h.L2 = cache.New(cache.Config{Name: fmt.Sprintf("l2_%d", id), Sets: 512, Ways: 8, LineSize: 64, HitLatency: 11})
	}
	c.Hier = h
	c.TLB = cache.NewTLB(tlbSets, 4)
	c.Pred = cpu.NewPredictor(2048, 512, 16)
	return c
}

// referenceWorkload is the mixed integer/memory/branch benchmark used for
// the Figure 1 performance row. It runs from ScratchBase-relative
// addresses present on every platform.
const referenceWorkload = `
        .org 0x8000
        li   t0, 0          ; i
        li   t1, 4000       ; iterations
        li   t2, 0x9000     ; buffer
        li   s0, 0          ; accumulator
loop:   andi t3, t0, 63
        slli t3, t3, 2
        add  t4, t2, t3
        lw   s1, 0(t4)
        add  s1, s1, t0
        sw   s1, 0(t4)
        mul  s2, s1, t0
        add  s0, s0, s2
        andi t3, t0, 7
        bne  t3, zero, skip
        addi s0, s0, 13
skip:   addi t0, t0, 1
        bne  t0, t1, loop
        hlt
`

// PerfScore runs the reference workload on core 0 and returns millions of
// instructions per second achieved at the platform frequency.
func (p *Platform) PerfScore() (float64, error) {
	prog := isa.MustAssemble(referenceWorkload)
	if err := p.Mem.LoadProgram(prog); err != nil {
		return 0, err
	}
	c := p.Cores[0]
	c.Reset(prog.Entry)
	res, err := c.Run(2_000_000)
	if err != nil {
		return 0, err
	}
	if res.Reason != cpu.StopHalt {
		return 0, fmt.Errorf("platform: reference workload did not complete: %v", res.Reason)
	}
	seconds := float64(res.Cycles) / (float64(p.FreqMHz) * 1e6)
	return float64(res.Instret) / seconds / 1e6, nil
}

// EnergyJoules prices the retired instructions of a core plus static draw
// over the elapsed cycles.
func (p *Platform) EnergyJoules(c *cpu.CPU) float64 {
	k := c.Count
	dynamic := (float64(k.ALU)*p.Energy.ALUpJ +
		float64(k.Load+k.Store)*p.Energy.MempJ +
		float64(k.Mul)*p.Energy.MulpJ +
		float64(k.Branch+k.Jump)*p.Energy.BranchpJ +
		float64(k.CSR)*p.Energy.CSRpJ +
		float64(k.System)*p.Energy.SystempJ) * 1e-12
	seconds := float64(c.Cycles) / (float64(p.FreqMHz) * 1e6)
	return dynamic + p.Energy.StaticW*seconds
}

// AvgPowerW returns the average power of a core's execution so far.
func (p *Platform) AvgPowerW(c *cpu.CPU) float64 {
	seconds := float64(c.Cycles) / (float64(p.FreqMHz) * 1e6)
	if seconds == 0 {
		return 0
	}
	return p.EnergyJoules(c) / seconds
}

// FitsBudget reports whether the observed average power stays within the
// class budget.
func (p *Platform) FitsBudget(c *cpu.CPU) bool {
	return p.AvgPowerW(c) <= p.Energy.BudgetW
}
