package scenario

import (
	"fmt"
	"strings"
)

// familyHeading maps a family key to its catalog heading.
func familyHeading(family string) string {
	switch family {
	case FamilyCacheSCA:
		return "Cache side channels (paper §4.1) — family `cachesca`"
	case FamilyTransient:
		return "Transient execution (paper §4.2) — family `transient`"
	case FamilyPhysical:
		return "Classical physical attacks (paper §5) — family `physical`"
	case FamilyAttestation:
		return "Attestation-lifecycle attacks (paper §3) — family `attestation`"
	}
	return "Family `" + family + "`"
}

// ApplicableArchitectures splits the architecture axis for one scenario:
// the architectures it can be mounted on, and the not-applicable ones
// with their reasons.
func ApplicableArchitectures(s Scenario) (applicable []string, na map[string]string) {
	na = map[string]string{}
	for _, arch := range Architectures {
		if ok, reason := s.Applicable(arch); ok {
			applicable = append(applicable, arch)
		} else {
			na[arch] = reason
		}
	}
	return applicable, na
}

// ApplicableCell renders a scenario's architecture axis as one catalog
// cell — "all N" or the comma-separated applicable list. The CLI table
// and EXPERIMENTS.md share this so their renderings cannot diverge.
func ApplicableCell(s Scenario) string {
	applicable, na := ApplicableArchitectures(s)
	if len(na) == 0 {
		return fmt.Sprintf("all %d", len(Architectures))
	}
	return strings.Join(applicable, ", ")
}

// SamplingCell renders a scenario's sampling profile for the catalog:
// how the adaptive verdict engine measures it (cumulative sequential
// passes, with the declared floor as the reference budget, or a single
// budget-independent mount) and what a fixed budget costs.
func SamplingCell(s Scenario) string {
	if IsOneShot(s) {
		return "one-shot"
	}
	kind := "full-budget passes"
	if CanMountSeq(s) {
		kind = "sequential"
	}
	if floor := MinSamplesOf(s); floor > 0 {
		return fmt.Sprintf("%s, floor %d", kind, floor)
	}
	return kind
}

// CatalogMarkdown renders the registry as the EXPERIMENTS.md index:
// the CLI-mode table for the paper's fixed artifacts, then one table per
// scenario family with name, paper section, summary, sampling profile
// and the applicable architectures. Regenerate with `go generate ./...`.
func CatalogMarkdown(r *Registry) string {
	var b strings.Builder
	b.WriteString(`# EXPERIMENTS — index of everything intrust can measure

<!-- Generated from the scenario registry by 'go generate ./...'
     (cmd/intrust attacks -markdown -o EXPERIMENTS.md). Do not edit by hand. -->

Two kinds of experiments exist:

1. **Paper artifacts** — fixed enumerations that regenerate the paper's
   figure and comparison tables (one CLI mode each).
2. **Attack scenarios** — the self-registering catalog in
   ` + "`internal/scenario`" + `, swept against all eight architectures by
   ` + "`intrust sweep`" + ` and listed by ` + "`intrust attacks`" + `.

## Paper artifacts

| Artifact | CLI mode | Facade entry point | Paper section |
|---|---|---|---|
| Figure 1 adversary/requirement heatmap | ` + "`intrust fig1`" + ` | ` + "`Figure1`" + ` | §2 |
| TAB2 architecture feature matrix | ` + "`intrust arch`" + ` | ` + "`Table2Architectures`" + ` | §3 |
| TAB3 cache attacks vs defenses | ` + "`intrust cachesca`" + ` | ` + "`Table3CacheSCA`" + ` | §4.1 |
| TAB4 transient attacks vs configurations | ` + "`intrust transient`" + ` | ` + "`Table4Transient`" + ` | §4.2 |
| TAB5 physical attacks vs countermeasures | ` + "`intrust physical`" + ` | ` + "`Table5Physical`" + ` | §5 |
| Scenario × architecture sweep | ` + "`intrust sweep`" + ` | ` + "`SweepExperiments`" + ` | §3–§5 |

## Attack-scenario catalog

`)
	fmt.Fprintf(&b, "%d scenarios over %d architectures — %d grid cells per full sweep.\n",
		r.Len(), len(Architectures), r.Len()*len(Architectures))
	for _, family := range r.Families() {
		b.WriteString("\n### " + familyHeading(family) + "\n\n")
		b.WriteString("| Scenario | Paper § | What it mounts | Sampling | Applicable architectures |\n")
		b.WriteString("|---|---|---|---|---|\n")
		var notes []string
		for _, s := range r.ByFamily(family) {
			section, summary := DescriptionOf(s)
			if section == "" {
				section = "—"
			}
			// One representative n/a reason per scenario keeps the
			// table readable; the sweep reports the reason per cell.
			if _, na := ApplicableArchitectures(s); len(na) > 0 {
				for _, arch := range Architectures {
					if reason, ok := na[arch]; ok {
						notes = append(notes, fmt.Sprintf("`%s` n/a elsewhere: %s", s.Name(), reason))
						break
					}
				}
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n", s.Name(), section, summary, SamplingCell(s), ApplicableCell(s))
		}
		for _, n := range notes {
			b.WriteString("\n> " + n + "\n")
		}
	}
	b.WriteString(`
## Running the catalog

` + "```console" + `
$ go run ./cmd/intrust attacks                      # this catalog, as a table
$ go run ./cmd/intrust sweep                        # every (scenario, architecture) cell, stock defenses
$ go run ./cmd/intrust sweep -attack flush+reload   # one scenario across all architectures
$ go run ./cmd/intrust sweep -attack cachesca,clkscrew -arch trustzone,sanctuary
$ go run ./cmd/intrust sweep -defense none,stock,all -diff   # the 3-D defense-efficacy grid
` + "```" + `

` + "`-attack`" + ` accepts scenario names and family names, case-insensitively,
in any mix; ` + "`all`" + ` anywhere in an axis selects the full axis.
Not-applicable cells are reported with the paper's reason (e.g. no shared
caches on embedded platforms) rather than silently skipped.

` + "`-defense`" + ` is the third grid axis: every cell can run with no
mitigations (` + "`none`" + `), the architecture's paper wiring (` + "`stock`" + `,
the default), or any mitigation set from the defense catalog — see the
generated [docs/DEFENSES.md](docs/DEFENSES.md) handbook and
` + "`intrust defenses`" + `.

## Adaptive sampling

Sweeps run under the adaptive sequential-sampling verdict engine
(` + "`internal/stats`" + `) by default. The Sampling column above states how
each scenario measures:

- **sequential** — the scenario extends ONE cumulative sample set
  through a checkpoint ladder (reference/8, reference/4, ... reference)
  and regrades at each rung, stopping the moment the secret is fully
  recovered. A pass that drains the ladder has measured exactly the
  fixed-budget statistic, so verdicts never change — only their cost.
  Declared floors are the reference budgets.
- **one-shot** — the measurement is budget-independent (fault counts,
  transient extraction); one mount settles the cell.

` + "`-confidence`" + ` sets the per-cell verdict confidence target (default
0.9; hard cells escalate with further independent passes up to
` + "`-maxsamples`" + `), and ` + "`-confidence 0`" + ` restores fixed budgets.
Every adaptive cell reports ` + "`samples used/reference`" + ` and its posterior
confidence in the sweep table and the JSON report; the golden-grid test
(` + "`internal/core/testdata/golden_grid.tsv`" + `) pins that the adaptive
engine reproduces the fixed engine's class on all 1280 cells.
`)
	return b.String()
}
