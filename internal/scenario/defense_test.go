package scenario

import (
	"math/rand"
	"testing"

	"github.com/intrust-sim/intrust/internal/defense"
)

// mountWith mounts one scenario on one architecture under an explicit
// defense set and returns the outcome.
func mountWith(t *testing.T, name, arch string, samples int, defenses ...string) Outcome {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %s not registered", name)
	}
	var ds []defense.Defense
	for _, dn := range defenses {
		d, ok := defense.Lookup(dn)
		if !ok {
			t.Fatalf("defense %s not registered", dn)
		}
		ds = append(ds, d)
	}
	env, err := NewEnvWithDefenses(arch, samples, 7, rand.New(rand.NewSource(7)), ds)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Mount(env)
	if err != nil {
		t.Fatalf("%s/%s/%v: %v", name, arch, defenses, err)
	}
	return out
}

// TestDefenseFlipsMatchPaper is the defense-efficacy matrix, measured:
// for each cataloged mitigation, the attack it is designed to stop is
// broken without it and mitigated with it — including the issue's
// headline cell, flush+reload flipping broken→mitigated when
// way-partitioning is applied to SGX.
func TestDefenseFlipsMatchPaper(t *testing.T) {
	cases := []struct {
		scenario, arch, defense string
		samples                 int
	}{
		{"flush+reload", "sgx", "way-partition", 64},
		{"prime+probe", "sgx", "way-partition", 64},
		{"prime+probe", "trustzone", "cache-coloring", 64},
		{"flush+reload", "sgx", "flush-on-switch", 64},
		{"prime+probe", "sgx", "flush-on-switch", 64},
		{"tlb-channel", "sgx", "tlb-partition", 64},
		{"flush+reload", "sgx", "ct-aes", 64},
		{"prime+probe", "sgx", "ct-aes", 64},
		{"evict+time", "sgx", "ct-aes", 2048},
		{"spectre-v1", "sgx", "spec-barrier", 8},
		{"spectre-btb", "sgx", "btb-flush", 8},
		{"branch-shadow", "sgx", "btb-flush", 64},
		{"dpa", "sancus", "masked-aes", 1500},
		{"cpa", "sancus", "masked-aes", 256},
		{"bellcore", "sgx", "crt-check", 8},
		{"clkscrew", "trustzone", "clock-jitter", 8},
		{"quote-replay", "sgx", "quote-freshness", 8},
		{"quote-replay", "tytan", "quote-freshness", 8},
		{"measure-toctou", "sanctum", "measurement-lock", 8},
		{"stale-tcb", "trustzone", "tcb-refresh", 8},
		{"stale-tcb", "sancus", "tcb-refresh", 8},
	}
	// Layered mitigations compose: adding masked-aes on top of ct-aes
	// must not revert the cache victim to the leaky T-table AES (the two
	// knobs protect different observation channels).
	if out := mountWith(t, "flush+reload", "sgx", 64, "ct-aes", "masked-aes"); VerdictClass(out.Verdict) != ClassMitigated {
		t.Errorf("flush+reload under ct-aes+masked-aes = %q, want mitigated (combo must not weaken ct-aes)", out.Verdict)
	}
	if out := mountWith(t, "dpa", "sgx", 1500, "ct-aes", "masked-aes"); VerdictClass(out.Verdict) != ClassMitigated {
		t.Errorf("dpa under ct-aes+masked-aes = %q, want mitigated (combo must keep masking)", out.Verdict)
	}
	for _, tc := range cases {
		undefended := mountWith(t, tc.scenario, tc.arch, tc.samples)
		if got := VerdictClass(undefended.Verdict); got != ClassBroken {
			t.Errorf("%s/%s undefended = %q (class %q), want broken", tc.scenario, tc.arch, undefended.Verdict, got)
		}
		defended := mountWith(t, tc.scenario, tc.arch, tc.samples, tc.defense)
		if got := VerdictClass(defended.Verdict); got != ClassMitigated {
			t.Errorf("%s/%s under %s = %q (class %q), want mitigated", tc.scenario, tc.arch, tc.defense, defended.Verdict, got)
		}
	}
}

// TestDefenseDoesNotOverreach pins the "pains" half of the argument: a
// mitigation leaves attacks outside its Blocks list broken. Way
// partitioning does not help against the TLB channel, a speculation
// barrier does not stop BTB cross-training, and masking does not stop
// fault attacks.
func TestDefenseDoesNotOverreach(t *testing.T) {
	cases := []struct {
		scenario, arch, defense string
		samples                 int
	}{
		{"tlb-channel", "sgx", "way-partition", 64},
		{"branch-shadow", "sgx", "way-partition", 64},
		{"spectre-btb", "sgx", "spec-barrier", 8},
		{"dfa-piret-quisquater", "sancus", "masked-aes", 8},
		{"flush+reload", "sgx", "cache-coloring", 64},
		{"quote-replay", "sgx", "tcb-refresh", 8},
		{"stale-tcb", "sgx", "quote-freshness", 8},
		{"measure-toctou", "sgx", "quote-freshness", 8},
	}
	for _, tc := range cases {
		out := mountWith(t, tc.scenario, tc.arch, tc.samples, tc.defense)
		if got := VerdictClass(out.Verdict); got != ClassBroken {
			t.Errorf("%s/%s under %s = %q (class %q), want broken (outside the defense's coverage)",
				tc.scenario, tc.arch, tc.defense, out.Verdict, got)
		}
	}
}

// TestStockEnvMatchesRegistry pins the bugfix for the old hard-coded
// defenseName switch: the stock environment's label derives from the
// defense registry's StockOn metadata, so Sanctum reports way-partition,
// Sanctuary reports cache-coloring, and everything else reports none.
func TestStockEnvMatchesRegistry(t *testing.T) {
	want := map[string]string{
		"sgx": "none", "sanctum": "way-partition",
		"trustzone": "none", "sanctuary": "cache-coloring",
		"smart": "none", "sancus": "none", "trustlite": "none", "tytan": "none",
	}
	for _, arch := range Architectures {
		env, err := NewEnv(arch, 8, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := env.DefenseLabel(); got != want[arch] {
			t.Errorf("stock defense label on %s = %q, want %q", arch, got, want[arch])
		}
	}
	// The stock wiring still reproduces the paper's §4.1 matrix: the
	// Sanctum partition holds against Prime+Probe, the undefended SGX
	// falls to Flush+Reload.
	if out := mountWith(t, "prime+probe", "sanctum", 64, "way-partition"); VerdictClass(out.Verdict) != ClassMitigated {
		t.Errorf("prime+probe vs Sanctum's stock partition = %q, want mitigated", out.Verdict)
	}
}

// TestNewEnvRejectsInapplicableDefense checks the environment refuses a
// defense with no substrate on the architecture instead of silently
// mounting a no-op.
func TestNewEnvRejectsInapplicableDefense(t *testing.T) {
	d, ok := defense.Lookup("way-partition")
	if !ok {
		t.Fatal("way-partition not registered")
	}
	if _, err := NewEnvWithDefenses("sancus", 8, 1, nil, []defense.Defense{d}); err == nil {
		t.Error("way-partition accepted on the cacheless embedded platform")
	}
}
